// Package core implements the paper's routing protocols for multi-gateway
// wireless mesh sensor networks:
//
//   - SPR (Shortest Path Routing, §5.2): on-demand discovery of the
//     minimum-hop path from a sensor to the best of the m gateways, with
//     route caching along established paths (Property 1).
//   - MLR (Maximal network Lifetime Routing, §5.3): round-based gateway
//     mobility over a set of feasible places, with *incremental* routing
//     tables that accumulate one entry per place and are never rebuilt.
//   - SecMLR (§6.2): MLR hardened with pairwise-key encryption, MACs,
//     freshness counters, µTESLA-authenticated movement broadcasts and
//     multi-route fault tolerance.
//
// Each protocol is a pair of node.Stack implementations (sensor side and
// gateway side) plus shared plumbing in this file: protocol parameters,
// routing-table types and the metrics sink every experiment reads.
package core

import (
	"fmt"

	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Params tunes protocol timing and limits. The zero value is unusable; use
// DefaultParams.
type Params struct {
	// TTL is the initial hop budget for flooded packets.
	TTL uint8
	// ResponseWait is how long a sensor collects RRES packets before
	// choosing the best gateway.
	ResponseWait sim.Duration
	// GatewayWait is how long a SecMLR gateway collects alternative RREQ
	// paths before answering (§6.2.2 "waits a given timeout to collect
	// multiple path information").
	GatewayWait sim.Duration
	// Retries is how many times a route discovery is reissued before the
	// queued data is dropped.
	Retries int
	// QueueLimit bounds payloads buffered while discovery is in flight.
	QueueLimit int
	// AckWait is how long a SecMLR source waits for the gateway's ACK
	// before failing over to its next-best route.
	AckWait sim.Duration
	// DiscloseDelay is how long a SecMLR gateway waits after a TESLA
	// announcement before disclosing the interval key.
	DiscloseDelay sim.Duration
	// NoShortcutAnswers disables the Property-1 optimization (cached-route
	// nodes answering RREQs, SPR/MLR step 3.1) so every query is answered
	// by a real gateway. Ablation knob.
	NoShortcutAnswers bool
	// OverloadThreshold, when positive, makes an MLR gateway flood an
	// overload notification after absorbing that many data packets in one
	// round; sensors with alternatives then redirect (§4.3 load balance).
	// 0 disables load shedding.
	OverloadThreshold uint64
	// OverloadClear is how long sensors avoid an overloaded place;
	// 0 selects 60 s.
	OverloadClear sim.Duration
	// FloodJitter, when positive, delays every flood rebroadcast by a
	// uniform random time in [0, FloodJitter). On collision-prone media
	// this de-synchronizes the broadcast storm; with it at 0 (default) a
	// flood wavefront expands deterministically, which keeps plain
	// SPR/MLR's first-copy-answered discovery BFS-optimal on clean media.
	FloodJitter sim.Duration
	// AdvertInterval, when positive, makes SPR/MLR gateways flood a
	// lightweight liveness advertisement every interval, and sensors expire
	// routes through gateways that fall silent, failing over to the
	// next-best live route (or rediscovering). 0 (the default) disables the
	// mechanism entirely, leaving unfaulted runs byte-identical; the
	// scenario layer turns it on automatically when a fault plan is
	// attached. SecMLR ignores it — its ACK-driven failover already covers
	// gateway loss.
	AdvertInterval sim.Duration
	// AdvertDeadFactor times AdvertInterval is the gateway liveness
	// timeout; 0 selects 2.
	AdvertDeadFactor int
	// LinkRetries, when positive, enables hop-by-hop link-layer ARQ on
	// every device running this protocol: unicast DATA frames are
	// acknowledged per hop and retransmitted up to LinkRetries times with
	// exponential backoff before the hop is declared dead and the routing
	// layer reroutes. 0 (the default) keeps the data path fire-and-forget
	// and byte-identical to previous revisions.
	LinkRetries int
	// LinkAckWait is the base link-ACK timeout (first attempt); each retry
	// doubles it. Only read when LinkRetries > 0.
	LinkAckWait sim.Duration
	// ForwardQueueLimit bounds the per-node link-layer forwarding queue
	// under ARQ; frames beyond it are dropped and counted as QueueDrops.
	// 0 selects node.DefaultForwardQueueLimit.
	ForwardQueueLimit int
}

// DefaultParams returns sensible defaults for the simulated radios.
func DefaultParams() Params {
	return Params{
		TTL:           32,
		ResponseWait:  300 * sim.Millisecond,
		GatewayWait:   60 * sim.Millisecond,
		Retries:       2,
		QueueLimit:    64,
		AckWait:       500 * sim.Millisecond,
		DiscloseDelay: 100 * sim.Millisecond,
		LinkAckWait:   10 * sim.Millisecond, // inert while LinkRetries == 0
	}
}

// enableARQ arms the device's hop-by-hop link ARQ when the parameters ask
// for it; every core stack calls this from Start so sender and receiver
// sides of each hop agree on whether DATA frames are acknowledged.
func enableARQ(dev *node.Device, p Params, m metrics.Sink) {
	if p.LinkRetries <= 0 {
		return
	}
	dev.EnableLinkARQ(node.ARQConfig{
		Retries:    p.LinkRetries,
		AckWait:    p.LinkAckWait,
		QueueLimit: p.ForwardQueueLimit,
		Metrics:    m,
	})
}

// Route is one routing-table entry: the full minimum-hop path from this node
// to a gateway (storing the path, not just the next hop, lets a node answer
// other nodes' RREQs per SPR step 3.1 and exploits Property 1).
type Route struct {
	Gateway packet.NodeID
	Place   int // MLR feasible-place index; -1 under plain SPR
	Hops    int
	Path    []packet.NodeID // self ... gateway, inclusive
}

// NextHop returns the first hop of the route (self when degenerate).
func (r Route) NextHop() packet.NodeID {
	if len(r.Path) >= 2 {
		return r.Path[1]
	}
	if len(r.Path) == 1 {
		return r.Path[0]
	}
	return packet.None
}

// String renders the entry like the paper's Table 1 rows.
func (r Route) String() string {
	return fmt.Sprintf("place=%d gw=%v hops=%d route=%s", r.Place, r.Gateway, r.Hops, packet.PathString(r.Path))
}

// compressPath removes cycles from a route by loop erasure: scanning left
// to right, revisiting a node splices out the detour between its two
// occurrences. Combined paths (a flood prefix joined to a cached suffix,
// SPR/MLR step 3.1) can revisit nodes; forwarding such a path would
// ping-pong between the duplicates until the TTL expires. Every spliced
// edge was traversed by the original walk, so the result is a valid,
// shorter route.
func compressPath(path []packet.NodeID) []packet.NodeID {
	seen := make(map[packet.NodeID]int, len(path))
	out := make([]packet.NodeID, 0, len(path))
	for _, id := range path {
		if i, dup := seen[id]; dup {
			for _, cut := range out[i+1:] {
				delete(seen, cut)
			}
			out = out[:i+1]
			continue
		}
		seen[id] = len(out)
		out = append(out, id)
	}
	return out
}

// Metrics is the shared in-memory telemetry sink every experiment reads.
// It is an alias for metrics.Memory: protocol stacks report through the
// metrics.Sink interface, and this name is kept so harness and test code
// that reads core.Metrics fields keeps compiling unchanged.
type Metrics = metrics.Memory

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return metrics.New()
}
