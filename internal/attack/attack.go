// Package attack implements the network-layer adversaries the paper lists
// (§2.3, citing Karlof & Wagner, and §6): spoofed/altered/replayed routing
// information, selective forwarding, sinkhole, Sybil, wormholes, HELLO
// floods and acknowledgment spoofing.
//
// Each attacker is a node.Stack (or a wrapper around a legitimate stack for
// insider attacks) so that the same adversary can be dropped into an MLR or
// a SecMLR network; experiment E9 runs the full matrix and reports which
// attacks each protocol survives.
package attack

import (
	"wmsn/internal/core"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Counters tracks what an attacker managed to do; the experiment harness
// reads these alongside the victim network's core.Metrics.
type Counters struct {
	Captured uint64 // packets observed
	Injected uint64 // packets put on the air by the attacker
	Dropped  uint64 // packets the attacker swallowed instead of forwarding
}

// SelectiveForwarder is the insider grayhole: it participates in routing
// normally (via the wrapped legitimate stack) but silently drops a fraction
// of the DATA packets it should forward. DropProb 1.0 is the blackhole.
type SelectiveForwarder struct {
	Inner    node.Stack
	DropProb float64
	Counters Counters

	dev *node.Device
}

// Start implements node.Stack.
func (a *SelectiveForwarder) Start(dev *node.Device) {
	a.dev = dev
	a.Inner.Start(dev)
}

// HandleMessage implements node.Stack.
func (a *SelectiveForwarder) HandleMessage(p *packet.Packet) {
	if a.dev == nil {
		return // not attached to a device yet
	}
	if p.Kind == packet.KindData && p.Origin != a.dev.ID() {
		if a.DropProb >= 1 || a.dev.World().Kernel().Rand().Float64() < a.DropProb {
			a.Counters.Dropped++
			return
		}
	}
	a.Inner.HandleMessage(p)
}

// Replayer captures packets of the configured kinds promiscuously and
// re-injects each one verbatim after Delay. Against plain MLR the replayed
// data is re-delivered (and double-counted upstream); against SecMLR the
// gateway's counters reject it.
type Replayer struct {
	Kinds     map[packet.Kind]bool
	Delay     sim.Duration
	MaxCopies int
	Counters  Counters

	dev *node.Device
}

// NewReplayer builds a replayer for the given kinds (default: DATA only).
func NewReplayer(delay sim.Duration, kinds ...packet.Kind) *Replayer {
	r := &Replayer{Kinds: make(map[packet.Kind]bool), Delay: delay, MaxCopies: 1 << 30}
	if len(kinds) == 0 {
		kinds = []packet.Kind{packet.KindData}
	}
	for _, k := range kinds {
		r.Kinds[k] = true
	}
	return r
}

// Start implements node.Stack. The device should be marked Promiscuous by
// the scenario so unicast traffic is observable.
func (a *Replayer) Start(dev *node.Device) {
	a.dev = dev
	dev.SetPromiscuous(true)
}

// HandleMessage implements node.Stack.
func (a *Replayer) HandleMessage(p *packet.Packet) {
	if a.dev == nil {
		return // not attached to a device yet
	}
	if !a.Kinds[p.Kind] || p.From == a.dev.ID() {
		return
	}
	a.Counters.Captured++
	if a.Counters.Injected >= uint64(a.MaxCopies) {
		return
	}
	cp := p.Clone()
	a.dev.After(a.Delay, func() {
		if !a.dev.Alive() {
			return
		}
		rep := cp.Clone()
		rep.From = a.dev.ID() // link-layer sender is the attacker's radio
		if a.dev.Send(rep) {
			a.Counters.Injected++
		}
	})
}

// Sinkhole advertises irresistibly short routes and swallows the attracted
// traffic: on overhearing an RREQ it immediately answers with a forged RRES
// claiming the queried gateway is one hop behind the attacker. Plain MLR
// sensors believe it (spoofed routing information); SecMLR sensors reject
// the response for lack of a valid gateway MAC.
type Sinkhole struct {
	// FakeGateway is the gateway identity whose proximity is claimed.
	FakeGateway packet.NodeID
	// Place is the feasible-place index advertised.
	Place    int
	TTL      uint8
	Counters Counters

	dev *node.Device
}

// Start implements node.Stack.
func (a *Sinkhole) Start(dev *node.Device) {
	a.dev = dev
	dev.SetPromiscuous(true)
}

// HandleMessage implements node.Stack.
func (a *Sinkhole) HandleMessage(p *packet.Packet) {
	if a.dev == nil {
		return // not attached to a device yet
	}
	switch p.Kind {
	case packet.KindRReq:
		a.Counters.Captured++
		// Forge: <origin-path..., me, gateway> — a 1-hop-behind-me claim.
		full := p.AppendHop(a.dev.ID())
		full = append(full, a.FakeGateway)
		res := &packet.Packet{
			Kind:    packet.KindRRes,
			From:    a.dev.ID(),
			To:      p.From,
			Origin:  a.FakeGateway,
			Target:  p.Origin,
			Seq:     p.Seq,
			TTL:     a.TTL,
			Path:    full,
			Payload: core.EncodePlacePayload(a.Place, nil),
		}
		if a.dev.Send(res) {
			a.Counters.Injected++
		}
	case packet.KindData:
		// Attracted traffic disappears.
		a.Counters.Dropped++
	}
}

// HelloFlood models the long-range forged broadcast: a powerful transmitter
// periodically floods forged NOTIFYs claiming a gateway moved to the
// attacker's place, so distant plain-MLR sensors redirect data toward a
// position where nothing listens. SecMLR sensors discard it (no valid TESLA
// tag can be produced).
type HelloFlood struct {
	// Gateway is the impersonated gateway ID.
	Gateway packet.NodeID
	// Place is the place index falsely claimed.
	Place int
	// PrevPlace is the place falsely vacated (core.NoPlace for none).
	PrevPlace int
	// Range is the boosted transmission radius.
	Range    float64
	Interval sim.Duration
	TTL      uint8
	Counters Counters

	dev *node.Device
	seq uint32
	rep *sim.Repeater
}

// Start implements node.Stack and begins flooding.
func (a *HelloFlood) Start(dev *node.Device) {
	a.dev = dev
	a.flood()
	a.rep = dev.World().Kernel().Every(a.Interval, a.flood)
}

// Stop halts the flood.
func (a *HelloFlood) Stop() {
	if a.rep != nil {
		a.rep.Stop()
	}
}

func (a *HelloFlood) flood() {
	if !a.dev.Alive() {
		return
	}
	a.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindNotify,
		From:    a.dev.ID(),
		To:      packet.Broadcast,
		Origin:  a.Gateway, // spoofed
		Target:  packet.Broadcast,
		Seq:     0xFFFF0000 + a.seq, // avoid colliding with genuine seqs
		TTL:     a.TTL,
		Payload: core.EncodeNotifyPayload(a.Place, a.PrevPlace, 9999),
	}
	if a.dev.SendRange(pkt, a.Range) {
		a.Counters.Injected++
	}
}

// HandleMessage implements node.Stack.
func (a *HelloFlood) HandleMessage(*packet.Packet) {}

// Sybil originates data under many forged identities. A plain-MLR gateway
// accepts the pollution as real sensor readings; a SecMLR gateway rejects
// every identity it holds no key for.
type Sybil struct {
	Identities []packet.NodeID
	// Gateway / Place address the forged data like a legitimate reading.
	Gateway  packet.NodeID
	Place    int
	NextHop  packet.NodeID // first hop toward the gateway (Broadcast works too)
	Interval sim.Duration
	TTL      uint8
	Counters Counters

	dev *node.Device
	seq uint32
	rep *sim.Repeater
}

// Start implements node.Stack and begins injecting.
func (a *Sybil) Start(dev *node.Device) {
	a.dev = dev
	a.rep = dev.World().Kernel().Every(a.Interval, a.inject)
}

// Stop halts injection.
func (a *Sybil) Stop() {
	if a.rep != nil {
		a.rep.Stop()
	}
}

func (a *Sybil) inject() {
	if !a.dev.Alive() {
		return
	}
	for _, id := range a.Identities {
		a.seq++
		pkt := &packet.Packet{
			Kind:    packet.KindData,
			From:    a.dev.ID(),
			To:      a.NextHop,
			Origin:  id, // forged
			Target:  a.Gateway,
			Seq:     a.seq,
			TTL:     a.TTL,
			Payload: core.EncodePlacePayload(a.Place, []byte("forged")),
		}
		if a.dev.Send(pkt) {
			a.Counters.Injected++
		}
	}
}

// HandleMessage implements node.Stack.
func (a *Sybil) HandleMessage(*packet.Packet) {}

// Wormhole tunnels overheard control packets between two colluding radios
// through an out-of-band channel, making distant parts of the network look
// adjacent. Route discovery then prefers the wormhole's phantom shortcut;
// data sent into it is dropped.
type Wormhole struct {
	Counters Counters
	a, b     *wormholeEnd
}

type wormholeEnd struct {
	w    *Wormhole
	peer *wormholeEnd
	dev  *node.Device
}

// NewWormhole creates the two cooperating endpoint stacks.
func NewWormhole() (*Wormhole, node.Stack, node.Stack) {
	w := &Wormhole{}
	a := &wormholeEnd{w: w}
	b := &wormholeEnd{w: w}
	a.peer, b.peer = b, a
	w.a, w.b = a, b
	return w, a, b
}

// Start implements node.Stack.
func (e *wormholeEnd) Start(dev *node.Device) {
	e.dev = dev
	dev.SetPromiscuous(true)
}

// HandleMessage implements node.Stack.
func (e *wormholeEnd) HandleMessage(p *packet.Packet) {
	if e.dev == nil {
		return // not attached to a device yet
	}
	switch p.Kind {
	case packet.KindRReq, packet.KindRRes, packet.KindNotify:
		e.w.Counters.Captured++
		if e.peer.dev == nil || !e.peer.dev.Alive() {
			return
		}
		// Tunnel instantly (out-of-band link) and replay at the far end,
		// preserving the packet contents verbatim: the path now implies
		// that nodes around end A are one hop from nodes around end B.
		cp := p.Clone()
		cp.From = e.peer.dev.ID()
		if p.Kind == packet.KindRRes {
			// Deliver the tunneled response straight to its final target,
			// who is (by wormhole placement) near the far end.
			cp.To = p.Target
		}
		peer := e.peer
		e.dev.World().Kernel().After(sim.Microsecond, func() {
			if peer.dev != nil && peer.dev.Alive() && peer.dev.Send(cp) {
				e.w.Counters.Injected++
			}
		})
	case packet.KindData:
		// Data lured into the wormhole is swallowed.
		e.w.Counters.Dropped++
	}
}

// AckSpoofer forges gateway acknowledgments: an insider that participates
// in routing (via the wrapped legitimate stack) but, instead of forwarding
// DATA, drops it and immediately fakes the gateway's ACK so the source
// believes the delivery succeeded. Plain MLR has no ACKs (the attack
// degenerates to a blackhole); SecMLR rejects the forged ACK because it
// cannot carry a valid MAC, and the source fails over.
type AckSpoofer struct {
	// Inner is the legitimate stack the attacker runs to stay on paths.
	Inner    node.Stack
	Counters Counters

	dev *node.Device
}

// Start implements node.Stack.
func (a *AckSpoofer) Start(dev *node.Device) {
	a.dev = dev
	if a.Inner != nil {
		a.Inner.Start(dev)
	}
}

// HandleMessage implements node.Stack.
func (a *AckSpoofer) HandleMessage(p *packet.Packet) {
	if a.dev == nil {
		return // not attached to a device yet
	}
	if p.Kind != packet.KindData || p.To != a.dev.ID() || p.Origin == a.dev.ID() {
		if a.Inner != nil {
			a.Inner.HandleMessage(p)
		}
		return
	}
	a.Counters.Dropped++
	// Forge an ACK from the claimed gateway straight back to the origin.
	ack := &packet.Packet{
		Kind:    packet.KindAck,
		From:    a.dev.ID(),
		To:      p.From,
		Origin:  p.Target, // spoofed gateway identity
		Target:  p.Origin,
		Seq:     p.Seq,
		TTL:     8,
		Path:    []packet.NodeID{p.Target, a.dev.ID(), p.From, p.Origin},
		Payload: []byte{0, 0, 0, 0},
		Sec:     &packet.SecEnvelope{Counter: 1, Cipher: []byte{0, 0, 0, 0}, MAC: make([]byte, 32)},
	}
	if a.dev.Send(ack) {
		a.Counters.Injected++
	}
}
