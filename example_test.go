package wmsn_test

import (
	"fmt"

	"wmsn"
)

// ExampleRun shows the one-call entry point: deploy, route, report, measure.
func ExampleRun() {
	res := wmsn.Run(wmsn.Config{
		Seed:        1,
		Protocol:    wmsn.SPR,
		NumSensors:  50,
		Side:        150,
		SensorRange: 35,
		NumGateways: 3,
		RunFor:      60 * wmsn.Second,
	})
	fmt.Printf("delivery %.0f%%\n", 100*res.Metrics.DeliveryRatio())
	// Output: delivery 100%
}

// ExampleBuild shows the two-phase form: build the network, inject a
// failure, then run the workload.
func ExampleBuild() {
	net := wmsn.Build(wmsn.Config{
		Seed:        1,
		Protocol:    wmsn.SPR,
		NumSensors:  50,
		Side:        150,
		SensorRange: 35,
		NumGateways: 3,
		RunFor:      60 * wmsn.Second,
	})
	// Fail a sensor mid-run.
	net.World.Kernel().After(30*wmsn.Second, func() {
		net.World.Device(net.SensorIDs[0]).Fail()
	})
	res := net.RunTraffic()
	fmt.Printf("alive %d of %d\n", res.SensorsAlive, res.SensorsTotal)
	// Output: alive 49 of 50
}

// ExampleNewWorld assembles a two-node network by hand: one sensor running
// SPR, one gateway, one reading delivered.
func ExampleNewWorld() {
	w := wmsn.NewWorld(7)
	m := wmsn.NewMetrics()
	p := wmsn.DefaultParams()

	sensor := wmsn.NewSPRSensor(p, m)
	w.AddSensor(1, wmsn.Point{X: 0}, 30, 0, sensor)
	w.AddGateway(1000, wmsn.Point{X: 20}, 30, 100, wmsn.NewSPRGateway(p, m))

	sensor.OriginateData([]byte("temp=20C"))
	w.Run(5 * wmsn.Second)
	fmt.Printf("delivered %d in %d hop(s)\n", m.Delivered, int(m.MeanHops()))
	// Output: delivered 1 in 1 hop(s)
}

// ExampleProvisionKeys shows SecMLR key pre-distribution: the sensor's and
// gateway's pairwise keys agree without the master secret ever being
// deployed.
func ExampleProvisionKeys() {
	sensorKeys, gatewayKeys := wmsn.ProvisionKeys(
		[]byte("deployment-master-secret"),
		[]wmsn.NodeID{1, 2, 3},    // sensors
		[]wmsn.NodeID{1000, 1001}, // gateways
		16,                        // µTESLA intervals (MLR rounds)
	)
	agree := sensorKeys[2].Gateway[1001] == gatewayKeys[1001].Sensor[2]
	fmt.Println("pairwise keys agree:", agree)
	// Output: pairwise keys agree: true
}
