// Package metrics is the observability layer shared by every protocol stack
// in the simulator. It splits telemetry into a small Sink interface — the
// packet-lifecycle events and named counters a protocol reports while
// running — and Memory, the default in-memory implementation whose derived
// statistics (delivery ratio, hop/latency distributions, per-gateway load)
// the experiment harness reads after a run.
//
// Protocol code (internal/core, internal/baseline, internal/radio) holds a
// Sink and never sees the concrete aggregation; the scenario layer owns one
// Memory per run, and per-run Memory values merge deterministically (in
// submission order) into an Aggregate, which serializes as a Snapshot for
// structured export (wmsnbench -metrics-json).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Counter names one monotonically increasing protocol event stream. The set
// is fixed at compile time so Memory can back every counter with a plain
// uint64 field (hot-path increments stay a single add, no map lookups).
type Counter uint8

const (
	DroppedNoRoute     Counter = iota // originations abandoned after failed discovery
	DroppedQueue                      // originations rejected by a full queue
	RReqSent                          // RREQ transmissions (incl. rebroadcasts)
	RResSent                          // RRES transmissions (incl. forwards)
	NotifySent                        // gateway movement notifications
	AckSent                           // SecMLR acknowledgments
	DataSent                          // data transmissions (incl. forwards)
	Failovers                         // SecMLR route failovers after missing ACKs
	AbandonedData                     // SecMLR data given up after exhausting routes
	RejectedMAC                       // packets dropped for bad MACs
	RejectedReplay                    // packets dropped for stale counters
	ForwardNoEntry                    // data dropped mid-path: no table entry
	ForwardTTLExpired                 // data dropped mid-path: TTL exhausted
	ForwardSelfLoop                   // data dropped mid-path: malformed path
	RadioTransmissions                // frames put on the air
	RadioDeliveries                   // frame receptions delivered to a stack
	RadioLost                         // frame receptions killed by random loss
	RadioCollided                     // frame receptions killed by collision
	RadioBytesOnAir                   // payload bytes transmitted
	RadioBackoffs                     // CSMA backoff events
	RadioDropped                      // frames abandoned after too many backoffs
	FaultsInjected                    // discrete fault-plan events executed
	Reroutes                          // routes invalidated and replaced after a fault
	FailoverLatencyUs                 // cumulative µs between losing a route and replacing it
	AdvertSent                        // gateway liveness advertisements transmitted
	LinkTxQueued                      // frames accepted into a forwarding queue (ARQ)
	LinkAcked                         // frames confirmed by a link-layer ACK
	LinkAckSent                       // link-layer ACK frames transmitted
	LinkRetries                       // link-layer retransmissions after an ACK timeout
	LinkFailures                      // frames abandoned after exhausting the retry budget
	LinkFlushed                       // queued frames discarded when their node died
	QueueDrops                        // frames rejected by a full forwarding queue (backpressure)
	CompromisedNodes                  // nodes whose stack the fault injector swapped for an adversary
	AttackerDropped                   // packets swallowed by adversary stacks
	AttackerInjected                  // packets forged or replayed onto the air by adversary stacks
	numCounters
)

var counterNames = [numCounters]string{
	DroppedNoRoute:     "dropped_no_route",
	DroppedQueue:       "dropped_queue",
	RReqSent:           "rreq_sent",
	RResSent:           "rres_sent",
	NotifySent:         "notify_sent",
	AckSent:            "ack_sent",
	DataSent:           "data_sent",
	Failovers:          "failovers",
	AbandonedData:      "abandoned_data",
	RejectedMAC:        "rejected_mac",
	RejectedReplay:     "rejected_replay",
	ForwardNoEntry:     "forward_no_entry",
	ForwardTTLExpired:  "forward_ttl_expired",
	ForwardSelfLoop:    "forward_self_loop",
	RadioTransmissions: "radio_transmissions",
	RadioDeliveries:    "radio_deliveries",
	RadioLost:          "radio_lost",
	RadioCollided:      "radio_collided",
	RadioBytesOnAir:    "radio_bytes_on_air",
	RadioBackoffs:      "radio_backoffs",
	RadioDropped:       "radio_dropped",
	FaultsInjected:     "faults_injected",
	Reroutes:           "reroutes",
	FailoverLatencyUs:  "failover_latency_us",
	AdvertSent:         "advert_sent",
	LinkTxQueued:       "link_tx_queued",
	LinkAcked:          "link_acked",
	LinkAckSent:        "link_ack_sent",
	LinkRetries:        "link_retries",
	LinkFailures:       "link_failures",
	LinkFlushed:        "link_flushed",
	QueueDrops:         "queue_drops",
	CompromisedNodes:   "compromised_nodes",
	AttackerDropped:    "attacker_dropped",
	AttackerInjected:   "attacker_injected",
}

// String returns the stable snake_case name used in Snapshot JSON.
func (c Counter) String() string {
	if c < numCounters {
		return counterNames[c]
	}
	return "unknown_counter"
}

// Sink receives telemetry from running protocol stacks. All implementations
// may assume single-goroutine use: the simulation kernel is sequential, so
// sinks need no locking. Methods must be cheap — they sit on the per-packet
// hot path.
type Sink interface {
	// RecordGenerated notes a data packet leaving its origin.
	RecordGenerated(origin packet.NodeID, seq uint32, now sim.Time)
	// RecordDelivered notes a data packet accepted by gateway gw after the
	// given hop count. Duplicate (origin, seq) deliveries must be counted
	// as duplicates, not as fresh deliveries.
	RecordDelivered(origin packet.NodeID, seq uint32, gw packet.NodeID, hops int, now sim.Time)
	// Inc adds one to a named counter.
	Inc(c Counter)
	// Add adds n to a named counter.
	Add(c Counter, n uint64)
	// Observe records one sample into a named histogram (histogram.go).
	Observe(h HistID, v uint64)
}

// floodKey identifies a data packet per (origin, sequence).
type floodKey struct {
	origin packet.NodeID
	seq    uint32
}

type pendingData struct {
	at sim.Time
}

// Memory is the default Sink: it aggregates everything in memory and exposes
// the derived statistics the experiment tables are built from. One Memory is
// shared by every stack in a scenario run. The counter fields stay exported
// so harness and test code can read totals directly; protocol code writes
// them only through Inc/Add.
type Memory struct {
	Generated  uint64 // data packets originated by sensors
	Delivered  uint64 // data packets accepted at a gateway
	Duplicates uint64 // data packets delivered more than once

	DroppedNoRoute uint64 // originations abandoned after failed discovery
	DroppedQueue   uint64 // originations rejected by a full queue

	RReqSent      uint64 // RREQ transmissions (incl. rebroadcasts)
	RResSent      uint64 // RRES transmissions (incl. forwards)
	NotifySent    uint64 // gateway movement notifications
	AckSent       uint64 // SecMLR acknowledgments
	DataSent      uint64 // data transmissions (incl. forwards)
	Failovers     uint64 // SecMLR route failovers after missing ACKs
	AbandonedData uint64 // SecMLR data given up after exhausting routes

	RejectedMAC    uint64 // packets dropped for bad MACs
	RejectedReplay uint64 // packets dropped for stale counters

	ForwardNoEntry    uint64 // data dropped mid-path: no table entry
	ForwardTTLExpired uint64 // data dropped mid-path: TTL exhausted
	ForwardSelfLoop   uint64 // data dropped mid-path: malformed path

	RadioTransmissions uint64 // frames put on the air
	RadioDeliveries    uint64 // frame receptions delivered to a stack
	RadioLost          uint64 // frame receptions killed by random loss
	RadioCollided      uint64 // frame receptions killed by collision
	RadioBytesOnAir    uint64 // payload bytes transmitted
	RadioBackoffs      uint64 // CSMA backoff events
	RadioDropped       uint64 // frames abandoned after too many backoffs

	FaultsInjected    uint64 // discrete fault-plan events executed
	Reroutes          uint64 // routes invalidated and replaced after a fault
	FailoverLatencyUs uint64 // cumulative µs between losing a route and replacing it
	AdvertSent        uint64 // gateway liveness advertisements transmitted

	LinkTxQueued uint64 // frames accepted into a forwarding queue (ARQ)
	LinkAcked    uint64 // frames confirmed by a link-layer ACK
	LinkAckSent  uint64 // link-layer ACK frames transmitted
	LinkRetries  uint64 // link-layer retransmissions after an ACK timeout
	LinkFailures uint64 // frames abandoned after exhausting the retry budget
	LinkFlushed  uint64 // queued frames discarded when their node died
	QueueDrops   uint64 // frames rejected by a full forwarding queue (backpressure)

	CompromisedNodes uint64 // nodes whose stack the fault injector swapped for an adversary
	AttackerDropped  uint64 // packets swallowed by adversary stacks
	AttackerInjected uint64 // packets forged or replayed onto the air by adversary stacks

	pending    map[floodKey]pendingData
	latencies  []sim.Duration // per-run exact samples; NOT carried across Merge
	latSorted  bool           // latencies is already ascending (sorted at most once)
	hopsSum    uint64         // exact hop-count sum over fresh deliveries
	hopsN      uint64         // fresh deliveries contributing to hopsSum
	hists      [numHists]Hist // fixed-memory mergeable distributions
	perGateway map[packet.NodeID]uint64
	delivered  map[floodKey]struct{}
	obs        *obs.Bus
	progress   *sim.Progress    // optional live watermark (delivery count)
	conc       *concurrentState // non-nil in multi-goroutine mode (concurrent.go)
}

var _ Sink = (*Memory)(nil)

// New returns an empty in-memory sink.
func New() *Memory {
	return &Memory{
		pending:    make(map[floodKey]pendingData),
		perGateway: make(map[packet.NodeID]uint64),
		delivered:  make(map[floodKey]struct{}),
	}
}

// counterPtr maps a Counter to its backing field.
func (m *Memory) counterPtr(c Counter) *uint64 {
	switch c {
	case DroppedNoRoute:
		return &m.DroppedNoRoute
	case DroppedQueue:
		return &m.DroppedQueue
	case RReqSent:
		return &m.RReqSent
	case RResSent:
		return &m.RResSent
	case NotifySent:
		return &m.NotifySent
	case AckSent:
		return &m.AckSent
	case DataSent:
		return &m.DataSent
	case Failovers:
		return &m.Failovers
	case AbandonedData:
		return &m.AbandonedData
	case RejectedMAC:
		return &m.RejectedMAC
	case RejectedReplay:
		return &m.RejectedReplay
	case ForwardNoEntry:
		return &m.ForwardNoEntry
	case ForwardTTLExpired:
		return &m.ForwardTTLExpired
	case ForwardSelfLoop:
		return &m.ForwardSelfLoop
	case RadioTransmissions:
		return &m.RadioTransmissions
	case RadioDeliveries:
		return &m.RadioDeliveries
	case RadioLost:
		return &m.RadioLost
	case RadioCollided:
		return &m.RadioCollided
	case RadioBytesOnAir:
		return &m.RadioBytesOnAir
	case RadioBackoffs:
		return &m.RadioBackoffs
	case RadioDropped:
		return &m.RadioDropped
	case FaultsInjected:
		return &m.FaultsInjected
	case Reroutes:
		return &m.Reroutes
	case FailoverLatencyUs:
		return &m.FailoverLatencyUs
	case AdvertSent:
		return &m.AdvertSent
	case LinkTxQueued:
		return &m.LinkTxQueued
	case LinkAcked:
		return &m.LinkAcked
	case LinkAckSent:
		return &m.LinkAckSent
	case LinkRetries:
		return &m.LinkRetries
	case LinkFailures:
		return &m.LinkFailures
	case LinkFlushed:
		return &m.LinkFlushed
	case QueueDrops:
		return &m.QueueDrops
	case CompromisedNodes:
		return &m.CompromisedNodes
	case AttackerDropped:
		return &m.AttackerDropped
	case AttackerInjected:
		return &m.AttackerInjected
	}
	return nil
}

// Inc adds one to a named counter. Unknown counters are ignored.
func (m *Memory) Inc(c Counter) {
	if p := m.counterPtr(c); p != nil {
		if m.conc != nil {
			atomic.AddUint64(p, 1)
			return
		}
		*p++
	}
}

// Add adds n to a named counter. Unknown counters are ignored.
func (m *Memory) Add(c Counter, n uint64) {
	if p := m.counterPtr(c); p != nil {
		if m.conc != nil {
			atomic.AddUint64(p, n)
			return
		}
		*p += n
	}
}

// Observe records one sample into a named histogram. Unknown IDs are
// ignored. Like Inc/Add this sits on the hot path: a bucket increment and a
// handful of integer compares, no allocation.
func (m *Memory) Observe(h HistID, v uint64) {
	if h >= numHists {
		return
	}
	if m.conc != nil {
		m.hists[h].ObserveAtomic(v)
		return
	}
	m.hists[h].Observe(v)
}

// Hist returns the named histogram for reading (percentiles, snapshot).
// Callers must not Observe through the returned pointer; use Observe.
func (m *Memory) Hist(h HistID) *Hist {
	if h >= numHists {
		h = 0
	}
	m.Settle()
	return &m.hists[h]
}

// SetProgress attaches a live progress watermark: every fresh delivery bumps
// its delivery counter (atomically, so a poller may read mid-run).
func (m *Memory) SetProgress(p *sim.Progress) { m.progress = p }

// Count returns the current value of a named counter (0 when unknown).
func (m *Memory) Count(c Counter) uint64 {
	if p := m.counterPtr(c); p != nil {
		if m.conc != nil {
			return atomic.LoadUint64(p)
		}
		return *p
	}
	return 0
}

// SetObserver attaches an observability bus: every RecordGenerated and
// fresh RecordDelivered is mirrored as a PacketGenerated / PacketDelivered
// event. Hooking the bus here, at the single choke point every protocol
// stack already reports through, traces end-to-end packet fates without a
// per-stack emission site.
func (m *Memory) SetObserver(b *obs.Bus) { m.obs = b }

// RecordGenerated notes a data packet leaving its origin.
func (m *Memory) RecordGenerated(origin packet.NodeID, seq uint32, now sim.Time) {
	if m.conc != nil {
		m.recordGeneratedConcurrent(origin, seq, now)
		return
	}
	m.Generated++
	m.pending[floodKey{origin, seq}] = pendingData{at: now}
	if m.obs.Active() {
		m.obs.Emit(obs.Event{At: now, Kind: obs.PacketGenerated, Node: origin, Origin: origin, Seq: seq})
	}
}

// RecordDelivered notes a data packet accepted by gateway gw.
func (m *Memory) RecordDelivered(origin packet.NodeID, seq uint32, gw packet.NodeID, hops int, now sim.Time) {
	if m.conc != nil {
		m.recordDeliveredConcurrent(origin, seq, gw, hops, now)
		return
	}
	k := floodKey{origin, seq}
	if _, dup := m.delivered[k]; dup {
		m.Duplicates++
		return
	}
	m.delivered[k] = struct{}{}
	m.Delivered++
	m.perGateway[gw]++
	m.hopsSum += uint64(hops)
	m.hopsN++
	if p, ok := m.pending[k]; ok {
		lat := now - p.at
		m.latencies = append(m.latencies, lat)
		m.latSorted = false
		m.hists[HistDeliveryLatencyUs].Observe(uint64(lat))
		delete(m.pending, k)
	}
	m.progress.AddDeliveries(1)
	if m.obs.Active() {
		m.obs.Emit(obs.Event{At: now, Kind: obs.PacketDelivered, Node: gw, Origin: origin, Seq: seq, Value: int64(hops)})
	}
}

// PendingCount returns how many generated packets have not (yet) been
// delivered — the observability sampler's "in flight" gauge. O(1), no
// allocation.
func (m *Memory) PendingCount() int {
	m.Settle()
	return len(m.pending)
}

// Undelivered lists (origin, seq) pairs generated but never delivered, in
// unspecified order — post-mortem debugging and loss analysis.
func (m *Memory) Undelivered() [][2]uint64 {
	m.Settle()
	out := make([][2]uint64, 0, len(m.pending))
	for k := range m.pending {
		out = append(out, [2]uint64{uint64(k.origin), uint64(k.seq)})
	}
	return out
}

// DeliveryRatio returns Delivered/Generated (1 when nothing was generated).
func (m *Memory) DeliveryRatio() float64 {
	m.Settle()
	if m.Generated == 0 {
		return 1
	}
	return float64(m.Delivered) / float64(m.Generated)
}

// MeanHops returns the average hop count over delivered data.
func (m *Memory) MeanHops() float64 {
	m.Settle()
	if m.hopsN == 0 {
		return 0
	}
	return float64(m.hopsSum) / float64(m.hopsN)
}

// MeanLatency returns the average origination-to-delivery latency. The
// delivery histogram carries the exact sum and count, so the mean is exact
// even on merged aggregates that no longer hold raw samples.
func (m *Memory) MeanLatency() sim.Duration {
	m.Settle()
	h := &m.hists[HistDeliveryLatencyUs]
	if h.count == 0 {
		return 0
	}
	return sim.Duration(h.sum / h.count)
}

// LatencyPercentile returns the p-th percentile latency. p is clamped to
// [0, 100]: p <= 0 (and NaN) return the minimum sample, p >= 100 the
// maximum. The zero duration is returned when nothing has been delivered.
//
// A per-run Memory still holds every raw sample, so the answer is exact: the
// slice is sorted in place at most once and reused across p50/p95/p99 reads.
// A merged aggregate (Merge drops raw samples to keep memory fixed) answers
// from the delivery histogram, exact to within its 12.5% bucket width.
func (m *Memory) LatencyPercentile(p float64) sim.Duration {
	m.Settle()
	h := &m.hists[HistDeliveryLatencyUs]
	if h.count == 0 {
		return 0
	}
	if uint64(len(m.latencies)) != h.count {
		return sim.Duration(h.Percentile(p))
	}
	if !m.latSorted {
		sort.Slice(m.latencies, func(i, j int) bool { return m.latencies[i] < m.latencies[j] })
		m.latSorted = true
	}
	ls := m.latencies
	if math.IsNaN(p) || p <= 0 {
		return ls[0]
	}
	if p >= 100 {
		return ls[len(ls)-1]
	}
	idx := int(p / 100 * float64(len(ls)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ls) {
		idx = len(ls) - 1
	}
	return ls[idx]
}

// DeliveredFrom returns how many distinct packets claiming the given origin
// were accepted by gateways — the forged-data-accepted metric of the Sybil
// experiment.
func (m *Memory) DeliveredFrom(origin packet.NodeID) uint64 {
	m.Settle()
	var n uint64
	for k := range m.delivered {
		if k.origin == origin {
			n++
		}
	}
	return n
}

// PerGateway returns deliveries per gateway ID (load-balance metric, E8).
func (m *Memory) PerGateway() map[packet.NodeID]uint64 {
	m.Settle()
	out := make(map[packet.NodeID]uint64, len(m.perGateway))
	for k, v := range m.perGateway {
		out[k] = v
	}
	return out
}

// GatewayLoadImbalance returns max/mean deliveries across gateways
// (1 = perfectly balanced; 0 when no gateway delivered anything).
func (m *Memory) GatewayLoadImbalance() float64 {
	m.Settle()
	if len(m.perGateway) == 0 {
		return 0
	}
	var max, total uint64
	for _, v := range m.perGateway {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(m.perGateway))
	return float64(max) / mean
}

// CheckLinkConservation verifies the ARQ ledger: every frame accepted into a
// forwarding queue (LinkTxQueued) must be accounted for exactly once — acked,
// declared failed after exhausting retries, flushed by its node's death, or
// still sitting in a queue (inFlight, summed over live nodes by the caller).
// A non-nil error means frames were silently created or destroyed.
func (m *Memory) CheckLinkConservation(inFlight uint64) error {
	settled := m.LinkAcked + m.LinkFailures + m.LinkFlushed
	if m.LinkTxQueued != settled+inFlight {
		return fmt.Errorf("metrics: link ledger out of balance: queued=%d != acked=%d + failed=%d + flushed=%d + in-flight=%d",
			m.LinkTxQueued, m.LinkAcked, m.LinkFailures, m.LinkFlushed, inFlight)
	}
	return nil
}

// ControlPackets returns total control-plane transmissions.
func (m *Memory) ControlPackets() uint64 {
	return m.RReqSent + m.RResSent + m.NotifySent + m.AckSent
}

// Merge folds another run's totals into m: counters are summed, histograms
// merged bucket-wise, hop sums and per-gateway deliveries added per key. Raw
// latency samples are deliberately NOT appended — aggregates answer
// percentile queries from the fixed-memory histograms, so merged state stays
// bounded no matter how many runs fold in. The per-packet dedup state
// (pending/delivered keys) is also not merged — (origin, seq) pairs collide
// across independent runs, so only aggregate counts are meaningful across
// run boundaries. Histogram merging is commutative and associative, so any
// fold order (parallel workers, spatial shards) yields bit-identical
// aggregates.
func (m *Memory) Merge(o *Memory) {
	if o == nil {
		return
	}
	o.Settle()
	m.Generated += o.Generated
	m.Delivered += o.Delivered
	m.Duplicates += o.Duplicates
	for c := Counter(0); c < numCounters; c++ {
		*m.counterPtr(c) += *o.counterPtr(c)
	}
	for i := range m.hists {
		m.hists[i].Merge(&o.hists[i])
	}
	m.hopsSum += o.hopsSum
	m.hopsN += o.hopsN
	if m.perGateway == nil {
		m.perGateway = make(map[packet.NodeID]uint64, len(o.perGateway))
	}
	for k, v := range o.perGateway {
		m.perGateway[k] += v
	}
}
