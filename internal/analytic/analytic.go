// Package analytic implements the analytical performance model the paper's
// §7.2 calls for: closed-form (plus light numeric integration) estimates of
// hop counts, forwarding load, energy and first-death lifetime as functions
// of field size, node count, radio range and gateway count — "to
// quantitatively analyze the performance of routing methods under various
// network situations and determine the best method for a particular
// application" without running the event simulator.
//
// The model's estimates are validated against the simulator in this
// package's tests and surfaced by `wmsntopo -model`.
package analytic

import (
	"math"

	"wmsn/internal/geom"
)

// HopProgress is the expected forward progress per hop, as a fraction of
// the radio range, for greedy/shortest-path forwarding on a
// well-connected random unit-disk network. The classic result is that
// progress approaches the full range as density grows; 0.80 matches our
// simulated fields (average degree 8-14) within a few percent.
const HopProgress = 0.80

// Model describes one WMSN deployment for analysis.
type Model struct {
	N     int     // sensor count
	Side  float64 // field side, meters (uniform deployment assumed)
	Range float64 // sensor radio range, meters
	K     int     // gateway count (grid placement assumed)

	// Traffic and radio cost parameters for energy estimates.
	PacketBits     int     // bits per data packet on the air
	ReportInterval float64 // seconds between reports per sensor
	TxJPerBit      float64 // transmission energy, J/bit
	RxJPerBit      float64 // reception energy, J/bit
}

// Density returns nodes per square meter.
func (m Model) Density() float64 {
	if m.Side <= 0 {
		return 0
	}
	return float64(m.N) / (m.Side * m.Side)
}

// AvgDegree returns the expected neighbor count of an interior node.
func (m Model) AvgDegree() float64 {
	return m.Density() * math.Pi * m.Range * m.Range
}

// Connected reports whether the field is comfortably above the
// connectivity threshold (average degree of ~2·ln n is a safe classical
// sufficient margin; below ~4 the giant component starts to fragment).
func (m Model) Connected() bool {
	if m.N <= 1 {
		return true
	}
	return m.AvgDegree() >= 2*math.Log(float64(m.N))
}

// MeanGatewayDistance returns the expected Euclidean distance from a
// uniform random field point to the nearest of K grid-placed gateways,
// computed by deterministic stratified sampling (no RNG: reproducible and
// accurate to ~1% at the default resolution).
func (m Model) MeanGatewayDistance() float64 {
	if m.K <= 0 || m.Side <= 0 {
		return 0
	}
	gws := geom.PlaceGrid(m.K, geom.Square(m.Side))
	const grid = 64
	step := m.Side / grid
	total := 0.0
	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			p := geom.Point{X: (float64(i) + 0.5) * step, Y: (float64(j) + 0.5) * step}
			best := math.Inf(1)
			for _, g := range gws {
				best = math.Min(best, p.Dist(g))
			}
			total += best
		}
	}
	return total / (grid * grid)
}

// AvgHops estimates the mean hop count from a sensor to its nearest
// gateway: the mean gateway distance divided by the expected per-hop
// progress, with a floor of one hop.
func (m Model) AvgHops() float64 {
	if m.Range <= 0 {
		return 0
	}
	h := m.MeanGatewayDistance() / (HopProgress * m.Range)
	return math.Max(1, h)
}

// TotalForwardingLoad returns the expected number of transmissions per
// reporting interval across the whole field: every sensor's packet is
// transmitted once per hop.
func (m Model) TotalForwardingLoad() float64 {
	return float64(m.N) * m.AvgHops()
}

// GatewayNeighborhoodLoad estimates the per-interval forwarding load on a
// single gateway-adjacent relay: a gateway absorbs N/K packets per
// interval, of which the fraction arriving over more than one hop is split
// among the relays inside its radio disk.
func (m Model) GatewayNeighborhoodLoad() float64 {
	if m.K <= 0 {
		return 0
	}
	perGateway := float64(m.N) / float64(m.K)
	relays := math.Max(1, m.AvgDegree())
	multiHopFraction := 1.0
	if h := m.AvgHops(); h > 0 {
		multiHopFraction = math.Max(0, 1-1/h) // 1-hop senders skip relays
	}
	return perGateway * multiHopFraction / relays * m.AvgHops()
}

// EnergyPerIntervalHotspot estimates the joules per reporting interval
// spent by a gateway-adjacent relay (its own report + relayed traffic +
// overhearing its neighborhood).
func (m Model) EnergyPerIntervalHotspot() float64 {
	bits := float64(m.PacketBits)
	tx := (1 + m.GatewayNeighborhoodLoad()) * bits * m.TxJPerBit
	// Overhearing: every transmission inside the relay's disk is received.
	localTx := m.TotalForwardingLoad() * (math.Pi * m.Range * m.Range) / (m.Side * m.Side)
	rx := localTx * bits * m.RxJPerBit
	return tx + rx
}

// Lifetime estimates the first-death network lifetime in seconds for a
// given per-sensor battery (joules): the hotspot relay is the first to
// die.
func (m Model) Lifetime(batteryJ float64) float64 {
	perInterval := m.EnergyPerIntervalHotspot()
	if perInterval <= 0 || m.ReportInterval <= 0 {
		return math.Inf(1)
	}
	return batteryJ / perInterval * m.ReportInterval
}

// LifetimeGain estimates the lifetime ratio of deploying k2 gateways over
// k1 — the quantity the gateway-number model of §4.1 optimizes. The gain
// saturates once the one-hop fraction dominates, reproducing the Kmax
// effect without simulation.
func (m Model) LifetimeGain(k1, k2 int) float64 {
	a := m
	a.K = k1
	b := m
	b.K = k2
	la, lb := a.Lifetime(1), b.Lifetime(1)
	if la <= 0 || math.IsInf(la, 1) {
		return 1
	}
	return lb / la
}
