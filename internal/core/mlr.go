package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// MLR (§5.3) targets maximal network lifetime. Time is divided into rounds;
// during each round the m gateways sit at m of the |P| feasible places and
// the topology is fixed. Between rounds gateways move to balance the
// forwarding load around them. The protocol's distinguishing feature is the
// *incremental* routing table: a sensor accumulates one entry per feasible
// place, round by round, and never rebuilds an entry once learned — a moved
// gateway only has to announce its new place (NOTIFY), and senders pick the
// least-hop entry among the places hosting gateways in the current round.

// NoPlace marks an absent feasible-place index in wire encodings.
const NoPlace = 0xFFFF

// Plain-MLR NOTIFY payload discriminators.
const (
	mlrNotifyMove     byte = 0 // gateway moved to a new feasible place
	mlrNotifyOverload byte = 1 // gateway sheds load (§4.3 extension)
)

// mlrNotify is the NOTIFY payload: the gateway's new place, the place it
// left (NoPlace on first deployment), and the round number.
type mlrNotify struct {
	NewPlace  uint16
	PrevPlace uint16
	Round     uint16
}

func (n mlrNotify) marshal() []byte {
	buf := make([]byte, 6)
	binary.BigEndian.PutUint16(buf[0:], n.NewPlace)
	binary.BigEndian.PutUint16(buf[2:], n.PrevPlace)
	binary.BigEndian.PutUint16(buf[4:], n.Round)
	return buf
}

// marshalMoveNotify wraps the move body with its wire discriminator.
func (n mlrNotify) marshalMoveNotify() []byte {
	return append([]byte{mlrNotifyMove}, n.marshal()...)
}

// marshalOverloadNotify encodes the §4.3 load-shedding broadcast.
func marshalOverloadNotify(place, round int) []byte {
	buf := make([]byte, 5)
	buf[0] = mlrNotifyOverload
	binary.BigEndian.PutUint16(buf[1:], uint16(place))
	binary.BigEndian.PutUint16(buf[3:], uint16(round))
	return buf
}

func parseOverloadNotify(b []byte) (place, round int, ok bool) {
	if len(b) < 5 || b[0] != mlrNotifyOverload {
		return 0, 0, false
	}
	return int(binary.BigEndian.Uint16(b[1:])), int(binary.BigEndian.Uint16(b[3:])), true
}

func parseMLRNotify(b []byte) (mlrNotify, bool) {
	if len(b) < 6 {
		return mlrNotify{}, false
	}
	return mlrNotify{
		NewPlace:  binary.BigEndian.Uint16(b[0:]),
		PrevPlace: binary.BigEndian.Uint16(b[2:]),
		Round:     binary.BigEndian.Uint16(b[4:]),
	}, true
}

// placePayload prefixes data and RRES payloads with the feasible-place index
// so intermediate nodes can forward from their place-keyed tables.
func placePayload(place int, rest []byte) []byte {
	buf := make([]byte, 2+len(rest))
	binary.BigEndian.PutUint16(buf, uint16(place))
	copy(buf[2:], rest)
	return buf
}

func parsePlacePayload(b []byte) (place int, rest []byte, ok bool) {
	if len(b) < 2 {
		return 0, nil, false
	}
	return int(binary.BigEndian.Uint16(b)), b[2:], true
}

// MLRGateway is the gateway side of MLR: it answers route queries with its
// current feasible place, absorbs data, and floods a NOTIFY when moved.
type MLRGateway struct {
	Params  Params
	Metrics metrics.Sink
	Uplink  func(origin packet.NodeID, seq uint32, payload []byte)

	dev   *node.Device
	seen  *packet.Dedupe
	place int
	round int
	seq   uint32

	// paths remembers the discovery path per sensor so the gateway can
	// source-route downstream traffic back (§6.2.4: data forwarding runs
	// "from gateways to sensor nodes" too).
	paths map[packet.NodeID][]packet.NodeID

	// roundLoad counts data packets absorbed this round; when it crosses
	// Params.OverloadThreshold the gateway floods an overload notification
	// so sensors with alternatives redirect (§4.3 load balance).
	roundLoad    uint64
	overloadSent bool
}

// NewMLRGateway creates an MLR gateway stack; place is assigned by the
// round controller before traffic starts.
func NewMLRGateway(p Params, m metrics.Sink) *MLRGateway {
	return &MLRGateway{Params: p, Metrics: m, place: -1,
		paths: make(map[packet.NodeID][]packet.NodeID)}
}

// Start implements node.Stack.
func (g *MLRGateway) Start(dev *node.Device) {
	g.dev = dev
	g.seen = packet.NewDedupe(1 << 14)
	enableARQ(dev, g.Params, g.Metrics)
	if iv := g.Params.AdvertInterval; iv > 0 {
		startAdverts(dev, iv, g.sendAdvert)
	}
}

// sendAdvert floods one liveness beacon carrying the current place (see
// advert.go).
func (g *MLRGateway) sendAdvert() {
	if g.dev == nil || !g.dev.Alive() {
		return
	}
	g.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindNotify,
		From:    g.dev.ID(),
		To:      packet.Broadcast,
		Origin:  g.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     g.seq,
		TTL:     g.Params.TTL,
		Payload: marshalAdvert(g.place),
	}
	g.seen.Check(g.dev.ID(), g.seq)
	if g.dev.Send(pkt) {
		g.Metrics.Inc(metrics.AdvertSent)
	}
}

// Place returns the gateway's current feasible-place index (-1 before
// deployment).
func (g *MLRGateway) Place() int { return g.place }

// SetPlace implements PlacedGateway: the round controller has moved the
// device to feasible place new for round round; moved says whether the
// place changed (unmoved gateways stay silent, §5.3 step 2).
func (g *MLRGateway) SetPlace(place, round int, moved bool) {
	prev := g.place
	g.place = place
	g.round = round
	g.roundLoad = 0
	g.overloadSent = false
	if !moved {
		return
	}
	prevField := uint16(NoPlace)
	if prev >= 0 {
		prevField = uint16(prev)
	}
	n := mlrNotify{NewPlace: uint16(place), PrevPlace: prevField, Round: uint16(round)}
	g.floodNotify(n.marshalMoveNotify())
}

func (g *MLRGateway) floodNotify(payload []byte) {
	g.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindNotify,
		From:    g.dev.ID(),
		To:      packet.Broadcast,
		Origin:  g.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     g.seq,
		TTL:     g.Params.TTL,
		Payload: payload,
	}
	g.seen.Check(g.dev.ID(), g.seq)
	if g.dev.Send(pkt) {
		g.Metrics.Inc(metrics.NotifySent)
	}
}

// SendToSensor source-routes a downstream payload to a sensor the gateway
// has previously answered a route query for. It reports whether a path was
// known and the transmission left the radio.
func (g *MLRGateway) SendToSensor(sensor packet.NodeID, payload []byte) bool {
	fwd, ok := g.paths[sensor]
	if !ok || len(fwd) < 2 || g.dev == nil || !g.dev.Alive() {
		return false
	}
	rev := make([]packet.NodeID, len(fwd))
	for i, id := range fwd {
		rev[len(fwd)-1-i] = id
	}
	g.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    g.dev.ID(),
		To:      rev[1],
		Origin:  g.dev.ID(),
		Target:  sensor,
		Seq:     g.seq,
		TTL:     g.Params.TTL,
		Path:    rev,
		Payload: payload,
	}
	if g.dev.Send(pkt) {
		g.Metrics.Inc(metrics.DataSent)
		return true
	}
	return false
}

// HandleMessage implements node.Stack.
func (g *MLRGateway) HandleMessage(pkt *packet.Packet) {
	if g.dev == nil {
		return // not attached to a device yet
	}
	switch pkt.Kind {
	case packet.KindRReq:
		if g.place < 0 || g.seen.Check(pkt.Origin, pkt.Seq) {
			return
		}
		full := pkt.AppendHop(g.dev.ID())
		g.paths[pkt.Origin] = full
		res := &packet.Packet{
			Kind:    packet.KindRRes,
			From:    g.dev.ID(),
			To:      pkt.From,
			Origin:  g.dev.ID(),
			Target:  pkt.Origin,
			Seq:     pkt.Seq,
			TTL:     g.Params.TTL,
			Path:    full,
			Payload: placePayload(g.place, nil),
		}
		if g.dev.Send(res) {
			g.Metrics.Inc(metrics.RResSent)
		}
	case packet.KindData:
		if pkt.Target != g.dev.ID() {
			return
		}
		_, body, ok := parsePlacePayload(pkt.Payload)
		if !ok {
			return
		}
		g.Metrics.RecordDelivered(pkt.Origin, pkt.Seq, g.dev.ID(), int(pkt.Hops)+1, g.dev.Now())
		if g.Uplink != nil {
			g.Uplink(pkt.Origin, pkt.Seq, body)
		}
		g.roundLoad++
		if t := g.Params.OverloadThreshold; t > 0 && g.roundLoad >= t && !g.overloadSent {
			g.overloadSent = true
			g.floodNotify(marshalOverloadNotify(g.place, g.round))
		}
	}
}

// MLRSensor is the sensor side of MLR.
type MLRSensor struct {
	Params  Params
	Metrics metrics.Sink

	dev  *node.Device
	seen *packet.Dedupe
	seq  uint32

	// table is the incremental routing table, keyed by feasible place; it
	// only ever grows while the topology is static (Table 1).
	table map[int]Route
	// active maps feasible places to the gateway currently deployed there.
	active map[int]packet.NodeID
	// overloaded maps places under load shedding to the virtual time the
	// mark expires.
	overloaded map[int]sim.Time
	// lastHeard tracks per-gateway liveness (see advert.go). The
	// incremental table is never pruned — only the active-place map is,
	// preserving MLR's never-rebuild property.
	lastHeard map[packet.NodeID]sim.Time

	// OnDownstream, when set, receives payloads a gateway routed down to
	// this sensor (commands, configuration, queries).
	OnDownstream func(gw packet.NodeID, payload []byte)

	queue       [][]byte
	discovering bool
	retriesLeft int
	// rerouting and lostAt carry a pending failover across a rediscovery
	// when no live place survived the sweep.
	rerouting bool
	lostAt    sim.Time
}

// NewMLRSensor creates a sensor stack.
func NewMLRSensor(p Params, m metrics.Sink) *MLRSensor {
	return &MLRSensor{
		Params: p, Metrics: m,
		table:      make(map[int]Route),
		active:     make(map[int]packet.NodeID),
		overloaded: make(map[int]sim.Time),
		lastHeard:  make(map[packet.NodeID]sim.Time),
	}
}

// Start implements node.Stack.
func (s *MLRSensor) Start(dev *node.Device) {
	s.dev = dev
	s.seen = packet.NewDedupe(1 << 14)
	enableARQ(dev, s.Params, s.Metrics)
	if iv := s.Params.AdvertInterval; iv > 0 {
		dev.World().Kernel().Every(iv, s.sweep)
	}
}

// HandleLinkFailure implements node.LinkFailureHandler: link-layer ARQ gave
// up on pkt.To, so every place whose stored route starts with that hop is
// invalidated — table entry and activation both. Pruning the incremental
// table is a deliberate deviation from MLR's never-rebuild property: here
// the stored path itself is broken, not merely stale about which gateway
// tenants the place, so keeping the entry would blackhole every later use.
// The frame is then re-keyed to the best surviving place and re-sent; any
// active gateway is a valid sink, so mid-path frames can redirect too.
func (s *MLRSensor) HandleLinkFailure(pkt *packet.Packet) {
	if pkt.Kind != packet.KindData || s.dev == nil || !s.dev.Alive() {
		return
	}
	if len(pkt.Path) > 0 {
		return // downstream source-routed frame: no alternate route exists
	}
	dead := pkt.To
	bestBefore := s.BestRoute()
	for place, r := range s.table {
		hop := r.NextHop()
		if cur, ok := s.active[place]; ok && hop == r.Gateway {
			hop = cur // mirror sendData's last-hop tenant rewrite
		}
		if hop != dead {
			continue
		}
		delete(s.table, place)
		delete(s.active, place)
	}
	if bestBefore != nil && bestBefore.NextHop() == dead {
		if s.BestRoute() != nil {
			s.Metrics.Inc(metrics.Reroutes)
			traceReroute(s.dev, dead, "link_failure", 0)
		} else if !s.rerouting {
			s.rerouting = true
			s.lostAt = s.dev.Now()
			if !s.discovering {
				s.retriesLeft = s.Params.Retries
				s.startDiscovery()
			}
		}
	}
	if _, body, ok := parsePlacePayload(pkt.Payload); ok {
		if !s.redirectData(pkt, body, false) {
			s.ensureDiscovery()
		}
	}
}

// ensureDiscovery kicks route discovery on a node left without any usable
// route. Relays never discover on their own (only originators do), so a
// relay whose whole table was invalidated by link-failure verdicts would
// otherwise keep link-acknowledging frames it can only drop — a persistent
// blackhole the upstream hops have no way to notice.
func (s *MLRSensor) ensureDiscovery() {
	if s.discovering {
		return
	}
	s.retriesLeft = s.Params.Retries
	s.startDiscovery()
}

// redirectData re-keys a data frame to the sensor's best active place and
// sends it there; any deployed gateway is a valid sink, so this recovers
// both retired frames after a link failure (decTTL false — their hop budget
// was already charged) and frames whose place entry is gone in handleData
// (decTTL true). The latter only runs when link ARQ is armed: the upstream
// hop had its frame link-acknowledged by us, so dropping it would be a
// silent blackhole no end-to-end mechanism ever notices.
func (s *MLRSensor) redirectData(pkt *packet.Packet, body []byte, decTTL bool) bool {
	r := s.BestRoute()
	if r == nil {
		return false // rediscovery in flight; this frame is lost
	}
	gw := r.Gateway
	if cur, ok := s.active[r.Place]; ok {
		gw = cur
	}
	to := r.NextHop()
	if to == r.Gateway {
		to = gw
	}
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.To = to
	fwd.Target = gw
	fwd.Payload = placePayload(r.Place, body)
	if decTTL {
		fwd.TTL--
		fwd.Hops++
	}
	if s.dev.Send(fwd) {
		s.Metrics.Inc(metrics.DataSent)
		return true
	}
	return false
}

// sweep is the periodic liveness check armed when Params.AdvertInterval is
// set: active places whose gateway is past its liveness deadline are
// deactivated, so BestRoute falls over to the next-best live place. Routing
// table entries survive — a recovered or returning gateway reactivates the
// place with a single advert or NOTIFY.
func (s *MLRSensor) sweep() {
	if s.dev == nil || !s.dev.Alive() {
		return
	}
	timeout := s.Params.advertTimeout()
	now := s.dev.Now()
	bestBefore := s.BestRoute()
	lostAt := sim.Time(-1)
	for place, gw := range s.active {
		at, ok := s.lastHeard[gw]
		if !ok || now <= at+timeout {
			continue // never confirmed (bootstrap) or still live
		}
		delete(s.active, place)
		if bestBefore != nil && bestBefore.Place == place {
			lostAt = at + timeout
		}
	}
	if lostAt < 0 {
		return
	}
	if s.BestRoute() != nil {
		s.Metrics.Inc(metrics.Reroutes)
		s.Metrics.Add(metrics.FailoverLatencyUs, uint64(now-lostAt))
		s.Metrics.Observe(metrics.HistFailoverLatencyUs, uint64(now-lostAt))
		traceReroute(s.dev, s.BestRoute().Gateway, "liveness", now-lostAt)
		return
	}
	// No live place left: rediscover immediately instead of waiting for
	// the next origination; credit the reroute when the discovery
	// concludes.
	s.rerouting = true
	s.lostAt = lostAt
	if !s.discovering {
		s.retriesLeft = s.Params.Retries
		s.startDiscovery()
	}
}

// Table returns a copy of the incremental routing table, keyed by place.
func (s *MLRSensor) Table() map[int]Route {
	out := make(map[int]Route, len(s.table))
	for k, v := range s.table {
		out[k] = v
	}
	return out
}

// ActivePlaces returns the places believed to host a gateway this round, in
// ascending order.
func (s *MLRSensor) ActivePlaces() []int {
	out := make([]int, 0, len(s.active))
	for p := range s.active {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// BestRoute returns the least-hop entry among active places, or nil.
// Places currently under load shedding (§4.3) are avoided when any
// alternative exists.
func (s *MLRSensor) BestRoute() *Route {
	if best := s.bestAmong(true); best != nil {
		return best
	}
	return s.bestAmong(false)
}

func (s *MLRSensor) bestAmong(skipOverloaded bool) *Route {
	var best *Route
	for p := range s.active {
		if skipOverloaded && s.isOverloaded(p) {
			continue
		}
		if r, ok := s.table[p]; ok {
			if best == nil || r.Hops < best.Hops || (r.Hops == best.Hops && r.Place < best.Place) {
				rr := r
				best = &rr
			}
		}
	}
	return best
}

func (s *MLRSensor) isOverloaded(place int) bool {
	exp, ok := s.overloaded[place]
	if !ok {
		return false
	}
	if s.dev == nil || s.dev.Now() >= exp {
		delete(s.overloaded, place)
		return false
	}
	return true
}

// missingActivePlaces lists active places without a table entry.
func (s *MLRSensor) missingActivePlaces() []int {
	var out []int
	for p := range s.active {
		if _, ok := s.table[p]; !ok {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// OriginateData queues one payload toward the best currently deployed
// gateway, discovering routes for unknown active places first.
func (s *MLRSensor) OriginateData(payload []byte) {
	if s.dev == nil || !s.dev.Alive() {
		return
	}
	if len(s.active) > 0 && len(s.missingActivePlaces()) == 0 {
		if best := s.BestRoute(); best != nil {
			s.sendData(payload, best)
			return
		}
	}
	if len(s.queue) >= s.Params.QueueLimit {
		s.Metrics.Inc(metrics.DroppedQueue)
		return
	}
	s.queue = append(s.queue, payload)
	if !s.discovering {
		s.retriesLeft = s.Params.Retries
		s.startDiscovery()
	}
}

func (s *MLRSensor) startDiscovery() {
	s.discovering = true
	s.seq++
	req := &packet.Packet{
		Kind:   packet.KindRReq,
		From:   s.dev.ID(),
		To:     packet.Broadcast,
		Origin: s.dev.ID(),
		Target: packet.Broadcast,
		Seq:    s.seq,
		TTL:    s.Params.TTL,
		Path:   []packet.NodeID{s.dev.ID()},
	}
	s.seen.Check(s.dev.ID(), s.seq)
	if s.dev.Send(req) {
		s.Metrics.Inc(metrics.RReqSent)
	}
	s.dev.After(s.Params.ResponseWait, s.decide)
}

func (s *MLRSensor) decide() {
	if !s.discovering || s.dev == nil || !s.dev.Alive() {
		return
	}
	s.discovering = false
	best := s.BestRoute()
	if best == nil {
		if s.retriesLeft > 0 {
			s.retriesLeft--
			s.startDiscovery()
			return
		}
		s.Metrics.Add(metrics.DroppedNoRoute, uint64(len(s.queue)))
		traceExpiredBatch(s.dev, len(s.queue), "no_route")
		s.queue = nil
		return
	}
	if s.rerouting {
		s.rerouting = false
		s.Metrics.Inc(metrics.Reroutes)
		s.Metrics.Add(metrics.FailoverLatencyUs, uint64(s.dev.Now()-s.lostAt))
		s.Metrics.Observe(metrics.HistFailoverLatencyUs, uint64(s.dev.Now()-s.lostAt))
		traceReroute(s.dev, best.Gateway, "rediscovery", s.dev.Now()-s.lostAt)
	}
	for _, p := range s.queue {
		s.sendData(p, best)
	}
	s.queue = nil
}

func (s *MLRSensor) sendData(payload []byte, r *Route) {
	s.seq++
	// The gateway currently at the place may differ from the one that
	// originally taught us the route; address whoever is there now, both
	// end to end and — when the gateway is the very next hop — at the
	// link layer.
	gw := r.Gateway
	if cur, ok := s.active[r.Place]; ok {
		gw = cur
	}
	to := r.NextHop()
	if to == r.Gateway {
		to = gw
	}
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    s.dev.ID(),
		To:      to,
		Origin:  s.dev.ID(),
		Target:  gw,
		Seq:     s.seq,
		TTL:     s.Params.TTL,
		Payload: placePayload(r.Place, payload),
	}
	s.Metrics.RecordGenerated(s.dev.ID(), s.seq, s.dev.Now())
	if s.dev.Send(pkt) {
		s.Metrics.Inc(metrics.DataSent)
	}
}

// learnRoute records a route for a place if new or shorter, also noting the
// place as active under the given gateway.
func (s *MLRSensor) learnRoute(place int, gw packet.NodeID, path []packet.NodeID) {
	s.active[place] = gw
	s.lastHeard[gw] = s.dev.Now()
	r := Route{Gateway: gw, Place: place, Hops: len(path) - 1, Path: append([]packet.NodeID(nil), path...)}
	if old, ok := s.table[place]; !ok || r.Hops < old.Hops {
		s.table[place] = r
	}
}

// HandleMessage implements node.Stack.
func (s *MLRSensor) HandleMessage(pkt *packet.Packet) {
	if s.dev == nil {
		return // not attached to a device yet
	}
	switch pkt.Kind {
	case packet.KindRReq:
		s.handleRReq(pkt)
	case packet.KindRRes:
		s.handleRRes(pkt)
	case packet.KindData:
		s.handleData(pkt)
	case packet.KindNotify:
		s.handleNotify(pkt)
	}
}

func (s *MLRSensor) handleRReq(pkt *packet.Packet) {
	if pkt.Origin == s.dev.ID() || s.seen.Check(pkt.Origin, pkt.Seq) {
		return
	}
	// Answer from the table for every active place we know (step 3.1),
	// and re-flood only if some active place is still unknown to us.
	answered := 0
	if s.Params.NoShortcutAnswers {
		goto reflood
	}
	// Sorted place order: each RRES transmission consumes loss draws from
	// the kernel RNG, so answering in map order would make lossy runs
	// nondeterministic.
	for _, p := range s.ActivePlaces() {
		gw := s.active[p]
		r, ok := s.table[p]
		if !ok || r.Gateway != gw {
			continue
		}
		full := pkt.AppendHop(s.dev.ID())
		full = append(full, r.Path[1:]...)
		full = compressPath(full)
		res := &packet.Packet{
			Kind:    packet.KindRRes,
			From:    s.dev.ID(),
			To:      pkt.From,
			Origin:  s.dev.ID(),
			Target:  pkt.Origin,
			Seq:     pkt.Seq,
			TTL:     s.Params.TTL,
			Path:    full,
			Payload: placePayload(p, nil),
		}
		if s.dev.Send(res) {
			s.Metrics.Inc(metrics.RResSent)
		}
		answered++
	}
	if answered > 0 && len(s.missingActivePlaces()) == 0 {
		return // complete answer; suppress the flood
	}
reflood:
	if pkt.TTL <= 1 {
		return
	}
	fwd := pkt.Clone()
	fwd.Path = pkt.AppendHop(s.dev.ID())
	fwd.From = s.dev.ID()
	fwd.TTL--
	fwd.Hops++
	s.sendFlood(fwd, metrics.RReqSent)
}

// sendFlood transmits a flood rebroadcast with optional de-synchronizing
// jitter (see Params.FloodJitter).
func (s *MLRSensor) sendFlood(fwd *packet.Packet, counter metrics.Counter) {
	if j := s.Params.FloodJitter; j > 0 {
		delay := sim.Duration(s.dev.World().Kernel().Rand().Int63n(int64(j)))
		s.dev.After(delay, func() {
			if s.dev.Alive() && s.dev.Send(fwd) {
				s.Metrics.Inc(counter)
			}
		})
		return
	}
	if s.dev.Send(fwd) {
		s.Metrics.Inc(counter)
	}
}

func (s *MLRSensor) handleRRes(pkt *packet.Packet) {
	place, _, ok := parsePlacePayload(pkt.Payload)
	if !ok || len(pkt.Path) < 2 {
		return
	}
	gw := pkt.Path[len(pkt.Path)-1]
	idx := indexOf(pkt.Path, s.dev.ID())
	if idx < 0 {
		return
	}
	// Record the suffix route while the response travels back (§6.2.2
	// applies the same discipline to MLR's plain variant).
	s.learnRoute(place, gw, pkt.Path[idx:])
	if pkt.Target == s.dev.ID() {
		return // learned; decide() fires on its timer
	}
	if idx == 0 {
		return
	}
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.To = pkt.Path[idx-1]
	fwd.Hops++
	if s.dev.Send(fwd) {
		s.Metrics.Inc(metrics.RResSent)
	}
}

func (s *MLRSensor) handleData(pkt *packet.Packet) {
	if pkt.Target == s.dev.ID() {
		// Downstream delivery (gateway -> this sensor, source-routed).
		if len(pkt.Path) > 0 && s.OnDownstream != nil {
			s.OnDownstream(pkt.Origin, pkt.Payload)
		}
		return
	}
	if pkt.TTL <= 1 {
		s.Metrics.Inc(metrics.ForwardTTLExpired)
		traceExpired(s.dev, pkt, "ttl")
		return
	}
	if len(pkt.Path) > 0 {
		// Downstream packet in transit: follow the source route.
		idx := indexOf(pkt.Path, s.dev.ID())
		if idx < 0 || idx+1 >= len(pkt.Path) {
			return
		}
		fwd := pkt.Clone()
		fwd.From = s.dev.ID()
		fwd.To = pkt.Path[idx+1]
		fwd.TTL--
		fwd.Hops++
		if s.dev.Send(fwd) {
			s.Metrics.Inc(metrics.DataSent)
		}
		return
	}
	place, body, ok := parsePlacePayload(pkt.Payload)
	if !ok {
		return
	}
	r, entry := s.table[place]
	if !entry {
		if s.Params.LinkRetries > 0 && !s.redirectData(pkt, body, true) {
			s.Metrics.Inc(metrics.ForwardNoEntry)
			traceExpired(s.dev, pkt, "no_entry")
			s.ensureDiscovery()
		}
		return
	}
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.To = r.NextHop()
	if fwd.To == r.Gateway {
		// Last hop: the route was learned under a previous tenant of this
		// place; address the gateway the packet is actually destined for.
		fwd.To = pkt.Target
	}
	fwd.TTL--
	fwd.Hops++
	if s.dev.Send(fwd) {
		s.Metrics.Inc(metrics.DataSent)
	}
}

func (s *MLRSensor) handleNotify(pkt *packet.Packet) {
	if s.seen.Check(pkt.Origin, pkt.Seq) {
		return
	}
	if len(pkt.Payload) < 1 {
		return
	}
	switch pkt.Payload[0] {
	case mlrNotifyMove:
		n, ok := parseMLRNotify(pkt.Payload[1:])
		if !ok {
			return
		}
		s.lastHeard[pkt.Origin] = s.dev.Now()
		s.applyNotify(pkt.Origin, n)
	case notifyAdvert:
		place, ok := parseAdvert(pkt.Payload)
		if !ok {
			return
		}
		s.lastHeard[pkt.Origin] = s.dev.Now()
		if place >= 0 && s.Params.AdvertInterval > 0 {
			// The beacon re-activates the gateway's place, so a recovered
			// gateway comes back without waiting for the next round.
			s.active[place] = pkt.Origin
		}
	case mlrNotifyOverload:
		place, _, ok := parseOverloadNotify(pkt.Payload)
		if !ok {
			return
		}
		clear := s.Params.OverloadClear
		if clear <= 0 {
			clear = 60 * sim.Second
		}
		s.overloaded[place] = s.dev.Now() + clear
	default:
		return
	}
	if pkt.TTL <= 1 {
		return
	}
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.TTL--
	fwd.Hops++
	s.sendFlood(fwd, metrics.NotifySent)
}

func (s *MLRSensor) applyNotify(gw packet.NodeID, n mlrNotify) {
	if n.PrevPlace != NoPlace {
		if cur, ok := s.active[int(n.PrevPlace)]; ok && cur == gw {
			delete(s.active, int(n.PrevPlace))
		}
	}
	s.active[int(n.NewPlace)] = gw
}

// PlacedGateway is a gateway stack that a round controller can deploy at
// feasible places. Both MLRGateway and SecMLRGateway implement it.
type PlacedGateway interface {
	node.Stack
	SetPlace(place, round int, moved bool)
}

// Rounds drives MLR gateway mobility: at the start of each round it moves
// gateway devices to the scheduled feasible places and lets moved gateways
// announce themselves. The topology stays fixed within a round (§5.1).
type Rounds struct {
	World    *node.World
	Places   []geom.Point
	Gateways []packet.NodeID // gateway device IDs, parallel to Schedule rows
	RoundLen sim.Duration
	// Schedule maps round -> gateway -> place index. Rounds beyond the
	// schedule repeat the last row (gateways stop moving).
	Schedule [][]int

	round   int
	current []int // place per gateway; -1 before deployment
	stopped bool
}

// Start deploys round 0 immediately and schedules subsequent rounds.
func (r *Rounds) Start() {
	if len(r.Schedule) == 0 {
		panic("core: Rounds needs a non-empty schedule")
	}
	r.current = make([]int, len(r.Gateways))
	for i := range r.current {
		r.current[i] = -1
	}
	r.apply(0)
	r.scheduleNext()
}

// Stop halts future round transitions.
func (r *Rounds) Stop() { r.stopped = true }

// Round returns the current round number.
func (r *Rounds) Round() int { return r.round }

// CurrentPlaces returns the place index per gateway.
func (r *Rounds) CurrentPlaces() []int { return append([]int(nil), r.current...) }

func (r *Rounds) scheduleNext() {
	r.World.Kernel().After(r.RoundLen, func() {
		if r.stopped {
			return
		}
		r.round++
		r.apply(r.round)
		r.scheduleNext()
	})
}

func (r *Rounds) apply(round int) {
	row := r.Schedule[min(round, len(r.Schedule)-1)]
	if len(row) != len(r.Gateways) {
		panic(fmt.Sprintf("core: schedule row %d has %d places for %d gateways", round, len(row), len(r.Gateways)))
	}
	for i, gwID := range r.Gateways {
		place := row[i]
		if place < 0 || place >= len(r.Places) {
			panic(fmt.Sprintf("core: schedule row %d place %d out of range", round, place))
		}
		dev := r.World.Device(gwID)
		if dev == nil || !dev.Alive() {
			continue
		}
		moved := r.current[i] != place
		if moved {
			dev.Move(r.Places[place])
			r.current[i] = place
		}
		if pg, ok := dev.Stack().(PlacedGateway); ok {
			pg.SetPlace(place, round, moved)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
