package service

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"

	"wmsn/internal/metrics"
	"wmsn/internal/obs"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// Job states, in lifecycle order.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// StreamLine is one line of a job's JSONL stream. Exactly one of the
// optional payload fields is set, discriminated by Type:
//
//	"job"     stream header: job ID, state, run count
//	"trace"   one obs event of run Run (Ev set)
//	"series"  run Run's time-bucketed series (Series set), emitted at run end
//	"result"  run Run completed (Metrics and the summary fields set)
//	"error"   run Run failed or was canceled (Error set)
//	"notice"  service notice (Error carries the text, e.g. trace truncation)
//	"progress" wall-clock heartbeat with the live watermark (Progress set);
//	          only emitted when the request set progress_s > 0
//	"done"    terminal line: final state and delivery counts
//
// cmd/wmsntrace -from-stream consumes this framing to replay a streamed
// run's trace through the standard replay pipeline.
type StreamLine struct {
	Type  string `json:"type"`
	Run   int    `json:"run,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	State string `json:"state,omitempty"`

	ID   string `json:"id,omitempty"`
	Runs int    `json:"runs,omitempty"`

	Ev       *obs.Event         `json:"ev,omitempty"`
	Series   *trace.TableData   `json:"series,omitempty"`
	Progress *scenario.Progress `json:"progress,omitempty"`

	Metrics      *metrics.Snapshot `json:"metrics,omitempty"`
	ElapsedS     float64           `json:"elapsed_s,omitempty"`
	FirstDeathS  float64           `json:"first_death_s,omitempty"`
	SensorsAlive int               `json:"sensors_alive,omitempty"`
	SensorsTotal int               `json:"sensors_total,omitempty"`

	Error string `json:"error,omitempty"`

	Delivered int `json:"delivered,omitempty"`
	Errors    int `json:"errors,omitempty"`
}

// seconds renders a virtual time as float seconds for the wire.
func seconds(t sim.Time) float64 { return float64(t) / float64(sim.Second) }

// Job is one accepted run request moving through the queue. Its stream
// buffer retains every emitted line for the job's lifetime so late or
// repeated streamers replay from the start and still see live tail growth.
type Job struct {
	id   string
	opts jobOptions

	// board holds one lock-free progress probe per run; the kernels publish
	// watermarks into it and GET /v1/jobs/{id}/progress reads them live.
	board *scenario.ProgressBoard

	ctx    context.Context
	cancel context.CancelCauseFunc

	// finished flips exactly once, before the terminal stream line; the
	// disconnect watcher reads it to avoid canceling an already-done job.
	finished atomic.Bool

	mu         sync.Mutex
	state      string
	lines      [][]byte
	notify     chan struct{} // closed and replaced on every append
	closed     bool          // terminal line written; no more appends
	traceLines int           // trace lines buffered so far (for the cap)
	truncated  bool
	delivered  int // runs that produced a result
	runErrors  int // runs that delivered an error
}

func newJob(id string, opts jobOptions, base context.Context) *Job {
	ctx, cancel := context.WithCancelCause(base)
	return &Job{
		id:     id,
		opts:   opts,
		board:  scenario.NewProgressBoard(len(opts.cfgs)),
		ctx:    ctx,
		cancel: cancel,
		state:  StateQueued,
		notify: make(chan struct{}),
	}
}

// append marshals one stream line into the buffer and wakes every waiting
// streamer. Appends after close are dropped (a canceled job's in-flight
// trace emissions race its terminal line; losing them is correct).
func (j *Job) append(l StreamLine) {
	b, err := json.Marshal(l)
	if err != nil {
		return // a StreamLine always marshals; defensive only
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.lines = append(j.lines, b)
	ch := j.notify
	j.notify = make(chan struct{})
	j.mu.Unlock()
	close(ch)
}

// appendTrace is append for high-volume trace lines: it enforces the
// per-job cap, emitting a single truncation notice when crossed.
func (j *Job) appendTrace(l StreamLine, maxLines int) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	if j.traceLines >= maxLines {
		notify := !j.truncated
		j.truncated = true
		j.mu.Unlock()
		if notify {
			j.append(StreamLine{Type: "notice", Error: "trace truncated: per-job trace line limit reached"})
		}
		return
	}
	j.traceLines++
	j.mu.Unlock()
	j.append(l)
}

// setState transitions the job's reported state.
func (j *Job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// finish writes the terminal line and closes the stream. Idempotent.
func (j *Job) finish(state string) {
	if !j.finished.CompareAndSwap(false, true) {
		return
	}
	j.mu.Lock()
	j.state = state
	delivered, errs := j.delivered, j.runErrors
	j.mu.Unlock()
	j.append(StreamLine{Type: "done", ID: j.id, State: state,
		Runs: len(j.opts.cfgs), Delivered: delivered, Errors: errs})
	j.mu.Lock()
	j.closed = true
	ch := j.notify
	j.notify = make(chan struct{})
	j.mu.Unlock()
	close(ch) // wake streamers one last time so they observe closed
}

// Status is the JSON body of GET /v1/jobs/{id}.
type Status struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Runs      int    `json:"runs"`
	Delivered int    `json:"delivered"`
	Errors    int    `json:"errors,omitempty"`
	Truncated bool   `json:"trace_truncated,omitempty"`
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:        j.id,
		State:     j.state,
		Runs:      len(j.opts.cfgs),
		Delivered: j.delivered,
		Errors:    j.runErrors,
		Truncated: j.truncated,
	}
}

// wait blocks until the buffer holds more than cursor lines, the stream is
// closed, or done fires. It returns the lines past cursor, whether the
// stream is closed, and whether the wait was aborted by done.
func (j *Job) wait(cursor int, done <-chan struct{}) (lines [][]byte, closed, aborted bool) {
	for {
		j.mu.Lock()
		if len(j.lines) > cursor || j.closed {
			lines = j.lines[cursor:]
			closed = j.closed
			j.mu.Unlock()
			return lines, closed, false
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-done:
			return nil, false, true
		}
	}
}
