package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"wmsn/internal/fault"
	"wmsn/internal/sim"
)

func TestValidateRejectsMisconfigurations(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"unknown protocol", Config{Protocol: "carrier-pigeon"}, "unknown protocol"},
		{"negative sensors", Config{NumSensors: -5}, "NumSensors"},
		{"negative gateways", Config{NumGateways: -1}, "NumGateways"},
		{"negative side", Config{Side: -100}, "Side"},
		{"negative range", Config{SensorRange: -35}, "SensorRange"},
		{"negative interval", Config{ReportInterval: -sim.Second}, "ReportInterval"},
		{"negative battery", Config{SensorBattery: -2}, "SensorBattery"},
		{"loss rate one", Config{LossRate: 1.0}, "LossRate"},
		{"loss rate NaN", Config{LossRate: math.NaN()}, "LossRate"},
		{"leach prob high", Config{LEACHProb: 1.5}, "LEACHProb"},
		{"schedule row width", Config{NumGateways: 3, Schedule: [][]int{{0, 1}}}, "Schedule row 0"},
		{"schedule place range", Config{Protocol: SPR, NumGateways: 2, Schedule: [][]int{{0, 9}}}, "out of range"},
		{"teen nil field", Config{TEEN: &TEENConfig{Hard: 1, Soft: 0.5}}, "nil Field"},
		{"fault past horizon", Config{RunFor: 10 * sim.Second,
			Faults: fault.NewPlan().CrashAt(60*sim.Second, 1)}, "never fire"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("config validated, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config (all defaults) rejected: %v", err)
	}
}

func TestRunEReturnsErrorNotPanic(t *testing.T) {
	if _, err := RunE(Config{Protocol: "carrier-pigeon"}); err == nil {
		t.Fatal("RunE accepted an unknown protocol")
	}
	if _, err := BuildE(Config{NumSensors: -1}); err == nil {
		t.Fatal("BuildE accepted a negative sensor count")
	}
	res, err := RunE(Config{Seed: 1, NumSensors: 30, RunFor: 20 * sim.Second})
	if err != nil {
		t.Fatalf("valid config: %v", err)
	}
	if res.Metrics.Generated == 0 {
		t.Fatal("valid RunE produced no traffic")
	}
}

// gatewayFailoverConfig is the acceptance scenario: SPR, three gateways,
// the busiest one crashing mid-run.
func gatewayFailoverConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Protocol:    SPR,
		NumSensors:  60,
		Side:        150,
		SensorRange: 40,
		NumGateways: 3,
		RunFor:      120 * sim.Second,
		Faults:      fault.NewPlan().KillGateway(60*sim.Second, 0).Settle(10 * sim.Second),
	}
}

func TestSPRFailsOverOnGatewayKill(t *testing.T) {
	res := Run(gatewayFailoverConfig(1))
	rel := res.Reliability
	if rel == nil {
		t.Fatal("no Reliability summary on a faulted run")
	}
	if rel.FaultsInjected != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", rel.FaultsInjected)
	}
	if rel.Reroutes == 0 {
		t.Fatal("no reroutes after killing the gateway — failover never happened")
	}
	// Reroute must land within one advertisement period of the liveness
	// deadline (the sweep period equals the advert interval, 1s default).
	if rel.TimeToReroute > sim.Second {
		t.Fatalf("TimeToReroute %v exceeds one advert interval (1s)", rel.TimeToReroute)
	}
	if len(rel.Windows) != 1 {
		t.Fatalf("windows %+v, want exactly one", rel.Windows)
	}
	w := rel.Windows[0]
	if w.Before < 0.9 {
		t.Fatalf("pre-fault delivery %.3f, want healthy (>0.9)", w.Before)
	}
	// Post-settle delivery recovers to within 5%% of pre-fault.
	if w.After < w.Before-0.05 {
		t.Fatalf("post-fault delivery %.3f not within 5%% of pre-fault %.3f", w.After, w.Before)
	}
}

func TestFaultedRunDeterministicAcrossWorkers(t *testing.T) {
	cfgs := []Config{gatewayFailoverConfig(1), gatewayFailoverConfig(2), {
		Seed: 3, Protocol: MLR, NumSensors: 50, Side: 150, SensorRange: 40,
		NumGateways: 2, RunFor: 90 * sim.Second,
		Faults: fault.NewPlan().
			KillGateway(30*sim.Second, 1).
			WithChurn(fault.Churn{Rate: 120, MTTR: 2 * sim.Second}),
	}}
	seq := RunMany(1, cfgs)
	par := RunMany(8, cfgs)
	for i := range cfgs {
		a, b := seq[i], par[i]
		if !reflect.DeepEqual(a.Metrics.Snapshot(), b.Metrics.Snapshot()) {
			t.Fatalf("cfg %d: metrics differ between workers=1 and workers=8:\n%v\nvs\n%v",
				i, a.Metrics.Snapshot(), b.Metrics.Snapshot())
		}
		if !reflect.DeepEqual(a.Reliability, b.Reliability) {
			t.Fatalf("cfg %d: reliability differs:\n%+v\nvs\n%+v", i, a.Reliability, b.Reliability)
		}
	}
}

func TestChurnedScenarioHeals(t *testing.T) {
	res := Run(Config{
		Seed: 5, Protocol: SPR, NumSensors: 40, Side: 120, SensorRange: 40,
		NumGateways: 2, RunFor: 2 * sim.Minute,
		Faults: fault.NewPlan().WithChurn(fault.Churn{
			Rate: 300, MTTR: 3 * sim.Second, Stop: 90 * sim.Second,
		}),
	})
	if res.Reliability == nil || res.Reliability.FaultsInjected == 0 {
		t.Fatalf("churn injected nothing: %+v", res.Reliability)
	}
	if res.SensorsAlive != res.SensorsTotal {
		t.Fatalf("%d/%d sensors alive at the end — churn recoveries should heal the field",
			res.SensorsAlive, res.SensorsTotal)
	}
	if res.Metrics.DeliveryRatio() < 0.7 {
		t.Fatalf("delivery ratio %.3f under moderate churn, want > 0.7", res.Metrics.DeliveryRatio())
	}
}
