package wsncrypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"wmsn/internal/packet"
)

var master = []byte("network-master-secret-for-tests")

func TestDeriveKeyDeterministicAndDistinct(t *testing.T) {
	k1 := DeriveKey(master, 1, 100)
	k2 := DeriveKey(master, 1, 100)
	if k1 != k2 {
		t.Fatal("same pair derived different keys")
	}
	if DeriveKey(master, 1, 101) == k1 {
		t.Fatal("different gateway, same key")
	}
	if DeriveKey(master, 2, 100) == k1 {
		t.Fatal("different node, same key")
	}
	if DeriveKey([]byte("other"), 1, 100) == k1 {
		t.Fatal("different master, same key")
	}
	// Pair order matters: K(a,b) != K(b,a).
	if DeriveKey(master, 100, 1) == k1 {
		t.Fatal("swapped pair, same key")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := DeriveKey(master, 1, 100)
	msgs := [][]byte{nil, {}, []byte("x"), []byte("routing query to G1"), bytes.Repeat([]byte{0xAA}, 1000)}
	for _, m := range msgs {
		ct := Encrypt(k, 7, m)
		if len(ct) != len(m) {
			t.Fatalf("ciphertext length %d != plaintext %d", len(ct), len(m))
		}
		if got := Decrypt(k, 7, ct); !bytes.Equal(got, m) {
			t.Fatalf("round trip failed for %d bytes", len(m))
		}
	}
}

func TestEncryptDependsOnCounterAndKey(t *testing.T) {
	k := DeriveKey(master, 1, 100)
	m := []byte("same plaintext")
	if bytes.Equal(Encrypt(k, 1, m), Encrypt(k, 2, m)) {
		t.Fatal("different counters produced identical ciphertext")
	}
	k2 := DeriveKey(master, 2, 100)
	if bytes.Equal(Encrypt(k, 1, m), Encrypt(k2, 1, m)) {
		t.Fatal("different keys produced identical ciphertext")
	}
	// Wrong counter fails to decrypt.
	if bytes.Equal(Decrypt(k, 9, Encrypt(k, 1, m)), m) {
		t.Fatal("wrong counter decrypted successfully")
	}
}

func TestMACVerify(t *testing.T) {
	k := DeriveKey(master, 1, 100)
	data := []byte("req|path")
	tag := Sum(k, 5, data)
	if len(tag) != MACSize {
		t.Fatalf("tag size %d, want %d", len(tag), MACSize)
	}
	if !Verify(k, 5, data, tag) {
		t.Fatal("valid tag rejected")
	}
	if Verify(k, 6, data, tag) {
		t.Fatal("wrong counter accepted")
	}
	if Verify(k, 5, []byte("req|path2"), tag) {
		t.Fatal("modified data accepted")
	}
	if Verify(DeriveKey(master, 2, 100), 5, data, tag) {
		t.Fatal("wrong key accepted")
	}
}

func TestMACRejectsBitFlips(t *testing.T) {
	k := DeriveKey(master, 3, 100)
	data := []byte("the quick brown sensor")
	tag := Sum(k, 1, data)
	for i := 0; i < len(tag); i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), tag...)
			flipped[i] ^= 1 << bit
			if Verify(k, 1, data, flipped) {
				t.Fatalf("flipped tag byte %d bit %d accepted", i, bit)
			}
		}
	}
}

func TestReplayGuard(t *testing.T) {
	var g ReplayGuard
	if _, any := g.Highest(); any {
		t.Fatal("fresh guard claims an accepted counter")
	}
	if !g.Accept(0) {
		t.Fatal("first counter 0 rejected")
	}
	if g.Accept(0) {
		t.Fatal("replayed counter 0 accepted")
	}
	if !g.Accept(5) {
		t.Fatal("larger counter rejected")
	}
	if g.Accept(3) {
		t.Fatal("stale counter accepted")
	}
	if g.Accept(5) {
		t.Fatal("replay of current counter accepted")
	}
	if !g.Accept(6) {
		t.Fatal("next counter rejected")
	}
	if g.Replays != 3 {
		t.Fatalf("replay count = %d, want 3", g.Replays)
	}
	if h, any := g.Highest(); !any || h != 6 {
		t.Fatalf("Highest = %d/%v", h, any)
	}
}

func TestQuickReplayGuardMonotonic(t *testing.T) {
	f := func(counters []uint16) bool {
		var g ReplayGuard
		var accepted []uint64
		for _, c := range counters {
			if g.Accept(uint64(c)) {
				accepted = append(accepted, uint64(c))
			}
		}
		for i := 1; i < len(accepted); i++ {
			if accepted[i] <= accepted[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTeslaChainBasics(t *testing.T) {
	c := NewTeslaChain([]byte("gw-seed"), 10)
	if c.Intervals() != 10 {
		t.Fatalf("Intervals = %d", c.Intervals())
	}
	// Chain property: H(K[i+1]) == K[i].
	for i := 1; i < 10; i++ {
		if !bytes.Equal(hashKey(c.KeyAt(i+1)), c.KeyAt(i)) {
			t.Fatalf("chain broken at %d", i)
		}
	}
	if !bytes.Equal(hashKey(c.KeyAt(1)), c.Commitment()) {
		t.Fatal("K[1] does not hash to commitment")
	}
}

func TestTeslaChainPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTeslaChain([]byte("s"), 0) },
		func() { NewTeslaChain([]byte("s"), 3).KeyAt(0) },
		func() { NewTeslaChain([]byte("s"), 3).KeyAt(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTeslaVerifyFlow(t *testing.T) {
	chain := NewTeslaChain([]byte("gw-7"), 20)
	v := NewTeslaVerifier(chain.Commitment())

	msg := []byte("gateway G7 moved to place D")
	tag := chain.Authenticate(3, msg)

	// Before disclosure nothing verifies.
	if v.VerifyMessage(3, msg, tag) {
		t.Fatal("message verified before key disclosure")
	}
	// Disclose K[3]; verifier hashes 3 steps back to commitment.
	if !v.AcceptKey(3, chain.KeyAt(3)) {
		t.Fatal("genuine key rejected")
	}
	if v.Interval() != 3 {
		t.Fatalf("interval = %d", v.Interval())
	}
	if !v.VerifyMessage(3, msg, tag) {
		t.Fatal("authentic message rejected after disclosure")
	}
	if v.VerifyMessage(3, []byte("forged"), tag) {
		t.Fatal("forged message accepted")
	}
}

func TestTeslaRejectsForgedAndStaleKeys(t *testing.T) {
	chain := NewTeslaChain([]byte("gw-7"), 20)
	v := NewTeslaVerifier(chain.Commitment())

	forged := bytes.Repeat([]byte{0x42}, KeySize)
	if v.AcceptKey(1, forged) {
		t.Fatal("forged key accepted")
	}
	if !v.AcceptKey(5, chain.KeyAt(5)) {
		t.Fatal("skip-ahead disclosure rejected (should chain through)")
	}
	// Replaying an older interval's key must fail.
	if v.AcceptKey(3, chain.KeyAt(3)) {
		t.Fatal("stale key accepted")
	}
	if v.AcceptKey(5, chain.KeyAt(5)) {
		t.Fatal("same-interval re-disclosure accepted")
	}
	// A key from a different chain fails even at the right interval.
	other := NewTeslaChain([]byte("attacker"), 20)
	if v.AcceptKey(6, other.KeyAt(6)) {
		t.Fatal("cross-chain key accepted")
	}
	// And the real next key still works afterwards.
	if !v.AcceptKey(6, chain.KeyAt(6)) {
		t.Fatal("genuine key rejected after failed forgeries")
	}
}

func TestTeslaVerifyMessageWrongInterval(t *testing.T) {
	chain := NewTeslaChain([]byte("x"), 5)
	v := NewTeslaVerifier(chain.Commitment())
	v.AcceptKey(2, chain.KeyAt(2))
	msg := []byte("m")
	tag := chain.Authenticate(2, msg)
	if v.VerifyMessage(1, msg, tag) {
		t.Fatal("verified against non-current interval")
	}
}

// Property: encrypt/decrypt round-trips for arbitrary keys, counters, data.
func TestQuickEncryptRoundTrip(t *testing.T) {
	f := func(node, gw uint32, counter uint64, data []byte) bool {
		k := DeriveKey(master, packet.NodeID(node), packet.NodeID(gw))
		return bytes.Equal(Decrypt(k, counter, Encrypt(k, counter, data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MAC verification accepts exactly the genuine (counter, data).
func TestQuickMACSoundness(t *testing.T) {
	f := func(counter uint64, data []byte, tweak uint8) bool {
		k := DeriveKey(master, 9, 200)
		tag := Sum(k, counter, data)
		if !Verify(k, counter, data, tag) {
			return false
		}
		// Tamper with data (when non-empty) and ensure rejection.
		if len(data) > 0 {
			bad := append([]byte(nil), data...)
			bad[int(tweak)%len(bad)] ^= 0xFF
			if Verify(k, counter, bad, tag) {
				return false
			}
		}
		return !Verify(k, counter+1, data, tag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncrypt64B(b *testing.B) {
	k := DeriveKey(master, 1, 100)
	data := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encrypt(k, uint64(i), data)
	}
}

func BenchmarkMAC64B(b *testing.B) {
	k := DeriveKey(master, 1, 100)
	data := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum(k, uint64(i), data)
	}
}
