# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short cover bench experiments experiments-quick fuzz examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every reproduced table/figure at full scale (~8 minutes).
experiments:
	$(GO) run ./cmd/wmsnbench

experiments-quick:
	$(GO) run ./cmd/wmsnbench -quick

# Short fuzzing pass over every wire-format parser.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/packet/
	$(GO) test -fuzz=FuzzParseRReqBlocks -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzParseNotifyPayloads -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzSecMLRGatewayInput -fuzztime=30s ./internal/core/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/forestfire
	$(GO) run ./examples/battlefield
	$(GO) run ./examples/building

clean:
	rm -f cover.out wmsnbench test_output.txt bench_output.txt
