package packet

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzUnmarshal drives the packet decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode to an equivalent
// packet (decode/encode/decode fixpoint).
func FuzzUnmarshal(f *testing.F) {
	f.Add(samplePacket().Marshal())
	f.Add((&Packet{Kind: KindHello, From: 1, To: Broadcast, Origin: 1, Target: Broadcast}).Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		re := p.Marshal()
		p2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("decode/encode/decode not a fixpoint:\n%+v\n%+v", p, p2)
		}
	})
}
