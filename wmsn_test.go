package wmsn_test

import (
	"testing"

	"wmsn"
)

// The facade tests exercise the public API exactly as the README shows it,
// so the documented entry points cannot rot.

func TestQuickstartFlow(t *testing.T) {
	res := wmsn.Run(wmsn.Config{
		Seed: 1, Protocol: wmsn.SPR,
		NumSensors: 50, Side: 150, SensorRange: 35, NumGateways: 3,
		RunFor: 60 * wmsn.Second,
	})
	if res.Metrics.DeliveryRatio() < 0.9 {
		t.Fatalf("quickstart delivery = %v", res.Metrics.DeliveryRatio())
	}
	if res.Energy.N != 50 {
		t.Fatalf("energy stats over %d nodes", res.Energy.N)
	}
}

func TestBuildAndMutateFlow(t *testing.T) {
	net := wmsn.Build(wmsn.Config{
		Seed: 2, Protocol: wmsn.MLR,
		NumSensors: 40, Side: 140, SensorRange: 35, NumGateways: 2,
		RoundLen: 20 * wmsn.Second, RunFor: 60 * wmsn.Second,
	})
	if net.Rounds == nil {
		t.Fatal("MLR build has no round controller")
	}
	g := wmsn.GraphFromWorld(net.World)
	if g.Len() != 42 { // 40 sensors + 2 gateways
		t.Fatalf("graph has %d vertices", g.Len())
	}
	res := net.RunTraffic()
	if res.Metrics.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestManualAssemblyFlow(t *testing.T) {
	// Assemble a network by hand through the facade: 3 sensors in a line,
	// one gateway, SPR stacks.
	w := wmsn.NewWorld(7)
	m := wmsn.NewMetrics()
	p := wmsn.DefaultParams()
	var first interface{ OriginateData([]byte) }
	for i := 0; i < 3; i++ {
		st := wmsn.NewSPRSensor(p, m)
		if i == 0 {
			first = st
		}
		w.AddSensor(wmsn.NodeID(i+1), wmsn.Point{X: float64(i) * 10}, 12, 0, st)
	}
	w.AddGateway(1000, wmsn.Point{X: 30}, 12, 100, wmsn.NewSPRGateway(p, m))
	first.OriginateData([]byte("hello"))
	w.Run(5 * wmsn.Second)
	if m.Delivered != 1 {
		t.Fatalf("delivered %d", m.Delivered)
	}
}

func TestMeshFacade(t *testing.T) {
	w := wmsn.NewWorld(3)
	gw := w.AddGateway(1000, wmsn.Point{}, 30, 150, nil)
	bs := w.AddBaseStation(2000, wmsn.Point{X: 120}, 150)
	b := wmsn.NewMeshBackbone(wmsn.DefaultMeshConfig(), gw, bs)
	w.Run(20 * wmsn.Second)
	got := 0
	b.Router(2000).OnDeliver = func(*wmsn.Packet) { got++ }
	b.Router(1000).SendTo(2000, 5, 1, []byte("up"))
	w.Run(25 * wmsn.Second)
	if got != 1 {
		t.Fatalf("mesh delivered %d", got)
	}
}

func TestExperimentSuiteExposed(t *testing.T) {
	if got := len(wmsn.AllExperiments()); got != 15 {
		t.Fatalf("suite has %d experiments", got)
	}
}

func TestPlacementFacade(t *testing.T) {
	sensors := []wmsn.Point{{X: 0}, {X: 10}, {X: 20}, {X: 30}}
	ev := wmsn.EvaluatePlacement(sensors, []wmsn.Point{{X: 40}}, 12)
	if ev.MaxHops != 4 {
		t.Fatalf("MaxHops = %d", ev.MaxHops)
	}
	if k := wmsn.Kmax([]float64{1, 2, 2.01}, 0.05); k != 2 {
		t.Fatalf("Kmax = %d", k)
	}
	if sched := wmsn.RotationSchedule(4, 2, 3); len(sched) != 3 {
		t.Fatalf("schedule rounds = %d", len(sched))
	}
}

func TestAttackFacade(t *testing.T) {
	wh, a, bEnd := wmsn.NewWormhole()
	if a == nil || bEnd == nil || wh == nil {
		t.Fatal("wormhole constructor returned nils")
	}
	r := wmsn.NewReplayer(wmsn.Second)
	if r == nil {
		t.Fatal("replayer nil")
	}
}
