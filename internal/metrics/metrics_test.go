package metrics

import (
	"encoding/json"
	"math"
	"testing"

	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

func TestLatencyPercentileEmptyAndClamped(t *testing.T) {
	m := New()
	// No samples: every percentile is the zero duration, including the
	// degenerate inputs that used to hit int(NaN) conversions.
	for _, p := range []float64{-10, 0, 50, 100, 250, math.NaN()} {
		if got := m.LatencyPercentile(p); got != 0 {
			t.Fatalf("LatencyPercentile(%v) on empty = %v, want 0", p, got)
		}
	}

	// Three samples recorded out of order: 30ms, 10ms, 20ms.
	for i, d := range []sim.Duration{30, 10, 20} {
		at := sim.Time(100 * i)
		m.RecordGenerated(packet.NodeID(i+1), 1, at)
		m.RecordDelivered(packet.NodeID(i+1), 1, packet.NodeID(9), 2, at+d*sim.Millisecond)
	}
	cases := []struct {
		p    float64
		want sim.Duration
	}{
		{-5, 10 * sim.Millisecond},         // below range clamps to min
		{0, 10 * sim.Millisecond},          // p=0 is the minimum sample
		{50, 20 * sim.Millisecond},         // median
		{100, 30 * sim.Millisecond},        // p=100 is the maximum sample
		{400, 30 * sim.Millisecond},        // above range clamps to max
		{math.NaN(), 10 * sim.Millisecond}, // NaN clamps to min, not a panic
	}
	for _, c := range cases {
		if got := m.LatencyPercentile(c.p); got != c.want {
			t.Fatalf("LatencyPercentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestGatewayLoadImbalanceZeroDeliveries(t *testing.T) {
	m := New()
	if got := m.GatewayLoadImbalance(); got != 0 {
		t.Fatalf("imbalance with no gateways = %v, want 0", got)
	}
	// A gateway key with zero recorded deliveries must not divide by zero.
	m.perGateway[packet.NodeID(1)] = 0
	m.perGateway[packet.NodeID(2)] = 0
	if got := m.GatewayLoadImbalance(); got != 0 {
		t.Fatalf("imbalance with all-zero gateways = %v, want 0", got)
	}
	m.perGateway[packet.NodeID(2)] = 6
	if got := m.GatewayLoadImbalance(); got != 2 {
		t.Fatalf("imbalance = %v, want 2 (max 6 / mean 3)", got)
	}
}

func TestEmptyStatHelpers(t *testing.T) {
	m := New()
	if r := m.DeliveryRatio(); r != 1 {
		t.Fatalf("DeliveryRatio with nothing generated = %v, want 1", r)
	}
	if h := m.MeanHops(); h != 0 {
		t.Fatalf("MeanHops with no deliveries = %v, want 0", h)
	}
	if l := m.MeanLatency(); l != 0 {
		t.Fatalf("MeanLatency with no deliveries = %v, want 0", l)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	m := New()
	m.RecordGenerated(1, 7, 0)
	m.RecordDelivered(1, 7, 100, 3, 5*sim.Millisecond)
	m.RecordDelivered(1, 7, 101, 4, 6*sim.Millisecond)
	if m.Delivered != 1 || m.Duplicates != 1 {
		t.Fatalf("delivered=%d duplicates=%d, want 1/1", m.Delivered, m.Duplicates)
	}
	if n := m.DeliveredFrom(1); n != 1 {
		t.Fatalf("DeliveredFrom = %d, want 1", n)
	}
}

func TestIncAddCountRoundTrip(t *testing.T) {
	m := New()
	for c := Counter(0); c < numCounters; c++ {
		m.Inc(c)
		m.Add(c, 2)
	}
	for c := Counter(0); c < numCounters; c++ {
		if got := m.Count(c); got != 3 {
			t.Fatalf("Count(%v) = %d, want 3", c, got)
		}
	}
	// Every counter has a distinct backing field and a distinct name.
	names := map[string]bool{}
	for _, n := range CounterNames() {
		if n == "" || names[n] {
			t.Fatalf("counter name %q missing or duplicated", n)
		}
		names[n] = true
	}
	// Out-of-range counters are ignored, not a panic.
	m.Inc(numCounters + 5)
	if got := m.Count(numCounters + 5); got != 0 {
		t.Fatalf("unknown counter Count = %d, want 0", got)
	}
}

func TestMergeDeterministic(t *testing.T) {
	mk := func(seqBase uint32) *Memory {
		m := New()
		m.Inc(DataSent)
		m.Add(RReqSent, 4)
		m.RecordGenerated(3, seqBase, 0)
		m.RecordDelivered(3, seqBase, 200, 2, 10*sim.Millisecond)
		return m
	}
	// Two runs that reuse the same (origin, seq) keys: the merge must keep
	// both deliveries (counts are summed, dedup maps are not merged).
	a, b := mk(1), mk(1)
	var total Memory
	total.Merge(a)
	total.Merge(b)
	if total.Delivered != 2 || total.Generated != 2 {
		t.Fatalf("merged delivered=%d generated=%d, want 2/2", total.Delivered, total.Generated)
	}
	if total.DataSent != 2 || total.RReqSent != 8 {
		t.Fatalf("merged DataSent=%d RReqSent=%d, want 2/8", total.DataSent, total.RReqSent)
	}
	if got := total.PerGateway()[packet.NodeID(200)]; got != 2 {
		t.Fatalf("merged per-gateway = %d, want 2", got)
	}
	if got := total.MeanHops(); got != 2 {
		t.Fatalf("merged MeanHops = %v, want 2", got)
	}
	total.Merge(nil) // no-op, not a panic

	// Aggregates folding the same inputs in the same order are identical.
	agg1, agg2 := NewAggregate(), NewAggregate()
	for _, m := range []*Memory{a, b} {
		agg1.Absorb(m)
		agg2.Absorb(m)
	}
	s1, _ := json.Marshal(agg1.Snapshot())
	s2, _ := json.Marshal(agg2.Snapshot())
	if string(s1) != string(s2) {
		t.Fatalf("aggregate snapshots differ:\n%s\n%s", s1, s2)
	}
	if agg1.Runs() != 2 {
		t.Fatalf("Runs = %d, want 2", agg1.Runs())
	}
}

func TestSnapshotJSON(t *testing.T) {
	m := New()
	m.RecordGenerated(5, 1, 0)
	m.RecordDelivered(5, 1, 300, 3, 20*sim.Millisecond)
	m.Inc(DataSent)
	s := m.Snapshot()
	if s.DeliveryRatio != 1 || s.MeanHops != 3 || s.MeanLatencyMS != 20 {
		t.Fatalf("snapshot stats wrong: %+v", s)
	}
	if s.Counters["data_sent"] != 1 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
	if s.PerGateway["n300"] != 1 {
		t.Fatalf("snapshot per-gateway = %v", s.PerGateway)
	}
	if _, ok := s.Counters["rreq_sent"]; ok {
		t.Fatal("zero counters must be omitted from the snapshot")
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

// TestCounterNamesExhaustive pins the counter schema: every enum value must
// carry a real snake_case name (new counters can't ship unnamed) and every
// name must be unique, since Snapshot.Counters keys on it.
func TestCounterNamesExhaustive(t *testing.T) {
	seen := map[string]Counter{}
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if name == "" || name == "unknown_counter" {
			t.Errorf("counter %d has no name", c)
		}
		for _, r := range name {
			if !(r == '_' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
				t.Errorf("counter %d name %q is not snake_case", c, name)
				break
			}
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("counters %d and %d share the name %q", prev, c, name)
		}
		seen[name] = c
	}
	if got := len(CounterNames()); got != int(numCounters) {
		t.Fatalf("CounterNames() lists %d names, want %d", got, numCounters)
	}
}

// TestEveryCounterBackedAndSnapshotted proves Inc reaches a backing field for
// every enum value and that the value surfaces in Snapshot under the
// counter's name — no silently absorbed counters.
func TestEveryCounterBackedAndSnapshotted(t *testing.T) {
	m := New()
	for c := Counter(0); c < numCounters; c++ {
		if m.counterPtr(c) == nil {
			t.Fatalf("counter %s (%d) has no backing field", c, c)
		}
		m.Add(c, uint64(c)+1)
	}
	s := m.Snapshot()
	for c := Counter(0); c < numCounters; c++ {
		if got := s.Counters[c.String()]; got != uint64(c)+1 {
			t.Errorf("Snapshot.Counters[%q] = %d, want %d", c.String(), got, uint64(c)+1)
		}
		if got := m.Count(c); got != uint64(c)+1 {
			t.Errorf("Count(%s) = %d, want %d", c, got, uint64(c)+1)
		}
	}
	if len(s.Counters) != int(numCounters) {
		t.Fatalf("Snapshot carries %d counters, want %d", len(s.Counters), numCounters)
	}
}

// runMemory builds one synthetic "run" with per-gateway deliveries recorded
// in the given order — the map-insertion order a worker's schedule controls.
func runMemory(gws []packet.NodeID) *Memory {
	m := New()
	for i, gw := range gws {
		seq := uint32(i + 1)
		m.RecordGenerated(1, seq, sim.Time(i)*sim.Second)
		m.RecordDelivered(1, seq, gw, 2+i, sim.Time(i)*sim.Second+50*sim.Millisecond)
	}
	m.Inc(RReqSent)
	m.Add(RadioBytesOnAir, 512)
	return m
}

// TestSnapshotJSONDeterministic pins the export format: snapshots of runs
// whose map contents were inserted in different orders — exactly what
// different worker interleavings produce — must serialize byte-identically,
// and repeated marshals of one snapshot must never flap.
func TestSnapshotJSONDeterministic(t *testing.T) {
	gws := []packet.NodeID{1_000_000, 1_000_001, 1_000_002}
	rev := []packet.NodeID{1_000_002, 1_000_001, 1_000_000}
	a, err := json.Marshal(runMemory(gws).Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(runMemory(rev).Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Hop order differs (2,3,4 vs the same set), so MeanHops agrees; the
	// per-gateway map must serialize sorted either way.
	if string(a) != string(b) {
		t.Fatalf("insertion order leaked into Snapshot JSON:\n%s\nvs\n%s", a, b)
	}
	for i := 0; i < 5; i++ {
		c, _ := json.Marshal(runMemory(gws).Snapshot())
		if string(c) != string(a) {
			t.Fatalf("marshal %d differs:\n%s\nvs\n%s", i, c, a)
		}
	}
}

// TestMergeOrderIsDeterministic pins the aggregation contract: folding the
// same per-run Memories in submission order yields byte-identical snapshot
// JSON no matter how the runs' own maps were populated, and Merge sums every
// counter field (none skipped).
func TestMergeOrderIsDeterministic(t *testing.T) {
	build := func(gws []packet.NodeID) string {
		agg := NewAggregate()
		agg.Absorb(runMemory(gws))
		agg.Absorb(runMemory([]packet.NodeID{1_000_001}))
		buf, err := json.Marshal(agg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	a := build([]packet.NodeID{1_000_000, 1_000_001, 1_000_002})
	b := build([]packet.NodeID{1_000_002, 1_000_001, 1_000_000})
	if a != b {
		t.Fatalf("aggregate JSON depends on per-run map population order:\n%s\nvs\n%s", a, b)
	}
	// Merge must fold every counter: a Memory with all counters set merges
	// into an empty one without losing a single field.
	src := New()
	for c := Counter(0); c < numCounters; c++ {
		src.Add(c, uint64(c)+1)
	}
	dst := New()
	dst.Merge(src)
	for c := Counter(0); c < numCounters; c++ {
		if dst.Count(c) != uint64(c)+1 {
			t.Errorf("Merge dropped counter %s", c)
		}
	}
}
