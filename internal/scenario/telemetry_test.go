package scenario

import (
	"encoding/json"
	"testing"

	"wmsn/internal/metrics"
	"wmsn/internal/sim"
)

// histJSON renders a result's histogram map; byte-equal JSON implies
// bit-equal histogram state (the snapshot lists exact bucket contents).
func histJSON(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r.Metrics.Snapshot().Histograms)
	if err != nil {
		t.Fatalf("marshal histograms: %v", err)
	}
	return string(b)
}

// TestShardedHistogramSnapshotsIdentical pins the tentpole determinism
// claim: the delivery-latency histogram of a tie-free run (Direct: no flood
// cascades, so no same-microsecond arrival ties) is bit-identical across
// shard counts — the concurrent engine's atomic observes fold to the same
// state as the sequential engine's.
func TestShardedHistogramSnapshotsIdentical(t *testing.T) {
	base := Config{Protocol: Direct, Seed: 5, NumSensors: 120, RunFor: 60 * sim.Second}
	var want string
	for _, shards := range []int{1, 4, 8} {
		cfg := base
		cfg.Shards = shards
		r := Run(cfg)
		if r.Metrics.Delivered == 0 {
			t.Fatalf("shards %d: delivered nothing", shards)
		}
		got := histJSON(t, r)
		if want == "" {
			want = got
			if want == "null" {
				t.Fatal("sequential run produced no histograms")
			}
			continue
		}
		if got != want {
			t.Errorf("shards %d: histogram snapshot diverged from sequential\nseq:     %s\nsharded: %s",
				shards, want, got)
		}
	}
}

// TestWorkerCountAggregateIdentical pins the merge side of the contract: the
// aggregate of a sweep, folded in submission order, is byte-identical at any
// worker count — histogram Merge is order-independent and the fold order is
// pinned, so parallelism cannot leak into the numbers.
func TestWorkerCountAggregateIdentical(t *testing.T) {
	var cfgs []Config
	for s := 0; s < 6; s++ {
		cfgs = append(cfgs, Config{Protocol: SPR, Seed: int64(s), NumSensors: 60, RunFor: 30 * sim.Second})
	}
	snap := func(workers int) string {
		agg := metrics.NewAggregate()
		for _, r := range RunMany(workers, cfgs) {
			agg.Absorb(r.Metrics)
		}
		b, err := json.Marshal(agg.Snapshot())
		if err != nil {
			t.Fatalf("marshal aggregate: %v", err)
		}
		return string(b)
	}
	seq, par := snap(1), snap(8)
	if seq != par {
		t.Fatalf("aggregate snapshot differs between workers=1 and workers=8\nworkers=1: %s\nworkers=8: %s", seq, par)
	}
}

// TestRunPublishesProgress checks the live watermark end to end through the
// scenario layer: a run with Config.Progress set publishes virtual time,
// event and delivery counts, and marks itself done — with the delivery count
// agreeing exactly with the run's metrics.
func TestRunPublishesProgress(t *testing.T) {
	board := NewProgressBoard(1)
	cfg := Config{Protocol: SPR, Seed: 3, NumSensors: 60, RunFor: 30 * sim.Second,
		Progress: board.Run(0)}
	r := Run(cfg)
	p := board.Snapshot(true)
	if p.DoneRuns != 1 || !p.PerRun[0].Done {
		t.Fatalf("run not marked done: %+v", p)
	}
	if p.Deliveries != r.Metrics.Delivered {
		t.Errorf("progress deliveries %d != metrics delivered %d", p.Deliveries, r.Metrics.Delivered)
	}
	if p.Events == 0 || p.SimTimeS <= 0 {
		t.Errorf("watermark missing events/time: %+v", p)
	}
}

// TestShardedRunPublishesProgress is the same check through the region-
// sharded engine, where only the coordinator publishes (at window barriers
// plus the final quiesce).
func TestShardedRunPublishesProgress(t *testing.T) {
	board := NewProgressBoard(1)
	cfg := Config{Protocol: SPR, Seed: 3, NumSensors: 120, Shards: 3, RunFor: 30 * sim.Second,
		Progress: board.Run(0)}
	r := Run(cfg)
	p := board.Snapshot(false)
	if p.DoneRuns != 1 {
		t.Fatalf("sharded run not marked done: %+v", p)
	}
	if p.Deliveries != r.Metrics.Delivered {
		t.Errorf("progress deliveries %d != metrics delivered %d", p.Deliveries, r.Metrics.Delivered)
	}
	if p.Events == 0 {
		t.Errorf("sharded watermark published no events: %+v", p)
	}
}
