// Quickstart: deploy 100 sensors and 3 gateways on a 200 m field, run the
// paper's SPR routing for two simulated minutes of periodic reporting, and
// print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"wmsn"
)

func main() {
	res, err := wmsn.RunE(wmsn.Config{
		Seed:        42,
		Protocol:    wmsn.SPR,
		NumSensors:  100,
		Side:        200, // meters
		SensorRange: 35,  // meters
		NumGateways: 3,
		RunFor:      120 * wmsn.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	m := res.Metrics
	fmt.Printf("generated readings : %d\n", m.Generated)
	fmt.Printf("delivered          : %d (%.1f%%)\n", m.Delivered, 100*m.DeliveryRatio())
	fmt.Printf("mean hops          : %.2f\n", m.MeanHops())
	fmt.Printf("mean latency       : %.1f ms\n", m.MeanLatency().Millis())
	fmt.Printf("control packets    : %d\n", m.ControlPackets())
	fmt.Printf("mean sensor energy : %.2f mJ\n", res.Energy.Mean*1000)

	// Which gateway absorbed how much — the multi-gateway architecture at
	// work (a flat WSN would funnel everything into one sink).
	for gw, count := range m.PerGateway() {
		fmt.Printf("  via %v: %d readings\n", gw, count)
	}
}
