package wmsn_test

// Benchmark harness: one testing.B benchmark per reproduced table/figure
// (the E1..E12 suite of DESIGN.md) plus ablation and end-to-end benches.
// Each benchmark iteration regenerates its experiment at reduced (Quick)
// scale so `go test -bench=.` terminates in reasonable time; run
// cmd/wmsnbench for the full-scale tables recorded in EXPERIMENTS.md.

import (
	"fmt"
	"runtime"
	"testing"

	"wmsn"
)

func benchOpts() wmsn.ExperimentOpts { return wmsn.ExperimentOpts{Quick: true, Seeds: 1} }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for _, e := range wmsn.AllExperiments() {
		if e.ID != id {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tables := e.Run(benchOpts())
			if len(tables) == 0 {
				b.Fatalf("%s produced no tables", id)
			}
		}
		return
	}
	b.Fatalf("unknown experiment %s", id)
}

// BenchmarkFig2HopReduction regenerates E1 (the paper's Fig. 2 plus the
// gateway-count sweep).
func BenchmarkFig2HopReduction(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkTable1MLRRounds regenerates E2 (the paper's Table 1).
func BenchmarkTable1MLRRounds(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkScalability regenerates E3 (hops/latency vs field size).
func BenchmarkScalability(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkLifetime regenerates E4 (lifetime and energy balance).
func BenchmarkLifetime(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkGatewayNumber regenerates E5 (lifetime vs k, Kmax).
func BenchmarkGatewayNumber(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkRobustness regenerates E6 (delivery under node failures).
func BenchmarkRobustness(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkSinkFailure regenerates E7 (single point of failure).
func BenchmarkSinkFailure(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkLoadBalance regenerates E8 (hotspot load across gateways).
func BenchmarkLoadBalance(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkAttackMatrix regenerates E9 (8 attacks x MLR/SecMLR).
func BenchmarkAttackMatrix(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkSecurityOverhead regenerates E10 (SecMLR cost vs MLR).
func BenchmarkSecurityOverhead(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkTopologyControl regenerates E11 (sleep/power control).
func BenchmarkTopologyControl(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkSPRConvergence regenerates E12 (optimality and overhead).
func BenchmarkSPRConvergence(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkReliability regenerates E13 (recovery under injected faults).
func BenchmarkReliability(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkEndToEndSPR measures raw simulator throughput on the standard
// SPR workload (events include every radio delivery).
func BenchmarkEndToEndSPR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := wmsn.Run(wmsn.Config{
			Seed: int64(i + 1), Protocol: wmsn.SPR,
			NumSensors: 80, Side: 180, SensorRange: 40, NumGateways: 3,
			ReportInterval: 10 * wmsn.Second, RunFor: 60 * wmsn.Second,
			SensorBattery: 1e6,
		})
		if res.Metrics.Delivered == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

// BenchmarkEndToEndSecMLR measures the secured stack end to end, crypto
// included.
func BenchmarkEndToEndSecMLR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := wmsn.Run(wmsn.Config{
			Seed: int64(i + 1), Protocol: wmsn.SecMLR,
			NumSensors: 60, Side: 160, SensorRange: 40, NumGateways: 2,
			RoundLen: 20 * wmsn.Second, ReportInterval: 10 * wmsn.Second,
			RunFor: 60 * wmsn.Second, SensorBattery: 1e6,
		})
		if res.Metrics.Delivered == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

// BenchmarkExperimentParallel measures the worker-pool speedup on a batch of
// independent scenario runs (16 seeds of the BenchmarkEndToEndSPR workload):
// the sequential baseline against one worker per CPU. The two sub-benchmarks
// produce identical results by construction (see TestParallelOutputByteIdentical);
// only wall-clock differs. On a single-CPU host the two are equivalent.
func BenchmarkExperimentParallel(b *testing.B) {
	const batch = 16
	cfgs := make([]wmsn.Config, batch)
	for s := range cfgs {
		cfgs[s] = wmsn.Config{
			Seed: int64(s + 1), Protocol: wmsn.SPR,
			NumSensors: 80, Side: 180, SensorRange: 40, NumGateways: 3,
			ReportInterval: 10 * wmsn.Second, RunFor: 60 * wmsn.Second,
			SensorBattery: 1e6,
		}
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := wmsn.RunMany(workers, cfgs)
				for _, res := range results {
					if res.Metrics.Delivered == 0 {
						b.Fatal("nothing delivered")
					}
				}
			}
		})
	}
}

// BenchmarkEndToEndARQ is the link-ARQ hot-path A/B. The "off" variant is
// the exact BenchmarkEndToEndSPR workload (ARQ disabled by default), so
// comparing the two quantifies what the ARQ code paths cost when dormant —
// it must stay within noise. The "on" variant arms the retransmit machine
// on the same clean medium (overhead = ACK traffic plus queue bookkeeping),
// and "on-lossy" shows what the reliability actually buys at 20% per-link
// loss, with delivery reported alongside the timing.
func BenchmarkEndToEndARQ(b *testing.B) {
	for _, v := range []struct {
		name    string
		loss    float64
		retries int
	}{{"off", 0, 0}, {"on", 0, 4}, {"on-lossy", 0.2, 4}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var delivery float64
			var retries uint64
			for i := 0; i < b.N; i++ {
				cfg := wmsn.Config{
					Seed: int64(i + 1), Protocol: wmsn.SPR,
					NumSensors: 80, Side: 180, SensorRange: 40, NumGateways: 3,
					ReportInterval: 10 * wmsn.Second, RunFor: 60 * wmsn.Second,
					SensorBattery: 1e6, LossRate: v.loss,
				}
				if v.retries > 0 {
					params := wmsn.DefaultParams()
					params.LinkRetries = v.retries
					cfg.Params = &params
				}
				res := wmsn.Run(cfg)
				if res.Metrics.Delivered == 0 {
					b.Fatal("nothing delivered")
				}
				delivery += res.Metrics.DeliveryRatio()
				retries += res.Metrics.LinkRetries
			}
			b.ReportMetric(delivery/float64(b.N), "delivery")
			b.ReportMetric(float64(retries)/float64(b.N), "link-retries/run")
		})
	}
}

// BenchmarkAblationShortcut quantifies the Property-1 shortcut (cached-route
// nodes answering queries): the same SPR workload with and without it. The
// tradeoff is real in both directions — the shortcut suppresses re-flooding
// but multiplies responses (the answer implosion documented in DESIGN.md),
// so its net control cost depends on scale; its reliable win is discovery
// latency (answers come from nearby caches instead of distant gateways).
func BenchmarkAblationShortcut(b *testing.B) {
	for _, variant := range []struct {
		name string
		off  bool
	}{{"shortcut-on", false}, {"shortcut-off", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var ctrl uint64
			var lat float64
			for i := 0; i < b.N; i++ {
				res := wmsn.Run(wmsn.Config{
					Seed: int64(i + 1), Protocol: wmsn.SPR,
					NumSensors: 80, Side: 180, SensorRange: 40, NumGateways: 2,
					ReportInterval: 10 * wmsn.Second, RunFor: 60 * wmsn.Second,
					SensorBattery: 1e6, NoShortcutAnswers: variant.off,
				})
				ctrl += res.Metrics.ControlPackets()
				lat += res.Metrics.MeanLatency().Millis()
			}
			b.ReportMetric(float64(ctrl)/float64(b.N), "ctrl-pkts/run")
			b.ReportMetric(lat/float64(b.N), "latency-ms")
		})
	}
}

// BenchmarkAblationGatewayWait quantifies SecMLR's gateway-side path
// collection window (§6.2.2). On a clean deterministic medium the first
// RREQ copy to arrive is already near-optimal and the window is useless;
// it earns its keep on lossy, collision-prone channels with flood jitter,
// where the first copy may be a detour — so that is the medium this
// ablation runs on.
func BenchmarkAblationGatewayWait(b *testing.B) {
	for _, wait := range []wmsn.Duration{0, 60 * wmsn.Millisecond, 200 * wmsn.Millisecond} {
		wait := wait
		b.Run(wait.String(), func(b *testing.B) {
			var hops, delivery float64
			for i := 0; i < b.N; i++ {
				params := wmsn.DefaultParams()
				params.GatewayWait = wait
				params.FloodJitter = 20 * wmsn.Millisecond
				res := wmsn.Run(wmsn.Config{
					Seed: int64(i + 1), Protocol: wmsn.SecMLR,
					NumSensors: 60, Side: 160, SensorRange: 40, NumGateways: 2,
					RoundLen: 30 * wmsn.Second, ReportInterval: 10 * wmsn.Second,
					RunFor: 40 * wmsn.Second, SensorBattery: 1e6,
					LossRate: 0.1, Collisions: true,
					Params: &params,
				})
				hops += res.Metrics.MeanHops()
				delivery += res.Metrics.DeliveryRatio()
			}
			b.ReportMetric(hops/float64(b.N), "mean-hops")
			b.ReportMetric(delivery/float64(b.N), "delivery")
		})
	}
}

// BenchmarkAblationSchedule contrasts the two MLR rotation schedules under
// SecMLR: the tenant-stable partitioned rotation (default) against the
// naive sliding rotation that changes every place's tenant each round and
// forces constant route re-verification.
func BenchmarkAblationSchedule(b *testing.B) {
	for _, v := range []struct {
		name    string
		sliding bool
	}{{"partitioned", false}, {"sliding", true}} {
		b.Run(v.name, func(b *testing.B) {
			var ctrl, delivered uint64
			for i := 0; i < b.N; i++ {
				cfg := wmsn.Config{
					Seed: int64(i + 1), Protocol: wmsn.SecMLR,
					NumSensors: 60, Side: 160, SensorRange: 40, NumGateways: 2,
					RoundLen: 20 * wmsn.Second, Rounds: 8,
					ReportInterval: 10 * wmsn.Second, RunFor: 120 * wmsn.Second,
					SensorBattery: 1e6,
				}
				if v.sliding {
					cfg.Schedule = wmsn.SlidingSchedule(4, 2, 8)
				}
				res := wmsn.Run(cfg)
				ctrl += res.Metrics.ControlPackets()
				delivered += res.Metrics.Delivered
			}
			b.ReportMetric(float64(ctrl)/float64(b.N), "ctrl-pkts/run")
			b.ReportMetric(float64(delivered)/float64(b.N), "delivered/run")
		})
	}
}
