package sim

import "fmt"

// Conservative-window primitives for the sharded execution engine
// (internal/node EnableSharding). A sharded world drives one Kernel per
// spatial region; the window loop interrogates each lane's earliest pending
// event (NextAt), lets workers execute events strictly below a shared
// horizon (RunBefore), and aligns lane clocks at barriers (AdvanceTo).
// Each Kernel is still single-goroutine: the window loop guarantees that a
// lane kernel is only touched by its worker during a parallel window and
// only by the coordinating goroutine between windows.

// NextAt returns the firing time of the earliest pending event and whether
// one exists.
func (k *Kernel) NextAt() (Time, bool) {
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// RunBefore executes every pending event with a timestamp strictly earlier
// than horizon, in the usual (at, seq) order, and returns how many ran. The
// clock is left at the last executed event — never advanced to the horizon —
// so a cross-window event scheduled later at exactly the horizon is still in
// the future. Stop breaks the loop just as it does for Run.
func (k *Kernel) RunBefore(horizon Time) uint64 {
	k.stopped = false
	start := k.fired
	check := 0
	for !k.stopped {
		if k.interrupt != nil || k.progress != nil {
			if check == 0 {
				k.progress.Publish(k.now, k.fired)
				if k.interrupt != nil && k.interrupt.Load() {
					k.stopped = true
					break
				}
				check = interruptStride
			}
			check--
		}
		if len(k.queue) == 0 || k.queue[0].at >= horizon {
			break
		}
		k.Step()
	}
	return k.fired - start
}

// AdvanceTo moves the clock forward to t without executing anything.
// Advancing past a pending event panics — that would reorder causality —
// and moving backwards is a no-op.
func (k *Kernel) AdvanceTo(t Time) {
	if t <= k.now {
		return
	}
	if len(k.queue) > 0 && k.queue[0].at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) past pending event at %v", t, k.queue[0].at))
	}
	k.now = t
}

// ClearStop resets the stop flag without running anything, so a coordinating
// loop that drives the kernel through Step/RunBefore can begin from a clean
// state exactly as Run does.
func (k *Kernel) ClearStop() { k.stopped = false }
