package core

import (
	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// SPR (§5.2) minimizes the number of hops between each sensor node and the
// best of the m gateways. Discovery is on demand: a sensor with data but no
// route floods an RREQ toward all gateways; gateways — and any sensor that
// already has a route, per Property 1 — answer with an RRES carrying the
// full path; the source picks the least-hop response. The first data packet
// carries the chosen path in its head and installs routing entries on every
// on-path node (step 5.2); subsequent packets are forwarded from those
// tables without carrying routes.

// SPRSensor is the sensor-node side of SPR.
type SPRSensor struct {
	Params  Params
	Metrics metrics.Sink

	dev  *node.Device
	seen *packet.Dedupe
	seq  uint32

	// table holds the discovered route per gateway; best points at the
	// entry currently used for data.
	table map[packet.NodeID]Route
	best  *Route
	// routeFresh marks that the next data packet must carry the path to
	// install on-path tables (SPR step 5.1).
	routeFresh bool

	// lastHeard tracks per-gateway liveness (see advert.go); rerouting and
	// lostAt carry a pending failover across a rediscovery when no cached
	// alternative survived the liveness sweep.
	lastHeard map[packet.NodeID]sim.Time
	rerouting bool
	lostAt    sim.Time

	queue       [][]byte
	discovering bool
	retriesLeft int
	responses   []Route
}

// NewSPRSensor creates a sensor stack with the given parameters and shared
// metrics sink.
func NewSPRSensor(p Params, m metrics.Sink) *SPRSensor {
	return &SPRSensor{Params: p, Metrics: m,
		table:     make(map[packet.NodeID]Route),
		lastHeard: make(map[packet.NodeID]sim.Time)}
}

// Start implements node.Stack.
func (s *SPRSensor) Start(dev *node.Device) {
	s.dev = dev
	s.seen = packet.NewDedupe(1 << 14)
	enableARQ(dev, s.Params, s.Metrics)
	if iv := s.Params.AdvertInterval; iv > 0 {
		dev.World().Kernel().Every(iv, s.sweep)
	}
}

// BestRoute returns the route data currently follows, or nil.
func (s *SPRSensor) BestRoute() *Route {
	if s.best == nil {
		return nil
	}
	r := *s.best
	return &r
}

// Table returns a copy of the routing table.
func (s *SPRSensor) Table() map[packet.NodeID]Route {
	out := make(map[packet.NodeID]Route, len(s.table))
	for k, v := range s.table {
		out[k] = v
	}
	return out
}

// OriginateData queues one payload for delivery to the best gateway,
// triggering route discovery when necessary (SPR step 1).
func (s *SPRSensor) OriginateData(payload []byte) {
	if s.dev == nil || !s.dev.Alive() {
		return
	}
	if s.best != nil {
		s.sendData(payload)
		return
	}
	if len(s.queue) >= s.Params.QueueLimit {
		s.Metrics.Inc(metrics.DroppedQueue)
		return
	}
	s.queue = append(s.queue, payload)
	if !s.discovering {
		s.retriesLeft = s.Params.Retries
		s.startDiscovery()
	}
}

func (s *SPRSensor) startDiscovery() {
	s.discovering = true
	s.responses = s.responses[:0]
	s.seq++
	req := &packet.Packet{
		Kind:   packet.KindRReq,
		From:   s.dev.ID(),
		To:     packet.Broadcast,
		Origin: s.dev.ID(),
		Target: packet.Broadcast, // "m destinations": any gateway
		Seq:    s.seq,
		TTL:    s.Params.TTL,
		Path:   []packet.NodeID{s.dev.ID()},
	}
	s.seen.Check(s.dev.ID(), s.seq) // never re-forward our own flood
	if s.dev.Send(req) {
		s.Metrics.Inc(metrics.RReqSent)
	}
	s.dev.After(s.Params.ResponseWait, s.decide)
}

// decide concludes a discovery window (SPR step 4).
func (s *SPRSensor) decide() {
	if !s.discovering || s.dev == nil || !s.dev.Alive() {
		return
	}
	s.discovering = false
	best := bestOf(s.responses)
	if best == nil {
		if s.retriesLeft > 0 {
			s.retriesLeft--
			s.startDiscovery()
			return
		}
		s.Metrics.Add(metrics.DroppedNoRoute, uint64(len(s.queue)))
		traceExpiredBatch(s.dev, len(s.queue), "no_route")
		s.queue = nil
		return
	}
	s.table[best.Gateway] = *best
	s.best = best
	s.routeFresh = true
	if s.Params.AdvertInterval > 0 {
		// Liveness mode: keep every answer as a failover alternative and
		// note the answering gateways as alive. Off by default so plain
		// runs keep their exact table contents.
		now := s.dev.Now()
		for _, r := range s.responses {
			if old, ok := s.table[r.Gateway]; !ok || r.Hops < old.Hops {
				s.table[r.Gateway] = r
			}
			s.lastHeard[r.Gateway] = now
		}
		if s.rerouting {
			s.rerouting = false
			s.Metrics.Inc(metrics.Reroutes)
			s.Metrics.Add(metrics.FailoverLatencyUs, uint64(now-s.lostAt))
			s.Metrics.Observe(metrics.HistFailoverLatencyUs, uint64(now-s.lostAt))
			traceReroute(s.dev, best.Gateway, "rediscovery", now-s.lostAt)
		}
	}
	for _, p := range s.queue {
		s.sendData(p)
	}
	s.queue = nil
}

// sweep is the periodic liveness check armed when Params.AdvertInterval is
// set: routes through gateways past their liveness deadline are dropped,
// and a lost best route fails over to the next-best surviving entry. The
// recorded failover latency is the gap between the liveness deadline
// expiring and the replacement being installed — bounded by one advert
// interval, since that is the sweep period.
func (s *SPRSensor) sweep() {
	if s.dev == nil || !s.dev.Alive() {
		return
	}
	timeout := s.Params.advertTimeout()
	now := s.dev.Now()
	lostAt := sim.Time(-1)
	for gw := range s.table {
		at, ok := s.lastHeard[gw]
		if !ok || now <= at+timeout {
			continue // never confirmed (bootstrap) or still live
		}
		delete(s.table, gw)
		delete(s.lastHeard, gw)
		if s.best != nil && s.best.Gateway == gw {
			lostAt = at + timeout
		}
	}
	if lostAt < 0 {
		return
	}
	s.best = nil
	rs := make([]Route, 0, len(s.table))
	for _, r := range s.table {
		rs = append(rs, r)
	}
	if next := bestOf(rs); next != nil {
		s.best = next
		s.routeFresh = true
		s.Metrics.Inc(metrics.Reroutes)
		s.Metrics.Add(metrics.FailoverLatencyUs, uint64(now-lostAt))
		s.Metrics.Observe(metrics.HistFailoverLatencyUs, uint64(now-lostAt))
		traceReroute(s.dev, next.Gateway, "liveness", now-lostAt)
		return
	}
	// No cached alternative: rediscover immediately instead of waiting for
	// the next origination; credit the reroute when the discovery
	// concludes.
	s.rerouting = true
	s.lostAt = lostAt
	if !s.discovering {
		s.retriesLeft = s.Params.Retries
		s.startDiscovery()
	}
}

// HandleLinkFailure implements node.LinkFailureHandler: the link layer
// exhausted its ARQ retry budget sending pkt to pkt.To, so that hop is
// treated as dead. Every cached route through it is dropped and the frame
// is re-sent along the best surviving route when one exists. Losing the
// active route with no alternative falls into the same rerouting/lostAt
// state the advert sweep uses, so decide() credits exactly one reroute no
// matter which detector — ARQ exhaustion or advert expiry — fired first.
func (s *SPRSensor) HandleLinkFailure(pkt *packet.Packet) {
	if pkt.Kind != packet.KindData || s.dev == nil || !s.dev.Alive() {
		return
	}
	dead := pkt.To
	wasBest := s.best != nil && s.best.NextHop() == dead
	for gw, r := range s.table {
		if r.NextHop() == dead {
			delete(s.table, gw)
		}
	}
	if wasBest {
		s.best = nil
		rs := make([]Route, 0, len(s.table))
		for _, r := range s.table {
			rs = append(rs, r)
		}
		if next := bestOf(rs); next != nil {
			// Replacement installed the instant the loss was detected; the
			// failover latency is zero by construction.
			s.best = next
			s.routeFresh = true
			s.Metrics.Inc(metrics.Reroutes)
			traceReroute(s.dev, dead, "link_failure", 0)
		} else if !s.rerouting {
			s.rerouting = true
			s.lostAt = s.dev.Now()
			if !s.discovering {
				s.retriesLeft = s.Params.Retries
				s.startDiscovery()
			}
		}
	}
	// Recover the frame itself. Own data restarts on the new best route;
	// mid-path data re-forwards from a surviving table entry. The carried
	// path installs forwarding state downstream (step 5.2), exactly like
	// the first packet after discovery.
	if pkt.Origin == s.dev.ID() {
		if s.best == nil {
			return // rediscovery in flight; this reading is lost
		}
		fwd := pkt.Clone()
		fwd.From = s.dev.ID()
		fwd.To = s.best.NextHop()
		fwd.Target = s.best.Gateway
		fwd.TTL = s.Params.TTL
		fwd.Path = append([]packet.NodeID(nil), s.best.Path...)
		s.routeFresh = false
		if s.dev.Send(fwd) {
			s.Metrics.Inc(metrics.DataSent)
		}
		return
	}
	r, ok := s.table[pkt.Target]
	if !ok {
		return // no surviving route for this flow; the frame is lost here
	}
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.To = r.NextHop()
	fwd.Path = append([]packet.NodeID(nil), r.Path...)
	if s.dev.Send(fwd) {
		s.Metrics.Inc(metrics.DataSent)
	}
}

// bestOf picks the least-hop route; ties break toward the smaller gateway ID
// for determinism.
func bestOf(rs []Route) *Route {
	var best *Route
	for i := range rs {
		r := &rs[i]
		if best == nil || r.Hops < best.Hops ||
			(r.Hops == best.Hops && r.Gateway < best.Gateway) {
			best = r
		}
	}
	if best == nil {
		return nil
	}
	c := *best
	return &c
}

func (s *SPRSensor) sendData(payload []byte) {
	s.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    s.dev.ID(),
		To:      s.best.NextHop(),
		Origin:  s.dev.ID(),
		Target:  s.best.Gateway,
		Seq:     s.seq,
		TTL:     s.Params.TTL,
		Payload: payload,
	}
	if s.routeFresh {
		// First packet after (re)discovery carries the route (step 5.1).
		pkt.Path = append([]packet.NodeID(nil), s.best.Path...)
		s.routeFresh = false
	}
	s.Metrics.RecordGenerated(s.dev.ID(), s.seq, s.dev.Now())
	if s.dev.Send(pkt) {
		s.Metrics.Inc(metrics.DataSent)
	}
}

// HandleMessage implements node.Stack.
func (s *SPRSensor) HandleMessage(pkt *packet.Packet) {
	if s.dev == nil {
		return // not attached to a device yet
	}
	switch pkt.Kind {
	case packet.KindRReq:
		s.handleRReq(pkt)
	case packet.KindRRes:
		s.handleRRes(pkt)
	case packet.KindData:
		s.handleData(pkt)
	case packet.KindNotify:
		s.handleNotify(pkt)
	}
}

// handleNotify refreshes gateway liveness from an advert flood and
// re-floods it (adverts are the only NOTIFY plain SPR uses).
func (s *SPRSensor) handleNotify(pkt *packet.Packet) {
	if _, ok := parseAdvert(pkt.Payload); !ok {
		return
	}
	if pkt.Origin == s.dev.ID() || s.seen.Check(pkt.Origin, pkt.Seq) {
		return
	}
	s.lastHeard[pkt.Origin] = s.dev.Now()
	if pkt.TTL <= 1 {
		return
	}
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.TTL--
	fwd.Hops++
	s.sendFlood(fwd, metrics.NotifySent)
}

func (s *SPRSensor) handleRReq(pkt *packet.Packet) {
	if pkt.Origin == s.dev.ID() || s.seen.Check(pkt.Origin, pkt.Seq) {
		return
	}
	if s.best != nil && !s.Params.NoShortcutAnswers {
		// Step 3.1: a node with an established route answers directly
		// instead of re-flooding (Property 1 shortcut). The flood prefix
		// and the cached suffix may share nodes; erase any loops.
		full := pkt.AppendHop(s.dev.ID())
		full = append(full, s.best.Path[1:]...)
		full = compressPath(full)
		res := &packet.Packet{
			Kind:   packet.KindRRes,
			From:   s.dev.ID(),
			To:     pkt.From,
			Origin: s.dev.ID(),
			Target: pkt.Origin,
			Seq:    pkt.Seq,
			TTL:    s.Params.TTL,
			Path:   full,
		}
		if s.dev.Send(res) {
			s.Metrics.Inc(metrics.RResSent)
		}
		return
	}
	if pkt.TTL <= 1 {
		return
	}
	fwd := pkt.Clone()
	fwd.Path = pkt.AppendHop(s.dev.ID())
	fwd.From = s.dev.ID()
	fwd.TTL--
	fwd.Hops++
	s.sendFlood(fwd, metrics.RReqSent)
}

// sendFlood transmits a flood rebroadcast, optionally jittered to
// de-synchronize broadcast storms on collision-prone media.
func (s *SPRSensor) sendFlood(fwd *packet.Packet, counter metrics.Counter) {
	if j := s.Params.FloodJitter; j > 0 {
		delay := sim.Duration(s.dev.World().Kernel().Rand().Int63n(int64(j)))
		s.dev.After(delay, func() {
			if s.dev.Alive() && s.dev.Send(fwd) {
				s.Metrics.Inc(counter)
			}
		})
		return
	}
	if s.dev.Send(fwd) {
		s.Metrics.Inc(counter)
	}
}

func (s *SPRSensor) handleRRes(pkt *packet.Packet) {
	if pkt.Target == s.dev.ID() {
		if !s.discovering || len(pkt.Path) < 2 {
			return
		}
		gw := pkt.Path[len(pkt.Path)-1]
		s.responses = append(s.responses, Route{
			Gateway: gw,
			Place:   -1,
			Hops:    len(pkt.Path) - 1,
			Path:    append([]packet.NodeID(nil), pkt.Path...),
		})
		return
	}
	// Forward the response toward its target along the recorded path.
	idx := indexOf(pkt.Path, s.dev.ID())
	if idx <= 0 {
		return
	}
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.To = pkt.Path[idx-1]
	fwd.Hops++
	if s.dev.Send(fwd) {
		s.Metrics.Inc(metrics.RResSent)
	}
}

func (s *SPRSensor) handleData(pkt *packet.Packet) {
	if pkt.Target == s.dev.ID() {
		return // sensors are not data sinks; stop mis-addressed traffic
	}
	if pkt.TTL <= 1 {
		s.Metrics.Inc(metrics.ForwardTTLExpired)
		traceExpired(s.dev, pkt, "ttl")
		return
	}
	if len(pkt.Path) > 0 {
		// First packet of a flow: install the suffix route (step 5.2,
		// justified by Property 1) and forward along the carried path.
		idx := indexOf(pkt.Path, s.dev.ID())
		if idx < 0 || idx+1 >= len(pkt.Path) {
			s.Metrics.Inc(metrics.ForwardSelfLoop)
			traceExpired(s.dev, pkt, "self_loop")
			return
		}
		suffix := append([]packet.NodeID(nil), pkt.Path[idx:]...)
		r := Route{Gateway: pkt.Target, Place: -1, Hops: len(suffix) - 1, Path: suffix}
		if old, ok := s.table[pkt.Target]; !ok || r.Hops < old.Hops {
			s.table[pkt.Target] = r
			if s.best == nil || r.Hops < s.best.Hops {
				rr := r
				s.best = &rr
			}
		}
		if s.Params.AdvertInterval > 0 {
			// A flow actively routing through the gateway counts as proof
			// of life until the advert deadline says otherwise.
			s.lastHeard[pkt.Target] = s.dev.Now()
		}
		fwd := pkt.Clone()
		fwd.From = s.dev.ID()
		fwd.To = pkt.Path[idx+1]
		fwd.TTL--
		fwd.Hops++
		if s.dev.Send(fwd) {
			s.Metrics.Inc(metrics.DataSent)
		}
		return
	}
	// Path-less packet: forward from the local table (step 5.3).
	r, ok := s.table[pkt.Target]
	if !ok {
		if s.Params.LinkRetries > 0 && s.redirectData(pkt) {
			return
		}
		s.Metrics.Inc(metrics.ForwardNoEntry)
		traceExpired(s.dev, pkt, "no_entry")
		return
	}
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.To = r.NextHop()
	fwd.TTL--
	fwd.Hops++
	if s.dev.Send(fwd) {
		s.Metrics.Inc(metrics.DataSent)
	}
}

// redirectData re-targets a data frame this node can no longer forward —
// typically because a link-failure verdict invalidated its entry for
// pkt.Target — to the best surviving gateway, carrying the path so
// downstream tables re-install. Only used when link ARQ is armed: the
// upstream hop had its frame link-acknowledged by us, so dropping it here
// would be a silent blackhole no end-to-end mechanism ever notices.
func (s *SPRSensor) redirectData(pkt *packet.Packet) bool {
	rs := make([]Route, 0, len(s.table))
	for _, r := range s.table {
		rs = append(rs, r)
	}
	r := bestOf(rs)
	if r == nil {
		return false
	}
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.To = r.NextHop()
	fwd.Target = r.Gateway
	fwd.Path = append([]packet.NodeID(nil), r.Path...)
	fwd.TTL--
	fwd.Hops++
	if s.dev.Send(fwd) {
		s.Metrics.Inc(metrics.DataSent)
		return true
	}
	return false
}

func indexOf(path []packet.NodeID, id packet.NodeID) int {
	for i, p := range path {
		if p == id {
			return i
		}
	}
	return -1
}

// SPRGateway is the gateway (WMG) side of SPR: it answers route queries and
// absorbs data, optionally relaying it up the mesh backbone.
type SPRGateway struct {
	Params  Params
	Metrics metrics.Sink
	// Uplink, when set, receives every delivered data packet (the mesh
	// layer hooks in here).
	Uplink func(origin packet.NodeID, seq uint32, payload []byte)

	dev       *node.Device
	seen      *packet.Dedupe
	advertSeq uint32
}

// NewSPRGateway creates a gateway stack.
func NewSPRGateway(p Params, m metrics.Sink) *SPRGateway {
	return &SPRGateway{Params: p, Metrics: m}
}

// Start implements node.Stack.
func (g *SPRGateway) Start(dev *node.Device) {
	g.dev = dev
	g.seen = packet.NewDedupe(1 << 14)
	enableARQ(dev, g.Params, g.Metrics)
	if iv := g.Params.AdvertInterval; iv > 0 {
		startAdverts(dev, iv, g.sendAdvert)
	}
}

// sendAdvert floods one liveness beacon (see advert.go).
func (g *SPRGateway) sendAdvert() {
	if g.dev == nil || !g.dev.Alive() {
		return
	}
	g.advertSeq++
	pkt := &packet.Packet{
		Kind:    packet.KindNotify,
		From:    g.dev.ID(),
		To:      packet.Broadcast,
		Origin:  g.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     g.advertSeq,
		TTL:     g.Params.TTL,
		Payload: marshalAdvert(-1),
	}
	if g.dev.Send(pkt) {
		g.Metrics.Inc(metrics.AdvertSent)
	}
}

// HandleMessage implements node.Stack.
func (g *SPRGateway) HandleMessage(pkt *packet.Packet) {
	if g.dev == nil {
		return // not attached to a device yet
	}
	switch pkt.Kind {
	case packet.KindRReq:
		if g.seen.Check(pkt.Origin, pkt.Seq) {
			return
		}
		full := pkt.AppendHop(g.dev.ID())
		res := &packet.Packet{
			Kind:   packet.KindRRes,
			From:   g.dev.ID(),
			To:     pkt.From,
			Origin: g.dev.ID(),
			Target: pkt.Origin,
			Seq:    pkt.Seq,
			TTL:    g.Params.TTL,
			Path:   full,
		}
		if g.dev.Send(res) {
			g.Metrics.Inc(metrics.RResSent)
		}
	case packet.KindData:
		if pkt.Target != g.dev.ID() {
			return
		}
		g.Metrics.RecordDelivered(pkt.Origin, pkt.Seq, g.dev.ID(), int(pkt.Hops)+1, g.dev.Now())
		if g.Uplink != nil {
			g.Uplink(pkt.Origin, pkt.Seq, pkt.Payload)
		}
	}
}
