package attack

import (
	"fmt"
	"math/rand"

	"wmsn/internal/core"
	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Kind names an adversary family the fault injector can install on a
// compromised node. Each kind maps to one of the stacks in this package,
// configured as an insider: the victim's legitimate stack keeps running
// underneath (where that makes sense) while the adversary misbehaves on top.
type Kind uint8

const (
	// KindSelectiveForward is the grayhole: forwarded DATA is dropped with
	// Spec.DropProb while routing participation continues normally.
	KindSelectiveForward Kind = iota
	// KindBlackhole is the degenerate grayhole with DropProb forced to 1.
	KindBlackhole
	// KindReplay re-injects every captured DATA packet after Spec.Delay
	// (plus uniform jitter), double-spending traffic against plain MLR.
	KindReplay
	// KindSinkhole answers overheard RREQs with forged one-hop RRES claims
	// and swallows the traffic it attracts.
	KindSinkhole
	// KindSpoofedRouting periodically floods forged gateway NOTIFYs from the
	// compromised node's own radio, poisoning plain-MLR place tables.
	KindSpoofedRouting
	numAttackKinds
)

var attackKindNames = [numAttackKinds]string{
	KindSelectiveForward: "selective-forward",
	KindBlackhole:        "blackhole",
	KindReplay:           "replay",
	KindSinkhole:         "sinkhole",
	KindSpoofedRouting:   "spoofed-routing",
}

// String returns the stable kebab-case name used in plan labels, obs event
// details and experiment tables.
func (k Kind) String() string {
	if k < numAttackKinds {
		return attackKindNames[k]
	}
	return fmt.Sprintf("attack(%d)", uint8(k))
}

// ParseKind resolves an attack kind name back to its value.
func ParseKind(name string) (Kind, bool) {
	for k, n := range attackKindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// KindNames lists every attack kind name in declaration order.
func KindNames() []string {
	out := make([]string, numAttackKinds)
	copy(out, attackKindNames[:])
	return out
}

// DefaultCampaignReplayCopies is the per-attacker injection cap a replay
// campaign (Spec.MaxCopies <= 0) falls back to. Deliberately much tighter
// than DefaultReplayMaxCopies: a fraction-wide campaign can compromise
// replayers within radio range of each other, and mutual re-capture of
// injections amplifies exponentially under a loose cap.
const DefaultCampaignReplayCopies = 1000

// Spec is the declarative description of one adversary the fault injector
// materializes per compromised node. The zero value of every knob selects a
// sensible default, so `Spec{Kind: KindBlackhole}` is a complete campaign.
type Spec struct {
	Kind Kind

	// DropProb is the grayhole drop probability; 0 selects 0.5. Ignored
	// (forced to 1) for KindBlackhole.
	DropProb float64

	// Delay is the replay hold-back; 0 selects 2 s.
	Delay sim.Duration
	// Jitter spreads each replay by a uniform [0, Jitter) extra delay; 0
	// selects 500 ms. Pure determinism per node is kept either way — the
	// draw comes from the attacker's private NodeRand stream.
	Jitter sim.Duration
	// MaxCopies caps replay injections per attacker; <= 0 selects
	// DefaultCampaignReplayCopies. Campaign replayers need a real bound:
	// two compromised replayers in radio range re-capture each other's
	// injections, and an effectively unbounded cap turns that echo into
	// exponential amplification.
	MaxCopies int

	// FakeGateway is the gateway identity forged by sinkhole and
	// spoofed-routing campaigns.
	FakeGateway packet.NodeID
	// Place is the feasible-place index forged alongside FakeGateway.
	Place int
	// TTL stamps forged packets; 0 selects 16.
	TTL uint8
	// Interval paces spoofed-routing floods; 0 selects 5 s.
	Interval sim.Duration
}

// String renders the campaign as its kind name.
func (s Spec) String() string { return s.Kind.String() }

// Validate rejects out-of-range knobs. Called from fault.Plan.Validate so a
// bad campaign fails at scenario build time, not mid-run.
func (s *Spec) Validate() error {
	if s.Kind >= numAttackKinds {
		return fmt.Errorf("attack: unknown kind %d", uint8(s.Kind))
	}
	if s.DropProb < 0 || s.DropProb > 1 {
		return fmt.Errorf("attack: DropProb %v outside [0,1]", s.DropProb)
	}
	if s.Delay < 0 {
		return fmt.Errorf("attack: negative Delay %v", s.Delay)
	}
	if s.Jitter < 0 {
		return fmt.Errorf("attack: negative Jitter %v", s.Jitter)
	}
	if s.MaxCopies < 0 {
		return fmt.Errorf("attack: negative MaxCopies %d", s.MaxCopies)
	}
	if s.Interval < 0 {
		return fmt.Errorf("attack: negative Interval %v", s.Interval)
	}
	return nil
}

func (s *Spec) dropProb() float64 {
	if s.Kind == KindBlackhole {
		return 1
	}
	if s.DropProb == 0 {
		return 0.5
	}
	return s.DropProb
}

func (s *Spec) delay() sim.Duration {
	if s.Delay == 0 {
		return 2 * sim.Second
	}
	return s.Delay
}

func (s *Spec) jitter() sim.Duration {
	if s.Jitter == 0 {
		return 500 * sim.Millisecond
	}
	return s.Jitter
}

func (s *Spec) ttl() uint8 {
	if s.TTL == 0 {
		return 16
	}
	return s.TTL
}

func (s *Spec) interval() sim.Duration {
	if s.Interval == 0 {
		return 5 * sim.Second
	}
	return s.Interval
}

// Instantiate materializes the adversary stack for one compromised device.
// The victim's previous stack arrives as inner and keeps running underneath;
// rng is the attacker's private NodeRand stream and sink the run's metrics.
//
// The returned stack is already bound to dev — its Start is never invoked,
// because Start would re-arm the inner stack's timers (double beacons,
// double readings). Side effects a Start would have performed (promiscuous
// mode, flood repeaters) happen here instead, on the device directly.
func (s *Spec) Instantiate(dev *node.Device, inner node.Stack, rng *rand.Rand, sink metrics.Sink) node.Stack {
	switch s.Kind {
	case KindBlackhole, KindSelectiveForward:
		return &SelectiveForwarder{
			Inner:     inner,
			DropProb:  s.dropProb(),
			Rng:       rng,
			Metrics:   sink,
			dev:       dev,
			kindLabel: s.Kind.String(),
		}
	case KindReplay:
		rp := NewReplayer(s.delay())
		rp.Jitter = s.jitter()
		rp.MaxCopies = s.MaxCopies
		if s.MaxCopies <= 0 {
			rp.MaxCopies = DefaultCampaignReplayCopies
		}
		rp.Inner = inner
		rp.Rng = rng
		rp.Metrics = sink
		rp.dev = dev
		dev.SetPromiscuous(true)
		return rp
	case KindSinkhole:
		sh := &Sinkhole{
			FakeGateway: s.FakeGateway,
			Place:       s.Place,
			TTL:         s.ttl(),
			Inner:       inner,
			Metrics:     sink,
			dev:         dev,
		}
		dev.SetPromiscuous(true)
		return sh
	case KindSpoofedRouting:
		hf := &HelloFlood{
			Gateway:   s.FakeGateway,
			Place:     s.Place,
			PrevPlace: int(core.NoPlace),
			Interval:  s.interval(),
			TTL:       s.ttl(),
			Inner:     inner,
			Metrics:   sink,
			dev:       dev,
		}
		hf.flood()
		hf.rep = dev.Every(hf.Interval, hf.flood)
		return hf
	default:
		return inner
	}
}
