package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wmsn/internal/geom"
)

func uniformField(n int, side float64, seed int64) ([]geom.Point, geom.Rect, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	region := geom.Square(side)
	return (geom.Uniform{}).Deploy(n, region, rng), region, rng
}

func TestRandomAndGridPlace(t *testing.T) {
	sensors, region, rng := uniformField(100, 200, 1)
	for _, s := range []Strategy{Random{}, Grid{}} {
		pts := s.Place(sensors, 5, region, rng)
		if len(pts) != 5 {
			t.Fatalf("%T placed %d", s, len(pts))
		}
		for _, p := range pts {
			if !region.Contains(p) {
				t.Fatalf("%T placed %v outside region", s, p)
			}
		}
	}
}

func TestKMeansFindsClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	region := geom.Square(300)
	centers := []geom.Point{{X: 50, Y: 50}, {X: 250, Y: 250}, {X: 50, Y: 250}}
	sensors := (geom.Clusters{K: 3, Sigma: 10, Center: centers}).Deploy(300, region, rng)
	placed := (KMeans{}).Place(sensors, 3, region, rng)
	if len(placed) != 3 {
		t.Fatalf("placed %d", len(placed))
	}
	// Each true center should have a placed gateway within ~3 sigma.
	for _, c := range centers {
		found := false
		for _, p := range placed {
			if p.Dist(c) < 30 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no gateway near cluster %v: %v", c, placed)
		}
	}
}

func TestKMeansDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	region := geom.Square(100)
	if got := (KMeans{}).Place(nil, 3, region, rng); got != nil {
		t.Fatal("k-means on empty sensors should be nil")
	}
	if got := (KMeans{}).Place([]geom.Point{{X: 1}}, 0, region, rng); got != nil {
		t.Fatal("k=0 should be nil")
	}
	// k > distinct sensors still returns k centers.
	got := (KMeans{}).Place([]geom.Point{{X: 1}, {X: 2}}, 4, region, rng)
	if len(got) != 4 {
		t.Fatalf("k=4 over 2 sensors placed %d", len(got))
	}
}

func TestGreedyCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	region := geom.Square(200)
	// Two dense blobs; one greedy site should land near each.
	sensors := (geom.Clusters{K: 2, Sigma: 8,
		Center: []geom.Point{{X: 40, Y: 40}, {X: 160, Y: 160}}}).Deploy(200, region, rng)
	g := GreedyCoverage{CoverRadius: 40}
	placed := g.Place(sensors, 2, region, rng)
	if len(placed) != 2 {
		t.Fatalf("placed %d", len(placed))
	}
	near := func(c geom.Point) bool {
		for _, p := range placed {
			if p.Dist(c) < 60 {
				return true
			}
		}
		return false
	}
	if !near(geom.Point{X: 40, Y: 40}) || !near(geom.Point{X: 160, Y: 160}) {
		t.Fatalf("greedy sites miss the blobs: %v", placed)
	}
	// Requesting more sites than candidates terminates.
	many := GreedyCoverage{Candidates: geom.PlaceGrid(4, region), CoverRadius: 40}
	if got := many.Place(sensors, 10, region, rng); len(got) != 4 {
		t.Fatalf("bounded by candidates: %d", len(got))
	}
}

func TestEvaluateHops(t *testing.T) {
	// Line of 6 sensors, gateway adjacent to one end.
	var sensors []geom.Point
	for i := 0; i < 6; i++ {
		sensors = append(sensors, geom.Point{X: float64(i) * 10})
	}
	ev := Evaluate(sensors, []geom.Point{{X: 60}}, 12)
	if ev.Unreachable != 0 {
		t.Fatalf("unreachable = %d", ev.Unreachable)
	}
	if ev.MaxHops != 6 || ev.TotalHops != 1+2+3+4+5+6 {
		t.Fatalf("hops: %+v", ev)
	}
	// Add a second gateway at the other end: max hops halves-ish.
	ev2 := Evaluate(sensors, []geom.Point{{X: 60}, {X: -10}}, 12)
	if ev2.AvgHops >= ev.AvgHops {
		t.Fatalf("second gateway did not cut hops: %v vs %v", ev2.AvgHops, ev.AvgHops)
	}
	// Unreachable counting.
	ev3 := Evaluate(sensors, []geom.Point{{X: 500}}, 12)
	if ev3.Unreachable != 6 || ev3.AvgHops != 0 {
		t.Fatalf("unreachable eval: %+v", ev3)
	}
}

func TestKmaxSaturation(t *testing.T) {
	// Lifetime improves fast, then flatlines at k=4.
	values := []float64{10, 18, 25, 29, 29.5, 29.8, 29.9}
	if got := Kmax(values, 0.05); got != 4 {
		t.Fatalf("Kmax = %d, want 4", got)
	}
	// Strictly improving series: Kmax = len.
	if got := Kmax([]float64{1, 2, 4, 8}, 0.05); got != 4 {
		t.Fatalf("Kmax strictly improving = %d", got)
	}
	if Kmax(nil, 0.1) != 0 {
		t.Fatal("empty Kmax")
	}
	// Zero entries are skipped rather than dividing by zero.
	if got := Kmax([]float64{0, 5, 5.01}, 0.05); got != 2 {
		t.Fatalf("Kmax with zero head = %d", got)
	}
}

func TestSelectPlacesDispersed(t *testing.T) {
	cands := geom.PlaceGrid(16, geom.Square(100))
	sensors, _, _ := uniformField(50, 100, 4)
	idx := SelectPlaces(cands, sensors, 4)
	if len(idx) != 4 {
		t.Fatalf("selected %d", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatal("indices not sorted/unique")
		}
	}
	// Dispersion: min pairwise distance among selected should beat a
	// clumped pick (same quadrant lattice step is 25; expect >= 50).
	minD := 1e9
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if d := cands[idx[i]].Dist(cands[idx[j]]); d < minD {
				minD = d
			}
		}
	}
	if minD < 40 {
		t.Fatalf("selected places clumped: min pairwise %v", minD)
	}
	// k >= candidates returns all.
	if got := SelectPlaces(cands, sensors, 99); len(got) != 16 {
		t.Fatalf("all-candidates case: %d", len(got))
	}
}

func TestRotationSchedule(t *testing.T) {
	sched := RotationSchedule(5, 3, 5)
	if len(sched) != 5 {
		t.Fatalf("rounds = %d", len(sched))
	}
	visited := map[int]bool{}
	for _, row := range sched {
		if len(row) != 3 {
			t.Fatalf("row size %d", len(row))
		}
		seen := map[int]bool{}
		for _, p := range row {
			if p < 0 || p >= 5 {
				t.Fatalf("place %d out of range", p)
			}
			if seen[p] {
				t.Fatalf("duplicate place in round: %v", row)
			}
			seen[p] = true
			visited[p] = true
		}
	}
	if len(visited) != 5 {
		t.Fatalf("rotation visited %d of 5 places", len(visited))
	}
	if RotationSchedule(2, 3, 5) != nil {
		t.Fatal("m > places should be nil")
	}
	if RotationSchedule(5, 0, 5) != nil || RotationSchedule(5, 2, 0) != nil {
		t.Fatal("degenerate schedules should be nil")
	}
}

// Property: every strategy returns k in-region points for any field.
func TestQuickStrategiesValid(t *testing.T) {
	strategies := []Strategy{Random{}, Grid{}, KMeans{Iters: 8}, GreedyCoverage{CoverRadius: 30}}
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%6) + 1
		n := int(nRaw%60) + k
		sensors, region, rng := uniformField(n, 150, seed)
		for _, s := range strategies {
			pts := s.Place(sensors, k, region, rng)
			if len(pts) > k {
				return false
			}
			for _, p := range pts {
				if !region.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingScheduleChurnsTenancy(t *testing.T) {
	sched := SlidingSchedule(6, 3, 6)
	if len(sched) != 6 {
		t.Fatalf("rounds = %d", len(sched))
	}
	// Every place is visited and within a round places are distinct.
	visited := map[int]bool{}
	for _, row := range sched {
		seen := map[int]bool{}
		for _, p := range row {
			if seen[p] {
				t.Fatalf("duplicate place in round: %v", row)
			}
			seen[p] = true
			visited[p] = true
		}
	}
	if len(visited) != 6 {
		t.Fatalf("visited %d of 6 places", len(visited))
	}
	// The defining contrast with RotationSchedule: tenancy churns — some
	// place is occupied by different gateways in different rounds.
	tenant := map[int]int{}
	churn := false
	for _, row := range sched {
		for gw, p := range row {
			if prev, ok := tenant[p]; ok && prev != gw {
				churn = true
			}
			tenant[p] = gw
		}
	}
	if !churn {
		t.Fatal("sliding schedule never changed a place's tenant")
	}
	// RotationSchedule by contrast keeps tenancy stable.
	stable := RotationSchedule(6, 3, 6)
	tenant = map[int]int{}
	for _, row := range stable {
		for gw, p := range row {
			if prev, ok := tenant[p]; ok && prev != gw {
				t.Fatalf("RotationSchedule changed tenant of place %d", p)
			}
			tenant[p] = gw
		}
	}
	if SlidingSchedule(2, 3, 1) != nil {
		t.Fatal("degenerate sliding schedule should be nil")
	}
}
