package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"wmsn/internal/sim"
)

// longCfg is a run that takes many wall-clock seconds uncanceled: dense
// field, chatty reporting, ten-hour virtual horizon.
func longCfg(seed int64) Config {
	return Config{
		Seed:           seed,
		Protocol:       SPR,
		NumSensors:     300,
		Side:           300,
		SensorRange:    40,
		NumGateways:    3,
		ReportInterval: 100 * sim.Millisecond,
		RunFor:         10 * sim.Hour,
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunContext(ctx, longCfg(1))
	if time.Since(start) > time.Second {
		t.Fatalf("pre-canceled RunContext took %v", time.Since(start))
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
}

func TestRunContextCanceledMidRunReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, longCfg(2))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// One event batch is 4096 events — microseconds of work. Give the
	// slowest CI machine three orders of magnitude of slack.
	if elapsed > 5*time.Second {
		t.Fatalf("canceled run returned after %v; cancellation is not reaching the kernel", elapsed)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, longCfg(3))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("deadline run returned after %v", time.Since(start))
	}
}

func TestRunContextCanceledSharded(t *testing.T) {
	cfg := longCfg(4)
	cfg.Shards = 2
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("canceled sharded run returned after %v", time.Since(start))
	}
}

func TestRunContextInvalidConfigIsNotCanceled(t *testing.T) {
	_, err := RunContext(context.Background(), Config{NumSensors: -1})
	if err == nil || errors.Is(err, ErrCanceled) {
		t.Fatalf("invalid config returned %v, want a non-cancellation error", err)
	}
}

func TestRunContextBackgroundMatchesRunE(t *testing.T) {
	cfg := Config{Seed: 11, Protocol: SPR, NumSensors: 60, RunFor: 30 * sim.Second}
	a, err := RunE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A cancelable-but-never-canceled context must not perturb results
	// either.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]Result{"background": b, "cancelable": c} {
		if got, want := snapshotJSON(t, r), snapshotJSON(t, a); got != want {
			t.Fatalf("%s RunContext diverges from RunE:\n got %s\nwant %s", name, got, want)
		}
		if r.Elapsed != a.Elapsed || r.FirstDeath != a.FirstDeath || r.SensorsAlive != a.SensorsAlive {
			t.Fatalf("%s RunContext summary fields diverge from RunE", name)
		}
	}
}

func snapshotJSON(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r.Metrics.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// RunEach must deliver every index exactly once, ascending, with the same
// bytes RunMany returns — at any worker count.
func TestRunEachOrderAndBytesMatchRunMany(t *testing.T) {
	cfgs := make([]Config, 9)
	for i := range cfgs {
		cfgs[i] = Config{Seed: int64(100 + i), Protocol: SPR, NumSensors: 40 + 5*i, RunFor: 20 * sim.Second}
	}
	want := RunMany(1, append([]Config(nil), cfgs...))
	for _, workers := range []int{1, 4} {
		next := 0
		err := RunEach(context.Background(), workers, cfgs, func(i int, r Result, err error) {
			if err != nil {
				t.Fatalf("workers=%d: run %d failed: %v", workers, i, err)
			}
			if i != next {
				t.Fatalf("workers=%d: delivery order broken: got index %d, want %d", workers, i, next)
			}
			next++
			if got, wantS := snapshotJSON(t, r), snapshotJSON(t, want[i]); got != wantS {
				t.Fatalf("workers=%d: run %d metrics diverge from RunMany:\n got %s\nwant %s", workers, i, got, wantS)
			}
			if r.Elapsed != want[i].Elapsed || r.FirstDeath != want[i].FirstDeath {
				t.Fatalf("workers=%d: run %d summary fields diverge from RunMany", workers, i)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: RunEach error: %v", workers, err)
		}
		if next != len(cfgs) {
			t.Fatalf("workers=%d: delivered %d results, want %d", workers, next, len(cfgs))
		}
	}
}

func TestRunManyContextCanceledMidSweep(t *testing.T) {
	// A few quick runs, then long ones; cancel once the first quick results
	// are in. Completed results must match direct runs; canceled entries must
	// report errors.
	cfgs := make([]Config, 6)
	quick := Config{Seed: 50, Protocol: SPR, NumSensors: 30, RunFor: 5 * sim.Second}
	for i := range cfgs {
		if i < 2 {
			c := quick
			c.Seed = int64(50 + i)
			cfgs[i] = c
		} else {
			cfgs[i] = longCfg(int64(50 + i))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	start := time.Now()
	err := RunEach(ctx, 2, cfgs, func(i int, r Result, err error) {
		if err == nil {
			delivered++
			direct, derr := RunE(cfgs[i])
			if derr != nil {
				t.Fatal(derr)
			}
			if snapshotJSON(t, r) != snapshotJSON(t, direct) {
				t.Fatalf("run %d completed before cancel but diverges from a direct run", i)
			}
		} else if !errors.Is(err, ErrCanceled) {
			t.Fatalf("run %d: unexpected error %v", i, err)
		}
		if i == 0 {
			cancel() // first delivery triggers cancellation of the rest
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunEach after cancel returned %v, want ErrCanceled", err)
	}
	if delivered == 0 {
		t.Fatal("no run completed before cancellation; the test exercised nothing")
	}
	if time.Since(start) > 30*time.Second {
		t.Fatalf("canceled sweep took %v", time.Since(start))
	}
}

// Canceled runs must not leak goroutines: the AfterFunc watcher is stopped,
// pool workers exit, sharded lane workers are joined.
func TestCanceledRunsLeakNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		if _, err := RunContext(ctx, longCfg(int64(200+i))); !errors.Is(err, ErrCanceled) {
			t.Fatalf("run %d: %v", i, err)
		}
		cancel()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = RunEach(ctx, 4, []Config{longCfg(300), longCfg(301), longCfg(302), longCfg(303)}, nil)
	// Sharded cancel joins its lane workers on the way out.
	sh := longCfg(310)
	sh.Shards = 2
	shCtx, shCancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer shCancel()
	_, _ = RunContext(shCtx, sh)

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // let finalizer/timer goroutines settle
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after canceled runs", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
