package core

import (
	"wmsn/internal/packet"
	"wmsn/internal/wsncrypto"
)

// Key provisioning for SecMLR (§6.2): "let each sensor node be
// pre-distributed secret keys, each shared with a gateway". Before
// deployment a trusted party derives the pairwise keys Kij from a master
// secret and loads each sensor with its m gateway keys plus each gateway's
// µTESLA commitment; each gateway is loaded with the keys of all n sensors
// and its own µTESLA chain. The master secret never exists in the field.

// SensorKeys is the keying material installed on one sensor node.
type SensorKeys struct {
	// Gateway maps each gateway ID to the pairwise key Kij.
	Gateway map[packet.NodeID]wsncrypto.Key
	// TeslaCommit maps each gateway ID to its µTESLA chain commitment K[0].
	TeslaCommit map[packet.NodeID][]byte
}

// GatewayKeys is the keying material installed on one gateway.
type GatewayKeys struct {
	// Sensor maps each sensor ID to the pairwise key Kij.
	Sensor map[packet.NodeID]wsncrypto.Key
	// Tesla is this gateway's broadcast-authentication chain.
	Tesla *wsncrypto.TeslaChain

	revoked map[packet.NodeID]bool
}

// Revoke blacklists a captured sensor: the gateway thereafter treats its
// traffic as forged ("attackers can capture a sensor and acquire all the
// information stored within it", §6.1 — once detected, the only remedy is
// revoking the node's keys at the gateways).
func (g *GatewayKeys) Revoke(sensor packet.NodeID) {
	if g.revoked == nil {
		g.revoked = make(map[packet.NodeID]bool)
	}
	g.revoked[sensor] = true
}

// Revoked reports whether a sensor's keys have been revoked.
func (g *GatewayKeys) Revoked(sensor packet.NodeID) bool { return g.revoked[sensor] }

// Lookup returns the pairwise key for sensor, honoring revocation.
func (g *GatewayKeys) Lookup(sensor packet.NodeID) (wsncrypto.Key, bool) {
	if g.revoked[sensor] {
		return wsncrypto.Key{}, false
	}
	k, ok := g.Sensor[sensor]
	return k, ok
}

// ProvisionKeys derives all keying material for a deployment. teslaIntervals
// bounds the number of MLR rounds the gateways can authenticate broadcasts
// for (one interval per round).
func ProvisionKeys(master []byte, sensorIDs, gatewayIDs []packet.NodeID, teslaIntervals int) (map[packet.NodeID]*SensorKeys, map[packet.NodeID]*GatewayKeys) {
	gateways := make(map[packet.NodeID]*GatewayKeys, len(gatewayIDs))
	for _, g := range gatewayIDs {
		seed := wsncrypto.DeriveKey(master, g, g)
		gateways[g] = &GatewayKeys{
			Sensor: make(map[packet.NodeID]wsncrypto.Key, len(sensorIDs)),
			Tesla:  wsncrypto.NewTeslaChain(seed[:], teslaIntervals),
		}
	}
	sensors := make(map[packet.NodeID]*SensorKeys, len(sensorIDs))
	for _, s := range sensorIDs {
		sk := &SensorKeys{
			Gateway:     make(map[packet.NodeID]wsncrypto.Key, len(gatewayIDs)),
			TeslaCommit: make(map[packet.NodeID][]byte, len(gatewayIDs)),
		}
		for _, g := range gatewayIDs {
			k := wsncrypto.DeriveKey(master, s, g)
			sk.Gateway[g] = k
			sk.TeslaCommit[g] = gateways[g].Tesla.Commitment()
			gateways[g].Sensor[s] = k
		}
		sensors[s] = sk
	}
	return sensors, gateways
}
