// Package trace renders experiment results as aligned text tables and
// provides the small statistics helpers the benchmark harness shares
// (means, standard deviations, rate formatting). The bench binaries print
// every reproduced table and figure through this package so EXPERIMENTS.md
// and the harness output stay visually consistent.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v != 0 && math.Abs(v) < 0.001:
		return fmt.Sprintf("%.2e", v)
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.headers)
	seps := make([]string, len(widths))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// RenderCSV writes the table as CSV: a title comment line, the header row,
// then the data rows (notes become trailing comment lines).
func (t *Table) RenderCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// MinMax returns the extremes of xs (zeroes for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	return min, max
}

// Ratio formats a/b as a percentage string; "-" when b is zero.
func Ratio(a, b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}

// TableData is the structured (JSON-serializable) form of a Table, used by
// the -metrics-json export so downstream tooling gets the same data the
// aligned text rendering shows.
type TableData struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Notes   []string   `json:"notes,omitempty"`
}

// Data returns a deep copy of the table's content in structured form.
func (t *Table) Data() TableData {
	d := TableData{Title: t.Title}
	d.Headers = append(d.Headers, t.headers...)
	for _, row := range t.rows {
		d.Rows = append(d.Rows, append([]string(nil), row...))
	}
	d.Notes = append(d.Notes, t.notes...)
	return d
}
