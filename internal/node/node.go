// Package node binds the simulator substrates together: a Device is a node
// with a radio station, a battery and a protocol stack; a World owns the
// event kernel, the two radio media (sensor layer and mesh backbone) and
// every device, and tracks lifetime events such as the first battery death.
//
// The architecture mirrors the paper's Fig. 1: Sensor devices attach only to
// the sensor medium (802.15.4-like), MeshRouter devices only to the mesh
// medium (802.11-like), and Gateway devices (WMGs) to both, acting as sink
// nodes of the sensor layer and routers of the mesh layer. BaseStation
// devices sit on the mesh medium and represent the Internet egress.
package node

import (
	"fmt"
	"math"
	"sync/atomic"

	"wmsn/internal/energy"
	"wmsn/internal/geom"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/radio"
	"wmsn/internal/sim"
)

// Kind classifies devices per the paper's three-plus-one node taxonomy.
type Kind uint8

// Device kinds.
const (
	Sensor      Kind = iota // low-power sensing node, 802.15.4 only
	Gateway                 // WMG: sensor-layer sink + mesh router
	MeshRouter              // WMR: mesh backbone relay only
	BaseStation             // mesh egress to the Internet
)

var kindNames = [...]string{"sensor", "gateway", "mesh-router", "base-station"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// DeathCause classifies why a device died. Typed causes replace the
// "battery"/"failure" string literals that were previously compared across
// packages.
type DeathCause uint8

// Death causes.
const (
	CauseBattery  DeathCause = iota // battery drained mid-operation
	CauseFailure                    // hardware fault, capture, etc. (Device.Fail)
	CauseInjected                   // scheduled by a fault plan (internal/fault)
)

var causeNames = [...]string{"battery", "failure", "injected"}

// String implements fmt.Stringer.
func (c DeathCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("DeathCause(%d)", uint8(c))
}

// Stack is a protocol state machine attached to a device's sensor-layer
// radio (SPR, MLR, SecMLR, or a baseline).
type Stack interface {
	// Start is invoked once when the device enters the world; the stack
	// keeps dev for sending and timer scheduling.
	Start(dev *Device)
	// HandleMessage is invoked for every successfully received (and
	// energy-charged) sensor-layer packet addressed to this node or
	// broadcast.
	HandleMessage(pkt *packet.Packet)
}

// Device is one node in the world. It is a thin view: the hot per-device
// state (alive flag, position, battery charge, promiscuous bit and the
// overhead counters) lives in the owning World's struct-of-arrays core,
// indexed by the device's dense handle. The view holds only identity,
// attachments and protocol machinery, so iterating devices during a run
// touches contiguous arrays instead of chasing pointers.
type Device struct {
	id    packet.NodeID
	kind  Kind
	h     int32 // dense handle into the World's SoA arrays
	world *World

	sensorSt *radio.Station // nil for MeshRouter/BaseStation
	meshSt   *radio.Station // nil for Sensor

	model energy.Model

	stack       Stack
	meshHandler func(*packet.Packet)
	arq         *arqState // hop-by-hop link ARQ; nil unless enabled (arq.go)
}

// attachSnapshot captures the radio attachment state of a device at the
// moment it dies, so Recover can re-attach the stations exactly as they
// were: position, per-medium ranges, the sensor listening flag and which
// media the device was on. One snapshot row per device lives in the World's
// SoA core and is overwritten on every kill.
type attachSnapshot struct {
	pos                geom.Point
	sensorRange        float64
	meshRange          float64
	sensorListening    bool
	hadSensor, hadMesh bool
}

// soa is the struct-of-arrays hot core: one row per device, indexed by
// Device.h in insertion order. Rows are never removed — handles stay dense
// and stable for the life of the World — but the backing slices may be
// reallocated by device additions, so pointers into them (Device.Battery)
// must not be held across Add* calls. See DESIGN.md, "Sharded execution".
type soa struct {
	alive     []bool
	promisc   []bool
	pos       []geom.Point
	batteries []energy.Battery
	sent      []uint64
	sentBytes []uint64
	recv      []uint64
	snaps     []attachSnapshot
	lane      []int32 // owning shard lane; all zero when Shards <= 1
}

func (s *soa) grow(pos geom.Point, bat energy.Battery, lane int32) int32 {
	h := int32(len(s.alive))
	s.alive = append(s.alive, true)
	s.promisc = append(s.promisc, false)
	s.pos = append(s.pos, pos)
	s.batteries = append(s.batteries, bat)
	s.sent = append(s.sent, 0)
	s.sentBytes = append(s.sentBytes, 0)
	s.recv = append(s.recv, 0)
	s.snaps = append(s.snaps, attachSnapshot{})
	s.lane = append(s.lane, lane)
	return h
}

// ID returns the device's node ID.
func (d *Device) ID() packet.NodeID { return d.id }

// Kind returns the device kind.
func (d *Device) Kind() Kind { return d.kind }

// World returns the owning world.
func (d *Device) World() *World { return d.world }

// Pos returns the device's position (the zero point for a dead, detached
// device, matching the historical station-derived behavior).
func (d *Device) Pos() geom.Point {
	if d.sensorSt == nil && d.meshSt == nil {
		return geom.Point{}
	}
	return d.world.soa.pos[d.h]
}

// Move relocates the device on every medium it is attached to.
func (d *Device) Move(p geom.Point) {
	d.world.soa.pos[d.h] = p
	if d.sensorSt != nil {
		d.sensorSt.Move(p)
	}
	if d.meshSt != nil {
		d.meshSt.Move(p)
	}
}

// Battery returns the device's battery. The pointer aims into the World's
// SoA core: use it and drop it — it is invalidated by the next device
// addition (slice growth), though never by deaths or recoveries.
func (d *Device) Battery() *energy.Battery { return &d.world.soa.batteries[d.h] }

// Alive reports whether the device is operating.
func (d *Device) Alive() bool { return d.world.soa.alive[d.h] }

// SentPackets returns the count of frames this device put on the air.
func (d *Device) SentPackets() uint64 { return d.world.soa.sent[d.h] }

// SentBytes returns the total payload bytes this device put on the air.
func (d *Device) SentBytes() uint64 { return d.world.soa.sentBytes[d.h] }

// RecvPackets returns the count of frames this device consumed (addressed
// to it, broadcast, or overheard promiscuously).
func (d *Device) RecvPackets() uint64 { return d.world.soa.recv[d.h] }

// Stack returns the sensor-layer protocol stack.
func (d *Device) Stack() Stack { return d.stack }

// SwapStack replaces the device's protocol stack in place and returns the
// previous one. The new stack's Start is NOT invoked — the caller either
// wraps the old stack (which keeps running underneath) or binds the
// replacement itself. The fault injector uses this to compromise nodes
// mid-run without re-arming the victim's timers.
func (d *Device) SwapStack(st Stack) Stack {
	old := d.stack
	d.stack = st
	return old
}

// SensorStation returns the sensor-layer radio attachment, or nil.
func (d *Device) SensorStation() *radio.Station { return d.sensorSt }

// MeshStation returns the mesh-layer radio attachment, or nil.
func (d *Device) MeshStation() *radio.Station { return d.meshSt }

// SetMeshHandler registers the mesh-layer receive hook (used by the mesh
// routing implementation on gateways, routers and base stations).
func (d *Device) SetMeshHandler(f func(*packet.Packet)) { d.meshHandler = f }

// Promiscuous reports whether the device consumes overheard unicasts.
func (d *Device) Promiscuous() bool { return d.world.soa.promisc[d.h] }

// SetPromiscuous marks the device as an eavesdropper: unicast packets
// addressed to other nodes are handed to its stack instead of being
// dropped after the energy charge. The flag is mirrored onto the radio
// stations (and re-applied on Recover) so the medium clones overheard
// frames privately for this device.
func (d *Device) SetPromiscuous(on bool) {
	d.world.soa.promisc[d.h] = on
	if d.sensorSt != nil {
		d.sensorSt.SetPromiscuous(on)
	}
	if d.meshSt != nil {
		d.meshSt.SetPromiscuous(on)
	}
}

// kern returns the kernel this device's per-device work runs on: the
// world's (only) kernel in sequential mode, the device's region lane when
// the world is sharded. Receive handlers, stack timers armed through
// Device.After, and ARQ timers all live on this kernel.
func (d *Device) kern() *sim.Kernel {
	if d.world.lanes == nil {
		return d.world.kernel
	}
	return d.world.lanes[d.world.soa.lane[d.h]].k
}

// Now returns the current virtual time as seen by this device.
func (d *Device) Now() sim.Time { return d.kern().Now() }

// After schedules fn on the kernel driving this device (the world kernel,
// or the device's region lane when sharded).
func (d *Device) After(delay sim.Duration, fn func()) *sim.Timer {
	return d.kern().After(delay, fn)
}

// Every schedules fn periodically on the kernel driving this device.
func (d *Device) Every(interval sim.Duration, fn func()) *sim.Repeater {
	return d.kern().Every(interval, fn)
}

// Send transmits pkt on the sensor-layer medium, charging transmission
// energy. It reports whether the transmission happened (false when the
// device is dead, detached from the sensor medium, or the battery browned
// out mid-packet, which also kills the device).
//
// With link-layer ARQ enabled (EnableLinkARQ), eligible frames — unicast
// DATA — are instead admitted to the bounded forwarding queue: true means
// accepted for reliable delivery (transmission may be deferred behind the
// frame in flight), false means the queue is full and the frame was dropped
// under backpressure.
func (d *Device) Send(pkt *packet.Packet) bool {
	if !d.world.soa.alive[d.h] || d.sensorSt == nil {
		return false
	}
	if d.arq != nil && arqEligible(pkt) {
		return d.arqEnqueue(pkt)
	}
	return d.transmitSensor(pkt)
}

// transmitSensor is the raw sensor-layer transmission path: charge energy,
// account, and put the frame on the air. ARQ retransmissions and LINK-ACKs
// come through here directly, bypassing the queue.
func (d *Device) transmitSensor(pkt *packet.Packet) bool {
	w := d.world
	if !w.soa.alive[d.h] || d.sensorSt == nil {
		return false
	}
	cost := d.model.TxCost(pkt.SizeBits(), d.sensorSt.Range())
	if !w.soa.batteries[d.h].DrawTx(cost) {
		w.kill(d, CauseBattery)
		return false
	}
	w.soa.sent[d.h]++
	w.soa.sentBytes[d.h] += uint64(pkt.Size())
	if w.obs.Active() && arqEligible(pkt) {
		w.obs.Emit(obs.Event{
			At: d.Now(), Kind: obs.LinkTx, Node: d.id, Peer: pkt.To,
			Origin: pkt.Origin, Seq: pkt.Seq, Value: int64(pkt.TTL),
		})
	}
	w.sensorMedium.Transmit(d.sensorSt, pkt)
	return true
}

// SendRange transmits pkt on the sensor layer at a temporarily boosted (or
// reduced) transmission range, charging energy for that range. LEACH-style
// protocols use this for direct long-distance hops to cluster heads and
// sinks.
func (d *Device) SendRange(pkt *packet.Packet, rangeM float64) bool {
	w := d.world
	if !w.soa.alive[d.h] || d.sensorSt == nil {
		return false
	}
	orig := d.sensorSt.Range()
	d.sensorSt.SetRange(rangeM)
	cost := d.model.TxCost(pkt.SizeBits(), rangeM)
	if !w.soa.batteries[d.h].DrawTx(cost) {
		d.sensorSt.SetRange(orig)
		w.kill(d, CauseBattery)
		return false
	}
	w.soa.sent[d.h]++
	w.soa.sentBytes[d.h] += uint64(pkt.Size())
	if w.obs.Active() && arqEligible(pkt) {
		w.obs.Emit(obs.Event{
			At: d.Now(), Kind: obs.LinkTx, Node: d.id, Peer: pkt.To,
			Origin: pkt.Origin, Seq: pkt.Seq, Value: int64(pkt.TTL),
		})
	}
	w.sensorMedium.Transmit(d.sensorSt, pkt)
	d.sensorSt.SetRange(orig)
	return true
}

// SensorNeighbors returns the IDs of nodes currently within sensor-layer
// radio range — the simulator's stand-in for HELLO-based neighbor discovery.
func (d *Device) SensorNeighbors() []packet.NodeID {
	if d.sensorSt == nil {
		return nil
	}
	return d.world.sensorMedium.Neighbors(d.id)
}

// SendMesh transmits pkt on the mesh medium. Mesh nodes are mains- or
// generator-powered in the architecture, but energy is still accounted.
func (d *Device) SendMesh(pkt *packet.Packet) bool {
	w := d.world
	if !w.soa.alive[d.h] || d.meshSt == nil {
		return false
	}
	cost := d.model.TxCost(pkt.SizeBits(), d.meshSt.Range())
	if !w.soa.batteries[d.h].DrawTx(cost) {
		w.kill(d, CauseBattery)
		return false
	}
	w.soa.sent[d.h]++
	w.soa.sentBytes[d.h] += uint64(pkt.Size())
	w.meshMedium.Transmit(d.meshSt, pkt)
	return true
}

// receive handles a sensor-layer delivery: charges reception energy, filters
// unicast packets addressed elsewhere (unless promiscuous), and hands the
// packet to the stack.
func (d *Device) receive(pkt *packet.Packet) {
	w := d.world
	if !w.soa.alive[d.h] {
		return
	}
	if !w.soa.batteries[d.h].DrawRx(d.model.RxCost(pkt.SizeBits())) {
		w.kill(d, CauseBattery)
		return
	}
	if pkt.To != packet.Broadcast && pkt.To != d.id && !w.soa.promisc[d.h] {
		return // overheard someone else's unicast; energy spent, nothing more
	}
	if d.arq != nil {
		if pkt.Kind == packet.KindLinkAck {
			// LINK-ACKs terminate at the link layer, never at a stack.
			w.soa.recv[d.h]++
			if pkt.To == d.id {
				d.arqHandleAck(pkt)
			}
			return
		}
		if pkt.To == d.id && arqEligible(pkt) && !d.arqAckAndFilter(pkt) {
			return // duplicate (re-ACKed) or the ACK drained the battery
		}
	}
	w.soa.recv[d.h]++
	if d.stack != nil {
		d.stack.HandleMessage(pkt)
	}
}

// receiveMesh handles a mesh-layer delivery.
func (d *Device) receiveMesh(pkt *packet.Packet) {
	w := d.world
	if !w.soa.alive[d.h] {
		return
	}
	if !w.soa.batteries[d.h].DrawRx(d.model.RxCost(pkt.SizeBits())) {
		w.kill(d, CauseBattery)
		return
	}
	if pkt.To != packet.Broadcast && pkt.To != d.id && !w.soa.promisc[d.h] {
		return
	}
	w.soa.recv[d.h]++
	if d.meshHandler != nil {
		d.meshHandler(pkt)
	}
}

// Fail kills the device immediately (hardware fault, capture, etc.). The
// robustness experiments (E6, E7) use this.
func (d *Device) Fail() { d.world.kill(d, CauseFailure) }

// FailCause kills the device recording the given cause; the fault injector
// uses it with CauseInjected so scheduled crashes are distinguishable from
// organic failures in Deaths().
func (d *Device) FailCause(c DeathCause) { d.world.kill(d, c) }

// Recover revives a previously killed device: the radio stations are
// re-attached at the position and ranges saved when it died, and the device
// resumes with whatever battery charge remains (a battery-dead sensor will
// die again on its next operation). Protocol state survives intact — the
// stack and mesh handler were never torn down — so a recovered mesh router
// re-joins the backbone on its next HELLO tick. Recover reports whether it
// actually revived the device (false when it is already alive).
func (d *Device) Recover() bool {
	w := d.world
	if w.soa.alive[d.h] {
		return false
	}
	snap := w.soa.snaps[d.h]
	if snap.hadSensor {
		d.sensorSt = w.sensorMedium.Attach(d.id, snap.pos, snap.sensorRange, d.receive)
		d.sensorSt.SetListening(snap.sensorListening)
	}
	if snap.hadMesh {
		d.meshSt = w.meshMedium.Attach(d.id, snap.pos, snap.meshRange, d.receiveMesh)
	}
	w.soa.pos[d.h] = snap.pos
	if w.soa.promisc[d.h] {
		// The fresh stations must re-learn the eavesdropper flag so the
		// medium keeps cloning overheard frames privately for this device.
		d.SetPromiscuous(true)
	}
	w.soa.alive[d.h] = true
	if d.kind == Sensor {
		w.sensorsAlive++
	}
	if w.obs.Active() {
		w.obs.Emit(obs.Event{At: w.kernel.Now(), Kind: obs.NodeRecover, Node: d.id})
	}
	return true
}

// Config configures a World.
type Config struct {
	Seed        int64
	SensorRadio radio.Config
	MeshRadio   radio.Config
	// EnergyModel charges radio operations; nil selects energy.DefaultFixed.
	EnergyModel energy.Model
	// SensorBattery is the initial charge per sensor node in joules;
	// 0 selects 2 J (a practical simulation default; full AA cells would
	// make lifetime runs take forever).
	SensorBattery float64
	// Obs is the observability event bus. Nil (the default) disables
	// tracing entirely: the bus pointer is propagated but every emission
	// site is guarded by obs.Bus.Active, so untraced runs pay one branch
	// per site and allocate nothing.
	Obs *obs.Bus
	// EventPool / SensorPool / MeshPool, when non-nil, seed the world's
	// kernel and radio media with recycled storage from an earlier run and
	// receive it back via ReleasePools — the arena that lets RunMany reuse
	// event and delivery structs across runs instead of reallocating them.
	// Each pool must be owned exclusively by one world at a time.
	// scenario.Run wires these automatically; nil (the default) allocates
	// fresh storage.
	EventPool  *sim.EventPool
	SensorPool *radio.Pool
	MeshPool   *radio.Pool
}

// DeathRecord describes a device death.
type DeathRecord struct {
	ID    packet.NodeID
	At    sim.Time
	Cause DeathCause
}

// World owns the kernel, the media and the devices of one simulation.
type World struct {
	kernel       *sim.Kernel
	sensorMedium *radio.Medium
	meshMedium   *radio.Medium
	cfg          Config

	devices map[packet.NodeID]*Device
	order   []packet.NodeID // insertion order, for deterministic iteration
	soa     soa             // dense per-device hot state, indexed by Device.h

	lanes []*lane     // region lanes when sharded (sharded.go); nil otherwise
	shard *shardState // sharding bookkeeping; nil when Shards <= 1

	deaths       []DeathRecord
	firstDeath   sim.Time
	sensorsAlive int
	sensorsTotal int
	onDeath      []func(DeathRecord)
	obs          *obs.Bus
	progress     *sim.Progress // sharded runs publish from the window loop
}

// NewWorld builds an empty world.
func NewWorld(cfg Config) *World {
	if cfg.SensorRadio.BitRate == 0 {
		cfg.SensorRadio = radio.SensorRadio()
	}
	if cfg.MeshRadio.BitRate == 0 {
		cfg.MeshRadio = radio.MeshRadio()
	}
	if cfg.EnergyModel == nil {
		cfg.EnergyModel = energy.DefaultFixed
	}
	if cfg.SensorBattery == 0 {
		cfg.SensorBattery = 2.0
	}
	cfg.SensorRadio.Obs = cfg.Obs
	cfg.MeshRadio.Obs = cfg.Obs
	k := sim.NewKernel(cfg.Seed)
	w := &World{
		kernel:       k,
		sensorMedium: radio.New(k, cfg.SensorRadio),
		meshMedium:   radio.New(k, cfg.MeshRadio),
		cfg:          cfg,
		devices:      make(map[packet.NodeID]*Device),
		firstDeath:   -1,
		obs:          cfg.Obs,
	}
	if cfg.EventPool != nil {
		k.AdoptEventPool(cfg.EventPool)
	}
	if cfg.SensorPool != nil {
		w.sensorMedium.AdoptPool(cfg.SensorPool)
	}
	if cfg.MeshPool != nil {
		w.meshMedium.AdoptPool(cfg.MeshPool)
	}
	return w
}

// ReleasePools harvests the world's recycled kernel and radio storage back
// into the pools supplied at construction. Call only when the run is over
// and its results have been extracted: outstanding timers are cancelled
// (their handles become inert) and pending radio deliveries are dropped.
// The world itself stays functional — it simply allocates fresh storage if
// driven further. Calling ReleasePools again, or on a world built without
// pools, is a no-op.
func (w *World) ReleasePools() {
	if w.cfg.EventPool != nil {
		w.kernel.HarvestEventPool(w.cfg.EventPool)
		w.cfg.EventPool = nil
	}
	if w.cfg.SensorPool != nil {
		w.sensorMedium.HarvestPool(w.cfg.SensorPool)
		w.cfg.SensorPool = nil
	}
	if w.cfg.MeshPool != nil {
		w.meshMedium.HarvestPool(w.cfg.MeshPool)
		w.cfg.MeshPool = nil
	}
}

// Obs returns the world's observability bus — possibly nil, which is itself
// a valid, inert bus. Protocol stacks reach the bus through here to emit
// Reroute and PacketExpired events.
func (w *World) Obs() *obs.Bus { return w.obs }

// Kernel returns the event kernel.
func (w *World) Kernel() *sim.Kernel { return w.kernel }

// SensorMedium returns the sensor-layer medium.
func (w *World) SensorMedium() *radio.Medium { return w.sensorMedium }

// MeshMedium returns the mesh backbone medium.
func (w *World) MeshMedium() *radio.Medium { return w.meshMedium }

// Device returns the device with the given ID, or nil.
func (w *World) Device(id packet.NodeID) *Device { return w.devices[id] }

// Devices returns all devices in insertion order.
func (w *World) Devices() []*Device {
	out := make([]*Device, 0, len(w.order))
	for _, id := range w.order {
		if d, ok := w.devices[id]; ok {
			out = append(out, d)
		}
	}
	return out
}

// DevicesOfKind returns devices of kind k in insertion order.
func (w *World) DevicesOfKind(k Kind) []*Device {
	var out []*Device
	for _, d := range w.Devices() {
		if d.kind == k {
			out = append(out, d)
		}
	}
	return out
}

// newDevice allocates the SoA row and the thin view for a device about to
// join the world. The duplicate check runs before the row is grown so a
// panic leaves the arrays consistent.
func (w *World) newDevice(id packet.NodeID, kind Kind, pos geom.Point, bat energy.Battery, stack Stack) *Device {
	if _, dup := w.devices[id]; dup {
		panic(fmt.Sprintf("node: device %v added twice", id))
	}
	d := &Device{
		id: id, kind: kind, world: w,
		model: w.cfg.EnergyModel,
		stack: stack,
	}
	d.h = w.soa.grow(pos, bat, w.laneFor(pos))
	return d
}

func (w *World) register(d *Device) {
	w.devices[d.id] = d
	w.order = append(w.order, d.id)
	if d.kind == Sensor {
		w.sensorsAlive++
		w.sensorsTotal++
	}
	if d.stack != nil {
		d.stack.Start(d)
	}
}

// AddSensor creates a sensor node with the given radio range and battery
// capacity (0 selects the world default) running stack.
func (w *World) AddSensor(id packet.NodeID, pos geom.Point, rangeM float64, batteryJ float64, stack Stack) *Device {
	if batteryJ == 0 {
		batteryJ = w.cfg.SensorBattery
	}
	d := w.newDevice(id, Sensor, pos, *energy.NewBattery(batteryJ), stack)
	d.sensorSt = w.sensorMedium.Attach(id, pos, rangeM, d.receive)
	w.register(d)
	return d
}

// AddGateway creates a WMG attached to both media with unrestricted energy.
func (w *World) AddGateway(id packet.NodeID, pos geom.Point, sensorRange, meshRange float64, stack Stack) *Device {
	d := w.newDevice(id, Gateway, pos, *energy.Infinite(), stack)
	d.sensorSt = w.sensorMedium.Attach(id, pos, sensorRange, d.receive)
	d.meshSt = w.meshMedium.Attach(id, pos, meshRange, d.receiveMesh)
	w.register(d)
	return d
}

// AddMeshRouter creates a WMR attached to the mesh medium only.
func (w *World) AddMeshRouter(id packet.NodeID, pos geom.Point, meshRange float64) *Device {
	d := w.newDevice(id, MeshRouter, pos, *energy.Infinite(), nil)
	d.meshSt = w.meshMedium.Attach(id, pos, meshRange, d.receiveMesh)
	w.register(d)
	return d
}

// AddBaseStation creates a base station on the mesh medium.
func (w *World) AddBaseStation(id packet.NodeID, pos geom.Point, meshRange float64) *Device {
	d := w.newDevice(id, BaseStation, pos, *energy.Infinite(), nil)
	d.meshSt = w.meshMedium.Attach(id, pos, meshRange, d.receiveMesh)
	w.register(d)
	return d
}

// OnDeath registers a callback invoked whenever a device dies.
func (w *World) OnDeath(fn func(DeathRecord)) { w.onDeath = append(w.onDeath, fn) }

func (w *World) kill(d *Device, cause DeathCause) {
	if !w.soa.alive[d.h] {
		return
	}
	w.soa.alive[d.h] = false
	d.arqFlush()
	snap := attachSnapshot{pos: d.Pos()}
	snap.hadSensor, snap.hadMesh = d.sensorSt != nil, d.meshSt != nil
	if d.sensorSt != nil {
		snap.sensorRange = d.sensorSt.Range()
		snap.sensorListening = d.sensorSt.Listening()
		w.detachStation(w.sensorMedium, d.id)
		d.sensorSt = nil
	}
	if d.meshSt != nil {
		snap.meshRange = d.meshSt.Range()
		w.detachStation(w.meshMedium, d.id)
		d.meshSt = nil
	}
	w.soa.snaps[d.h] = snap
	rec := DeathRecord{ID: d.id, At: d.Now(), Cause: cause}
	if w.inParallel() {
		w.stageDeath(d, rec)
		return
	}
	w.finishKill(d, rec)
}

// finishKill applies the world-level effects of a death: the record, the
// lifetime gauges, the trace event and the registered callbacks. In a
// sharded run these effects are deferred to the next window barrier so they
// execute on one goroutine in a deterministic order.
func (w *World) finishKill(d *Device, rec DeathRecord) {
	w.deaths = append(w.deaths, rec)
	if w.obs.Active() {
		k := obs.NodeDeath
		if d.kind == Gateway {
			k = obs.GatewayDeath
		}
		w.obs.Emit(obs.Event{At: rec.At, Kind: k, Node: d.id, Detail: rec.Cause.String()})
	}
	if d.kind == Sensor {
		w.sensorsAlive--
		if w.firstDeath < 0 {
			w.firstDeath = rec.At
		}
	}
	for _, fn := range w.onDeath {
		fn(rec)
	}
}

// Deaths returns all death records in order of occurrence.
func (w *World) Deaths() []DeathRecord { return w.deaths }

// FirstSensorDeath returns the time the first sensor battery died — the
// paper's network lifetime (§5.3) — or -1 if all sensors are still alive.
func (w *World) FirstSensorDeath() sim.Time { return w.firstDeath }

// SensorsAlive returns the count of living sensor nodes.
func (w *World) SensorsAlive() int { return w.sensorsAlive }

// SensorsTotal returns the number of sensors ever added.
func (w *World) SensorsTotal() int { return w.sensorsTotal }

// SensorEnergyStats summarizes battery use across sensor nodes.
func (w *World) SensorEnergyStats() energy.Stats {
	var bats []*energy.Battery
	for _, d := range w.Devices() {
		if d.kind == Sensor {
			bats = append(bats, &w.soa.batteries[d.h])
		}
	}
	return energy.Summarize(bats)
}

// SetInterrupt installs an externally owned cancellation flag on every
// kernel this world drives — the world kernel and, when sharded, each region
// lane. The run loops poll it between event batches (sim.SetInterrupt) and
// the sharded window loop additionally checks it at window barriers, so a
// flag set from another goroutine (typically a context.AfterFunc) stops the
// simulation within one batch. The world is left mid-run: callers that
// cancel should discard its summary rather than report it.
func (w *World) SetInterrupt(flag *atomic.Bool) {
	w.kernel.SetInterrupt(flag)
	for _, ln := range w.lanes {
		ln.k.SetInterrupt(flag)
	}
}

// SetProgress installs a live progress watermark. Sequentially the kernel
// publishes from its run loop; sharded, the window coordinator publishes at
// each barrier (lane kernels never get the probe — their event counts are
// summed by the coordinator instead, since per-kernel publishes would
// overwrite one another).
func (w *World) SetProgress(p *sim.Progress) {
	if w.lanes != nil {
		w.progress = p
		return
	}
	w.kernel.SetProgress(p)
}

// Run drives the simulation until the given horizon. With sharding enabled
// (EnableSharding) the run is executed as a sequence of conservative time
// windows over concurrent region workers; otherwise it is a plain
// single-kernel run.
func (w *World) Run(until sim.Time) uint64 {
	if w.lanes != nil {
		return w.runSharded(until)
	}
	return w.kernel.Run(until)
}

// RunUntilIdle drives the simulation until no events remain.
func (w *World) RunUntilIdle() uint64 {
	if w.lanes != nil {
		return w.runShardedAll()
	}
	return w.kernel.RunAll()
}

// MinSensorBatteryFraction returns the lowest remaining-battery fraction
// among living sensors, 1 when none.
func (w *World) MinSensorBatteryFraction() float64 {
	min := 1.0
	for _, d := range w.Devices() {
		if d.kind == Sensor && w.soa.alive[d.h] {
			min = math.Min(min, w.soa.batteries[d.h].FractionRemaining())
		}
	}
	return min
}
