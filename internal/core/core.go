// Package core implements the paper's routing protocols for multi-gateway
// wireless mesh sensor networks:
//
//   - SPR (Shortest Path Routing, §5.2): on-demand discovery of the
//     minimum-hop path from a sensor to the best of the m gateways, with
//     route caching along established paths (Property 1).
//   - MLR (Maximal network Lifetime Routing, §5.3): round-based gateway
//     mobility over a set of feasible places, with *incremental* routing
//     tables that accumulate one entry per place and are never rebuilt.
//   - SecMLR (§6.2): MLR hardened with pairwise-key encryption, MACs,
//     freshness counters, µTESLA-authenticated movement broadcasts and
//     multi-route fault tolerance.
//
// Each protocol is a pair of node.Stack implementations (sensor side and
// gateway side) plus shared plumbing in this file: protocol parameters,
// routing-table types and the metrics sink every experiment reads.
package core

import (
	"fmt"
	"sort"

	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Params tunes protocol timing and limits. The zero value is unusable; use
// DefaultParams.
type Params struct {
	// TTL is the initial hop budget for flooded packets.
	TTL uint8
	// ResponseWait is how long a sensor collects RRES packets before
	// choosing the best gateway.
	ResponseWait sim.Duration
	// GatewayWait is how long a SecMLR gateway collects alternative RREQ
	// paths before answering (§6.2.2 "waits a given timeout to collect
	// multiple path information").
	GatewayWait sim.Duration
	// Retries is how many times a route discovery is reissued before the
	// queued data is dropped.
	Retries int
	// QueueLimit bounds payloads buffered while discovery is in flight.
	QueueLimit int
	// AckWait is how long a SecMLR source waits for the gateway's ACK
	// before failing over to its next-best route.
	AckWait sim.Duration
	// DiscloseDelay is how long a SecMLR gateway waits after a TESLA
	// announcement before disclosing the interval key.
	DiscloseDelay sim.Duration
	// NoShortcutAnswers disables the Property-1 optimization (cached-route
	// nodes answering RREQs, SPR/MLR step 3.1) so every query is answered
	// by a real gateway. Ablation knob.
	NoShortcutAnswers bool
	// OverloadThreshold, when positive, makes an MLR gateway flood an
	// overload notification after absorbing that many data packets in one
	// round; sensors with alternatives then redirect (§4.3 load balance).
	// 0 disables load shedding.
	OverloadThreshold uint64
	// OverloadClear is how long sensors avoid an overloaded place;
	// 0 selects 60 s.
	OverloadClear sim.Duration
	// FloodJitter, when positive, delays every flood rebroadcast by a
	// uniform random time in [0, FloodJitter). On collision-prone media
	// this de-synchronizes the broadcast storm; with it at 0 (default) a
	// flood wavefront expands deterministically, which keeps plain
	// SPR/MLR's first-copy-answered discovery BFS-optimal on clean media.
	FloodJitter sim.Duration
}

// DefaultParams returns sensible defaults for the simulated radios.
func DefaultParams() Params {
	return Params{
		TTL:           32,
		ResponseWait:  300 * sim.Millisecond,
		GatewayWait:   60 * sim.Millisecond,
		Retries:       2,
		QueueLimit:    64,
		AckWait:       500 * sim.Millisecond,
		DiscloseDelay: 100 * sim.Millisecond,
	}
}

// Route is one routing-table entry: the full minimum-hop path from this node
// to a gateway (storing the path, not just the next hop, lets a node answer
// other nodes' RREQs per SPR step 3.1 and exploits Property 1).
type Route struct {
	Gateway packet.NodeID
	Place   int // MLR feasible-place index; -1 under plain SPR
	Hops    int
	Path    []packet.NodeID // self ... gateway, inclusive
}

// NextHop returns the first hop of the route (self when degenerate).
func (r Route) NextHop() packet.NodeID {
	if len(r.Path) >= 2 {
		return r.Path[1]
	}
	if len(r.Path) == 1 {
		return r.Path[0]
	}
	return packet.None
}

// String renders the entry like the paper's Table 1 rows.
func (r Route) String() string {
	return fmt.Sprintf("place=%d gw=%v hops=%d route=%s", r.Place, r.Gateway, r.Hops, packet.PathString(r.Path))
}

// compressPath removes cycles from a route by loop erasure: scanning left
// to right, revisiting a node splices out the detour between its two
// occurrences. Combined paths (a flood prefix joined to a cached suffix,
// SPR/MLR step 3.1) can revisit nodes; forwarding such a path would
// ping-pong between the duplicates until the TTL expires. Every spliced
// edge was traversed by the original walk, so the result is a valid,
// shorter route.
func compressPath(path []packet.NodeID) []packet.NodeID {
	seen := make(map[packet.NodeID]int, len(path))
	out := make([]packet.NodeID, 0, len(path))
	for _, id := range path {
		if i, dup := seen[id]; dup {
			for _, cut := range out[i+1:] {
				delete(seen, cut)
			}
			out = out[:i+1]
			continue
		}
		seen[id] = len(out)
		out = append(out, id)
	}
	return out
}

// floodKey deduplicates flooded packets per (origin, sequence).
type floodKey struct {
	origin packet.NodeID
	seq    uint32
}

// seenSet is a bounded dedup set for flood suppression.
type seenSet struct {
	m     map[floodKey]struct{}
	limit int
}

func newSeenSet(limit int) *seenSet {
	return &seenSet{m: make(map[floodKey]struct{}), limit: limit}
}

// Check records the key and reports whether it was already present.
func (s *seenSet) Check(origin packet.NodeID, seq uint32) bool {
	k := floodKey{origin, seq}
	if _, ok := s.m[k]; ok {
		return true
	}
	if len(s.m) >= s.limit {
		// Bounded memory: drop everything; duplicates re-suppressed by TTL.
		s.m = make(map[floodKey]struct{})
	}
	s.m[k] = struct{}{}
	return false
}

// Metrics aggregates end-to-end protocol behaviour across a run. One Metrics
// instance is shared by every stack in a scenario.
type Metrics struct {
	Generated      uint64 // data packets originated by sensors
	Delivered      uint64 // data packets accepted at a gateway
	DroppedNoRoute uint64 // originations abandoned after failed discovery
	DroppedQueue   uint64 // originations rejected by a full queue
	Duplicates     uint64 // data packets delivered more than once

	RReqSent      uint64 // RREQ transmissions (incl. rebroadcasts)
	RResSent      uint64 // RRES transmissions (incl. forwards)
	NotifySent    uint64 // gateway movement notifications
	AckSent       uint64 // SecMLR acknowledgments
	DataSent      uint64 // data transmissions (incl. forwards)
	Failovers     uint64 // SecMLR route failovers after missing ACKs
	AbandonedData uint64 // SecMLR data given up after exhausting routes

	RejectedMAC    uint64 // packets dropped for bad MACs
	RejectedReplay uint64 // packets dropped for stale counters

	ForwardNoEntry    uint64 // data dropped mid-path: no table entry
	ForwardTTLExpired uint64 // data dropped mid-path: TTL exhausted
	ForwardSelfLoop   uint64 // data dropped mid-path: malformed path

	pending    map[floodKey]pendingData
	latencies  []sim.Duration
	hops       []int
	perGateway map[packet.NodeID]uint64
	delivered  map[floodKey]struct{}
}

type pendingData struct {
	at sim.Time
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{
		pending:    make(map[floodKey]pendingData),
		perGateway: make(map[packet.NodeID]uint64),
		delivered:  make(map[floodKey]struct{}),
	}
}

// RecordGenerated notes a data packet leaving its origin.
func (m *Metrics) RecordGenerated(origin packet.NodeID, seq uint32, now sim.Time) {
	m.Generated++
	m.pending[floodKey{origin, seq}] = pendingData{at: now}
}

// RecordDelivered notes a data packet accepted by gateway gw.
func (m *Metrics) RecordDelivered(origin packet.NodeID, seq uint32, gw packet.NodeID, hops int, now sim.Time) {
	k := floodKey{origin, seq}
	if _, dup := m.delivered[k]; dup {
		m.Duplicates++
		return
	}
	m.delivered[k] = struct{}{}
	m.Delivered++
	m.perGateway[gw]++
	m.hops = append(m.hops, hops)
	if p, ok := m.pending[k]; ok {
		m.latencies = append(m.latencies, now-p.at)
		delete(m.pending, k)
	}
}

// Undelivered lists (origin, seq) pairs generated but never delivered, in
// unspecified order — post-mortem debugging and loss analysis.
func (m *Metrics) Undelivered() [][2]uint64 {
	out := make([][2]uint64, 0, len(m.pending))
	for k := range m.pending {
		out = append(out, [2]uint64{uint64(k.origin), uint64(k.seq)})
	}
	return out
}

// DeliveryRatio returns Delivered/Generated (1 when nothing was generated).
func (m *Metrics) DeliveryRatio() float64 {
	if m.Generated == 0 {
		return 1
	}
	return float64(m.Delivered) / float64(m.Generated)
}

// MeanHops returns the average hop count over delivered data.
func (m *Metrics) MeanHops() float64 {
	if len(m.hops) == 0 {
		return 0
	}
	total := 0
	for _, h := range m.hops {
		total += h
	}
	return float64(total) / float64(len(m.hops))
}

// MeanLatency returns the average origination-to-delivery latency.
func (m *Metrics) MeanLatency() sim.Duration {
	if len(m.latencies) == 0 {
		return 0
	}
	var total sim.Duration
	for _, l := range m.latencies {
		total += l
	}
	return total / sim.Duration(len(m.latencies))
}

// LatencyPercentile returns the p-th percentile latency, p in [0,100].
func (m *Metrics) LatencyPercentile(p float64) sim.Duration {
	if len(m.latencies) == 0 {
		return 0
	}
	ls := append([]sim.Duration(nil), m.latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	idx := int(p / 100 * float64(len(ls)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ls) {
		idx = len(ls) - 1
	}
	return ls[idx]
}

// DeliveredFrom returns how many distinct packets claiming the given origin
// were accepted by gateways — the forged-data-accepted metric of the Sybil
// experiment.
func (m *Metrics) DeliveredFrom(origin packet.NodeID) uint64 {
	var n uint64
	for k := range m.delivered {
		if k.origin == origin {
			n++
		}
	}
	return n
}

// PerGateway returns deliveries per gateway ID (load-balance metric, E8).
func (m *Metrics) PerGateway() map[packet.NodeID]uint64 {
	out := make(map[packet.NodeID]uint64, len(m.perGateway))
	for k, v := range m.perGateway {
		out[k] = v
	}
	return out
}

// GatewayLoadImbalance returns max/mean deliveries across gateways
// (1 = perfectly balanced; 0 when no gateway delivered anything).
func (m *Metrics) GatewayLoadImbalance() float64 {
	if len(m.perGateway) == 0 {
		return 0
	}
	var max, total uint64
	for _, v := range m.perGateway {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(m.perGateway))
	return float64(max) / mean
}

// ControlPackets returns total control-plane transmissions.
func (m *Metrics) ControlPackets() uint64 {
	return m.RReqSent + m.RResSent + m.NotifySent + m.AckSent
}
