package obs

import (
	"fmt"
	"sort"

	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// Series is the time-bucketed sink: it folds the event stream into
// fixed-width virtual-time buckets, accumulating packet counts (generated,
// delivered, expired), link activity (retries, queue drops), routing churn
// (reroutes, link failures), adversary activity (attacker-swallowed and
// attacker-injected packets) and the last value of every sampled gauge
// (in-flight packets, queue depth, mean energy — see Bus.Sample). Because it
// consumes nothing but events, replaying a JSONL trace through a Series
// reproduces exactly the table a live run would have produced.
type Series struct {
	bucket  sim.Duration
	buckets []seriesBucket
	gauges  map[string]bool // gauge names seen in Sample events
}

type seriesBucket struct {
	generated uint64
	delivered uint64
	expired   uint64
	retries   uint64
	drops     uint64 // queue drops
	reroutes  uint64
	failures  uint64 // link failures
	faults    uint64 // fault injections + compromises + deaths
	atkDrops  uint64 // packets swallowed by adversary stacks
	atkSent   uint64 // packets forged or replayed by adversary stacks
	gauges    map[string]int64
}

// NewSeries returns a series sink with the given bucket width; width <= 0
// selects one virtual second.
func NewSeries(bucket sim.Duration) *Series {
	if bucket <= 0 {
		bucket = sim.Second
	}
	return &Series{bucket: bucket, gauges: make(map[string]bool)}
}

// Bucket returns the bucket width.
func (s *Series) Bucket() sim.Duration { return s.bucket }

// Len returns the number of buckets touched so far.
func (s *Series) Len() int { return len(s.buckets) }

func (s *Series) at(t sim.Time) *seriesBucket {
	i := int(t / s.bucket)
	for len(s.buckets) <= i {
		s.buckets = append(s.buckets, seriesBucket{})
	}
	return &s.buckets[i]
}

// Observe implements Sink.
func (s *Series) Observe(ev Event) {
	b := s.at(ev.At)
	switch ev.Kind {
	case PacketGenerated:
		b.generated++
	case PacketDelivered:
		b.delivered++
	case PacketExpired:
		if ev.Value > 1 {
			b.expired += uint64(ev.Value) // batch drop (e.g. route-queue flush)
		} else {
			b.expired++
		}
	case LinkRetry:
		b.retries++
	case QueueDrop:
		b.drops++
	case Reroute:
		b.reroutes++
	case LinkFailure:
		b.failures++
	case FaultInjected, AttackInjected, GatewayDeath, NodeDeath:
		b.faults++
	case AttackDrop:
		b.atkDrops++
	case AttackInject:
		b.atkSent++
	case Sample:
		if b.gauges == nil {
			b.gauges = make(map[string]int64)
		}
		b.gauges[ev.Detail] = ev.Value // last sample in the bucket wins
		s.gauges[ev.Detail] = true
	}
}

// Table renders the series as a trace.Table: one row per bucket with the
// packet counts, per-bucket delivery ratio, link/routing activity and a
// column per sampled gauge (sorted by name for determinism).
func (s *Series) Table(title string) *trace.Table {
	names := make([]string, 0, len(s.gauges))
	for n := range s.gauges {
		names = append(names, n)
	}
	sort.Strings(names)

	headers := []string{"t", "gen", "dlv", "ratio", "exp", "retry", "qdrop", "reroute", "lfail", "fault", "atkdrop", "atkinj"}
	headers = append(headers, names...)
	t := trace.NewTable(title, headers...)
	for i, b := range s.buckets {
		row := []any{
			fmt.Sprintf("%.0fs", (sim.Time(i) * s.bucket).Seconds()),
			b.generated, b.delivered, trace.Ratio(b.delivered, b.generated),
			b.expired, b.retries, b.drops, b.reroutes, b.failures, b.faults,
			b.atkDrops, b.atkSent,
		}
		for _, n := range names {
			if v, ok := b.gauges[n]; ok {
				row = append(row, v)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("bucket width %s; gauges show the last sample per bucket", s.bucket)
	return t
}
