package analytic

import (
	"math"
	"math/rand"
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/placement"
)

func baseModel() Model {
	return Model{
		N: 300, Side: 300, Range: 40, K: 3,
		PacketBits: 376, ReportInterval: 10,
		TxJPerBit: 210e-9, RxJPerBit: 50e-9,
	}
}

func TestDensityDegreeConnected(t *testing.T) {
	m := baseModel()
	if got := m.Density(); math.Abs(got-300.0/90000) > 1e-12 {
		t.Fatalf("density = %v", got)
	}
	wantDeg := 300.0 / 90000 * math.Pi * 1600
	if got := m.AvgDegree(); math.Abs(got-wantDeg) > 1e-9 {
		t.Fatalf("degree = %v, want %v", got, wantDeg)
	}
	if !m.Connected() {
		t.Fatal("comfortably dense field reported disconnected")
	}
	sparse := m
	sparse.Range = 10
	if sparse.Connected() {
		t.Fatal("sparse field reported connected")
	}
	if (Model{N: 1}).Connected() != true {
		t.Fatal("singleton should be connected")
	}
	if (Model{N: 10}).Density() != 0 {
		t.Fatal("zero-side density should be 0")
	}
}

func TestMeanGatewayDistanceSingleCentral(t *testing.T) {
	// One gateway at the center of a unit square of side S: the mean
	// distance from a uniform point to the center is S*0.3826 (classic
	// integral).
	m := Model{Side: 100, K: 1}
	want := 100 * 0.3826
	if got := m.MeanGatewayDistance(); math.Abs(got-want) > 1.0 {
		t.Fatalf("mean distance = %v, want ~%v", got, want)
	}
	// More gateways shrink it across perfect-square counts (intermediate
	// k can tick up slightly because the lattice is asymmetric).
	prev := math.Inf(1)
	for _, k := range []int{1, 4, 9, 16} {
		mk := Model{Side: 100, K: k}
		d := mk.MeanGatewayDistance()
		if d >= prev {
			t.Fatalf("mean distance not decreasing at k=%d: %v >= %v", k, d, prev)
		}
		prev = d
	}
	if (Model{Side: 100, K: 0}).MeanGatewayDistance() != 0 {
		t.Fatal("k=0 distance should be 0")
	}
}

// TestAvgHopsMatchesGraphMeasurement validates the model's headline output
// against brute-force BFS over simulated deployments: within 20% across a
// range of field shapes (the model is a design tool, not an oracle).
func TestAvgHopsMatchesGraphMeasurement(t *testing.T) {
	cases := []Model{
		{N: 300, Side: 300, Range: 40, K: 1},
		{N: 300, Side: 300, Range: 40, K: 3},
		{N: 300, Side: 300, Range: 40, K: 6},
		{N: 150, Side: 200, Range: 35, K: 2},
		{N: 500, Side: 400, Range: 50, K: 4},
	}
	for _, m := range cases {
		predicted := m.AvgHops()
		var measured float64
		const seeds = 5
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(int64(100*m.K + s)))
			region := geom.Square(m.Side)
			sensors := (geom.Uniform{}).Deploy(m.N, region, rng)
			gws := geom.PlaceGrid(m.K, region)
			ev := placement.Evaluate(sensors, gws, m.Range)
			measured += ev.AvgHops
		}
		measured /= seeds
		if measured == 0 {
			t.Fatalf("k=%d: nothing measured", m.K)
		}
		if rel := math.Abs(predicted-measured) / measured; rel > 0.20 {
			t.Errorf("N=%d side=%.0f k=%d: predicted %.2f vs measured %.2f hops (%.0f%% off)",
				m.N, m.Side, m.K, predicted, measured, rel*100)
		}
	}
}

func TestLoadsAndLifetime(t *testing.T) {
	m := baseModel()
	if m.TotalForwardingLoad() <= float64(m.N) {
		t.Fatal("total load should exceed one transmission per sensor")
	}
	if m.GatewayNeighborhoodLoad() <= 0 {
		t.Fatal("hotspot load should be positive")
	}
	// More gateways unload the hotspot.
	many := m
	many.K = 6
	if many.GatewayNeighborhoodLoad() >= m.GatewayNeighborhoodLoad() {
		t.Fatal("hotspot load did not drop with more gateways")
	}
	// Lifetime scales linearly with battery.
	if r := m.Lifetime(2) / m.Lifetime(1); math.Abs(r-2) > 1e-9 {
		t.Fatalf("lifetime not linear in battery: ratio %v", r)
	}
	if !math.IsInf((Model{}).Lifetime(1), 1) {
		t.Fatal("degenerate model lifetime should be +Inf")
	}
}

func TestLifetimeGainSaturates(t *testing.T) {
	m := baseModel()
	g12 := m.LifetimeGain(1, 2)
	g48 := m.LifetimeGain(4, 8)
	if g12 <= 1 {
		t.Fatalf("doubling gateways from 1 should gain: %v", g12)
	}
	if g48 >= g12 {
		t.Fatalf("marginal gain should shrink (Kmax effect): gain(1->2)=%v gain(4->8)=%v", g12, g48)
	}
	if (Model{}).LifetimeGain(1, 2) != 1 {
		t.Fatal("degenerate gain should be 1")
	}
}

func TestAvgHopsFloor(t *testing.T) {
	// Gateways everywhere: hops floor at 1.
	m := Model{N: 100, Side: 50, Range: 100, K: 9}
	if got := m.AvgHops(); got != 1 {
		t.Fatalf("hops = %v, want floor 1", got)
	}
	if (Model{}).AvgHops() != 0 {
		t.Fatal("zero-range hops should be 0")
	}
}
