package packet

// DedupeKey identifies a flooded packet per (origin, sequence) — the pair
// every flooding-style protocol in this codebase suppresses duplicates on.
type DedupeKey struct {
	Origin NodeID
	Seq    uint32
}

// Dedupe is the shared duplicate-suppression set used by the core protocols
// (SPR/MLR/SecMLR flood forwarding) and the flat baselines. It replaces the
// per-protocol `seen map[uint64]struct{}` bookkeeping that used to be
// re-implemented in every stack.
//
// When constructed with a positive limit the set is memory-bounded: on
// overflow it is dropped wholesale and restarted, which can briefly
// re-admit old duplicates — acceptable for flood suppression because the
// TTL kills stragglers anyway.
type Dedupe struct {
	seen  map[DedupeKey]struct{}
	limit int
}

// NewDedupe returns an empty set. limit <= 0 means unbounded.
func NewDedupe(limit int) *Dedupe {
	return &Dedupe{seen: make(map[DedupeKey]struct{}), limit: limit}
}

// Check records (origin, seq) and reports whether it was already present.
func (d *Dedupe) Check(origin NodeID, seq uint32) bool {
	k := DedupeKey{origin, seq}
	if _, ok := d.seen[k]; ok {
		return true
	}
	if d.limit > 0 && len(d.seen) >= d.limit {
		// Bounded memory: drop everything; duplicates re-suppressed by TTL.
		d.seen = make(map[DedupeKey]struct{})
	}
	d.seen[k] = struct{}{}
	return false
}

// Len returns how many distinct keys are currently tracked.
func (d *Dedupe) Len() int { return len(d.seen) }
