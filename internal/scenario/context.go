package scenario

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"wmsn/internal/runner"
)

// ErrCanceled marks a run stopped by context cancellation or deadline
// expiry rather than by a configuration problem. Errors returned by
// RunContext, RunManyContext and RunEach wrap both ErrCanceled and the
// context's cause, so callers can test either:
//
//	errors.Is(err, scenario.ErrCanceled)        // canceled, any reason
//	errors.Is(err, context.DeadlineExceeded)    // specifically a deadline
var ErrCanceled = errors.New("scenario: run canceled")

// canceled wraps the context's cause in ErrCanceled.
func canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// RunContext is RunE with cancellation: the run stops within one kernel
// event batch of ctx being canceled or its deadline expiring, returning a
// zero Result and an error wrapping ErrCanceled (see above). Cancellation is
// threaded through the kernel's interrupt flag, so the simulation itself —
// not just the wrapper — stops: a sweep whose client disconnected does not
// keep burning CPU to its horizon.
//
// A ctx that can never be canceled (context.Background, context.TODO) takes
// the exact RunE code path: no flag, no watcher, bit-identical results and
// allocation profile.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, canceled(ctx)
	}
	return runContext(ctx, cfg)
}

// runContext builds and drives one run, arming the kernel interrupt only
// when ctx is cancelable.
func runContext(ctx context.Context, cfg Config) (Result, error) {
	// Sharded worlds schedule on per-lane kernels, so the shared arena's
	// recycled event storage (sized for one kernel) is not used.
	var ar *runArena
	if cfg.Shards <= 1 {
		ar = arenas.Get().(*runArena)
	}
	n, err := buildE(cfg, ar)
	if err != nil {
		if ar != nil {
			arenas.Put(ar)
		}
		return Result{}, err
	}
	var stop func() bool
	if ctx.Done() != nil {
		var flag atomic.Bool
		n.World.SetInterrupt(&flag)
		stop = context.AfterFunc(ctx, func() { flag.Store(true) })
	}
	res := n.RunTraffic()
	if stop != nil {
		stop()
	}
	if ar != nil {
		n.World.ReleasePools()
		arenas.Put(ar)
	}
	if err := ctx.Err(); err != nil {
		// The world stopped mid-run; its summary is partial and misleading,
		// so report only the cancellation.
		return Result{}, canceled(ctx)
	}
	return res, nil
}

// RunEach executes every config on a bounded worker pool and streams each
// run's outcome to fn in submission-index order: fn is called exactly once
// per index, indices ascending, on the caller's goroutine — never with more
// than one run's results buffered per in-flight worker. A successful run
// delivers (i, result, nil); an invalid config delivers its validation
// error; after ctx is canceled every remaining index delivers an
// ErrCanceled-wrapping error (in-flight runs stop within one event batch,
// not-yet-started runs never start).
//
// The results delivered for completed runs are bit-identical to RunMany's:
// every run owns its kernel, RNG and world, and worker count only changes
// scheduling, never outcomes. RunEach returns the first (lowest-index)
// error, or nil when every run completed.
func RunEach(ctx context.Context, workers int, cfgs []Config, fn func(i int, r Result, err error)) error {
	var firstErr error
	runner.MapEach(workers, len(cfgs), func(i int) (Result, error) {
		return RunContext(ctx, cfgs[i])
	}, func(i int, r Result, err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if fn != nil {
			fn(i, r, err)
		}
	})
	return firstErr
}

// RunManyContext is RunMany with cancellation: results come back in cfgs
// order, and a canceled ctx stops every in-flight run within one event batch
// and prevents not-yet-started runs from starting. On error the returned
// slice still holds the results of runs that completed before cancellation
// (canceled or failed entries are zero Results); the error is the
// lowest-index failure, wrapping ErrCanceled for cancellations.
func RunManyContext(ctx context.Context, workers int, cfgs []Config) ([]Result, error) {
	out := make([]Result, len(cfgs))
	err := RunEach(ctx, workers, cfgs, func(i int, r Result, e error) {
		out[i] = r
	})
	return out, err
}
