package metrics

import (
	"encoding/json"
	"math"
	"testing"

	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

func TestLatencyPercentileEmptyAndClamped(t *testing.T) {
	m := New()
	// No samples: every percentile is the zero duration, including the
	// degenerate inputs that used to hit int(NaN) conversions.
	for _, p := range []float64{-10, 0, 50, 100, 250, math.NaN()} {
		if got := m.LatencyPercentile(p); got != 0 {
			t.Fatalf("LatencyPercentile(%v) on empty = %v, want 0", p, got)
		}
	}

	// Three samples recorded out of order: 30ms, 10ms, 20ms.
	for i, d := range []sim.Duration{30, 10, 20} {
		at := sim.Time(100 * i)
		m.RecordGenerated(packet.NodeID(i+1), 1, at)
		m.RecordDelivered(packet.NodeID(i+1), 1, packet.NodeID(9), 2, at+d*sim.Millisecond)
	}
	cases := []struct {
		p    float64
		want sim.Duration
	}{
		{-5, 10 * sim.Millisecond},         // below range clamps to min
		{0, 10 * sim.Millisecond},          // p=0 is the minimum sample
		{50, 20 * sim.Millisecond},         // median
		{100, 30 * sim.Millisecond},        // p=100 is the maximum sample
		{400, 30 * sim.Millisecond},        // above range clamps to max
		{math.NaN(), 10 * sim.Millisecond}, // NaN clamps to min, not a panic
	}
	for _, c := range cases {
		if got := m.LatencyPercentile(c.p); got != c.want {
			t.Fatalf("LatencyPercentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestGatewayLoadImbalanceZeroDeliveries(t *testing.T) {
	m := New()
	if got := m.GatewayLoadImbalance(); got != 0 {
		t.Fatalf("imbalance with no gateways = %v, want 0", got)
	}
	// A gateway key with zero recorded deliveries must not divide by zero.
	m.perGateway[packet.NodeID(1)] = 0
	m.perGateway[packet.NodeID(2)] = 0
	if got := m.GatewayLoadImbalance(); got != 0 {
		t.Fatalf("imbalance with all-zero gateways = %v, want 0", got)
	}
	m.perGateway[packet.NodeID(2)] = 6
	if got := m.GatewayLoadImbalance(); got != 2 {
		t.Fatalf("imbalance = %v, want 2 (max 6 / mean 3)", got)
	}
}

func TestEmptyStatHelpers(t *testing.T) {
	m := New()
	if r := m.DeliveryRatio(); r != 1 {
		t.Fatalf("DeliveryRatio with nothing generated = %v, want 1", r)
	}
	if h := m.MeanHops(); h != 0 {
		t.Fatalf("MeanHops with no deliveries = %v, want 0", h)
	}
	if l := m.MeanLatency(); l != 0 {
		t.Fatalf("MeanLatency with no deliveries = %v, want 0", l)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	m := New()
	m.RecordGenerated(1, 7, 0)
	m.RecordDelivered(1, 7, 100, 3, 5*sim.Millisecond)
	m.RecordDelivered(1, 7, 101, 4, 6*sim.Millisecond)
	if m.Delivered != 1 || m.Duplicates != 1 {
		t.Fatalf("delivered=%d duplicates=%d, want 1/1", m.Delivered, m.Duplicates)
	}
	if n := m.DeliveredFrom(1); n != 1 {
		t.Fatalf("DeliveredFrom = %d, want 1", n)
	}
}

func TestIncAddCountRoundTrip(t *testing.T) {
	m := New()
	for c := Counter(0); c < numCounters; c++ {
		m.Inc(c)
		m.Add(c, 2)
	}
	for c := Counter(0); c < numCounters; c++ {
		if got := m.Count(c); got != 3 {
			t.Fatalf("Count(%v) = %d, want 3", c, got)
		}
	}
	// Every counter has a distinct backing field and a distinct name.
	names := map[string]bool{}
	for _, n := range CounterNames() {
		if n == "" || names[n] {
			t.Fatalf("counter name %q missing or duplicated", n)
		}
		names[n] = true
	}
	// Out-of-range counters are ignored, not a panic.
	m.Inc(numCounters + 5)
	if got := m.Count(numCounters + 5); got != 0 {
		t.Fatalf("unknown counter Count = %d, want 0", got)
	}
}

func TestMergeDeterministic(t *testing.T) {
	mk := func(seqBase uint32) *Memory {
		m := New()
		m.Inc(DataSent)
		m.Add(RReqSent, 4)
		m.RecordGenerated(3, seqBase, 0)
		m.RecordDelivered(3, seqBase, 200, 2, 10*sim.Millisecond)
		return m
	}
	// Two runs that reuse the same (origin, seq) keys: the merge must keep
	// both deliveries (counts are summed, dedup maps are not merged).
	a, b := mk(1), mk(1)
	var total Memory
	total.Merge(a)
	total.Merge(b)
	if total.Delivered != 2 || total.Generated != 2 {
		t.Fatalf("merged delivered=%d generated=%d, want 2/2", total.Delivered, total.Generated)
	}
	if total.DataSent != 2 || total.RReqSent != 8 {
		t.Fatalf("merged DataSent=%d RReqSent=%d, want 2/8", total.DataSent, total.RReqSent)
	}
	if got := total.PerGateway()[packet.NodeID(200)]; got != 2 {
		t.Fatalf("merged per-gateway = %d, want 2", got)
	}
	if got := total.MeanHops(); got != 2 {
		t.Fatalf("merged MeanHops = %v, want 2", got)
	}
	total.Merge(nil) // no-op, not a panic

	// Aggregates folding the same inputs in the same order are identical.
	agg1, agg2 := NewAggregate(), NewAggregate()
	for _, m := range []*Memory{a, b} {
		agg1.Absorb(m)
		agg2.Absorb(m)
	}
	s1, _ := json.Marshal(agg1.Snapshot())
	s2, _ := json.Marshal(agg2.Snapshot())
	if string(s1) != string(s2) {
		t.Fatalf("aggregate snapshots differ:\n%s\n%s", s1, s2)
	}
	if agg1.Runs() != 2 {
		t.Fatalf("Runs = %d, want 2", agg1.Runs())
	}
}

func TestSnapshotJSON(t *testing.T) {
	m := New()
	m.RecordGenerated(5, 1, 0)
	m.RecordDelivered(5, 1, 300, 3, 20*sim.Millisecond)
	m.Inc(DataSent)
	s := m.Snapshot()
	if s.DeliveryRatio != 1 || s.MeanHops != 3 || s.MeanLatencyMS != 20 {
		t.Fatalf("snapshot stats wrong: %+v", s)
	}
	if s.Counters["data_sent"] != 1 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
	if s.PerGateway["n300"] != 1 {
		t.Fatalf("snapshot per-gateway = %v", s.PerGateway)
	}
	if _, ok := s.Counters["rreq_sent"]; ok {
		t.Fatal("zero counters must be omitted from the snapshot")
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}
