// Package chaos is the seeded randomized soak harness for the reliability
// stack: it composes randomized-but-reproducible fault plans (gateway
// kills, sensor churn, loss degradation) on lossy media with link-layer
// ARQ armed, runs them to completion, and asserts the structural
// invariants that must hold no matter what the schedule did — the packet
// conservation ledger balances, forwarding queues drain once traffic
// stops, no retransmit timer outlives its frame, and the simulation
// terminates. Every trial is fully determined by (Options.Seed, trial
// index), so any violation is replayable from its seed alone.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"wmsn/internal/attack"
	"wmsn/internal/core"
	"wmsn/internal/fault"
	"wmsn/internal/obs"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
)

// Options parameterizes a soak run.
type Options struct {
	// Seed roots the per-trial RNG streams; trial i uses Seed+i.
	Seed int64
	// Trials is how many independent randomized scenarios to run; 0
	// selects 4.
	Trials int
	// RunFor is the traffic horizon per trial; 0 selects 60 s (virtual).
	RunFor sim.Duration
	// Grace is how long the simulation keeps running after traffic stops,
	// so in-flight retransmissions settle; 0 selects 30 s (virtual),
	// comfortably above the worst-case queue-drain span.
	Grace sim.Duration
	// Protocols is the pool trials draw from; empty selects SPR, MLR and
	// SecMLR.
	Protocols []scenario.Protocol
	// Log, when non-nil, receives one line per trial (testing.T.Logf fits).
	Log func(format string, args ...any)
	// ArtifactDir, when non-empty, arms a flight recorder on every trial
	// and dumps its tail to chaos-seed-<seed>.jsonl in that directory when
	// the trial violates an invariant — the failure ships its own event
	// history next to the seed that replays it. Empty disables recording,
	// so plain soaks pay nothing.
	ArtifactDir string
	// RecorderCap bounds the flight recorder's ring buffer; 0 selects
	// obs.DefaultRecorderCap.
	RecorderCap int
	// Shards > 1 runs every trial region-sharded (scenario.Config.Shards):
	// the same fault plans and invariants, executed by concurrent region
	// workers. Incompatible with ArtifactDir — the obs bus is not
	// concurrency-safe, and scenario validation rejects the combination.
	Shards int
	// Attacks adds one randomized compromise campaign per trial: a random
	// attack family hits a random 5–25% sensor fraction at a random onset.
	// The structural invariants must keep holding — attacker-swallowed
	// frames are accounted drops, not ledger leaks. Off by default so
	// existing soak seeds replay unchanged.
	Attacks bool
}

// Trial summarizes one completed soak scenario.
type Trial struct {
	Seed     int64
	Cfg      scenario.Config
	Result   scenario.Result
	Delivery float64
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 4
	}
	if o.RunFor <= 0 {
		o.RunFor = 60 * sim.Second
	}
	if o.Grace <= 0 {
		o.Grace = 30 * sim.Second
	}
	if len(o.Protocols) == 0 {
		o.Protocols = []scenario.Protocol{scenario.SPR, scenario.MLR, scenario.SecMLR}
	}
	return o
}

// compose builds the randomized trial configuration. Every draw comes from
// rng, so the scenario is a pure function of the trial seed.
func compose(rng *rand.Rand, o Options) scenario.Config {
	p := core.DefaultParams()
	p.LinkRetries = 1 + rng.Intn(5)
	p.ForwardQueueLimit = 8 + rng.Intn(56)
	p.AdvertInterval = sim.Second

	numGW := 2 + rng.Intn(2)
	plan := fault.NewPlan()
	if rng.Intn(2) == 0 {
		plan.KillGateway(o.RunFor/4+sim.Duration(rng.Int63n(int64(o.RunFor/2))), rng.Intn(numGW))
	}
	if rng.Intn(2) == 0 {
		plan.WithChurn(fault.Churn{
			Rate: 60 + rng.Float64()*240,
			MTTR: sim.Duration(2+rng.Intn(5)) * sim.Second,
			Stop: o.RunFor - o.RunFor/8,
		})
	}
	if rng.Intn(3) == 0 {
		plan.RampLoss(o.RunFor/4, o.RunFor/2, 0.1+rng.Float64()*0.2, 4)
	}
	if o.Attacks {
		// One randomized compromise campaign per trial. Drawing these only
		// when Attacks is set keeps every pre-existing soak seed replaying
		// byte-identically.
		specs := []attack.Spec{
			{Kind: attack.KindSelectiveForward, DropProb: 0.25 + rng.Float64()*0.75},
			{Kind: attack.KindBlackhole},
			{Kind: attack.KindReplay, Delay: sim.Duration(1+rng.Intn(3)) * sim.Second, MaxCopies: 50 + rng.Intn(500)},
			{Kind: attack.KindSinkhole, FakeGateway: scenario.GatewayID(rng.Intn(numGW)), Place: rng.Intn(numGW)},
			{Kind: attack.KindSpoofedRouting, FakeGateway: scenario.GatewayID(rng.Intn(numGW)), Place: rng.Intn(numGW),
				Interval: sim.Duration(1+rng.Intn(5)) * sim.Second},
		}
		sp := specs[rng.Intn(len(specs))]
		onset := o.RunFor/8 + sim.Duration(rng.Int63n(int64(o.RunFor/2)))
		plan.CompromiseFractionAt(sim.Time(onset), 0.05+rng.Float64()*0.2, sp, rng.Int63())
	}
	if len(plan.Events) == 0 && plan.Churn == nil {
		// Never run fault-free: the harness exists to stress recovery.
		plan.KillGateway(o.RunFor/2, rng.Intn(numGW))
	}
	return scenario.Config{
		Seed:          rng.Int63(),
		Protocol:      o.Protocols[rng.Intn(len(o.Protocols))],
		NumSensors:    30 + rng.Intn(50),
		Side:          120 + rng.Float64()*80,
		SensorRange:   40,
		NumGateways:   numGW,
		RunFor:        o.RunFor,
		LossRate:      rng.Float64() * 0.25,
		SensorBattery: 1e6,
		Params:        &p,
		Faults:        plan,
		Shards:        o.Shards,
	}
}

// CheckInvariants asserts the post-run structural invariants on a drained
// network. It is exported so tests can demonstrate that a violated
// invariant is actually caught, not silently absorbed.
func CheckInvariants(n *scenario.Net) error {
	var errs []error
	m := n.Metrics
	if depth := n.World.LinkQueueDepth(); depth != 0 {
		errs = append(errs, fmt.Errorf("chaos: %d frames stranded in forwarding queues after drain", depth))
	}
	if stuck := n.World.LinkStuckTimers(); stuck != 0 {
		errs = append(errs, fmt.Errorf("chaos: %d retransmit timers pending with empty queues", stuck))
	}
	if err := m.CheckLinkConservation(n.World.LinkQueueDepth()); err != nil {
		errs = append(errs, err)
	}
	if m.Delivered > m.Generated {
		errs = append(errs, fmt.Errorf("chaos: delivered %d > generated %d", m.Delivered, m.Generated))
	}
	return errors.Join(errs...)
}

// DumpTail writes the flight recorder's surviving events to
// chaos-seed-<seed>.jsonl under dir (created if needed) and returns the
// file's path. A recorder holds the newest DefaultRecorderCap-ish events, so
// the dump is the tail of the trial — the window right before the violation.
func DumpTail(dir string, seed int64, rec *obs.Recorder) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d.jsonl", seed))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	err = obs.WriteJSONL(f, rec.Events())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return path, err
}

// Soak runs the randomized trials and checks every invariant after each.
// It returns the per-trial summaries and the first violation, tagged with
// the trial seed that reproduces it.
func Soak(o Options) ([]Trial, error) {
	o = o.withDefaults()
	trials := make([]Trial, 0, o.Trials)
	for i := 0; i < o.Trials; i++ {
		seed := o.Seed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		cfg := compose(rng, o)
		var rec *obs.Recorder
		if o.ArtifactDir != "" {
			rec = obs.NewRecorder(o.RecorderCap)
			cfg.Obs = obs.NewBus(rec)
		}
		n, err := scenario.BuildE(cfg)
		if err != nil {
			return trials, fmt.Errorf("chaos: trial seed %d: %w", seed, err)
		}
		n.StartTraffic()
		n.World.Run(cfg.RunFor)
		n.StopTraffic()
		n.World.Run(cfg.RunFor + o.Grace)
		res := n.Summarize()
		if err := CheckInvariants(n); err != nil {
			if rec != nil {
				if path, derr := DumpTail(o.ArtifactDir, seed, rec); derr != nil {
					err = errors.Join(err, fmt.Errorf("chaos: dumping recorder tail: %w", derr))
				} else {
					err = fmt.Errorf("%w (recorder tail: %s, %d of %d events)", err, path, rec.Len(), rec.Total())
				}
			}
			return trials, fmt.Errorf("chaos: trial seed %d (%s, %d sensors, loss %.2f): %w",
				seed, cfg.Protocol, cfg.NumSensors, cfg.LossRate, err)
		}
		tr := Trial{Seed: seed, Cfg: cfg, Result: res, Delivery: res.Metrics.DeliveryRatio()}
		trials = append(trials, tr)
		if o.Log != nil {
			o.Log("trial seed=%d proto=%s sensors=%d loss=%.2f faults=%d delivery=%.3f retries=%d",
				seed, cfg.Protocol, cfg.NumSensors, cfg.LossRate,
				res.Metrics.FaultsInjected, tr.Delivery, res.Metrics.LinkRetries)
		}
	}
	return trials, nil
}
