package experiments

import (
	"fmt"

	"wmsn/internal/energy"
	"wmsn/internal/placement"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// lifetimeCfg is the shared workload for the lifetime experiments: a uniform
// field under periodic reporting with deliberately small batteries (see
// DESIGN.md substitutions — full AA cells would just scale the x axis), run
// until the first sensor battery dies (the paper's lifetime definition,
// §5.3).
func lifetimeCfg(o Opts, seed int64) scenario.Config {
	return scenario.Config{
		Seed:             seed,
		NumSensors:       pick(o, 140, 50),
		Side:             pick(o, 280.0, 140.0),
		SensorRange:      45,
		ReportInterval:   5 * sim.Second,
		RunFor:           pick(o, 3*sim.Hour, 20*sim.Minute),
		RoundLen:         60 * sim.Second,
		Rounds:           256,
		EnergyModel:      energy.DefaultFirstOrder,
		SensorBattery:    pick(o, 0.5, 0.1),
		StopAtFirstDeath: true,
	}
}

// E4Lifetime compares network lifetime and energy balance across protocols:
// the paper's claim that multi-gateway routing balances consumption and that
// MLR's gateway rotation extends lifetime beyond static shortest-path
// routing (§5.3), with the flat baselines for contrast.
func E4Lifetime(o Opts) []*trace.Table {
	type variant struct {
		name     string
		protocol scenario.Protocol
		gateways int
	}
	variants := []variant{
		{"SPR, single sink (flat)", scenario.SPR, 1},
		{"SPR, 3 gateways", scenario.SPR, 3},
		{"MLR, 3 gateways over 6 places", scenario.MLR, 3},
		{"LEACH (flat)", scenario.LEACH, 1},
		{"PEGASIS (flat)", scenario.PEGASIS, 1},
		{"Direct (flat)", scenario.Direct, 1},
		{"MCFA (flat)", scenario.MCFA, 1},
	}
	seeds := o.seeds(3)
	tbl := trace.NewTable("E4: network lifetime (first sensor death) and energy balance",
		"protocol", "lifetime s", "delivered", "mean energy mJ", "energy CV", "delivery ratio")
	var cfgs []scenario.Config
	for _, v := range variants {
		for s := 0; s < seeds; s++ {
			cfg := lifetimeCfg(o, int64(100+s))
			cfg.Protocol = v.protocol
			cfg.NumGateways = v.gateways
			cfgs = append(cfgs, cfg)
		}
	}
	results := runConfigs(o, cfgs)
	for vi, v := range variants {
		var life, delivered, meanE, cv, ratio float64
		for s := 0; s < seeds; s++ {
			res := results[vi*seeds+s]
			lifetime := res.Elapsed.Seconds()
			if res.FirstDeath >= 0 {
				lifetime = res.FirstDeath.Seconds()
			}
			life += lifetime
			delivered += float64(res.Metrics.Delivered)
			meanE += res.Energy.Mean * 1000
			cv += res.Energy.CoefficientOfVariation()
			ratio += res.Metrics.DeliveryRatio()
		}
		f := float64(seeds)
		tbl.AddRow(v.name, life/f, delivered/f, meanE/f, cv/f, ratio/f)
	}
	tbl.AddNote("first-order radio model, %d seeds; lifetime capped at the horizon when nobody died", seeds)
	tbl.AddNote("Direct maximizes first-death lifetime on fields this small by spending no relay energy, " +
		"but burns ~2x the per-node energy and collapses with field size (E3); the multi-hop story is SPR-vs-MLR")
	return []*trace.Table{tbl}
}

// E5GatewayNumber reproduces the gateway-number model result (§4.1, after
// ref. [34]): lifetime grows with the number of gateways k but saturates at
// some Kmax beyond which more gateways stop helping.
func E5GatewayNumber(o Opts) []*trace.Table {
	maxK := pick(o, 8, 4)
	seeds := o.seeds(5)
	tbl := trace.NewTable("E5: lifetime vs number of gateways k (SPR, grid placement)",
		"k", "lifetime s", "avg hops", "mean energy mJ", "delivery ratio")
	var lifetimes []float64
	cfgs := make([]scenario.Config, 0, maxK*seeds)
	for k := 1; k <= maxK; k++ {
		for s := 0; s < seeds; s++ {
			cfg := lifetimeCfg(o, int64(200+s))
			cfg.Protocol = scenario.SPR
			cfg.NumGateways = k
			cfgs = append(cfgs, cfg)
		}
	}
	results := runConfigs(o, cfgs)
	for k := 1; k <= maxK; k++ {
		var life, hops, meanE, ratio float64
		for s := 0; s < seeds; s++ {
			res := results[(k-1)*seeds+s]
			lifetime := res.Elapsed.Seconds()
			if res.FirstDeath >= 0 {
				lifetime = res.FirstDeath.Seconds()
			}
			life += lifetime
			hops += res.Metrics.MeanHops()
			meanE += res.Energy.Mean * 1000
			ratio += res.Metrics.DeliveryRatio()
		}
		f := float64(seeds)
		lifetimes = append(lifetimes, life/f)
		tbl.AddRow(k, life/f, hops/f, meanE/f, ratio/f)
	}
	kmax := placement.Kmax(lifetimes, 0.05)
	tbl.AddNote("Kmax (≥5%% marginal lifetime gain) = %d — adding gateways beyond this stops helping, matching ref. [34]", kmax)
	_ = fmt.Sprintf
	return []*trace.Table{tbl}
}
