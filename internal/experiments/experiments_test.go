package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wmsn/internal/network"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

func quickOpts() Opts { return Opts{Quick: true, Seeds: 1} }

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(quickOpts())
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				out := tbl.String()
				if len(out) < 40 {
					t.Fatalf("%s table suspiciously empty:\n%s", e.ID, out)
				}
			}
		})
	}
}

func TestFig2TopologyMatchesPaperExactly(t *testing.T) {
	pos, named, gws := fig2Topology()
	ranges := make(map[packet.NodeID]float64, len(pos))
	for id := range pos {
		ranges[id] = 12
	}
	g := network.Build(pos, ranges)
	sink := named["sink"]
	wantSink := map[string]int{"S1": 2, "S2": 7, "S3": 6, "S4": 9}
	wantGW := map[string]int{"S1": 1, "S2": 1, "S3": 1, "S4": 2}
	for name, want := range wantSink {
		if got := g.Hops(named[name], sink); got != want {
			t.Errorf("%s to sink: %d hops, paper says %d", name, got, want)
		}
	}
	for name, want := range wantGW {
		if _, got := g.NearestOf(named[name], gws); got != want {
			t.Errorf("%s to nearest gateway: %d hops, paper says %d", name, got, want)
		}
	}
}

func TestE1TablesShowReduction(t *testing.T) {
	tables := E1HopReduction(quickOpts())
	if len(tables) != 2 {
		t.Fatalf("E1 returned %d tables", len(tables))
	}
	out := tables[0].String()
	// The exact table must contain the paper's hop counts.
	for _, v := range []string{"S1", "S4", "9", "7"} {
		if !strings.Contains(out, v) {
			t.Errorf("E1a missing %q:\n%s", v, out)
		}
	}
}

func TestE2TablesGrow(t *testing.T) {
	tables := E2Table1(quickOpts())
	if len(tables) != 3 {
		t.Fatalf("E2 returned %d tables, want 3 rounds", len(tables))
	}
	// Row counts grow 3 -> 4 -> 5 (plus header/separator/note lines).
	counts := make([]int, 3)
	for i, tbl := range tables {
		counts[i] = strings.Count(tbl.String(), "\n")
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("E2 tables do not grow: line counts %v", counts)
	}
	// The third table must include all five places and a starred selection.
	out := tables[2].String()
	for _, p := range []string{"A", "B", "C", "D", "E"} {
		if !strings.Contains(out, "\n  "+p) {
			t.Errorf("round-3 table missing place %s:\n%s", p, out)
		}
	}
	if !strings.Contains(out, "*") {
		t.Errorf("no selected route starred:\n%s", out)
	}
}

func TestE5KmaxNoteEmitted(t *testing.T) {
	tables := E5GatewayNumber(quickOpts())
	out := tables[0].String()
	if !strings.Contains(out, "Kmax") {
		t.Fatalf("E5 missing Kmax note:\n%s", out)
	}
}

func TestE9MatrixHasAllCells(t *testing.T) {
	tables := E9AttackMatrix(quickOpts())
	out := tables[0].String()
	for _, atk := range []string{"none", "replay", "sinkhole", "selective", "hello-flood", "sybil", "wormhole", "ack-spoofing"} {
		if !strings.Contains(out, atk) {
			t.Errorf("matrix missing attack %q", atk)
		}
	}
	if got := strings.Count(out, "secmlr"); got != 8 {
		t.Errorf("matrix has %d secmlr rows, want 8:\n%s", got, out)
	}
}

// Parallel execution must be invisible in the output: running the same
// experiment with 1 worker and with 8 workers has to render byte-identical
// tables, because results are merged by submission index. E1 covers the
// placement-evaluation fan-out, E9 the full attack-matrix of scenario runs,
// E15 the mid-run compromise campaigns (whose adversaries must draw only
// from their private per-node RNG streams for this to hold).
// This test doubles as the runner's race-coverage entry point under
// `go test -race` (the Makefile `race` target).
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(tables []*trace.Table) string {
		var sb strings.Builder
		for _, tbl := range tables {
			sb.WriteString(tbl.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	for _, id := range []string{"E1", "E9", "E15"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var exp Experiment
			for _, e := range All() {
				if e.ID == id {
					exp = e
				}
			}
			seq := render(exp.Run(Opts{Quick: true, Seeds: 1, Workers: 1}))
			par := render(exp.Run(Opts{Quick: true, Seeds: 1, Workers: 8}))
			if seq != par {
				t.Fatalf("%s output differs between workers=1 and workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, seq, par)
			}
		})
	}
}

func TestExperimentIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if len(seen) != 15 {
		t.Fatalf("suite has %d experiments, want 15", len(seen))
	}
}

// TestE15SecMLRHoldsDelivery pins E15's headline claim numerically: at
// every nonzero attacker fraction and for every attack family, SecMLR's
// delivery ratio is at least MLR's and SPR's. The quick table rows are
// parsed back out of the rendered output so the assertion covers exactly
// what EXPERIMENTS.md shows.
func TestE15SecMLRHoldsDelivery(t *testing.T) {
	out := E15Adversarial(quickOpts())[0].String()
	type row struct {
		attack   string
		delivery float64
	}
	byProto := map[string][]row{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 10 || f[1] == "0%" {
			continue // header, separator, note, or the unattacked baseline
		}
		var d float64
		if _, err := fmt.Sscanf(f[3], "%g", &d); err != nil {
			continue
		}
		byProto[f[2]] = append(byProto[f[2]], row{f[0] + "/" + f[1], d})
	}
	sec := byProto["secmlr"]
	if len(sec) == 0 {
		t.Fatalf("no attacked secmlr rows parsed from:\n%s", out)
	}
	for _, proto := range []string{"mlr", "spr"} {
		rows := byProto[proto]
		if len(rows) != len(sec) {
			t.Fatalf("%d %s rows vs %d secmlr rows", len(rows), proto, len(sec))
		}
		for i, r := range rows {
			if sec[i].attack != r.attack {
				t.Fatalf("row %d mismatch: secmlr %q vs %s %q", i, sec[i].attack, proto, r.attack)
			}
			if sec[i].delivery < r.delivery-1e-9 {
				t.Errorf("%s: secmlr delivery %.4f below %s %.4f", r.attack, sec[i].delivery, proto, r.delivery)
			}
		}
	}
}

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_quick.txt from current output")

// TestGoldenOutputQuick pins the exact text of every experiment's quick
// output against a committed golden file, so any refactor that perturbs
// run ordering, RNG consumption, or table formatting is caught at test
// time rather than by eyeballing wmsnbench diffs. Regenerate deliberately
// with: go test ./internal/experiments -run GoldenOutput -update
func TestGoldenOutputQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is a full quick suite")
	}
	var buf strings.Builder
	for _, e := range All() {
		fmt.Fprintf(&buf, "==== %s: %s ====\n", e.ID, e.Title)
		for _, tbl := range e.Run(Opts{Quick: true}) {
			buf.WriteString(tbl.String())
			buf.WriteByte('\n')
		}
	}
	got := buf.String()
	const golden = "testdata/golden_quick.txt"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("quick output diverged from %s (run with -update to accept):\ngot %d bytes, want %d bytes",
			golden, len(got), len(want))
	}
}

// TestTraceSpoolByteIdenticalAcrossWorkers pins the tracing determinism
// contract end-to-end: the same experiment, traced at workers=1 and
// workers=8, must spool byte-identical JSONL files (captures are written in
// submission order, and each run's event stream is a pure function of its
// config).
func TestTraceSpoolByteIdenticalAcrossWorkers(t *testing.T) {
	spool := func(workers int) map[string]string {
		dir := t.TempDir()
		tr := &TraceDir{Dir: dir, Prefix: "e13", Sample: sim.Second}
		E13Reliability(Opts{Quick: true, Seeds: 1, Workers: workers, Trace: tr})
		if err := tr.Err(); err != nil {
			t.Fatal(err)
		}
		if tr.Files() == 0 {
			t.Fatal("no trace files spooled")
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		for _, e := range entries {
			buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = string(buf)
		}
		return out
	}
	seq, par := spool(1), spool(8)
	if len(seq) != len(par) {
		t.Fatalf("file counts differ: %d vs %d", len(seq), len(par))
	}
	for name, body := range seq {
		if par[name] != body {
			t.Fatalf("trace %s differs between workers=1 and workers=8", name)
		}
	}
	// The traces must actually contain the fault story E13 injects.
	joined := ""
	for _, body := range seq {
		joined += body
	}
	for _, kind := range []string{"gateway_death", "reroute", "packet_delivered"} {
		if !strings.Contains(joined, kind) {
			t.Fatalf("spooled traces never mention %q", kind)
		}
	}
}
