package node

import (
	"fmt"
	"math/rand"
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/packet"
	"wmsn/internal/radio"
	"wmsn/internal/sim"
)

// arqStack records delivered data frames and link-failure verdicts.
type arqStack struct {
	dev   *Device
	got   []*packet.Packet
	fails []*packet.Packet
}

func (s *arqStack) Start(dev *Device)              { s.dev = dev }
func (s *arqStack) HandleMessage(p *packet.Packet) { s.got = append(s.got, p) }
func (s *arqStack) HandleLinkFailure(p *packet.Packet) {
	s.fails = append(s.fails, p)
}

func dataTo(from, to packet.NodeID, seq uint32) *packet.Packet {
	return &packet.Packet{Kind: packet.KindData, From: from, To: to,
		Origin: from, Target: to, Seq: seq, TTL: 8, Payload: []byte("x")}
}

func arqWorld(t *testing.T, lossRate float64, cfg ARQConfig) (*World, *Device, *Device, *arqStack, *arqStack) {
	t.Helper()
	w := NewWorld(Config{Seed: 7, SensorRadio: radio.Config{BitRate: 250e3, LossRate: lossRate}})
	sa, sb := &arqStack{}, &arqStack{}
	da := w.AddSensor(1, geom.Point{}, 30, 0, sa)
	db := w.AddSensor(2, geom.Point{X: 10}, 30, 0, sb)
	da.EnableLinkARQ(cfg)
	db.EnableLinkARQ(cfg)
	return w, da, db, sa, sb
}

func TestARQDeliversAndAcks(t *testing.T) {
	m := metrics.New()
	w, da, db, _, sb := arqWorld(t, 0, ARQConfig{Retries: 3, AckWait: 10 * sim.Millisecond, Metrics: m})
	if !da.Send(dataTo(1, 2, 1)) {
		t.Fatal("Send failed")
	}
	w.RunUntilIdle()
	if len(sb.got) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(sb.got))
	}
	if m.LinkTxQueued != 1 || m.LinkAcked != 1 || m.LinkAckSent != 1 {
		t.Fatalf("counters queued=%d acked=%d ackSent=%d, want 1/1/1",
			m.LinkTxQueued, m.LinkAcked, m.LinkAckSent)
	}
	if m.LinkRetries != 0 || m.LinkFailures != 0 {
		t.Fatalf("clean link produced retries=%d failures=%d", m.LinkRetries, m.LinkFailures)
	}
	if da.LinkQueueLen() != 0 || db.LinkQueueLen() != 0 {
		t.Fatal("queues did not drain")
	}
	if err := m.CheckLinkConservation(w.LinkQueueDepth()); err != nil {
		t.Fatal(err)
	}
}

func TestARQRetryBudgetAndFailureVerdict(t *testing.T) {
	m := metrics.New()
	cfg := ARQConfig{Retries: 3, AckWait: 10 * sim.Millisecond, Metrics: m}
	w := NewWorld(Config{Seed: 7, SensorRadio: radio.Config{BitRate: 250e3}})
	sa := &arqStack{}
	da := w.AddSensor(1, geom.Point{}, 30, 0, sa)
	da.EnableLinkARQ(cfg)
	// Node 9 does not exist: no ACK can ever come back.
	if !da.Send(dataTo(1, 9, 1)) {
		t.Fatal("Send failed")
	}
	w.RunUntilIdle()
	if da.SentPackets() != uint64(cfg.Retries)+1 {
		t.Fatalf("sender transmitted %d times, want exactly retries+1 = %d",
			da.SentPackets(), cfg.Retries+1)
	}
	if m.LinkRetries != uint64(cfg.Retries) || m.LinkFailures != 1 {
		t.Fatalf("retries=%d failures=%d, want %d/1", m.LinkRetries, m.LinkFailures, cfg.Retries)
	}
	if len(sa.fails) != 1 || sa.fails[0].To != 9 || sa.fails[0].Seq != 1 {
		t.Fatalf("link-failure handler got %v, want the retired frame to node 9", sa.fails)
	}
	if w.LinkStuckTimers() != 0 {
		t.Fatal("stuck retransmit timer after exhaustion")
	}
	if err := m.CheckLinkConservation(w.LinkQueueDepth()); err != nil {
		t.Fatal(err)
	}
}

func TestARQRecoversFromLostAcks(t *testing.T) {
	m := metrics.New()
	w, da, _, _, sb := arqWorld(t, 0, ARQConfig{Retries: 4, AckWait: 10 * sim.Millisecond, Metrics: m})
	// The sender hears nothing at all: every ACK is lost, the receiver sees
	// each retransmission, re-ACKs it, and must deliver the frame to its
	// stack exactly once.
	w.SensorMedium().Station(1).SetRxLoss(0.999999)
	da.Send(dataTo(1, 2, 1))
	w.RunUntilIdle()
	if len(sb.got) != 1 {
		t.Fatalf("receiver stack saw %d frames, want exactly 1 (duplicates suppressed)", len(sb.got))
	}
	if m.LinkAckSent != 5 {
		t.Fatalf("receiver sent %d ACKs, want one per transmission (5)", m.LinkAckSent)
	}
	if m.LinkFailures != 1 {
		t.Fatalf("failures=%d, want 1 (sender never heard an ACK)", m.LinkFailures)
	}
	if err := m.CheckLinkConservation(w.LinkQueueDepth()); err != nil {
		t.Fatal(err)
	}
}

func TestARQDedupeExpiresForEndToEndResends(t *testing.T) {
	m := metrics.New()
	cfg := ARQConfig{Retries: 2, AckWait: 10 * sim.Millisecond, Metrics: m}
	w, da, _, _, sb := arqWorld(t, 0, cfg)
	da.Send(dataTo(1, 2, 1))
	w.RunUntilIdle()
	// A later end-to-end resend reuses (origin, seq) — e.g. SecMLR failover
	// after its AckWait — and must pass once the dedupe window has expired.
	var span sim.Duration
	for i := 0; i <= cfg.Retries; i++ {
		span += radio.RetryBackoff(cfg.AckWait, i)
	}
	w.Kernel().After(span+10*sim.Millisecond, func() {
		da.Send(dataTo(1, 2, 1))
	})
	w.RunUntilIdle()
	if len(sb.got) != 2 {
		t.Fatalf("receiver stack saw %d frames, want 2 (dedupe entry expired)", len(sb.got))
	}
}

func TestARQQueueBoundAndBackpressure(t *testing.T) {
	m := metrics.New()
	cfg := ARQConfig{Retries: 1, AckWait: 10 * sim.Millisecond, QueueLimit: 2, Metrics: m}
	w := NewWorld(Config{Seed: 7, SensorRadio: radio.Config{BitRate: 250e3}})
	da := w.AddSensor(1, geom.Point{}, 30, 0, &arqStack{})
	da.EnableLinkARQ(cfg)
	accepted := 0
	for i := uint32(1); i <= 5; i++ {
		if da.Send(dataTo(1, 9, i)) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("queue of 2 accepted %d frames", accepted)
	}
	if m.QueueDrops != 3 {
		t.Fatalf("QueueDrops=%d, want 3", m.QueueDrops)
	}
	if da.LinkQueueLen() != 2 {
		t.Fatalf("queue length %d, want 2", da.LinkQueueLen())
	}
	w.RunUntilIdle()
	if m.LinkFailures != 2 || da.LinkQueueLen() != 0 {
		t.Fatalf("failures=%d queueLen=%d after drain, want 2/0", m.LinkFailures, da.LinkQueueLen())
	}
	if err := m.CheckLinkConservation(w.LinkQueueDepth()); err != nil {
		t.Fatal(err)
	}
}

func TestARQFlushOnDeath(t *testing.T) {
	m := metrics.New()
	w := NewWorld(Config{Seed: 7, SensorRadio: radio.Config{BitRate: 250e3}})
	da := w.AddSensor(1, geom.Point{}, 30, 0, &arqStack{})
	da.EnableLinkARQ(ARQConfig{Retries: 3, AckWait: 10 * sim.Millisecond, Metrics: m})
	for i := uint32(1); i <= 3; i++ {
		da.Send(dataTo(1, 9, i))
	}
	da.Fail()
	if da.LinkQueueLen() != 0 {
		t.Fatal("kill did not flush the forwarding queue")
	}
	if m.LinkFlushed != 3 {
		t.Fatalf("LinkFlushed=%d, want 3", m.LinkFlushed)
	}
	w.RunUntilIdle() // any stray timer event must be a no-op
	if w.LinkStuckTimers() != 0 {
		t.Fatal("stuck timer on a dead device")
	}
	if err := m.CheckLinkConservation(w.LinkQueueDepth()); err != nil {
		t.Fatal(err)
	}
}

func TestLinkConservationDetectsImbalance(t *testing.T) {
	m := metrics.New()
	m.LinkTxQueued = 10
	m.LinkAcked = 6
	m.LinkFailures = 1
	if err := m.CheckLinkConservation(2); err == nil {
		t.Fatal("ledger 10 != 6+1+0+2 not flagged")
	}
	m.LinkFlushed = 1
	if err := m.CheckLinkConservation(2); err != nil {
		t.Fatalf("balanced ledger flagged: %v", err)
	}
}

// TestARQPropertyRandomLoss drives the retransmit machine through seeded
// random loss/timing regimes and asserts its invariants in every one:
// per-frame transmissions never exceed 1+Retries, the conservation ledger
// balances, queues drain, no retransmit timer survives without a frame in
// flight, and the receiver's stack never sees a link-layer duplicate.
func TestARQPropertyRandomLoss(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + trial)))
			retries := 1 + rng.Intn(5)
			loss := rng.Float64() * 0.6
			frames := 1 + rng.Intn(12)
			m := metrics.New()
			cfg := ARQConfig{Retries: retries, AckWait: 5 * sim.Millisecond,
				QueueLimit: 4 + rng.Intn(12), Metrics: m}
			w, da, _, _, sb := arqWorld(t, loss, cfg)
			queued := uint64(0)
			for i := 0; i < frames; i++ {
				if da.Send(dataTo(1, 2, uint32(i+1))) {
					queued++
				}
			}
			w.RunUntilIdle()
			if da.SentPackets() > queued*uint64(retries+1) {
				t.Fatalf("sender transmitted %d frames for %d queued with budget %d each",
					da.SentPackets(), queued, retries+1)
			}
			if m.LinkTxQueued != queued {
				t.Fatalf("LinkTxQueued=%d, want %d", m.LinkTxQueued, queued)
			}
			if err := m.CheckLinkConservation(w.LinkQueueDepth()); err != nil {
				t.Fatal(err)
			}
			if w.LinkQueueDepth() != 0 {
				t.Fatalf("queues did not drain: %d frames stranded", w.LinkQueueDepth())
			}
			if w.LinkStuckTimers() != 0 {
				t.Fatal("stuck retransmit timer")
			}
			if uint64(len(sb.got)) > queued {
				t.Fatalf("receiver stack saw %d frames for %d sent — duplicate leaked", len(sb.got), queued)
			}
			if uint64(len(sb.got)) != m.LinkAcked {
				// Every frame the receiver's stack saw was the first copy of
				// an eventually-ACKed exchange, and vice versa — except when
				// the sender gave up after the receiver already got the data
				// (ACKs lost), so acked <= seen always holds.
				if m.LinkAcked > uint64(len(sb.got)) {
					t.Fatalf("acked=%d > delivered-to-stack=%d", m.LinkAcked, len(sb.got))
				}
			}
		})
	}
}
