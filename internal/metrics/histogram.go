package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"

	"wmsn/internal/sim"
)

// HistID names one of the fixed set of histograms carried by every Memory.
// The set is closed (an array, not a map) so recording is a bounds-checked
// array index on the hot path and merged snapshots stay allocation-free.
type HistID uint8

const (
	// HistDeliveryLatencyUs tracks end-to-end delivery latency in
	// microseconds (sim.Duration ticks), one sample per fresh delivery.
	HistDeliveryLatencyUs HistID = iota
	// HistFailoverLatencyUs tracks time from route loss to reroute in
	// microseconds, one sample per SPR/MLR failover event.
	HistFailoverLatencyUs
	// HistLinkRetries tracks ARQ retransmissions per settled frame (0 for
	// first-try ACKs, cfg.Retries for exhausted frames).
	HistLinkRetries
	// HistForwardQueueDepth tracks the ARQ forwarding-queue depth observed
	// after each enqueue.
	HistForwardQueueDepth

	numHists
)

var histNames = [numHists]string{
	HistDeliveryLatencyUs: "delivery_latency_us",
	HistFailoverLatencyUs: "failover_latency_us",
	HistLinkRetries:       "link_retries",
	HistForwardQueueDepth: "forward_queue_depth",
}

// Name returns the stable snake_case identifier used in JSON snapshots and
// Prometheus metric names.
func (h HistID) Name() string {
	if h < numHists {
		return histNames[h]
	}
	return "unknown"
}

// NumHists reports how many histogram IDs exist; IDs are 0..NumHists()-1.
func NumHists() int { return int(numHists) }

// Log-linear bucket layout: 8 sub-buckets per octave. Values below 8 get
// their own exact bucket (index == value); a value v >= 8 lands in
// index e*8 + m where e = bits.Len64(v)-4 and m = v>>e (m in [8,16)), so the
// bucket [m<<e, (m+1)<<e - 1] bounds v within a relative width of 1/8.
// e ranges 0..60, giving a max index of 60*8+15 = 495.
const (
	histBuckets = 496
	// histMaxValue caps observed values so the min/max encoding (v+1, with
	// 0 meaning "unset") cannot wrap. Real observations are microseconds,
	// retries or queue depths — nowhere near 2^60.
	histMaxValue = uint64(1)<<60 - 1
)

// histIndex maps a value to its bucket. Exact for v < 8.
func histIndex(v uint64) int {
	if v < 8 {
		return int(v)
	}
	e := bits.Len64(v) - 4
	return e*8 + int(v>>uint(e))
}

// histBucketBounds returns the inclusive [lo, hi] range of bucket i.
func histBucketBounds(i int) (lo, hi uint64) {
	if i < 8 {
		return uint64(i), uint64(i)
	}
	e := uint(i/8 - 1)
	m := uint64(i%8 + 8)
	return m << e, (m+1)<<e - 1
}

// Hist is a deterministic, fixed-memory, mergeable histogram. The zero value
// is ready to use. Observe is exact for values below 8 and within a 12.5%
// relative bucket width above; Sum, Count, Min and Max are always exact.
// Merge is element-wise addition, so it is commutative and associative:
// folding per-run histograms in any order (parallel workers, spatial shards)
// yields bit-identical state.
type Hist struct {
	counts [histBuckets]uint64
	sum    uint64
	count  uint64
	// min/max are stored as value+1 so the zero value means "no samples";
	// Observe clamps to histMaxValue, making the +1 safe.
	minEnc uint64
	maxEnc uint64
}

// Observe records one sample. Not safe for concurrent use; see
// ObserveAtomic for the sharded path.
func (h *Hist) Observe(v uint64) {
	if v > histMaxValue {
		v = histMaxValue
	}
	h.counts[histIndex(v)]++
	h.sum += v
	h.count++
	if h.minEnc == 0 || v+1 < h.minEnc {
		h.minEnc = v + 1
	}
	if v+1 > h.maxEnc {
		h.maxEnc = v + 1
	}
}

// ObserveAtomic records one sample using atomic operations, for use while
// spatial shard workers record concurrently. Because every update is a
// commutative add (or an order-free min/max), the final state is identical
// to the sequential result for the same sample multiset.
func (h *Hist) ObserveAtomic(v uint64) {
	if v > histMaxValue {
		v = histMaxValue
	}
	atomic.AddUint64(&h.counts[histIndex(v)], 1)
	atomic.AddUint64(&h.sum, v)
	atomic.AddUint64(&h.count, 1)
	for {
		cur := atomic.LoadUint64(&h.minEnc)
		if cur != 0 && cur <= v+1 {
			break
		}
		if atomic.CompareAndSwapUint64(&h.minEnc, cur, v+1) {
			break
		}
	}
	for {
		cur := atomic.LoadUint64(&h.maxEnc)
		if cur >= v+1 {
			break
		}
		if atomic.CompareAndSwapUint64(&h.maxEnc, cur, v+1) {
			break
		}
	}
}

// Merge folds o into h by element-wise addition. Order-independent.
func (h *Hist) Merge(o *Hist) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.sum += o.sum
	h.count += o.count
	if h.minEnc == 0 || (o.minEnc != 0 && o.minEnc < h.minEnc) {
		h.minEnc = o.minEnc
	}
	if o.maxEnc > h.maxEnc {
		h.maxEnc = o.maxEnc
	}
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the exact sum of all observed values (pre-clamp values above
// histMaxValue excepted).
func (h *Hist) Sum() uint64 { return h.sum }

// Min returns the exact smallest sample, or 0 when empty.
func (h *Hist) Min() uint64 {
	if h.minEnc == 0 {
		return 0
	}
	return h.minEnc - 1
}

// Max returns the exact largest sample, or 0 when empty.
func (h *Hist) Max() uint64 {
	if h.maxEnc == 0 {
		return 0
	}
	return h.maxEnc - 1
}

// Percentile returns the p-th percentile (p in [0,100], clamped; NaN maps to
// 0). The rank convention matches Memory.LatencyPercentile: rank =
// floor(p/100 * (count-1)). The returned value is the upper bound of the
// bucket holding that rank, clamped to [Min, Max], so it is exact for values
// below 8 and overestimates by at most 12.5% otherwise.
func (h *Hist) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(p) || p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.Max()
	}
	rank := uint64(p / 100 * float64(h.count-1))
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum > rank {
			_, hi := histBucketBounds(i)
			if hi > h.Max() {
				hi = h.Max()
			}
			if hi < h.Min() {
				hi = h.Min()
			}
			return hi
		}
	}
	return h.Max()
}

// HistBucket is one non-empty bucket in a snapshot; Lo/Hi are the inclusive
// value bounds, N the sample count.
type HistBucket struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	N  uint64 `json:"n"`
}

// HistSnapshot is the JSON-friendly view of a histogram. Buckets lists only
// non-empty buckets in ascending order, so equal snapshots imply bit-equal
// histogram state.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     uint64       `json:"min"`
	Max     uint64       `json:"max"`
	P50     uint64       `json:"p50"`
	P95     uint64       `json:"p95"`
	P99     uint64       `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot renders the histogram for export. Returns a zero snapshot when
// empty.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := histBucketBounds(i)
		s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: hi, N: c})
	}
	return s
}

// PercentileDuration is Percentile for histograms holding sim.Duration
// microsecond ticks.
func (h *Hist) PercentileDuration(p float64) sim.Duration {
	return sim.Duration(h.Percentile(p))
}
