package experiments

import (
	"fmt"
	"math"

	"wmsn/internal/core"
	"wmsn/internal/geom"
	"wmsn/internal/network"
	"wmsn/internal/packet"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// E11TopologyControl exercises the §4.4 mechanisms: receiver sleep
// scheduling (duty cycling) trades delivery and latency for reception
// energy, and k-neighbor power control shrinks transmission ranges (and so
// transmission energy) while keeping the field connected.
func E11TopologyControl(o Opts) []*trace.Table {
	n := pick(o, 120, 60)
	side := pick(o, 200.0, 150.0)
	horizon := pick(o, 200*sim.Second, 100*sim.Second)
	seeds := o.seeds(3)

	tbl := trace.NewTable("E11: topology control (SPR, 3 gateways)",
		"configuration", "delivery", "sensor energy mJ", "rx share", "latency ms")
	type variant struct {
		name string
		duty float64 // 1.0 = always listening
		k    int     // power-control neighbor target; 0 = off
	}
	variants := []variant{
		{"baseline (always on, full power)", 1.0, 0},
		{"sleep 70% duty", 0.7, 0},
		{"sleep 40% duty", 0.4, 0},
		{"power control k=8", 1.0, 8},
		{"sleep 70% + power control k=8", 0.7, 8},
	}
	var cfgs []scenario.Config
	for _, v := range variants {
		v := v // each config's Mutate hook captures its own variant
		for s := 0; s < seeds; s++ {
			cfgs = append(cfgs, scenario.Config{
				Seed: int64(1100 + s), Protocol: scenario.SPR, NumSensors: n, Side: side,
				SensorRange: 40, NumGateways: 3,
				ReportInterval: 10 * sim.Second, RunFor: horizon,
				SensorBattery: 1e6, // energy is measured, not survival
				Mutate: func(net *scenario.Net) {
					if v.k > 0 {
						pos := map[packet.NodeID]geom.Point{}
						for _, id := range net.SensorIDs {
							pos[id] = net.World.Device(id).Pos()
						}
						network.ApplyRanges(net.World, network.PowerControlK(pos, v.k, 40))
					}
					if v.duty < 1 {
						sched := network.NewSleepScheduler(net.World, 200*sim.Millisecond, v.duty, nil)
						sched.Start()
					}
				},
			})
		}
	}
	results := runConfigs(o, cfgs)
	for vi, v := range variants {
		var ratio, eng, rxShare, lat float64
		for s := 0; s < seeds; s++ {
			res := results[vi*seeds+s]
			ratio += res.Metrics.DeliveryRatio()
			eng += res.Energy.Mean * 1000
			if res.Energy.Total > 0 {
				rxShare += res.Energy.RxTotal / res.Energy.Total
			}
			lat += res.Metrics.MeanLatency().Millis()
		}
		f := float64(seeds)
		tbl.AddRow(v.name, ratio/f, eng/f, rxShare/f, lat/f)
	}
	tbl.AddNote("%d sensors, %d seeds; rx share = fraction of sensor energy spent receiving", n, seeds)
	return []*trace.Table{tbl}
}

// E12SPRConvergence verifies the E12/Property-1 claims at scale: SPR's
// discovered routes are BFS-optimal on loss-free media, and its control
// overhead (RREQ floods plus RRES responses, amortized by route caching)
// grows manageably with network size.
func E12SPRConvergence(o Opts) []*trace.Table {
	sizes := pick(o, []int{50, 100, 200, 400}, []int{40, 80})
	seeds := o.seeds(3)
	tbl := trace.NewTable("E12: SPR route optimality and control overhead vs size",
		"sensors n", "optimal routes", "control pkts", "ctrl per delivered", "delivery")
	type sample struct{ optFrac, ctrl, perDel, ratio float64 }
	samples := forEach(o, len(sizes)*seeds, func(i int) sample {
		n, s := sizes[i/seeds], i%seeds
		side := 200 * math.Sqrt(float64(n)/100)
		net := scenario.Build(scenario.Config{
			Seed: int64(1200 + s), Protocol: scenario.SPR, NumSensors: n, Side: side,
			SensorRange: 40, NumGateways: 3,
			ReportInterval: 15 * sim.Second, RunFor: 90 * sim.Second,
			SensorBattery: 1e6,
		})
		res := net.RunTraffic()
		// Compare every sensor's discovered hop count with the BFS
		// optimum over the final topology.
		g := network.FromWorld(net.World)
		optimal, routed := 0, 0
		for _, id := range net.SensorIDs {
			st, ok := net.Originators[id].(*core.SPRSensor)
			if !ok {
				continue
			}
			r := st.BestRoute()
			if r == nil {
				continue
			}
			routed++
			if _, want := g.NearestOf(id, net.GatewayIDs); want == r.Hops {
				optimal++
			}
		}
		var out sample
		if routed > 0 {
			out.optFrac = float64(optimal) / float64(routed)
		}
		out.ctrl = float64(res.Metrics.ControlPackets())
		if res.Metrics.Delivered > 0 {
			out.perDel = out.ctrl / float64(res.Metrics.Delivered)
		}
		out.ratio = res.Metrics.DeliveryRatio()
		return out
	})
	for ni, n := range sizes {
		var optFrac, ctrl, perDel, ratio float64
		for s := 0; s < seeds; s++ {
			sm := samples[ni*seeds+s]
			optFrac += sm.optFrac
			ctrl += sm.ctrl
			perDel += sm.perDel
			ratio += sm.ratio
		}
		f := float64(seeds)
		tbl.AddRow(n, fmt.Sprintf("%.1f%%", 100*optFrac/f), ctrl/f, perDel/f, ratio/f)
	}
	tbl.AddNote("loss-free medium, %d seeds; optimality = discovered hops == BFS optimum", seeds)
	return []*trace.Table{tbl}
}
