package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
)

// lineGraph builds n nodes on a line with given spacing and range.
func lineGraph(n int, spacing, rangeM float64) *Graph {
	pos := map[packet.NodeID]geom.Point{}
	ranges := map[packet.NodeID]float64{}
	for i := 0; i < n; i++ {
		id := packet.NodeID(i + 1)
		pos[id] = geom.Point{X: float64(i) * spacing}
		ranges[id] = rangeM
	}
	return Build(pos, ranges)
}

func TestBuildLineAdjacency(t *testing.T) {
	g := lineGraph(5, 10, 12)
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	// Each interior node connects to exactly its two lattice neighbors.
	if d := g.Degree(3); d != 2 {
		t.Fatalf("Degree(3) = %d, want 2", d)
	}
	if d := g.Degree(1); d != 1 {
		t.Fatalf("Degree(1) = %d, want 1", d)
	}
	nbrs := g.Neighbors(2)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Fatalf("Neighbors(2) = %v", nbrs)
	}
}

func TestAsymmetricRangesYieldNoEdge(t *testing.T) {
	// a can hear b but not vice versa: no bidirectional link.
	pos := map[packet.NodeID]geom.Point{1: {}, 2: {X: 20}}
	ranges := map[packet.NodeID]float64{1: 50, 2: 10}
	g := Build(pos, ranges)
	if g.Degree(1) != 0 || g.Degree(2) != 0 {
		t.Fatal("asymmetric link treated as bidirectional")
	}
}

func TestBFSAndHops(t *testing.T) {
	g := lineGraph(6, 10, 12)
	dist, parent := g.BFS(1)
	for i := 1; i <= 6; i++ {
		if dist[packet.NodeID(i)] != i-1 {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[packet.NodeID(i)], i-1)
		}
	}
	if parent[3] != 2 {
		t.Fatalf("parent[3] = %v", parent[3])
	}
	if h := g.Hops(1, 6); h != 5 {
		t.Fatalf("Hops(1,6) = %d", h)
	}
	if h := g.Hops(1, 99); h != Unreachable {
		t.Fatalf("Hops to missing node = %d, want Unreachable", h)
	}
}

func TestShortestPath(t *testing.T) {
	g := lineGraph(4, 10, 12)
	path := g.ShortestPath(1, 4)
	want := []packet.NodeID{1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if p := g.ShortestPath(1, 1); len(p) != 1 || p[0] != 1 {
		t.Fatalf("self path = %v", p)
	}
	// Disconnected pair.
	pos := map[packet.NodeID]geom.Point{1: {}, 2: {X: 1000}}
	ranges := map[packet.NodeID]float64{1: 10, 2: 10}
	if p := Build(pos, ranges).ShortestPath(1, 2); p != nil {
		t.Fatalf("path across partition = %v", p)
	}
}

func TestNearestOf(t *testing.T) {
	g := lineGraph(10, 10, 12)
	// Gateways at 1 and 10; node 4 is 3 hops from 1 and 6 from 10.
	id, h := g.NearestOf(4, []packet.NodeID{1, 10})
	if id != 1 || h != 3 {
		t.Fatalf("NearestOf = %v/%d, want n1/3", id, h)
	}
	// Equidistant: node 5 is 4 hops from 1, 5 hops from 10 -> 1.
	// Node 6 is 5 from 1 and 4 from 10.
	if id, _ := g.NearestOf(6, []packet.NodeID{1, 10}); id != 10 {
		t.Fatalf("NearestOf(6) = %v, want n10", id)
	}
	if id, h := g.NearestOf(4, []packet.NodeID{77}); id != packet.None || h != Unreachable {
		t.Fatalf("unreachable NearestOf = %v/%d", id, h)
	}
}

func TestNearestOfTieBreaksToSmallerID(t *testing.T) {
	// Symmetric line: node 3 is 2 hops from both 1 and 5.
	g := lineGraph(5, 10, 12)
	if id, h := g.NearestOf(3, []packet.NodeID{5, 1}); id != 1 || h != 2 {
		t.Fatalf("tie break = %v/%d, want n1/2", id, h)
	}
}

func TestComponentsAndConnected(t *testing.T) {
	pos := map[packet.NodeID]geom.Point{
		1: {}, 2: {X: 10}, // island A
		5: {X: 500}, 6: {X: 510}, 7: {X: 520}, // island B
	}
	ranges := map[packet.NodeID]float64{1: 15, 2: 15, 5: 15, 6: 15, 7: 15}
	g := Build(pos, ranges)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 2 || comps[0][0] != 1 {
		t.Fatalf("first component = %v", comps[0])
	}
	if len(comps[1]) != 3 || comps[1][0] != 5 {
		t.Fatalf("second component = %v", comps[1])
	}
	if g.Connected() {
		t.Fatal("partitioned graph reported connected")
	}
	if !lineGraph(5, 10, 12).Connected() {
		t.Fatal("line graph reported disconnected")
	}
}

func TestAvgDegreeAndAvgHops(t *testing.T) {
	g := lineGraph(4, 10, 12) // degrees 1,2,2,1
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("AvgDegree = %v", got)
	}
	avg, unreach := g.AvgHopsToNearest([]packet.NodeID{2, 3, 4}, []packet.NodeID{1})
	if unreach != 0 || avg != 2.0 {
		t.Fatalf("AvgHops = %v (%d unreachable), want 2.0", avg, unreach)
	}
	empty := Build(nil, nil)
	if d := empty.AvgDegree(); d != 0 {
		t.Fatalf("empty AvgDegree = %v", d)
	}
	if avg, unreach := empty.AvgHopsToNearest([]packet.NodeID{1}, nil); avg != 0 || unreach != 1 {
		t.Fatalf("empty AvgHops = %v/%d", avg, unreach)
	}
}

// TestFig2SingleSinkVsThreeGateways reproduces the hop-count contrast of
// Fig. 2 structurally: the same topology, measured against one sink versus
// three gateways, must show a large average-hop reduction.
func TestFig2HopContrast(t *testing.T) {
	g := lineGraph(10, 10, 12)
	single, _ := g.AvgHopsToNearest([]packet.NodeID{2, 5, 8}, []packet.NodeID{1})
	multi, _ := g.AvgHopsToNearest([]packet.NodeID{2, 5, 8}, []packet.NodeID{1, 5, 10})
	if multi >= single {
		t.Fatalf("multi-gateway avg hops %v not below single-sink %v", multi, single)
	}
}

func TestVerifySubpathOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pos := map[packet.NodeID]geom.Point{}
	ranges := map[packet.NodeID]float64{}
	for i := 0; i < 80; i++ {
		id := packet.NodeID(i + 1)
		pos[id] = geom.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		ranges[id] = 40
	}
	g := Build(pos, ranges)
	for i := 0; i < 40; i++ {
		src := packet.NodeID(rng.Intn(80) + 1)
		dst := packet.NodeID(rng.Intn(80) + 1)
		if err := g.VerifySubpathOptimality(src, dst); err != nil {
			t.Fatalf("Property 1 violated for %v->%v: %v", src, dst, err)
		}
	}
}

func TestFromWorldSkipsDeadAndMeshOnly(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	w.AddSensor(1, geom.Point{}, 30, 0, nil)
	w.AddSensor(2, geom.Point{X: 10}, 30, 0, nil)
	dead := w.AddSensor(3, geom.Point{X: 20}, 30, 0, nil)
	w.AddGateway(100, geom.Point{X: 15}, 30, 200, nil)
	w.AddMeshRouter(50, geom.Point{X: 5}, 200)
	dead.Fail()
	g := FromWorld(w)
	if g.Has(3) {
		t.Fatal("dead sensor present in graph")
	}
	if g.Has(50) {
		t.Fatal("mesh-only router present in sensor graph")
	}
	if !g.Has(100) || !g.Has(1) {
		t.Fatal("expected vertices missing")
	}
	if g.Hops(1, 100) == Unreachable {
		t.Fatal("sensor cannot reach gateway in graph")
	}
}

// Property: BFS distance respects the triangle inequality over edges and
// every suffix of every shortest path is itself shortest (Property 1).
func TestQuickBFSProperty1(t *testing.T) {
	f := func(seed int64, nRaw, rangeRaw uint8) bool {
		n := int(nRaw%40) + 5
		rng := rand.New(rand.NewSource(seed))
		pos := map[packet.NodeID]geom.Point{}
		ranges := map[packet.NodeID]float64{}
		r := float64(rangeRaw%40) + 15
		for i := 0; i < n; i++ {
			id := packet.NodeID(i + 1)
			pos[id] = geom.Point{X: rng.Float64() * 150, Y: rng.Float64() * 150}
			ranges[id] = r
		}
		g := Build(pos, ranges)
		src := packet.NodeID(rng.Intn(n) + 1)
		dist, _ := g.BFS(src)
		// Edge relaxation: adjacent nodes differ by at most 1 hop.
		for _, u := range g.IDs() {
			du, okU := dist[u]
			for _, v := range g.Neighbors(u) {
				dv, okV := dist[v]
				if okU != okV {
					return false // reachable node adjacent to unreachable one
				}
				if okU && okV && (du-dv > 1 || dv-du > 1) {
					return false
				}
			}
		}
		dst := packet.NodeID(rng.Intn(n) + 1)
		return g.VerifySubpathOptimality(src, dst) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFS500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pos := map[packet.NodeID]geom.Point{}
	ranges := map[packet.NodeID]float64{}
	for i := 0; i < 500; i++ {
		id := packet.NodeID(i + 1)
		pos[id] = geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		ranges[id] = 50
	}
	g := Build(pos, ranges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(1)
	}
}
