package core

import (
	"testing"

	"wmsn/internal/packet"
	"wmsn/internal/wsncrypto"
)

// FuzzParseRReqBlocks drives the SecMLR RREQ block parser with arbitrary
// bytes: no panics, and accepted inputs must round-trip through the
// marshaller.
func FuzzParseRReqBlocks(f *testing.F) {
	f.Add(marshalRReqBlocks([]rreqBlock{{Gateway: 1000, Counter: 7, Cipher: 0xAB,
		MAC: make([]byte, wsncrypto.MACSize)}}))
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{255, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, ok := parseRReqBlocks(data)
		if !ok {
			return
		}
		re := marshalRReqBlocks(blocks)
		blocks2, ok2 := parseRReqBlocks(re)
		if !ok2 || len(blocks2) != len(blocks) {
			t.Fatalf("re-parse failed: %v vs %v", blocks, blocks2)
		}
		for i := range blocks {
			if blocks[i].Gateway != blocks2[i].Gateway || blocks[i].Counter != blocks2[i].Counter {
				t.Fatalf("block %d mismatch", i)
			}
		}
	})
}

// FuzzParseNotifyPayloads exercises the plain-MLR notify decoders.
func FuzzParseNotifyPayloads(f *testing.F) {
	f.Add(mlrNotify{NewPlace: 1, PrevPlace: NoPlace, Round: 3}.marshalMoveNotify())
	f.Add(marshalOverloadNotify(2, 5))
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 1 && data[0] == mlrNotifyMove {
			if n, ok := parseMLRNotify(data[1:]); ok {
				re := n.marshalMoveNotify()
				if n2, ok2 := parseMLRNotify(re[1:]); !ok2 || n2 != n {
					t.Fatalf("move notify not a fixpoint: %+v vs %+v", n, n2)
				}
			}
		}
		if place, round, ok := parseOverloadNotify(data); ok {
			re := marshalOverloadNotify(place, round)
			p2, r2, ok2 := parseOverloadNotify(re)
			if !ok2 || p2 != place&0xFFFF || r2 != round&0xFFFF {
				t.Fatalf("overload notify not a fixpoint")
			}
		}
		// The generic place-payload parser must tolerate anything.
		parsePlacePayload(data)
		parseResBody(data)
	})
}

// FuzzSecMLRGatewayInput throws arbitrary RREQ payloads at a provisioned
// gateway stack: the security boundary must never panic regardless of what
// arrives from the air.
func FuzzSecMLRGatewayInput(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 0, 0, 3, 232}, uint8(1))
	f.Fuzz(func(t *testing.T, payload []byte, kindRaw uint8) {
		_, gKeys := ProvisionKeys([]byte("fuzz"), []packet.NodeID{1, 2},
			[]packet.NodeID{1000}, 4)
		g := NewSecMLRGateway(DefaultParams(), NewMetrics(), gKeys[1000])
		// Start is normally called by the world; a nil device exercises the
		// guard paths, so drive HandleMessage pre-start and post-start.
		pkt := &packet.Packet{
			Kind:    packet.Kind(kindRaw%4) + packet.KindRReq,
			From:    2,
			To:      1000,
			Origin:  1,
			Target:  1000,
			Seq:     1,
			TTL:     4,
			Payload: payload,
		}
		// place < 0 pre-deployment: every kind must bail out safely.
		g.HandleMessage(pkt)
	})
}
