package network

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/packet"
)

// The grid-accelerated Build and PowerControlK must be observably identical
// to the O(n²) scans they replaced — not merely equivalent-up-to-rounding:
// golden experiment outputs pin the old behavior bit-for-bit. These tests
// keep verbatim copies of the original implementations as oracles and
// compare across randomized fields, shared and heterogeneous ranges.

// bruteBuild is the original pairwise-scan Build, kept as the oracle.
func bruteBuild(pos map[packet.NodeID]geom.Point, ranges map[packet.NodeID]float64) *Graph {
	g := &Graph{
		pos: make(map[packet.NodeID]geom.Point, len(pos)),
		adj: make(map[packet.NodeID][]packet.NodeID, len(pos)),
	}
	for id, p := range pos {
		g.ids = append(g.ids, id)
		g.pos[id] = p
	}
	sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
	for i, a := range g.ids {
		for _, b := range g.ids[i+1:] {
			r := ranges[a]
			if rb := ranges[b]; rb < r {
				r = rb
			}
			if g.pos[a].Dist(g.pos[b]) <= r {
				g.adj[a] = append(g.adj[a], b)
				g.adj[b] = append(g.adj[b], a)
			}
		}
	}
	return g
}

// brutePowerControlK is the original per-node full-sort PowerControlK.
func brutePowerControlK(pos map[packet.NodeID]geom.Point, k int, maxRange float64) map[packet.NodeID]float64 {
	out := make(map[packet.NodeID]float64, len(pos))
	ids := make([]packet.NodeID, 0, len(pos))
	for id := range pos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dists := make([]float64, 0, len(ids))
	for _, id := range ids {
		dists = dists[:0]
		for _, other := range ids {
			if other == id {
				continue
			}
			dists = append(dists, pos[id].Dist(pos[other]))
		}
		sort.Float64s(dists)
		idx := k - 1
		if idx >= len(dists) {
			idx = len(dists) - 1
		}
		r := maxRange
		if idx >= 0 && idx < len(dists) && dists[idx] < maxRange {
			r = dists[idx]
		}
		if len(dists) == 0 {
			r = 0
		}
		out[id] = r
	}
	return out
}

func requireSameGraph(t *testing.T, trial int, got, want *Graph) {
	t.Helper()
	if !reflect.DeepEqual(got.ids, want.ids) {
		t.Fatalf("trial %d: ids differ: %v vs %v", trial, got.ids, want.ids)
	}
	// adj must match exactly: same keys (no empty lists for isolated
	// nodes) and identical, ascending neighbor order.
	if !reflect.DeepEqual(got.adj, want.adj) {
		t.Fatalf("trial %d: adjacency differs:\ngrid:  %v\nbrute: %v", trial, got.adj, want.adj)
	}
}

func randField(rng *rand.Rand, n int, side float64) map[packet.NodeID]geom.Point {
	pos := make(map[packet.NodeID]geom.Point, n)
	for i := 0; i < n; i++ {
		// Non-contiguous IDs so the tests never depend on ID == index.
		pos[packet.NodeID(i*3+1)] = geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pos
}

func TestBuildMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(120) // includes empty and single-node fields
		side := 20 + rng.Float64()*400
		pos := randField(rng, n, side)
		ranges := make(map[packet.NodeID]float64, n)
		shared := rng.Float64() * side / 3
		for id := range pos {
			ranges[id] = shared
		}
		requireSameGraph(t, trial, Build(pos, ranges), bruteBuild(pos, ranges))
	}
}

func TestBuildMatchesBruteForceHeterogeneousRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(120)
		side := 20 + rng.Float64()*400
		pos := randField(rng, n, side)
		ranges := make(map[packet.NodeID]float64, n)
		for id := range pos {
			ranges[id] = rng.Float64() * side / 2
		}
		// A few nodes with zero range, and occasionally an ID missing from
		// the ranges map (treated as zero by both implementations).
		for id := range pos {
			switch rng.Intn(12) {
			case 0:
				ranges[id] = 0
			case 1:
				delete(ranges, id)
			}
		}
		requireSameGraph(t, trial, Build(pos, ranges), bruteBuild(pos, ranges))
	}
}

// The deployment pipeline computes PowerControlK ranges and applies them to
// the world (ApplyRanges) before rebuilding the graph; this exercises the
// grid path end-to-end with exactly those heterogeneous radii.
func TestBuildAfterPowerControlMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(100)
		side := 20 + rng.Float64()*300
		pos := randField(rng, n, side)
		k := 1 + rng.Intn(8)
		maxRange := 10 + rng.Float64()*side/2
		got := PowerControlK(pos, k, maxRange)
		want := brutePowerControlK(pos, k, maxRange)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: PowerControlK(k=%d, max=%v) differs:\ngrid:  %v\nbrute: %v",
				trial, k, maxRange, got, want)
		}
		requireSameGraph(t, trial, Build(pos, got), bruteBuild(pos, want))
	}
}

func TestPowerControlKMatchesBruteForceEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(40) // includes 0 and 1 node fields
		pos := randField(rng, n, 100)
		k := rng.Intn(int(float64(n)*1.5)+2) - 1 // k < 0, k == 0, k > n all occur
		maxRange := []float64{0, 5, 30, 1e9}[rng.Intn(4)]
		got := PowerControlK(pos, k, maxRange)
		want := brutePowerControlK(pos, k, maxRange)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: PowerControlK(n=%d, k=%d, max=%v) differs:\ngrid:  %v\nbrute: %v",
				trial, n, k, maxRange, got, want)
		}
	}
}

// MultiSourceHops must agree with a per-vertex NearestOf scan (its
// one-BFS-per-sensor predecessor in placement.Evaluate).
func TestMultiSourceHopsMatchesNearestOf(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(80)
		pos := randField(rng, n, 200)
		ranges := make(map[packet.NodeID]float64, n)
		for id := range pos {
			ranges[id] = 30 + rng.Float64()*30
		}
		g := Build(pos, ranges)
		var srcs []packet.NodeID
		for _, id := range g.IDs() {
			if rng.Intn(8) == 0 {
				srcs = append(srcs, id)
			}
		}
		srcs = append(srcs, packet.NodeID(1<<20)) // unknown IDs are ignored
		dist := g.MultiSourceHops(srcs)
		for _, id := range g.IDs() {
			_, want := g.NearestOf(id, srcs)
			got, ok := dist[id]
			if !ok {
				got = Unreachable
			}
			if got != want {
				t.Fatalf("trial %d: hops from %v = %d, NearestOf says %d", trial, id, got, want)
			}
		}
	}
}

func TestKthSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(10)) // heavy duplicates
		}
		sorted := append([]float64(nil), a...)
		sort.Float64s(sorted)
		k := 1 + rng.Intn(n)
		if got := kthSmallest(a, k); got != sorted[k-1] {
			t.Fatalf("trial %d: kthSmallest(%v, %d) = %v, want %v", trial, a, k, got, sorted[k-1])
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{100, 1000} {
		pos := powerControlField(n)
		ranges := make(map[packet.NodeID]float64, n)
		for id := range pos {
			ranges[id] = 25
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Build(pos, ranges)
			}
		})
	}
}
