package node

import (
	"math"
	"testing"

	"wmsn/internal/energy"
	"wmsn/internal/geom"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/radio"
	"wmsn/internal/sim"
)

// echoStack records received packets and can reply.
type echoStack struct {
	dev  *Device
	got  []*packet.Packet
	auto bool // rebroadcast every packet once
}

func (s *echoStack) Start(dev *Device) { s.dev = dev }
func (s *echoStack) HandleMessage(p *packet.Packet) {
	s.got = append(s.got, p)
	if s.auto && p.TTL > 1 {
		q := p.Clone()
		q.TTL--
		q.Hops++
		q.From = s.dev.ID()
		s.dev.Send(q)
	}
}

func bcast(from packet.NodeID) *packet.Packet {
	return &packet.Packet{Kind: packet.KindHello, From: from, To: packet.Broadcast,
		Origin: from, Target: packet.Broadcast, TTL: 4}
}

func TestSensorSendReceive(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	a := &echoStack{}
	b := &echoStack{}
	da := w.AddSensor(1, geom.Point{}, 30, 0, a)
	w.AddSensor(2, geom.Point{X: 10}, 30, 0, b)
	if !da.Send(bcast(1)) {
		t.Fatal("Send failed")
	}
	w.RunUntilIdle()
	if len(b.got) != 1 {
		t.Fatalf("receiver got %d packets, want 1", len(b.got))
	}
	if len(a.got) != 0 {
		t.Fatal("sender received own broadcast")
	}
	if da.SentPackets() != 1 || da.SentBytes() == 0 {
		t.Fatalf("sender counters: %d pkts %d bytes", da.SentPackets(), da.SentBytes())
	}
}

func TestEnergyChargedOnTxAndRx(t *testing.T) {
	w := NewWorld(Config{Seed: 1, EnergyModel: energy.FixedPerBit{TxPerBit: 1e-6, RxPerBit: 5e-7}})
	a := w.AddSensor(1, geom.Point{}, 30, 1.0, &echoStack{})
	b := w.AddSensor(2, geom.Point{X: 10}, 30, 1.0, &echoStack{})
	pkt := bcast(1)
	a.Send(pkt)
	w.RunUntilIdle()
	wantTx := float64(pkt.SizeBits()) * 1e-6
	wantRx := float64(pkt.SizeBits()) * 5e-7
	if got := a.Battery().TxUsed(); math.Abs(got-wantTx) > 1e-12 {
		t.Fatalf("tx energy = %g, want %g", got, wantTx)
	}
	if got := b.Battery().RxUsed(); math.Abs(got-wantRx) > 1e-12 {
		t.Fatalf("rx energy = %g, want %g", got, wantRx)
	}
}

func TestOverhearingChargesButDoesNotDeliver(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	a := &echoStack{}
	c := &echoStack{}
	da := w.AddSensor(1, geom.Point{}, 30, 0, a)
	w.AddSensor(2, geom.Point{X: 5}, 30, 0, &echoStack{})
	dc := w.AddSensor(3, geom.Point{X: 10}, 30, 0, c)
	uni := bcast(1)
	uni.To = 2 // unicast to node 2
	da.Send(uni)
	w.RunUntilIdle()
	if len(c.got) != 0 {
		t.Fatal("node 3 delivered a unicast addressed to node 2")
	}
	if dc.Battery().RxUsed() == 0 {
		t.Fatal("overhearing node was not charged reception energy")
	}
}

func TestPromiscuousReceivesForeignUnicast(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	c := &echoStack{}
	da := w.AddSensor(1, geom.Point{}, 30, 0, &echoStack{})
	w.AddSensor(2, geom.Point{X: 5}, 30, 0, &echoStack{})
	dc := w.AddSensor(3, geom.Point{X: 10}, 30, 0, c)
	dc.SetPromiscuous(true)
	uni := bcast(1)
	uni.To = 2
	da.Send(uni)
	w.RunUntilIdle()
	if len(c.got) != 1 {
		t.Fatal("promiscuous node missed foreign unicast")
	}
}

func TestBatteryDepletionKillsNode(t *testing.T) {
	w := NewWorld(Config{Seed: 1, EnergyModel: energy.FixedPerBit{TxPerBit: 1e-3, RxPerBit: 1e-3}})
	// Tiny battery: dies on second transmission.
	pkt := bcast(1)
	cost := float64(pkt.SizeBits()) * 1e-3
	d := w.AddSensor(1, geom.Point{}, 30, cost*1.5, &echoStack{})
	if !d.Send(bcast(1)) {
		t.Fatal("first send should succeed")
	}
	if d.Send(bcast(1)) {
		t.Fatal("second send should brown out")
	}
	if d.Alive() {
		t.Fatal("device alive after brownout")
	}
	if w.FirstSensorDeath() < 0 {
		t.Fatal("first death not recorded")
	}
	if w.SensorsAlive() != 0 {
		t.Fatalf("SensorsAlive = %d", w.SensorsAlive())
	}
	if len(w.Deaths()) != 1 || w.Deaths()[0].Cause != CauseBattery {
		t.Fatalf("deaths = %+v", w.Deaths())
	}
	// Dead node sends nothing.
	if d.Send(bcast(1)) {
		t.Fatal("dead device sent a packet")
	}
}

func TestFailKillsAndDetaches(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	b := &echoStack{}
	da := w.AddSensor(1, geom.Point{}, 30, 0, &echoStack{})
	db := w.AddSensor(2, geom.Point{X: 5}, 30, 0, b)
	var deaths []DeathRecord
	w.OnDeath(func(r DeathRecord) { deaths = append(deaths, r) })
	db.Fail()
	if db.Alive() {
		t.Fatal("failed device still alive")
	}
	if len(deaths) != 1 || deaths[0].Cause != CauseFailure || deaths[0].ID != 2 {
		t.Fatalf("death callback: %+v", deaths)
	}
	da.Send(bcast(1))
	w.RunUntilIdle()
	if len(b.got) != 0 {
		t.Fatal("dead device received a packet")
	}
	// Double-fail is a no-op.
	db.Fail()
	if len(deaths) != 1 {
		t.Fatal("second Fail produced another death record")
	}
}

func TestGatewayOnBothMedia(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	gwStack := &echoStack{}
	gw := w.AddGateway(100, geom.Point{X: 50}, 30, 200, gwStack)
	s := w.AddSensor(1, geom.Point{X: 40}, 30, 0, &echoStack{})
	bs := w.AddBaseStation(200, geom.Point{X: 150}, 200)
	var meshGot []*packet.Packet
	bs.SetMeshHandler(func(p *packet.Packet) { meshGot = append(meshGot, p) })

	// Sensor-layer packet reaches the gateway's stack.
	s.Send(bcast(1))
	w.RunUntilIdle()
	if len(gwStack.got) != 1 {
		t.Fatalf("gateway stack got %d sensor packets", len(gwStack.got))
	}
	// Mesh-layer packet from gateway reaches the base station.
	mp := bcast(100)
	gw.SendMesh(mp)
	w.RunUntilIdle()
	if len(meshGot) != 1 {
		t.Fatalf("base station got %d mesh packets", len(meshGot))
	}
	// Gateway battery is infinite: heavy traffic never kills it.
	for i := 0; i < 1000; i++ {
		gw.SendMesh(mp)
	}
	if !gw.Alive() {
		t.Fatal("gateway died despite infinite battery")
	}
}

func TestMeshRouterNotOnSensorMedium(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	r := w.AddMeshRouter(50, geom.Point{X: 10}, 200)
	got := 0
	r.SetMeshHandler(func(*packet.Packet) { got++ })
	s := w.AddSensor(1, geom.Point{}, 30, 0, &echoStack{})
	s.Send(bcast(1))
	w.RunUntilIdle()
	if got != 0 {
		t.Fatal("mesh router heard a sensor-layer packet")
	}
	if r.SensorStation() != nil {
		t.Fatal("mesh router has a sensor station")
	}
	if r.Send(bcast(50)) {
		t.Fatal("mesh router Send on sensor layer should fail")
	}
}

func TestDuplicateIDPanics(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	w.AddSensor(1, geom.Point{}, 30, 0, &echoStack{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate device ID did not panic")
		}
	}()
	w.AddSensor(1, geom.Point{X: 5}, 30, 0, &echoStack{})
}

func TestDevicesOrderAndKindFilter(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	w.AddSensor(3, geom.Point{}, 30, 0, &echoStack{})
	w.AddGateway(100, geom.Point{X: 1}, 30, 100, &echoStack{})
	w.AddSensor(1, geom.Point{X: 2}, 30, 0, &echoStack{})
	w.AddMeshRouter(50, geom.Point{X: 3}, 100)
	ds := w.Devices()
	wantOrder := []packet.NodeID{3, 100, 1, 50}
	for i, d := range ds {
		if d.ID() != wantOrder[i] {
			t.Fatalf("insertion order broken: %v", ds)
		}
	}
	sensors := w.DevicesOfKind(Sensor)
	if len(sensors) != 2 || sensors[0].ID() != 3 || sensors[1].ID() != 1 {
		t.Fatalf("sensor filter: %v", sensors)
	}
	if w.SensorsTotal() != 2 {
		t.Fatalf("SensorsTotal = %d", w.SensorsTotal())
	}
}

func TestSensorEnergyStats(t *testing.T) {
	w := NewWorld(Config{Seed: 1, EnergyModel: energy.FixedPerBit{TxPerBit: 1e-6, RxPerBit: 1e-6}})
	a := w.AddSensor(1, geom.Point{}, 30, 0, &echoStack{})
	w.AddSensor(2, geom.Point{X: 500}, 30, 0, &echoStack{}) // isolated, spends nothing
	w.AddGateway(100, geom.Point{X: 1}, 30, 100, &echoStack{})
	a.Send(bcast(1))
	w.RunUntilIdle()
	st := w.SensorEnergyStats()
	if st.N != 2 {
		t.Fatalf("stats.N = %d, want 2 (gateway excluded)", st.N)
	}
	if st.Max <= 0 || st.Min != 0 {
		t.Fatalf("stats min/max = %g/%g", st.Min, st.Max)
	}
	if st.Variance <= 0 {
		t.Fatal("variance should be positive for unequal consumption")
	}
}

func TestMinSensorBatteryFraction(t *testing.T) {
	w := NewWorld(Config{Seed: 1, EnergyModel: energy.FixedPerBit{TxPerBit: 1e-3, RxPerBit: 0}})
	d := w.AddSensor(1, geom.Point{}, 30, 10, &echoStack{})
	if f := w.MinSensorBatteryFraction(); f != 1 {
		t.Fatalf("fresh world fraction = %v", f)
	}
	d.Send(bcast(1))
	if f := w.MinSensorBatteryFraction(); f >= 1 {
		t.Fatal("fraction did not drop after transmission")
	}
}

func TestMultiHopRelayChain(t *testing.T) {
	// 1 -- 2 -- 3 -- 4 in a line, range 12, spacing 10: packets must relay.
	w := NewWorld(Config{Seed: 1})
	stacks := make([]*echoStack, 5)
	for i := 1; i <= 4; i++ {
		stacks[i] = &echoStack{auto: i != 1 && i != 4} // middle nodes relay
		w.AddSensor(packet.NodeID(i), geom.Point{X: float64(i) * 10}, 12, 0, stacks[i])
	}
	w.Device(1).Send(bcast(1))
	w.RunUntilIdle()
	if len(stacks[4].got) == 0 {
		t.Fatal("packet never reached node 4 through relays")
	}
	if got := stacks[4].got[0].TTL; got >= 4 {
		t.Fatalf("relayed packet TTL = %d, want decremented", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Sensor: "sensor", Gateway: "gateway", MeshRouter: "mesh-router", BaseStation: "base-station",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(77).String() == "" {
		t.Error("unknown kind empty string")
	}
}

func TestWorldDefaults(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	d := w.AddSensor(1, geom.Point{}, 30, 0, &echoStack{})
	if d.Battery().Capacity() != 2.0 {
		t.Fatalf("default battery = %g, want 2.0", d.Battery().Capacity())
	}
	if w.FirstSensorDeath() != -1 {
		t.Fatal("FirstSensorDeath should be -1 with everyone alive")
	}
	if w.Kernel() == nil || w.SensorMedium() == nil || w.MeshMedium() == nil {
		t.Fatal("accessors returned nil")
	}
	_ = radio.SensorRadio() // referenced to assert package linkage stays intact
	_ = sim.Second
}

func TestObsBusEvents(t *testing.T) {
	cap := &obs.Capture{}
	w := NewWorld(Config{Seed: 1, Obs: obs.NewBus(cap)})
	a := w.AddSensor(1, geom.Point{}, 30, 0, &echoStack{})
	w.AddSensor(2, geom.Point{X: 10}, 30, 0, &echoStack{})
	// Unicast DATA is link-traced: one LinkTx per transmission.
	a.Send(&packet.Packet{Kind: packet.KindData, From: 1, To: 2,
		Origin: 1, Target: 2, Seq: 9, TTL: 4})
	w.RunUntilIdle()
	kinds := map[obs.Kind]int{}
	for _, ev := range cap.Events {
		kinds[ev.Kind]++
	}
	if kinds[obs.LinkTx] != 1 {
		t.Fatalf("obs kinds = %v, want 1 LinkTx", kinds)
	}
	tx := cap.Events[0]
	if tx.Node != 1 || tx.Peer != 2 || tx.Seq != 9 || tx.Value != 4 {
		t.Fatalf("LinkTx fields wrong: %+v", tx)
	}
	// Death event carries its cause.
	a.Fail()
	found := false
	for _, ev := range cap.Events {
		if ev.Kind == obs.NodeDeath && ev.Node == 1 && ev.Detail == "failure" {
			found = true
		}
	}
	if !found {
		t.Fatalf("NodeDeath event missing: %+v", cap.Events)
	}
	// Broadcasts and control traffic are not link-traced.
	n := len(cap.Events)
	w.Device(2).Send(bcast(2))
	w.RunUntilIdle()
	if len(cap.Events) != n {
		t.Fatalf("broadcast HELLO emitted %d obs events", len(cap.Events)-n)
	}
}

func TestMeshTrafficNotLinkTraced(t *testing.T) {
	cap := &obs.Capture{}
	w := NewWorld(Config{Seed: 1, Obs: obs.NewBus(cap)})
	gw := w.AddGateway(100, geom.Point{}, 30, 200, &echoStack{})
	bs := w.AddBaseStation(200, geom.Point{X: 100}, 200)
	got := 0
	bs.SetMeshHandler(func(*packet.Packet) { got++ })
	gw.SendMesh(bcast(100))
	w.RunUntilIdle()
	if got != 1 {
		t.Fatalf("mesh delivery = %d, want 1", got)
	}
	// The mesh backbone has no per-hop ARQ; its traffic stays off the
	// link-event stream.
	if len(cap.Events) != 0 {
		t.Fatalf("mesh broadcast emitted %d obs events, want 0", len(cap.Events))
	}
}
