package fault

import (
	"strings"
	"testing"

	"reflect"

	"wmsn/internal/attack"
	"wmsn/internal/energy"
	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// nopStack is the minimal sensor stack for bare-world injector tests.
type nopStack struct{}

func (nopStack) Start(*node.Device)               {}
func (nopStack) HandleMessage(pkt *packet.Packet) {}

func testWorld(seed int64, sensors int) (*node.World, []packet.NodeID) {
	w := node.NewWorld(node.Config{
		Seed:          seed,
		EnergyModel:   energy.DefaultFixed,
		SensorBattery: 10,
	})
	var ids []packet.NodeID
	for i := 0; i < sensors; i++ {
		id := packet.NodeID(i + 1)
		w.AddSensor(id, geom.Point{X: float64(i) * 10, Y: 0}, 35, 10, nopStack{})
		ids = append(ids, id)
	}
	return w, ids
}

func TestBuildersAppendEvents(t *testing.T) {
	p := NewPlan().
		CrashAt(sim.Second, 1).
		RecoverAt(2*sim.Second, 1).
		KillGateway(3*sim.Second, 0).
		StopRouter(4*sim.Second, 9).
		ResumeRouter(5*sim.Second, 9).
		DegradeLinks(6*sim.Second, 0.3, 1, 2).
		DegradeAll(7*sim.Second, 0.1)
	wantOps := []Op{OpCrash, OpRecover, OpKillGateway, OpStopRouter, OpResumeRouter, OpDegradeLinks, OpDegradeAll}
	if len(p.Events) != len(wantOps) {
		t.Fatalf("got %d events, want %d", len(p.Events), len(wantOps))
	}
	for i, op := range wantOps {
		if p.Events[i].Op != op {
			t.Errorf("event %d: op %v, want %v", i, p.Events[i].Op, op)
		}
	}
}

func TestRampLossSteps(t *testing.T) {
	p := NewPlan().RampLoss(10*sim.Second, 20*sim.Second, 0.4, 4)
	if len(p.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(p.Events))
	}
	last := p.Events[3]
	if last.At != 20*sim.Second || last.Rate != 0.4 {
		t.Fatalf("final step at %v rate %v, want 20s / 0.4", last.At, last.Rate)
	}
	first := p.Events[0]
	if first.At != 12500*sim.Millisecond || first.Rate != 0.1 {
		t.Fatalf("first step at %v rate %v, want 12.5s / 0.1", first.At, first.Rate)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	runFor := 60 * sim.Second
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"negative time", NewPlan().CrashAt(-sim.Second, 1), "negative time"},
		{"past horizon", NewPlan().CrashAt(90*sim.Second, 1), "never fire"},
		{"negative gateway", NewPlan().KillGateway(sim.Second, -2), "gateway index"},
		{"loss rate one", NewPlan().DegradeAll(sim.Second, 1.0), "outside [0,1)"},
		{"churn negative rate", NewPlan().WithChurn(Churn{Rate: -3}), "negative rate"},
		{"churn stop before start", NewPlan().WithChurn(Churn{Rate: 1, Start: 10 * sim.Second, Stop: 5 * sim.Second}), "before start"},
		{"negative settle", NewPlan().Settle(-sim.Second), "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(runFor)
			if err == nil {
				t.Fatal("plan validated, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := (*Plan)(nil).Validate(runFor); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	ok := NewPlan().CrashAt(sim.Second, 1).KillGateway(2*sim.Second, 0).WithChurn(Churn{Rate: 2})
	if err := ok.Validate(runFor); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestValidateJoinsAllProblems(t *testing.T) {
	p := NewPlan().CrashAt(-sim.Second, 1).DegradeAll(sim.Second, 2).Settle(-sim.Second)
	err := p.Validate(60 * sim.Second)
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{"negative time", "outside [0,1)", "settle"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
}

func TestInjectorCrashAndRecover(t *testing.T) {
	w, ids := testWorld(1, 2)
	m := &metrics.Memory{}
	plan := NewPlan().CrashAt(sim.Second, ids[0]).RecoverAt(5*sim.Second, ids[0])
	in := Attach(plan, Env{World: w, Metrics: m, Sensors: ids, Horizon: 10 * sim.Second})

	w.Run(2 * sim.Second)
	if d := w.Device(ids[0]); d.Alive() {
		t.Fatal("device alive after scheduled crash")
	}
	deaths := w.Deaths()
	if len(deaths) != 1 || deaths[0].Cause != node.CauseInjected {
		t.Fatalf("deaths %+v, want one CauseInjected", deaths)
	}
	w.Run(10 * sim.Second)
	if d := w.Device(ids[0]); !d.Alive() {
		t.Fatal("device dead after scheduled recovery")
	}
	if m.FaultsInjected != 1 {
		t.Fatalf("FaultsInjected = %d, want 1 (recovery is not a fault)", m.FaultsInjected)
	}
	rel := in.Finish()
	if rel == nil || len(rel.Windows) != 1 {
		t.Fatalf("reliability %+v, want one window", rel)
	}
	win := rel.Windows[0]
	if win.Label != "crash n1" || win.At != sim.Second {
		t.Fatalf("window %+v, want 'crash n1' at 1s", win)
	}
	if win.Before != 1 || win.During != 1 || win.After != 1 {
		t.Fatalf("idle-network ratios %+v, want all 1", win)
	}
}

func TestInjectorDegradation(t *testing.T) {
	w, ids := testWorld(2, 3)
	m := &metrics.Memory{}
	plan := NewPlan().
		DegradeLinks(sim.Second, 0.25, ids[0], ids[1]).
		DegradeAll(2*sim.Second, 0.1)
	Attach(plan, Env{World: w, Metrics: m, Sensors: ids, Horizon: 10 * sim.Second})
	w.Run(3 * sim.Second)
	if got := w.Device(ids[0]).SensorStation().RxLoss(); got != 0.25 {
		t.Fatalf("rxLoss[0] = %v, want 0.25", got)
	}
	if got := w.Device(ids[2]).SensorStation().RxLoss(); got != 0 {
		t.Fatalf("rxLoss[2] = %v, want 0 (not targeted)", got)
	}
	if got := w.SensorMedium().LossRate(); got != 0.1 {
		t.Fatalf("medium loss = %v, want 0.1", got)
	}
	if m.FaultsInjected != 2 {
		t.Fatalf("FaultsInjected = %d, want 2", m.FaultsInjected)
	}
}

func TestKillGatewayResolvesIndex(t *testing.T) {
	w, _ := testWorld(3, 1)
	gwID := packet.NodeID(1_000_000)
	w.AddGateway(gwID, geom.Point{X: 50, Y: 50}, 35, 120, nopStack{})
	m := &metrics.Memory{}
	plan := NewPlan().KillGateway(sim.Second, 0).KillGateway(2*sim.Second, 7)
	Attach(plan, Env{World: w, Metrics: m, Gateways: []packet.NodeID{gwID}, Horizon: 10 * sim.Second})
	w.Run(3 * sim.Second)
	if w.Device(gwID).Alive() {
		t.Fatal("gateway 0 alive after KillGateway(0)")
	}
	// Index 7 is out of range: ignored, not a panic.
	if m.FaultsInjected != 2 {
		t.Fatalf("FaultsInjected = %d, want 2 (both events executed)", m.FaultsInjected)
	}
}

// churnTrace runs a churn-only plan and returns the death/recovery trace
// read back off the observability bus.
func churnTrace(seed int64) []string {
	cap := &obs.Capture{}
	w := node.NewWorld(node.Config{
		Seed:          seed,
		EnergyModel:   energy.DefaultFixed,
		SensorBattery: 10,
		Obs:           obs.NewBus(cap),
	})
	var ids []packet.NodeID
	for i := 0; i < 20; i++ {
		id := packet.NodeID(i + 1)
		w.AddSensor(id, geom.Point{X: float64(i) * 10, Y: 0}, 35, 10, nopStack{})
		ids = append(ids, id)
	}
	m := &metrics.Memory{}
	plan := NewPlan().WithChurn(Churn{Rate: 600, MTTR: 5 * sim.Second})
	Attach(plan, Env{World: w, Metrics: m, Sensors: ids, Horizon: 2 * sim.Minute})
	w.Run(2 * sim.Minute)
	var trace []string
	for _, ev := range cap.Events {
		if ev.Kind == obs.NodeDeath || ev.Kind == obs.NodeRecover {
			trace = append(trace, ev.Kind.String()+"@"+ev.At.String())
		}
	}
	return trace
}

func TestChurnDeterministicPerSeed(t *testing.T) {
	a, b := churnTrace(7), churnTrace(7)
	if len(a) == 0 {
		t.Fatal("churn produced no events — rate too low for the horizon?")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if c := churnTrace(8); len(c) == len(a) && func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical churn traces")
	}
}

func TestChurnRecoveriesHeal(t *testing.T) {
	w, ids := testWorld(9, 10)
	m := &metrics.Memory{}
	plan := NewPlan().WithChurn(Churn{Rate: 1200, MTTR: sim.Second, Stop: sim.Minute})
	Attach(plan, Env{World: w, Metrics: m, Sensors: ids, Horizon: 5 * sim.Minute})
	w.Run(5 * sim.Minute)
	if m.FaultsInjected == 0 {
		t.Fatal("no churn crashes at rate 1200/h over a minute")
	}
	if alive := w.SensorsAlive(); alive != len(ids) {
		t.Fatalf("%d/%d sensors alive at the end, want all (recoveries run past Stop)", alive, len(ids))
	}
}

// TestCompromiseSwapsStack pins the tentpole mechanics: the injector swaps
// the victim's stack for the adversary, wraps the old stack, counts the
// compromise, emits AttackInjected, and never compromises the same node
// twice.
func TestCompromiseSwapsStack(t *testing.T) {
	cap := &obs.Capture{}
	w := node.NewWorld(node.Config{
		Seed:          11,
		EnergyModel:   energy.DefaultFixed,
		SensorBattery: 10,
		Obs:           obs.NewBus(cap),
	})
	var ids []packet.NodeID
	for i := 0; i < 4; i++ {
		id := packet.NodeID(i + 1)
		w.AddSensor(id, geom.Point{X: float64(i) * 10, Y: 0}, 35, 10, nopStack{})
		ids = append(ids, id)
	}
	m := &metrics.Memory{}
	plan := NewPlan().
		CompromiseAt(sim.Second, ids[0], attack.Spec{Kind: attack.KindBlackhole}).
		CompromiseAt(2*sim.Second, ids[0], attack.Spec{Kind: attack.KindReplay})
	in := Attach(plan, Env{World: w, Metrics: m, Sensors: ids, Horizon: 10 * sim.Second, Seed: 42})
	w.Run(3 * sim.Second)

	sf, ok := w.Device(ids[0]).Stack().(*attack.SelectiveForwarder)
	if !ok {
		t.Fatalf("victim stack is %T, want *attack.SelectiveForwarder", w.Device(ids[0]).Stack())
	}
	if _, ok := sf.Inner.(nopStack); !ok {
		t.Fatalf("adversary wraps %T, want the victim's original stack", sf.Inner)
	}
	if m.CompromisedNodes != 1 {
		t.Fatalf("CompromisedNodes = %d, want 1 (second compromise of same node is a no-op)", m.CompromisedNodes)
	}
	if m.FaultsInjected != 2 {
		t.Fatalf("FaultsInjected = %d, want 2 (both plan events executed)", m.FaultsInjected)
	}
	var atk []obs.Event
	for _, ev := range cap.Events {
		if ev.Kind == obs.AttackInjected {
			atk = append(atk, ev)
		}
	}
	if len(atk) != 1 || atk[0].Node != ids[0] || atk[0].Detail != "blackhole" {
		t.Fatalf("AttackInjected events %+v, want one for n1/blackhole", atk)
	}
	rel := in.Finish()
	if rel.Compromised != 1 {
		t.Fatalf("Reliability.Compromised = %d, want 1", rel.Compromised)
	}
}

// TestCompromiseFractionDeterministicVictims pins victim selection to the
// plan's ASeed alone: same seed, same victims, independent of everything
// else; a fraction rounding to zero still claims one victim.
func TestCompromiseFractionDeterministicVictims(t *testing.T) {
	victims := func(aseed int64, frac float64) []packet.NodeID {
		w, ids := testWorld(5, 10)
		m := &metrics.Memory{}
		plan := NewPlan().CompromiseFractionAt(sim.Second, frac, attack.Spec{Kind: attack.KindBlackhole}, aseed)
		Attach(plan, Env{World: w, Metrics: m, Sensors: ids, Horizon: 10 * sim.Second, Seed: 1})
		w.Run(2 * sim.Second)
		var out []packet.NodeID
		for _, id := range ids {
			if _, ok := w.Device(id).Stack().(*attack.SelectiveForwarder); ok {
				out = append(out, id)
			}
		}
		return out
	}
	a, b := victims(77, 0.3), victims(77, 0.3)
	if len(a) != 3 {
		t.Fatalf("frac 0.3 of 10 sensors compromised %d nodes, want 3", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same ASeed chose different victims: %v vs %v", a, b)
	}
	if c := victims(78, 0.3); reflect.DeepEqual(a, c) {
		t.Fatalf("different ASeeds chose identical victims %v", a)
	}
	if one := victims(77, 0.01); len(one) != 1 {
		t.Fatalf("frac 0.01 compromised %d nodes, want minimum 1", len(one))
	}
}

// TestValidateRejectsBadCompromise extends plan validation to the attack
// knobs, which Config.Validate reaches through Plan.Validate.
func TestValidateRejectsBadCompromise(t *testing.T) {
	runFor := 60 * sim.Second
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"unknown attack kind", NewPlan().CompromiseAt(sim.Second, 1, attack.Spec{Kind: 99}), "unknown kind"},
		{"drop prob high", NewPlan().CompromiseAt(sim.Second, 1,
			attack.Spec{Kind: attack.KindSelectiveForward, DropProb: 1.5}), "outside [0,1]"},
		{"negative delay", NewPlan().CompromiseAt(sim.Second, 1,
			attack.Spec{Kind: attack.KindReplay, Delay: -sim.Second}), "negative Delay"},
		{"negative copies", NewPlan().CompromiseAt(sim.Second, 1,
			attack.Spec{Kind: attack.KindReplay, MaxCopies: -1}), "negative MaxCopies"},
		{"fraction zero", NewPlan().CompromiseFractionAt(sim.Second, 0,
			attack.Spec{Kind: attack.KindBlackhole}, 1), "outside (0,1]"},
		{"fraction high", NewPlan().CompromiseFractionAt(sim.Second, 1.5,
			attack.Spec{Kind: attack.KindBlackhole}, 1), "outside (0,1]"},
		{"nil attack", &Plan{Events: []Event{{At: sim.Second, Op: OpCompromise, Node: 1}}}, "no attack spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(runFor)
			if err == nil {
				t.Fatal("plan validated, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	ok := NewPlan().CompromiseFractionAt(sim.Second, 0.2, attack.Spec{Kind: attack.KindSinkhole}, 7)
	if err := ok.Validate(runFor); err != nil {
		t.Fatalf("valid compromise plan rejected: %v", err)
	}
}
