package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// The incremental GridIndex (insert/move/remove as devices churn) and the
// build-once StaticGrid (placement/BFS pipelines) must agree: for any live
// point set and any range query, both return exactly the points within r —
// the set a brute-force distance scan returns. The property test drives a
// randomized mutation sequence and cross-checks all three at checkpoints;
// the fuzz target packs the same mutation language into a byte string.

type gridModel struct {
	idx  *GridIndex[int32]
	pos  map[int32]Point // live points, the reference model
	next int32
}

func newGridModel(cell float64) *gridModel {
	return &gridModel{idx: NewGridIndex[int32](cell), pos: make(map[int32]Point)}
}

func (m *gridModel) liveIDs() []int32 {
	ids := make([]int32, 0, len(m.pos))
	for id := range m.pos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (m *gridModel) insert(p Point) {
	id := m.next
	m.next++
	m.idx.Insert(id, p)
	m.pos[id] = p
}

func (m *gridModel) move(id int32, to Point, t *testing.T) {
	from, live := m.pos[id]
	if m.idx.Move(id, from, to) != live {
		t.Fatalf("Move(%d) reported %v, model says live=%v", id, !live, live)
	}
	if live {
		m.pos[id] = to
	}
}

func (m *gridModel) remove(id int32, t *testing.T) {
	p, live := m.pos[id]
	if m.idx.Remove(id, p) != live {
		t.Fatalf("Remove(%d) reported %v, model says live=%v", id, !live, live)
	}
	delete(m.pos, id)
}

// check compares GridIndex and a freshly rebuilt StaticGrid against brute
// force for a set of probes.
func (m *gridModel) check(t *testing.T, rng *rand.Rand, side float64) {
	t.Helper()
	ids := m.liveIDs()
	pts := make([]Point, len(ids))
	for i, id := range ids {
		pts[i] = m.pos[id]
	}
	var static *StaticGrid
	if len(pts) > 0 {
		static = NewStaticGrid(pts, m.idx.CellSize())
	}
	if m.idx.Len() != len(ids) {
		t.Fatalf("GridIndex.Len = %d, model has %d live points", m.idx.Len(), len(ids))
	}
	for probe := 0; probe < 8; probe++ {
		center := Point{X: (rng.Float64()*1.2 - 0.1) * side, Y: (rng.Float64()*1.2 - 0.1) * side}
		r := rng.Float64() * side / 2
		// Brute force over the model.
		want := map[int32]bool{}
		for _, id := range ids {
			if m.pos[id].Dist2(center) <= r*r {
				want[id] = true
			}
		}
		got := m.idx.AppendWithin(nil, center, r, -1)
		if len(got) != len(want) {
			t.Fatalf("GridIndex query (%v, r=%g): got %d points, want %d", center, r, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("GridIndex query (%v, r=%g): spurious point %d", center, r, id)
			}
		}
		if static != nil {
			sg := static.AppendWithin(nil, center, r, -1)
			if len(sg) != len(want) {
				t.Fatalf("StaticGrid query (%v, r=%g): got %d points, want %d", center, r, len(sg), len(want))
			}
			for _, i := range sg {
				if !want[ids[i]] {
					t.Fatalf("StaticGrid query (%v, r=%g): spurious index %d (id %d)", center, r, i, ids[i])
				}
			}
		}
	}
}

func (m *gridModel) step(op byte, rng *rand.Rand, side float64, t *testing.T) {
	randPoint := func() Point {
		return Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	pick := func() (int32, bool) {
		ids := m.liveIDs()
		if len(ids) == 0 {
			return 0, false
		}
		return ids[rng.Intn(len(ids))], true
	}
	switch op % 4 {
	case 0, 1: // bias toward growth so queries have substance
		m.insert(randPoint())
	case 2:
		if id, ok := pick(); ok {
			m.move(id, randPoint(), t)
		}
	case 3:
		if id, ok := pick(); ok {
			m.remove(id, t)
		}
	}
}

func TestGridIndexMatchesStaticGrid(t *testing.T) {
	const side = 100.0
	for _, cell := range []float64{3, 25, 250} { // finer, comparable and coarser than the field
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			m := newGridModel(cell)
			for i := 0; i < 400; i++ {
				m.step(byte(rng.Intn(4)), rng, side, t)
				if i%50 == 49 {
					m.check(t, rng, side)
				}
			}
			// Drain everything: Remove must hold up all the way to empty.
			for _, id := range m.liveIDs() {
				m.remove(id, t)
			}
			m.check(t, rng, side)
		}
	}
}

// FuzzGridIndexMatchesStaticGrid drives the same model from fuzz-chosen
// operation bytes; positions and probes come from a PRNG seeded by the
// input so every byte string is a reproducible scenario.
func FuzzGridIndexMatchesStaticGrid(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 0, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 2, 2, 2, 2, 3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		const side = 50.0
		var seed int64
		for _, b := range ops {
			seed = seed*131 + int64(b)
		}
		rng := rand.New(rand.NewSource(seed))
		m := newGridModel(10)
		for _, op := range ops {
			m.step(op, rng, side, t)
		}
		m.check(t, rng, side)
	})
}
