package radio

import (
	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Sharded operation: when the owning world is split into spatial regions
// (internal/node EnableSharding), each medium runs one laneCtx per region.
// A lane owns a kernel, an RNG stream, a Stats block and delivery free
// lists, so concurrent region workers never share mutable radio state. The
// spatial grid and the stations map are shared read-only during a parallel
// window — attach, detach, and move are confined to barriers and global
// phases — and every delivery crossing a region border is routed through a
// per-(source,destination) outbox drained at the next barrier, where the
// receiver-side checks (listening, loss draws) run against the destination
// lane's state. The conservative window length (one propagation delay plus
// the minimum one-microsecond airtime) guarantees a cross-border delivery
// is always adopted before the destination lane's clock reaches it.
type laneCtx struct {
	k         *sim.Kernel
	stats     Stats
	freeDel   []*delivery
	freeBatch []*deliveryBatch
	scratch   []*Station
	deliver   func(any) // bound once; runs deliverLane on this lane
	deliverB  func(any) // bound once; runs deliverLaneBatch on this lane
	// outbox[dst] collects deliveries produced by this lane for stations
	// owned by lane dst during the current window.
	outbox [][]remoteDelivery
}

// remoteDelivery is a reception crossing a region border, staged until the
// barrier. The packet is always a private clone: it crosses goroutines.
type remoteDelivery struct {
	to         *Station
	pkt        *packet.Packet
	start, end sim.Time
}

func (lc *laneCtx) getDelivery() *delivery {
	if n := len(lc.freeDel); n > 0 {
		d := lc.freeDel[n-1]
		lc.freeDel[n-1] = nil
		lc.freeDel = lc.freeDel[:n-1]
		return d
	}
	return &delivery{}
}

func (lc *laneCtx) getBatch() *deliveryBatch {
	if n := len(lc.freeBatch); n > 0 {
		b := lc.freeBatch[n-1]
		lc.freeBatch[n-1] = nil
		lc.freeBatch = lc.freeBatch[:n-1]
		return b
	}
	return &deliveryBatch{}
}

func (lc *laneCtx) putDelivery(d *delivery) {
	d.to = nil
	d.pkt = nil
	d.corrupted = false
	lc.freeDel = append(lc.freeDel, d)
}

// EnableSharding switches the medium to per-lane operation. kernels[i]
// drives lane i; laneOf assigns every subsequently attached station to its
// owning lane (existing stations are reassigned in place). The MAC-level
// channel models that require a global view of the medium — CSMA carrier
// sense and the collision model — are incompatible with regional execution,
// as is tracing; both panic here rather than silently racing.
func (m *Medium) EnableSharding(kernels []*sim.Kernel, laneOf func(packet.NodeID, geom.Point) int32) {
	if m.lanes != nil {
		panic("radio: sharding enabled twice")
	}
	if m.cfg.CSMA || m.cfg.Collisions {
		panic("radio: CSMA and collision models require a global channel view; disable them for sharded runs")
	}
	if m.cfg.Obs.Active() {
		panic("radio: tracing is incompatible with sharded runs")
	}
	m.laneOf = laneOf
	m.lanes = make([]*laneCtx, len(kernels))
	for i, k := range kernels {
		lc := &laneCtx{k: k, outbox: make([][]remoteDelivery, len(kernels))}
		lc.deliver = func(arg any) { m.deliverLane(lc, arg.(*delivery)) }
		lc.deliverB = func(arg any) { m.deliverLaneBatch(lc, arg.(*deliveryBatch)) }
		m.lanes[i] = lc
	}
	for _, st := range m.stations {
		st.lane = laneOf(st.id, st.pos)
	}
}

// Sharded reports whether the medium runs in per-lane mode.
func (m *Medium) Sharded() bool { return m.lanes != nil }

// Deafen stops a station from receiving — handler cleared, not removed from
// the index. A region worker killing its own device calls this immediately
// (the fields are owned by that lane) and stages the structural Detach for
// the barrier, where grid and map mutation is safe.
func (m *Medium) Deafen(id packet.NodeID) {
	if st := m.stations[id]; st != nil {
		st.handler = nil
	}
}

// transmitSharded is the per-lane transmit path. It runs on the sender
// lane's worker during a parallel window, or on the coordinating goroutine
// (with every worker parked) during a global phase; either way only the
// sender lane's context is mutated, plus its outboxes, which no one else
// reads until the barrier.
func (m *Medium) transmitSharded(from *Station, pkt *packet.Packet) {
	lc := m.lanes[from.lane]
	lc.stats.Transmissions++
	lc.stats.BytesOnAir += uint64(pkt.Size())
	m.report(metrics.RadioTransmissions, 1)
	m.report(metrics.RadioBytesOnAir, uint64(pkt.Size()))
	airtime := m.Airtime(pkt.Size())
	start := lc.k.Now()
	end := start + airtime + m.cfg.PropDelay
	lc.scratch = m.inRangeInto(from, lc.scratch[:0])
	var overhear *packet.Packet
	// Home-lane receptions of one transmission all complete at the same
	// instant; they are scheduled as a single batch event (ID-sorted entry
	// order matches the per-event firing order, exactly as in the sequential
	// engine's deliverBatch), so a broadcast heard by d home neighbors costs
	// one heap operation instead of d.
	var batch *deliveryBatch
	for _, st := range lc.scratch {
		if st.lane != from.lane {
			// Cross-border: stage unconditionally; the listening and loss
			// checks belong to the destination lane and run at adoption.
			lc.outbox[st.lane] = append(lc.outbox[st.lane],
				remoteDelivery{to: st, pkt: pkt.Clone(), start: start, end: end})
			continue
		}
		if !st.listening || st.handler == nil {
			continue
		}
		if m.cfg.LossRate > 0 && lc.k.Rand().Float64() < m.cfg.LossRate {
			lc.stats.Lost++
			m.report(metrics.RadioLost, 1)
			continue
		}
		if st.rxLoss > 0 && lc.k.Rand().Float64() < st.rxLoss {
			lc.stats.Lost++
			m.report(metrics.RadioLost, 1)
			continue
		}
		d := lc.getDelivery()
		if pkt.To == packet.Broadcast || pkt.To == st.id || st.promiscuous {
			d.pkt = pkt.Clone()
		} else {
			if overhear == nil {
				overhear = pkt.Clone()
			}
			d.pkt = overhear
		}
		d.to, d.start, d.end = st, start, end
		if batch == nil {
			batch = lc.getBatch()
		}
		batch.entries = append(batch.entries, d)
	}
	if batch != nil {
		lc.k.ScheduleArgAt(end, lc.deliverB, batch)
	}
}

// deliverLaneBatch completes every home-lane reception of one transmission.
// Mirrors the sequential deliverBatch: if the lane kernel is stopped
// mid-batch (a reception's energy charge killed a run-stopping node), the
// remaining entries are re-queued as individual events so they are neither
// lost on resume nor delivered past the stop.
func (m *Medium) deliverLaneBatch(lc *laneCtx, b *deliveryBatch) {
	for i, d := range b.entries {
		if lc.k.Stopped() {
			for j := i; j < len(b.entries); j++ {
				lc.k.ScheduleArgAt(b.entries[j].end, lc.deliver, b.entries[j])
				b.entries[j] = nil
			}
			break
		}
		b.entries[i] = nil
		m.deliverLane(lc, d)
	}
	b.entries = b.entries[:0]
	lc.freeBatch = append(lc.freeBatch, b)
}

// deliverLane completes a reception on the destination lane.
func (m *Medium) deliverLane(lc *laneCtx, d *delivery) {
	st, pkt := d.to, d.pkt
	lc.putDelivery(d)
	if st.handler == nil || !st.listening {
		return
	}
	lc.stats.Deliveries++
	m.report(metrics.RadioDeliveries, 1)
	st.handler(pkt)
}

// DrainOutboxes adopts every staged cross-border delivery into its
// destination lane. Called at barriers and after global phases, with all
// workers parked. Adoption order is deterministic: destination lanes in
// index order, source lanes in index order, entries in production order —
// and each lane's production order is itself deterministic. The receiver
// checks mirror the home-lane transmit path, evaluated against the
// destination's state (loss draws come from the destination lane's RNG, so
// each lane's random stream is consumed only by its own receptions).
func (m *Medium) DrainOutboxes() {
	for dst, dl := range m.lanes {
		for _, src := range m.lanes {
			box := src.outbox[dst]
			if len(box) == 0 {
				continue
			}
			for i := range box {
				m.adopt(dl, &box[i])
				box[i] = remoteDelivery{}
			}
			src.outbox[dst] = box[:0]
		}
	}
}

func (m *Medium) adopt(dl *laneCtx, r *remoteDelivery) {
	st := r.to
	if st.handler == nil || !st.listening {
		return
	}
	if m.cfg.LossRate > 0 && dl.k.Rand().Float64() < m.cfg.LossRate {
		dl.stats.Lost++
		m.report(metrics.RadioLost, 1)
		return
	}
	if st.rxLoss > 0 && dl.k.Rand().Float64() < st.rxLoss {
		dl.stats.Lost++
		m.report(metrics.RadioLost, 1)
		return
	}
	d := dl.getDelivery()
	d.to, d.pkt, d.start, d.end = st, r.pkt, r.start, r.end
	dl.k.ScheduleArgAt(d.end, dl.deliver, d)
}

// mergeLaneStats folds the per-lane counters into a Stats total, in lane
// order (deterministic for a fixed seed and shard count).
func (m *Medium) mergeLaneStats(s Stats) Stats {
	for _, lc := range m.lanes {
		s.Transmissions += lc.stats.Transmissions
		s.Deliveries += lc.stats.Deliveries
		s.Lost += lc.stats.Lost
		s.Collided += lc.stats.Collided
		s.BytesOnAir += lc.stats.BytesOnAir
		s.Backoffs += lc.stats.Backoffs
		s.CSMADropped += lc.stats.CSMADropped
	}
	return s
}
