package baseline

import (
	"testing"

	"wmsn/internal/core"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// rumorWorld deploys n rumor-routing sensors uniformly on a side x side
// field.
func rumorWorld(t testing.TB, seed int64, n int, side float64) (*node.World, *core.Metrics, map[packet.NodeID]*RumorNode) {
	t.Helper()
	w := node.NewWorld(node.Config{Seed: seed})
	m := core.NewMetrics()
	stacks := map[packet.NodeID]*RumorNode{}
	pts := (geom.Uniform{}).Deploy(n, geom.Square(side), w.Kernel().Rand())
	for i, p := range pts {
		id := packet.NodeID(i + 1)
		st := NewRumorNode(m)
		stacks[id] = st
		w.AddSensor(id, p, 40, 0, st)
	}
	return w, m, stacks
}

func TestRumorAgentsLayGradient(t *testing.T) {
	w, _, stacks := rumorWorld(t, 1, 80, 200)
	stacks[1].WitnessEvent(7)
	w.Run(10 * sim.Second)
	// Agents walked AgentTTL hops each; a good number of nodes should now
	// hold gradient state for the event.
	knowing := 0
	for _, st := range stacks {
		if st.Knows(7) {
			knowing++
		}
	}
	if knowing < 10 {
		t.Fatalf("only %d nodes learned the rumor path", knowing)
	}
	// Gradient validity: following next pointers from any knowing node
	// reaches the witness without cycling.
	for id, st := range stacks {
		if !st.Knows(7) || id == 1 {
			continue
		}
		cur := id
		for hops := 0; hops < 200; hops++ {
			e := stacks[cur].events[7]
			if e.dist == 0 {
				break
			}
			nxt := e.next
			if _, ok := stacks[nxt]; !ok {
				t.Fatalf("gradient from %v points at unknown node %v", id, nxt)
			}
			cur = nxt
			if hops == 199 {
				t.Fatalf("gradient from %v never terminates", id)
			}
		}
	}
}

func TestRumorQueriesFindEvent(t *testing.T) {
	w, m, stacks := rumorWorld(t, 2, 100, 220)
	stacks[1].WitnessEvent(42)
	w.Run(10 * sim.Second) // let agents walk
	// Issue queries from many distant nodes; rumor routing should answer a
	// solid majority (two random walks in a plane usually intersect).
	queries := 0
	for id, st := range stacks {
		if id%4 == 0 {
			st.Query(42)
			queries++
		}
	}
	w.Run(60 * sim.Second)
	if m.Generated != uint64(queries) {
		t.Fatalf("generated %d, want %d", m.Generated, queries)
	}
	if ratio := m.DeliveryRatio(); ratio < 0.6 {
		t.Fatalf("query success %v (%d of %d); rumor intersection failing",
			ratio, m.Delivered, m.Generated)
	}
	// Overhead: total walk transmissions must be far below a per-query
	// network flood (queries * n).
	var walkTx uint64
	for _, st := range stacks {
		walkTx += st.AgentHops + st.QueryHops
	}
	if walkTx > uint64(queries)*100/2 {
		t.Fatalf("rumor routing cost %d transmissions; flooding-level overhead", walkTx)
	}
}

func TestRumorSelfQueryAnswersImmediately(t *testing.T) {
	w, m, stacks := rumorWorld(t, 3, 10, 100)
	stacks[5].WitnessEvent(1)
	stacks[5].Query(1)
	w.Run(sim.Second)
	if m.Delivered != 1 || m.MeanHops() != 0 {
		t.Fatalf("self query: delivered=%d hops=%v", m.Delivered, m.MeanHops())
	}
}

func TestRumorUnknownEventQueryDies(t *testing.T) {
	w, m, stacks := rumorWorld(t, 4, 40, 200)
	// No witness anywhere: queries wander and expire.
	stacks[1].Query(99)
	w.Run(30 * sim.Second)
	if m.Delivered != 0 {
		t.Fatal("query answered for an event nobody witnessed")
	}
	if m.Generated != 1 {
		t.Fatalf("generated = %d", m.Generated)
	}
}

func TestRumorIsolatedWitness(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 5})
	m := core.NewMetrics()
	st := NewRumorNode(m)
	w.AddSensor(1, geom.Point{}, 40, 0, st)
	st.WitnessEvent(3) // no neighbors: agents go nowhere, no panic
	w.Run(sim.Second)
	if !st.Knows(3) {
		t.Fatal("witness lost its own event state")
	}
}
