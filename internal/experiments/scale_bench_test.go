package experiments

import "testing"

// The scale benchmarks snapshot the wall-clock and allocation cost of the
// 10k and 100k E1-style sweeps for BENCH_scale.json (make bench-scale).
// They are meant to run with -benchtime=1x: one iteration is one full
// sweep, so ns/op is the sweep's wall-clock and allocs/op is exactly
// reproducible for the bench-guard contract.

func benchScaleSweep(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScaleSweep(Opts{Workers: 4}, n, []int{1, 4, 16}, 901)
	}
}

func BenchmarkScaleSweep10k(b *testing.B)  { benchScaleSweep(b, 10_000) }
func BenchmarkScaleSweep100k(b *testing.B) { benchScaleSweep(b, 100_000) }

func benchScaleTraffic(b *testing.B, n, shards int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScaleTraffic(Opts{Shards: shards}, n, 901)
	}
}

func BenchmarkScaleTraffic10k(b *testing.B)     { benchScaleTraffic(b, 10_000, 4) }
func BenchmarkScaleTraffic100k(b *testing.B)    { benchScaleTraffic(b, 100_000, 4) }
func BenchmarkScaleTraffic100kSeq(b *testing.B) { benchScaleTraffic(b, 100_000, 1) }
