package sensing

import (
	"math"
	"testing"
	"testing/quick"

	"wmsn/internal/geom"
	"wmsn/internal/sim"
)

func TestAmbientField(t *testing.T) {
	f := Ambient(21.5)
	if f.ValueAt(geom.Point{X: 10}, 5*sim.Second) != 21.5 {
		t.Fatal("ambient field not constant")
	}
}

func TestEventEnvelope(t *testing.T) {
	e := Event{Start: 10 * sim.Second, Ramp: 10 * sim.Second,
		Hold: 20 * sim.Second, Decay: 10 * sim.Second}
	cases := map[sim.Time]float64{
		0:               0,   // before start
		10 * sim.Second: 0,   // at start
		15 * sim.Second: 0.5, // mid-ramp
		20 * sim.Second: 1,   // ramp done
		30 * sim.Second: 1,   // holding
		45 * sim.Second: 0.5, // mid-decay
		60 * sim.Second: 0,   // over
	}
	for at, want := range cases {
		if got := e.intensity(at); math.Abs(got-want) > 1e-9 {
			t.Errorf("intensity(%v) = %v, want %v", at, got, want)
		}
	}
}

func TestEventFieldSpatialFalloff(t *testing.T) {
	f := &EventField{Base: 20, Events: []Event{{
		Center: geom.Point{X: 50, Y: 50}, Sigma: 10, Peak: 80,
		Start: 0, Ramp: sim.Second, Hold: sim.Hour, Decay: sim.Second,
	}}}
	at := 10 * sim.Second
	center := f.ValueAt(geom.Point{X: 50, Y: 50}, at)
	near := f.ValueAt(geom.Point{X: 60, Y: 50}, at)
	far := f.ValueAt(geom.Point{X: 150, Y: 50}, at)
	if math.Abs(center-100) > 1e-9 {
		t.Fatalf("center = %v, want 100", center)
	}
	if !(center > near && near > far) {
		t.Fatalf("no spatial falloff: %v %v %v", center, near, far)
	}
	if math.Abs(far-20) > 0.1 {
		t.Fatalf("far value %v, want ~ambient 20", far)
	}
}

func TestTEENHardThreshold(t *testing.T) {
	f := NewTEEN(50, 2)
	if f.Sample(30) {
		t.Fatal("reported below hard threshold")
	}
	if !f.Sample(55) {
		t.Fatal("first crossing not reported")
	}
	// Unchanged-ish value suppressed by the soft threshold.
	if f.Sample(55.5) || f.Sample(54) {
		t.Fatal("sub-soft change reported")
	}
	// A soft-sized move reports again.
	if !f.Sample(58) {
		t.Fatal("soft-threshold move not reported")
	}
	// Dropping below hard silences the node.
	if f.Sample(40) {
		t.Fatal("below-hard value reported")
	}
	// Recrossing reports (58 -> 61 also exceeds soft).
	if !f.Sample(61) {
		t.Fatal("recrossing not reported")
	}
	if f.Samples != 7 || f.Reports != 3 {
		t.Fatalf("samples/reports = %d/%d", f.Samples, f.Reports)
	}
	if sr := f.SuppressionRatio(); math.Abs(sr-(1-3.0/7)) > 1e-9 {
		t.Fatalf("suppression = %v", sr)
	}
	f.Reset()
	if !f.Sample(55) {
		t.Fatal("reset did not clear report state")
	}
}

func TestTEENZeroValueNeverReports(t *testing.T) {
	var f TEEN // Hard == 0, Soft == 0: first sample at >= 0 reports...
	// The zero value has Hard 0, so any value reports once; document the
	// constructor instead.
	nf := NewTEEN(100, 5)
	for v := 0.0; v < 100; v += 10 {
		if nf.Sample(v) {
			t.Fatal("reported below threshold")
		}
	}
	_ = f
	if nf.SuppressionRatio() != 1 {
		t.Fatalf("suppression = %v, want 1", nf.SuppressionRatio())
	}
	if (&TEEN{}).SuppressionRatio() != 0 {
		t.Fatal("no-sample suppression should be 0")
	}
}

// Property: TEEN never reports below the hard threshold, and consecutive
// reported values always differ by at least Soft (after the first).
func TestQuickTEENInvariants(t *testing.T) {
	f := func(hardRaw, softRaw uint8, values []float32) bool {
		hard := float64(hardRaw)
		soft := float64(softRaw%16) + 0.1
		filt := NewTEEN(hard, soft)
		var reported []float64
		for _, raw := range values {
			v := float64(raw)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if filt.Sample(v) {
				if v < hard {
					return false
				}
				reported = append(reported, v)
			}
		}
		for i := 1; i < len(reported); i++ {
			if math.Abs(reported[i]-reported[i-1]) < soft {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
