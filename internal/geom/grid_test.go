package geom

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randPoints(rng *rand.Rand, n int, side float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pts
}

// bruteWithin is the reference O(n) scan both indexes must match exactly.
func bruteWithin(pts []Point, center Point, r float64, except int) []int {
	var out []int
	for i, p := range pts {
		if i == except {
			continue
		}
		if p.Dist(center) <= r {
			out = append(out, i)
		}
	}
	return out
}

func TestGridIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(120)
		side := 10 + rng.Float64()*500
		cell := 1 + rng.Float64()*100
		pts := randPoints(rng, n, side)
		g := NewGridIndex[int](cell)
		for i, p := range pts {
			g.Insert(i, p)
		}
		// Churn: move a third of the points, remove and re-insert a few.
		for m := 0; m < n/3; m++ {
			i := rng.Intn(n)
			np := Point{X: rng.Float64() * side, Y: rng.Float64() * side}
			if !g.Move(i, pts[i], np) {
				t.Fatalf("trial %d: Move(%d) failed", trial, i)
			}
			pts[i] = np
		}
		for m := 0; m < n/10; m++ {
			i := rng.Intn(n)
			if !g.Remove(i, pts[i]) {
				t.Fatalf("trial %d: Remove(%d) failed", trial, i)
			}
			g.Insert(i, pts[i])
		}
		if g.Len() != n {
			t.Fatalf("trial %d: Len = %d, want %d", trial, g.Len(), n)
		}
		for q := 0; q < 10; q++ {
			center := Point{X: rng.Float64()*side*1.2 - side*0.1, Y: rng.Float64()*side*1.2 - side*0.1}
			r := rng.Float64() * side / 2
			except := rng.Intn(n)
			got := g.AppendWithin(nil, center, r, except)
			sort.Ints(got)
			want := bruteWithin(pts, center, r, except)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d query %d: grid %v != brute %v (r=%v center=%v)", trial, q, got, want, r, center)
			}
		}
	}
}

func TestGridIndexRemoveUnknown(t *testing.T) {
	g := NewGridIndex[int](10)
	g.Insert(1, Point{X: 5, Y: 5})
	if g.Remove(2, Point{X: 5, Y: 5}) {
		t.Fatal("removed a value never inserted")
	}
	if g.Move(2, Point{X: 5, Y: 5}, Point{X: 6, Y: 6}) {
		t.Fatal("moved a value never inserted")
	}
	if !g.Remove(1, Point{X: 5, Y: 5}) || g.Len() != 0 {
		t.Fatal("failed to remove the only value")
	}
}

func TestStaticGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(150) // zero-size fields must work too
		side := 10 + rng.Float64()*500
		cell := 0.5 + rng.Float64()*80
		pts := randPoints(rng, n, side)
		g := NewStaticGrid(pts, cell)
		for q := 0; q < 10; q++ {
			center := Point{X: rng.Float64()*side*1.4 - side*0.2, Y: rng.Float64()*side*1.4 - side*0.2}
			r := rng.Float64() * side / 2
			except := int32(-1)
			if n > 0 && rng.Intn(2) == 0 {
				except = int32(rng.Intn(n))
			}
			raw := g.AppendWithin(nil, center, r, except)
			got := make([]int, len(raw))
			for i, v := range raw {
				got[i] = int(v)
			}
			sort.Ints(got)
			want := bruteWithin(pts, center, r, int(except))
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d query %d: grid %v != brute %v", trial, q, got, want)
			}
			// Distances must agree with the membership set as a multiset.
			d2 := g.AppendDist2Within(nil, center, r, except)
			if len(d2) != len(want) {
				t.Fatalf("trial %d query %d: %d distances for %d members", trial, q, len(d2), len(want))
			}
			sort.Float64s(d2)
			wd := make([]float64, 0, len(want))
			for _, i := range want {
				wd = append(wd, pts[i].Dist2(center))
			}
			sort.Float64s(wd)
			for i := range d2 {
				if d2[i] != wd[i] {
					t.Fatalf("trial %d query %d: distance %v != %v", trial, q, d2[i], wd[i])
				}
			}
		}
	}
}

// Points exactly on cell boundaries and queries whose windows land on
// boundaries are the rounding-sensitive cases; exercise them explicitly.
func TestStaticGridBoundaryExact(t *testing.T) {
	var pts []Point
	for x := 0; x <= 100; x += 10 {
		for y := 0; y <= 100; y += 10 {
			pts = append(pts, Point{X: float64(x), Y: float64(y)})
		}
	}
	g := NewStaticGrid(pts, 10)
	for _, r := range []float64{0, 10, 20, 30.000000000000004, 50} {
		for _, c := range []Point{{X: 50, Y: 50}, {X: 0, Y: 0}, {X: 100, Y: 100}, {X: 45, Y: 55}} {
			raw := g.AppendWithin(nil, c, r, -1)
			got := make([]int, len(raw))
			for i, v := range raw {
				got[i] = int(v)
			}
			sort.Ints(got)
			want := bruteWithin(pts, c, r, -1)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("r=%v center=%v: grid %d members != brute %d", r, c, len(got), len(want))
			}
		}
	}
}

func TestStaticGridAllocsConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	measure := func(n int) float64 {
		pts := randPoints(rng, n, 300)
		return testing.AllocsPerRun(10, func() { NewStaticGrid(pts, 40) })
	}
	small, large := measure(50), measure(2000)
	if large > small {
		t.Fatalf("StaticGrid construction allocations grow with n: %0.f -> %0.f", small, large)
	}
}

func BenchmarkGridIndexQuery(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			side := 20 * math.Sqrt(float64(n)) // density held constant
			pts := randPoints(rng, n, side)
			g := NewGridIndex[int](40)
			for i, p := range pts {
				g.Insert(i, p)
			}
			buf := make([]int, 0, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = g.AppendWithin(buf[:0], pts[i%n], 40, i%n)
			}
		})
	}
}
