// Package placement implements the paper's §4.1 models: the gateway number
// model (how many WMGs a sensor field needs — reproducing the Kmax
// saturation result of ref. [34]) and the gateway deployment model (where to
// put them — k-means, greedy max-coverage, grid and random placements, with
// hop-count evaluation against the connectivity graph).
package placement

import (
	"math"
	"math/rand"
	"sort"

	"wmsn/internal/geom"
	"wmsn/internal/network"
	"wmsn/internal/packet"
)

// Strategy places k gateways for a given sensor deployment.
type Strategy interface {
	Place(sensors []geom.Point, k int, region geom.Rect, rng *rand.Rand) []geom.Point
}

// Random scatters gateways uniformly — the do-nothing baseline.
type Random struct{}

// Place implements Strategy.
func (Random) Place(_ []geom.Point, k int, region geom.Rect, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = region.RandomPoint(rng)
	}
	return pts
}

// Grid places gateways on a uniform lattice — simple and surprisingly
// strong for uniform sensor fields.
type Grid struct{}

// Place implements Strategy.
func (Grid) Place(_ []geom.Point, k int, region geom.Rect, _ *rand.Rand) []geom.Point {
	return geom.PlaceGrid(k, region)
}

// KMeans clusters the sensors and puts one gateway at each centroid,
// minimizing mean sensor-to-gateway distance — the heuristic stand-in for
// the ILP of ref. [34] (see DESIGN.md substitutions).
type KMeans struct {
	// Iters bounds Lloyd iterations; 0 selects 32.
	Iters int
}

// Place implements Strategy.
func (km KMeans) Place(sensors []geom.Point, k int, region geom.Rect, rng *rand.Rand) []geom.Point {
	if k <= 0 || len(sensors) == 0 {
		return nil
	}
	iters := km.Iters
	if iters <= 0 {
		iters = 32
	}
	// Initialize with k distinct sensors (k-means++ style: farthest-first).
	centers := []geom.Point{sensors[rng.Intn(len(sensors))]}
	for len(centers) < k {
		best, bestD := sensors[0], -1.0
		for _, s := range sensors {
			d := math.Inf(1)
			for _, c := range centers {
				d = math.Min(d, s.Dist2(c))
			}
			if d > bestD {
				best, bestD = s, d
			}
		}
		centers = append(centers, best)
	}
	assign := make([]int, len(sensors))
	for it := 0; it < iters; it++ {
		changed := false
		for i, s := range sensors {
			bi, bd := 0, math.Inf(1)
			for j, c := range centers {
				if d := s.Dist2(c); d < bd {
					bi, bd = j, d
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		sums := make([]geom.Point, k)
		counts := make([]int, k)
		for i, s := range sensors {
			sums[assign[i]].X += s.X
			sums[assign[i]].Y += s.Y
			counts[assign[i]]++
		}
		for j := range centers {
			if counts[j] > 0 {
				centers[j] = region.Clamp(sums[j].Scale(1 / float64(counts[j])))
			}
		}
		if !changed {
			break
		}
	}
	return centers
}

// GreedyCoverage picks k candidate sites maximizing the number of sensors
// within coverRadius of a chosen site (classic greedy set cover; each round
// picks the site covering the most still-uncovered sensors).
type GreedyCoverage struct {
	// Candidates are the feasible sites; empty selects a 6x6 grid over the
	// region.
	Candidates []geom.Point
	// CoverRadius is the service radius per site.
	CoverRadius float64
}

// Place implements Strategy.
func (g GreedyCoverage) Place(sensors []geom.Point, k int, region geom.Rect, _ *rand.Rand) []geom.Point {
	cands := g.Candidates
	if len(cands) == 0 {
		cands = geom.PlaceGrid(36, region)
	}
	r := g.CoverRadius
	if r <= 0 {
		r = math.Min(region.Width(), region.Height()) / 4
	}
	covered := make([]bool, len(sensors))
	used := make([]bool, len(cands))
	var out []geom.Point
	for len(out) < k {
		bestIdx, bestGain := -1, -1
		for ci, c := range cands {
			if used[ci] {
				continue
			}
			gain := 0
			for si, s := range sensors {
				if !covered[si] && s.Dist(c) <= r {
					gain++
				}
			}
			if gain > bestGain {
				bestIdx, bestGain = ci, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		out = append(out, cands[bestIdx])
		for si, s := range sensors {
			if s.Dist(cands[bestIdx]) <= r {
				covered[si] = true
			}
		}
	}
	return out
}

// Eval summarizes how well a placement serves a sensor field at the given
// radio range: the paper's Fig. 2 metrics.
type Eval struct {
	AvgHops     float64 // mean hops to the nearest gateway (reachable sensors)
	MaxHops     int     // worst case among reachable sensors
	Unreachable int     // sensors with no path to any gateway
	TotalHops   int     // Σ hops — proportional to per-epoch forwarding energy
}

// Evaluate builds the unit-disk graph over sensors+gateways and measures
// hop statistics to the nearest gateway.
func Evaluate(sensors, gateways []geom.Point, rangeM float64) Eval {
	pos := make(map[packet.NodeID]geom.Point, len(sensors)+len(gateways))
	ranges := make(map[packet.NodeID]float64, len(sensors)+len(gateways))
	var sensorIDs, gwIDs []packet.NodeID
	for i, p := range sensors {
		id := packet.NodeID(i + 1)
		pos[id], ranges[id] = p, rangeM
		sensorIDs = append(sensorIDs, id)
	}
	for i, p := range gateways {
		id := packet.NodeID(100000 + i)
		pos[id], ranges[id] = p, rangeM
		gwIDs = append(gwIDs, id)
	}
	g := network.Build(pos, ranges)
	// One multi-source BFS from the gateways replaces a full BFS per sensor
	// (identical hop values: edges are symmetric), which is what makes
	// 10k-node placement sweeps tractable.
	dist := g.MultiSourceHops(gwIDs)
	var ev Eval
	reachable := 0
	for _, s := range sensorIDs {
		h, ok := dist[s]
		if !ok {
			ev.Unreachable++
			continue
		}
		reachable++
		ev.TotalHops += h
		if h > ev.MaxHops {
			ev.MaxHops = h
		}
	}
	if reachable > 0 {
		ev.AvgHops = float64(ev.TotalHops) / float64(reachable)
	}
	return ev
}

// Kmax finds the saturation point of a lifetime-vs-k curve: the smallest k
// (1-based index into values) beyond which adding another gateway improves
// lifetime by less than epsilon (relative). This reproduces the shape of
// ref. [34]'s result that increasing base stations beyond Kmax stops
// helping.
func Kmax(values []float64, epsilon float64) int {
	if len(values) == 0 {
		return 0
	}
	for k := 0; k < len(values)-1; k++ {
		cur := values[k]
		if cur <= 0 {
			continue
		}
		if (values[k+1]-cur)/cur < epsilon {
			return k + 1
		}
	}
	return len(values)
}

// SelectPlaces reduces a candidate place set to the k most load-balanced for
// MLR scheduling: places are ranked by their average distance to the sensor
// centroid-quantile bands so that scheduled rotations visit dispersed spots.
// It returns indices into candidates, sorted ascending.
func SelectPlaces(candidates []geom.Point, sensors []geom.Point, k int) []int {
	if k >= len(candidates) {
		out := make([]int, len(candidates))
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Greedy farthest-point dispersion seeded at the sensor centroid's
	// nearest candidate.
	ctr := geom.Centroid(sensors)
	first, firstD := 0, math.Inf(1)
	for i, c := range candidates {
		if d := c.Dist2(ctr); d < firstD {
			first, firstD = i, d
		}
	}
	chosen := []int{first}
	inSet := map[int]bool{first: true}
	for len(chosen) < k {
		best, bestD := -1, -1.0
		for i, c := range candidates {
			if inSet[i] {
				continue
			}
			d := math.Inf(1)
			for _, j := range chosen {
				d = math.Min(d, c.Dist2(candidates[j]))
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		chosen = append(chosen, best)
		inSet[best] = true
	}
	sort.Ints(chosen)
	return chosen
}

// SlidingSchedule is the naive alternative to RotationSchedule: each round
// every gateway shifts to the next place, so place tenancy changes
// constantly. It maximizes churn — useful as the ablation baseline showing
// why tenant-stable rotation matters (SecMLR must re-verify a place whenever
// its tenant changes).
func SlidingSchedule(numPlaces, m, rounds int) [][]int {
	if numPlaces < m || m <= 0 || rounds <= 0 {
		return nil
	}
	out := make([][]int, rounds)
	for r := range out {
		row := make([]int, m)
		for i := range row {
			row[i] = (r + i*numPlaces/m) % numPlaces
		}
		out[r] = row
	}
	return out
}

// RotationSchedule builds an MLR schedule of the given length over the
// feasible places for m gateways. The places are partitioned among the
// gateways and each gateway cycles within its own partition: every feasible
// place is visited (so forwarding hotspots rotate, the paper's
// energy-balancing rationale for mobility) while each place keeps a stable
// tenant across revisits — which is what lets the incremental routing
// tables, and SecMLR's per-gateway verified routes, stay valid round after
// round.
func RotationSchedule(numPlaces, m, rounds int) [][]int {
	if numPlaces < m || m <= 0 || rounds <= 0 {
		return nil
	}
	// Partition bounds: gateway i owns [start[i], start[i+1]).
	start := make([]int, m+1)
	for i := 1; i <= m; i++ {
		start[i] = start[i-1] + numPlaces/m
		if i <= numPlaces%m {
			start[i]++
		}
	}
	out := make([][]int, rounds)
	for r := range out {
		row := make([]int, m)
		for i := range row {
			span := start[i+1] - start[i]
			row[i] = start[i] + r%span
		}
		out[r] = row
	}
	return out
}
