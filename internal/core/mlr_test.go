package core

import (
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// mlrWorld builds a sensor field with an MLR deployment over feasible
// places. Gateways get IDs 1000+i.
func mlrWorld(t testing.TB, seed int64, sensors []geom.Point, places []geom.Point,
	schedule [][]int, roundLen sim.Duration, rangeM float64) (*node.World, *Metrics, map[packet.NodeID]*MLRSensor, *Rounds) {
	t.Helper()
	w := node.NewWorld(node.Config{Seed: seed})
	m := NewMetrics()
	p := DefaultParams()
	stacks := make(map[packet.NodeID]*MLRSensor)
	for i, pos := range sensors {
		id := packet.NodeID(i + 1)
		st := NewMLRSensor(p, m)
		stacks[id] = st
		w.AddSensor(id, pos, rangeM, 0, st)
	}
	var gwIDs []packet.NodeID
	for i := range schedule[0] {
		id := packet.NodeID(1000 + i)
		gwIDs = append(gwIDs, id)
		// Initial position: the scheduled place; Rounds will Move it there
		// anyway, but Attach needs a position.
		w.AddGateway(id, places[schedule[0][i]], rangeM, 500, NewMLRGateway(p, m))
	}
	r := &Rounds{World: w, Places: places, Gateways: gwIDs, RoundLen: roundLen, Schedule: schedule}
	r.Start()
	return w, m, stacks, r
}

func TestMLRDeliversData(t *testing.T) {
	sensors := line(8, 0, 10)
	places := []geom.Point{{X: 80}, {X: -10}}
	w, m, stacks, _ := mlrWorld(t, 1, sensors, places, [][]int{{0, 1}}, sim.Hour, 12)
	stacks[4].OriginateData([]byte("r"))
	w.Run(5 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("delivered %d (generated %d dropped %d)", m.Delivered, m.Generated, m.DroppedNoRoute)
	}
	// Node 4 at x=30: 4 hops to place1 (x=-15), 6 hops to place0 (x=85).
	r := stacks[4].BestRoute()
	if r == nil || r.Place != 1 {
		t.Fatalf("best route = %+v, want place 1", r)
	}
	if r.Hops != 4 {
		t.Fatalf("hops = %d, want 4", r.Hops)
	}
}

// TestMLRTable1Scenario replays the paper's Table 1: |P|=5 feasible places
// (A..E = 0..4), m=3 gateways, three rounds with schedule
// {A,B,C} -> {A,D,C} (B moved to D) -> {E,D,C} (A moved to E).
// The incremental table must grow 3 -> 4 -> 5 entries, never losing or
// rewriting previously learned entries, and the selected route must always
// be the least-hop entry among currently deployed places.
func TestMLRTable1Scenario(t *testing.T) {
	// Line of 12 sensors at x=0..110. Places spread so hop counts differ.
	sensors := line(12, 0, 10)
	// Hop counts from Si (node 8 at x=70), range 12, spacing 10:
	// A(120): 5 hops, B(-10): 8, C(45,10): 4, D(75,10): 1, E(5,10): 7.
	places := []geom.Point{
		{X: 120},       // A
		{X: -10},       // B
		{X: 45, Y: 10}, // C
		{X: 75, Y: 10}, // D
		{X: 5, Y: 10},  // E
	}
	schedule := [][]int{
		{0, 1, 2}, // round 0: A, B, C
		{0, 3, 2}, // round 1: gateway 1 moves B->D
		{4, 3, 2}, // round 2: gateway 0 moves A->E
	}
	roundLen := 20 * sim.Second
	w, m, stacks, rounds := mlrWorld(t, 3, sensors, places, schedule, roundLen, 12)
	si := stacks[8] // node at x=70 — the "Si" of Table 1

	// Round 0: discover and send.
	w.Kernel().After(sim.Second, func() { si.OriginateData([]byte("r0")) })
	w.Run(roundLen - sim.Second)
	tbl0 := si.Table()
	if len(tbl0) != 3 {
		t.Fatalf("round 0 table has %d entries, want 3: %v", len(tbl0), tbl0)
	}
	best0 := si.BestRoute()
	if best0 == nil || best0.Place != 2 {
		// C (4 hops) is the nearest of {A:5, B:8, C:4}.
		t.Fatalf("round 0 best = %+v, want place C(2)", best0)
	}

	// Round 1: B -> D. Table gains D; A and C entries unchanged.
	w.Kernel().After(roundLen/4, func() { si.OriginateData([]byte("r1")) })
	w.Run(2*roundLen - sim.Second)
	if rounds.Round() != 1 {
		t.Fatalf("round = %d, want 1", rounds.Round())
	}
	tbl1 := si.Table()
	if len(tbl1) != 4 {
		t.Fatalf("round 1 table has %d entries, want 4: %v", len(tbl1), tbl1)
	}
	for _, p := range []int{0, 2} {
		if tbl1[p].Hops != tbl0[p].Hops {
			t.Fatalf("place %d entry rewritten: %d -> %d hops", p, tbl0[p].Hops, tbl1[p].Hops)
		}
	}
	if _, hasB := tbl1[1]; !hasB {
		t.Fatal("entry for vacated place B was deleted; table must accumulate")
	}
	best1 := si.BestRoute()
	if best1 == nil || best1.Place != 3 {
		t.Fatalf("round 1 best = %+v, want place D(3)", best1)
	}

	// Round 2: A -> E. Table gains E; D stays best for node 8.
	w.Kernel().After(roundLen/4, func() { si.OriginateData([]byte("r2")) })
	w.Run(3*roundLen - sim.Second)
	tbl2 := si.Table()
	if len(tbl2) != 5 {
		t.Fatalf("round 2 table has %d entries, want 5 (=|P|): %v", len(tbl2), tbl2)
	}
	best2 := si.BestRoute()
	if best2 == nil || best2.Place != 3 {
		t.Fatalf("round 2 best = %+v, want still place D(3)", best2)
	}
	// Active set is the current deployment {E, D, C} = {4, 3, 2}.
	act := si.ActivePlaces()
	want := []int{2, 3, 4}
	if len(act) != 3 || act[0] != want[0] || act[1] != want[1] || act[2] != want[2] {
		t.Fatalf("active places = %v, want %v", act, want)
	}
	if m.Delivered != 3 {
		t.Fatalf("delivered %d of 3 readings", m.Delivered)
	}
	if m.NotifySent == 0 {
		t.Fatal("no NOTIFY traffic despite gateway moves")
	}
}

func TestMLRNotifySuppressedForUnmovedGateways(t *testing.T) {
	sensors := line(4, 0, 10)
	places := []geom.Point{{X: 40}, {X: -10}}
	// Same schedule every round: nobody moves after round 0.
	w, m, _, _ := mlrWorld(t, 1, sensors, places, [][]int{{0, 1}, {0, 1}, {0, 1}}, 2*sim.Second, 12)
	w.Run(7 * sim.Second)
	// Only the initial deployment announcements (2 gateways) plus sensor
	// rebroadcasts; a second wave would roughly double the count.
	first := m.NotifySent
	if first == 0 {
		t.Fatal("initial deployment sent no NOTIFYs")
	}
	w.Run(20 * sim.Second)
	if m.NotifySent != first {
		t.Fatalf("unmoved gateways kept notifying: %d -> %d", first, m.NotifySent)
	}
}

func TestMLRDataFollowsMovedGateway(t *testing.T) {
	sensors := line(8, 0, 10)
	places := []geom.Point{{X: 85}, {X: -15}, {X: 45, Y: 10}}
	schedule := [][]int{{0, 1}, {2, 1}}
	roundLen := 10 * sim.Second
	w, m, stacks, _ := mlrWorld(t, 2, sensors, places, schedule, roundLen, 15)
	// Round 0: node 8 (x=70) sends to place 0 (x=85).
	w.Kernel().After(sim.Second, func() { stacks[8].OriginateData([]byte("a")) })
	// Round 1: gateway 0 moved to place 2; node 8 re-evaluates on next send.
	w.Kernel().After(roundLen+2*sim.Second, func() { stacks[8].OriginateData([]byte("b")) })
	w.Run(2 * roundLen)
	if m.Delivered != 2 {
		t.Fatalf("delivered %d, want 2", m.Delivered)
	}
	best := stacks[8].BestRoute()
	if best == nil || best.Place != 2 {
		t.Fatalf("best after move = %+v, want place 2", best)
	}
}

func TestMLRSecondSendNoDiscovery(t *testing.T) {
	sensors := line(6, 0, 10)
	places := []geom.Point{{X: 60}}
	w, m, stacks, _ := mlrWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	stacks[1].OriginateData([]byte("a"))
	w.Run(5 * sim.Second)
	rreq := m.RReqSent
	stacks[1].OriginateData([]byte("b"))
	w.Run(10 * sim.Second)
	if m.RReqSent != rreq {
		t.Fatalf("second send re-flooded: %d -> %d", rreq, m.RReqSent)
	}
	if m.Delivered != 2 {
		t.Fatalf("delivered %d", m.Delivered)
	}
}

func TestMLRIntermediateAnswersFromTable(t *testing.T) {
	sensors := line(6, 0, 10)
	places := []geom.Point{{X: 60}}
	w, m, stacks, _ := mlrWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	stacks[1].OriginateData([]byte("a")) // installs entries on 2..6 via RRES path
	w.Run(5 * sim.Second)
	if _, ok := stacks[3].Table()[0]; !ok {
		t.Fatal("on-path node did not learn route during RRES forwarding")
	}
	// Now node 2 sends: it already has an entry (learned on path), so no
	// new flood at all.
	rreq := m.RReqSent
	stacks[2].OriginateData([]byte("b"))
	w.Run(10 * sim.Second)
	if m.RReqSent != rreq {
		t.Fatalf("node with learned route flooded: %d -> %d", rreq, m.RReqSent)
	}
	if m.Delivered != 2 {
		t.Fatalf("delivered %d", m.Delivered)
	}
}

func TestMLRUnreachableDrops(t *testing.T) {
	sensors := line(3, 0, 10)
	places := []geom.Point{{X: 900}}
	w, m, stacks, _ := mlrWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	stacks[1].OriginateData([]byte("a"))
	w.Run(30 * sim.Second)
	if m.Delivered != 0 || m.DroppedNoRoute != 1 {
		t.Fatalf("delivered=%d dropped=%d", m.Delivered, m.DroppedNoRoute)
	}
}

func TestRoundsPanics(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	for _, r := range []*Rounds{
		{World: w, Places: []geom.Point{{}}, Gateways: nil, RoundLen: sim.Second, Schedule: nil},
		{World: w, Places: []geom.Point{{}}, Gateways: []packet.NodeID{1}, RoundLen: sim.Second, Schedule: [][]int{{0, 1}}},
		{World: w, Places: []geom.Point{{}}, Gateways: []packet.NodeID{1}, RoundLen: sim.Second, Schedule: [][]int{{5}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			r.Start()
		}()
	}
}

func TestRoundsRepeatLastScheduleRow(t *testing.T) {
	sensors := line(3, 0, 10)
	places := []geom.Point{{X: 35}, {X: -15}}
	w, _, _, r := mlrWorld(t, 1, sensors, places, [][]int{{0}, {1}}, sim.Second, 12)
	w.Run(10 * sim.Second)
	if r.Round() < 5 {
		t.Fatalf("round = %d, want >= 5", r.Round())
	}
	if got := r.CurrentPlaces(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("current places = %v, want [1]", got)
	}
	r.Stop()
	cur := r.Round()
	w.Run(20 * sim.Second)
	if r.Round() != cur {
		t.Fatal("rounds advanced after Stop")
	}
}

func TestMLRNotifyParsing(t *testing.T) {
	n := mlrNotify{NewPlace: 3, PrevPlace: NoPlace, Round: 7}
	got, ok := parseMLRNotify(n.marshal())
	if !ok || got != n {
		t.Fatalf("round trip: %+v vs %+v", got, n)
	}
	framed := n.marshalMoveNotify()
	if framed[0] != mlrNotifyMove {
		t.Fatalf("move notify discriminator = %d", framed[0])
	}
	if got2, ok2 := parseMLRNotify(framed[1:]); !ok2 || got2 != n {
		t.Fatalf("framed round trip: %+v", got2)
	}
	if _, ok := parseMLRNotify([]byte{1, 2}); ok {
		t.Fatal("short notify parsed")
	}
	place, rest, ok := parsePlacePayload(placePayload(9, []byte("abc")))
	if !ok || place != 9 || string(rest) != "abc" {
		t.Fatalf("place payload round trip: %d %q %v", place, rest, ok)
	}
	if _, _, ok := parsePlacePayload([]byte{1}); ok {
		t.Fatal("short place payload parsed")
	}
}

// TestMLROverloadShedding exercises the §4.3 load-balance extension: when a
// gateway absorbs more than OverloadThreshold packets in a round it floods
// an overload notification, and sensors that have an alternative route
// redirect their subsequent traffic there.
func TestMLROverloadShedding(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 4})
	m := NewMetrics()
	p := DefaultParams()
	p.OverloadThreshold = 5
	p.OverloadClear = 30 * sim.Second

	// A line where node 4 is equidistant-ish from two gateways: place 0
	// (x=80, 4 hops) and place 1 (x=-10, 5 hops): it initially prefers 0.
	stacks := map[packet.NodeID]*MLRSensor{}
	for i, pos := range line(8, 0, 10) {
		id := packet.NodeID(i + 1)
		st := NewMLRSensor(p, m)
		stacks[id] = st
		w.AddSensor(id, pos, 12, 0, st)
	}
	places := []geom.Point{{X: 80}, {X: -10}}
	gwIDs := []packet.NodeID{1000, 1001}
	w.AddGateway(1000, places[0], 12, 500, NewMLRGateway(p, m))
	w.AddGateway(1001, places[1], 12, 500, NewMLRGateway(p, m))
	r := &Rounds{World: w, Places: places, Gateways: gwIDs, RoundLen: sim.Hour, Schedule: [][]int{{0, 1}}}
	r.Start()

	// Node 5 (x=40): 4 hops to place 0, 5 to place 1 -> prefers place 0.
	for i := 0; i < 8; i++ {
		w.Kernel().After(sim.Duration(i)*sim.Second, func() { stacks[5].OriginateData([]byte("x")) })
	}
	w.Run(12 * sim.Second)
	if got := m.PerGateway()[1000]; got < 5 {
		t.Fatalf("setup: gateway 1000 absorbed %d, want >= threshold", got)
	}
	if !stacks[5].isOverloaded(0) {
		t.Fatal("sensor did not mark place 0 overloaded")
	}
	// Subsequent traffic redirects to place 1 despite the extra hop.
	before := m.PerGateway()[1001]
	stacks[5].OriginateData([]byte("y"))
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if got := m.PerGateway()[1001]; got != before+1 {
		t.Fatalf("redirected traffic did not reach gateway 1001: %d -> %d", before, got)
	}
	// The mark expires and traffic returns to the shorter route.
	w.Run(w.Kernel().Now() + 40*sim.Second)
	if stacks[5].isOverloaded(0) {
		t.Fatal("overload mark never expired")
	}
}

func TestMLROverloadDisabledByDefault(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 4})
	m := NewMetrics()
	p := DefaultParams() // OverloadThreshold zero
	st := NewMLRSensor(p, m)
	w.AddSensor(1, geom.Point{}, 12, 0, st)
	gw := NewMLRGateway(p, m)
	w.AddGateway(1000, geom.Point{X: 10}, 12, 500, gw)
	r := &Rounds{World: w, Places: []geom.Point{{X: 10}}, Gateways: []packet.NodeID{1000},
		RoundLen: sim.Hour, Schedule: [][]int{{0}}}
	r.Start()
	for i := 0; i < 50; i++ {
		st.OriginateData([]byte("x"))
	}
	w.Run(20 * sim.Second)
	notifies := m.NotifySent
	// Only the deployment announcement; no overload floods.
	if gw.overloadSent {
		t.Fatal("overload fired with threshold disabled")
	}
	_ = notifies
}

func TestOverloadNotifyRoundTrip(t *testing.T) {
	place, round, ok := parseOverloadNotify(marshalOverloadNotify(3, 9))
	if !ok || place != 3 || round != 9 {
		t.Fatalf("round trip: %d %d %v", place, round, ok)
	}
	if _, _, ok := parseOverloadNotify([]byte{mlrNotifyOverload, 1}); ok {
		t.Fatal("short overload parsed")
	}
	if _, _, ok := parseOverloadNotify(marshalOverloadNotify(1, 1)[1:]); ok {
		t.Fatal("missing discriminator parsed")
	}
}
