// Package wsncrypto implements the symmetric-cryptography substrate SecMLR
// relies on (§6.2): pairwise key pre-distribution between sensor nodes and
// gateways, counter-mode encryption {M}<Kij,C>, message authentication codes
// MAC(Kij, M), replay protection via incremental counters, and µTESLA-style
// hash-chain authenticated broadcast for gateway movement notifications
// (§6.2.3, citing SPINS).
//
// Primitives are AES-128-CTR and HMAC-SHA-256 from the Go standard library.
// The paper's security argument is structural (who holds which key, how
// freshness is established); any sound symmetric primitives exercise the
// same protocol paths, per the substitution notes in DESIGN.md.
package wsncrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"wmsn/internal/packet"
)

// KeySize is the symmetric key length in bytes (AES-128).
const KeySize = 16

// MACSize is the authentication tag length in bytes (HMAC-SHA-256).
const MACSize = 32

// Key is a pairwise symmetric key Kij shared between a sensor node Si and a
// gateway Gj.
type Key [KeySize]byte

// DeriveKey derives the pairwise key for (node, gateway) from a network
// master secret: Kij = HMAC(master, "pair" | Si | Gj) truncated to KeySize.
// Pre-distribution means every sensor is loaded with its m gateway keys
// before deployment and gateways are loaded with the keys of all n sensors;
// the master secret itself never exists on any deployed node.
func DeriveKey(master []byte, nodeID, gatewayID packet.NodeID) Key {
	mac := hmac.New(sha256.New, master)
	var buf [12]byte
	copy(buf[:4], "pair")
	binary.BigEndian.PutUint32(buf[4:], uint32(nodeID))
	binary.BigEndian.PutUint32(buf[8:], uint32(gatewayID))
	mac.Write(buf[:])
	var k Key
	copy(k[:], mac.Sum(nil))
	return k
}

// Encrypt computes {M}<K,C>: AES-128-CTR with an IV bound to the counter.
// Counter reuse under the same key is a protocol violation the caller
// (SecMLR) prevents by incrementing C on every message.
func Encrypt(k Key, counter uint64, plaintext []byte) []byte {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic(err) // impossible: KeySize is a valid AES key length
	}
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[:8], counter)
	out := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, plaintext)
	return out
}

// Decrypt inverts Encrypt (CTR mode is an involution).
func Decrypt(k Key, counter uint64, ciphertext []byte) []byte {
	return Encrypt(k, counter, ciphertext)
}

// Sum computes MAC(K, C | data): HMAC-SHA-256 over the counter and the
// message, exactly the tag format of §6.2.1.
func Sum(k Key, counter uint64, data []byte) []byte {
	mac := hmac.New(sha256.New, k[:])
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	mac.Write(c[:])
	mac.Write(data)
	return mac.Sum(nil)
}

// Verify checks tag against MAC(K, C | data) in constant time.
func Verify(k Key, counter uint64, data, tag []byte) bool {
	return hmac.Equal(tag, Sum(k, counter, data))
}

// ReplayGuard tracks the counters accepted from one peer. The paper's
// counters are strictly incremental, so the guard accepts a counter only if
// it exceeds every previously accepted one; anything else is a replay (or a
// reordering indistinguishable from one, which a store-and-forward WSN can
// simply re-query).
type ReplayGuard struct {
	highest  uint64
	accepted bool // distinguishes "never seen" from "counter 0 accepted"
	Replays  uint64
}

// Accept reports whether counter is fresh, recording it when it is.
func (g *ReplayGuard) Accept(counter uint64) bool {
	if !g.accepted || counter > g.highest {
		g.highest = counter
		g.accepted = true
		return true
	}
	g.Replays++
	return false
}

// Highest returns the largest accepted counter and whether any was accepted.
func (g *ReplayGuard) Highest() (uint64, bool) { return g.highest, g.accepted }

// hashKey is one step of the TESLA one-way chain.
func hashKey(k []byte) []byte {
	h := sha256.Sum256(k)
	return h[:KeySize]
}

// TeslaChain is a µTESLA one-way key chain: K[n] is random, K[i] = H(K[i+1]),
// and K[0] is the public commitment. The broadcaster authenticates interval
// i's messages with K[i] and discloses K[i] after the interval ends;
// receivers verify a disclosed key by hashing it back to the newest
// authenticated key they hold.
type TeslaChain struct {
	keys [][]byte // keys[0] = commitment ... keys[n] = seed end
}

// NewTeslaChain builds a chain of n usable intervals from a seed secret.
func NewTeslaChain(seed []byte, n int) *TeslaChain {
	if n < 1 {
		panic("wsncrypto: tesla chain needs at least one interval")
	}
	keys := make([][]byte, n+1)
	last := sha256.Sum256(append([]byte("tesla-seed"), seed...))
	keys[n] = last[:KeySize]
	for i := n - 1; i >= 0; i-- {
		keys[i] = hashKey(keys[i+1])
	}
	return &TeslaChain{keys: keys}
}

// Commitment returns K[0], distributed to every node before deployment.
func (c *TeslaChain) Commitment() []byte { return append([]byte(nil), c.keys[0]...) }

// Intervals returns the number of usable broadcast intervals.
func (c *TeslaChain) Intervals() int { return len(c.keys) - 1 }

// KeyAt returns K[i] (1 ≤ i ≤ Intervals). Only the broadcaster holds the
// chain; receivers learn keys through disclosure.
func (c *TeslaChain) KeyAt(i int) []byte {
	if i < 1 || i >= len(c.keys) {
		panic("wsncrypto: tesla interval out of range")
	}
	return append([]byte(nil), c.keys[i]...)
}

// Authenticate MACs msg under interval i's key.
func (c *TeslaChain) Authenticate(i int, msg []byte) []byte {
	var k Key
	copy(k[:], c.KeyAt(i))
	return Sum(k, uint64(i), msg)
}

// TeslaVerifier is the receiver side: it holds the newest authenticated key
// and accepts a disclosed key only if it hash-chains back to it.
type TeslaVerifier struct {
	key      []byte // newest verified key (commitment initially)
	interval int    // interval of key (0 = commitment)
}

// NewTeslaVerifier starts from the public commitment K[0].
func NewTeslaVerifier(commitment []byte) *TeslaVerifier {
	return &TeslaVerifier{key: append([]byte(nil), commitment...)}
}

// AcceptKey verifies that disclosed is K[i] by hashing it i-interval times
// back to the held key. On success the verifier advances; on failure it is
// unchanged. Keys for already-passed intervals are rejected (they could be
// replays of old disclosures).
func (v *TeslaVerifier) AcceptKey(i int, disclosed []byte) bool {
	steps := i - v.interval
	if steps <= 0 || steps > 1<<16 {
		return false
	}
	h := append([]byte(nil), disclosed...)
	for s := 0; s < steps; s++ {
		h = hashKey(h)
	}
	if !hmac.Equal(h, v.key) {
		return false
	}
	v.key = append([]byte(nil), disclosed...)
	v.interval = i
	return true
}

// VerifyMessage checks a buffered message's tag against an already-accepted
// interval key. The caller must only trust messages whose tags arrived
// before the key was disclosed (the simulator's secure stack enforces that
// ordering with its buffering discipline).
func (v *TeslaVerifier) VerifyMessage(i int, msg, tag []byte) bool {
	if i != v.interval {
		return false
	}
	var k Key
	copy(k[:], v.key)
	return Verify(k, uint64(i), msg, tag)
}

// Interval returns the newest authenticated interval (0 until a disclosure
// is accepted).
func (v *TeslaVerifier) Interval() int { return v.interval }
