package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixedPerBitCosts(t *testing.T) {
	m := FixedPerBit{TxPerBit: 2e-9, RxPerBit: 1e-9}
	if got := m.TxCost(1000, 500); math.Abs(got-2e-6) > 1e-15 {
		t.Fatalf("TxCost = %g, want 2e-6", got)
	}
	if got := m.RxCost(1000); math.Abs(got-1e-6) > 1e-15 {
		t.Fatalf("RxCost = %g, want 1e-6", got)
	}
	// Distance independence is the point of this model.
	if m.TxCost(100, 0) != m.TxCost(100, 1e6) {
		t.Fatal("FixedPerBit TxCost depends on distance")
	}
}

func TestFirstOrderCosts(t *testing.T) {
	m := FirstOrder{Elec: 50e-9, Amp: 100e-12}
	// 1 bit at 100 m: 50nJ + 100pJ*1e4 = 50nJ + 1µJ*1e-3 = 50e-9 + 1e-6
	want := 50e-9 + 100e-12*100*100
	if got := m.TxCost(1, 100); math.Abs(got-want) > 1e-18 {
		t.Fatalf("TxCost = %g, want %g", got, want)
	}
	if got := m.RxCost(1); got != 50e-9 {
		t.Fatalf("RxCost = %g, want 50e-9", got)
	}
	// Longer hops must cost strictly more.
	if m.TxCost(1000, 200) <= m.TxCost(1000, 50) {
		t.Fatal("FirstOrder TxCost not increasing in distance")
	}
	// Negative distance clamps rather than crediting energy back.
	if m.TxCost(10, -5) != m.TxCost(10, 0) {
		t.Fatal("negative distance not clamped")
	}
}

func TestLongHopVsTwoShortHops(t *testing.T) {
	// The first-order model's raison d'être: one 200 m hop costs more than
	// two 100 m hops (amp term is quadratic), which penalizes LEACH-style
	// direct cluster-head transmission and rewards multi-hop SPR paths.
	m := DefaultFirstOrder
	oneLong := m.TxCost(1000, 200)
	twoShort := 2*m.TxCost(1000, 100) + m.RxCost(1000) // relay also receives
	if oneLong <= twoShort-m.RxCost(1000)*3 && oneLong < twoShort*0.5 {
		t.Fatalf("expected quadratic penalty: long=%g twoShort=%g", oneLong, twoShort)
	}
	if m.TxCost(1000, 200) <= m.TxCost(1000, 100)*2-m.RxCost(1000) {
		t.Skip("parameterization makes relaying never attractive; fine for defaults")
	}
}

func TestBatteryDraw(t *testing.T) {
	b := NewBattery(10)
	if !b.DrawTx(4) {
		t.Fatal("DrawTx(4) on 10 J battery failed")
	}
	if !b.DrawRx(5) {
		t.Fatal("DrawRx(5) failed")
	}
	if got := b.Remaining(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Remaining = %g, want 1", got)
	}
	if b.Depleted() {
		t.Fatal("battery wrongly depleted")
	}
	if b.DrawTx(2) {
		t.Fatal("overdraw succeeded")
	}
	if !b.Depleted() {
		t.Fatal("battery should be depleted after overdraw")
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining after depletion = %g, want 0", b.Remaining())
	}
	if b.Used() != 10 {
		t.Fatalf("Used = %g, want capacity 10", b.Used())
	}
}

func TestBatteryBuckets(t *testing.T) {
	b := NewBattery(100)
	b.DrawTx(3)
	b.DrawRx(7)
	b.DrawTx(2)
	if b.TxUsed() != 5 || b.RxUsed() != 7 {
		t.Fatalf("TxUsed=%g RxUsed=%g, want 5/7", b.TxUsed(), b.RxUsed())
	}
	if b.Used() != 12 {
		t.Fatalf("Used=%g, want 12", b.Used())
	}
}

func TestNegativeDrawPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative draw did not panic")
		}
	}()
	NewBattery(1).DrawTx(-1)
}

func TestNegativeCapacityClamped(t *testing.T) {
	b := NewBattery(-5)
	if b.Capacity() != 0 || !b.Depleted() {
		t.Fatalf("negative-capacity battery: cap=%g depleted=%v", b.Capacity(), b.Depleted())
	}
}

func TestInfiniteBattery(t *testing.T) {
	b := Infinite()
	for i := 0; i < 1000; i++ {
		if !b.DrawTx(1e6) {
			t.Fatal("infinite battery refused draw")
		}
	}
	if b.Depleted() {
		t.Fatal("infinite battery depleted")
	}
	if !math.IsInf(b.Remaining(), 1) {
		t.Fatalf("Remaining = %g, want +Inf", b.Remaining())
	}
	if b.FractionRemaining() != 1 {
		t.Fatalf("FractionRemaining = %g, want 1", b.FractionRemaining())
	}
	if b.Used() != 1e9 {
		t.Fatalf("infinite battery Used = %g, want 1e9 (still tracked)", b.Used())
	}
}

func TestFractionRemaining(t *testing.T) {
	b := NewBattery(4)
	b.DrawTx(1)
	if got := b.FractionRemaining(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("FractionRemaining = %g, want 0.75", got)
	}
	if got := NewBattery(0).FractionRemaining(); got != 0 {
		t.Fatalf("zero-capacity FractionRemaining = %g, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	bats := []*Battery{NewBattery(10), NewBattery(10), NewBattery(10), Infinite()}
	bats[0].DrawTx(2)
	bats[1].DrawTx(4)
	bats[2].DrawTx(10)
	bats[2].DrawTx(5) // overdraw; stays at 10
	bats[3].DrawTx(1e6)

	s := Summarize(bats)
	if s.N != 3 {
		t.Fatalf("N = %d, want 3 (infinite excluded)", s.N)
	}
	if s.Total != 16 {
		t.Fatalf("Total = %g, want 16", s.Total)
	}
	if math.Abs(s.Mean-16.0/3) > 1e-12 {
		t.Fatalf("Mean = %g", s.Mean)
	}
	if s.Min != 2 || s.Max != 10 {
		t.Fatalf("Min/Max = %g/%g, want 2/10", s.Min, s.Max)
	}
	if s.Dead != 1 {
		t.Fatalf("Dead = %d, want 1", s.Dead)
	}
	wantVar := (math.Pow(2-s.Mean, 2) + math.Pow(4-s.Mean, 2) + math.Pow(10-s.Mean, 2)) / 3
	if math.Abs(s.Variance-wantVar) > 1e-9 {
		t.Fatalf("Variance = %g, want %g", s.Variance, wantVar)
	}
	if math.Abs(s.StdDev()-math.Sqrt(wantVar)) > 1e-9 {
		t.Fatalf("StdDev = %g", s.StdDev())
	}
	if s.CoefficientOfVariation() <= 0 {
		t.Fatal("CV should be positive here")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Total != 0 || s.Mean != 0 || s.Variance != 0 {
		t.Fatalf("empty Summarize = %+v", s)
	}
	if s.CoefficientOfVariation() != 0 {
		t.Fatal("CV of empty stats should be 0")
	}
	s2 := Summarize([]*Battery{Infinite()})
	if s2.N != 0 {
		t.Fatalf("only-infinite Summarize N = %d", s2.N)
	}
}

// Property: Remaining is never negative and Used never exceeds Capacity,
// regardless of draw sequence.
func TestQuickBatteryInvariants(t *testing.T) {
	f := func(capRaw uint16, draws []uint8) bool {
		b := NewBattery(float64(capRaw) / 100)
		for i, d := range draws {
			j := float64(d) / 50
			if i%2 == 0 {
				b.DrawTx(j)
			} else {
				b.DrawRx(j)
			}
			if b.Remaining() < 0 || b.Used() > b.Capacity()+1e-9 {
				return false
			}
			if math.Abs(b.TxUsed()+b.RxUsed()-b.Used()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: first-order cost is monotone in both bits and distance.
func TestQuickFirstOrderMonotone(t *testing.T) {
	m := DefaultFirstOrder
	f := func(bits1, bits2 uint16, d1, d2 uint16) bool {
		b1, b2 := int(bits1), int(bits2)
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		x1, x2 := float64(d1), float64(d2)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return m.TxCost(b1, x1) <= m.TxCost(b2, x2) && m.RxCost(b1) <= m.RxCost(b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
