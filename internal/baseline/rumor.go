package baseline

import (
	"encoding/binary"

	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
)

// Rumor routing (§2.2.1 [23]) avoids flooding in both directions: nodes
// that witness an event launch *agents* — long-lived packets that random-
// walk the network leaving a gradient (distance + next hop) toward the
// event at every node they visit. Queries for the event also random-walk,
// but the moment one crosses a node holding agent state it stops wandering
// and follows the gradient straight to a witness. Two random lines in a
// plane intersect with high probability, so most queries find the event
// path after a short walk — at a tiny fraction of flooding's cost.
//
// Delivery semantics: a query is "delivered" when it reaches an event
// witness; core.Metrics counts queries as Generated and answered queries
// as Delivered (the witness is the per-query gateway).

const (
	rumorAgentMarker byte = 'G'
	rumorQueryMarker byte = 'U'
)

// EventID identifies an observed event.
type EventID uint32

type rumorEntry struct {
	dist int           // hops to the nearest known witness
	next packet.NodeID // neighbor toward it
}

// RumorNode is the per-sensor stack.
type RumorNode struct {
	Metrics metrics.Sink
	// AgentsPerEvent is how many agents a witness launches.
	AgentsPerEvent int
	// AgentTTL / QueryTTL bound the random walks.
	AgentTTL, QueryTTL uint8

	dev    *node.Device
	events map[EventID]rumorEntry
	seq    uint32

	// AgentHops / QueryHops count transmissions for overhead analysis.
	AgentHops, QueryHops uint64
}

// NewRumorNode creates a stack with classic parameters.
func NewRumorNode(m metrics.Sink) *RumorNode {
	return &RumorNode{
		Metrics: m, AgentsPerEvent: 2, AgentTTL: 40, QueryTTL: 40,
		events: make(map[EventID]rumorEntry),
	}
}

// Start implements node.Stack.
func (r *RumorNode) Start(dev *node.Device) { r.dev = dev }

// Knows reports whether the node holds gradient state for the event.
func (r *RumorNode) Knows(ev EventID) bool {
	_, ok := r.events[ev]
	return ok
}

// WitnessEvent registers this node as a witness and launches agents.
func (r *RumorNode) WitnessEvent(ev EventID) {
	if r.dev == nil || !r.dev.Alive() {
		return
	}
	r.events[ev] = rumorEntry{dist: 0, next: r.dev.ID()}
	for i := 0; i < r.AgentsPerEvent; i++ {
		r.seq++
		r.sendWalk(rumorAgentMarker, ev, r.seq, r.AgentTTL, 0, packet.None)
	}
}

// Query launches a random-walk query for the event. The result is recorded
// in Metrics (Generated now, Delivered when a witness is reached).
func (r *RumorNode) Query(ev EventID) {
	if r.dev == nil || !r.dev.Alive() {
		return
	}
	r.seq++
	r.Metrics.RecordGenerated(r.dev.ID(), r.seq, r.dev.Now())
	if e, ok := r.events[ev]; ok && e.dist == 0 {
		// We are a witness ourselves.
		r.Metrics.RecordDelivered(r.dev.ID(), r.seq, r.dev.ID(), 0, r.dev.Now())
		return
	}
	r.forwardQuery(ev, r.dev.ID(), r.seq, r.QueryTTL, 0, packet.None)
}

// sendWalk emits one random-walk packet (agent), avoiding the node it just
// came from when possible.
func (r *RumorNode) sendWalk(marker byte, ev EventID, seq uint32, ttl uint8, dist int, avoid packet.NodeID) {
	next := r.pickNeighbor(avoid)
	if next == packet.None {
		return
	}
	payload := make([]byte, 7)
	payload[0] = marker
	binary.BigEndian.PutUint32(payload[1:], uint32(ev))
	binary.BigEndian.PutUint16(payload[5:], uint16(dist))
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    r.dev.ID(),
		To:      next,
		Origin:  r.dev.ID(),
		Target:  next,
		Seq:     seq,
		TTL:     ttl,
		Payload: payload,
	}
	if r.dev.Send(pkt) {
		r.AgentHops++
	}
}

// forwardQuery either follows an existing gradient or keeps random-walking.
// origin/seq identify the query end to end for metrics.
func (r *RumorNode) forwardQuery(ev EventID, origin packet.NodeID, seq uint32, ttl uint8, hops int, avoid packet.NodeID) {
	var to packet.NodeID
	if e, ok := r.events[ev]; ok && e.next != r.dev.ID() {
		to = e.next // on the rumor path: descend the gradient
	} else {
		to = r.pickNeighbor(avoid)
	}
	if to == packet.None || ttl == 0 {
		return
	}
	payload := make([]byte, 15)
	payload[0] = rumorQueryMarker
	binary.BigEndian.PutUint32(payload[1:], uint32(ev))
	binary.BigEndian.PutUint32(payload[5:], uint32(origin))
	binary.BigEndian.PutUint32(payload[9:], seq)
	binary.BigEndian.PutUint16(payload[13:], uint16(hops))
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    r.dev.ID(),
		To:      to,
		Origin:  origin,
		Target:  to,
		Seq:     seq,
		TTL:     ttl,
		Payload: payload,
	}
	if r.dev.Send(pkt) {
		r.QueryHops++
	}
}

// pickNeighbor selects a random neighbor, preferring not to backtrack.
func (r *RumorNode) pickNeighbor(avoid packet.NodeID) packet.NodeID {
	nbrs := r.dev.SensorNeighbors()
	if len(nbrs) == 0 {
		return packet.None
	}
	rng := r.dev.World().Kernel().Rand()
	if len(nbrs) > 1 && avoid != packet.None {
		filtered := nbrs[:0:0]
		for _, id := range nbrs {
			if id != avoid {
				filtered = append(filtered, id)
			}
		}
		if len(filtered) > 0 {
			nbrs = filtered
		}
	}
	return nbrs[rng.Intn(len(nbrs))]
}

// HandleMessage implements node.Stack.
func (r *RumorNode) HandleMessage(pkt *packet.Packet) {
	if r.dev == nil || pkt.Kind != packet.KindData || pkt.Target != r.dev.ID() || len(pkt.Payload) < 7 {
		return
	}
	switch pkt.Payload[0] {
	case rumorAgentMarker:
		ev := EventID(binary.BigEndian.Uint32(pkt.Payload[1:]))
		dist := int(binary.BigEndian.Uint16(pkt.Payload[5:])) + 1
		// Record/refresh the gradient: the agent came FROM the direction of
		// the event, so pkt.From is the next hop toward it.
		if e, ok := r.events[ev]; !ok || dist < e.dist {
			r.events[ev] = rumorEntry{dist: dist, next: pkt.From}
		}
		if pkt.TTL > 1 {
			r.sendWalk(rumorAgentMarker, ev, pkt.Seq, pkt.TTL-1, dist, pkt.From)
		}
	case rumorQueryMarker:
		if len(pkt.Payload) < 15 {
			return
		}
		ev := EventID(binary.BigEndian.Uint32(pkt.Payload[1:]))
		origin := packet.NodeID(binary.BigEndian.Uint32(pkt.Payload[5:]))
		seq := binary.BigEndian.Uint32(pkt.Payload[9:])
		hops := int(binary.BigEndian.Uint16(pkt.Payload[13:])) + 1
		if e, ok := r.events[ev]; ok && e.dist == 0 {
			// Witness reached: the query is answered.
			r.Metrics.RecordDelivered(origin, seq, r.dev.ID(), hops, r.dev.Now())
			return
		}
		if pkt.TTL > 1 {
			r.forwardQuery(ev, origin, seq, pkt.TTL-1, hops, pkt.From)
		}
	}
}
