package core

// Exported wire-format helpers. The attack package (and any external tool
// crafting packets) needs to forge protocol payloads without reaching into
// core's unexported encoders; these wrappers expose exactly the formats an
// on-air adversary could observe and replicate.

// EncodePlacePayload builds the payload of an MLR RRES or DATA packet: a
// feasible-place index followed by the body.
func EncodePlacePayload(place int, rest []byte) []byte { return placePayload(place, rest) }

// DecodePlacePayload parses an MLR RRES/DATA payload.
func DecodePlacePayload(b []byte) (place int, rest []byte, ok bool) { return parsePlacePayload(b) }

// EncodeNotifyPayload builds a plain-MLR NOTIFY payload announcing that a
// gateway moved from prevPlace (use NoPlace for none) to newPlace in round.
func EncodeNotifyPayload(newPlace, prevPlace, round int) []byte {
	return mlrNotify{NewPlace: uint16(newPlace), PrevPlace: uint16(prevPlace), Round: uint16(round)}.marshalMoveNotify()
}

// DecodeNotifyPayload parses a plain-MLR NOTIFY payload.
func DecodeNotifyPayload(b []byte) (newPlace, prevPlace, round int, ok bool) {
	if len(b) < 1 || b[0] != mlrNotifyMove {
		return 0, 0, 0, false
	}
	n, ok := parseMLRNotify(b[1:])
	return int(n.NewPlace), int(n.PrevPlace), int(n.Round), ok
}
