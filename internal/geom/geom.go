// Package geom provides the planar geometry primitives and node deployment
// generators used by the WMSN simulator: points, rectangular regions,
// distances, and the random/grid/clustered placement strategies that the
// paper's scenarios assume ("hundreds of even thousands of sensors
// (randomly) distributed in a monitoring area").
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the monitored area, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q in meters.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance; cheaper than Dist when only
// comparisons are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p with both coordinates multiplied by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// String formats the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangular region [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Square returns a side x side region anchored at the origin.
func Square(side float64) Rect { return Rect{0, 0, side, side} }

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.X1 - r.X0 }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Y1 - r.Y0 }

// Area returns the region's area in square meters.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the geometric center of the region.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Contains reports whether p lies inside the region (inclusive bounds; nodes
// deployed exactly on the far edge still count as in-region).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Clamp returns p moved to the nearest point inside the region.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.X0), r.X1),
		Y: math.Min(math.Max(p.Y, r.Y0), r.Y1),
	}
}

// RandomPoint returns a uniformly distributed point inside the region.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{
		X: r.X0 + rng.Float64()*r.Width(),
		Y: r.Y0 + rng.Float64()*r.Height(),
	}
}

// Deployer places n nodes inside a region.
type Deployer interface {
	// Deploy returns n points inside region.
	Deploy(n int, region Rect, rng *rand.Rand) []Point
}

// Uniform deploys nodes independently and uniformly at random — the default
// "(randomly) distributed in a monitoring area" assumption.
type Uniform struct{}

// Deploy implements Deployer.
func (Uniform) Deploy(n int, region Rect, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = region.RandomPoint(rng)
	}
	return pts
}

// Grid deploys nodes on a near-square lattice covering the region, with
// optional uniform jitter (fraction of cell size, in [0,1)). Grid placement
// is the "nodes distributed evenly" case for which the paper says SPR has
// good performance.
type Grid struct {
	Jitter float64
}

// Deploy implements Deployer.
func (g Grid) Deploy(n int, region Rect, rng *rand.Rand) []Point {
	if n <= 0 {
		return nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(n) * region.Width() / math.Max(region.Height(), 1e-9))))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	cw, ch := region.Width()/float64(cols), region.Height()/float64(rows)
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		p := Point{
			X: region.X0 + (float64(c)+0.5)*cw,
			Y: region.Y0 + (float64(r)+0.5)*ch,
		}
		if g.Jitter > 0 {
			p.X += (rng.Float64() - 0.5) * g.Jitter * cw
			p.Y += (rng.Float64() - 0.5) * g.Jitter * ch
		}
		pts = append(pts, region.Clamp(p))
	}
	return pts
}

// Clusters deploys nodes in K Gaussian clusters with the given standard
// deviation, modeling uneven deployments (e.g. sensors dropped in batches).
// Uneven distribution is the case that motivates MLR over SPR in §5.3.
type Clusters struct {
	K      int
	Sigma  float64 // standard deviation of each cluster, meters
	Center []Point // optional fixed centers; random when empty
}

// Deploy implements Deployer.
func (c Clusters) Deploy(n int, region Rect, rng *rand.Rand) []Point {
	k := c.K
	if k <= 0 {
		k = 4
	}
	centers := c.Center
	if len(centers) == 0 {
		centers = make([]Point, k)
		for i := range centers {
			centers[i] = region.RandomPoint(rng)
		}
	}
	sigma := c.Sigma
	if sigma <= 0 {
		sigma = math.Min(region.Width(), region.Height()) / 10
	}
	pts := make([]Point, n)
	for i := range pts {
		ctr := centers[rng.Intn(len(centers))]
		pts[i] = region.Clamp(Point{
			X: ctr.X + rng.NormFloat64()*sigma,
			Y: ctr.Y + rng.NormFloat64()*sigma,
		})
	}
	return pts
}

// Hotspot deploys a fraction of the nodes uniformly and concentrates the
// rest inside a sub-rectangle, modeling the "forest fire" style regional
// load of §4.3.
type Hotspot struct {
	Spot     Rect    // the dense sub-region
	Fraction float64 // fraction of nodes inside the hotspot, in [0,1]
}

// Deploy implements Deployer.
func (h Hotspot) Deploy(n int, region Rect, rng *rand.Rand) []Point {
	frac := h.Fraction
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	inSpot := int(math.Round(float64(n) * frac))
	pts := make([]Point, 0, n)
	for i := 0; i < inSpot; i++ {
		pts = append(pts, region.Clamp(h.Spot.RandomPoint(rng)))
	}
	for i := inSpot; i < n; i++ {
		pts = append(pts, region.RandomPoint(rng))
	}
	return pts
}

// PlaceGrid returns k candidate gateway places laid out on a uniform lattice
// inside region, the "set of feasible places P" of MLR (§5.3). The lattice
// is as square as possible; extra cells are dropped from the end.
func PlaceGrid(k int, region Rect) []Point {
	if k <= 0 {
		return nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(k))))
	rows := (k + cols - 1) / cols
	cw, ch := region.Width()/float64(cols), region.Height()/float64(rows)
	pts := make([]Point, 0, k)
	for i := 0; i < k; i++ {
		r, c := i/cols, i%cols
		pts = append(pts, Point{
			X: region.X0 + (float64(c)+0.5)*cw,
			Y: region.Y0 + (float64(r)+0.5)*ch,
		})
	}
	return pts
}

// Centroid returns the arithmetic mean of the points; the zero Point when
// pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// BoundingBox returns the smallest Rect containing all points; the zero Rect
// when pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		r.X0 = math.Min(r.X0, p.X)
		r.Y0 = math.Min(r.Y0, p.Y)
		r.X1 = math.Max(r.X1, p.X)
		r.Y1 = math.Max(r.Y1, p.Y)
	}
	return r
}
