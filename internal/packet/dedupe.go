package packet

// DedupeKey identifies a flooded packet per (origin, sequence) — the pair
// every flooding-style protocol in this codebase suppresses duplicates on.
type DedupeKey struct {
	Origin NodeID
	Seq    uint32
}

// Dedupe is the shared duplicate-suppression set used by the core protocols
// (SPR/MLR/SecMLR flood forwarding) and the flat baselines.
//
// Data sequence numbers are dense and start near zero, so membership is
// kept as one growable bitset per origin, reached through a small
// open-addressed table keyed on the origin ID: the hot path is one probe
// plus one bit test, with no per-key map entries and no hashing of the
// full (origin, seq) pair. Pathological sequence numbers (a replayed or
// forged packet far outside the dense range) fall back to an exact
// overflow map, so observable behavior is identical to the
// map[DedupeKey]struct{} implementation this replaces.
//
// When constructed with a positive limit the set is memory-bounded: when a
// new key arrives at the bound, the set is dropped wholesale and restarted
// with only the newcomer, which can briefly re-admit old duplicates —
// acceptable for flood suppression because the TTL kills stragglers
// anyway.
type Dedupe struct {
	limit int // max distinct keys; <=0 means unbounded
	n     int // distinct keys recorded since the last reset

	slots    []dedupeOrigin // open-addressed on origin; len is a power of two
	occupied int            // used slots, for the grow threshold
	overflow map[DedupeKey]struct{}
}

// dedupeOrigin is one origin's sequence bitset: bit s%64 of bits[s/64]
// records a sighting of sequence number s.
type dedupeOrigin struct {
	origin NodeID
	used   bool
	bits   []uint64
}

// dedupeMaxDenseSeq bounds the bitset range per origin (256 KiB of bits);
// sequence numbers beyond it go to the exact overflow map.
const dedupeMaxDenseSeq = 1 << 21

// NewDedupe returns an empty set. limit <= 0 means unbounded.
func NewDedupe(limit int) *Dedupe {
	return &Dedupe{limit: limit}
}

// slotIndex returns the table index holding origin, or the insertion point
// for it. The table must be non-empty and never full.
func (d *Dedupe) slotIndex(origin NodeID) int {
	mask := uint32(len(d.slots) - 1)
	i := (uint32(origin) * 2654435761) & mask
	for d.slots[i].used && d.slots[i].origin != origin {
		i = (i + 1) & mask
	}
	return int(i)
}

// growSlots doubles the origin table (or creates it) and rehashes.
func (d *Dedupe) growSlots() {
	old := d.slots
	size := 16
	if len(old) > 0 {
		size = len(old) * 2
	}
	d.slots = make([]dedupeOrigin, size)
	for i := range old {
		if old[i].used {
			d.slots[d.slotIndex(old[i].origin)] = old[i]
		}
	}
}

// reset drops every recorded key, keeping allocated capacity: bitsets are
// zeroed in place and origin slots stay claimed (an all-zero bitset holds
// no keys, so membership is unaffected).
func (d *Dedupe) reset() {
	for i := range d.slots {
		b := d.slots[i].bits
		for j := range b {
			b[j] = 0
		}
	}
	for k := range d.overflow {
		delete(d.overflow, k)
	}
	d.n = 0
}

// Check records (origin, seq) and reports whether it was already present.
func (d *Dedupe) Check(origin NodeID, seq uint32) bool {
	if seq < dedupeMaxDenseSeq {
		word, bit := int(seq>>6), uint64(1)<<(seq&63)
		if len(d.slots) > 0 {
			if s := &d.slots[d.slotIndex(origin)]; s.used && word < len(s.bits) && s.bits[word]&bit != 0 {
				return true
			}
		}
		if d.limit > 0 && d.n >= d.limit {
			// Bounded memory: drop everything; duplicates re-suppressed
			// by TTL.
			d.reset()
		}
		if d.occupied*4 >= len(d.slots)*3 {
			d.growSlots()
		}
		s := &d.slots[d.slotIndex(origin)]
		if !s.used {
			s.used = true
			s.origin = origin
			d.occupied++
		}
		if word >= len(s.bits) {
			grown := word + 1
			if g := 2 * len(s.bits); g > grown {
				grown = g
			}
			nb := make([]uint64, grown)
			copy(nb, s.bits)
			s.bits = nb
		}
		s.bits[word] |= bit
		d.n++
		return false
	}
	key := DedupeKey{Origin: origin, Seq: seq}
	if _, dup := d.overflow[key]; dup {
		return true
	}
	if d.limit > 0 && d.n >= d.limit {
		d.reset()
	}
	if d.overflow == nil {
		d.overflow = make(map[DedupeKey]struct{})
	}
	d.overflow[key] = struct{}{}
	d.n++
	return false
}

// Len returns how many distinct keys are currently tracked.
func (d *Dedupe) Len() int { return d.n }
