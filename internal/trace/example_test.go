package trace_test

import (
	"os"

	"wmsn/internal/trace"
)

// ExampleTable renders a small aligned results table.
func ExampleTable() {
	t := trace.NewTable("delivery by protocol", "protocol", "ratio")
	t.AddRow("spr", 0.998)
	t.AddRow("mlr", 1.0)
	t.Render(os.Stdout)
	// Output:
	// delivery by protocol
	//   protocol  ratio
	//   --------  -----
	//   spr       0.998
	//   mlr       1
}
