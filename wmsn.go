// Package wmsn is a discrete-event simulator and protocol library for
// Wireless Mesh Sensor Networks, reproducing Tang et al., "Wireless Mesh
// Sensor Networks in Pervasive Environment: a Reliable Architecture and
// Routing Protocol" (ICPP 2007; extended journal version "Secure Routing
// for Wireless Mesh Sensor Networks in Pervasive Environments", IJICS
// 12(4), 2007).
//
// The library provides:
//
//   - The paper's three routing protocols: SPR (shortest-path routing to
//     the best of m gateways), MLR (maximal-network-lifetime routing with
//     round-based gateway mobility and incremental routing tables), and
//     SecMLR (MLR hardened with pairwise keys, MACs, counters and µTESLA
//     broadcast authentication).
//   - The substrates they need: a deterministic event kernel, a unit-disk
//     radio model with loss and collisions, battery/energy accounting, a
//     link-state wireless mesh backbone with self-healing, and a
//     symmetric-crypto toolkit.
//   - Flat-architecture baselines (flooding, gossiping, direct, MCFA,
//     LEACH), eight network-layer attacks, gateway placement models, a
//     deterministic fault-injection subsystem (Config.Faults), a reliable
//     link layer with hop-by-hop ARQ (Params.LinkRetries), and the full
//     experiment suite (E1–E14) behind cmd/wmsnbench.
//
// Quick start:
//
//	res, err := wmsn.RunContext(ctx, wmsn.Config{
//	    Seed: 1, Protocol: wmsn.SPR,
//	    NumSensors: 100, Side: 200, SensorRange: 35, NumGateways: 3,
//	})
//	if err != nil { ... } // errors.Is(err, wmsn.ErrCanceled) on cancellation
//	fmt.Println(res.Metrics.DeliveryRatio())
//
// RunContext, RunManyContext and RunEach are the primary run API: they
// validate the configuration, honor context cancellation and deadlines
// (a canceled run stops the kernel within one event batch), and — for
// sweeps — deliver bit-identical results in submission order at any worker
// count. Run, RunE and RunMany are the legacy forms kept for existing
// callers. For running simulations as a network service, see cmd/wmsnd.
//
// See examples/ for richer scenarios and DESIGN.md for the system map.
package wmsn

import (
	"context"

	"wmsn/internal/attack"
	"wmsn/internal/baseline"
	"wmsn/internal/core"
	"wmsn/internal/energy"
	"wmsn/internal/experiments"
	"wmsn/internal/fault"
	"wmsn/internal/geom"
	"wmsn/internal/mesh"
	"wmsn/internal/metrics"
	"wmsn/internal/network"
	"wmsn/internal/node"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/placement"
	"wmsn/internal/protocol"
	"wmsn/internal/scenario"
	"wmsn/internal/sensing"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// Geometry and identity.
type (
	// Point is a planar location in meters.
	Point = geom.Point
	// Rect is an axis-aligned region.
	Rect = geom.Rect
	// NodeID identifies a node.
	NodeID = packet.NodeID
	// Packet is one frame on the simulated air.
	Packet = packet.Packet
)

// Virtual time.
type (
	// Time is a virtual instant in microseconds.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
)

// Time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Scenario plumbing: Config describes an experiment, Net is a built network,
// Result summarizes a completed run.
type (
	Config   = scenario.Config
	Net      = scenario.Net
	Result   = scenario.Result
	Protocol = scenario.Protocol
	// Metrics aggregates end-to-end protocol behaviour.
	Metrics = core.Metrics
)

// Protocols.
const (
	SPR       = scenario.SPR
	MLR       = scenario.MLR
	SecMLR    = scenario.SecMLR
	Flooding  = scenario.Flooding
	Gossiping = scenario.Gossiping
	Direct    = scenario.Direct
	MCFA      = scenario.MCFA
	LEACH     = scenario.LEACH
	PEGASIS   = scenario.PEGASIS
	SPIN      = scenario.SPIN
)

// Protocol registry: external packages plug new routing protocols into the
// scenario/experiment machinery by registering a builder (typically from an
// init function), then referencing its ID in Config.Protocol.
type (
	// ProtocolBuilder is a named protocol factory plus its capability set.
	ProtocolBuilder = protocol.Builder
	// ProtocolEnv is the prepared world a builder instantiates into.
	ProtocolEnv = protocol.Env
	// ProtocolInstance is what a builder hands back to the scenario.
	ProtocolInstance = protocol.Instance
	// ProtocolCapabilities describes what a protocol supports.
	ProtocolCapabilities = protocol.Capabilities
	// Originator is any sensor stack that can produce a reading.
	Originator = protocol.Originator
)

// RegisterProtocol adds a protocol builder to the registry. It panics on an
// empty ID, nil build function, or duplicate registration.
func RegisterProtocol(b ProtocolBuilder) { protocol.Register(b) }

// RegisteredProtocols lists every registered protocol ID in sorted order.
func RegisteredProtocols() []Protocol { return protocol.IDs() }

// Metrics pipeline: every protocol reports through the MetricsSink
// interface; MetricsSnapshot is the JSON-serializable summary of a run (or
// a merged aggregate of many runs, see MetricsAggregate).
type (
	// MetricsSink receives lifecycle events and counters from protocol and
	// radio layers.
	MetricsSink = metrics.Sink
	// MetricsCounter names one event counter.
	MetricsCounter = metrics.Counter
	// MetricsSnapshot is the serializable summary of collected metrics.
	MetricsSnapshot = metrics.Snapshot
	// MetricsAggregate deterministically folds the metrics of many runs.
	MetricsAggregate = metrics.Aggregate
)

// NewMetricsAggregate returns an empty deterministic multi-run aggregate.
func NewMetricsAggregate() *MetricsAggregate { return metrics.NewAggregate() }

// Sensing: the synthetic environment and TEEN threshold reporting.
type (
	// SensingField is a scalar environment sampled by sensors.
	SensingField = sensing.Field
	// AmbientField is a constant background level.
	AmbientField = sensing.Ambient
	// EventField is an ambient level plus localized Gaussian events.
	EventField = sensing.EventField
	// SensingEvent is one localized disturbance.
	SensingEvent = sensing.Event
	// TEENFilter is the per-node hard/soft threshold filter.
	TEENFilter = sensing.TEEN
	// TEENConfig enables threshold-sensitive reporting in a scenario.
	TEENConfig = scenario.TEENConfig
)

// NewTEENFilter creates a threshold filter.
var NewTEENFilter = sensing.NewTEEN

// Fault injection: a FaultPlan declared on Config.Faults schedules
// deterministic crashes, recoveries, gateway kills, loss degradation and
// background churn; the run's Result then carries a Reliability summary.
type (
	// FaultPlan is a declarative, validated fault schedule.
	FaultPlan = fault.Plan
	// FaultChurn parameterizes background sensor crash/recover cycles.
	FaultChurn = fault.Churn
	// Reliability summarizes recovery behaviour of a faulted run.
	Reliability = fault.Reliability
	// ReliabilityWindow is the delivery ratio around one fault event.
	ReliabilityWindow = fault.Window
)

// NewFaultPlan returns an empty fault plan; chain CrashAt, RecoverAt,
// KillGateway, DegradeLinks, DegradeAll, RampLoss, WithChurn and Settle to
// populate it.
func NewFaultPlan() *FaultPlan { return fault.NewPlan() }

// Fault and failover counters (see MetricsSnapshot.Counters).
const (
	CtrFaultsInjected    = metrics.FaultsInjected
	CtrReroutes          = metrics.Reroutes
	CtrFailoverLatencyUs = metrics.FailoverLatencyUs
)

// Link-layer ARQ counters (see MetricsSnapshot.Counters), live when
// Params.LinkRetries > 0: frames admitted to forwarding queues, per-hop
// acknowledgments, retransmissions, dead-hop verdicts, frames flushed by
// node death, and backpressure drops at full queues.
const (
	CtrLinkTxQueued = metrics.LinkTxQueued
	CtrLinkAcked    = metrics.LinkAcked
	CtrLinkAckSent  = metrics.LinkAckSent
	CtrLinkRetries  = metrics.LinkRetries
	CtrLinkFailures = metrics.LinkFailures
	CtrLinkFlushed  = metrics.LinkFlushed
	CtrQueueDrops   = metrics.QueueDrops
)

// DeathCause classifies why a device died.
type DeathCause = node.DeathCause

// Death causes.
const (
	CauseBattery  = node.CauseBattery
	CauseFailure  = node.CauseFailure
	CauseInjected = node.CauseInjected
)

// ErrCanceled marks a run stopped by context cancellation or deadline.
// Errors from RunContext, RunManyContext and RunEach match it with
// errors.Is; the context's own cause (context.Canceled,
// context.DeadlineExceeded, or a custom cancel cause) stays in the chain.
var ErrCanceled = scenario.ErrCanceled

// RunContext builds the network described by cfg, drives its reporting
// workload to the horizon, and returns the aggregated result. The
// configuration is validated first (see Config.Validate) and every
// misconfiguration — negative counts, loss rates outside [0,1),
// schedule/gateway mismatches, fault times past the horizon — comes back as
// one joined, actionable error.
//
// Cancellation and deadlines on ctx reach into the event kernel: a canceled
// run stops within one event batch (a few thousand events, microseconds of
// work) and returns an error matching ErrCanceled. A background or
// never-canceled context adds no overhead and changes no results.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	return scenario.RunContext(ctx, cfg)
}

// RunManyContext runs independent scenarios on a bounded worker pool and
// returns their results in input order, canceling the remaining runs when
// ctx fires. workers <= 0 uses one worker per CPU; workers == 1 runs
// sequentially. Results are bit-identical regardless of worker count: every
// run owns its kernel and RNG, and results are merged by submission index.
func RunManyContext(ctx context.Context, workers int, cfgs []Config) ([]Result, error) {
	return scenario.RunManyContext(ctx, workers, cfgs)
}

// RunEach is the streaming form of RunManyContext: fn receives each result
// as soon as it and all earlier runs finish — exactly once per index, in
// ascending submission order, on the calling goroutine — so a sweep's early
// results are consumable while later runs still execute. The delivered
// results are byte-identical to what RunManyContext returns. The first
// error seen (validation or cancellation) is also the return value.
func RunEach(ctx context.Context, workers int, cfgs []Config, fn func(i int, r Result, err error)) error {
	return scenario.RunEach(ctx, workers, cfgs, fn)
}

// Run is the legacy panicking form of RunContext: no cancellation, and an
// invalid configuration panics. Kept for existing callers and quick
// experiments; new code should prefer RunContext.
func Run(cfg Config) Result { return scenario.Run(cfg) }

// RunE is the legacy non-cancellable form of RunContext, equivalent to
// RunContext(context.Background(), cfg).
func RunE(cfg Config) (Result, error) { return scenario.RunE(cfg) }

// RunMany is the legacy form of RunManyContext: no cancellation, and any
// validation error panics. New code should prefer RunManyContext or RunEach.
func RunMany(workers int, cfgs []Config) []Result { return scenario.RunMany(workers, cfgs) }

// Build constructs the network for cfg without starting traffic, for callers
// that want to inject attackers or custom workloads first. It panics on an
// invalid configuration; use BuildE for the error-returning form. Like Run,
// it is a legacy entry point: a hand-driven Net bypasses the cancellation
// machinery of RunContext, so prefer expressing the scenario declaratively
// when the hooks below suffice.
//
// Scheduled failures are better expressed declaratively via Config.Faults,
// which keeps runs reproducible under RunMany and yields a Reliability
// summary. The imperative hooks remain for what a schedule cannot express:
// Config.Mutate for installing adversary stacks, trace taps and replayers
// once the network exists, and Config.StackWrapper for compromising a
// subset of otherwise-legitimate nodes in place (insider attacks).
func Build(cfg Config) *Net { return scenario.Build(cfg) }

// BuildE is Build with error reporting instead of panics.
func BuildE(cfg Config) (*Net, error) { return scenario.BuildE(cfg) }

// GatewayID returns the node ID of the i-th gateway in a scenario.
func GatewayID(i int) NodeID { return scenario.GatewayID(i) }

// Deployment strategies for Config.Deploy.
type (
	// UniformDeploy scatters sensors uniformly at random.
	UniformDeploy = geom.Uniform
	// GridDeploy places sensors on a jittered lattice.
	GridDeploy = geom.Grid
	// ClusterDeploy concentrates sensors in Gaussian clusters.
	ClusterDeploy = geom.Clusters
	// HotspotDeploy concentrates a fraction of sensors in a sub-region.
	HotspotDeploy = geom.Hotspot
)

// Square returns a side x side region at the origin.
func Square(side float64) Rect { return geom.Square(side) }

// Energy models for Config.EnergyModel.
type (
	// FixedPerBitEnergy charges constant energy per bit (§5.2 assumption).
	FixedPerBitEnergy = energy.FixedPerBit
	// FirstOrderEnergy is the Heinzelman first-order radio model.
	FirstOrderEnergy = energy.FirstOrder
	// EnergyStats summarizes per-node energy use.
	EnergyStats = energy.Stats
)

// Default energy parameterizations.
var (
	DefaultFixedEnergy      = energy.DefaultFixed
	DefaultFirstOrderEnergy = energy.DefaultFirstOrder
)

// Core protocol types, for callers assembling networks by hand (see the
// node and core packages' docs for the full surface).
type (
	// World owns the kernel, media and devices of one simulation.
	World = node.World
	// Device is one simulated node.
	Device = node.Device
	// Stack is a protocol state machine attached to a device.
	Stack = node.Stack
	// Route is a routing-table entry.
	Route = core.Route
	// Params tunes protocol timing.
	Params = core.Params
	// Rounds drives MLR gateway mobility.
	Rounds = core.Rounds
)

// Observability: the typed event bus every layer publishes into when tracing
// is enabled (Config.Obs), and the sinks that consume the stream. See
// internal/obs and cmd/wmsntrace.
type (
	// TraceBus is the observability event bus; nil disables tracing.
	TraceBus = obs.Bus
	// TraceEventRecord is one traced action with its virtual timestamp.
	TraceEventRecord = obs.Event
	// TraceEventKind discriminates traced actions (obs.LinkTx, ...).
	TraceEventKind = obs.Kind
	// TraceSink consumes traced events.
	TraceSink = obs.Sink
	// TraceSinkFunc adapts a plain function into a TraceSink.
	TraceSinkFunc = obs.SinkFunc
	// TraceRecorder is the bounded ring-buffer flight recorder.
	TraceRecorder = obs.Recorder
	// TraceSeries is the time-bucketed series sink.
	TraceSeries = obs.Series
)

// Traced event kinds, re-exported for sinks written against the root API.
const (
	TracePacketGenerated = obs.PacketGenerated
	TracePacketDelivered = obs.PacketDelivered
	TracePacketExpired   = obs.PacketExpired
	TraceLinkTx          = obs.LinkTx
	TraceLinkAck         = obs.LinkAck
	TraceLinkRetry       = obs.LinkRetry
	TraceLinkFailure     = obs.LinkFailure
	TraceQueueDrop       = obs.QueueDrop
	TraceFrameLost       = obs.FrameLost
	TraceReroute         = obs.Reroute
	TraceFaultInjected   = obs.FaultInjected
	TraceGatewayDeath    = obs.GatewayDeath
	TraceNodeDeath       = obs.NodeDeath
	TraceNodeRecover     = obs.NodeRecover
	TraceSample          = obs.Sample
)

// NewTraceBus returns an event bus with the given sinks attached.
func NewTraceBus(sinks ...obs.Sink) *TraceBus { return obs.NewBus(sinks...) }

// NewTraceRecorder returns a flight recorder keeping the last n events.
func NewTraceRecorder(n int) *TraceRecorder { return obs.NewRecorder(n) }

// NewWorld builds an empty world with the given seed and defaults.
func NewWorld(seed int64) *World { return node.NewWorld(node.Config{Seed: seed}) }

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics { return core.NewMetrics() }

// DefaultParams returns the default protocol parameters.
func DefaultParams() Params { return core.DefaultParams() }

// Protocol stack constructors (sensor side / gateway side).
var (
	NewSPRSensor     = core.NewSPRSensor
	NewSPRGateway    = core.NewSPRGateway
	NewMLRSensor     = core.NewMLRSensor
	NewMLRGateway    = core.NewMLRGateway
	NewSecMLRSensor  = core.NewSecMLRSensor
	NewSecMLRGateway = core.NewSecMLRGateway
	ProvisionKeys    = core.ProvisionKeys
)

// Mesh backbone (the middle layer of the architecture).
type (
	// MeshRouter is a link-state router on a mesh-capable device.
	MeshRouter = mesh.Router
	// MeshBackbone wires devices into one routed mesh.
	MeshBackbone = mesh.Backbone
	// MeshConfig tunes the mesh control plane.
	MeshConfig = mesh.Config
)

// Mesh constructors.
var (
	NewMeshRouter     = mesh.NewRouter
	NewMeshBackbone   = mesh.NewBackbone
	DefaultMeshConfig = mesh.DefaultConfig
)

// Attacks, for security evaluations.
type (
	// SelectiveForwarder drops a fraction of forwarded data (grayhole).
	SelectiveForwarder = attack.SelectiveForwarder
	// Replayer captures and re-injects packets.
	Replayer = attack.Replayer
	// Sinkhole forges irresistible routes and swallows traffic.
	Sinkhole = attack.Sinkhole
	// HelloFlood broadcasts forged long-range gateway notifications.
	HelloFlood = attack.HelloFlood
	// Sybil originates data under forged identities.
	Sybil = attack.Sybil
	// AckSpoofer drops data and fakes gateway acknowledgments.
	AckSpoofer = attack.AckSpoofer
)

// Attack constructors.
var (
	NewReplayer = attack.NewReplayer
	NewWormhole = attack.NewWormhole
)

// Baseline stacks.
var (
	NewFloodingStack  = baseline.NewFlooding
	NewGossipingStack = baseline.NewGossiping
	NewDirectStack    = baseline.NewDirect
	NewMCFAStack      = baseline.NewMCFA
	NewLEACHStack     = baseline.NewLEACH
	NewPEGASISStack   = baseline.NewPEGASIS
	NewSPINStack      = baseline.NewSPIN
	NewRumorStack     = baseline.NewRumorNode
	NewDiffusionStack = baseline.NewDiffusion
	NewDiffusionSink  = baseline.NewDiffusionSink
	NewSinkStack      = baseline.NewSink
)

// Placement models (§4.1).
type (
	// PlacementStrategy places k gateways for a sensor field.
	PlacementStrategy = placement.Strategy
	// PlacementEval summarizes hop statistics of a placement.
	PlacementEval = placement.Eval
)

// Placement helpers.
var (
	EvaluatePlacement = placement.Evaluate
	RotationSchedule  = placement.RotationSchedule
	SlidingSchedule   = placement.SlidingSchedule
	Kmax              = placement.Kmax
)

// Graph is the unit-disk connectivity view of a deployment.
type Graph = network.Graph

// GraphFromWorld builds the sensor-layer connectivity graph of a world.
func GraphFromWorld(w *World) *Graph { return network.FromWorld(w) }

// Experiments exposes the reproduction suite (E1..E14) programmatically;
// cmd/wmsnbench is its CLI.
type (
	// Experiment is one reproduction experiment.
	Experiment = experiments.Experiment
	// ExperimentOpts scales an experiment run.
	ExperimentOpts = experiments.Opts
	// Table is an aligned text table of results.
	Table = trace.Table
)

// AllExperiments returns the suite in order.
func AllExperiments() []Experiment { return experiments.All() }
