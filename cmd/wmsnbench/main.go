// Command wmsnbench regenerates every reproduced table and figure of the
// paper (the E1..E12 suite indexed in DESIGN.md) and prints them as text
// tables. Run with -quick for a fast smoke pass, or -only E4,E5 to select
// specific experiments. Independent runs within each experiment execute on
// a worker pool (-workers, default one per CPU); the output is byte-identical
// to a sequential run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wmsn/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced-scale variant of each experiment")
	seeds := flag.Int("seeds", 0, "override the number of seeds per data point (0 = per-experiment default)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E1,E9); empty runs all")
	list := flag.Bool("list", false, "list experiments and exit")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	workers := flag.Int("workers", 0, "parallel runs per experiment (0 = one per CPU, 1 = sequential); output is identical either way")
	flag.Parse()

	suite := experiments.All()
	if *list {
		for _, e := range suite {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	opts := experiments.Opts{Quick: *quick, Seeds: *seeds, Workers: *workers}
	ran := 0
	for _, e := range suite {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		ran++
		start := time.Now()
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		for _, tbl := range e.Run(opts) {
			if *csvOut {
				if err := tbl.RenderCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
				fmt.Println()
			} else {
				fmt.Println(tbl.String())
			}
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
}
