package network

import (
	"math"
	"sort"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Topology control (§4.4): "Current topology control technologies fall into
// two categories: power control and sleep scheduling."

// PowerControlK computes, for each node, the minimal transmission range that
// keeps at least k neighbors reachable (or all other nodes when fewer than
// k exist), clamped to maxRange. This is the classic k-neighbor power
// control: shrinking ranges saves transmission energy and reduces contention
// while preserving local connectivity.
func PowerControlK(pos map[packet.NodeID]geom.Point, k int, maxRange float64) map[packet.NodeID]float64 {
	out := make(map[packet.NodeID]float64, len(pos))
	ids := make([]packet.NodeID, 0, len(pos))
	for id := range pos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// One scratch buffer reused across the per-node loop: the distance list
	// has the same capacity requirement (n-1) for every node.
	dists := make([]float64, 0, len(ids))
	for _, id := range ids {
		dists = dists[:0]
		for _, other := range ids {
			if other == id {
				continue
			}
			dists = append(dists, pos[id].Dist(pos[other]))
		}
		sort.Float64s(dists)
		idx := k - 1
		if idx >= len(dists) {
			idx = len(dists) - 1
		}
		r := maxRange
		if idx >= 0 && idx < len(dists) && dists[idx] < maxRange {
			r = dists[idx]
		}
		if len(dists) == 0 {
			r = 0
		}
		out[id] = r
	}
	return out
}

// ApplyRanges installs per-node ranges onto a world's sensor stations.
// Unknown IDs and dead devices are skipped.
func ApplyRanges(w *node.World, ranges map[packet.NodeID]float64) {
	for id, r := range ranges {
		d := w.Device(id)
		if d == nil || !d.Alive() || d.SensorStation() == nil {
			continue
		}
		d.SensorStation().SetRange(r)
	}
}

// SleepScheduler duty-cycles sensor radios: each node listens for
// OnFraction of every Period, with a per-node phase offset so the whole
// network is never deaf at once. Transmission is always allowed; only the
// receiver sleeps (matching low-power-listening practice).
type SleepScheduler struct {
	Period     sim.Duration
	OnFraction float64

	world   *node.World
	targets []packet.NodeID
	stopped bool
}

// NewSleepScheduler creates a scheduler over the given sensor IDs; empty ids
// selects every sensor in the world.
func NewSleepScheduler(w *node.World, period sim.Duration, onFraction float64, ids []packet.NodeID) *SleepScheduler {
	if onFraction < 0 {
		onFraction = 0
	}
	if onFraction > 1 {
		onFraction = 1
	}
	if len(ids) == 0 {
		for _, d := range w.DevicesOfKind(node.Sensor) {
			ids = append(ids, d.ID())
		}
	}
	return &SleepScheduler{Period: period, OnFraction: onFraction, world: w, targets: ids}
}

// Start begins duty cycling. Each node wakes at a random phase within the
// first period (deterministic under the world seed).
func (s *SleepScheduler) Start() {
	if s.OnFraction >= 1 {
		return // always on; nothing to schedule
	}
	k := s.world.Kernel()
	onSpan := sim.Duration(float64(s.Period) * s.OnFraction)
	for _, id := range s.targets {
		id := id
		phase := sim.Duration(k.Rand().Int63n(int64(s.Period)))
		var cycle func()
		cycle = func() {
			if s.stopped {
				return
			}
			d := s.world.Device(id)
			if d == nil || !d.Alive() || d.SensorStation() == nil {
				return
			}
			d.SensorStation().SetListening(true)
			k.After(onSpan, func() {
				if s.stopped {
					return
				}
				if d := s.world.Device(id); d != nil && d.Alive() && d.SensorStation() != nil {
					d.SensorStation().SetListening(false)
				}
				k.After(s.Period-onSpan, cycle)
			})
		}
		k.After(phase, cycle)
	}
}

// Stop halts future duty-cycle transitions and wakes every surviving target
// so the network is usable again.
func (s *SleepScheduler) Stop() {
	s.stopped = true
	for _, id := range s.targets {
		if d := s.world.Device(id); d != nil && d.Alive() && d.SensorStation() != nil {
			d.SensorStation().SetListening(true)
		}
	}
}

// GAFScheduler implements GAF (Geographic Adaptive Fidelity, §2.2.3 [26]):
// the field is divided into virtual grid cells of edge range/√5 — small
// enough that any node in a cell can talk to any node in each adjacent
// cell — making all nodes within a cell equivalent for routing. One leader
// per cell keeps its radio on; the others sleep, and leadership rotates
// every Term so the duty burden is shared.
type GAFScheduler struct {
	// CellEdge is the virtual grid edge; 0 derives range/√5 from the first
	// target's radio range.
	CellEdge float64
	// Term is the leadership rotation period.
	Term sim.Duration

	world   *node.World
	cells   map[[2]int][]packet.NodeID
	turn    int
	stopped bool
	rep     *sim.Repeater
}

// NewGAFScheduler builds the virtual grid over the given sensors (all
// sensors when ids is empty).
func NewGAFScheduler(w *node.World, cellEdge float64, term sim.Duration, ids []packet.NodeID) *GAFScheduler {
	if len(ids) == 0 {
		for _, d := range w.DevicesOfKind(node.Sensor) {
			ids = append(ids, d.ID())
		}
	}
	g := &GAFScheduler{CellEdge: cellEdge, Term: term, world: w,
		cells: make(map[[2]int][]packet.NodeID)}
	for _, id := range ids {
		d := w.Device(id)
		if d == nil || d.SensorStation() == nil {
			continue
		}
		if g.CellEdge <= 0 {
			g.CellEdge = d.SensorStation().Range() / math.Sqrt(5)
		}
		p := d.Pos()
		key := [2]int{int(math.Floor(p.X / g.CellEdge)), int(math.Floor(p.Y / g.CellEdge))}
		g.cells[key] = append(g.cells[key], id)
	}
	// Deterministic member order within each cell.
	for _, members := range g.cells {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	}
	return g
}

// Cells returns the number of occupied grid cells.
func (g *GAFScheduler) Cells() int { return len(g.cells) }

// Leader returns the current leader of the cell containing id, or
// packet.None when id is unknown.
func (g *GAFScheduler) Leader(id packet.NodeID) packet.NodeID {
	for _, members := range g.cells {
		for _, m := range members {
			if m == id {
				return g.leaderOf(members)
			}
		}
	}
	return packet.None
}

func (g *GAFScheduler) leaderOf(members []packet.NodeID) packet.NodeID {
	// Rotate through living members; the turn counter advances per term.
	for off := 0; off < len(members); off++ {
		id := members[(g.turn+off)%len(members)]
		if d := g.world.Device(id); d != nil && d.Alive() {
			return id
		}
	}
	return packet.None
}

// Start applies the first leadership assignment and begins rotating.
func (g *GAFScheduler) Start() {
	g.apply()
	g.rep = g.world.Kernel().Every(g.Term, func() {
		if g.stopped {
			return
		}
		g.turn++
		g.apply()
	})
}

func (g *GAFScheduler) apply() {
	for _, members := range g.cells {
		leader := g.leaderOf(members)
		for _, id := range members {
			d := g.world.Device(id)
			if d == nil || !d.Alive() || d.SensorStation() == nil {
				continue
			}
			d.SensorStation().SetListening(id == leader)
		}
	}
}

// Stop halts rotation and wakes every surviving node.
func (g *GAFScheduler) Stop() {
	g.stopped = true
	if g.rep != nil {
		g.rep.Stop()
	}
	for _, members := range g.cells {
		for _, id := range members {
			if d := g.world.Device(id); d != nil && d.Alive() && d.SensorStation() != nil {
				d.SensorStation().SetListening(true)
			}
		}
	}
}
