package radio

import (
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Steady-state cost of one transmit+deliver cycle to a single receiver: the
// only allocation left is the per-receiver packet clone (one struct; the
// test packet has no path, payload or security envelope). Events come from
// the kernel pool, deliveries from the medium pool, the receiver set from
// the scratch buffer, and no closure or Timer is created.
func TestTransmitDeliverAllocsPinned(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000})
	a := m.Attach(1, geom.Point{}, 50, nil)
	got := 0
	m.Attach(2, geom.Point{X: 10}, 50, func(*packet.Packet) { got++ })
	pkt := testPkt(1)
	// Warm every pool and backing array.
	for i := 0; i < 64; i++ {
		m.Transmit(a, pkt)
	}
	k.RunAll()
	avg := testing.AllocsPerRun(200, func() {
		m.Transmit(a, pkt)
		k.RunAll()
	})
	if avg > 1 {
		t.Fatalf("transmit+deliver allocates %.2f per cycle, want <=1 (the packet clone)", avg)
	}
	if got == 0 {
		t.Fatal("nothing delivered")
	}
}

// The collision model's pending lists must not break delivery pooling: under
// sustained overlapping traffic the steady-state allocation stays pinned to
// the per-receiver clones.
func TestTransmitAllocsPinnedWithCollisions(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000, Collisions: true})
	a := m.Attach(1, geom.Point{}, 50, nil)
	m.Attach(2, geom.Point{X: 10}, 50, func(*packet.Packet) {})
	pkt := testPkt(1)
	for i := 0; i < 64; i++ {
		m.Transmit(a, pkt)
	}
	k.RunAll()
	avg := testing.AllocsPerRun(200, func() {
		m.Transmit(a, pkt) // overlapping pair: both corrupt, both recycle
		m.Transmit(a, pkt)
		k.RunAll()
	})
	if avg > 2 {
		t.Fatalf("collision-model cycle allocates %.2f, want <=2 (two clones)", avg)
	}
}

// Recycled deliveries must not alias: a delivery handed to one receiver
// stays intact after its struct is reused for later traffic.
func TestDeliveryRecyclingDoesNotAlias(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000})
	a := m.Attach(1, geom.Point{}, 50, nil)
	var seqs []uint32
	m.Attach(2, geom.Point{X: 10}, 50, func(p *packet.Packet) { seqs = append(seqs, p.Seq) })
	for i := 0; i < 20; i++ {
		pkt := testPkt(1)
		pkt.Seq = uint32(i)
		m.Transmit(a, pkt)
		k.RunAll()
	}
	if len(seqs) != 20 {
		t.Fatalf("delivered %d packets, want 20", len(seqs))
	}
	for i, s := range seqs {
		if s != uint32(i) {
			t.Fatalf("delivery %d carried seq %d (recycled delivery aliased)", i, s)
		}
	}
}

// BenchmarkTransmitDeliver measures the full one-hop cycle the end-to-end
// benchmarks are dominated by.
func BenchmarkTransmitDeliver(b *testing.B) {
	k := sim.NewKernel(1)
	m := New(k, Config{BitRate: 250_000})
	a := m.Attach(1, geom.Point{}, 50, nil)
	for i := 0; i < 8; i++ {
		m.Attach(packet.NodeID(2+i), geom.Point{X: float64(i + 1)}, 50, func(*packet.Packet) {})
	}
	pkt := testPkt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transmit(a, pkt)
		k.RunAll()
	}
}
