// Package network provides the connectivity-graph view of a deployed WMSN:
// unit-disk adjacency, reference shortest paths (the optimum SPR should
// find), connectivity analysis used by the deployment tools, and the
// topology-control mechanisms of §4.4 (power control and sleep scheduling).
package network

import (
	"fmt"
	"slices"
	"sort"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
)

// Graph is an undirected unit-disk connectivity graph. Vertices are node
// IDs; an edge joins two vertices whose distance is within both their
// ranges ("two nodes can immediately communicate with each other", §5.1).
type Graph struct {
	ids []packet.NodeID
	pos map[packet.NodeID]geom.Point
	adj map[packet.NodeID][]packet.NodeID
}

// Build constructs the graph for the given positions and per-node ranges.
// A link requires dist ≤ min(range[a], range[b]) so that every edge is
// bidirectional.
//
// Candidate neighbors come from a uniform grid query of radius range[a]
// (min(ra, rb) ≤ ra, so no edge partner can be missed), making construction
// O(n·degree) on near-uniform fields instead of O(n²). Adjacency lists are
// identical to the pairwise scan this replaces: each list is ascending, and
// only nodes with at least one edge get a list.
func Build(pos map[packet.NodeID]geom.Point, ranges map[packet.NodeID]float64) *Graph {
	g := &Graph{
		pos: make(map[packet.NodeID]geom.Point, len(pos)),
		adj: make(map[packet.NodeID][]packet.NodeID, len(pos)),
	}
	for id, p := range pos {
		g.ids = append(g.ids, id)
		g.pos[id] = p
	}
	sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
	if len(g.ids) < 2 {
		return g
	}
	pts := make([]geom.Point, len(g.ids))
	rng := make([]float64, len(g.ids))
	maxR := 0.0
	for i, id := range g.ids {
		pts[i] = g.pos[id]
		rng[i] = ranges[id]
		if rng[i] > maxR {
			maxR = rng[i]
		}
	}
	cell := maxR
	if !(cell > 0) { // all ranges non-positive: cell size is perf-only
		cell = 1
	}
	grid := geom.NewStaticGrid(pts, cell)
	// The grid prefilter compares squared distances, which is not exactly
	// the old Dist ≤ r test when r is itself a rounded sqrt — and
	// PowerControlK produces ranges sitting exactly on neighbor distances.
	// Pad the query radius a hair so the candidate set is a strict superset,
	// then decide membership with the verbatim original predicate.
	var buf []int32
	for i, a := range g.ids {
		buf = grid.AppendWithin(buf[:0], pts[i], rng[i]*(1+1e-12), int32(i))
		slices.Sort(buf)
		for _, jj := range buf {
			j := int(jj)
			if j <= i {
				continue // each pair handled once, from its lower index
			}
			r := rng[i]
			if rng[j] < r {
				r = rng[j]
			}
			if pts[i].Dist(pts[j]) <= r {
				b := g.ids[j]
				g.adj[a] = append(g.adj[a], b)
				g.adj[b] = append(g.adj[b], a)
			}
		}
	}
	return g
}

// FromWorld builds the sensor-layer connectivity graph of a world,
// considering only living devices that have a sensor-layer radio (sensors
// and gateways).
func FromWorld(w *node.World) *Graph {
	pos := make(map[packet.NodeID]geom.Point)
	ranges := make(map[packet.NodeID]float64)
	for _, d := range w.Devices() {
		if !d.Alive() || d.SensorStation() == nil {
			continue
		}
		pos[d.ID()] = d.SensorStation().Pos()
		ranges[d.ID()] = d.SensorStation().Range()
	}
	return Build(pos, ranges)
}

// IDs returns all vertices in ascending order.
func (g *Graph) IDs() []packet.NodeID { return g.ids }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.ids) }

// Pos returns the position of id.
func (g *Graph) Pos(id packet.NodeID) geom.Point { return g.pos[id] }

// Has reports whether id is a vertex.
func (g *Graph) Has(id packet.NodeID) bool { _, ok := g.pos[id]; return ok }

// Neighbors returns id's adjacency list in ascending order.
func (g *Graph) Neighbors(id packet.NodeID) []packet.NodeID { return g.adj[id] }

// Degree returns the number of neighbors of id.
func (g *Graph) Degree(id packet.NodeID) int { return len(g.adj[id]) }

// AvgDegree returns the mean vertex degree.
func (g *Graph) AvgDegree() float64 {
	if len(g.ids) == 0 {
		return 0
	}
	total := 0
	for _, id := range g.ids {
		total += len(g.adj[id])
	}
	return float64(total) / float64(len(g.ids))
}

// Unreachable marks an infinite BFS distance.
const Unreachable = int(^uint(0) >> 1)

// BFS computes hop distances and BFS parents from src. Vertices not reached
// are absent from both maps.
func (g *Graph) BFS(src packet.NodeID) (dist map[packet.NodeID]int, parent map[packet.NodeID]packet.NodeID) {
	dist = make(map[packet.NodeID]int)
	parent = make(map[packet.NodeID]packet.NodeID)
	if !g.Has(src) {
		return dist, parent
	}
	dist[src] = 0
	queue := []packet.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if _, seen := dist[v]; !seen {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// MultiSourceHops returns, for every vertex reachable from any of srcs, the
// hop distance to the nearest source — one BFS from all sources at once.
// Evaluating "hops to the nearest gateway" for every sensor this way costs
// O(V+E) total, where a NearestOf call per sensor would repeat a full BFS
// each time. Unknown source IDs are ignored; vertices reaching no source
// are absent from the map.
func (g *Graph) MultiSourceHops(srcs []packet.NodeID) map[packet.NodeID]int {
	dist := make(map[packet.NodeID]int, len(g.ids))
	queue := make([]packet.NodeID, 0, len(srcs))
	for _, s := range srcs {
		if !g.Has(s) {
			continue
		}
		if _, seen := dist[s]; seen {
			continue
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if _, seen := dist[v]; !seen {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Hops returns the hop distance from src to dst, or Unreachable.
func (g *Graph) Hops(src, dst packet.NodeID) int {
	dist, _ := g.BFS(src)
	if d, ok := dist[dst]; ok {
		return d
	}
	return Unreachable
}

// ShortestPath returns a minimum-hop path from src to dst inclusive, or nil
// when unreachable.
func (g *Graph) ShortestPath(src, dst packet.NodeID) []packet.NodeID {
	dist, parent := g.BFS(src)
	if _, ok := dist[dst]; !ok {
		return nil
	}
	var rev []packet.NodeID
	for at := dst; ; {
		rev = append(rev, at)
		if at == src {
			break
		}
		at = parent[at]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// NearestOf returns the destination in dsts with the fewest hops from src
// and that hop count; ties break toward the smaller ID. Returns
// (packet.None, Unreachable) when none is reachable.
func (g *Graph) NearestOf(src packet.NodeID, dsts []packet.NodeID) (packet.NodeID, int) {
	dist, _ := g.BFS(src)
	best, bestHops := packet.None, Unreachable
	for _, d := range dsts {
		h, ok := dist[d]
		if !ok {
			continue
		}
		if h < bestHops || (h == bestHops && d < best) {
			best, bestHops = d, h
		}
	}
	return best, bestHops
}

// Connected reports whether the graph is a single connected component (an
// empty graph counts as connected).
func (g *Graph) Connected() bool { return len(g.Components()) <= 1 }

// Components returns the connected components, each sorted ascending, in
// order of their smallest member.
func (g *Graph) Components() [][]packet.NodeID {
	seen := make(map[packet.NodeID]bool, len(g.ids))
	var comps [][]packet.NodeID
	for _, start := range g.ids {
		if seen[start] {
			continue
		}
		var comp []packet.NodeID
		queue := []packet.NodeID{start}
		seen[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// AvgHopsToNearest returns the average over srcs of the hop distance to the
// nearest of dsts, counting only reachable sources, plus the count of
// unreachable sources. This is the paper's Fig. 2 / E1 metric.
func (g *Graph) AvgHopsToNearest(srcs, dsts []packet.NodeID) (avg float64, unreachable int) {
	total, n := 0, 0
	for _, s := range srcs {
		_, h := g.NearestOf(s, dsts)
		if h == Unreachable {
			unreachable++
			continue
		}
		total += h
		n++
	}
	if n == 0 {
		return 0, unreachable
	}
	return float64(total) / float64(n), unreachable
}

// VerifySubpathOptimality checks Property 1 of §5.2 on the shortest path
// from src to dst: every suffix of a shortest path must itself be a
// shortest path. It returns an error describing the first violation (which,
// for a correct BFS, never happens — the test suite uses this as an oracle).
func (g *Graph) VerifySubpathOptimality(src, dst packet.NodeID) error {
	path := g.ShortestPath(src, dst)
	if path == nil {
		return nil
	}
	for i := 1; i < len(path); i++ {
		want := len(path) - 1 - i
		if got := g.Hops(path[i], dst); got != want {
			return fmt.Errorf("suffix from %v has %d hops, expected %d", path[i], got, want)
		}
	}
	return nil
}
