package baseline

import (
	"testing"

	"wmsn/internal/core"
	"wmsn/internal/energy"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// pegasisWorld builds a PEGASIS chain over a line of sensors with the sink
// off-field, LEACH-style.
func pegasisWorld(t testing.TB, n int) (*node.World, *core.Metrics, *PegasisChain, []*PEGASIS) {
	t.Helper()
	w := node.NewWorld(node.Config{Seed: 5, EnergyModel: energy.DefaultFirstOrder})
	m := core.NewMetrics()
	sinkID := packet.NodeID(1000)
	sinkPos := geom.Point{X: float64(n) * 10, Y: 120}
	pos := map[packet.NodeID]geom.Point{}
	for i := 0; i < n; i++ {
		pos[packet.NodeID(i+1)] = geom.Point{X: float64(i) * 10}
	}
	chain := NewPegasisChain(sinkID, sinkPos, pos)
	var stacks []*PEGASIS
	for id, p := range pos {
		st := NewPEGASIS(m, chain)
		stacks = append(stacks, st)
		w.AddSensor(id, p, 30, 5.0, st)
	}
	w.AddGateway(sinkID, sinkPos, 500, 500, NewLEACHSink(m))
	return w, m, chain, stacks
}

func TestPegasisChainConstruction(t *testing.T) {
	// Line with the sink beyond the right end: the chain must start at the
	// farthest node (the left end, node 1) and follow the line greedily.
	_, _, chain, _ := pegasisWorld(t, 6)
	order := chain.Order()
	if len(order) != 6 {
		t.Fatalf("chain covers %d of 6 nodes", len(order))
	}
	// The farthest node from the sink at (60,120) is node 1 at (0,0).
	if order[0] != 1 {
		t.Fatalf("chain starts at %v, want the farthest node n1 (order %v)", order[0], order)
	}
	// Greedy from a line endpoint follows the line.
	for i, id := range order {
		if id != packet.NodeID(i+1) {
			t.Fatalf("chain order %v is not the line order", order)
		}
	}
}

func TestPegasisDeliversAllReadings(t *testing.T) {
	w, m, chain, stacks := pegasisWorld(t, 8)
	rounds := &PegasisRounds{World: w, Chain: chain, RoundLen: 5 * sim.Second}
	rounds.Start()
	rep := w.Kernel().Every(2*sim.Second, func() {
		for _, st := range stacks {
			st.OriginateData([]byte("r"))
		}
	})
	w.Run(30 * sim.Second)
	rep.Stop()
	rounds.Stop()
	w.Run(40 * sim.Second)
	if m.DeliveryRatio() < 0.8 {
		t.Fatalf("PEGASIS delivery = %v (%d of %d)", m.DeliveryRatio(), m.Delivered, m.Generated)
	}
	// Aggregation: the sink receives one long-hop packet per round, not one
	// per reading.
	if m.DataSent >= m.Generated*2 {
		t.Fatalf("DataSent %d vs Generated %d: chain fusion is not aggregating", m.DataSent, m.Generated)
	}
}

func TestPegasisLeaderRotates(t *testing.T) {
	_, _, chain, _ := pegasisWorld(t, 5)
	seen := map[packet.NodeID]bool{}
	for i := 0; i < 5; i++ {
		chain.BeginRound()
		seen[chain.Leader()] = true
	}
	if len(seen) < 4 {
		t.Fatalf("leadership rotated over only %d nodes in 5 rounds", len(seen))
	}
}

func TestPegasisSurvivesDeadChainMember(t *testing.T) {
	w, m, chain, stacks := pegasisWorld(t, 6)
	// Kill a mid-chain node; tokens must skip over it.
	w.Device(3).Fail()
	rounds := &PegasisRounds{World: w, Chain: chain, RoundLen: 5 * sim.Second}
	rounds.Start()
	for _, st := range stacks {
		st.OriginateData([]byte("r"))
	}
	w.Run(20 * sim.Second)
	rounds.Stop()
	// 5 living nodes generated 6 readings minus the dead node's; at least
	// the living nodes' readings arrive.
	if m.Delivered < 5 {
		t.Fatalf("delivered %d of %d with one dead chain member", m.Delivered, m.Generated)
	}
}

func TestPegasisEmptyChain(t *testing.T) {
	c := NewPegasisChain(1000, geom.Point{}, nil)
	if len(c.Order()) != 0 || c.Leader() != packet.None {
		t.Fatal("empty chain misbehaves")
	}
	c.BeginRound() // must not panic
}

func TestSPINNegotiationDelivers(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 2})
	m := core.NewMetrics()
	var stacks []*SPIN
	for i, pos := range line(6, 0, 10) {
		st := NewSPIN(m)
		stacks = append(stacks, st)
		w.AddSensor(packet.NodeID(i+1), pos, 12, 0, st)
	}
	w.AddGateway(1000, geom.Point{X: 60}, 12, 100, NewSPINSink(m))
	stacks[0].OriginateData([]byte("a large sensed payload that dwarfs its descriptor"))
	w.Run(10 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("SPIN delivered %d", m.Delivered)
	}
	// The negotiation happened: ADVs and REQs flowed.
	var advs, reqs uint64
	for _, st := range stacks {
		advs += st.Advs
		reqs += st.Reqs
	}
	if advs == 0 || reqs == 0 {
		t.Fatalf("no negotiation: %d ADVs, %d REQs", advs, reqs)
	}
}

func TestSPINSuppressesRedundantData(t *testing.T) {
	// Dense clique: under flooding every node retransmits the DATA; under
	// SPIN a node that already holds the data never requests it again, so
	// DATA transmissions stay near the node count.
	w := node.NewWorld(node.Config{Seed: 3})
	m := core.NewMetrics()
	var stacks []*SPIN
	const n = 10
	for i := 0; i < n; i++ {
		st := NewSPIN(m)
		stacks = append(stacks, st)
		w.AddSensor(packet.NodeID(i+1), geom.Point{X: float64(i), Y: float64(i % 3)}, 50, 0, st)
	}
	w.AddGateway(1000, geom.Point{X: 5, Y: 10}, 50, 100, NewSPINSink(m))
	stacks[0].OriginateData([]byte("payload"))
	w.Run(10 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("delivered %d", m.Delivered)
	}
	var datas uint64
	for _, st := range stacks {
		datas += st.Datas
	}
	// Every node must receive the data once (n-1 transfers) plus the sink;
	// but no node should transmit it redundantly to holders. Allow some
	// slack for concurrent REQs crossing in flight.
	if datas > 3*n {
		t.Fatalf("%d DATA transmissions in a %d-clique; suppression broken", datas, n)
	}
}

func TestSPINMetaRoundTrip(t *testing.T) {
	origin, seq, ok := parseSpinMeta(spinMeta(42, 7))
	if !ok || origin != 42 || seq != 7 {
		t.Fatalf("meta round trip: %v %v %v", origin, seq, ok)
	}
	if _, _, ok := parseSpinMeta([]byte{1, 2}); ok {
		t.Fatal("short meta parsed")
	}
}
