// Package obs is the event-tracing observability layer of the simulator: a
// typed event bus that the kernel-adjacent layers (radio medium, link ARQ,
// routing stacks, fault injector, node lifecycle, metrics) publish into, and
// a small set of pluggable sinks that consume the stream — a bounded
// ring-buffer flight recorder (Recorder), a JSONL streaming writer (JSONL),
// an unbounded in-memory capture (Capture) and a time-bucketed series
// accumulator (Series).
//
// The bus is deliberately dumb: an Event is a flat value struct (no
// interfaces, no heap indirection), Emit fans it out to every attached sink,
// and a nil *Bus is a valid, inert bus — every layer holds a possibly-nil
// bus pointer and guards its hottest emission sites with Bus.Active(), so a
// run without tracing executes exactly the same instructions and allocates
// exactly the same memory as before this package existed.
//
// Determinism: events carry virtual (sim.Kernel) timestamps and are emitted
// synchronously from kernel callbacks, so a traced run produces a
// byte-identical event stream for a given (Config, Seed) no matter how many
// RunMany workers execute sibling runs — each run must simply own its bus.
package obs

import (
	"encoding/json"
	"fmt"

	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Kind discriminates event types. The set is fixed at compile time so sinks
// can back per-kind accumulators with arrays.
type Kind uint8

// Event kinds. The packet-lifecycle kinds (generated, link hops, delivered /
// expired) are what cmd/wmsntrace reconstructs per-packet journeys from; the
// fault and reroute kinds anchor recovery-window analysis; Sample carries
// periodically sampled gauges (queue depth, in-flight, energy) that no
// discrete event can express.
const (
	PacketGenerated Kind = iota // a data packet left its origin
	PacketDelivered             // a gateway accepted a fresh data packet
	PacketExpired               // a data packet died mid-path (Detail = reason)
	LinkTx                      // a unicast DATA frame was put on the air (per attempt)
	LinkAck                     // the sender matched a LINK-ACK for its in-flight frame
	LinkRetry                   // an ACK wait expired and the frame was retransmitted
	LinkFailure                 // the link retry budget was exhausted; hop declared dead
	QueueDrop                   // a frame was rejected by a full forwarding queue
	FrameLost                   // the radio dropped a unicast DATA copy at its addressee
	Reroute                     // a routing stack replaced or rediscovered a route
	FaultInjected               // the fault injector executed a disruptive plan event
	GatewayDeath                // a gateway died (any cause)
	NodeDeath                   // a non-gateway device died (any cause)
	NodeRecover                 // a dead device was revived
	Sample                      // periodic gauge sample (Detail = gauge name, Value = value)
	AttackInjected              // the fault injector swapped a node's stack for an adversary
	AttackDrop                  // an adversary stack swallowed a packet it should have forwarded
	AttackInject                // an adversary stack put a forged or replayed packet on the air
	numKinds
)

var kindNames = [numKinds]string{
	PacketGenerated: "packet_generated",
	PacketDelivered: "packet_delivered",
	PacketExpired:   "packet_expired",
	LinkTx:          "link_tx",
	LinkAck:         "link_ack",
	LinkRetry:       "link_retry",
	LinkFailure:     "link_failure",
	QueueDrop:       "queue_drop",
	FrameLost:       "frame_lost",
	Reroute:         "reroute",
	FaultInjected:   "fault_injected",
	GatewayDeath:    "gateway_death",
	NodeDeath:       "node_death",
	NodeRecover:     "node_recover",
	Sample:          "sample",
	AttackInjected:  "attack_injected",
	AttackDrop:      "attack_drop",
	AttackInject:    "attack_inject",
}

// String returns the stable snake_case name used in JSONL traces.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindNames lists every defined event kind name in declaration order — the
// schema of the "kind" field in JSONL traces.
func KindNames() []string {
	out := make([]string, numKinds)
	copy(out, kindNames[:])
	return out
}

// ParseKind resolves a kind name back to its value.
func ParseKind(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// MarshalJSON renders the kind as its stable name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, ok := ParseKind(s)
	if !ok {
		return fmt.Errorf("obs: unknown event kind %q", s)
	}
	*k = v
	return nil
}

// Event is one observable action, stamped with its virtual time. It is a
// flat value: emitting one allocates nothing, and the JSON field order is
// the declaration order, so serialized traces of identical runs compare
// byte-identical.
//
// Field use by kind:
//
//	PacketGenerated   Node = origin
//	PacketDelivered   Node = accepting gateway, Value = hop count
//	PacketExpired     Node = dropping node, Detail = reason, Value = count for batch drops
//	LinkTx            Node = transmitter, Peer = next hop, Value = frame TTL
//	LinkAck           Node = sender, Peer = acking hop
//	LinkRetry         Node = sender, Peer = unresponsive hop, Value = attempt number
//	LinkFailure       Node = sender, Peer = dead hop
//	QueueDrop         Node = dropping node, Peer = intended next hop
//	FrameLost         Node = addressee that lost the copy, Peer = transmitter, Detail = loss|collision
//	Reroute           Node = rerouting node, Peer = new gateway / dead hop, Detail = mechanism, Value = failover µs
//	FaultInjected     Node = target device, Detail = plan-event label
//	GatewayDeath      Node = gateway, Detail = cause
//	NodeDeath         Node = device, Detail = cause
//	NodeRecover       Node = device
//	Sample            Detail = gauge name, Value = gauge value
//	AttackInjected    Node = compromised device, Detail = attack kind
//	AttackDrop        Node = attacker, Origin/Seq = swallowed packet, Detail = attack kind
//	AttackInject      Node = attacker, Origin/Seq = carried packet, Detail = attack kind
type Event struct {
	At     sim.Time      `json:"at"`
	Kind   Kind          `json:"kind"`
	Node   packet.NodeID `json:"node"`
	Peer   packet.NodeID `json:"peer,omitempty"`
	Origin packet.NodeID `json:"origin,omitempty"`
	Seq    uint32        `json:"seq,omitempty"`
	Value  int64         `json:"val,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// String renders a compact one-line form for logs and recorder dumps.
func (ev Event) String() string {
	s := fmt.Sprintf("%s %-16s %s", ev.At, ev.Kind, ev.Node)
	if ev.Peer != 0 {
		s += fmt.Sprintf(" peer=%s", ev.Peer)
	}
	if ev.Origin != 0 {
		s += fmt.Sprintf(" pkt=%s:%d", ev.Origin, ev.Seq)
	}
	if ev.Value != 0 {
		s += fmt.Sprintf(" val=%d", ev.Value)
	}
	if ev.Detail != "" {
		s += " " + ev.Detail
	}
	return s
}

// Sink consumes events. Implementations may assume single-goroutine use —
// the simulation kernel is sequential — and must be cheap: Observe sits on
// the per-frame hot path of traced runs.
type Sink interface {
	Observe(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Observe implements Sink.
func (f SinkFunc) Observe(ev Event) { f(ev) }

// Bus fans emitted events out to its sinks. The zero value and the nil
// pointer are both valid, inert buses; Emit on them is a no-op. A Bus must
// be exclusive to one simulation run — sharing one across RunMany workers
// would interleave streams nondeterministically.
type Bus struct {
	// Sample asks the scenario layer to schedule a periodic kernel sampler
	// emitting gauge events (in-flight packets, ARQ queue depth, mean sensor
	// energy) every Sample of virtual time. 0 disables sampling. The sampler
	// only reads simulation state, so enabling it never perturbs results.
	Sample sim.Duration

	sinks []Sink
}

// NewBus returns a bus with the given sinks attached.
func NewBus(sinks ...Sink) *Bus {
	b := &Bus{}
	for _, s := range sinks {
		b.Attach(s)
	}
	return b
}

// Attach adds a sink. Nil sinks are ignored.
func (b *Bus) Attach(s Sink) {
	if s != nil {
		b.sinks = append(b.sinks, s)
	}
}

// Active reports whether emitting would reach any sink. Hot emission sites
// call this before constructing their Event so a run without tracing pays
// one predictable branch and nothing else.
func (b *Bus) Active() bool { return b != nil && len(b.sinks) > 0 }

// Emit fans ev out to every sink. Safe on a nil bus.
func (b *Bus) Emit(ev Event) {
	if b == nil {
		return
	}
	for _, s := range b.sinks {
		s.Observe(ev)
	}
}

// Capture is the unbounded in-memory sink: it appends every event. The
// experiment harness uses one per run and serializes them in submission
// order, which keeps multi-run trace output byte-identical at any worker
// count.
type Capture struct {
	Events []Event
}

// Observe implements Sink.
func (c *Capture) Observe(ev Event) { c.Events = append(c.Events, ev) }
