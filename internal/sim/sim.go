// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock measured in microseconds and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in the order they were scheduled (FIFO tie-break on a monotonically
// increasing sequence number), which makes every run with the same seed and
// the same schedule fully reproducible.
//
// The queue is an inlined 4-ary min-heap over pooled event structs: popped
// and cancelled events return to a kernel-local free list, so steady-state
// scheduling performs no heap allocation (see ScheduleArgAt for the
// zero-alloc hot path used by the radio layer). A generation counter on each
// event keeps stale Timer handles from cancelling a recycled event.
//
// All protocol logic in this repository — radio transmissions, routing
// timers, traffic generation, gateway movement rounds — is driven by this
// kernel. Nothing in the simulator reads wall-clock time.
package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Time is a virtual time instant in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration = Time

// Common durations, for readability at call sites.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// event is a single scheduled callback. Exactly one of fn/argFn is set.
// Events are pooled: after firing or cancellation they return to the
// kernel's free list with gen incremented, which invalidates outstanding
// Timer handles to the old incarnation.
type event struct {
	at    Time
	seq   uint64 // schedule order; breaks ties deterministically
	fn    func()
	argFn func(any)
	arg   any
	gen   uint32
	index int32 // heap index, -1 when popped/cancelled
}

// Timer is a handle to a scheduled event that can be cancelled. The zero
// value is an inert, already-expired timer.
type Timer struct {
	k   *Kernel
	ev  *event
	gen uint32
}

// Stop cancels the timer if it has not fired yet. It reports whether the
// timer was still pending. Stopping an already-fired, already-stopped or
// zero timer is a safe no-op, even after the underlying event struct has
// been recycled for an unrelated schedule.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.index < 0 {
		return false
	}
	ev := t.ev
	t.k.heapRemove(int(ev.index))
	t.k.putEvent(ev)
	return true
}

// Pending reports whether the timer is still scheduled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Kernel is a discrete-event scheduler with a deterministic random source.
//
// A Kernel is not safe for concurrent use; the entire simulation runs on the
// caller's goroutine. This is deliberate: determinism and reproducibility
// matter more here than multicore speedup, and individual experiment runs
// are independently parallelizable at a higher level (internal/runner fans
// out whole runs across a worker pool).
type Kernel struct {
	now     Time
	queue   []*event // 4-ary min-heap ordered by (at, seq)
	free    []*event // recycled event structs
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64

	// interrupt, when non-nil, is an externally owned cancellation flag
	// polled between event batches (every interruptStride events) by
	// Run/RunAll/RunBefore. It is the only concurrency-safe way to stop a
	// running kernel from another goroutine: Stop flips an unsynchronized
	// field and may only be called from inside an event callback.
	interrupt *atomic.Bool

	// progress, when non-nil, receives a (sim-time, events-fired) watermark
	// at the same stride checkpoints the interrupt flag is polled at, plus
	// once when a run loop exits. Published with atomic stores so another
	// goroutine can watch a live run.
	progress *Progress
}

// interruptStride is how many events run between cancellation-flag polls.
// One poll per batch keeps the cost of an armed-but-quiet interrupt flag
// negligible while bounding cancellation latency to one event batch.
const interruptStride = 4096

// NewKernel returns a kernel with its clock at zero and a random source
// seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.queue) }

// heap ordering: earliest time first, schedule order breaking ties.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The queue is a 4-ary heap: children of node i live at 4i+1..4i+4. The
// wider fan-out halves tree depth versus a binary heap, trading a few extra
// comparisons per level for far fewer cache-missing pointer hops — a net win
// at the event volumes radio deliveries generate.

func (k *Kernel) siftUp(i int) {
	q := k.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = int32(i)
		i = p
	}
	q[i] = ev
	ev.index = int32(i)
}

func (k *Kernel) siftDown(i int) {
	q := k.queue
	n := len(q)
	ev := q[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		for j := c + 1; j < end; j++ {
			if less(q[j], q[best]) {
				best = j
			}
		}
		if !less(q[best], ev) {
			break
		}
		q[i] = q[best]
		q[i].index = int32(i)
		i = best
	}
	q[i] = ev
	ev.index = int32(i)
}

func (k *Kernel) heapPush(ev *event) {
	k.queue = append(k.queue, ev)
	ev.index = int32(len(k.queue) - 1)
	k.siftUp(int(ev.index))
}

func (k *Kernel) heapPop() *event {
	q := k.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	k.queue = q[:n]
	top.index = -1
	if n > 0 {
		k.queue[0] = last
		last.index = 0
		k.siftDown(0)
	}
	return top
}

// heapRemove unlinks the event at heap position i (Timer cancellation).
func (k *Kernel) heapRemove(i int) {
	q := k.queue
	ev := q[i]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	k.queue = q[:n]
	ev.index = -1
	if i < n {
		k.queue[i] = last
		last.index = int32(i)
		k.siftDown(i)
		if int(last.index) == i {
			k.siftUp(i)
		}
	}
}

func (k *Kernel) getEvent() *event {
	if n := len(k.free); n > 0 {
		ev := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return ev
	}
	return &event{index: -1}
}

// putEvent recycles a no-longer-queued event. The generation bump is what
// expires outstanding Timer handles.
func (k *Kernel) putEvent(ev *event) {
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.gen++
	k.free = append(k.free, ev)
}

// schedule enqueues a blank pooled event at the given instant.
func (k *Kernel) schedule(at Time) *event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	ev := k.getEvent()
	ev.at = at
	ev.seq = k.seq
	k.seq++
	k.heapPush(ev)
	return ev
}

// ScheduleAt schedules fn to run at the absolute virtual time at. Scheduling
// in the past panics: it would silently corrupt causality.
func (k *Kernel) ScheduleAt(at Time, fn func()) *Timer {
	ev := k.schedule(at)
	ev.fn = fn
	return &Timer{k: k, ev: ev, gen: ev.gen}
}

// ScheduleArgAt schedules fn(arg) to run at the absolute virtual time at.
// This is the allocation-free fast path for high-volume events (one per
// radio delivery): with fn stored once by the caller and arg a pointer,
// steady-state scheduling allocates nothing — no Timer handle, no closure,
// and the event struct itself comes from the kernel's free list.
func (k *Kernel) ScheduleArgAt(at Time, fn func(any), arg any) {
	ev := k.schedule(at)
	ev.argFn = fn
	ev.arg = arg
}

// After schedules fn to run d microseconds from now.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.ScheduleAt(k.now+d, fn)
}

// Every schedules fn to run every interval, starting after the first
// interval, until the returned Repeater is stopped or the run ends.
func (k *Kernel) Every(interval Duration, fn func()) *Repeater {
	if interval <= 0 {
		panic("sim: non-positive repeat interval")
	}
	r := &Repeater{k: k, interval: interval, fn: fn}
	r.arm()
	return r
}

// Repeater re-schedules a callback at a fixed interval.
type Repeater struct {
	k        *Kernel
	interval Duration
	fn       func()
	timer    *Timer
	stopped  bool
}

func (r *Repeater) arm() {
	r.timer = r.k.After(r.interval, func() {
		if r.stopped {
			return
		}
		r.fn()
		if !r.stopped {
			r.arm()
		}
	})
}

// Stop cancels future firings.
func (r *Repeater) Stop() {
	r.stopped = true
	if r.timer != nil {
		r.timer.Stop()
	}
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// SetInterrupt installs (or, with nil, removes) a cancellation flag. The
// run loops poll it at entry and then every interruptStride executed events;
// when it reads true they stop exactly as if Stop had been called. The flag
// may be set from any goroutine (typically a context.AfterFunc), which is
// what threads context cancellation into an otherwise single-goroutine
// simulation. A nil or never-set flag leaves the hot loop's behaviour — and
// its allocation profile — unchanged.
func (k *Kernel) SetInterrupt(flag *atomic.Bool) { k.interrupt = flag }

// SetProgress installs (or, with nil, removes) a live progress watermark.
// The run loops publish to it every interruptStride executed events and once
// more when they return, so a poller sees sim-time and event counts at most
// one event batch stale. Like SetInterrupt, a nil probe leaves the hot
// loop's behaviour — and its allocation profile — unchanged.
func (k *Kernel) SetProgress(p *Progress) { k.progress = p }

// InterruptRequested reports whether an installed interrupt flag is set.
// Coordinating loops that drive the kernel through Step/RunBefore directly
// (the sharded window loop) check it between batches.
func (k *Kernel) InterruptRequested() bool {
	return k.interrupt != nil && k.interrupt.Load()
}

// Stopped reports whether Stop has been called since the last Run/RunAll
// began. The radio medium checks it between batched deliveries so a Stop
// issued mid-batch (a reception killing the node that stops the run) halts
// delivery exactly where the per-event schedule would have.
func (k *Kernel) Stopped() bool { return k.stopped }

// Step executes the single next event, if any, and reports whether one ran.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	ev := k.heapPop()
	k.now = ev.at
	fn, argFn, arg := ev.fn, ev.argFn, ev.arg
	k.putEvent(ev)
	switch {
	case fn != nil:
		k.fired++
		fn()
	case argFn != nil:
		k.fired++
		argFn(arg)
	}
	return true
}

// Run executes events until the queue drains, Stop is called, or the next
// event would fire after until. The clock is left at the time of the last
// executed event (or advanced to until when the horizon is hit with events
// still pending). Run returns the number of events executed.
func (k *Kernel) Run(until Time) uint64 {
	k.stopped = false
	start := k.fired
	check := 0
	for !k.stopped {
		if k.interrupt != nil || k.progress != nil {
			if check == 0 {
				k.progress.Publish(k.now, k.fired)
				if k.interrupt != nil && k.interrupt.Load() {
					k.stopped = true
					break
				}
				check = interruptStride
			}
			check--
		}
		if len(k.queue) == 0 {
			break
		}
		if k.queue[0].at > until {
			k.now = until
			break
		}
		k.Step()
	}
	k.progress.Publish(k.now, k.fired)
	return k.fired - start
}

// RunAll executes events until the queue drains or Stop is called.
func (k *Kernel) RunAll() uint64 {
	k.stopped = false
	start := k.fired
	check := 0
	for !k.stopped {
		if k.interrupt != nil || k.progress != nil {
			if check == 0 {
				k.progress.Publish(k.now, k.fired)
				if k.interrupt != nil && k.interrupt.Load() {
					k.stopped = true
					break
				}
				check = interruptStride
			}
			check--
		}
		if !k.Step() {
			break
		}
	}
	k.progress.Publish(k.now, k.fired)
	return k.fired - start
}

// EventPool carries recycled kernel storage — pooled event structs and the
// heap's backing array — between sequential runs (the run arena). A zero
// EventPool is valid and empty. Pools are not safe for concurrent use:
// each run adopts the pool exclusively and harvests it back when done.
type EventPool struct {
	free  []*event
	queue []*event // reused for heap capacity only; always length 0
}

// AdoptEventPool seeds k's free list and heap capacity from p, emptying p.
// Call once, on a freshly created kernel with nothing scheduled.
func (k *Kernel) AdoptEventPool(p *EventPool) {
	if p.free != nil {
		k.free = p.free
		p.free = nil
	}
	if p.queue != nil {
		k.queue = p.queue[:0]
		p.queue = nil
	}
}

// HarvestEventPool moves k's event storage into p and detaches it from k.
// Events still scheduled are cancelled and recycled: their callbacks are
// cleared and their generation bumped, so Timer and Repeater handles held
// by the finished run's stacks become inert no-ops — exactly as if every
// outstanding timer had been stopped. The kernel itself remains usable
// (it allocates fresh storage on the next schedule), but the run it drove
// is over.
func (k *Kernel) HarvestEventPool(p *EventPool) {
	for i, ev := range k.queue {
		ev.index = -1
		k.putEvent(ev) // clears fn/argFn/arg and bumps gen
		k.queue[i] = nil
	}
	p.free = append(p.free, k.free...)
	p.queue = k.queue[:0]
	k.free = nil
	k.queue = nil
}
