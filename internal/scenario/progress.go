package scenario

import "wmsn/internal/sim"

// ProgressBoard fans one watermark per run out to a multi-run job and folds
// them back into a single live view. The board is allocated once (a flat
// slice of sim.Progress, no per-run pointers to chase) and is safe to read
// from any goroutine while workers run: each underlying probe is lock-free.
//
// Typical wiring (the service daemon does exactly this):
//
//	board := scenario.NewProgressBoard(len(cfgs))
//	for i := range cfgs {
//		cfgs[i].Progress = board.Run(i)
//	}
//	... RunEach/RunMany ...    // poll board.Snapshot() meanwhile
type ProgressBoard struct {
	runs []sim.Progress
}

// NewProgressBoard returns a board tracking n runs.
func NewProgressBoard(n int) *ProgressBoard {
	if n < 0 {
		n = 0
	}
	return &ProgressBoard{runs: make([]sim.Progress, n)}
}

// Run returns run i's probe, to be planted in that run's Config.Progress.
// Out-of-range indices return nil (a valid, inert probe target).
func (b *ProgressBoard) Run(i int) *sim.Progress {
	if b == nil || i < 0 || i >= len(b.runs) {
		return nil
	}
	return &b.runs[i]
}

// MarkDone flags run i finished — for runs that error out before RunTraffic
// (which marks successful runs itself) ever starts. Idempotent.
func (b *ProgressBoard) MarkDone(i int) { b.Run(i).MarkDone() }

// RunProgress is one run's live watermark, JSON-shaped for the service API.
type RunProgress struct {
	Run        int     `json:"run"`
	SimTimeS   float64 `json:"sim_time_s"`
	Events     uint64  `json:"events"`
	Deliveries uint64  `json:"deliveries"`
	Done       bool    `json:"done"`
}

// Progress aggregates a board: totals across runs plus the per-run detail.
type Progress struct {
	Runs       int           `json:"runs"`
	DoneRuns   int           `json:"done_runs"`
	Events     uint64        `json:"events"`
	Deliveries uint64        `json:"deliveries"`
	SimTimeS   float64       `json:"sim_time_s"` // summed across runs
	PerRun     []RunProgress `json:"per_run,omitempty"`
}

// Snapshot reads every probe and aggregates. With perRun set, the per-run
// watermarks ride along (runs that have not started yet report zeros).
func (b *ProgressBoard) Snapshot(perRun bool) Progress {
	if b == nil {
		return Progress{}
	}
	out := Progress{Runs: len(b.runs)}
	for i := range b.runs {
		s := b.runs[i].Snapshot()
		if s.Done {
			out.DoneRuns++
		}
		out.Events += s.Events
		out.Deliveries += s.Deliveries
		out.SimTimeS += s.SimTime.Seconds()
		if perRun {
			out.PerRun = append(out.PerRun, RunProgress{
				Run:        i,
				SimTimeS:   s.SimTime.Seconds(),
				Events:     s.Events,
				Deliveries: s.Deliveries,
				Done:       s.Done,
			})
		}
	}
	return out
}
