package scenario

import (
	"reflect"
	"testing"

	"wmsn/internal/attack"
	"wmsn/internal/fault"
	"wmsn/internal/sim"
)

// attackCfg is a mid-size compromised run used by the determinism tests.
func attackCfg(sp attack.Spec, shards int) Config {
	return Config{
		Seed: 41, Protocol: SecMLR, NumSensors: 100, RunFor: 60 * sim.Second,
		SensorBattery: 1e6, Shards: shards,
		Faults: fault.NewPlan().CompromiseFractionAt(20*sim.Second, 0.15, sp, 4141),
	}
}

// attackFlow is the shard-exact slice of an attacked run: end-to-end flow
// counts plus the compromise ledger. Radio/energy/path metrics stay out —
// the sharded contract only bounds those (flood-cascade tie resolution),
// see TestShardedSummariesMatch.
type attackFlow struct {
	generated, delivered, duplicates uint64
	compromised, dropped             uint64
	sensorsAlive                     int
	firstDeath                       sim.Time
}

func attackSummarize(r Result) attackFlow {
	return attackFlow{
		generated:    r.Metrics.Generated,
		delivered:    r.Metrics.Delivered,
		duplicates:   r.Metrics.Duplicates,
		compromised:  r.Metrics.CompromisedNodes,
		dropped:      r.Metrics.AttackerDropped,
		sensorsAlive: r.SensorsAlive,
		firstDeath:   r.FirstDeath,
	}
}

// TestCompromisedRunShardInvariant pins the tentpole's determinism claim:
// the victim set of a compromise campaign is chosen by a plan-seeded
// shuffle, and blackhole adversaries draw no randomness at all, so the
// end-to-end flow summary of an attacked run — including the compromise
// ledger — is EXACTLY equal between the sequential engine and the
// region-sharded one.
func TestCompromisedRunShardInvariant(t *testing.T) {
	seq := Run(attackCfg(attack.Spec{Kind: attack.KindBlackhole}, 0))
	if seq.Metrics.CompromisedNodes == 0 || seq.Metrics.AttackerDropped == 0 {
		t.Fatalf("sequential attacked run never engaged: compromised=%d dropped=%d",
			seq.Metrics.CompromisedNodes, seq.Metrics.AttackerDropped)
	}
	for _, shards := range []int{2, 3} {
		got := Run(attackCfg(attack.Spec{Kind: attack.KindBlackhole}, shards))
		if attackSummarize(got) != attackSummarize(seq) {
			t.Fatalf("shards=%d attacked flow summary diverged:\n%+v\nvs sequential\n%+v",
				shards, attackSummarize(got), attackSummarize(seq))
		}
	}
	// Attack families that draw from their private per-node RNG are still
	// compromise-set invariant (the draws only steer behavior, whose
	// tie-sensitive outcomes the sharded contract does not pin exactly).
	for _, sp := range []attack.Spec{
		{Kind: attack.KindSelectiveForward},
		{Kind: attack.KindReplay, MaxCopies: 50},
	} {
		got := Run(attackCfg(sp, 2))
		if got.Metrics.CompromisedNodes != seq.Metrics.CompromisedNodes {
			t.Fatalf("%s shards=2 compromised %d nodes, want %d (ASeed-pinned victim set)",
				sp, got.Metrics.CompromisedNodes, seq.Metrics.CompromisedNodes)
		}
	}
}

// TestCompromisedRunReproducible replays an attacked sharded run and
// demands byte-equal metrics: campaigns must be pure functions of the
// config at any shard count.
func TestCompromisedRunReproducible(t *testing.T) {
	for _, shards := range []int{0, 2} {
		cfg := attackCfg(attack.Spec{Kind: attack.KindReplay, MaxCopies: 50}, shards)
		a, b := Run(cfg), Run(cfg)
		sa, sb := a.Metrics.Snapshot(), b.Metrics.Snapshot()
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("shards=%d attacked run diverged between identical invocations:\n%+v\nvs\n%+v",
				shards, sa, sb)
		}
		if a.Metrics.AttackerInjected == 0 {
			t.Fatalf("shards=%d replay campaign injected nothing", shards)
		}
	}
}
