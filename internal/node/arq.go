package node

import (
	"wmsn/internal/metrics"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/radio"
	"wmsn/internal/sim"
)

// Link-layer ARQ: hop-by-hop reliable delivery for unicast DATA frames.
//
// A device with ARQ enabled routes every eligible outgoing frame through a
// bounded FIFO forwarding queue and runs stop-and-wait over its head: the
// frame is transmitted, a retransmit timer is armed for the ACK wait of the
// current attempt (deterministic exponential backoff, see
// radio.RetryBackoff), and the frame is retired when the next hop's
// LINK-ACK arrives or the retry budget is exhausted. On exhaustion the
// frame is handed to the stack's LinkFailureHandler (when implemented) so
// routing can reroute around the dead hop instead of silently losing data.
//
// Everything is scheduled on the simulation kernel and draws no randomness,
// so enabling ARQ keeps runs bit-identical across RunMany worker counts;
// with ARQ disabled (the default) no code on these paths executes at all
// and unfaulted runs stay byte-identical to previous revisions.

// DefaultForwardQueueLimit bounds the per-device forwarding queue when
// ARQConfig.QueueLimit is 0.
const DefaultForwardQueueLimit = 32

// ARQConfig enables hop-by-hop ARQ on a device (see Device.EnableLinkARQ).
type ARQConfig struct {
	// Retries is how many retransmissions follow an unacknowledged first
	// attempt before the hop is declared dead. Must be positive — a zero
	// value disables ARQ.
	Retries int
	// AckWait is the ACK timeout for the first attempt; each retry doubles
	// it (radio.RetryBackoff). It should comfortably exceed one DATA
	// airtime plus one ACK airtime plus propagation.
	AckWait sim.Duration
	// QueueLimit bounds the forwarding queue; frames arriving at a full
	// queue are dropped and counted as QueueDrops (backpressure). 0 selects
	// DefaultForwardQueueLimit.
	QueueLimit int
	// Metrics receives the Link* and QueueDrops counters; nil disables
	// telemetry.
	Metrics metrics.Sink
}

// LinkFailureHandler is implemented by stacks that want to reroute when the
// link layer exhausts its retry budget on a frame. The handler receives the
// retired frame exactly as it was submitted to Send (To still names the
// unresponsive hop); it may clone and re-send it along another route.
type LinkFailureHandler interface {
	HandleLinkFailure(pkt *packet.Packet)
}

// arqSeenKey identifies a received frame for duplicate suppression: the
// immediate sender plus the end-to-end identity. Scoping the key to the
// link (From) keeps legitimate end-to-end retransmissions over a different
// route from being mistaken for link-layer duplicates. The TTL is part of
// the key because only link-layer retransmissions are byte-identical
// clones: a frame that legitimately revisits this link — a routing loop
// under redirect, which must keep circulating until its TTL budget kills
// it, or a resend re-keyed upstream — arrives with a different TTL, and
// suppressing it would silently destroy a frame the sender just got
// acknowledged.
type arqSeenKey struct {
	from, origin packet.NodeID
	seq          uint32
	ttl          uint8
}

type arqSeenEntry struct {
	key     arqSeenKey
	expires sim.Time
}

// arqState is one device's link-layer ARQ machine.
type arqState struct {
	cfg   ARQConfig
	limit int

	queue   []*packet.Packet // head = frame in flight
	attempt int              // transmissions of the head so far, minus one
	timer   *sim.Timer       // pending retransmit timer for the head

	// Receiver-side duplicate suppression. Entries expire after dedupeTTL —
	// the worst-case span between a sender's first and last transmission of
	// one frame — so link-level retransmissions are suppressed while later,
	// legitimate end-to-end resends (e.g. SecMLR failover) pass through.
	dedupeTTL sim.Duration
	seen      map[arqSeenKey]sim.Time
	seenFIFO  []arqSeenEntry

	timeoutFn func() // bound once; avoids a closure per armed timer
}

func (a *arqState) inc(c metrics.Counter) {
	if a.cfg.Metrics != nil {
		a.cfg.Metrics.Inc(c)
	}
}

func (a *arqState) add(c metrics.Counter, n uint64) {
	if a.cfg.Metrics != nil {
		a.cfg.Metrics.Add(c, n)
	}
}

func (a *arqState) observe(h metrics.HistID, v uint64) {
	if a.cfg.Metrics != nil {
		a.cfg.Metrics.Observe(h, v)
	}
}

// EnableLinkARQ arms hop-by-hop ARQ on the device's sensor-layer radio.
// It is a no-op when cfg.Retries <= 0 or ARQ is already enabled. Protocol
// stacks call this from Start when Params.LinkRetries is set.
func (d *Device) EnableLinkARQ(cfg ARQConfig) {
	if cfg.Retries <= 0 || d.arq != nil {
		return
	}
	limit := cfg.QueueLimit
	if limit <= 0 {
		limit = DefaultForwardQueueLimit
	}
	var span sim.Duration
	for i := 0; i <= cfg.Retries; i++ {
		span += radio.RetryBackoff(cfg.AckWait, i)
	}
	a := &arqState{
		cfg:       cfg,
		limit:     limit,
		dedupeTTL: span + sim.Millisecond, // margin for airtime + propagation
		seen:      make(map[arqSeenKey]sim.Time),
	}
	a.timeoutFn = d.arqTimeout
	d.arq = a
}

// LinkARQEnabled reports whether hop-by-hop ARQ is armed on this device.
func (d *Device) LinkARQEnabled() bool { return d.arq != nil }

// LinkQueueLen returns the current forwarding-queue occupancy (0 when ARQ
// is disabled). The queued frames are exactly the "in flight" term of the
// metrics.CheckLinkConservation ledger.
func (d *Device) LinkQueueLen() int {
	if d.arq == nil {
		return 0
	}
	return len(d.arq.queue)
}

// linkTimerStuck reports an impossible state: a pending retransmit timer
// with nothing in flight. The chaos harness asserts this never happens.
func (d *Device) linkTimerStuck() bool {
	return d.arq != nil && len(d.arq.queue) == 0 && d.arq.timer != nil && d.arq.timer.Pending()
}

// arqEligible reports whether the link layer acknowledges this frame:
// unicast DATA only. Floods, control traffic and the ACK frames themselves
// stay fire-and-forget.
func arqEligible(pkt *packet.Packet) bool {
	return pkt.Kind == packet.KindData && pkt.To != packet.Broadcast && pkt.To != packet.None
}

// arqEnqueue admits a frame to the forwarding queue, starting transmission
// when it is the only occupant. A full queue drops the frame (backpressure)
// and reports false, exactly like a failed Send.
func (d *Device) arqEnqueue(pkt *packet.Packet) bool {
	a := d.arq
	if len(a.queue) >= a.limit {
		a.inc(metrics.QueueDrops)
		if d.world.obs.Active() {
			d.world.obs.Emit(obs.Event{
				At: d.Now(), Kind: obs.QueueDrop, Node: d.id, Peer: pkt.To,
				Origin: pkt.Origin, Seq: pkt.Seq,
			})
		}
		return false
	}
	a.queue = append(a.queue, pkt)
	a.inc(metrics.LinkTxQueued)
	a.observe(metrics.HistForwardQueueDepth, uint64(len(a.queue)))
	if len(a.queue) == 1 {
		d.arqTransmitHead()
	}
	return true
}

// arqTransmitHead puts the head frame on the air and arms the retransmit
// timer for the current attempt. A transmission that kills the device
// (battery brownout) flushes the queue via kill, so nothing is armed.
func (d *Device) arqTransmitHead() {
	a := d.arq
	if !d.transmitSensor(a.queue[0]) {
		return // device died mid-transmit; kill flushed the queue
	}
	if !d.Alive() || len(a.queue) == 0 {
		return
	}
	a.timer = d.kern().After(radio.RetryBackoff(a.cfg.AckWait, a.attempt), a.timeoutFn)
}

// arqPop retires the head frame and starts the next one.
func (d *Device) arqPop() {
	a := d.arq
	n := len(a.queue)
	copy(a.queue, a.queue[1:])
	a.queue[n-1] = nil
	a.queue = a.queue[:n-1]
	a.attempt = 0
	if len(a.queue) > 0 {
		d.arqTransmitHead()
	}
}

// arqTimeout handles an expired ACK wait: retransmit while budget remains,
// otherwise declare the hop dead, retire the frame and let the stack
// reroute.
func (d *Device) arqTimeout() {
	a := d.arq
	if a == nil || !d.Alive() || len(a.queue) == 0 {
		return
	}
	a.timer = nil
	if a.attempt < a.cfg.Retries {
		a.attempt++
		a.inc(metrics.LinkRetries)
		if d.world.obs.Active() {
			head := a.queue[0]
			d.world.obs.Emit(obs.Event{
				At: d.Now(), Kind: obs.LinkRetry, Node: d.id, Peer: head.To,
				Origin: head.Origin, Seq: head.Seq, Value: int64(a.attempt),
			})
		}
		d.arqTransmitHead()
		return
	}
	head := a.queue[0]
	a.inc(metrics.LinkFailures)
	a.observe(metrics.HistLinkRetries, uint64(a.attempt))
	if d.world.obs.Active() {
		d.world.obs.Emit(obs.Event{
			At: d.Now(), Kind: obs.LinkFailure, Node: d.id, Peer: head.To,
			Origin: head.Origin, Seq: head.Seq,
		})
	}
	d.arqPop()
	if h, ok := d.stack.(LinkFailureHandler); ok {
		h.HandleLinkFailure(head)
	}
}

// arqHandleAck matches an incoming LINK-ACK against the in-flight frame.
// Stale ACKs — from an earlier attempt of an already-retired frame, or for
// anything that is not the head — are ignored.
func (d *Device) arqHandleAck(ack *packet.Packet) {
	a := d.arq
	if a == nil || len(a.queue) == 0 || !radio.AckMatches(ack, a.queue[0]) {
		return
	}
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	a.inc(metrics.LinkAcked)
	// Retries-per-settled-frame distribution: a.attempt retransmissions were
	// needed before this ACK landed (0 = first try). The failure branch in
	// arqTimeout records the exhausted budget for abandoned frames, so every
	// settled frame contributes exactly one sample.
	a.observe(metrics.HistLinkRetries, uint64(a.attempt))
	if d.world.obs.Active() {
		head := a.queue[0]
		d.world.obs.Emit(obs.Event{
			At: d.Now(), Kind: obs.LinkAck, Node: d.id, Peer: head.To,
			Origin: head.Origin, Seq: head.Seq,
		})
	}
	d.arqPop()
}

// arqAckAndFilter acknowledges an eligible frame addressed to this node and
// reports whether it is fresh. A duplicate (the sender retransmitted because
// our ACK was lost) is re-ACKed but suppressed so the stack never forwards
// it twice.
func (d *Device) arqAckAndFilter(pkt *packet.Packet) bool {
	a := d.arq
	if d.transmitSensor(radio.LinkAckFor(pkt, d.id)) {
		a.inc(metrics.LinkAckSent)
	}
	if !d.Alive() {
		return false // the ACK transmission drained the battery
	}
	now := d.Now()
	for len(a.seenFIFO) > 0 && a.seenFIFO[0].expires <= now {
		e := a.seenFIFO[0]
		a.seenFIFO = a.seenFIFO[1:]
		if exp, ok := a.seen[e.key]; ok && exp == e.expires {
			delete(a.seen, e.key)
		}
	}
	k := arqSeenKey{from: pkt.From, origin: pkt.Origin, seq: pkt.Seq, ttl: pkt.TTL}
	if exp, dup := a.seen[k]; dup && exp > now {
		return false
	}
	exp := now + a.dedupeTTL
	a.seen[k] = exp
	a.seenFIFO = append(a.seenFIFO, arqSeenEntry{key: k, expires: exp})
	return true
}

// arqFlush discards the queue when the device dies, cancelling the
// retransmit timer so no event fires against a dead node. Flushed frames
// are accounted (LinkFlushed) to keep the conservation ledger balanced; the
// duplicate-suppression state survives into Recover — it is still correct,
// since a frame ACKed before death was genuinely received.
func (d *Device) arqFlush() {
	a := d.arq
	if a == nil {
		return
	}
	if n := len(a.queue); n > 0 {
		a.add(metrics.LinkFlushed, uint64(n))
		if d.world.obs.Active() {
			now := d.Now()
			for _, pkt := range a.queue {
				d.world.obs.Emit(obs.Event{
					At: now, Kind: obs.PacketExpired, Node: d.id,
					Origin: pkt.Origin, Seq: pkt.Seq, Detail: "link_flushed",
				})
			}
		}
		for i := range a.queue {
			a.queue[i] = nil
		}
		a.queue = a.queue[:0]
	}
	a.attempt = 0
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
}

// LinkQueueDepth sums ARQ forwarding-queue occupancy across all devices —
// the in-flight term for metrics.CheckLinkConservation.
func (w *World) LinkQueueDepth() uint64 {
	var n uint64
	for _, id := range w.order {
		if d, ok := w.devices[id]; ok {
			n += uint64(d.LinkQueueLen())
		}
	}
	return n
}

// LinkStuckTimers counts devices holding a pending ARQ retransmit timer
// with an empty queue. Always zero unless the state machine is broken; the
// chaos harness asserts it.
func (w *World) LinkStuckTimers() int {
	stuck := 0
	for _, id := range w.order {
		if d, ok := w.devices[id]; ok && d.linkTimerStuck() {
			stuck++
		}
	}
	return stuck
}
