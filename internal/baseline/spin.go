package baseline

import (
	"encoding/binary"

	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
)

// SPIN (§2.2.1 [20,21]) replaces blind flooding with three-way meta-data
// negotiation: a node holding new data ADVertises a small descriptor;
// neighbors that have not seen the data REQuest it; only then is the
// full DATA transmitted. The handshake costs two extra small packets per
// link but avoids retransmitting large payloads to nodes that already hold
// them — curing flooding's implosion for data much bigger than its
// descriptor.
//
// Wire mapping: ADV rides a HELLO with marker 'V', REQ rides an ACK with
// marker 'Q', DATA is a DATA packet. Descriptors are (origin, seq).

const (
	spinAdvMarker byte = 'V'
	spinReqMarker byte = 'Q'
)

func spinMeta(origin packet.NodeID, seq uint32) []byte {
	buf := make([]byte, 9)
	buf[0] = spinAdvMarker
	binary.BigEndian.PutUint32(buf[1:], uint32(origin))
	binary.BigEndian.PutUint32(buf[5:], seq)
	return buf
}

func parseSpinMeta(b []byte) (origin packet.NodeID, seq uint32, ok bool) {
	if len(b) < 9 {
		return 0, 0, false
	}
	return packet.NodeID(binary.BigEndian.Uint32(b[1:])), binary.BigEndian.Uint32(b[5:]), true
}

// SPIN is the per-sensor stack. The sink side is SPINSink.
type SPIN struct {
	Metrics metrics.Sink
	// Advs/Reqs/Datas count the three message classes for the
	// negotiation-efficiency analysis.
	Advs, Reqs, Datas uint64

	dev  *node.Device
	seq  uint32
	have map[uint64][]byte // descriptors we hold -> payload
}

// NewSPIN creates a SPIN sensor stack.
func NewSPIN(m metrics.Sink) *SPIN {
	return &SPIN{Metrics: m, have: make(map[uint64][]byte)}
}

// Start implements node.Stack.
func (s *SPIN) Start(dev *node.Device) { s.dev = dev }

// OriginateData injects a new reading and advertises it.
func (s *SPIN) OriginateData(payload []byte) {
	if s.dev == nil || !s.dev.Alive() {
		return
	}
	s.seq++
	s.Metrics.RecordGenerated(s.dev.ID(), s.seq, s.dev.Now())
	s.have[floodKey64(s.dev.ID(), s.seq)] = append([]byte(nil), payload...)
	s.advertise(s.dev.ID(), s.seq)
}

func (s *SPIN) advertise(origin packet.NodeID, seq uint32) {
	adv := &packet.Packet{
		Kind:    packet.KindHello,
		From:    s.dev.ID(),
		To:      packet.Broadcast,
		Origin:  s.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     seq,
		TTL:     1,
		Payload: spinMeta(origin, seq),
	}
	if s.dev.Send(adv) {
		s.Advs++
	}
}

// HandleMessage implements node.Stack.
func (s *SPIN) HandleMessage(pkt *packet.Packet) {
	if s.dev == nil {
		return
	}
	switch pkt.Kind {
	case packet.KindHello: // ADV
		origin, seq, ok := parseSpinMeta(pkt.Payload)
		if !ok || pkt.Payload[0] != spinAdvMarker {
			return
		}
		if _, dup := s.have[floodKey64(origin, seq)]; dup {
			return // negotiation win: we already hold it, no DATA needed
		}
		req := &packet.Packet{
			Kind:    packet.KindAck,
			From:    s.dev.ID(),
			To:      pkt.From,
			Origin:  s.dev.ID(),
			Target:  pkt.From,
			Seq:     seq,
			TTL:     1,
			Payload: append([]byte{spinReqMarker}, spinMeta(origin, seq)[1:]...),
		}
		if s.dev.Send(req) {
			s.Reqs++
		}
	case packet.KindAck: // REQ addressed to us
		if pkt.Target != s.dev.ID() || len(pkt.Payload) < 9 || pkt.Payload[0] != spinReqMarker {
			return
		}
		origin := packet.NodeID(binary.BigEndian.Uint32(pkt.Payload[1:]))
		seq := binary.BigEndian.Uint32(pkt.Payload[5:])
		payload, held := s.have[floodKey64(origin, seq)]
		if !held {
			return
		}
		data := &packet.Packet{
			Kind:    packet.KindData,
			From:    s.dev.ID(),
			To:      pkt.Origin,
			Origin:  origin,
			Target:  pkt.Origin,
			Seq:     seq,
			TTL:     1,
			Payload: payload,
		}
		if s.dev.Send(data) {
			s.Datas++
			s.Metrics.Inc(metrics.DataSent)
		}
	case packet.KindData: // requested DATA arriving
		if pkt.Target != s.dev.ID() {
			return
		}
		k := floodKey64(pkt.Origin, pkt.Seq)
		if _, dup := s.have[k]; dup {
			return
		}
		s.have[k] = append([]byte(nil), pkt.Payload...)
		// Continue dissemination: advertise onward.
		s.advertise(pkt.Origin, pkt.Seq)
	}
}

// SPINSink participates in the negotiation like any node but records
// deliveries instead of re-advertising.
type SPINSink struct {
	Metrics metrics.Sink

	dev  *node.Device
	have map[uint64]bool
}

// NewSPINSink creates the sink stack.
func NewSPINSink(m metrics.Sink) *SPINSink {
	return &SPINSink{Metrics: m, have: make(map[uint64]bool)}
}

// Start implements node.Stack.
func (s *SPINSink) Start(dev *node.Device) { s.dev = dev }

// HandleMessage implements node.Stack.
func (s *SPINSink) HandleMessage(pkt *packet.Packet) {
	if s.dev == nil {
		return
	}
	switch pkt.Kind {
	case packet.KindHello: // ADV: request anything new
		origin, seq, ok := parseSpinMeta(pkt.Payload)
		if !ok || pkt.Payload[0] != spinAdvMarker || s.have[floodKey64(origin, seq)] {
			return
		}
		req := &packet.Packet{
			Kind:    packet.KindAck,
			From:    s.dev.ID(),
			To:      pkt.From,
			Origin:  s.dev.ID(),
			Target:  pkt.From,
			Seq:     seq,
			TTL:     1,
			Payload: append([]byte{spinReqMarker}, spinMeta(origin, seq)[1:]...),
		}
		s.dev.Send(req)
	case packet.KindData:
		if pkt.Target != s.dev.ID() {
			return
		}
		k := floodKey64(pkt.Origin, pkt.Seq)
		if s.have[k] {
			return
		}
		s.have[k] = true
		s.Metrics.RecordDelivered(pkt.Origin, pkt.Seq, s.dev.ID(), int(pkt.Hops)+1, s.dev.Now())
	}
}
