package baseline

import (
	"testing"

	"wmsn/internal/core"
	"wmsn/internal/energy"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

func line(n int, x0, d float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: x0 + float64(i)*d}
	}
	return pts
}

func TestFloodingDelivers(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	m := core.NewMetrics()
	stacks := map[packet.NodeID]*Flooding{}
	for i, pos := range line(6, 0, 10) {
		id := packet.NodeID(i + 1)
		st := NewFlooding(m, 16)
		stacks[id] = st
		w.AddSensor(id, pos, 12, 0, st)
	}
	w.AddGateway(1000, geom.Point{X: 60}, 12, 100, NewSink(m))
	stacks[1].OriginateData([]byte("x"))
	w.Run(10 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("delivered %d", m.Delivered)
	}
	// Implosion: every node transmitted the packet once.
	if m.DataSent != 6 {
		t.Fatalf("DataSent = %d, want 6 (every node floods once)", m.DataSent)
	}
	if m.MeanHops() != 6 {
		t.Fatalf("hops = %v, want 6", m.MeanHops())
	}
}

func TestFloodingTTLBounds(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	m := core.NewMetrics()
	var first *Flooding
	for i, pos := range line(10, 0, 10) {
		st := NewFlooding(m, 3) // too few hops to cross 9 links
		if first == nil {
			first = st
		}
		w.AddSensor(packet.NodeID(i+1), pos, 12, 0, st)
	}
	w.AddGateway(1000, geom.Point{X: 100}, 12, 100, NewSink(m))
	first.OriginateData([]byte("x"))
	w.Run(10 * sim.Second)
	if m.Delivered != 0 {
		t.Fatal("TTL-limited flood crossed the whole network")
	}
	if m.DataSent > 4 {
		t.Fatalf("DataSent = %d despite TTL 3", m.DataSent)
	}
}

func TestGossipingEventuallyDelivers(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 3})
	m := core.NewMetrics()
	stacks := map[packet.NodeID]*Gossiping{}
	for i, pos := range line(5, 0, 10) {
		id := packet.NodeID(i + 1)
		st := NewGossiping(m, 64)
		stacks[id] = st
		w.AddSensor(id, pos, 12, 0, st)
	}
	w.AddGateway(1000, geom.Point{X: 50}, 12, 100, NewSink(m))
	// A random walk on a line with a large TTL; send many to beat the odds.
	for i := 0; i < 30; i++ {
		stacks[1].OriginateData([]byte("x"))
		w.Run(w.Kernel().Now() + sim.Second)
	}
	w.Run(w.Kernel().Now() + 20*sim.Second)
	if m.Delivered == 0 {
		t.Fatal("gossip never delivered anything")
	}
	if m.DeliveryRatio() >= 1 {
		t.Log("note: all gossip walks reached the sink (unusual but possible)")
	}
	// Gossiping must not flood: each forward is a single unicast, so total
	// transmissions are bounded by generated * TTL, not by n * generated.
	if m.DataSent > 30*64 {
		t.Fatalf("DataSent = %d, gossip exploded", m.DataSent)
	}
}

func TestDirectDrainsEdgeNodesFaster(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1, EnergyModel: energy.DefaultFirstOrder})
	m := core.NewMetrics()
	sink := packet.NodeID(1000)
	sinkPos := geom.Point{X: 0}
	near := NewDirect(m, sink, geom.Point{X: 20}.Dist(sinkPos))
	far := NewDirect(m, sink, geom.Point{X: 200}.Dist(sinkPos))
	dNear := w.AddSensor(1, geom.Point{X: 20}, 12, 1.0, near)
	dFar := w.AddSensor(2, geom.Point{X: 200}, 12, 1.0, far)
	w.AddGateway(sink, sinkPos, 250, 300, NewSink(m))
	for i := 0; i < 50; i++ {
		near.OriginateData([]byte("x"))
		far.OriginateData([]byte("x"))
	}
	w.Run(20 * sim.Second)
	if m.Delivered != 100 {
		t.Fatalf("delivered %d, want 100", m.Delivered)
	}
	if dFar.Battery().Used() <= dNear.Battery().Used() {
		t.Fatalf("far node used %g <= near %g; quadratic cost missing",
			dFar.Battery().Used(), dNear.Battery().Used())
	}
	if m.MeanHops() != 1 {
		t.Fatalf("hops = %v, want 1", m.MeanHops())
	}
}

func TestMCFABuildsCostFieldAndDelivers(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	m := core.NewMetrics()
	stacks := map[packet.NodeID]*MCFA{}
	for i, pos := range line(6, 0, 10) {
		id := packet.NodeID(i + 1)
		st := NewMCFA(m, 16)
		stacks[id] = st
		w.AddSensor(id, pos, 12, 0, st)
	}
	w.AddGateway(1000, geom.Point{X: 60}, 12, 100, NewMCFASink(m, 16))
	w.Run(2 * sim.Second) // let the beacon flood settle
	// Cost field: node 6 (adjacent to sink) = 1, node 1 = 6.
	for i, want := range map[packet.NodeID]int{1: 6, 2: 5, 3: 4, 4: 3, 5: 2, 6: 1} {
		if got := stacks[i].Cost(); got != want {
			t.Fatalf("node %v cost = %d, want %d", i, got, want)
		}
	}
	stacks[1].OriginateData([]byte("x"))
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("delivered %d", m.Delivered)
	}
	if m.MeanHops() != 6 {
		t.Fatalf("hops = %v, want 6 (gradient descent)", m.MeanHops())
	}
}

func TestMCFADropsWithoutBeacon(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	m := core.NewMetrics()
	st := NewMCFA(m, 16)
	w.AddSensor(1, geom.Point{}, 12, 0, st)
	// No sink, no beacon: origination must count as no-route.
	st.OriginateData([]byte("x"))
	w.Run(sim.Second)
	if m.DroppedNoRoute != 1 || m.Delivered != 0 {
		t.Fatalf("dropped=%d delivered=%d", m.DroppedNoRoute, m.Delivered)
	}
}

func TestMCFAOffGradientNodesStaySilent(t *testing.T) {
	// Y topology: the packet from the stem must not be amplified back up.
	w := node.NewWorld(node.Config{Seed: 1})
	m := core.NewMetrics()
	stacks := map[packet.NodeID]*MCFA{}
	add := func(id packet.NodeID, p geom.Point) {
		st := NewMCFA(m, 16)
		stacks[id] = st
		w.AddSensor(id, p, 12, 0, st)
	}
	add(1, geom.Point{X: 0})
	add(2, geom.Point{X: 10})
	add(3, geom.Point{X: 20})        // on gradient toward sink
	add(4, geom.Point{X: 10, Y: 10}) // same cost as 2; off gradient for 1->sink
	w.AddGateway(1000, geom.Point{X: 30}, 12, 100, NewMCFASink(m, 16))
	w.Run(2 * sim.Second)
	stacks[1].OriginateData([]byte("x"))
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("delivered %d", m.Delivered)
	}
	// 4's cost equals 2's; 4 hears 2's relay (cost 3 -> its 3 not less) and
	// must not forward.
	if m.DataSent > 3 {
		t.Fatalf("DataSent = %d; off-gradient amplification", m.DataSent)
	}
}

func TestLEACHElectionThreshold(t *testing.T) {
	m := core.NewMetrics()
	l := NewLEACH(m, 0.2, 1000, geom.Point{}, 50)
	// Never been head: positive threshold.
	if l.threshold(0) <= 0 {
		t.Fatal("fresh node has zero election probability")
	}
	// Just served: ineligible for the rest of the epoch (1/P = 5 rounds).
	l.lastCH = 3
	for r := 3; r < 8; r++ {
		if l.threshold(r) != 0 {
			t.Fatalf("round %d: recent head eligible again too soon", r)
		}
	}
	if l.threshold(8) <= 0 {
		t.Fatal("node not re-eligible after epoch")
	}
	// Threshold rises across the epoch.
	fresh := NewLEACH(m, 0.2, 1000, geom.Point{}, 50)
	if fresh.threshold(4) <= fresh.threshold(0) {
		t.Fatalf("threshold not increasing: T(0)=%v T(4)=%v", fresh.threshold(0), fresh.threshold(4))
	}
	// Invalid P falls back to the classic 0.05.
	if NewLEACH(m, 7, 1000, geom.Point{}, 50).P != 0.05 {
		t.Fatal("invalid P not defaulted")
	}
}

func TestLEACHRoundsClusterAndDeliver(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 11, EnergyModel: energy.DefaultFirstOrder})
	m := core.NewMetrics()
	sinkID := packet.NodeID(1000)
	sinkPos := geom.Point{X: 250, Y: 50}
	var stacks []*LEACH
	rng := w.Kernel().Rand()
	region := geom.Square(100)
	for i, pos := range (geom.Uniform{}).Deploy(40, region, rng) {
		st := NewLEACH(m, 0.1, sinkID, sinkPos, 40)
		stacks = append(stacks, st)
		w.AddSensor(packet.NodeID(i+1), pos, 30, 5.0, st)
	}
	w.AddGateway(sinkID, sinkPos, 300, 300, NewLEACHSink(m))
	rounds := &LEACHRounds{World: w, Stacks: stacks, RoundLen: 5 * sim.Second}
	rounds.Start()

	// Each node reports once per second.
	rep := w.Kernel().Every(sim.Second, func() {
		for _, st := range stacks {
			st.OriginateData([]byte("t"))
		}
	})
	w.Run(30 * sim.Second)
	rep.Stop()
	rounds.Stop()
	// Flush the tail by starting one more round.
	for _, st := range stacks {
		st.beginRound(rounds.Round() + 1)
	}
	w.Run(w.Kernel().Now() + 5*sim.Second)

	if m.DeliveryRatio() < 0.9 {
		t.Fatalf("delivery ratio %v; clustering broken (delivered %d of %d)",
			m.DeliveryRatio(), m.Delivered, m.Generated)
	}
	// Heads existed: advertisement traffic happened.
	if m.NotifySent == 0 {
		t.Fatal("no cluster-head advertisements")
	}
	// Aggregation: far fewer long-hop data transmissions than readings.
	if m.DataSent >= m.Generated {
		t.Fatalf("DataSent %d >= Generated %d; aggregation is not working", m.DataSent, m.Generated)
	}
}

func TestLEACHHeadRotationSpreadsEnergy(t *testing.T) {
	// With rotation, no node should be head in two consecutive epochs, so
	// max energy use should be bounded relative to the mean.
	w := node.NewWorld(node.Config{Seed: 5, EnergyModel: energy.DefaultFirstOrder})
	m := core.NewMetrics()
	sinkID := packet.NodeID(1000)
	sinkPos := geom.Point{X: 150}
	var stacks []*LEACH
	for i, pos := range line(10, 0, 10) {
		st := NewLEACH(m, 0.2, sinkID, sinkPos, 60)
		stacks = append(stacks, st)
		w.AddSensor(packet.NodeID(i+1), pos, 30, 5.0, st)
	}
	w.AddGateway(sinkID, sinkPos, 300, 300, NewLEACHSink(m))
	rounds := &LEACHRounds{World: w, Stacks: stacks, RoundLen: 2 * sim.Second}
	rounds.Start()
	headCounts := map[int]int{}
	w.Kernel().Every(2*sim.Second+sim.Millisecond, func() {
		for i, st := range stacks {
			if st.IsClusterHead() {
				headCounts[i]++
			}
		}
	})
	rep := w.Kernel().Every(sim.Second, func() {
		for _, st := range stacks {
			st.OriginateData([]byte("t"))
		}
	})
	w.Run(60 * sim.Second)
	rep.Stop()
	rounds.Stop()
	heads := 0
	for _, c := range headCounts {
		if c > 0 {
			heads++
		}
	}
	if heads < 5 {
		t.Fatalf("only %d distinct nodes ever led a cluster; rotation broken (%v)", heads, headCounts)
	}
}

func TestSinkIgnoresNonData(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	m := core.NewMetrics()
	w.AddGateway(1000, geom.Point{X: 5}, 30, 100, NewSink(m))
	d := w.AddSensor(1, geom.Point{}, 30, 0, NewFlooding(m, 8))
	d.Send(&packet.Packet{Kind: packet.KindHello, From: 1, To: packet.Broadcast,
		Origin: 1, Target: packet.Broadcast, TTL: 1})
	w.Run(sim.Second)
	if m.Delivered != 0 {
		t.Fatal("sink recorded a HELLO as data")
	}
}
