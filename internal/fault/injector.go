package fault

import (
	"math"
	"math/rand"
	"sort"

	"wmsn/internal/attack"
	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Env gives the injector its handles into one run. Everything is per-run
// state: the injector never touches anything shared across runs.
type Env struct {
	World *node.World
	// Metrics is the run's sink; the injector increments FaultsInjected and
	// reads Generated/Delivered for the Reliability windows.
	Metrics *metrics.Memory
	// Gateways resolves OpKillGateway indices.
	Gateways []packet.NodeID
	// Sensors is the churn population.
	Sensors []packet.NodeID
	// Horizon bounds Reliability windows and default churn Stop.
	Horizon sim.Time
	// Seed is the scenario seed; compromise ops derive each attacker's
	// private RNG from it (attack.NodeRand) so adversary behavior never
	// draws from the kernel's — possibly per-lane — RNG.
	Seed int64
	// StopRouter and ResumeRouter, when set, implement the polite
	// control-plane partition on a mesh backbone. Nil hooks degrade
	// OpStopRouter/OpResumeRouter to device crash/recovery.
	StopRouter   func(packet.NodeID)
	ResumeRouter func(packet.NodeID)
}

// snap is a point-in-time copy of the delivery counters.
type snap struct {
	gen, del uint64
	taken    bool
}

// window tracks one disruptive event's delivery snapshots as the run
// progresses.
type window struct {
	ev                Event
	at, settled, done snap
	settleEnd, end    sim.Time
}

// Window summarizes delivery around one disruptive fault event: the
// cumulative delivery ratio up to the fault (Before), the ratio over the
// settle window right after it (During), and the ratio from the settle end
// to the next fault or the horizon (After). A window with no traffic
// reports ratio 1, matching metrics.Memory.DeliveryRatio.
type Window struct {
	Label  string
	At     sim.Time
	Before float64
	During float64
	After  float64
}

// Reliability is the fault summary attached to scenario results.
type Reliability struct {
	// FaultsInjected counts executed disruptive actions (crashes, gateway
	// kills, router stops, degradations, churn crashes); recoveries are
	// not faults and are excluded.
	FaultsInjected uint64
	// Reroutes counts routes invalidated and replaced after faults.
	Reroutes uint64
	// TimeToReroute is the mean latency between a route's liveness
	// deadline expiring and its replacement being installed (0 when no
	// reroute happened).
	TimeToReroute sim.Duration
	// TimeToRerouteP50/P95/Max characterize the failover-latency
	// distribution (metrics.HistFailoverLatencyUs): a healthy-looking mean
	// can hide tail stalls where a few sensors sat routeless for seconds.
	// Max is exact; the percentiles carry the histogram's 12.5% bucket
	// width. All zero when no reroute happened.
	TimeToRerouteP50 sim.Duration
	TimeToRerouteP95 sim.Duration
	TimeToRerouteMax sim.Duration
	// Compromised counts nodes whose stack a compromise op swapped for an
	// adversary; AttackerDropped/AttackerInjected total what those
	// adversaries swallowed and forged.
	Compromised      uint64
	AttackerDropped  uint64
	AttackerInjected uint64
	// Windows holds one entry per disruptive plan event, in time order.
	Windows []Window
}

// Injector executes a Plan on one run's kernel.
type Injector struct {
	plan        *Plan
	env         Env
	windows     []*window
	compromised map[packet.NodeID]bool
}

// Attach schedules every event of the plan onto the run's kernel and starts
// churn. The plan is only read, never written, so a single plan value is
// safe to share across RunMany workers; all randomness (churn inter-arrival
// and repair times) comes from the run's own kernel RNG, keeping faulted
// runs bit-identical at any worker count. Call Finish after the run to
// collect the Reliability summary.
func Attach(plan *Plan, env Env) *Injector {
	in := &Injector{plan: plan, env: env}
	if plan == nil {
		return in
	}
	k := env.World.Kernel()
	events := append([]Event(nil), plan.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	settle := plan.settle()
	for _, ev := range events {
		if !ev.Op.disruptive() {
			continue
		}
		w := &window{ev: ev, settleEnd: minTime(ev.At+sim.Time(settle), env.Horizon), end: env.Horizon}
		in.windows = append(in.windows, w)
	}
	// Each window's "after" period ends where the next disruptive event
	// begins (when that is past its own settle end).
	for i, w := range in.windows {
		if i+1 < len(in.windows) {
			if next := in.windows[i+1].ev.At; next > w.settleEnd {
				w.end = next
			} else {
				w.end = w.settleEnd
			}
		}
	}
	for _, ev := range events {
		ev := ev
		k.ScheduleAt(ev.At, func() { in.exec(ev) })
	}
	for _, w := range in.windows {
		w := w
		k.ScheduleAt(w.ev.At, func() { in.take(&w.at) })
		k.ScheduleAt(w.settleEnd, func() { in.take(&w.settled) })
		k.ScheduleAt(w.end, func() { in.take(&w.done) })
	}
	if c := plan.Churn; c != nil && c.Rate > 0 && len(env.Sensors) > 0 {
		stop := c.Stop
		if stop == 0 {
			stop = env.Horizon
		}
		for _, id := range env.Sensors {
			in.scheduleChurnCrash(id, c, c.Start, stop)
		}
	}
	return in
}

func minTime(a, b sim.Time) sim.Time {
	if b > 0 && b < a {
		return b
	}
	return a
}

// take records the current delivery counters into s.
func (in *Injector) take(s *snap) {
	s.gen, s.del, s.taken = in.env.Metrics.Generated, in.env.Metrics.Delivered, true
}

// exec applies one plan event.
func (in *Injector) exec(ev Event) {
	w := in.env.World
	switch ev.Op {
	case OpCrash:
		if d := w.Device(ev.Node); d != nil && d.Alive() {
			d.FailCause(node.CauseInjected)
		}
	case OpRecover:
		if d := w.Device(ev.Node); d != nil {
			d.Recover()
		}
	case OpKillGateway:
		if ev.GW < len(in.env.Gateways) {
			if d := w.Device(in.env.Gateways[ev.GW]); d != nil && d.Alive() {
				d.FailCause(node.CauseInjected)
			}
		}
	case OpStopRouter:
		if in.env.StopRouter != nil {
			in.env.StopRouter(ev.Node)
		} else if d := w.Device(ev.Node); d != nil && d.Alive() {
			d.FailCause(node.CauseInjected)
		}
	case OpResumeRouter:
		if in.env.ResumeRouter != nil {
			in.env.ResumeRouter(ev.Node)
		} else if d := w.Device(ev.Node); d != nil {
			d.Recover()
		}
	case OpDegradeLinks:
		for _, id := range ev.Nodes {
			if d := w.Device(id); d != nil {
				if st := d.SensorStation(); st != nil {
					st.SetRxLoss(ev.Rate)
				}
			}
		}
	case OpDegradeAll:
		w.SensorMedium().SetLossRate(ev.Rate)
	case OpCompromise:
		in.compromise(ev, ev.Node)
	case OpCompromiseFraction:
		// Victim selection must not depend on worker or shard count, so the
		// shuffle uses a private RNG seeded from the plan, never the kernel's.
		pool := append([]packet.NodeID(nil), in.env.Sensors...)
		rng := rand.New(rand.NewSource(ev.ASeed))
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		k := int(math.Round(ev.Frac * float64(len(pool))))
		if k < 1 && ev.Frac > 0 && len(pool) > 0 {
			k = 1
		}
		if k > len(pool) {
			k = len(pool)
		}
		for _, id := range pool[:k] {
			in.compromise(ev, id)
		}
	}
	if ev.Op.disruptive() {
		in.env.Metrics.Inc(metrics.FaultsInjected)
		if ev.Op == OpCompromise || ev.Op == OpCompromiseFraction {
			return // per-victim AttackInjected events already emitted
		}
		if b := w.Obs(); b.Active() {
			target := ev.Node
			if ev.Op == OpKillGateway && ev.GW < len(in.env.Gateways) {
				target = in.env.Gateways[ev.GW]
			}
			b.Emit(obs.Event{
				At: w.Kernel().Now(), Kind: obs.FaultInjected, Node: target,
				Detail: ev.label(), Value: int64(len(ev.Nodes)),
			})
		}
	}
}

// compromise swaps one victim's stack for the adversary ev.Attack describes.
// Gateways, routers, dead devices and already-compromised nodes are skipped:
// the paper's threat model (§2.3) is captured sensor nodes, and compromise
// is idempotent per node within a run.
func (in *Injector) compromise(ev Event, id packet.NodeID) {
	w := in.env.World
	d := w.Device(id)
	if d == nil || d.Kind() != node.Sensor || !d.Alive() || in.compromised[id] {
		return
	}
	if in.compromised == nil {
		in.compromised = make(map[packet.NodeID]bool)
	}
	in.compromised[id] = true
	rng := attack.NodeRand(in.env.Seed, id)
	st := ev.Attack.Instantiate(d, d.Stack(), rng, in.env.Metrics)
	d.SwapStack(st)
	in.env.Metrics.Inc(metrics.CompromisedNodes)
	if b := w.Obs(); b.Active() {
		b.Emit(obs.Event{
			At: w.Kernel().Now(), Kind: obs.AttackInjected, Node: id,
			Detail: ev.Attack.String(),
		})
	}
}

// scheduleChurnCrash arms the next churn crash for one sensor. Interarrival
// and repair times are exponential draws from the run's kernel RNG, made
// inside kernel callbacks, so the whole churn process replays identically
// per seed.
func (in *Injector) scheduleChurnCrash(id packet.NodeID, c *Churn, from sim.Time, stop sim.Time) {
	k := in.env.World.Kernel()
	mean := float64(sim.Hour) / c.Rate
	at := from + sim.Time(k.Rand().ExpFloat64()*mean)
	if at >= stop {
		return
	}
	k.ScheduleAt(at, func() {
		d := in.env.World.Device(id)
		if d == nil || !d.Alive() {
			// Already down (e.g. battery death); try again later.
			in.scheduleChurnCrash(id, c, k.Now(), stop)
			return
		}
		d.FailCause(node.CauseInjected)
		in.env.Metrics.Inc(metrics.FaultsInjected)
		if b := in.env.World.Obs(); b.Active() {
			b.Emit(obs.Event{At: k.Now(), Kind: obs.FaultInjected, Node: id, Detail: "churn"})
		}
		mttr := c.MTTR
		if mttr <= 0 {
			mttr = 30 * sim.Second
		}
		repair := sim.Duration(k.Rand().ExpFloat64() * float64(mttr))
		k.After(repair, func() {
			d.Recover()
			in.scheduleChurnCrash(id, c, k.Now(), stop)
		})
	})
}

// ratio guards a windowed delivery ratio (1 when nothing was generated).
func ratio(from, to snap) float64 {
	gen := to.gen - from.gen
	if !from.taken || !to.taken || gen == 0 {
		return 1
	}
	return float64(to.del-from.del) / float64(gen)
}

// Finish assembles the Reliability summary after the run. Snapshots that
// never fired (horizon cut short, e.g. StopAtFirstDeath) fall back to the
// final counter values.
func (in *Injector) Finish() *Reliability {
	if in.plan == nil {
		return nil
	}
	m := in.env.Metrics
	rel := &Reliability{
		FaultsInjected:   m.FaultsInjected,
		Reroutes:         m.Reroutes,
		Compromised:      m.CompromisedNodes,
		AttackerDropped:  m.AttackerDropped,
		AttackerInjected: m.AttackerInjected,
	}
	if m.Reroutes > 0 {
		rel.TimeToReroute = sim.Duration(m.FailoverLatencyUs / m.Reroutes)
	}
	if h := m.Hist(metrics.HistFailoverLatencyUs); h.Count() > 0 {
		rel.TimeToRerouteP50 = h.PercentileDuration(50)
		rel.TimeToRerouteP95 = h.PercentileDuration(95)
		rel.TimeToRerouteMax = sim.Duration(h.Max())
	}
	final := snap{gen: m.Generated, del: m.Delivered, taken: true}
	fill := func(s *snap) snap {
		if s.taken {
			return *s
		}
		return final
	}
	for _, w := range in.windows {
		at, settled, done := fill(&w.at), fill(&w.settled), fill(&w.done)
		before := 1.0
		if at.gen > 0 {
			before = float64(at.del) / float64(at.gen)
		}
		rel.Windows = append(rel.Windows, Window{
			Label:  w.ev.label(),
			At:     w.ev.At,
			Before: before,
			During: ratio(at, settled),
			After:  ratio(settled, done),
		})
	}
	return rel
}
