package experiments

import (
	"fmt"
	"math"

	"wmsn/internal/core"
	"wmsn/internal/geom"
	"wmsn/internal/network"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/placement"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// fig2Topology reconstructs the worked example of Fig. 2: a sink-centred
// field in which S1, S2, S3 and S4 reach the single sink in 2, 7, 6 and 9
// hops, and reach the best of three gateways in 1, 1, 1 and 2 hops.
//
// Layout (range 12 m, spacing 10 m):
//
//	branch A (north): sink - a1 - S1,                 G1 north of S1
//	branch B (east):  sink - b1..b6 - S2 - b7 - S4,   G2 between S2 and b7
//	branch C (west):  sink - c1..c5 - S3,             G3 west of S3
func fig2Topology() (pos map[packet.NodeID]geom.Point, named map[string]packet.NodeID, gateways []packet.NodeID) {
	pos = map[packet.NodeID]geom.Point{}
	named = map[string]packet.NodeID{}
	id := packet.NodeID(1)
	add := func(name string, p geom.Point) packet.NodeID {
		pos[id] = p
		if name != "" {
			named[name] = id
		}
		id++
		return id - 1
	}
	named["sink"] = add("sink", geom.Point{})
	// Branch A.
	add("", geom.Point{Y: 10})
	add("S1", geom.Point{Y: 20})
	// Branch B.
	for i := 1; i <= 6; i++ {
		add(fmt.Sprintf("b%d", i), geom.Point{X: float64(i) * 10})
	}
	add("S2", geom.Point{X: 70})
	add("b7", geom.Point{X: 80})
	add("S4", geom.Point{X: 90})
	// Branch C.
	for i := 1; i <= 5; i++ {
		add("", geom.Point{X: float64(i) * -10})
	}
	add("S3", geom.Point{X: -60})
	// Gateways.
	g1 := add("G1", geom.Point{Y: 30})
	g2 := add("G2", geom.Point{X: 75, Y: 8})
	g3 := add("G3", geom.Point{X: -70})
	return pos, named, []packet.NodeID{g1, g2, g3}
}

// E1HopReduction reproduces Fig. 2 exactly and generalizes it: average hop
// count to the nearest gateway as the number of gateways grows on a random
// field (§4.1's motivation for multiple-gateway deployment).
func E1HopReduction(o Opts) []*trace.Table {
	// Part A: the exact worked example.
	pos, named, gws := fig2Topology()
	ranges := map[packet.NodeID]float64{}
	for id := range pos {
		ranges[id] = 12
	}
	g := network.Build(pos, ranges)
	sink := named["sink"]

	exact := trace.NewTable("E1a: Fig. 2 worked example (hops per source node)",
		"node", "to single sink (paper)", "to single sink (ours)",
		"to nearest of 3 gateways (paper)", "to nearest of 3 gateways (ours)")
	paperSink := map[string]int{"S1": 2, "S2": 7, "S3": 6, "S4": 9}
	paperGW := map[string]int{"S1": 1, "S2": 1, "S3": 1, "S4": 2}
	for _, name := range []string{"S1", "S2", "S3", "S4"} {
		id := named[name]
		_, hGW := g.NearestOf(id, gws)
		exact.AddRow(name, paperSink[name], g.Hops(id, sink), paperGW[name], hGW)
	}

	// Part B: sweep the number of gateways on a uniform random field. Every
	// (m, seed) cell is an independent deterministic job: fan them all out
	// and fold the averages in submission order.
	n := pick(o, 300, 80)
	side := pick(o, 300.0, 160.0)
	rangeM := 40.0
	seeds := o.seeds(5)
	maxM := pick(o, 8, 4)
	sweep := trace.NewTable(
		fmt.Sprintf("E1b: avg hops to nearest gateway, %d sensors uniform on %.0fm field", n, side),
		"gateways m", "avg hops", "max hops", "total hops (∝ energy)", "unreachable")
	evals := forEach(o, maxM*seeds, func(i int) placement.Eval {
		m, s := i/seeds+1, i%seeds
		w := node.NewWorld(node.Config{Seed: int64(1000*m + s)})
		sensors := (geom.Uniform{}).Deploy(n, geom.Square(side), w.Kernel().Rand())
		gpos := (placement.Grid{}).Place(sensors, m, geom.Square(side), w.Kernel().Rand())
		return placement.Evaluate(sensors, gpos, rangeM)
	})
	for m := 1; m <= maxM; m++ {
		var avg, maxH, tot, unre float64
		for s := 0; s < seeds; s++ {
			ev := evals[(m-1)*seeds+s]
			avg += ev.AvgHops
			maxH += float64(ev.MaxHops)
			tot += float64(ev.TotalHops)
			unre += float64(ev.Unreachable)
		}
		f := float64(seeds)
		sweep.AddRow(m, avg/f, maxH/f, tot/f, unre/f)
	}
	sweep.AddNote("grid placement, range %.0f m, %d seeds", rangeM, seeds)
	return []*trace.Table{exact, sweep}
}

// E2Table1 replays the paper's Table 1: |P|=5 feasible places A..E, m=3
// gateways, three rounds ({A,B,C} -> {A,D,C} -> {E,D,C}); it prints node
// Si's incremental routing table after each round, with the selected route
// starred.
func E2Table1(o Opts) []*trace.Table {
	sensors := make([]geom.Point, 12)
	for i := range sensors {
		sensors[i] = geom.Point{X: float64(i) * 10}
	}
	places := []geom.Point{
		{X: 120},       // A
		{X: -10},       // B
		{X: 45, Y: 10}, // C
		{X: 75, Y: 10}, // D
		{X: 5, Y: 10},  // E
	}
	names := []string{"A", "B", "C", "D", "E"}
	schedule := [][]int{{0, 1, 2}, {0, 3, 2}, {4, 3, 2}}
	roundLen := 20 * sim.Second

	// E2 is one multi-round simulation whose rounds share routing state, so
	// there is nothing to fan out; it rides the worker pool as a single job
	// like every other experiment.
	return forEach(o, 1, func(int) []*trace.Table { return e2Rounds(sensors, places, names, schedule, roundLen) })[0]
}

func e2Rounds(sensors []geom.Point, places []geom.Point, names []string, schedule [][]int, roundLen sim.Duration) []*trace.Table {
	w := node.NewWorld(node.Config{Seed: 3})
	m := core.NewMetrics()
	params := core.DefaultParams()
	stacks := map[packet.NodeID]*core.MLRSensor{}
	for i, pos := range sensors {
		id := packet.NodeID(i + 1)
		st := core.NewMLRSensor(params, m)
		stacks[id] = st
		w.AddSensor(id, pos, 12, 0, st)
	}
	gwIDs := []packet.NodeID{1000, 1001, 1002}
	for i, id := range gwIDs {
		w.AddGateway(id, places[schedule[0][i]], 12, 500, core.NewMLRGateway(params, m))
	}
	rounds := &core.Rounds{World: w, Places: places, Gateways: gwIDs, RoundLen: roundLen, Schedule: schedule}
	rounds.Start()

	si := stacks[8] // "Si" at x=70
	var out []*trace.Table
	for r := 0; r < 3; r++ {
		// Originate a few seconds into the round, after the movement
		// notifications have flooded.
		w.Kernel().After(3*sim.Second, func() { si.OriginateData([]byte("reading")) })
		w.Run(sim.Time(r+1)*roundLen - sim.Second)
		tbl := trace.NewTable(
			fmt.Sprintf("E2: Si routing table during round %d (deployed: %s)", r+1, deployedNames(rounds, names)),
			"Pi", "hops", "route", "selected")
		best := si.BestRoute()
		snapshot := si.Table()
		for p := 0; p < len(places); p++ {
			entry, ok := snapshot[p]
			if !ok {
				continue
			}
			sel := ""
			if best != nil && best.Place == p {
				sel = "*"
			}
			tbl.AddRow(names[p], entry.Hops, packet.PathString(entry.Path), sel)
		}
		tbl.AddNote("table size %d of |P|=%d; entries accumulate and are never rebuilt", len(snapshot), len(places))
		out = append(out, tbl)
	}
	return out
}

func deployedNames(r *core.Rounds, names []string) string {
	s := ""
	for _, p := range r.CurrentPlaces() {
		if s != "" {
			s += ","
		}
		s += names[p]
	}
	return s
}

// E3Scalability reproduces the flat-architecture scalability complaint (§1):
// with a single sink, hop counts and delivery latency grow with field size;
// multiple gateways flatten the curve. Density is held constant while the
// field grows.
func E3Scalability(o Opts) []*trace.Table {
	sizes := pick(o, []int{100, 200, 400, 800}, []int{60, 120})
	seeds := o.seeds(2)
	tbl := trace.NewTable("E3: scalability at constant density (SPR, uniform field)",
		"sensors n", "field side m", "gateways", "avg hops", "mean latency ms", "delivery")
	var cfgs []scenario.Config
	for _, n := range sizes {
		side := 200 * math.Sqrt(float64(n)/100)
		for _, gws := range []int{1, 4} {
			for s := 0; s < seeds; s++ {
				cfgs = append(cfgs, scenario.Config{
					Seed: int64(10*n + gws + s), Protocol: scenario.SPR,
					NumSensors: n, Side: side, SensorRange: 40, NumGateways: gws,
					ReportInterval: 20 * sim.Second, RunFor: 80 * sim.Second,
					SensorBattery: 1e6, // hops/latency study; keep the storm from killing relays
				})
			}
		}
	}
	results := runConfigs(o, cfgs)
	i := 0
	for _, n := range sizes {
		side := 200 * math.Sqrt(float64(n)/100)
		for _, gws := range []int{1, 4} {
			var hops, lat, ratio float64
			for s := 0; s < seeds; s++ {
				res := results[i]
				i++
				hops += res.Metrics.MeanHops()
				lat += res.Metrics.MeanLatency().Millis()
				ratio += res.Metrics.DeliveryRatio()
			}
			f := float64(seeds)
			tbl.AddRow(n, fmt.Sprintf("%.0f", side), gws, hops/f, lat/f, ratio/f)
		}
	}
	tbl.AddNote("%d seeds per row; gateways grid-placed", seeds)
	return []*trace.Table{tbl}
}
