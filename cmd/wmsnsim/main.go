// Command wmsnsim runs one configurable WMSN simulation and prints its
// metrics: protocol, field geometry, traffic, energy model and radio
// imperfections are all flag-selectable.
//
// Examples:
//
//	wmsnsim -protocol spr -n 200 -side 300 -gateways 4
//	wmsnsim -protocol secmlr -n 100 -rounds 8 -roundlen 30 -runfor 300
//	wmsnsim -protocol leach -n 100 -gateways 1 -energy firstorder
package main

import (
	"flag"
	"fmt"
	"os"

	"wmsn"
	"wmsn/internal/obs"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "simulation seed")
		protocol  = flag.String("protocol", "spr", "spr|mlr|secmlr|flooding|gossiping|direct|mcfa|leach")
		n         = flag.Int("n", 100, "number of sensor nodes")
		side      = flag.Float64("side", 200, "field side length, meters")
		rangeM    = flag.Float64("range", 35, "sensor radio range, meters")
		gateways  = flag.Int("gateways", 3, "number of gateways (sinks)")
		interval  = flag.Float64("interval", 10, "reporting interval, seconds")
		runFor    = flag.Float64("runfor", 120, "simulated horizon, seconds")
		roundLen  = flag.Float64("roundlen", 100, "MLR round length, seconds")
		rounds    = flag.Int("rounds", 8, "MLR rotation schedule length")
		battery   = flag.Float64("battery", 2.0, "sensor battery, joules")
		energyStr = flag.String("energy", "fixed", "energy model: fixed|firstorder")
		loss      = flag.Float64("loss", 0, "per-link packet loss probability [0,1)")
		collide   = flag.Bool("collisions", false, "enable the collision model")
		untilDead = flag.Bool("until-death", false, "stop at the first sensor battery death")
		hotspot   = flag.Float64("hotspot", 0, "fraction of sensors packed in one corner (0 = uniform)")
		traceFile = flag.String("trace", "", "write a JSONL event trace to this file (see cmd/wmsntrace)")
		series    = flag.Float64("series", 0, "print a time-series table with this bucket width in seconds (enables tracing)")
	)
	flag.Parse()

	cfg := wmsn.Config{
		Seed:             *seed,
		Protocol:         wmsn.Protocol(*protocol),
		NumSensors:       *n,
		Side:             *side,
		SensorRange:      *rangeM,
		NumGateways:      *gateways,
		ReportInterval:   sim.Duration(*interval * float64(sim.Second)),
		RunFor:           sim.Time(*runFor * float64(sim.Second)),
		RoundLen:         sim.Duration(*roundLen * float64(sim.Second)),
		Rounds:           *rounds,
		SensorBattery:    *battery,
		LossRate:         *loss,
		Collisions:       *collide,
		StopAtFirstDeath: *untilDead,
	}
	switch *energyStr {
	case "fixed":
		cfg.EnergyModel = wmsn.DefaultFixedEnergy
	case "firstorder":
		cfg.EnergyModel = wmsn.DefaultFirstOrderEnergy
	default:
		fmt.Fprintf(os.Stderr, "unknown energy model %q\n", *energyStr)
		os.Exit(2)
	}
	if *hotspot > 0 {
		cfg.Deploy = wmsn.HotspotDeploy{
			Spot:     wmsn.Rect{X0: 0, Y0: 0, X1: *side / 4, Y1: *side / 4},
			Fraction: *hotspot,
		}
	}

	var (
		jsonl    *obs.JSONL
		bucketed *obs.Series
	)
	if *traceFile != "" || *series > 0 {
		bus := obs.NewBus()
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wmsnsim: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			jsonl = obs.NewJSONL(f)
			bus.Attach(jsonl)
		}
		if *series > 0 {
			bucket := sim.Duration(*series * float64(sim.Second))
			bucketed = obs.NewSeries(bucket)
			bus.Attach(bucketed)
			bus.Sample = bucket
		}
		cfg.Obs = bus
	}

	res, err := wmsn.RunE(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wmsnsim: %v\n", err)
		os.Exit(2)
	}
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "wmsnsim: writing trace: %v\n", err)
			os.Exit(1)
		}
	}
	printResult(res)
	if bucketed != nil {
		fmt.Println()
		bucketed.Table(fmt.Sprintf("time series (%s, seed %d)", cfg.Protocol, cfg.Seed)).Render(os.Stdout)
	}
}

func printResult(res scenario.Result) {
	m := res.Metrics
	tbl := trace.NewTable(fmt.Sprintf("wmsnsim: %s, %d sensors, %d gateway(s), %.0fm field",
		res.Cfg.Protocol, res.Cfg.NumSensors, res.Cfg.NumGateways, res.Cfg.Side),
		"metric", "value")
	tbl.AddRow("simulated time", res.Elapsed.String())
	tbl.AddRow("data generated", m.Generated)
	tbl.AddRow("data delivered", m.Delivered)
	tbl.AddRow("delivery ratio", m.DeliveryRatio())
	tbl.AddRow("duplicates", m.Duplicates)
	tbl.AddRow("mean hops", m.MeanHops())
	tbl.AddRow("mean latency ms", m.MeanLatency().Millis())
	tbl.AddRow("p99 latency ms", m.LatencyPercentile(99).Millis())
	tbl.AddRow("control packets", m.ControlPackets())
	tbl.AddRow("data transmissions", m.DataSent)
	tbl.AddRow("dropped (no route)", m.DroppedNoRoute)
	tbl.AddRow("radio transmissions", res.Radio.Transmissions)
	tbl.AddRow("bytes on air", res.Radio.BytesOnAir)
	tbl.AddRow("lost to radio", res.Radio.Lost)
	tbl.AddRow("collisions", res.Radio.Collided)
	tbl.AddRow("sensor energy mean mJ", res.Energy.Mean*1000)
	tbl.AddRow("sensor energy stddev mJ", res.Energy.StdDev()*1000)
	tbl.AddRow("sensors alive", fmt.Sprintf("%d/%d", res.SensorsAlive, res.SensorsTotal))
	if res.FirstDeath >= 0 {
		tbl.AddRow("first sensor death", res.FirstDeath.String())
	}
	per := m.PerGateway()
	for gw, count := range per {
		tbl.AddRow(fmt.Sprintf("delivered via %v", gw), count)
	}
	tbl.Render(os.Stdout)
}
