// Package mesh implements the middle layer of the WMSN architecture
// (Fig. 1): the self-organizing, self-healing wireless mesh backbone formed
// by gateways (WMGs), mesh routers (WMRs) and base stations.
//
// Routers discover neighbors with periodic HELLO beacons, flood link-state
// advertisements (LSAs) when their neighbor set changes, and forward data
// along shortest paths computed from the link-state database. When a router
// fails, its neighbors time it out, re-advertise, and traffic re-routes
// around the hole — the paper's §3.1 "if one node drops out of the network,
// its neighbors simply find another route".
package mesh

import (
	"encoding/binary"
	"sort"

	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Config tunes the mesh control plane.
type Config struct {
	// HelloInterval is the neighbor beacon period.
	HelloInterval sim.Duration
	// DeadFactor times HelloInterval is the neighbor expiry timeout.
	DeadFactor int
	// TTL bounds LSA floods and data forwarding.
	TTL uint8
}

// DefaultConfig returns production-flavored defaults scaled for simulation.
func DefaultConfig() Config {
	return Config{
		HelloInterval: 2 * sim.Second,
		DeadFactor:    3,
		TTL:           32,
	}
}

// Stats counts mesh control and data activity.
type Stats struct {
	HellosSent    uint64
	LSAsSent      uint64 // originations and re-floods
	DataForwarded uint64
	DataDelivered uint64
	DataDropped   uint64 // no route to target
	Recomputes    uint64
}

// lsa is one router's advertised adjacency.
type lsa struct {
	seq       uint32
	neighbors []packet.NodeID
}

// Router is the link-state stack attached to one mesh-capable device.
type Router struct {
	Cfg Config
	// OnDeliver receives packets whose Target is this router.
	OnDeliver func(pkt *packet.Packet)

	dev   *node.Device
	stats Stats

	// lastSeen tracks neighbor liveness by HELLO arrival time.
	lastSeen map[packet.NodeID]sim.Time
	// lsdb maps router -> latest advertised adjacency.
	lsdb map[packet.NodeID]lsa
	// routes maps destination -> next hop, from the last SPF run.
	routes map[packet.NodeID]packet.NodeID

	seq     uint32 // own LSA sequence
	dataSeq uint32
	ticker  *sim.Repeater
	stopped bool
}

// NewRouter creates a mesh router stack.
func NewRouter(cfg Config) *Router {
	if cfg.HelloInterval <= 0 {
		cfg = DefaultConfig()
	}
	return &Router{
		Cfg:      cfg,
		lastSeen: make(map[packet.NodeID]sim.Time),
		lsdb:     make(map[packet.NodeID]lsa),
		routes:   make(map[packet.NodeID]packet.NodeID),
	}
}

// Attach binds the router to a device's mesh radio and starts the control
// plane. The first HELLO goes out at a random fraction of the interval so
// co-located routers do not beacon in lockstep.
func (r *Router) Attach(dev *node.Device) {
	r.dev = dev
	dev.SetMeshHandler(r.handle)
	k := dev.World().Kernel()
	phase := sim.Duration(k.Rand().Int63n(int64(r.Cfg.HelloInterval)))
	k.After(phase, func() {
		if r.stopped {
			return
		}
		r.tick()
		r.ticker = k.Every(r.Cfg.HelloInterval, r.tick)
	})
}

// Stop halts the control plane (used when simulating router failure the
// polite way; crashes just Fail the device).
func (r *Router) Stop() {
	r.stopped = true
	if r.ticker != nil {
		r.ticker.Stop()
	}
}

// Resume restarts a Stopped control plane: the HELLO ticker is re-armed and
// the router re-advertises itself, so neighbors re-learn it within one
// HELLO interval. Resuming a router that was never stopped is a no-op; a
// crashed (Failed) device needs Device.Recover instead — its ticker kept
// running and rejoin is automatic.
func (r *Router) Resume() {
	if !r.stopped || r.dev == nil {
		return
	}
	r.stopped = false
	k := r.dev.World().Kernel()
	r.tick()
	r.ticker = k.Every(r.Cfg.HelloInterval, r.tick)
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() Stats { return r.stats }

// Neighbors returns the currently live neighbor set, sorted.
func (r *Router) Neighbors() []packet.NodeID {
	out := make([]packet.NodeID, 0, len(r.lastSeen))
	for id := range r.lastSeen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NextHop returns the next hop toward dst, if a route exists.
func (r *Router) NextHop(dst packet.NodeID) (packet.NodeID, bool) {
	nh, ok := r.routes[dst]
	return nh, ok
}

// Reachable reports whether dst is in the current routing table.
func (r *Router) Reachable(dst packet.NodeID) bool {
	_, ok := r.routes[dst]
	return ok
}

// tick sends a HELLO and expires dead neighbors.
func (r *Router) tick() {
	if r.stopped || r.dev == nil || !r.dev.Alive() {
		return
	}
	hello := &packet.Packet{
		Kind:   packet.KindHello,
		From:   r.dev.ID(),
		To:     packet.Broadcast,
		Origin: r.dev.ID(),
		Target: packet.Broadcast,
		TTL:    1,
	}
	if r.dev.SendMesh(hello) {
		r.stats.HellosSent++
	}
	// Expire neighbors we have not heard from.
	deadline := r.dev.Now() - sim.Duration(r.Cfg.DeadFactor)*r.Cfg.HelloInterval
	changed := false
	for id, at := range r.lastSeen {
		if at < deadline {
			delete(r.lastSeen, id)
			changed = true
		}
	}
	if changed {
		r.originateLSA()
	}
}

// originateLSA floods this router's current adjacency.
func (r *Router) originateLSA() {
	r.seq++
	nbrs := r.Neighbors()
	r.lsdb[r.dev.ID()] = lsa{seq: r.seq, neighbors: nbrs}
	r.recompute()
	payload := marshalLSA(r.seq, nbrs)
	pkt := &packet.Packet{
		Kind:    packet.KindMeshLSA,
		From:    r.dev.ID(),
		To:      packet.Broadcast,
		Origin:  r.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     r.seq,
		TTL:     r.Cfg.TTL,
		Payload: payload,
	}
	if r.dev.SendMesh(pkt) {
		r.stats.LSAsSent++
	}
}

func marshalLSA(seq uint32, nbrs []packet.NodeID) []byte {
	buf := binary.BigEndian.AppendUint32(nil, seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(nbrs)))
	for _, id := range nbrs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

func parseLSA(b []byte) (seq uint32, nbrs []packet.NodeID, ok bool) {
	if len(b) < 6 {
		return 0, nil, false
	}
	seq = binary.BigEndian.Uint32(b)
	n := int(binary.BigEndian.Uint16(b[4:]))
	if len(b) < 6+4*n {
		return 0, nil, false
	}
	for i := 0; i < n; i++ {
		nbrs = append(nbrs, packet.NodeID(binary.BigEndian.Uint32(b[6+4*i:])))
	}
	return seq, nbrs, true
}

// handle processes mesh-layer receptions.
func (r *Router) handle(pkt *packet.Packet) {
	if r.stopped {
		return
	}
	switch pkt.Kind {
	case packet.KindHello:
		_, known := r.lastSeen[pkt.Origin]
		r.lastSeen[pkt.Origin] = r.dev.Now()
		if !known {
			r.originateLSA()
		}
	case packet.KindMeshLSA:
		seq, nbrs, ok := parseLSA(pkt.Payload)
		if !ok || pkt.Origin == r.dev.ID() {
			return
		}
		cur, have := r.lsdb[pkt.Origin]
		if have && cur.seq >= seq {
			return // stale or duplicate
		}
		r.lsdb[pkt.Origin] = lsa{seq: seq, neighbors: nbrs}
		r.recompute()
		if pkt.TTL > 1 {
			fwd := pkt.Clone()
			fwd.From = r.dev.ID()
			fwd.TTL--
			fwd.Hops++
			if r.dev.SendMesh(fwd) {
				r.stats.LSAsSent++
			}
		}
	case packet.KindData:
		if pkt.Target == r.dev.ID() {
			r.stats.DataDelivered++
			if r.OnDeliver != nil {
				r.OnDeliver(pkt)
			}
			return
		}
		r.forward(pkt)
	}
}

// SendTo originates a data packet across the mesh toward dst. origin and
// seq identify the underlying sensor reading end to end.
func (r *Router) SendTo(dst packet.NodeID, origin packet.NodeID, seq uint32, payload []byte) bool {
	if r.dev == nil || !r.dev.Alive() {
		return false
	}
	if dst == r.dev.ID() {
		// Local delivery (the base station is also this node).
		r.stats.DataDelivered++
		if r.OnDeliver != nil {
			r.OnDeliver(&packet.Packet{Kind: packet.KindData, From: r.dev.ID(),
				To: r.dev.ID(), Origin: origin, Target: dst, Seq: seq, Payload: payload})
		}
		return true
	}
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    r.dev.ID(),
		To:      r.dev.ID(), // rewritten by forward
		Origin:  origin,
		Target:  dst,
		Seq:     seq,
		TTL:     r.Cfg.TTL,
		Payload: payload,
	}
	return r.forward(pkt)
}

func (r *Router) forward(pkt *packet.Packet) bool {
	if pkt.TTL <= 1 {
		r.stats.DataDropped++
		return false
	}
	nh, ok := r.routes[pkt.Target]
	if !ok {
		r.stats.DataDropped++
		return false
	}
	fwd := pkt.Clone()
	fwd.From = r.dev.ID()
	fwd.To = nh
	fwd.TTL--
	fwd.Hops++
	if r.dev.SendMesh(fwd) {
		r.stats.DataForwarded++
		return true
	}
	return false
}

// recompute runs BFS over the link-state database from this router,
// producing next hops for every reachable destination. Links are used only
// if both endpoints advertise each other (bidirectionality check).
func (r *Router) recompute() {
	r.stats.Recomputes++
	self := r.dev.ID()
	adj := func(u packet.NodeID) []packet.NodeID {
		if u == self {
			return r.Neighbors()
		}
		return r.lsdb[u].neighbors
	}
	has := func(list []packet.NodeID, id packet.NodeID) bool {
		for _, x := range list {
			if x == id {
				return true
			}
		}
		return false
	}
	// BFS with first-hop tracking.
	routes := make(map[packet.NodeID]packet.NodeID)
	type qe struct {
		id    packet.NodeID
		first packet.NodeID
	}
	visited := map[packet.NodeID]bool{self: true}
	var queue []qe
	for _, nb := range r.Neighbors() {
		// Accept the direct link if the neighbor's LSA confirms it or we
		// have no LSA from it yet (bootstrap).
		if l, ok := r.lsdb[nb]; ok && !has(l.neighbors, self) {
			continue
		}
		visited[nb] = true
		routes[nb] = nb
		queue = append(queue, qe{nb, nb})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nxt := range adj(cur.id) {
			if visited[nxt] {
				continue
			}
			// Bidirectionality: nxt must advertise cur back (or be unknown).
			if l, ok := r.lsdb[nxt]; ok && !has(l.neighbors, cur.id) {
				continue
			}
			visited[nxt] = true
			routes[nxt] = cur.first
			queue = append(queue, qe{nxt, cur.first})
		}
	}
	r.routes = routes
}

// Backbone wires a set of mesh-capable devices into one routed backbone and
// exposes gateway-to-base-station delivery for the sensor layer.
type Backbone struct {
	routers map[packet.NodeID]*Router
}

// NewBackbone attaches a Router to every given device (gateways, WMRs and
// base stations) and returns the handle.
func NewBackbone(cfg Config, devs ...*node.Device) *Backbone {
	b := &Backbone{routers: make(map[packet.NodeID]*Router, len(devs))}
	for _, d := range devs {
		r := NewRouter(cfg)
		r.Attach(d)
		b.routers[d.ID()] = r
	}
	return b
}

// Router returns the router on device id, or nil.
func (b *Backbone) Router(id packet.NodeID) *Router { return b.routers[id] }

// TotalStats sums stats across all routers.
func (b *Backbone) TotalStats() Stats {
	var t Stats
	for _, r := range b.routers {
		s := r.Stats()
		t.HellosSent += s.HellosSent
		t.LSAsSent += s.LSAsSent
		t.DataForwarded += s.DataForwarded
		t.DataDelivered += s.DataDelivered
		t.DataDropped += s.DataDropped
		t.Recomputes += s.Recomputes
	}
	return t
}
