package metrics

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

// randomSamples draws a deterministic mixed-scale sample set: small exact
// values, mid-range, and large values spanning many octaves.
func randomSamples(r *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		switch r.Intn(3) {
		case 0:
			out[i] = uint64(r.Intn(8)) // exact region
		case 1:
			out[i] = uint64(r.Intn(100_000))
		default:
			out[i] = uint64(r.Int63n(1 << 40))
		}
	}
	return out
}

// TestHistMergeCommutative pins the determinism contract that makes
// histograms safe to fold across workers and shards: Merge(a,b) and
// Merge(b,a) produce bit-identical state (compared through the exact-state
// snapshot), and merging matches observing the union directly.
func TestHistMergeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		sa := randomSamples(r, 1+r.Intn(500))
		sb := randomSamples(r, 1+r.Intn(500))
		var a, b, union Hist
		for _, v := range sa {
			a.Observe(v)
			union.Observe(v)
		}
		for _, v := range sb {
			b.Observe(v)
			union.Observe(v)
		}
		ab, ba := a, b // copies; Merge mutates the receiver
		ab.Merge(&b)
		ba.Merge(&a)
		if ab != ba {
			t.Fatalf("trial %d: Merge(a,b) != Merge(b,a)", trial)
		}
		if ab != union {
			t.Fatalf("trial %d: merged state differs from observing the union directly", trial)
		}
		ja, _ := json.Marshal(ab.Snapshot())
		jb, _ := json.Marshal(ba.Snapshot())
		if string(ja) != string(jb) {
			t.Fatalf("trial %d: merged snapshots not byte-identical:\n%s\n%s", trial, ja, jb)
		}
	}
}

// TestHistAtomicMatchesSequential pins that ObserveAtomic over any
// interleaving equals sequential Observe for the same multiset (here the
// degenerate single-goroutine interleaving; the commutativity of the update
// ops extends it to concurrent ones).
func TestHistAtomicMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	samples := randomSamples(r, 1000)
	var seq, at Hist
	for _, v := range samples {
		seq.Observe(v)
	}
	// Reversed order: final state must not depend on observation order.
	for i := len(samples) - 1; i >= 0; i-- {
		at.ObserveAtomic(samples[i])
	}
	if seq != at {
		t.Fatalf("atomic/reversed state differs from sequential")
	}
}

// TestHistPercentileErrorBound checks every percentile against an exact
// sort-based oracle: the histogram answer must be >= the oracle value below
// the next power-of-two step and within the documented 12.5% relative bucket
// width, and exact in the sub-8 region.
func TestHistPercentileErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	samples := randomSamples(r, 5000)
	var h Hist
	for _, v := range samples {
		h.Observe(v)
	}
	sorted := append([]uint64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{0, 1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100} {
		exact := sorted[int(p/100*float64(len(sorted)-1))]
		got := h.Percentile(p)
		if got < exact {
			t.Errorf("p%g: histogram %d below exact %d (must report the bucket upper bound)", p, got, exact)
		}
		// Upper bound: at most one 12.5%-wide bucket above the exact value.
		if limit := exact + exact/8 + 1; got > limit {
			t.Errorf("p%g: histogram %d exceeds error bound %d (exact %d)", p, got, limit, exact)
		}
	}
}

// TestHistExactSmallValues pins the exact sub-8 region and the exact
// min/max/sum/count bookkeeping.
func TestHistExactSmallValues(t *testing.T) {
	var h Hist
	for v := uint64(0); v < 8; v++ {
		h.Observe(v)
	}
	if h.Count() != 8 || h.Sum() != 28 || h.Min() != 0 || h.Max() != 7 {
		t.Fatalf("count/sum/min/max = %d/%d/%d/%d, want 8/28/0/7", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	// Ranks 0..7 map to percentiles; pick p mid-rank so floating-point
	// truncation in the rank formula cannot straddle a boundary. Each must
	// return its exact value (p > 100 clamps to Max = 7).
	for v := uint64(0); v < 8; v++ {
		p := (float64(v) + 0.5) * 100 / 7
		if got := h.Percentile(p); got != v {
			t.Errorf("Percentile(%g) = %d, want exact %d", p, got, v)
		}
	}
}

// TestHistIndexBounds walks the value space and checks every value lands in
// a bucket whose bounds contain it, and that bucket indices stay in range.
func TestHistIndexBounds(t *testing.T) {
	values := []uint64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1 << 20, 1 << 40, histMaxValue}
	for _, v := range values {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		lo, hi := histBucketBounds(i)
		if v < lo || v > hi {
			t.Errorf("value %d outside its bucket %d bounds [%d,%d]", v, i, lo, hi)
		}
	}
	// Clamp: values past the cap land in the top region without wrapping.
	var h Hist
	h.Observe(1 << 62)
	if h.Max() != histMaxValue {
		t.Errorf("over-cap observation: Max = %d, want clamp %d", h.Max(), histMaxValue)
	}
}

// TestObserveZeroAlloc pins the hot-path cost: recording into a histogram —
// and into a Memory's delivery path via Observe — allocates nothing, so
// dormant telemetry is free (the bench-guard contract).
func TestObserveZeroAlloc(t *testing.T) {
	var h Hist
	if n := testing.AllocsPerRun(100, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Hist.Observe allocates %v per op, want 0", n)
	}
	m := New()
	if n := testing.AllocsPerRun(100, func() { m.Observe(HistLinkRetries, 3) }); n != 0 {
		t.Errorf("Memory.Observe allocates %v per op, want 0", n)
	}
}

// TestMemoryHistogramMerge checks that merging Memories folds histograms and
// that LatencyPercentile falls back to the histogram when the exact per-run
// samples are absent (the merged-aggregate path).
func TestMemoryHistogramMerge(t *testing.T) {
	a, b := New(), New()
	a.Observe(HistFailoverLatencyUs, 1000)
	a.Observe(HistFailoverLatencyUs, 2000)
	b.Observe(HistFailoverLatencyUs, 4000)
	a.Merge(b)
	h := a.Hist(HistFailoverLatencyUs)
	if h.Count() != 3 || h.Sum() != 7000 || h.Min() != 1000 || h.Max() != 4000 {
		t.Fatalf("merged failover hist count/sum/min/max = %d/%d/%d/%d",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
}
