package sim

import (
	"sync/atomic"
	"testing"
)

// A pre-set interrupt flag must stop every run loop at entry, before any
// event executes.
func TestInterruptPreSetStopsImmediately(t *testing.T) {
	for name, run := range map[string]func(*Kernel) uint64{
		"Run":       func(k *Kernel) uint64 { return k.Run(Second) },
		"RunAll":    func(k *Kernel) uint64 { return k.RunAll() },
		"RunBefore": func(k *Kernel) uint64 { return k.RunBefore(Second) },
	} {
		k := NewKernel(1)
		fired := 0
		var reschedule func()
		reschedule = func() {
			fired++
			k.After(Millisecond, reschedule)
		}
		k.After(0, reschedule)
		var flag atomic.Bool
		flag.Store(true)
		k.SetInterrupt(&flag)
		if got := run(k); got != 0 {
			t.Errorf("%s with pre-set interrupt executed %d events, want 0", name, got)
		}
		if fired != 0 {
			t.Errorf("%s fired %d callbacks despite pre-set interrupt", name, fired)
		}
	}
}

// A flag set mid-run must stop the loop within one interrupt stride of
// events, not at the horizon.
func TestInterruptMidRunStopsWithinStride(t *testing.T) {
	k := NewKernel(1)
	var flag atomic.Bool
	k.SetInterrupt(&flag)
	var reschedule func()
	count := 0
	reschedule = func() {
		count++
		if count == 10 {
			// Simulate an external canceler: the flag flips while the loop is
			// mid-batch. (Setting it from a callback is safe too — atomics.)
			flag.Store(true)
		}
		k.After(Millisecond, reschedule)
	}
	k.After(0, reschedule)
	ran := k.Run(Hour)
	if ran == 0 {
		t.Fatal("run stopped before any event despite unset flag")
	}
	if ran > 10+interruptStride {
		t.Fatalf("interrupt honored after %d events, want within %d of the set point", ran, interruptStride)
	}
	if k.Now() >= Hour {
		t.Fatalf("clock reached the horizon (%v); the interrupt did not stop the run", k.Now())
	}
}

// An installed but never-set flag must not change what runs.
func TestInterruptUnsetFlagIsInert(t *testing.T) {
	fired := func(install bool) (uint64, Time) {
		k := NewKernel(7)
		if install {
			var flag atomic.Bool
			k.SetInterrupt(&flag)
		}
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 20000 {
				k.After(Microsecond, tick)
			}
		}
		k.After(0, tick)
		return k.Run(Hour), k.Now()
	}
	nPlain, tPlain := fired(false)
	nFlag, tFlag := fired(true)
	if nPlain != nFlag || tPlain != tFlag {
		t.Fatalf("armed-but-quiet interrupt changed the run: %d@%v vs %d@%v",
			nFlag, tFlag, nPlain, tPlain)
	}
}
