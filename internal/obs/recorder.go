package obs

// Recorder is the flight recorder: a bounded ring buffer that always holds
// the most recent events. It is cheap enough to leave attached for an entire
// soak run — observing overwrites a slot, never allocates after the buffer
// fills — and when an invariant trips, Tail returns the last moments before
// the failure for a post-mortem dump.
type Recorder struct {
	buf   []Event
	cap   int
	next  int // slot the next event lands in
	count int // events currently buffered (<= cap)
	total uint64
}

// DefaultRecorderCap is the flight-recorder depth used when NewRecorder is
// given a non-positive capacity.
const DefaultRecorderCap = 4096

// NewRecorder returns a recorder keeping the last n events.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRecorderCap
	}
	return &Recorder{buf: make([]Event, 0, n), cap: n}
}

// Observe implements Sink.
func (r *Recorder) Observe(ev Event) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
	}
	r.next = (r.next + 1) % r.cap
	r.count = len(r.buf)
	r.total++
}

// Total returns how many events were observed over the recorder's lifetime,
// including those already overwritten.
func (r *Recorder) Total() uint64 { return r.total }

// Len returns how many events are currently buffered.
func (r *Recorder) Len() int { return r.count }

// Events returns the buffered events oldest-first.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.count)
	if r.count == r.cap {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// Tail returns the most recent n buffered events oldest-first (all of them
// when n exceeds the buffer).
func (r *Recorder) Tail(n int) []Event {
	evs := r.Events()
	if n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	return evs
}
