package experiments

import (
	"fmt"

	"wmsn/internal/core"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// E14LinkARQ measures hop-by-hop reliable delivery (the link-layer ARQ) on
// lossy media: delivery ratio versus per-link loss for SPR and MLR, with
// the ARQ on and off. Fire-and-forget delivery collapses geometrically with
// hop count — at 20% per-link loss a 3-hop path succeeds ~half the time —
// while per-hop acknowledgment with 4 retries drives residual per-hop loss
// to 0.2^5 ≈ 0.03%, keeping end-to-end delivery near 100%. The retry and
// queue-drop columns price that reliability in extra transmissions.
func E14LinkARQ(o Opts) []*trace.Table {
	n := pick(o, 100, 40)
	side := pick(o, 200.0, 130.0)
	horizon := pick(o, 120*sim.Second, 60*sim.Second)
	seeds := o.seeds(3)
	losses := pick(o,
		[]float64{0, 0.05, 0.10, 0.20, 0.30},
		[]float64{0, 0.20})

	arqParams := core.DefaultParams()
	arqParams.LinkRetries = 4
	arqParams.ForwardQueueLimit = 32

	type variant struct {
		name   string
		proto  scenario.Protocol
		params *core.Params // nil = fire-and-forget defaults
	}
	variants := []variant{
		{"SPR fire-and-forget", scenario.SPR, nil},
		{"SPR + link ARQ", scenario.SPR, &arqParams},
		{"MLR fire-and-forget", scenario.MLR, nil},
		{"MLR + link ARQ", scenario.MLR, &arqParams},
	}

	tbl := trace.NewTable("E14: delivery ratio vs per-link loss (hop-by-hop ARQ)",
		"variant", "loss", "delivery", "retries", "link-failures", "queue-drops")
	var cfgs []scenario.Config
	for _, v := range variants {
		for _, loss := range losses {
			for s := 0; s < seeds; s++ {
				cfgs = append(cfgs, scenario.Config{
					Seed: int64(1400 + s), Protocol: v.proto, NumSensors: n, Side: side,
					SensorRange: 40, NumGateways: 3,
					ReportInterval: 10 * sim.Second, RunFor: horizon,
					SensorBattery: 1e6,
					LossRate:      loss,
					Params:        v.params,
				})
			}
		}
	}
	results := runConfigs(o, cfgs)
	ci := 0
	for _, v := range variants {
		for _, loss := range losses {
			o.Cells.add("E14", map[string]string{
				"variant":  v.name,
				"protocol": string(v.proto),
				"loss":     fmt.Sprintf("%.2f", loss),
			}, results[ci*seeds:(ci+1)*seeds]...)
			ci++
		}
	}
	i := 0
	for _, v := range variants {
		for _, loss := range losses {
			var ratio, retries, failures, drops float64
			for s := 0; s < seeds; s++ {
				m := results[i].Metrics
				ratio += m.DeliveryRatio()
				retries += float64(m.LinkRetries)
				failures += float64(m.LinkFailures)
				drops += float64(m.QueueDrops)
				i++
			}
			f := float64(seeds)
			tbl.AddRow(v.name, loss, ratio/f, retries/f, failures/f, drops/f)
		}
	}
	tbl.AddNote("%d sensors, 3 gateways, %d seeds; ARQ = 4 retries, 10 ms base ACK wait, "+
		"exponential backoff, 32-frame forwarding queue; loss is applied per link per frame",
		n, seeds)
	return []*trace.Table{tbl}
}
