package core

import (
	"math/rand"
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/network"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// sprWorld builds a world of sensors at the given positions plus gateways,
// all running SPR, and returns the world, the metrics, and the stacks.
func sprWorld(t testing.TB, seed int64, sensors []geom.Point, gateways []geom.Point, rangeM float64) (*node.World, *Metrics, map[packet.NodeID]*SPRSensor) {
	t.Helper()
	w := node.NewWorld(node.Config{Seed: seed})
	m := NewMetrics()
	p := DefaultParams()
	stacks := make(map[packet.NodeID]*SPRSensor)
	for i, pos := range sensors {
		id := packet.NodeID(i + 1)
		st := NewSPRSensor(p, m)
		stacks[id] = st
		w.AddSensor(id, pos, rangeM, 0, st)
	}
	for i, pos := range gateways {
		id := packet.NodeID(1000 + i)
		w.AddGateway(id, pos, rangeM, 500, NewSPRGateway(p, m))
	}
	return w, m, stacks
}

// line returns n points spaced d apart on the x axis starting at x0.
func line(n int, x0, d float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: x0 + float64(i)*d}
	}
	return pts
}

func TestSPRDeliversOverMultipleHops(t *testing.T) {
	// Sensors at x=0..40, gateway at x=50, range 12: 5 hops from node 1.
	w, m, stacks := sprWorld(t, 1, line(5, 0, 10), []geom.Point{{X: 50}}, 12)
	stacks[1].OriginateData([]byte("reading"))
	w.Run(5 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("delivered %d, want 1 (generated %d, dropped %d)", m.Delivered, m.Generated, m.DroppedNoRoute)
	}
	if got := m.MeanHops(); got != 5 {
		t.Fatalf("hops = %v, want 5", got)
	}
	if m.MeanLatency() <= 0 {
		t.Fatal("latency not recorded")
	}
	r := stacks[1].BestRoute()
	if r == nil || r.Gateway != 1000 || r.Hops != 5 {
		t.Fatalf("best route = %+v", r)
	}
}

func TestSPRFindsBFSOptimalPaths(t *testing.T) {
	// Random connected topology; every sensor's discovered hop count must
	// equal the BFS optimum (loss-free medium, Property 1/E12 oracle).
	rng := rand.New(rand.NewSource(42))
	var sensors []geom.Point
	for i := 0; i < 60; i++ {
		sensors = append(sensors, geom.Point{X: rng.Float64() * 180, Y: rng.Float64() * 180})
	}
	gws := []geom.Point{{X: 30, Y: 30}, {X: 150, Y: 150}}
	w, m, stacks := sprWorld(t, 7, sensors, gws, 45)
	g := network.FromWorld(w)
	if !g.Connected() {
		t.Skip("random topology disconnected; try another seed")
	}
	gwIDs := []packet.NodeID{1000, 1001}
	for id, st := range stacks {
		_ = id
		st.OriginateData([]byte("x"))
	}
	w.Run(30 * sim.Second)
	if m.DeliveryRatio() < 1 {
		t.Fatalf("delivery ratio %v, want 1 on loss-free medium", m.DeliveryRatio())
	}
	for id, st := range stacks {
		r := st.BestRoute()
		if r == nil {
			t.Fatalf("sensor %v has no route", id)
		}
		_, wantHops := g.NearestOf(id, gwIDs)
		if r.Hops != wantHops {
			t.Errorf("sensor %v found %d hops, BFS optimum %d", id, r.Hops, wantHops)
		}
	}
}

func TestSPRSecondPacketUsesTables(t *testing.T) {
	w, m, stacks := sprWorld(t, 1, line(4, 0, 10), []geom.Point{{X: 40}}, 12)
	stacks[1].OriginateData([]byte("a"))
	w.Run(3 * sim.Second)
	rreqAfterFirst := m.RReqSent
	stacks[1].OriginateData([]byte("b"))
	w.Run(6 * sim.Second)
	if m.Delivered != 2 {
		t.Fatalf("delivered %d, want 2", m.Delivered)
	}
	if m.RReqSent != rreqAfterFirst {
		t.Fatalf("second packet triggered discovery: RREQ %d -> %d", rreqAfterFirst, m.RReqSent)
	}
}

func TestSPROnPathNodesLearnRoutes(t *testing.T) {
	w, _, stacks := sprWorld(t, 1, line(4, 0, 10), []geom.Point{{X: 40}}, 12)
	stacks[1].OriginateData([]byte("a"))
	w.Run(3 * sim.Second)
	// Nodes 2,3,4 are on the installed path; each should have a route with
	// the correct suffix hop count (step 5.2).
	for i, wantHops := range map[packet.NodeID]int{2: 3, 3: 2, 4: 1} {
		r, ok := stacks[i].Table()[1000]
		if !ok {
			t.Fatalf("node %v did not learn a route", i)
		}
		if r.Hops != wantHops {
			t.Fatalf("node %v learned %d hops, want %d", i, r.Hops, wantHops)
		}
	}
}

func TestSPRCachedRouteAnswersQueries(t *testing.T) {
	w, m, stacks := sprWorld(t, 1, line(6, 0, 10), []geom.Point{{X: 60}}, 12)
	stacks[1].OriginateData([]byte("a"))
	w.Run(3 * sim.Second)
	// Node 1's flood installed routes on 2..6. A later discovery by a
	// fresh flood from node 1 again... instead check the shortcut: node 2's
	// own discovery should be answered by an on-path node without the
	// flood reaching the gateway as a new path.
	rreqBefore := m.RReqSent
	stacks[2].OriginateData([]byte("b"))
	w.Run(6 * sim.Second)
	if m.Delivered != 2 {
		t.Fatalf("delivered %d, want 2", m.Delivered)
	}
	// Node 2 already had a table entry from the first flow's path install,
	// so it should not even flood (best != nil short-circuit).
	if m.RReqSent != rreqBefore {
		t.Fatalf("cached-route node flooded anyway: %d -> %d", rreqBefore, m.RReqSent)
	}
}

func TestSPRPicksNearestOfMultipleGateways(t *testing.T) {
	// Node 1 at x=0: gateway A at x=20 (2 hops), gateway B at x=90 (far).
	w, m, stacks := sprWorld(t, 1, line(9, 0, 10), []geom.Point{{X: 20}, {X: 90}}, 12)
	// All nodes send; each should pick its closer gateway.
	for _, st := range stacks {
		st.OriginateData([]byte("x"))
	}
	w.Run(10 * sim.Second)
	if m.DeliveryRatio() < 1 {
		t.Fatalf("delivery ratio %v", m.DeliveryRatio())
	}
	if r := stacks[1].BestRoute(); r == nil || r.Gateway != 1000 {
		t.Fatalf("node 1 best = %+v, want gw 1000", r)
	}
	if r := stacks[9].BestRoute(); r == nil || r.Gateway != 1001 {
		t.Fatalf("node 9 best = %+v, want gw 1001", r)
	}
	per := m.PerGateway()
	if per[1000] == 0 || per[1001] == 0 {
		t.Fatalf("both gateways should carry load: %v", per)
	}
}

func TestSPRUnreachableGatewayDropsAfterRetries(t *testing.T) {
	// Gateway far out of range of everyone.
	w, m, stacks := sprWorld(t, 1, line(3, 0, 10), []geom.Point{{X: 500}}, 12)
	stacks[1].OriginateData([]byte("x"))
	stacks[1].OriginateData([]byte("y"))
	w.Run(20 * sim.Second)
	if m.Delivered != 0 {
		t.Fatal("delivered to unreachable gateway")
	}
	if m.DroppedNoRoute != 2 {
		t.Fatalf("DroppedNoRoute = %d, want 2", m.DroppedNoRoute)
	}
	if stacks[1].BestRoute() != nil {
		t.Fatal("route invented to unreachable gateway")
	}
	// Retries happened: initial flood + 2 retries = 3 RREQ from origin at
	// least (no forwarding since others also flooded... at minimum 3).
	if m.RReqSent < 3 {
		t.Fatalf("RReqSent = %d, want >= 3 (retries)", m.RReqSent)
	}
}

func TestSPRQueueLimit(t *testing.T) {
	w, m, stacks := sprWorld(t, 1, line(2, 0, 10), []geom.Point{{X: 500}}, 12)
	small := DefaultParams()
	small.QueueLimit = 3
	st := NewSPRSensor(small, m)
	w.AddSensor(99, geom.Point{X: 5, Y: 5}, 12, 0, st)
	for i := 0; i < 10; i++ {
		st.OriginateData([]byte{byte(i)})
	}
	if m.DroppedQueue != 7 {
		t.Fatalf("DroppedQueue = %d, want 7", m.DroppedQueue)
	}
	_ = stacks
	w.Run(time10s())
}

func time10s() sim.Time { return 10 * sim.Second }

func TestSPRGatewayUplinkCallback(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 1})
	m := NewMetrics()
	p := DefaultParams()
	var uplinked []uint32
	gw := NewSPRGateway(p, m)
	gw.Uplink = func(origin packet.NodeID, seq uint32, payload []byte) {
		uplinked = append(uplinked, seq)
		if string(payload) != "pay" {
			t.Errorf("payload = %q", payload)
		}
	}
	w.AddGateway(1000, geom.Point{X: 10}, 30, 100, gw)
	st := NewSPRSensor(p, m)
	w.AddSensor(1, geom.Point{}, 30, 0, st)
	st.OriginateData([]byte("pay"))
	w.Run(5 * sim.Second)
	if len(uplinked) != 1 {
		t.Fatalf("uplink called %d times", len(uplinked))
	}
}

func TestSPRDirectNeighborOfGateway(t *testing.T) {
	w, m, stacks := sprWorld(t, 1, []geom.Point{{X: 0}}, []geom.Point{{X: 10}}, 15)
	stacks[1].OriginateData([]byte("x"))
	w.Run(3 * sim.Second)
	if m.Delivered != 1 || m.MeanHops() != 1 {
		t.Fatalf("delivered=%d hops=%v, want 1/1", m.Delivered, m.MeanHops())
	}
}

func TestSPRSurvivesLossyMedium(t *testing.T) {
	w := node.NewWorld(node.Config{Seed: 5})
	// Rebuild with loss: need custom world config.
	cfg := node.Config{Seed: 5}
	cfg.SensorRadio.BitRate = 250_000
	cfg.SensorRadio.LossRate = 0.1
	w = node.NewWorld(cfg)
	m := NewMetrics()
	p := DefaultParams()
	stacks := map[packet.NodeID]*SPRSensor{}
	for i, pos := range line(5, 0, 10) {
		id := packet.NodeID(i + 1)
		st := NewSPRSensor(p, m)
		stacks[id] = st
		w.AddSensor(id, pos, 15, 0, st)
	}
	w.AddGateway(1000, geom.Point{X: 55}, 15, 100, NewSPRGateway(p, m))
	for i := 0; i < 20; i++ {
		for _, st := range stacks {
			st.OriginateData([]byte("x"))
		}
		w.Run(w.Kernel().Now() + sim.Second)
	}
	w.Run(w.Kernel().Now() + 10*sim.Second)
	if m.DeliveryRatio() < 0.5 {
		t.Fatalf("delivery ratio %v under 10%% loss; protocol too fragile", m.DeliveryRatio())
	}
	if m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestSPRDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		w, m, stacks := sprWorld(t, 99, line(10, 0, 10), []geom.Point{{X: 105}}, 15)
		for _, st := range stacks {
			st.OriginateData([]byte("x"))
		}
		w.Run(20 * sim.Second)
		return m.Delivered, m.RReqSent, m.MeanHops()
	}
	d1, r1, h1 := run()
	d2, r2, h2 := run()
	if d1 != d2 || r1 != r2 || h1 != h2 {
		t.Fatalf("non-deterministic: (%d,%d,%v) vs (%d,%d,%v)", d1, r1, h1, d2, r2, h2)
	}
}

func TestBestOfTieBreak(t *testing.T) {
	rs := []Route{
		{Gateway: 1002, Hops: 3, Path: []packet.NodeID{1, 2, 3, 1002}},
		{Gateway: 1000, Hops: 3, Path: []packet.NodeID{1, 4, 5, 1000}},
		{Gateway: 1001, Hops: 4, Path: []packet.NodeID{1, 2, 3, 4, 1001}},
	}
	b := bestOf(rs)
	if b.Gateway != 1000 {
		t.Fatalf("tie break chose %v", b.Gateway)
	}
	if bestOf(nil) != nil {
		t.Fatal("bestOf(nil) != nil")
	}
}

func TestRouteHelpers(t *testing.T) {
	r := Route{Gateway: 9, Place: 2, Hops: 2, Path: []packet.NodeID{1, 5, 9}}
	if r.NextHop() != 5 {
		t.Fatalf("NextHop = %v", r.NextHop())
	}
	if (Route{Path: []packet.NodeID{7}}).NextHop() != 7 {
		t.Fatal("single-element path NextHop")
	}
	if (Route{}).NextHop() != packet.None {
		t.Fatal("empty path NextHop")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSeenSetBounded(t *testing.T) {
	s := packet.NewDedupe(10)
	for i := uint32(0); i < 100; i++ {
		if s.Check(1, i) {
			t.Fatalf("fresh key %d reported seen", i)
		}
	}
	if s.Len() > 10 {
		t.Fatalf("seen set grew to %d > limit", s.Len())
	}
	if !s.Check(1, 99) {
		t.Fatal("just-inserted key not seen")
	}
}

func TestMetricsAggregates(t *testing.T) {
	m := NewMetrics()
	m.RecordGenerated(1, 1, 0)
	m.RecordGenerated(1, 2, 100)
	m.RecordDelivered(1, 1, 1000, 3, 1000)
	m.RecordDelivered(1, 1, 1000, 3, 2000) // duplicate
	if m.Delivered != 1 || m.Duplicates != 1 {
		t.Fatalf("delivered/dup = %d/%d", m.Delivered, m.Duplicates)
	}
	if m.DeliveryRatio() != 0.5 {
		t.Fatalf("ratio = %v", m.DeliveryRatio())
	}
	if m.MeanHops() != 3 {
		t.Fatalf("hops = %v", m.MeanHops())
	}
	if m.MeanLatency() != 1000 {
		t.Fatalf("latency = %v", m.MeanLatency())
	}
	if m.LatencyPercentile(50) != 1000 || m.LatencyPercentile(100) != 1000 {
		t.Fatal("percentiles wrong")
	}
	if NewMetrics().DeliveryRatio() != 1 {
		t.Fatal("empty ratio should be 1")
	}
	if NewMetrics().LatencyPercentile(99) != 0 || NewMetrics().MeanHops() != 0 || NewMetrics().MeanLatency() != 0 {
		t.Fatal("empty metric aggregates should be 0")
	}
	if m.GatewayLoadImbalance() != 1 {
		t.Fatalf("imbalance = %v, want 1 for single gateway", m.GatewayLoadImbalance())
	}
	if NewMetrics().GatewayLoadImbalance() != 0 {
		t.Fatal("empty imbalance should be 0")
	}
}
