package core

import (
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
	"wmsn/internal/wsncrypto"
)

// secWorld builds a SecMLR deployment. Sensor IDs are 1..n, gateway IDs
// 1000+i. Returns sensor stacks and gateway stacks keyed by ID.
func secWorld(t testing.TB, seed int64, sensors []geom.Point, places []geom.Point,
	schedule [][]int, roundLen sim.Duration, rangeM float64) (*node.World, *Metrics,
	map[packet.NodeID]*SecMLRSensor, map[packet.NodeID]*SecMLRGateway, *Rounds) {
	t.Helper()
	w := node.NewWorld(node.Config{Seed: seed})
	m := NewMetrics()
	p := DefaultParams()

	var sensorIDs, gwIDs []packet.NodeID
	for i := range sensors {
		sensorIDs = append(sensorIDs, packet.NodeID(i+1))
	}
	for i := range schedule[0] {
		gwIDs = append(gwIDs, packet.NodeID(1000+i))
	}
	sKeys, gKeys := ProvisionKeys([]byte("test-master"), sensorIDs, gwIDs, 64)

	sStacks := make(map[packet.NodeID]*SecMLRSensor)
	for i, pos := range sensors {
		id := sensorIDs[i]
		st := NewSecMLRSensor(p, m, sKeys[id])
		sStacks[id] = st
		w.AddSensor(id, pos, rangeM, 0, st)
	}
	gStacks := make(map[packet.NodeID]*SecMLRGateway)
	for i, id := range gwIDs {
		st := NewSecMLRGateway(p, m, gKeys[id])
		gStacks[id] = st
		w.AddGateway(id, places[schedule[0][i]], rangeM, 500, st)
	}
	r := &Rounds{World: w, Places: places, Gateways: gwIDs, RoundLen: roundLen, Schedule: schedule}
	r.Start()
	return w, m, sStacks, gStacks, r
}

func TestSecMLRDeliversAndAcks(t *testing.T) {
	sensors := line(6, 0, 10)
	places := []geom.Point{{X: 60}, {X: -10}}
	w, m, ss, _, _ := secWorld(t, 1, sensors, places, [][]int{{0, 1}}, sim.Hour, 12)
	ss[3].OriginateData([]byte("secret reading"))
	w.Run(10 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("delivered %d (generated %d, noroute %d, abandoned %d)",
			m.Delivered, m.Generated, m.DroppedNoRoute, m.AbandonedData)
	}
	if m.AckSent == 0 {
		t.Fatal("no ACK traffic")
	}
	if m.Failovers != 0 {
		t.Fatalf("spurious failovers: %d", m.Failovers)
	}
	if m.AbandonedData != 0 {
		t.Fatalf("abandoned: %d", m.AbandonedData)
	}
	// Node 3 at x=20: place 1 (x=-10) is 3 hops, place 0 (x=60) is 4 hops.
	best := ss[3].BestRoute()
	if best == nil || best.Place != 1 || best.Hops != 3 {
		t.Fatalf("best = %+v, want place 1, 3 hops", best)
	}
	// Both places verified end to end.
	if len(ss[3].VerifiedRoutes()) != 2 {
		t.Fatalf("verified routes: %v", ss[3].VerifiedRoutes())
	}
}

func TestSecMLRPayloadConfidentialAndIntact(t *testing.T) {
	sensors := line(4, 0, 10)
	places := []geom.Point{{X: 40}}
	w, _, ss, gs, _ := secWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	var got []byte
	gs[1000].Uplink = func(origin packet.NodeID, seq uint32, payload []byte) {
		got = append([]byte(nil), payload...)
	}
	ss[1].OriginateData([]byte("plaintext-reading"))
	w.Run(10 * sim.Second)
	if string(got) != "plaintext-reading" {
		t.Fatalf("gateway decrypted %q", got)
	}
}

func TestSecMLRGatewayRejectsForgedRReq(t *testing.T) {
	// An attacker floods an RREQ claiming to be sensor 1 without the key.
	sensors := line(3, 0, 10)
	places := []geom.Point{{X: 30}}
	w, m, _, _, _ := secWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	atk := w.AddSensor(666, geom.Point{X: 25}, 12, 0, nil)
	forged := &packet.Packet{
		Kind: packet.KindRReq, From: 666, To: packet.Broadcast,
		Origin: 1, Target: packet.Broadcast, Seq: 77, TTL: 8,
		Path: []packet.NodeID{1},
		Payload: marshalRReqBlocks([]rreqBlock{{
			Gateway: 1000, Counter: 1, Cipher: 0x00,
			MAC: make([]byte, wsncrypto.MACSize),
		}}),
	}
	atk.Send(forged)
	w.Run(5 * sim.Second)
	if m.RejectedMAC == 0 {
		t.Fatal("forged RREQ not rejected")
	}
	if m.RResSent != 0 {
		t.Fatal("gateway answered a forged RREQ")
	}
}

func TestSecMLRGatewayRejectsUnknownSensor(t *testing.T) {
	sensors := line(3, 0, 10)
	places := []geom.Point{{X: 30}}
	w, m, _, _, _ := secWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	// Sybil identity 999 was never provisioned.
	atk := w.AddSensor(999, geom.Point{X: 25}, 12, 0, nil)
	forged := &packet.Packet{
		Kind: packet.KindRReq, From: 999, To: packet.Broadcast,
		Origin: 999, Target: packet.Broadcast, Seq: 1, TTL: 8,
		Path: []packet.NodeID{999},
		Payload: marshalRReqBlocks([]rreqBlock{{
			Gateway: 1000, Counter: 1, Cipher: 0x00,
			MAC: make([]byte, wsncrypto.MACSize),
		}}),
	}
	atk.Send(forged)
	w.Run(5 * sim.Second)
	if m.RejectedMAC == 0 {
		t.Fatal("Sybil RREQ not rejected")
	}
}

func TestSecMLRReplayedDataRejected(t *testing.T) {
	sensors := line(4, 0, 10)
	places := []geom.Point{{X: 40}}
	w, m, ss, _, _ := secWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)

	// A promiscuous eavesdropper near the gateway captures data packets.
	var captured *packet.Packet
	capStack := &captureStack{onData: func(p *packet.Packet) {
		if p.Kind == packet.KindData && p.Sec != nil {
			captured = p.Clone()
		}
	}}
	atk := w.AddSensor(666, geom.Point{X: 35}, 12, 0, capStack)
	atk.SetPromiscuous(true)

	ss[1].OriginateData([]byte("reading"))
	w.Run(10 * sim.Second)
	if m.Delivered != 1 || captured == nil {
		t.Fatalf("setup failed: delivered=%d captured=%v", m.Delivered, captured != nil)
	}
	// Replay the captured packet verbatim.
	replays := m.RejectedReplay
	rep := captured.Clone()
	rep.From = 666
	atk.Send(rep)
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if m.RejectedReplay <= replays {
		t.Fatal("replayed data not rejected by counter check")
	}
	if m.Delivered != 1 {
		t.Fatalf("replay double-delivered: %d", m.Delivered)
	}
}

// captureStack is a passive attacker stack used by tests.
type captureStack struct {
	dev    *node.Device
	onData func(*packet.Packet)
}

func (c *captureStack) Start(dev *node.Device)         { c.dev = dev }
func (c *captureStack) HandleMessage(p *packet.Packet) { c.onData(p) }

func TestSecMLRTamperedDataRejected(t *testing.T) {
	sensors := line(4, 0, 10)
	places := []geom.Point{{X: 40}}
	w, m, ss, _, _ := secWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	var captured *packet.Packet
	capStack := &captureStack{onData: func(p *packet.Packet) {
		if p.Kind == packet.KindData && p.Sec != nil && captured == nil {
			captured = p.Clone()
		}
	}}
	atk := w.AddSensor(666, geom.Point{X: 35}, 12, 0, capStack)
	atk.SetPromiscuous(true)
	ss[1].OriginateData([]byte("reading"))
	w.Run(10 * sim.Second)
	if captured == nil {
		t.Fatal("no packet captured")
	}
	// Tamper with the ciphertext, advance the counter to defeat the replay
	// guard, and inject: the MAC check must catch it.
	bad := captured.Clone()
	bad.From = 666
	bad.Seq += 100
	bad.Sec.Counter += 100
	if len(bad.Sec.Cipher) > 0 {
		bad.Sec.Cipher[0] ^= 0xFF
	}
	macBefore := m.RejectedMAC
	atk.Send(bad)
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if m.RejectedMAC <= macBefore {
		t.Fatal("tampered data not rejected by MAC check")
	}
	if m.Delivered != 1 {
		t.Fatalf("tampered packet delivered: %d", m.Delivered)
	}
}

func TestSecMLRTeslaNotifyFlow(t *testing.T) {
	sensors := line(8, 0, 10)
	places := []geom.Point{{X: 80}, {X: -10}, {X: 45, Y: 10}}
	schedule := [][]int{{0, 1}, {2, 1}}
	roundLen := 10 * sim.Second
	w, m, ss, _, _ := secWorld(t, 2, sensors, places, schedule, roundLen, 15)
	w.Run(2 * sim.Second)
	// After round 0's announce + disclose, sensors must know both places.
	act := ss[4].ActivePlaces()
	if len(act) != 2 {
		t.Fatalf("active after round 0 = %v, want 2 places", act)
	}
	// Round 1: gateway 0 moves to place 2. Sensors apply it only after the
	// TESLA disclosure verifies.
	w.Run(roundLen + 3*sim.Second)
	act = ss[4].ActivePlaces()
	want := map[int]bool{1: true, 2: true}
	if len(act) != 2 || !want[act[0]] || !want[act[1]] {
		t.Fatalf("active after move = %v, want places {1,2}", act)
	}
	if m.RejectedMAC > 0 {
		t.Fatalf("genuine notifies rejected: %d", m.RejectedMAC)
	}
}

func TestSecMLRForgedNotifyNotApplied(t *testing.T) {
	sensors := line(4, 0, 10)
	places := []geom.Point{{X: 40}, {X: -10}}
	w, _, ss, _, _ := secWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	w.Run(2 * sim.Second)
	if len(ss[2].ActivePlaces()) != 1 {
		t.Fatalf("setup: active = %v", ss[2].ActivePlaces())
	}
	// Attacker forges "gateway 1000 moved to place 1" with a junk tag and
	// then "discloses" a junk key.
	atk := w.AddSensor(666, geom.Point{X: 15}, 12, 0, nil)
	body := mlrNotify{NewPlace: 1, PrevPlace: 0, Round: 5}.marshal()
	ann := append([]byte{notifyAnnounce}, body...)
	ann = append(ann, 0, 9) // interval 9
	ann = append(ann, make([]byte, wsncrypto.MACSize)...)
	atk.Send(&packet.Packet{Kind: packet.KindNotify, From: 666, To: packet.Broadcast,
		Origin: 1000, Target: packet.Broadcast, Seq: 500, TTL: 8, Payload: ann})
	disc := append([]byte{notifyDisclose}, 0, 9)
	disc = append(disc, make([]byte, wsncrypto.KeySize)...)
	atk.Send(&packet.Packet{Kind: packet.KindNotify, From: 666, To: packet.Broadcast,
		Origin: 1000, Target: packet.Broadcast, Seq: 501, TTL: 8, Payload: disc})
	w.Run(w.Kernel().Now() + 5*sim.Second)
	// The forged move must not have been applied: place 0 still active,
	// place 1 never activated.
	act := ss[2].ActivePlaces()
	if len(act) != 1 || act[0] != 0 {
		t.Fatalf("forged notify applied: active = %v", act)
	}
}

func TestSecMLRFailoverOnSelectiveForwarding(t *testing.T) {
	// Diamond: node 1 can reach gateways at both ends; the path to the
	// nearer place goes through a node that silently drops data packets.
	//
	//   gw1001(place1) -- s4 -- s1 -- drop(s2) -- gw1000(place0)
	//
	// Node 1's best route (fewest hops) must be through s2... make place 0
	// closer: 2 hops via s2, place 1 is 3 hops via s4,s5.
	w := node.NewWorld(node.Config{Seed: 9})
	m := NewMetrics()
	p := DefaultParams()
	sensorIDs := []packet.NodeID{1, 2, 4, 5}
	gwIDs := []packet.NodeID{1000, 1001}
	sKeys, gKeys := ProvisionKeys([]byte("master"), sensorIDs, gwIDs, 16)

	ss := map[packet.NodeID]*SecMLRSensor{}
	for _, id := range sensorIDs {
		ss[id] = NewSecMLRSensor(p, m, sKeys[id])
	}
	// Wrap node 2's stack so it drops DATA but forwards everything else.
	dropper := &selectiveDropper{inner: ss[2]}
	w.AddSensor(1, geom.Point{X: 0}, 12, 0, ss[1])
	w.AddSensor(2, geom.Point{X: 10}, 12, 0, dropper)
	w.AddSensor(4, geom.Point{X: -10}, 12, 0, ss[4])
	w.AddSensor(5, geom.Point{X: -20}, 12, 0, ss[5])
	places := []geom.Point{{X: 20}, {X: -30}}
	gw0 := NewSecMLRGateway(p, m, gKeys[1000])
	gw1 := NewSecMLRGateway(p, m, gKeys[1001])
	w.AddGateway(1000, places[0], 12, 500, gw0)
	w.AddGateway(1001, places[1], 12, 500, gw1)
	r := &Rounds{World: w, Places: places, Gateways: gwIDs, RoundLen: sim.Hour, Schedule: [][]int{{0, 1}}}
	r.Start()

	ss[1].OriginateData([]byte("must arrive"))
	w.Run(30 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("data lost despite failover: delivered=%d failovers=%d abandoned=%d",
			m.Delivered, m.Failovers, m.AbandonedData)
	}
	if m.Failovers == 0 {
		t.Fatal("no failover recorded; dropper was not on the primary path")
	}
	per := m.PerGateway()
	if per[1001] != 1 {
		t.Fatalf("delivery did not go via the fallback gateway: %v", per)
	}
}

// selectiveDropper forwards control traffic but silently drops DATA — the
// classic selective-forwarding (grayhole) attacker.
type selectiveDropper struct {
	inner   *SecMLRSensor
	Dropped int
}

func (d *selectiveDropper) Start(dev *node.Device) { d.inner.Start(dev) }
func (d *selectiveDropper) HandleMessage(p *packet.Packet) {
	if p.Kind == packet.KindData {
		d.Dropped++
		return
	}
	d.inner.HandleMessage(p)
}

func TestSecMLRAbandonsWhenAllRoutesFail(t *testing.T) {
	// Single gateway behind a dropper: no alternative exists, so after the
	// failover attempts the packet is abandoned — and counted.
	w := node.NewWorld(node.Config{Seed: 9})
	m := NewMetrics()
	p := DefaultParams()
	sensorIDs := []packet.NodeID{1, 2}
	gwIDs := []packet.NodeID{1000}
	sKeys, gKeys := ProvisionKeys([]byte("master"), sensorIDs, gwIDs, 16)
	s1 := NewSecMLRSensor(p, m, sKeys[1])
	s2 := NewSecMLRSensor(p, m, sKeys[2])
	dropper := &selectiveDropper{inner: s2}
	w.AddSensor(1, geom.Point{X: 0}, 12, 0, s1)
	w.AddSensor(2, geom.Point{X: 10}, 12, 0, dropper)
	places := []geom.Point{{X: 20}}
	w.AddGateway(1000, places[0], 12, 500, NewSecMLRGateway(p, m, gKeys[1000]))
	r := &Rounds{World: w, Places: places, Gateways: gwIDs, RoundLen: sim.Hour, Schedule: [][]int{{0}}}
	r.Start()
	s1.OriginateData([]byte("doomed"))
	w.Run(30 * sim.Second)
	if m.Delivered != 0 {
		t.Fatal("delivered through a dropper with no alternative")
	}
	if m.AbandonedData != 1 {
		t.Fatalf("AbandonedData = %d, want 1", m.AbandonedData)
	}
}

func TestSecMLRRReqBlockRoundTrip(t *testing.T) {
	blocks := []rreqBlock{
		{Gateway: 1000, Counter: 7, Cipher: 0xAB, MAC: make([]byte, wsncrypto.MACSize)},
		{Gateway: 1001, Counter: 9, Cipher: 0xCD, MAC: make([]byte, wsncrypto.MACSize)},
	}
	blocks[0].MAC[0] = 1
	blocks[1].MAC[31] = 2
	got, ok := parseRReqBlocks(marshalRReqBlocks(blocks))
	if !ok || len(got) != 2 {
		t.Fatalf("parse failed: %v %v", got, ok)
	}
	for i := range blocks {
		if got[i].Gateway != blocks[i].Gateway || got[i].Counter != blocks[i].Counter ||
			got[i].Cipher != blocks[i].Cipher || string(got[i].MAC) != string(blocks[i].MAC) {
			t.Fatalf("block %d mismatch: %+v vs %+v", i, got[i], blocks[i])
		}
	}
	if _, ok := parseRReqBlocks(nil); ok {
		t.Fatal("parsed empty")
	}
	if _, ok := parseRReqBlocks([]byte{5, 1, 2}); ok {
		t.Fatal("parsed truncated")
	}
	if p, r, ok := parseResBody(resBody(3, 9)); !ok || p != 3 || r != 9 {
		t.Fatalf("resBody round trip: %d %d %v", p, r, ok)
	}
	if _, _, ok := parseResBody([]byte{1}); ok {
		t.Fatal("parsed short resBody")
	}
}

func TestProvisionKeys(t *testing.T) {
	sIDs := []packet.NodeID{1, 2, 3}
	gIDs := []packet.NodeID{100, 200}
	sk, gk := ProvisionKeys([]byte("m"), sIDs, gIDs, 8)
	if len(sk) != 3 || len(gk) != 2 {
		t.Fatalf("provisioned %d/%d", len(sk), len(gk))
	}
	// Pairwise agreement: sensor's key for gateway == gateway's key for sensor.
	for _, s := range sIDs {
		for _, g := range gIDs {
			if sk[s].Gateway[g] != gk[g].Sensor[s] {
				t.Fatalf("key mismatch for (%v,%v)", s, g)
			}
		}
	}
	// Distinct pairs get distinct keys.
	if sk[1].Gateway[100] == sk[2].Gateway[100] || sk[1].Gateway[100] == sk[1].Gateway[200] {
		t.Fatal("key reuse across pairs")
	}
	// Commitments match each gateway's chain.
	for _, g := range gIDs {
		if string(sk[1].TeslaCommit[g]) != string(gk[g].Tesla.Commitment()) {
			t.Fatalf("commitment mismatch for %v", g)
		}
	}
	if gk[100].Tesla.Intervals() != 8 {
		t.Fatalf("intervals = %d", gk[100].Tesla.Intervals())
	}
}

// TestSecMLRRevocation exercises the captured-node response: after the
// operator revokes a sensor's keys at the gateway, its (otherwise perfectly
// authentic) traffic is rejected like any forgery.
func TestSecMLRRevocation(t *testing.T) {
	sensors := line(4, 0, 10)
	places := []geom.Point{{X: 40}}
	w, m, ss, gs, _ := secWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	ss[2].OriginateData([]byte("before-capture"))
	w.Run(5 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("setup: delivered %d", m.Delivered)
	}
	// Node 2 is detected as captured: revoke it.
	gs[1000].Keys.Revoke(2)
	if !gs[1000].Keys.Revoked(2) {
		t.Fatal("Revoked not recorded")
	}
	macBefore := m.RejectedMAC
	ss[2].OriginateData([]byte("after-capture"))
	w.Run(w.Kernel().Now() + 10*sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("revoked sensor's data delivered: %d", m.Delivered)
	}
	if m.RejectedMAC <= macBefore {
		t.Fatal("revoked traffic not rejected")
	}
	// Other sensors are unaffected.
	ss[1].OriginateData([]byte("healthy"))
	w.Run(w.Kernel().Now() + 10*sim.Second)
	if m.Delivered != 2 {
		t.Fatalf("healthy sensor affected by revocation: %d", m.Delivered)
	}
}
