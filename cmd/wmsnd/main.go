// Command wmsnd serves the wmsn simulator as a service: an HTTP/JSON API
// that accepts validated scenario configs (single runs and seed sweeps),
// schedules them on a bounded job queue with per-job limits, streams
// per-run trace events, time-bucketed series, and metrics snapshots live
// as JSONL, and sheds load with 429 + Retry-After when the queue is full.
//
//	wmsnd -addr :8080 -queue 64 -jobs 2
//
// Endpoints:
//
//	POST   /v1/runs                submit a job (?stream=1 to stream inline)
//	GET    /v1/jobs/{id}           job status
//	GET    /v1/jobs/{id}/stream    JSONL stream (?detach=1 to survive disconnect)
//	GET    /v1/jobs/{id}/progress  live per-run watermark (virtual time, events, deliveries)
//	DELETE /v1/jobs/{id}           cancel a job
//	GET    /v1/protocols           routing protocols this build can simulate
//	GET    /healthz                liveness + queue gauges
//	GET    /stats                  lifecycle counters (JSON)
//	GET    /metrics                Prometheus text exposition: daemon counters,
//	                               queue gauges, per-protocol delivery/failover
//	                               latency histograms
//
// Submitting with "progress_s": N in the request body additionally emits one
// {"type":"progress"} heartbeat line on the JSONL stream every N wall-clock
// seconds while the job runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wmsn/internal/service"
	"wmsn/internal/sim"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		queue      = flag.Int("queue", 64, "bounded job queue depth (submissions past it get 429)")
		jobs       = flag.Int("jobs", 2, "jobs executed concurrently")
		maxNodes   = flag.Int("max-nodes", 0, "per-run node cap (0 = default)")
		maxHorizon = flag.Float64("max-horizon-s", 0, "per-run virtual-time cap in seconds (0 = default)")
		maxRuns    = flag.Int("max-runs", 0, "per-job run-count cap (0 = default)")
		maxDeadl   = flag.Float64("max-deadline-s", 0, "per-job wall-clock deadline cap in seconds (0 = default)")
	)
	flag.Parse()

	limits := service.Limits{
		MaxNodes:      *maxNodes,
		MaxRunsPerJob: *maxRuns,
	}
	if *maxHorizon > 0 {
		limits.MaxHorizon = sim.Duration(*maxHorizon * float64(sim.Second))
	}
	if *maxDeadl > 0 {
		limits.MaxDeadline = time.Duration(*maxDeadl * float64(time.Second))
	}
	svc := service.New(service.Config{
		QueueDepth: *queue,
		Schedulers: *jobs,
		Limits:     limits,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("wmsnd listening on %s (queue=%d jobs=%d)", *addr, *queue, *jobs)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	svc.Close() // cancel all jobs first so streams close promptly
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		os.Exit(1)
	}
}
