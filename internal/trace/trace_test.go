package trace

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("E1: hops", "k", "avg hops", "max")
	tbl.AddRow(1, 5.25, 9)
	tbl.AddRow(2, 3.0, 6)
	tbl.AddNote("seeds: %d", 5)
	out := tbl.String()
	for _, frag := range []string{"E1: hops", "k", "avg hops", "5.250", "3", "note: seeds: 5", "---"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	// Columns aligned: header row and data rows have the same prefix width
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count: %d", len(lines))
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		5:        "5",
		5.25:     "5.250",
		0.000001: "1.00e-06",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("NaN = %q", got)
	}
	if got := formatFloat(math.Inf(1)); got != "Inf" {
		t.Errorf("Inf = %q", got)
	}
}

func TestMeanStdDevMinMax(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
	min, max := MinMax(xs)
	if min != 2 || max != 9 {
		t.Fatalf("minmax = %v/%v", min, max)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty-input stats should be 0")
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Fatal("empty MinMax should be 0,0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != "50.0%" {
		t.Fatalf("Ratio = %q", Ratio(1, 2))
	}
	if Ratio(1, 0) != "-" {
		t.Fatalf("Ratio div0 = %q", Ratio(1, 0))
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow(1) // fewer cells than headers must not panic
	out := tbl.String()
	if !strings.Contains(out, "1") {
		t.Fatalf("ragged row lost: %s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := NewTable("T1", "a", "b")
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x,y", "q\"z") // needs CSV quoting
	tbl.AddNote("n1")
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"# T1", "a,b", "1,2.500", "\"x,y\"", "# n1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("CSV missing %q:\n%s", frag, out)
		}
	}
}
