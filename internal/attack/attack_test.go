package attack

import (
	"testing"

	"wmsn/internal/core"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// line returns n points spaced d apart on the x axis.
func line(n int, x0, d float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: x0 + float64(i)*d}
	}
	return pts
}

// mlrNet builds a plain-MLR network: sensors 1..n on a line, gateways at the
// given places (all active, one round forever).
func mlrNet(seed int64, sensors []geom.Point, places []geom.Point, rangeM float64) (*node.World, *core.Metrics, map[packet.NodeID]*core.MLRSensor) {
	w := node.NewWorld(node.Config{Seed: seed})
	m := core.NewMetrics()
	p := core.DefaultParams()
	stacks := map[packet.NodeID]*core.MLRSensor{}
	for i, pos := range sensors {
		id := packet.NodeID(i + 1)
		st := core.NewMLRSensor(p, m)
		stacks[id] = st
		w.AddSensor(id, pos, rangeM, 0, st)
	}
	var gwIDs []packet.NodeID
	sched := make([]int, len(places))
	for i, pos := range places {
		id := packet.NodeID(1000 + i)
		gwIDs = append(gwIDs, id)
		sched[i] = i
		w.AddGateway(id, pos, rangeM, 500, core.NewMLRGateway(p, m))
	}
	r := &core.Rounds{World: w, Places: places, Gateways: gwIDs, RoundLen: sim.Hour, Schedule: [][]int{sched}}
	r.Start()
	return w, m, stacks
}

// secNet builds the equivalent SecMLR network.
func secNet(seed int64, sensors []geom.Point, places []geom.Point, rangeM float64) (*node.World, *core.Metrics, map[packet.NodeID]*core.SecMLRSensor) {
	w := node.NewWorld(node.Config{Seed: seed})
	m := core.NewMetrics()
	p := core.DefaultParams()
	var sensorIDs, gwIDs []packet.NodeID
	for i := range sensors {
		sensorIDs = append(sensorIDs, packet.NodeID(i+1))
	}
	for i := range places {
		gwIDs = append(gwIDs, packet.NodeID(1000+i))
	}
	sKeys, gKeys := core.ProvisionKeys([]byte("attack-test"), sensorIDs, gwIDs, 32)
	stacks := map[packet.NodeID]*core.SecMLRSensor{}
	for i, pos := range sensors {
		id := sensorIDs[i]
		st := core.NewSecMLRSensor(p, m, sKeys[id])
		stacks[id] = st
		w.AddSensor(id, pos, rangeM, 0, st)
	}
	sched := make([]int, len(places))
	for i, pos := range places {
		sched[i] = i
		w.AddGateway(gwIDs[i], pos, rangeM, 500, core.NewSecMLRGateway(p, m, gKeys[gwIDs[i]]))
	}
	r := &core.Rounds{World: w, Places: places, Gateways: gwIDs, RoundLen: sim.Hour, Schedule: [][]int{sched}}
	r.Start()
	return w, m, stacks
}

func TestSinkholeLuresMLRButNotSecMLR(t *testing.T) {
	sensors := line(6, 0, 10)
	places := []geom.Point{{X: 60}}

	// Plain MLR: the sinkhole near the source forges a 1-hop response.
	w, m, ss := mlrNet(1, sensors, places, 12)
	sh := &Sinkhole{FakeGateway: 1000, Place: 0, TTL: 8}
	w.AddSensor(666, geom.Point{X: 5, Y: 5}, 12, 0, sh)
	ss[1].OriginateData([]byte("x"))
	w.Run(20 * sim.Second)
	if m.Delivered != 0 {
		t.Fatalf("MLR delivered %d despite sinkhole", m.Delivered)
	}
	if sh.Counters.Dropped == 0 {
		t.Fatal("sinkhole attracted no traffic; attack setup broken")
	}

	// SecMLR: the forged response cannot carry the gateway's MAC.
	w2, m2, ss2 := secNet(1, sensors, places, 12)
	sh2 := &Sinkhole{FakeGateway: 1000, Place: 0, TTL: 8}
	w2.AddSensor(666, geom.Point{X: 5, Y: 5}, 12, 0, sh2)
	ss2[1].OriginateData([]byte("x"))
	w2.Run(20 * sim.Second)
	if m2.Delivered != 1 {
		t.Fatalf("SecMLR delivered %d under sinkhole, want 1", m2.Delivered)
	}
	if m2.RejectedMAC == 0 {
		t.Fatal("forged RRES was not MAC-rejected")
	}
}

func TestReplayDuplicatesMLRButNotSecMLR(t *testing.T) {
	sensors := line(4, 0, 10)
	places := []geom.Point{{X: 40}}

	w, m, ss := mlrNet(2, sensors, places, 12)
	rp := NewReplayer(2 * sim.Second)
	w.AddSensor(666, geom.Point{X: 35, Y: 3}, 12, 0, rp)
	ss[1].OriginateData([]byte("x"))
	w.Run(20 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("MLR delivered %d", m.Delivered)
	}
	if m.Duplicates == 0 {
		t.Fatal("replay produced no duplicate delivery under plain MLR")
	}

	w2, m2, ss2 := secNet(2, sensors, places, 12)
	rp2 := NewReplayer(2 * sim.Second)
	w2.AddSensor(666, geom.Point{X: 35, Y: 3}, 12, 0, rp2)
	ss2[1].OriginateData([]byte("x"))
	w2.Run(20 * sim.Second)
	if m2.Delivered != 1 {
		t.Fatalf("SecMLR delivered %d", m2.Delivered)
	}
	if m2.Duplicates != 0 {
		t.Fatal("SecMLR double-delivered a replay")
	}
	if m2.RejectedReplay == 0 {
		t.Fatal("SecMLR did not reject the replay")
	}
}

func TestHelloFloodMisdirectsMLRButNotSecMLR(t *testing.T) {
	sensors := line(6, 0, 10)
	// Both places host real gateways. The victim first learns genuine
	// routes to both, then the attacker floods "gateway 1001 moved from
	// place 1 to place 0". A plain-MLR sensor believes it and addresses
	// its next reading to gateway 1001 at place 0 — where gateway 1000
	// actually sits and drops the mis-addressed packet.
	places := []geom.Point{{X: 60}, {X: -10}}

	w, m, ss := mlrNet(3, sensors, places, 12)
	ss[1].OriginateData([]byte("before"))
	w.Run(5 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("setup: delivered %d", m.Delivered)
	}
	hf := &HelloFlood{Gateway: 1001, Place: 0, PrevPlace: 1, Range: 200,
		Interval: sim.Second, TTL: 8}
	w.AddSensor(666, geom.Point{X: 30, Y: 5}, 12, 0, hf)
	w.Run(w.Kernel().Now() + 3*sim.Second) // forged notifies spread
	ss[1].OriginateData([]byte("after"))
	w.Run(w.Kernel().Now() + 30*sim.Second)
	hf.Stop()
	if m.Delivered != 1 {
		t.Fatalf("MLR delivered %d; hello flood had no effect", m.Delivered)
	}

	w2, m2, ss2 := secNet(3, sensors, places, 12)
	ss2[1].OriginateData([]byte("before"))
	w2.Run(5 * sim.Second)
	hf2 := &HelloFlood{Gateway: 1001, Place: 0, PrevPlace: 1, Range: 200,
		Interval: sim.Second, TTL: 8}
	w2.AddSensor(666, geom.Point{X: 30, Y: 5}, 12, 0, hf2)
	w2.Run(w2.Kernel().Now() + 3*sim.Second)
	ss2[1].OriginateData([]byte("after"))
	w2.Run(w2.Kernel().Now() + 30*sim.Second)
	hf2.Stop()
	if m2.Delivered != 2 {
		t.Fatalf("SecMLR delivered %d under hello flood, want 2", m2.Delivered)
	}
}

func TestSybilPollutesMLRButNotSecMLR(t *testing.T) {
	sensors := line(3, 0, 10)
	places := []geom.Point{{X: 30}}

	w, m, _ := mlrNet(4, sensors, places, 12)
	sy := &Sybil{Identities: []packet.NodeID{201, 202, 203}, Gateway: 1000,
		Place: 0, NextHop: 1000, Interval: sim.Second, TTL: 4}
	w.AddSensor(666, geom.Point{X: 25}, 12, 0, sy)
	w.Run(5 * sim.Second)
	sy.Stop()
	if m.Delivered == 0 {
		t.Fatal("MLR gateway accepted no forged readings; Sybil setup broken")
	}

	w2, m2, _ := secNet(4, sensors, places, 12)
	sy2 := &Sybil{Identities: []packet.NodeID{201, 202, 203}, Gateway: 1000,
		Place: 0, NextHop: 1000, Interval: sim.Second, TTL: 4}
	w2.AddSensor(666, geom.Point{X: 25}, 12, 0, sy2)
	w2.Run(5 * sim.Second)
	sy2.Stop()
	if m2.Delivered != 0 {
		t.Fatalf("SecMLR gateway accepted %d forged readings", m2.Delivered)
	}
	if m2.RejectedMAC == 0 {
		t.Fatal("SecMLR did not reject Sybil data")
	}
}

func TestWormholeShortcutsMLR(t *testing.T) {
	// Long line; wormhole between the source end and the gateway end.
	sensors := line(10, 0, 10)
	places := []geom.Point{{X: 100}}
	w, m, ss := mlrNet(5, sensors, places, 12)
	wh, endA, endB := NewWormhole()
	w.AddSensor(666, geom.Point{X: 2, Y: 4}, 12, 0, endA)  // near source
	w.AddSensor(667, geom.Point{X: 98, Y: 4}, 12, 0, endB) // near gateway
	ss[1].OriginateData([]byte("x"))
	w.Run(20 * sim.Second)
	if wh.Counters.Captured == 0 || wh.Counters.Injected == 0 {
		t.Fatal("wormhole tunneled nothing")
	}
	// The phantom shortcut lures the data into the wormhole, where it dies.
	if m.Delivered != 0 {
		t.Fatalf("MLR delivered %d; wormhole shortcut not chosen", m.Delivered)
	}
	if wh.Counters.Dropped == 0 {
		t.Fatal("no data entered the wormhole")
	}
}

func TestWormholeAgainstSecMLRRecoversByFailover(t *testing.T) {
	// Same shape plus a second, honest gateway reachable the normal way.
	sensors := line(10, 0, 10)
	places := []geom.Point{{X: 100}, {X: -10}}
	w, m, ss := secNet(6, sensors, places, 12)
	wh, endA, endB := NewWormhole()
	w.AddSensor(666, geom.Point{X: 2, Y: 4}, 12, 0, endA)
	w.AddSensor(667, geom.Point{X: 98, Y: 4}, 12, 0, endB)
	ss[1].OriginateData([]byte("x"))
	w.Run(40 * sim.Second)
	// The wormhole defeats path authenticity (known µTESLA/MAC limitation),
	// but the missing ACK triggers failover to the honest gateway.
	if m.Delivered != 1 {
		t.Fatalf("SecMLR delivered %d under wormhole, want 1 via failover (failovers=%d, wormhole=%+v)",
			m.Delivered, m.Failovers, wh.Counters)
	}
	if m.Failovers == 0 && wh.Counters.Dropped > 0 {
		t.Fatal("data died in the wormhole without failover")
	}
}

func TestAckSpoofAgainstSecMLRRejected(t *testing.T) {
	// The spoofer sits on the only short path; a second gateway exists on
	// the other side for failover.
	w := node.NewWorld(node.Config{Seed: 7})
	m := core.NewMetrics()
	p := core.DefaultParams()
	sensorIDs := []packet.NodeID{1, 2, 3, 4}
	gwIDs := []packet.NodeID{1000, 1001}
	sKeys, gKeys := core.ProvisionKeys([]byte("m"), sensorIDs, gwIDs, 16)
	s1 := core.NewSecMLRSensor(p, m, sKeys[1])
	s3 := core.NewSecMLRSensor(p, m, sKeys[3])
	s4 := core.NewSecMLRSensor(p, m, sKeys[4])
	sp := &AckSpoofer{Inner: core.NewSecMLRSensor(p, m, sKeys[2])}
	w.AddSensor(1, geom.Point{X: 0}, 12, 0, s1)
	w.AddSensor(2, geom.Point{X: 10}, 12, 0, sp) // attacker as relay toward gw 1000
	w.AddSensor(3, geom.Point{X: -10}, 12, 0, s3)
	w.AddSensor(4, geom.Point{X: -20}, 12, 0, s4)
	places := []geom.Point{{X: 20}, {X: -30}}
	w.AddGateway(1000, places[0], 12, 500, core.NewSecMLRGateway(p, m, gKeys[1000]))
	w.AddGateway(1001, places[1], 12, 500, core.NewSecMLRGateway(p, m, gKeys[1001]))
	r := &core.Rounds{World: w, Places: places, Gateways: gwIDs, RoundLen: sim.Hour, Schedule: [][]int{{0, 1}}}
	r.Start()

	s1.OriginateData([]byte("x"))
	w.Run(30 * sim.Second)
	if sp.Counters.Injected == 0 {
		t.Skip("spoofer never on path for this topology/seed")
	}
	if m.RejectedMAC == 0 {
		t.Fatal("forged ACK was not MAC-rejected")
	}
	if m.Delivered != 1 {
		t.Fatalf("SecMLR delivered %d under ACK spoofing, want 1 via failover", m.Delivered)
	}
	per := m.PerGateway()
	if per[1001] != 1 {
		t.Fatalf("delivery should have failed over to gw 1001: %v", per)
	}
}

func TestSelectiveForwarderDropProbability(t *testing.T) {
	sensors := line(4, 0, 10)
	places := []geom.Point{{X: 40}}
	w, m, ss := mlrNet(8, sensors, places, 12)
	// Replace node 2's stack... instead add attacker between 1 and 3? The
	// simplest deterministic check: blackhole (DropProb 1) wrapped around a
	// fresh MLR stack placed as the only bridge.
	inner := core.NewMLRSensor(core.DefaultParams(), m)
	sf := &SelectiveForwarder{Inner: inner, DropProb: 1}
	w.AddSensor(50, geom.Point{X: 45, Y: 0}, 12, 0, sf)
	_ = ss
	// Node 50 sits between the line and nothing; instead verify drop
	// counting directly by handing it a data packet.
	sf.HandleMessage(&packet.Packet{Kind: packet.KindData, Origin: 1, Target: 1000,
		Payload: core.EncodePlacePayload(0, nil), TTL: 4})
	if sf.Counters.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", sf.Counters.Dropped)
	}
	// Control traffic passes through to the inner stack (no panic, counted
	// as not-dropped).
	sf.HandleMessage(&packet.Packet{Kind: packet.KindNotify, Origin: 1000, Seq: 1,
		Payload: core.EncodeNotifyPayload(0, int(core.NoPlace), 0), TTL: 4})
	if sf.Counters.Dropped != 1 {
		t.Fatal("control packet wrongly dropped")
	}
	// Own data is never dropped.
	sf.HandleMessage(&packet.Packet{Kind: packet.KindData, Origin: 50, Target: 1000,
		Payload: core.EncodePlacePayload(0, nil), TTL: 4})
	if sf.Counters.Dropped != 1 {
		t.Fatal("own packet dropped")
	}
}

// TestNodeRandDeterministicPerNode pins the attacker RNG contract: the
// stream is a pure function of (scenario seed, node ID), identical across
// calls and distinct across nodes — never the kernel's per-lane RNG.
func TestNodeRandDeterministicPerNode(t *testing.T) {
	draw := func(seed int64, id packet.NodeID) [4]float64 {
		r := NodeRand(seed, id)
		var out [4]float64
		for i := range out {
			out[i] = r.Float64()
		}
		return out
	}
	if draw(7, 3) != draw(7, 3) {
		t.Fatal("same (seed, node) produced different streams")
	}
	if draw(7, 3) == draw(7, 4) {
		t.Fatal("adjacent nodes share an RNG stream")
	}
	if draw(7, 3) == draw(8, 3) {
		t.Fatal("different scenario seeds share an RNG stream")
	}
}

// TestSpecValidateAndNames covers the declarative campaign surface: every
// kind has a stable name, round-trips through ParseKind, and bad knobs are
// rejected.
func TestSpecValidateAndNames(t *testing.T) {
	for _, name := range KindNames() {
		k, ok := ParseKind(name)
		if !ok || k.String() != name {
			t.Fatalf("kind %q does not round-trip (parsed %v ok=%v)", name, k, ok)
		}
	}
	if _, ok := ParseKind("quantum-teleport"); ok {
		t.Fatal("ParseKind accepted an unknown name")
	}
	valid := Spec{Kind: KindReplay, Delay: sim.Second, MaxCopies: 10}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, bad := range []Spec{
		{Kind: 200},
		{Kind: KindSelectiveForward, DropProb: -0.5},
		{Kind: KindReplay, Jitter: -sim.Second},
		{Kind: KindSpoofedRouting, Interval: -sim.Second},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("bad spec %+v validated", bad)
		}
	}
}

// TestSpecInstantiateBindsWithoutStart verifies the compromise path: the
// materialized adversary is bound to the device, wraps the inner stack, and
// the victim's radio is promiscuous exactly for the kinds that eavesdrop.
func TestSpecInstantiateBindsWithoutStart(t *testing.T) {
	cases := []struct {
		spec    Spec
		promisc bool
	}{
		{Spec{Kind: KindSelectiveForward}, false},
		{Spec{Kind: KindBlackhole}, false},
		{Spec{Kind: KindReplay}, true},
		{Spec{Kind: KindSinkhole, FakeGateway: 1000}, true},
		{Spec{Kind: KindSpoofedRouting, FakeGateway: 1000}, false},
	}
	for _, tc := range cases {
		t.Run(tc.spec.String(), func(t *testing.T) {
			w := node.NewWorld(node.Config{Seed: 1})
			inner := &core.MLRSensor{}
			w.AddSensor(1, geom.Point{}, 35, 0, inner)
			d := w.Device(1)
			st := tc.spec.Instantiate(d, d.Stack(), NodeRand(1, 1), nil)
			if st == d.Stack() {
				t.Fatal("Instantiate returned the inner stack unchanged")
			}
			d.SwapStack(st)
			if d.Promiscuous() != tc.promisc {
				t.Fatalf("promiscuous = %v, want %v", d.Promiscuous(), tc.promisc)
			}
			// The adversary must be live without Start: feeding it a frame
			// must not panic on a nil device binding.
			st.HandleMessage(&packet.Packet{Kind: packet.KindData, To: 1, Origin: 2, From: 2, Seq: 1, TTL: 4})
		})
	}
}
