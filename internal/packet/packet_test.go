package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Kind:    KindData,
		From:    3,
		To:      7,
		Origin:  1,
		Target:  100,
		Seq:     42,
		TTL:     16,
		Hops:    2,
		Path:    []NodeID{1, 3, 7, 100},
		Payload: []byte("temp=21.5"),
		Sec: &SecEnvelope{
			Counter: 9,
			Cipher:  []byte{1, 2, 3, 4, 5},
			MAC:     bytes.Repeat([]byte{0xAB}, 32),
		},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n p=%+v\ngot=%+v", p, got)
	}
}

func TestMarshalRoundTripMinimal(t *testing.T) {
	p := &Packet{Kind: KindHello, From: 1, To: Broadcast, Origin: 1, Target: Broadcast}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", p, got)
	}
}

func TestSizeMatchesMarshal(t *testing.T) {
	ps := []*Packet{
		samplePacket(),
		{Kind: KindHello, From: 1, To: Broadcast, Origin: 1, Target: Broadcast},
		{Kind: KindRReq, From: 2, To: Broadcast, Origin: 2, Target: Broadcast,
			Path: []NodeID{2}, TTL: 32},
		{Kind: KindNotify, From: 9, To: Broadcast, Origin: 9, Target: Broadcast,
			Payload: make([]byte, 100)},
	}
	for _, p := range ps {
		if got, want := len(p.Marshal()), p.Size(); got != want {
			t.Errorf("%s: marshal len %d != Size %d", p.Kind, got, want)
		}
		if p.SizeBits() != p.Size()*8 {
			t.Errorf("SizeBits inconsistent")
		}
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	full := samplePacket().Marshal()
	for _, n := range []int{0, 1, 10, headerBytes - 1, headerBytes + 2, len(full) - 1} {
		if _, err := Unmarshal(full[:n]); err == nil {
			t.Errorf("Unmarshal of %d/%d bytes succeeded", n, len(full))
		}
	}
}

func TestUnmarshalBadKind(t *testing.T) {
	buf := samplePacket().Marshal()
	buf[0] = 0
	if _, err := Unmarshal(buf); err != ErrBadKind {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
	buf[0] = byte(kindMax)
	if _, err := Unmarshal(buf); err != ErrBadKind {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	if !reflect.DeepEqual(p, q) {
		t.Fatal("clone differs from original")
	}
	q.Path[0] = 99
	q.Payload[0] = 'X'
	q.Sec.Cipher[0] = 0xFF
	q.Sec.Counter = 1000
	if p.Path[0] == 99 || p.Payload[0] == 'X' || p.Sec.Cipher[0] == 0xFF || p.Sec.Counter == 1000 {
		t.Fatal("mutating clone affected original")
	}
}

func TestCloneNilSec(t *testing.T) {
	p := &Packet{Kind: KindData, From: 1, To: 2, Origin: 1, Target: 2}
	q := p.Clone()
	if q.Sec != nil {
		t.Fatal("clone invented a Sec envelope")
	}
}

func TestAppendHopDoesNotAlias(t *testing.T) {
	p := &Packet{Kind: KindRReq, Path: make([]NodeID, 2, 8)}
	p.Path[0], p.Path[1] = 1, 2
	a := p.AppendHop(3)
	b := p.AppendHop(4)
	if a[2] != 3 || b[2] != 4 {
		t.Fatalf("AppendHop results corrupted: %v %v", a, b)
	}
	if len(p.Path) != 2 {
		t.Fatal("AppendHop mutated source path")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindHello: "HELLO", KindRReq: "RREQ", KindRRes: "RRES",
		KindData: "DATA", KindNotify: "NOTIFY", KindAck: "ACK",
		KindMeshLSA: "MESH-LSA", KindInvalid: "INVALID",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestNodeIDString(t *testing.T) {
	if Broadcast.String() != "BCAST" || None.String() != "-" || NodeID(5).String() != "n5" {
		t.Fatalf("NodeID strings: %q %q %q", Broadcast.String(), None.String(), NodeID(5).String())
	}
}

func TestPathString(t *testing.T) {
	if got := PathString(nil); got != "-" {
		t.Fatalf("PathString(nil) = %q", got)
	}
	if got := PathString([]NodeID{1, 2, 3}); got != "n1->n2->n3" {
		t.Fatalf("PathString = %q", got)
	}
}

func TestPacketString(t *testing.T) {
	s := samplePacket().String()
	for _, frag := range []string{"DATA", "n3->n7", "seq=42", "path=", "sec{C=9}"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary packets.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(kindRaw uint8, from, to, origin, target uint32, seq uint32,
		ttl, hops uint8, nPath uint8, payload []byte, hasSec bool, ctr uint64) bool {
		p := &Packet{
			Kind: Kind(kindRaw%uint8(kindMax-1)) + 1,
			From: NodeID(from), To: NodeID(to),
			Origin: NodeID(origin), Target: NodeID(target),
			Seq: seq, TTL: ttl, Hops: hops,
		}
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		if len(payload) > 0 {
			p.Payload = payload
		}
		for i := 0; i < int(nPath%40); i++ {
			p.Path = append(p.Path, NodeID(rng.Uint32()))
		}
		if hasSec {
			mac := make([]byte, 32)
			rng.Read(mac)
			cipher := make([]byte, rng.Intn(64))
			rng.Read(cipher)
			p.Sec = &SecEnvelope{Counter: ctr, MAC: mac}
			if len(cipher) > 0 {
				p.Sec.Cipher = cipher
			}
		}
		got, err := Unmarshal(p.Marshal())
		return err == nil && reflect.DeepEqual(p, got) && len(p.Marshal()) == p.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on random input.
func TestQuickUnmarshalNoPanics(t *testing.T) {
	f := func(buf []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Unmarshal panicked on %d bytes: %v", len(buf), r)
			}
		}()
		Unmarshal(buf)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Marshal()
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	buf := samplePacket().Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
