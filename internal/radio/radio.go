// Package radio simulates the shared wireless medium: unit-disk propagation,
// transmission airtime, per-link loss, and an optional collision model in
// which overlapping receptions at a node corrupt each other.
//
// Two media are typically instantiated per WMSN: a short-range low-rate one
// for the sensor layer (802.15.4-like, 250 kbit/s) and a long-range
// high-rate one for the mesh backbone (802.11-like, 11 Mbit/s), matching the
// paper's §3.2 ("sensor nodes only support 802.15.4; WMRs only support
// 802.11; WMGs support both"). Gateways join both media.
package radio

import (
	"fmt"
	"math"

	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Config describes a medium's PHY/MAC characteristics.
type Config struct {
	// BitRate is the transmission rate in bits per second. Airtime of a
	// packet is SizeBits/BitRate.
	BitRate float64
	// PropDelay is the fixed propagation plus processing delay added to
	// every delivery.
	PropDelay sim.Duration
	// LossRate is the independent per-link packet loss probability in
	// [0,1).
	LossRate float64
	// Collisions enables the overlap-corruption model: when two receptions
	// overlap in time at a receiver, both are corrupted and dropped.
	Collisions bool
	// CellSize is the spatial-hash cell edge in meters; 0 selects a
	// reasonable default.
	CellSize float64
	// CSMA enables carrier-sense multiple access: a station that senses
	// an in-flight transmission it can hear defers for a random backoff
	// before retrying, up to MaxBackoffs attempts. Energy is charged at
	// submission (the sensing cost itself is not modeled).
	CSMA bool
	// MaxBackoffs bounds CSMA retry attempts; 0 selects 5.
	MaxBackoffs int
	// BackoffWindow is the maximum random defer per attempt; 0 selects
	// 4 ms.
	BackoffWindow sim.Duration
	// Metrics, when non-nil, receives every medium event (transmissions,
	// deliveries, losses, collisions, CSMA activity) as Radio* counters in
	// addition to the medium's own Stats. Leave nil to keep the hot path
	// branch-free of telemetry.
	Metrics metrics.Sink
	// Obs, when active, receives a FrameLost event for every unicast DATA
	// copy the medium drops at its addressee (loss model or collision) —
	// the ground truth behind the link layer's retry decisions. Nil keeps
	// the delivery loop free of tracing beyond one branch.
	Obs *obs.Bus
}

// SensorRadio is an 802.15.4-flavored configuration for the sensor layer.
func SensorRadio() Config {
	return Config{BitRate: 250_000, PropDelay: 50 * sim.Microsecond}
}

// MeshRadio is an 802.11-flavored configuration for the mesh backbone.
func MeshRadio() Config {
	return Config{BitRate: 11_000_000, PropDelay: 20 * sim.Microsecond}
}

// Stats aggregates medium activity for the overhead experiments.
type Stats struct {
	Transmissions uint64 // packets put on the air
	Deliveries    uint64 // packet copies handed to receivers
	Lost          uint64 // copies dropped by the loss model
	Collided      uint64 // copies corrupted by overlapping receptions
	BytesOnAir    uint64 // Σ packet size over transmissions
	Backoffs      uint64 // CSMA deferrals
	CSMADropped   uint64 // packets abandoned after MaxBackoffs attempts
}

// Station is a node's attachment to a medium.
type Station struct {
	id        packet.NodeID
	pos       geom.Point
	rangeM    float64
	handler   func(*packet.Packet)
	listening bool
	rxLoss    float64 // extra per-station reception loss probability
	medium    *Medium
	// promiscuous stations get a private clone of overheard unicasts (the
	// node layer delivers those to the stack instead of dropping them);
	// everyone else shares one read-only overhear copy per transmission.
	promiscuous bool
	// pending tracks receptions in flight, for the collision model;
	// any two receptions whose airtimes overlap corrupt each other.
	pending []*delivery
	// lane is the owning region when the medium is sharded (sharded.go);
	// always 0 otherwise. Immutable during parallel windows.
	lane int32
}

// ID returns the station's node ID.
func (s *Station) ID() packet.NodeID { return s.id }

// Pos returns the station's current position.
func (s *Station) Pos() geom.Point { return s.pos }

// Range returns the station's transmission range in meters.
func (s *Station) Range() float64 { return s.rangeM }

// SetRange adjusts transmission power (topology control, §4.4).
func (s *Station) SetRange(r float64) {
	if r < 0 {
		r = 0
	}
	s.rangeM = r
}

// Listening reports whether the radio is awake.
func (s *Station) Listening() bool { return s.listening }

// SetListening wakes or sleeps the receiver (sleep scheduling, §4.4).
// A sleeping station receives nothing but may still transmit.
func (s *Station) SetListening(on bool) { s.listening = on }

// RxLoss returns the station's extra reception loss probability.
func (s *Station) RxLoss() float64 { return s.rxLoss }

// SetRxLoss sets an additional independent loss probability applied to every
// reception at this station, on top of the medium-wide LossRate. The fault
// injector uses it for per-link and region-wide degradation ramps. p is
// clamped to [0, 1); a station with RxLoss 0 draws no extra randomness, so
// unfaulted runs keep their RNG streams unchanged.
func (s *Station) SetRxLoss(p float64) {
	if p < 0 || math.IsNaN(p) {
		p = 0
	}
	if p >= 1 {
		p = 0.999999
	}
	s.rxLoss = p
}

// Move relocates the station (gateway mobility between MLR rounds).
func (s *Station) Move(p geom.Point) {
	s.medium.reindex(s, p)
}

// Promiscuous reports whether the station receives private clones of
// overheard unicast traffic.
func (s *Station) Promiscuous() bool { return s.promiscuous }

// SetPromiscuous marks the station as an eavesdropper: frames addressed to
// other nodes are delivered as private clones its handler may mutate.
// Non-promiscuous stations share one overhear copy per transmission, which
// their handlers must treat as read-only (the node layer only inspects the
// header before dropping foreign unicasts).
func (s *Station) SetPromiscuous(on bool) { s.promiscuous = on }

type delivery struct {
	to        *Station
	pkt       *packet.Packet
	start     sim.Time
	end       sim.Time
	corrupted bool
}

// deliveryBatch carries every reception completing at one instant from one
// transmission. Scheduling the batch as a single kernel event replaces the
// one-event-per-receiver pattern: a broadcast heard by d neighbors costs
// one heap operation instead of d. Entries stay in ID-sorted receiver
// order (inRangeInto sorts), so handler invocation order is identical to
// the per-event schedule, whose same-timestamp events fired in the
// consecutive sequence order they were created in.
type deliveryBatch struct {
	entries []*delivery
}

// activeTx records a transmission occupying the channel, for carrier sense.
type activeTx struct {
	pos    geom.Point
	rangeM float64
	end    sim.Time
}

// Medium is a shared broadcast channel among registered stations.
type Medium struct {
	k        *sim.Kernel
	cfg      Config
	stations map[packet.NodeID]*Station
	grid     *geom.GridIndex[*Station] // spatial index for receiver lookup
	stats    Stats
	active   []activeTx // in-flight transmissions (CSMA only)

	// Hot-path scratch: delivery structs and batches are pooled on free
	// lists and scheduled through the kernel's zero-alloc arg path via
	// deliverFn/deliverBatchFn (bound once here, so no per-delivery closure
	// exists); rxScratch is the reusable receiver buffer for transmitNow.
	freeDel        []*delivery
	freeBatch      []*deliveryBatch
	deliverFn      func(any)
	deliverBatchFn func(any)
	rxScratch      []*Station
	// perEvent restores the legacy one-kernel-event-per-receiver schedule.
	// It exists solely for the batched-vs-per-event A/B benchmark; handler
	// invocation order is identical either way.
	perEvent bool

	// Sharded operation (sharded.go): one laneCtx per spatial region and
	// the station-to-lane assignment rule. Nil in sequential mode, where
	// none of the per-lane paths execute.
	lanes  []*laneCtx
	laneOf func(packet.NodeID, geom.Point) int32
}

// New creates a medium driven by kernel k.
func New(k *sim.Kernel, cfg Config) *Medium {
	if cfg.BitRate <= 0 {
		panic("radio: non-positive bit rate")
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		panic(fmt.Sprintf("radio: loss rate %v outside [0,1)", cfg.LossRate))
	}
	cell := cfg.CellSize
	if cell <= 0 {
		cell = 50
	}
	m := &Medium{
		k:        k,
		cfg:      cfg,
		stations: make(map[packet.NodeID]*Station),
		grid:     geom.NewGridIndex[*Station](cell),
	}
	m.deliverFn = func(arg any) { m.deliver(arg.(*delivery)) }
	m.deliverBatchFn = func(arg any) { m.deliverBatch(arg.(*deliveryBatch)) }
	return m
}

func (m *Medium) getBatch() *deliveryBatch {
	if n := len(m.freeBatch); n > 0 {
		b := m.freeBatch[n-1]
		m.freeBatch[n-1] = nil
		m.freeBatch = m.freeBatch[:n-1]
		return b
	}
	return &deliveryBatch{}
}

func (m *Medium) getDelivery() *delivery {
	if n := len(m.freeDel); n > 0 {
		d := m.freeDel[n-1]
		m.freeDel[n-1] = nil
		m.freeDel = m.freeDel[:n-1]
		return d
	}
	return &delivery{}
}

// putDelivery recycles a delivery once its own deliver event has run and it
// is out of every pending list. Deliveries dropped from a pending list by a
// sibling's compaction stay live until their own event fires.
func (m *Medium) putDelivery(d *delivery) {
	d.to = nil
	d.pkt = nil
	d.corrupted = false
	m.freeDel = append(m.freeDel, d)
}

// Stats returns a snapshot of medium counters. On a sharded medium the
// per-lane counters are folded in, in lane order.
func (m *Medium) Stats() Stats {
	if m.lanes != nil {
		return m.mergeLaneStats(m.stats)
	}
	return m.stats
}

// LossRate returns the medium-wide per-link loss probability.
func (m *Medium) LossRate() float64 { return m.cfg.LossRate }

// SetLossRate changes the medium-wide per-link loss probability mid-run
// (region-wide degradation ramps). Out-of-range values panic, matching New.
func (m *Medium) SetLossRate(p float64) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("radio: loss rate %v outside [0,1)", p))
	}
	m.cfg.LossRate = p
}

// report mirrors a stats increment to the optional metrics sink.
func (m *Medium) report(c metrics.Counter, n uint64) {
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.Add(c, n)
	}
}

// observeLoss traces a dropped copy of a unicast DATA frame at its
// addressee. Broadcast copies and overheard unicasts are omitted: only the
// addressee's loss is a hop-level event the link layer will react to.
func (m *Medium) observeLoss(st *Station, pkt *packet.Packet, reason string) {
	if !m.cfg.Obs.Active() || pkt.Kind != packet.KindData || pkt.To != st.id {
		return
	}
	m.cfg.Obs.Emit(obs.Event{
		At: m.k.Now(), Kind: obs.FrameLost, Node: st.id, Peer: pkt.From,
		Origin: pkt.Origin, Seq: pkt.Seq, Detail: reason,
	})
}

// Airtime returns how long a packet of size bytes occupies the channel.
func (m *Medium) Airtime(sizeBytes int) sim.Duration {
	us := float64(sizeBytes*8) / m.cfg.BitRate * 1e6
	return sim.Duration(math.Ceil(us))
}

// Attach registers a station. handler receives one cloned packet per
// successful delivery. Attaching an already-attached ID panics: duplicate
// radio identities are a configuration bug (the deliberate case, the Sybil
// attack, forges packet headers instead).
func (m *Medium) Attach(id packet.NodeID, pos geom.Point, rangeM float64, handler func(*packet.Packet)) *Station {
	if _, dup := m.stations[id]; dup {
		panic(fmt.Sprintf("radio: station %v attached twice", id))
	}
	s := &Station{id: id, pos: pos, rangeM: rangeM, handler: handler, listening: true, medium: m}
	if m.laneOf != nil {
		s.lane = m.laneOf(id, pos)
	}
	m.stations[id] = s
	m.grid.Insert(s, pos)
	return s
}

// Detach removes a station (node death or departure). Packets already in
// flight to it are silently dropped at delivery time.
func (m *Medium) Detach(id packet.NodeID) {
	s, ok := m.stations[id]
	if !ok {
		return
	}
	m.grid.Remove(s, s.pos)
	delete(m.stations, id)
	s.handler = nil
}

// Station returns the attachment for id, or nil.
func (m *Medium) Station(id packet.NodeID) *Station { return m.stations[id] }

func (m *Medium) reindex(s *Station, p geom.Point) {
	m.grid.Move(s, s.pos, p)
	s.pos = p
}

// InRange returns the stations within sender's range, excluding the sender
// itself, in deterministic (ID-sorted) order.
func (m *Medium) InRange(sender *Station) []*Station {
	return m.inRangeInto(sender, nil)
}

// inRangeInto appends the in-range stations to out (the hot path passes a
// reusable scratch buffer; InRange passes nil for a fresh slice). Range
// changes need no reindexing: the station's current range bounds the grid
// query window at lookup time.
func (m *Medium) inRangeInto(sender *Station, out []*Station) []*Station {
	if sender == nil || sender.rangeM <= 0 {
		return out
	}
	base := len(out)
	out = m.grid.AppendWithin(out, sender.pos, sender.rangeM, sender)
	sortStations(out[base:])
	return out
}

// Neighbors returns the IDs of stations within range of id.
func (m *Medium) Neighbors(id packet.NodeID) []packet.NodeID {
	s := m.stations[id]
	if s == nil {
		return nil
	}
	in := m.InRange(s)
	out := make([]packet.NodeID, len(in))
	for i, st := range in {
		out[i] = st.id
	}
	return out
}

func sortStations(ss []*Station) {
	// Insertion sort: neighbor lists are short and this avoids pulling in
	// sort for a hot path.
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].id < ss[j-1].id; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Transmit broadcasts pkt from station from. Every listening station within
// range receives a clone after airtime + PropDelay, unless the loss model
// drops it or (with Collisions) an overlapping reception corrupts it.
// Unicast packets (pkt.To != Broadcast) still occupy every neighbor's radio
// — wireless is broadcast — but are only handed to the addressee; the node
// layer charges overhearing energy accordingly.
//
// With CSMA enabled, a busy channel defers the transmission by a random
// backoff (retried up to MaxBackoffs times before the packet is abandoned).
func (m *Medium) Transmit(from *Station, pkt *packet.Packet) {
	if from == nil {
		return
	}
	if m.lanes != nil {
		m.transmitSharded(from, pkt)
		return
	}
	if m.cfg.CSMA {
		m.transmitCSMA(from, pkt, 0)
		return
	}
	m.transmitNow(from, pkt)
}

// carrierBusy reports whether st can hear an in-flight transmission.
func (m *Medium) carrierBusy(st *Station) bool {
	now := m.k.Now()
	kept := m.active[:0]
	busy := false
	for _, tx := range m.active {
		if tx.end <= now {
			continue
		}
		kept = append(kept, tx)
		if st.pos.Dist(tx.pos) <= tx.rangeM {
			busy = true
		}
	}
	m.active = kept
	return busy
}

func (m *Medium) transmitCSMA(from *Station, pkt *packet.Packet, attempt int) {
	if from.handler == nil && m.stations[from.id] == nil {
		return // detached while backing off
	}
	maxB := m.cfg.MaxBackoffs
	if maxB <= 0 {
		maxB = 5
	}
	window := m.cfg.BackoffWindow
	if window <= 0 {
		window = 4 * sim.Millisecond
	}
	if m.carrierBusy(from) {
		if attempt >= maxB {
			m.stats.CSMADropped++
			m.report(metrics.RadioDropped, 1)
			return
		}
		m.stats.Backoffs++
		m.report(metrics.RadioBackoffs, 1)
		delay := 1 + sim.Duration(m.k.Rand().Int63n(int64(window)))
		m.k.After(delay, func() { m.transmitCSMA(from, pkt, attempt+1) })
		return
	}
	m.transmitNow(from, pkt)
}

func (m *Medium) transmitNow(from *Station, pkt *packet.Packet) {
	m.stats.Transmissions++
	m.stats.BytesOnAir += uint64(pkt.Size())
	m.report(metrics.RadioTransmissions, 1)
	m.report(metrics.RadioBytesOnAir, uint64(pkt.Size()))
	airtime := m.Airtime(pkt.Size())
	start := m.k.Now()
	end := start + airtime + m.cfg.PropDelay
	if m.cfg.CSMA {
		m.active = append(m.active, activeTx{pos: from.pos, rangeM: from.rangeM, end: start + airtime})
	}
	m.rxScratch = m.inRangeInto(from, m.rxScratch[:0])
	// One clone per receiver that will actually consume the payload
	// (addressee, broadcast listener, eavesdropper); every other receiver
	// overhears the same unicast only to charge energy and drop it at the
	// node layer, so those share a single read-only copy per transmission.
	var overhear *packet.Packet
	var batch *deliveryBatch
	for _, st := range m.rxScratch {
		if !st.listening {
			continue
		}
		if m.cfg.LossRate > 0 && m.k.Rand().Float64() < m.cfg.LossRate {
			m.stats.Lost++
			m.report(metrics.RadioLost, 1)
			m.observeLoss(st, pkt, "loss")
			continue
		}
		if st.rxLoss > 0 && m.k.Rand().Float64() < st.rxLoss {
			m.stats.Lost++
			m.report(metrics.RadioLost, 1)
			m.observeLoss(st, pkt, "loss")
			continue
		}
		d := m.getDelivery()
		var cp *packet.Packet
		if pkt.To == packet.Broadcast || pkt.To == st.id || st.promiscuous {
			cp = pkt.Clone()
		} else {
			if overhear == nil {
				overhear = pkt.Clone()
			}
			cp = overhear
		}
		d.to, d.pkt, d.start, d.end = st, cp, start, end
		if m.cfg.Collisions {
			// Any reception overlapping an in-flight one corrupts both.
			for _, prev := range st.pending {
				if prev.end > start && !prev.corrupted {
					prev.corrupted = true
					m.stats.Collided++
					m.report(metrics.RadioCollided, 1)
				}
				if prev.end > start {
					d.corrupted = true
				}
			}
			if d.corrupted {
				m.stats.Collided++
				m.report(metrics.RadioCollided, 1)
			}
			st.pending = append(st.pending, d)
		}
		if m.perEvent {
			m.k.ScheduleArgAt(end, m.deliverFn, d)
			continue
		}
		if batch == nil {
			batch = m.getBatch()
		}
		batch.entries = append(batch.entries, d)
	}
	if batch != nil {
		m.k.ScheduleArgAt(end, m.deliverBatchFn, batch)
	}
}

// deliverBatch completes every reception of one transmission. All entries
// share the same arrival instant, and their ID-sorted order matches the
// firing order of the per-event schedule they replace (consecutive
// sequence numbers at an equal timestamp).
func (m *Medium) deliverBatch(b *deliveryBatch) {
	for i, d := range b.entries {
		if m.k.Stopped() {
			// Kernel.Stop landed inside this batch (typically a reception's
			// energy charge killed the node whose death stops the run). The
			// per-event schedule would have left the remaining receptions
			// as queued events, so re-queue them individually: a run that
			// never resumes drops them exactly as before, and a resumed
			// run still completes them.
			for j := i; j < len(b.entries); j++ {
				m.k.ScheduleArgAt(b.entries[j].end, m.deliverFn, b.entries[j])
				b.entries[j] = nil
			}
			break
		}
		b.entries[i] = nil
		m.deliver(d)
	}
	b.entries = b.entries[:0]
	m.freeBatch = append(m.freeBatch, b)
}

func (m *Medium) deliver(d *delivery) {
	st := d.to
	if m.cfg.Collisions {
		// Drop completed receptions from the pending set. This always drops
		// d itself (d.end == now), so d is unreferenced after this call and
		// safe to recycle below.
		now := m.k.Now()
		kept := st.pending[:0]
		for _, p := range st.pending {
			if p.end > now {
				kept = append(kept, p)
			}
		}
		st.pending = kept
	}
	corrupted, pkt := d.corrupted, d.pkt
	m.putDelivery(d)
	if corrupted {
		m.observeLoss(st, pkt, "collision")
		return
	}
	if st.handler == nil || !st.listening {
		return
	}
	m.stats.Deliveries++
	m.report(metrics.RadioDeliveries, 1)
	st.handler(pkt)
}

// Pool carries a medium's recycled hot-path storage — delivery structs,
// delivery batches and the receiver scratch buffer — between sequential
// runs (the run arena; see sim.EventPool for the kernel half). A zero Pool
// is valid and empty. Pools are not safe for concurrent use: each run
// adopts the pool's storage exclusively and harvests it back when done.
type Pool struct {
	del     []*delivery
	batches []*deliveryBatch
	scratch [][]*Station
}

// AdoptPool seeds m's free lists from p, emptying p. Call once, on a
// freshly constructed medium.
func (m *Medium) AdoptPool(p *Pool) {
	if p.del != nil {
		m.freeDel = p.del
		p.del = nil
	}
	if p.batches != nil {
		m.freeBatch = p.batches
		p.batches = nil
	}
	if n := len(p.scratch); n > 0 {
		m.rxScratch = p.scratch[n-1][:0]
		p.scratch[n-1] = nil
		p.scratch = p.scratch[:n-1]
	}
}

// HarvestPool moves m's pooled storage into p and detaches it from m. The
// medium remains usable afterwards (it simply allocates fresh storage),
// but the harvested structures must not be reached through stale kernel
// events — the caller harvests the kernel in the same breath, which
// invalidates every scheduled delivery. All station and packet references
// are cleared so the pool never pins a dead world in memory.
func (m *Medium) HarvestPool(p *Pool) {
	// Free-listed deliveries were already cleared by putDelivery; batches
	// nil their entries in deliverBatch. Deliveries still in flight are
	// abandoned to the GC along with their kernel events.
	p.del = append(p.del, m.freeDel...)
	m.freeDel = nil
	p.batches = append(p.batches, m.freeBatch...)
	m.freeBatch = nil
	if m.rxScratch != nil {
		s := m.rxScratch[:cap(m.rxScratch)]
		for i := range s {
			s[i] = nil
		}
		p.scratch = append(p.scratch, s[:0])
		m.rxScratch = nil
	}
}
