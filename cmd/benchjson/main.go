// Command benchjson converts `go test -bench` text output (read from stdin)
// into a stable JSON document, for snapshotting benchmark baselines in the
// repo (see the Makefile bench-json target and BENCH_baseline.json).
//
//	go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson
//
// Each benchmark line becomes one record with its iteration count and every
// value/unit pair (ns/op, B/op, allocs/op, custom ReportMetric units). When
// two benchmark names differ only in a `/workers=N` suffix, a derived
// speedup record (sequential ns/op divided by parallel ns/op) is appended.
// With -prev pointing at an earlier report (e.g. the committed seed
// snapshot), shared benchmarks additionally get previous/current ratios for
// ns/op and allocs/op — values above 1 mean the current code improved.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        []string    `json:"packages,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups maps a benchmark family (name without the /workers=N suffix)
	// to sequential-ns-per-op / parallel-ns-per-op.
	Speedups map[string]float64 `json:"speedups,omitempty"`
	// VsPrevious maps benchmark names shared with the -prev report to
	// improvement ratios (previous / current; >1 = current is better).
	VsPrevious map[string]Delta `json:"vs_previous,omitempty"`
}

// Delta compares one benchmark against a previous report.
type Delta struct {
	NsRatio     float64 `json:"ns_ratio,omitempty"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
}

func main() {
	prev := flag.String("prev", "", "previous report JSON to diff against (e.g. the seed snapshot)")
	guard := flag.Float64("guard-allocs", 0, "exit non-zero when any benchmark shared with -prev has an allocs/op ratio (previous/current) below this; 1.0 demands no new allocations")
	flag.Parse()
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Speedups = speedups(rep.Benchmarks)
	if *prev != "" {
		if err := diffPrevious(rep, *prev); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *guard > 0 {
		if *prev == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -guard-allocs requires -prev")
			os.Exit(1)
		}
		if !guardAllocs(os.Stderr, rep, *guard) {
			os.Exit(1)
		}
	}
}

// guardAllocs reports (to w) every shared benchmark whose allocs/op ratio
// fell below min, returning false when any did. This is the CI gate keeping
// dormant-tracing builds allocation-identical to the committed baseline.
func guardAllocs(w *os.File, rep *Report, min float64) bool {
	names := make([]string, 0, len(rep.VsPrevious))
	for name := range rep.VsPrevious {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		d := rep.VsPrevious[name]
		if d.AllocsRatio > 0 && d.AllocsRatio < min {
			fmt.Fprintf(w, "benchjson: %s allocs/op regressed: previous/current ratio %.4f < %.4f\n",
				name, d.AllocsRatio, min)
			ok = false
		}
	}
	return ok
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = append(rep.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   120   9876543 ns/op   1234 B/op   56 allocs/op
//
// Value/unit pairs after the iteration count are collected verbatim.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Trim the -GOMAXPROCS suffix the testing package appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

// diffPrevious loads an earlier report and records improvement ratios for
// every benchmark name both reports share.
func diffPrevious(rep *Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byName := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		byName[b.Name] = b
	}
	for _, b := range rep.Benchmarks {
		o, ok := byName[b.Name]
		if !ok {
			continue
		}
		var d Delta
		if ons, ns := o.Metrics["ns/op"], b.Metrics["ns/op"]; ons > 0 && ns > 0 {
			d.NsRatio = ons / ns
		}
		if oa, a := o.Metrics["allocs/op"], b.Metrics["allocs/op"]; oa > 0 && a > 0 {
			d.AllocsRatio = oa / a
		}
		if d == (Delta{}) {
			continue
		}
		if rep.VsPrevious == nil {
			rep.VsPrevious = map[string]Delta{}
		}
		rep.VsPrevious[b.Name] = d
	}
	return nil
}

// speedups derives, for every benchmark family that has both a /workers=1
// and a /workers=N (N>1) variant, the wall-clock ratio between them.
func speedups(benches []Benchmark) map[string]float64 {
	type pair struct{ seq, par float64 }
	families := map[string]*pair{}
	for _, b := range benches {
		i := strings.LastIndex(b.Name, "/workers=")
		if i < 0 {
			continue
		}
		n, err := strconv.Atoi(b.Name[i+len("/workers="):])
		if err != nil {
			continue
		}
		ns, ok := b.Metrics["ns/op"]
		if !ok || ns <= 0 {
			continue
		}
		fam := b.Name[:i]
		p := families[fam]
		if p == nil {
			p = &pair{}
			families[fam] = p
		}
		if n == 1 {
			p.seq = ns
		} else {
			p.par = ns // highest worker count seen wins; files list them in order
		}
	}
	out := map[string]float64{}
	keys := make([]string, 0, len(families))
	for fam := range families {
		keys = append(keys, fam)
	}
	sort.Strings(keys)
	for _, fam := range keys {
		p := families[fam]
		if p.seq > 0 && p.par > 0 {
			out[fam] = p.seq / p.par
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
