package experiments

import (
	"fmt"

	"wmsn/internal/core"
	"wmsn/internal/geom"
	"wmsn/internal/packet"
	"wmsn/internal/placement"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// E6Robustness reproduces the §1 robustness claim: under random sensor
// failures, a single-sink network loses far more data than a multi-gateway
// one, because every extra gateway is an independent escape route. Failures
// hit at mid-run; the reported ratio covers traffic generated afterwards.
func E6Robustness(o Opts) []*trace.Table {
	n := pick(o, 150, 60)
	side := pick(o, 220.0, 150.0)
	horizon := pick(o, 160*sim.Second, 80*sim.Second)
	seeds := o.seeds(3)
	fracs := pick(o, []float64{0, 0.1, 0.2, 0.3, 0.4}, []float64{0, 0.2, 0.4})

	tbl := trace.NewTable("E6: delivery ratio after failing a fraction of sensors mid-run (SPR)",
		"failed %", "single sink", "3 gateways")
	type job struct {
		frac float64
		gws  int
		s    int
	}
	var jobs []job
	for _, frac := range fracs {
		for _, gws := range []int{1, 3} {
			for s := 0; s < seeds; s++ {
				jobs = append(jobs, job{frac, gws, s})
			}
		}
	}
	ratios := forEach(o, len(jobs), func(i int) float64 {
		j := jobs[i]
		return failureRun(int64(300+j.s), n, side, j.gws, j.frac, horizon)
	})
	i := 0
	for _, frac := range fracs {
		row := []any{fmt.Sprintf("%.0f%%", frac*100)}
		for range 2 { // single sink, 3 gateways
			var ratio float64
			for s := 0; s < seeds; s++ {
				ratio += ratios[i]
				i++
			}
			row = append(row, ratio/float64(seeds))
		}
		tbl.AddRow(row...)
	}
	tbl.AddNote("%d sensors, %d seeds; ratio counts only packets generated after the failures", n, seeds)
	return []*trace.Table{tbl}
}

// failureRun runs SPR, fails frac of the sensors at half-horizon, and
// returns the delivery ratio of post-failure traffic.
func failureRun(seed int64, n int, side float64, gws int, frac float64, horizon sim.Time) float64 {
	net := scenario.Build(scenario.Config{
		Seed: seed, Protocol: scenario.SPR, NumSensors: n, Side: side,
		SensorRange: 40, NumGateways: gws,
		ReportInterval: 10 * sim.Second, RunFor: horizon,
		SensorBattery: 1e6, // robustness study: failures are injected, not battery-driven
	})
	net.StartTraffic()
	net.World.Run(horizon / 2)
	genBefore := net.Metrics.Generated
	delBefore := net.Metrics.Delivered
	// Fail a random subset of still-living sensors.
	alive := aliveSensors(net)
	rng := net.World.Kernel().Rand()
	rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for _, id := range alive[:int(frac*float64(len(alive)))] {
		net.World.Device(id).Fail()
	}
	net.World.Run(horizon)
	genAfter := net.Metrics.Generated - genBefore
	delAfter := net.Metrics.Delivered - delBefore
	if genAfter == 0 {
		return 0
	}
	return float64(delAfter) / float64(genAfter)
}

func aliveSensors(net *scenario.Net) []packet.NodeID {
	var out []packet.NodeID
	for _, id := range net.SensorIDs {
		if d := net.World.Device(id); d != nil && d.Alive() {
			out = append(out, id)
		}
	}
	return out
}

// E7SinkFailure reproduces the single-point-of-failure claim (§1): killing
// the only sink silences a flat WSN entirely, while killing one of m
// gateways only degrades a WMSN — surviving gateways keep absorbing data
// (rediscovery steers traffic to them).
func E7SinkFailure(o Opts) []*trace.Table {
	n := pick(o, 120, 50)
	side := pick(o, 200.0, 140.0)
	horizon := pick(o, 160*sim.Second, 80*sim.Second)
	seeds := o.seeds(3)

	tbl := trace.NewTable("E7: gateway failure at mid-run",
		"configuration", "delivery before", "delivery after", "retained")
	type variant struct {
		name  string
		proto scenario.Protocol
		gws   int
	}
	variants := []variant{
		{"MLR, 1 gateway, kill 1 (flat)", scenario.MLR, 1},
		{"MLR, 3 gateways, kill 1", scenario.MLR, 3},
		{"SecMLR, 3 gateways, kill 1 (ACK failover)", scenario.SecMLR, 3},
	}
	type sample struct{ before, after float64 }
	samples := forEach(o, len(variants)*seeds, func(i int) sample {
		v, s := variants[i/seeds], i%seeds
		b, a := sinkFailureRun(int64(400+s), v.proto, n, side, v.gws, horizon)
		return sample{b, a}
	})
	for vi, v := range variants {
		var before, after float64
		for s := 0; s < seeds; s++ {
			before += samples[vi*seeds+s].before
			after += samples[vi*seeds+s].after
		}
		f := float64(seeds)
		retained := "-"
		if before > 0 {
			retained = fmt.Sprintf("%.0f%%", 100*(after/f)/(before/f))
		}
		tbl.AddRow(v.name, before/f, after/f, retained)
	}
	tbl.AddNote("%d sensors, %d seeds; plain MLR keeps sending to the dead gateway's place (it never "+
		"announces its departure), while SecMLR's missing ACKs trigger failover to survivors", n, seeds)
	return []*trace.Table{tbl}
}

func sinkFailureRun(seed int64, proto scenario.Protocol, n int, side float64, gws int, horizon sim.Time) (before, after float64) {
	net := scenario.Build(scenario.Config{
		Seed: seed, Protocol: proto, NumSensors: n, Side: side,
		SensorRange: 40, NumGateways: gws,
		// Static deployment: every gateway sits at its own place all run.
		Places:         geom.PlaceGrid(gws, geom.Square(side)),
		Schedule:       [][]int{identity(gws)},
		RoundLen:       horizon,
		ReportInterval: 10 * sim.Second, RunFor: horizon,
		SensorBattery: 1e6,
	})
	net.StartTraffic()
	net.World.Run(horizon / 2)
	genBefore, delBefore := net.Metrics.Generated, net.Metrics.Delivered
	net.World.Device(scenario.GatewayID(0)).Fail()
	net.World.Run(horizon)
	genAfter := net.Metrics.Generated - genBefore
	delAfter := net.Metrics.Delivered - delBefore
	if genBefore > 0 {
		before = float64(delBefore) / float64(genBefore)
	}
	if genAfter > 0 {
		after = float64(delAfter) / float64(genAfter)
	}
	return before, after
}

func identity(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// E8LoadBalance reproduces the §4.3 load concern: hotspot traffic (a forest
// fire in one corner) overloads the nearest gateway under least-hop routing;
// MLR's rotation spreads the load across gateways over time.
func E8LoadBalance(o Opts) []*trace.Table {
	n := pick(o, 150, 60)
	side := pick(o, 220.0, 150.0)
	horizon := pick(o, 240*sim.Second, 120*sim.Second)
	seeds := o.seeds(3)
	spot := geom.Rect{X0: 0, Y0: 0, X1: side / 4, Y1: side / 4}
	deploy := geom.Hotspot{Spot: spot, Fraction: 0.6}

	tbl := trace.NewTable("E8: hotspot load across 3 gateways (60% of sensors in one corner)",
		"mechanism", "busiest gateway share", "imbalance (max/mean)", "delivery ratio")
	type variant struct {
		name     string
		protocol scenario.Protocol
		roundLen sim.Duration
		sliding  bool // sliding rotation: every gateway visits every place
		shed     bool
	}
	variants := []variant{
		{"SPR (static gateways)", scenario.SPR, 0, false, false},
		{"MLR, sliding rotation (all gateways visit the hotspot)", scenario.MLR, horizon / 6, true, false},
		{"MLR, partitioned rotation + overload shedding (§4.3 ext.)", scenario.MLR, horizon / 6, false, true},
	}
	var cfgs []scenario.Config
	for _, v := range variants {
		for s := 0; s < seeds; s++ {
			cfg := scenario.Config{
				Seed: int64(500 + s), Protocol: v.protocol, NumSensors: n, Side: side,
				SensorRange: 40, NumGateways: 3, Deploy: deploy,
				ReportInterval: 10 * sim.Second, RunFor: horizon,
				SensorBattery: 1e6,
			}
			if v.sliding {
				// Tenant-churning rotation spreads the hotspot across all
				// gateways over time (at a control-traffic cost — see
				// BenchmarkAblationSchedule).
				cfg.Schedule = placement.SlidingSchedule(6, 3, 64)
			}
			if v.shed {
				// Shed when a gateway absorbs over ~1.5x its fair share of
				// one round's traffic.
				params := core.DefaultParams()
				fair := uint64(n) * uint64(v.roundLen/(10*sim.Second)) / 3
				params.OverloadThreshold = fair + fair/2
				params.OverloadClear = v.roundLen
				cfg.Params = &params
			}
			if v.roundLen > 0 {
				cfg.RoundLen = v.roundLen
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results := runConfigs(o, cfgs)
	for vi, v := range variants {
		var share, imb, ratio float64
		for s := 0; s < seeds; s++ {
			res := results[vi*seeds+s]
			per := res.Metrics.PerGateway()
			var max, total uint64
			for _, c := range per {
				total += c
				if c > max {
					max = c
				}
			}
			if total > 0 {
				share += float64(max) / float64(total)
			}
			imb += res.Metrics.GatewayLoadImbalance()
			ratio += res.Metrics.DeliveryRatio()
		}
		f := float64(seeds)
		tbl.AddRow(v.name, share/f, imb/f, ratio/f)
	}
	tbl.AddNote("%d sensors, %d seeds; imbalance 1.0 = perfectly even; two remedies shown: "+
		"spatial rotation vs load-shedding redirection", n, seeds)
	return []*trace.Table{tbl}
}
