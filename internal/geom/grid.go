// Uniform-grid spatial indexes for unit-disk neighbor queries.
//
// Two variants cover the two access patterns in the simulator:
//
//   - GridIndex is incremental: values move, appear and disappear one at a
//     time (radio stations under mobility, death and recovery). It hashes
//     cell coordinates, so the field may be unbounded.
//   - StaticGrid is a batch index over a fixed point set, laid out with a
//     counting sort into one flat array (three allocations regardless of
//     size). Topology construction and power control build one per call.
//
// Both answer "every point within r of center" by scanning the O((r/cell)²)
// cells overlapping the query disk and filtering on squared distance, so a
// query costs O(neighborhood) instead of O(n). The squared-distance filter
// `Dist2(p, c) <= r*r` is byte-equivalent to the `Dist(p, c) <= r` the
// brute-force paths used: for IEEE doubles sqrt is correctly rounded and
// monotone, so fl(sqrt(x)) <= r exactly when x <= fl(r*r).
package geom

import "math"

type gridCell struct{ cx, cy int32 }

type gridEntry[T comparable] struct {
	pos Point
	v   T
}

// GridIndex is an incremental uniform-grid spatial index over values of
// type T. Values are bucketed by their position; the bucket order is an
// implementation detail, so callers needing determinism must sort query
// results (the radio medium sorts by station ID).
type GridIndex[T comparable] struct {
	cell  float64
	cells map[gridCell][]gridEntry[T]
	n     int
}

// NewGridIndex returns an empty index with the given cell edge. The cell
// size only affects performance, never results; it should be on the order
// of the typical query radius.
func NewGridIndex[T comparable](cellSize float64) *GridIndex[T] {
	if cellSize <= 0 || math.IsNaN(cellSize) {
		panic("geom: non-positive grid cell size")
	}
	return &GridIndex[T]{cell: cellSize, cells: make(map[gridCell][]gridEntry[T])}
}

// CellSize returns the cell edge length.
func (g *GridIndex[T]) CellSize() float64 { return g.cell }

// Len returns the number of indexed values.
func (g *GridIndex[T]) Len() int { return g.n }

func (g *GridIndex[T]) cellFor(p Point) gridCell {
	return gridCell{
		cx: int32(math.Floor(p.X / g.cell)),
		cy: int32(math.Floor(p.Y / g.cell)),
	}
}

// Insert indexes v at p. Inserting the same value twice (even at different
// positions) corrupts the index; callers keep one position per value.
func (g *GridIndex[T]) Insert(v T, p Point) {
	c := g.cellFor(p)
	g.cells[c] = append(g.cells[c], gridEntry[T]{pos: p, v: v})
	g.n++
}

// Remove unindexes v, which must have been inserted at p (its current
// position). It reports whether the value was found.
func (g *GridIndex[T]) Remove(v T, p Point) bool {
	c := g.cellFor(p)
	b := g.cells[c]
	for i := range b {
		if b[i].v == v {
			last := len(b) - 1
			b[i] = b[last]
			b[last] = gridEntry[T]{}
			if last == 0 {
				delete(g.cells, c)
			} else {
				g.cells[c] = b[:last]
			}
			g.n--
			return true
		}
	}
	return false
}

// Move relocates v from its current position to another. When both map to
// the same cell this is a single in-place update and no bucket churn.
func (g *GridIndex[T]) Move(v T, from, to Point) bool {
	cf, ct := g.cellFor(from), g.cellFor(to)
	if cf == ct {
		b := g.cells[cf]
		for i := range b {
			if b[i].v == v {
				b[i].pos = to
				return true
			}
		}
		return false
	}
	if !g.Remove(v, from) {
		return false
	}
	g.Insert(v, to)
	return true
}

// AppendWithin appends to out every indexed value whose distance to center
// is at most r, excluding except (pass a value never inserted to disable
// exclusion). Results are in no particular order. The append-to-buffer
// shape keeps the hot path free of closures and per-query allocation.
func (g *GridIndex[T]) AppendWithin(out []T, center Point, r float64, except T) []T {
	if r < 0 || math.IsNaN(r) {
		return out
	}
	r2 := r * r
	c0 := g.cellFor(Point{X: center.X - r, Y: center.Y - r})
	c1 := g.cellFor(Point{X: center.X + r, Y: center.Y + r})
	for cx := c0.cx; cx <= c1.cx; cx++ {
		for cy := c0.cy; cy <= c1.cy; cy++ {
			for _, e := range g.cells[gridCell{cx, cy}] {
				if e.v == except {
					continue
				}
				if e.pos.Dist2(center) <= r2 {
					out = append(out, e.v)
				}
			}
		}
	}
	return out
}

// StaticGrid is a batch spatial index over a fixed slice of points,
// identified by their indices. Construction is O(n) with a constant number
// of allocations: cells are ranges of one flat permutation array (counting
// sort), which is what keeps PowerControlK's allocation count independent
// of field size.
type StaticGrid struct {
	cell       float64
	minX, minY float64
	nx, ny     int32
	start      []int32 // cell c covers order[start[c]:start[c+1]]
	order      []int32 // point indices grouped by cell
	pts        []Point // caller's backing slice, referenced not copied
}

// NewStaticGrid indexes pts with the given cell edge. The pts slice is
// retained and must not be mutated while the grid is in use.
func NewStaticGrid(pts []Point, cellSize float64) *StaticGrid {
	if cellSize <= 0 || math.IsNaN(cellSize) {
		panic("geom: non-positive grid cell size")
	}
	g := &StaticGrid{cell: cellSize, pts: pts}
	if len(pts) == 0 {
		return g
	}
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	// Bound the table to O(n) cells: a tiny cell over a sparse field would
	// otherwise explode the counting-sort table. Growing the cell never
	// changes query results, only bucket occupancy.
	for {
		nx := int64((maxX-minX)/cellSize) + 1
		ny := int64((maxY-minY)/cellSize) + 1
		if nx*ny <= int64(4*len(pts)+64) {
			break
		}
		cellSize *= 2
	}
	g.cell = cellSize
	g.nx = int32((maxX-minX)/cellSize) + 1
	g.ny = int32((maxY-minY)/cellSize) + 1
	cells := int(g.nx) * int(g.ny)
	g.start = make([]int32, cells+1)
	g.order = make([]int32, len(pts))
	// Counting sort: histogram, prefix-sum, then scatter.
	for _, p := range pts {
		g.start[g.cellOf(p)+1]++
	}
	for c := 1; c <= cells; c++ {
		g.start[c] += g.start[c-1]
	}
	cursor := make([]int32, cells)
	for i, p := range pts {
		c := g.cellOf(p)
		g.order[g.start[c]+cursor[c]] = int32(i)
		cursor[c]++
	}
	return g
}

// cellOf maps an indexed point (guaranteed inside the bounding box) to its
// flattened cell number.
func (g *StaticGrid) cellOf(p Point) int32 {
	cx := int32((p.X - g.minX) / g.cell)
	cy := int32((p.Y - g.minY) / g.cell)
	return cy*g.nx + cx
}

// clampCell maps an arbitrary coordinate to a valid cell coordinate along
// one axis of extent n.
func clampCell(v float64, n int32) int32 {
	if v < 0 {
		return 0
	}
	c := int32(v)
	if c >= n {
		return n - 1
	}
	return c
}

// AppendWithin appends to out the index of every point within r of center,
// excluding index except (pass a negative value to disable exclusion).
//
// Membership is decided solely by the squared-distance filter; the cell
// window is padded by a sliver of a cell so rounding in the window
// arithmetic can never exclude a point the filter would accept. This keeps
// the result set identical to a windowless brute-force scan.
func (g *StaticGrid) AppendWithin(out []int32, center Point, r float64, except int32) []int32 {
	if len(g.pts) == 0 || r < 0 || math.IsNaN(r) {
		return out
	}
	r2 := r * r
	rw := r + g.cell*1e-9
	x0 := clampCell((center.X-rw-g.minX)/g.cell, g.nx)
	x1 := clampCell((center.X+rw-g.minX)/g.cell, g.nx)
	y0 := clampCell((center.Y-rw-g.minY)/g.cell, g.ny)
	y1 := clampCell((center.Y+rw-g.minY)/g.cell, g.ny)
	for cy := y0; cy <= y1; cy++ {
		row := cy * g.nx
		for cx := x0; cx <= x1; cx++ {
			c := row + cx
			for _, i := range g.order[g.start[c]:g.start[c+1]] {
				if i == except {
					continue
				}
				if g.pts[i].Dist2(center) <= r2 {
					out = append(out, i)
				}
			}
		}
	}
	return out
}

// AppendDist2Within appends to out the squared distance from center to
// every point within r, excluding index except. Power control consumes the
// distances directly (quickselect for the k-th nearest), so returning d²
// avoids n sqrt calls.
func (g *StaticGrid) AppendDist2Within(out []float64, center Point, r float64, except int32) []float64 {
	if len(g.pts) == 0 || r < 0 || math.IsNaN(r) {
		return out
	}
	r2 := r * r
	rw := r + g.cell*1e-9
	x0 := clampCell((center.X-rw-g.minX)/g.cell, g.nx)
	x1 := clampCell((center.X+rw-g.minX)/g.cell, g.nx)
	y0 := clampCell((center.Y-rw-g.minY)/g.cell, g.ny)
	y1 := clampCell((center.Y+rw-g.minY)/g.cell, g.ny)
	for cy := y0; cy <= y1; cy++ {
		row := cy * g.nx
		for cx := x0; cx <= x1; cx++ {
			c := row + cx
			for _, i := range g.order[g.start[c]:g.start[c+1]] {
				if i == except {
					continue
				}
				if d2 := g.pts[i].Dist2(center); d2 <= r2 {
					out = append(out, d2)
				}
			}
		}
	}
	return out
}
