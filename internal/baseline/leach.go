package baseline

import (
	"encoding/binary"
	"math"

	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// LEACH (§2.2.2 [17]) is the classic 2-level cluster hierarchy: in every
// round each node elects itself cluster head with the rotating-threshold
// rule; heads advertise, members join the nearest head and send their
// readings to it in one hop; heads aggregate and transmit directly to the
// sink. Because the head-to-sink hop is long, LEACH depends on the
// first-order energy model's quadratic distance term to show its
// characteristic behaviour — and its poor fit for large fields is exactly
// the weakness the paper's multi-gateway architecture addresses.

const (
	leachAdvMarker byte = 'A'
)

// LEACH is the per-sensor stack.
type LEACH struct {
	Metrics metrics.Sink
	// P is the desired cluster-head fraction per round (classically 0.05).
	P float64
	// SinkID/SinkPos locate the flat sink every head transmits to.
	SinkID  packet.NodeID
	SinkPos geom.Point
	// ClusterRange is the head advertisement radius.
	ClusterRange float64

	dev    *node.Device
	round  int
	isCH   bool
	lastCH int // round when this node last served as head; -1 never

	haveCH bool
	chID   packet.NodeID
	chPos  geom.Point

	buffer []aggEntry // head only: readings awaiting aggregation
	seq    uint32
}

type aggEntry struct {
	origin packet.NodeID
	seq    uint32
}

// NewLEACH creates a LEACH sensor stack.
func NewLEACH(m metrics.Sink, p float64, sink packet.NodeID, sinkPos geom.Point, clusterRange float64) *LEACH {
	if p <= 0 || p >= 1 {
		p = 0.05
	}
	return &LEACH{Metrics: m, P: p, SinkID: sink, SinkPos: sinkPos,
		ClusterRange: clusterRange, lastCH: -1}
}

// Start implements node.Stack.
func (l *LEACH) Start(dev *node.Device) { l.dev = dev }

// IsClusterHead reports whether the node heads a cluster this round.
func (l *LEACH) IsClusterHead() bool { return l.isCH }

// threshold implements the LEACH election threshold T(n): nodes that served
// as head within the last 1/P rounds are ineligible; the rest face a
// probability that rises toward 1 as the epoch progresses, guaranteeing
// every node leads exactly once per epoch in expectation.
func (l *LEACH) threshold(round int) float64 {
	epoch := int(math.Round(1 / l.P))
	if epoch < 1 {
		epoch = 1
	}
	if l.lastCH >= 0 && round-l.lastCH < epoch {
		return 0
	}
	mod := float64(round % epoch)
	den := 1 - l.P*mod
	if den <= 0 {
		return 1
	}
	return l.P / den
}

// beginRound runs the election and, for heads, the advertisement.
func (l *LEACH) beginRound(round int) {
	if l.dev == nil || !l.dev.Alive() {
		return
	}
	// Flush any readings buffered as head of the previous round.
	l.flush()
	l.round = round
	l.haveCH = false
	l.isCH = l.dev.World().Kernel().Rand().Float64() < l.threshold(round)
	if !l.isCH {
		return
	}
	l.lastCH = round
	pos := l.dev.Pos()
	payload := make([]byte, 1, 17)
	payload[0] = leachAdvMarker
	payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(pos.X))
	payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(pos.Y))
	l.seq++
	adv := &packet.Packet{
		Kind:    packet.KindHello,
		From:    l.dev.ID(),
		To:      packet.Broadcast,
		Origin:  l.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     l.seq,
		TTL:     1,
		Payload: payload,
	}
	if l.dev.SendRange(adv, l.ClusterRange) {
		l.Metrics.Inc(metrics.NotifySent) // advertisement counted as control traffic
	}
}

// flush aggregates buffered readings into one long-hop packet to the sink.
func (l *LEACH) flush() {
	if len(l.buffer) == 0 || l.dev == nil || !l.dev.Alive() {
		l.buffer = nil
		return
	}
	payload := binary.BigEndian.AppendUint16(nil, uint16(len(l.buffer)))
	for _, e := range l.buffer {
		payload = binary.BigEndian.AppendUint32(payload, uint32(e.origin))
		payload = binary.BigEndian.AppendUint32(payload, e.seq)
	}
	l.buffer = nil
	l.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    l.dev.ID(),
		To:      l.SinkID,
		Origin:  l.dev.ID(),
		Target:  l.SinkID,
		Seq:     l.seq,
		TTL:     1,
		Hops:    1, // member -> head
		Payload: payload,
	}
	dist := l.dev.Pos().Dist(l.SinkPos)
	if l.dev.SendRange(pkt, dist*1.01) {
		l.Metrics.Inc(metrics.DataSent)
	}
}

// OriginateData queues one reading: heads buffer it locally, members send it
// to their head, clusterless nodes fall back to a direct sink transmission.
func (l *LEACH) OriginateData(payload []byte) {
	if l.dev == nil || !l.dev.Alive() {
		return
	}
	l.seq++
	l.Metrics.RecordGenerated(l.dev.ID(), l.seq, l.dev.Now())
	switch {
	case l.isCH:
		l.buffer = append(l.buffer, aggEntry{l.dev.ID(), l.seq})
	case l.haveCH:
		pkt := &packet.Packet{
			Kind:   packet.KindData,
			From:   l.dev.ID(),
			To:     l.chID,
			Origin: l.dev.ID(),
			Target: l.chID,
			Seq:    l.seq,
			TTL:    1,
		}
		dist := l.dev.Pos().Dist(l.chPos)
		if l.dev.SendRange(pkt, dist*1.01) {
			l.Metrics.Inc(metrics.DataSent)
		}
	default:
		// Clusterless: direct to sink.
		pkt := &packet.Packet{
			Kind:    packet.KindData,
			From:    l.dev.ID(),
			To:      l.SinkID,
			Origin:  l.dev.ID(),
			Target:  l.SinkID,
			Seq:     l.seq,
			TTL:     1,
			Payload: leachSingleton(l.dev.ID(), l.seq),
		}
		dist := l.dev.Pos().Dist(l.SinkPos)
		if l.dev.SendRange(pkt, dist*1.01) {
			l.Metrics.Inc(metrics.DataSent)
		}
	}
}

func leachSingleton(origin packet.NodeID, seq uint32) []byte {
	payload := binary.BigEndian.AppendUint16(nil, 1)
	payload = binary.BigEndian.AppendUint32(payload, uint32(origin))
	return binary.BigEndian.AppendUint32(payload, seq)
}

// HandleMessage implements node.Stack.
func (l *LEACH) HandleMessage(pkt *packet.Packet) {
	if l.dev == nil {
		return // not attached to a device yet
	}
	switch pkt.Kind {
	case packet.KindHello:
		if len(pkt.Payload) < 17 || pkt.Payload[0] != leachAdvMarker || l.isCH {
			return
		}
		pos := geom.Point{
			X: math.Float64frombits(binary.BigEndian.Uint64(pkt.Payload[1:])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(pkt.Payload[9:])),
		}
		d := l.dev.Pos().Dist(pos)
		if !l.haveCH || d < l.dev.Pos().Dist(l.chPos) {
			l.haveCH = true
			l.chID = pkt.Origin
			l.chPos = pos
		}
	case packet.KindData:
		if !l.isCH || pkt.Target != l.dev.ID() {
			return
		}
		l.buffer = append(l.buffer, aggEntry{pkt.Origin, pkt.Seq})
	}
}

// LEACHSink absorbs aggregated packets and credits each constituent reading.
type LEACHSink struct {
	Metrics metrics.Sink

	dev *node.Device
}

// NewLEACHSink creates the sink stack.
func NewLEACHSink(m metrics.Sink) *LEACHSink { return &LEACHSink{Metrics: m} }

// Start implements node.Stack.
func (s *LEACHSink) Start(dev *node.Device) { s.dev = dev }

// HandleMessage implements node.Stack.
func (s *LEACHSink) HandleMessage(pkt *packet.Packet) {
	if s.dev == nil {
		return // not attached to a device yet
	}
	if pkt.Kind != packet.KindData || pkt.Target != s.dev.ID() {
		return
	}
	if len(pkt.Payload) < 2 {
		return
	}
	n := int(binary.BigEndian.Uint16(pkt.Payload))
	off := 2
	for i := 0; i < n && off+8 <= len(pkt.Payload); i++ {
		origin := packet.NodeID(binary.BigEndian.Uint32(pkt.Payload[off:]))
		seq := binary.BigEndian.Uint32(pkt.Payload[off+4:])
		s.Metrics.RecordDelivered(origin, seq, s.dev.ID(), int(pkt.Hops)+1, s.dev.Now())
		off += 8
	}
}

// LEACHRounds drives the cluster rotation: it calls beginRound on every
// stack at each round boundary (a final flush happens inside beginRound).
type LEACHRounds struct {
	World    *node.World
	Stacks   []*LEACH
	RoundLen sim.Duration

	round   int
	stopped bool
}

// Start begins round 0 immediately.
func (r *LEACHRounds) Start() {
	r.apply()
	r.schedule()
}

// Stop halts rotation.
func (r *LEACHRounds) Stop() { r.stopped = true }

// Round returns the current round index.
func (r *LEACHRounds) Round() int { return r.round }

func (r *LEACHRounds) schedule() {
	r.World.Kernel().After(r.RoundLen, func() {
		if r.stopped {
			return
		}
		r.round++
		r.apply()
		r.schedule()
	})
}

func (r *LEACHRounds) apply() {
	for _, st := range r.Stacks {
		st.beginRound(r.round)
	}
}
