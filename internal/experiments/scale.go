package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/placement"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// scaleSide returns the side of an n-sensor field at E1b's density
// (300 sensors on a 300 m side).
func scaleSide(n int) float64 {
	return 300 * math.Sqrt(float64(n)/300)
}

// ScaleSweep measures the E1b hop metric on an n-sensor constant-density
// field for each gateway count, timing each build+evaluate cycle — the
// scalability demonstration behind `wmsnbench -scale`. Topology construction
// and hop evaluation go through the grid-indexed network package, so
// n=10000 completes in tens of milliseconds where the pairwise scan took
// minutes; with workers > 1 the independent gateway counts evaluate
// concurrently, which is what keeps the 100k row interactive.
//
// It is not part of the golden experiment suite: the timing column is
// machine-dependent by design. The rows themselves are deterministic in
// (n, seed) and independent of workers: grid placement ignores the RNG and
// each evaluation builds its own graph.
func ScaleSweep(o Opts, n int, gateways []int, seed int64) *trace.Table {
	workers := o.Workers
	side := scaleSide(n)
	w := node.NewWorld(node.Config{Seed: seed})
	sensors := (geom.Uniform{}).Deploy(n, geom.Square(side), w.Kernel().Rand())
	tbl := trace.NewTable(
		fmt.Sprintf("Scale: avg hops to nearest gateway, %d sensors uniform on %.0fm field", n, side),
		"gateways m", "avg hops", "max hops", "unreachable", "build+eval ms")
	if workers < 1 {
		workers = 1
	}
	type row struct {
		ev placement.Eval
		ms float64
	}
	rows := make([]row, len(gateways))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, m := range gateways {
		wg.Add(1)
		go func(i, m int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			// Per-worker RNG: Grid placement never draws from it, but the
			// shared kernel RNG must not cross goroutines.
			rng := rand.New(rand.NewSource(seed + int64(m)))
			gpos := (placement.Grid{}).Place(sensors, m, geom.Square(side), rng)
			rows[i] = row{
				ev: placement.Evaluate(sensors, gpos, 40),
				ms: float64(time.Since(start).Microseconds()) / 1000,
			}
		}(i, m)
	}
	wg.Wait()
	for i, m := range gateways {
		tbl.AddRow(m, rows[i].ev.AvgHops, rows[i].ev.MaxHops, rows[i].ev.Unreachable,
			fmt.Sprintf("%.1f", rows[i].ms))
	}
	tbl.AddNote(fmt.Sprintf("grid placement, range 40 m, constant density vs E1b, %d workers", workers))
	return tbl
}

// countStack is the do-nothing sensor stack of the traffic smoke: receptions
// are counted by the radio layer's per-lane stats, so the stack itself has
// nothing to do.
type countStack struct{}

func (countStack) Start(*node.Device)           {}
func (countStack) HandleMessage(*packet.Packet) {}

// ScaleTraffic pushes one hello broadcast from every one of n sensors
// through the event engine — the ~30·n-delivery wave that exercises the
// sharded window loop end to end at field sizes the sequential kernel
// cannot reach interactively. Shards=1 runs the plain single-kernel engine;
// Shards=N splits the field into N vertical regions simulated by concurrent
// workers under conservative time-window synchronization.
//
// Broadcasts are staggered across a fixed 1024 µs span (index mod 1024) so
// every window carries work for all lanes regardless of n.
func ScaleTraffic(o Opts, n int, seed int64) *trace.Table {
	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	side := scaleSide(n)
	region := geom.Square(side)
	w := node.NewWorld(node.Config{Seed: seed})
	if shards > 1 {
		w.EnableSharding(shards, region)
	}
	sensors := (geom.Uniform{}).Deploy(n, region, w.Kernel().Rand())
	for i, p := range sensors {
		w.AddSensor(packet.NodeID(i+1), p, 40, 0, countStack{})
	}
	for i := range sensors {
		d := w.Device(packet.NodeID(i + 1))
		d.After(sim.Duration(i%1024)*sim.Microsecond, func() {
			id := d.ID()
			d.Send(&packet.Packet{Kind: packet.KindHello, From: id, Origin: id,
				To: packet.Broadcast, Target: packet.Broadcast, TTL: 1})
		})
	}
	start := time.Now()
	events := w.RunUntilIdle()
	elapsed := time.Since(start)
	stats := w.SensorMedium().Stats()
	tbl := trace.NewTable(
		fmt.Sprintf("Scale: broadcast wave through the event engine, %d sensors on %.0fm field", n, side),
		"shards", "events", "radio tx", "deliveries", "wall ms", "ev/ms")
	ms := float64(elapsed.Microseconds()) / 1000
	perMS := 0.0
	if ms > 0 {
		perMS = float64(events) / ms
	}
	tbl.AddRow(shards, events, stats.Transmissions, stats.Deliveries,
		fmt.Sprintf("%.1f", ms), fmt.Sprintf("%.0f", perMS))
	tbl.AddNote("one hello per sensor, range 40 m; deliveries ≈ degree · n")
	return tbl
}
