package scenario

import (
	"math"
	"testing"

	"wmsn/internal/sim"
)

// shardSummary is the cross-engine comparable slice of a Result.
type shardSummary struct {
	generated, delivered, duplicates uint64
	dataSent                         uint64
	radioTx, radioDeliv              uint64
	meanLatency                      sim.Duration
	meanHops                         float64
	sensorsAlive                     int
	firstDeath                       sim.Time
	energyTotal                      float64
}

func summarize(r Result) shardSummary {
	return shardSummary{
		generated:    r.Metrics.Generated,
		delivered:    r.Metrics.Delivered,
		duplicates:   r.Metrics.Duplicates,
		dataSent:     r.Metrics.DataSent,
		radioTx:      r.Radio.Transmissions,
		radioDeliv:   r.Radio.Deliveries,
		meanLatency:  r.Metrics.MeanLatency(),
		meanHops:     r.Metrics.MeanHops(),
		sensorsAlive: r.SensorsAlive,
		firstDeath:   r.FirstDeath,
		energyTotal:  r.Energy.Total,
	}
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// The determinism contract of sharded execution (see DESIGN.md, "Sharded
// execution"): the conservative window engine delivers exactly the frames
// the sequential engine delivers, at the same simulated times — what can
// differ is only the processing ORDER of receptions landing at the same
// node in the same microsecond. With the jitter-free default parameters the
// flood cascades are time-synchronized, so such ties are common, and
// first-copy tie resolution picks different (equally valid) parents.
//
// The tests below pin both halves of the contract:
//
//   - End-to-end flow summary — generated, delivered, duplicates, survivors,
//     first death — is EXACTLY equal for every protocol, every seed.
//   - For traffic without simultaneous arrivals (Direct: no flood cascades,
//     per-sensor random phases), the ENTIRE summary is exactly equal,
//     including latency, radio counters and energy: the engine itself is
//     bit-faithful; only tie resolution is free.
//   - For flood protocols, the tie-sensitive path-shape metrics (mean
//     latency/hops, radio counters, total energy) stay within a tight
//     relative band.

// TestShardedSummariesMatch compares Shards=1 against Shards=N across
// protocols and three seeds.
func TestShardedSummariesMatch(t *testing.T) {
	const pathTol = 0.10 // tie-resolution band for flood-protocol path metrics
	for _, proto := range []Protocol{Direct, SPR, MLR} {
		for _, seed := range []int64{1, 2, 3} {
			cfg := Config{Protocol: proto, Seed: seed, NumSensors: 120, RunFor: 60 * sim.Second}
			seq := summarize(Run(cfg))
			if seq.generated == 0 || seq.delivered == 0 {
				t.Fatalf("%s seed %d: sequential run delivered nothing (generated=%d delivered=%d)",
					proto, seed, seq.generated, seq.delivered)
			}
			for _, shards := range []int{2, 3} {
				cfg.Shards = shards
				got := summarize(Run(cfg))
				if got.generated != seq.generated || got.delivered != seq.delivered ||
					got.duplicates != seq.duplicates || got.sensorsAlive != seq.sensorsAlive ||
					got.firstDeath != seq.firstDeath {
					t.Errorf("%s seed %d shards %d: end-to-end flow summary diverged\nsequential: %+v\nsharded:    %+v",
						proto, seed, shards, seq, got)
					continue
				}
				if proto == Direct {
					// No simultaneous arrivals -> full summary must be exact
					// (energy to float tolerance: same draws, same per-node
					// accumulation order).
					if got.dataSent != seq.dataSent || got.radioTx != seq.radioTx ||
						got.radioDeliv != seq.radioDeliv || got.meanLatency != seq.meanLatency ||
						got.meanHops != seq.meanHops ||
						relDiff(got.energyTotal, seq.energyTotal) > 1e-12 {
						t.Errorf("direct seed %d shards %d: tie-free summary not exact\nsequential: %+v\nsharded:    %+v",
							seed, shards, seq, got)
					}
					continue
				}
				if relDiff(float64(got.meanLatency), float64(seq.meanLatency)) > pathTol ||
					relDiff(got.meanHops, seq.meanHops) > pathTol ||
					relDiff(float64(got.radioTx), float64(seq.radioTx)) > pathTol ||
					relDiff(float64(got.radioDeliv), float64(seq.radioDeliv)) > pathTol ||
					relDiff(got.energyTotal, seq.energyTotal) > pathTol {
					t.Errorf("%s seed %d shards %d: path metrics outside the tie-resolution band\nsequential: %+v\nsharded:    %+v",
						proto, seed, shards, seq, got)
				}
			}
		}
	}
}

// TestShardedRunIsDeterministic checks that a sharded run — including one
// with in-run randomness (radio loss draws on per-lane RNG streams) — is a
// pure function of (seed, shards): running it twice gives identical
// results.
func TestShardedRunIsDeterministic(t *testing.T) {
	for _, lossRate := range []float64{0, 0.1} {
		cfg := Config{Protocol: SPR, Seed: 7, NumSensors: 120, LossRate: lossRate, Shards: 3, RunFor: 60 * sim.Second}
		a := summarize(Run(cfg))
		b := summarize(Run(cfg))
		if a != b {
			t.Fatalf("loss %v: same (seed, shards) run twice diverged:\nfirst:  %+v\nsecond: %+v", lossRate, a, b)
		}
		if a.generated == 0 {
			t.Fatalf("loss %v: sharded run generated nothing", lossRate)
		}
	}
}

// TestShardedConfigRejections pins the Validate guard rails: every feature
// that needs a global view or draws handler randomness must be refused, not
// silently raced.
func TestShardedConfigRejections(t *testing.T) {
	base := Config{Shards: 2}
	cases := map[string]func(*Config){
		"csma":       func(c *Config) { c.CSMA = true },
		"collisions": func(c *Config) { c.Collisions = true },
		"gossiping":  func(c *Config) { c.Protocol = Gossiping },
		"negative":   func(c *Config) { c.Shards = -1 },
	}
	for name, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an unshardable config %+v", name, cfg)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("plain Shards=2 SPR config rejected: %v", err)
	}
}
