package obs

import (
	"fmt"
	"sort"

	"wmsn/internal/packet"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// Replay: analysis over a recorded event stream. Everything here operates on
// a plain []Event — live capture or ReadJSONL output — so cmd/wmsntrace can
// answer per-packet lifecycle queries, drop breakdowns and time-series
// questions from a trace file alone, without re-running the simulation.

// PacketKey is the end-to-end identity of a data packet.
type PacketKey struct {
	Origin packet.NodeID
	Seq    uint32
}

// String renders the identity in the "origin:seq" form the wmsntrace
// -packet flag accepts.
func (k PacketKey) String() string { return fmt.Sprintf("%s:%d", k.Origin, k.Seq) }

// Hop is one link-layer leg of a packet's journey, reconstructed from
// LinkTx/LinkRetry/LinkAck/LinkFailure events.
type Hop struct {
	From, To packet.NodeID
	Start    sim.Time // first transmission attempt
	End      sim.Time // LINK-ACK matched / hop declared dead (0 if neither)
	Retries  int      // retransmissions beyond the first attempt
	Acked    bool     // the next hop acknowledged receipt
	Failed   bool     // the retry budget was exhausted
}

// Latency returns the hop's link latency (first attempt to ACK), or -1 when
// the hop was never acknowledged (fire-and-forget runs or dead hops).
func (h Hop) Latency() sim.Duration {
	if !h.Acked {
		return -1
	}
	return h.End - h.Start
}

// Life is the reconstructed lifecycle of one data packet.
type Life struct {
	Key         PacketKey
	Generated   sim.Time
	HasGen      bool // the trace contains the PacketGenerated event
	Delivered   bool
	DeliveredAt sim.Time
	Gateway     packet.NodeID // accepting gateway when delivered
	HopCount    int64         // hop count reported at delivery
	Hops        []Hop
	Events      []Event // every event of this packet, in stream order
}

// Status summarizes the packet's fate for listings.
func (l *Life) Status() string {
	switch {
	case l.Delivered:
		return "delivered"
	case len(l.Events) == 0:
		return "unknown"
	default:
		for i := len(l.Events) - 1; i >= 0; i-- {
			if l.Events[i].Kind == PacketExpired {
				return "expired:" + l.Events[i].Detail
			}
		}
		return "in-flight"
	}
}

// PathString renders the hop sequence like "n7->n4->n1000000".
func (l *Life) PathString() string {
	if len(l.Hops) == 0 {
		return "-"
	}
	s := l.Hops[0].From.String()
	for _, h := range l.Hops {
		s += "->" + h.To.String()
	}
	return s
}

// Lifecycle reconstructs the journey of one packet from the stream. Hops are
// grouped by (sender, receiver, frame TTL): link-layer retransmissions are
// byte-identical clones sharing the TTL, while a frame that legitimately
// revisits a link (routing loop, rerouted resend) carries a different TTL
// and opens a fresh hop — the same disambiguation the ARQ receiver uses.
func Lifecycle(events []Event, key PacketKey) *Life {
	l := &Life{Key: key}
	openHop := func(node, peer packet.NodeID) *Hop {
		for i := len(l.Hops) - 1; i >= 0; i-- {
			h := &l.Hops[i]
			if h.From == node && h.To == peer && !h.Acked && !h.Failed {
				return h
			}
		}
		return nil
	}
	lastTTL := make(map[[2]packet.NodeID]int64)
	for _, ev := range events {
		if ev.Origin != key.Origin || ev.Seq != key.Seq {
			continue
		}
		l.Events = append(l.Events, ev)
		switch ev.Kind {
		case PacketGenerated:
			l.Generated, l.HasGen = ev.At, true
		case PacketDelivered:
			l.Delivered, l.DeliveredAt, l.Gateway, l.HopCount = true, ev.At, ev.Node, ev.Value
		case LinkTx:
			link := [2]packet.NodeID{ev.Node, ev.Peer}
			if h := openHop(ev.Node, ev.Peer); h != nil && lastTTL[link] == ev.Value {
				break // retransmission of the open hop; counted via LinkRetry
			}
			lastTTL[link] = ev.Value
			l.Hops = append(l.Hops, Hop{From: ev.Node, To: ev.Peer, Start: ev.At})
		case LinkRetry:
			if h := openHop(ev.Node, ev.Peer); h != nil {
				h.Retries++
			}
		case LinkAck:
			if h := openHop(ev.Node, ev.Peer); h != nil {
				h.End, h.Acked = ev.At, true
			}
		case LinkFailure:
			if h := openHop(ev.Node, ev.Peer); h != nil {
				h.End, h.Failed = ev.At, true
			}
		}
	}
	return l
}

// Table renders the packet's journey: the hop table with per-hop latency and
// retry counts, followed by every raw event as footnote-level rows.
func (l *Life) Table() *trace.Table {
	t := trace.NewTable(fmt.Sprintf("packet %s lifecycle", l.Key),
		"hop", "from", "to", "sent", "resolved", "latency_ms", "retries", "outcome")
	for i, h := range l.Hops {
		lat, res, outcome := "-", "-", "sent"
		if h.Acked {
			lat = fmt.Sprintf("%.3f", (h.End - h.Start).Millis())
			res = h.End.String()
			outcome = "acked"
		} else if h.Failed {
			res = h.End.String()
			outcome = "link-failure"
		}
		t.AddRow(i+1, h.From, h.To, h.Start, res, lat, h.Retries, outcome)
	}
	if l.HasGen {
		t.AddNote("generated at %s by %s", l.Generated, l.Key.Origin)
	}
	switch {
	case l.Delivered && l.HasGen:
		t.AddNote("delivered at %s to %s after %d hops (end-to-end %.3f ms, path %s)",
			l.DeliveredAt, l.Gateway, l.HopCount, (l.DeliveredAt - l.Generated).Millis(), l.PathString())
	case l.Delivered:
		t.AddNote("delivered at %s to %s after %d hops (path %s)",
			l.DeliveredAt, l.Gateway, l.HopCount, l.PathString())
	default:
		t.AddNote("fate: %s", l.Status())
	}
	return t
}

// Packets lists every packet identity present in the stream, ordered by
// origin then sequence number, with its reconstructed fate.
func Packets(events []Event) []*Life {
	keys := make(map[PacketKey]bool)
	for _, ev := range events {
		if ev.Origin != 0 {
			keys[PacketKey{ev.Origin, ev.Seq}] = true
		}
	}
	ordered := make([]PacketKey, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Origin != ordered[j].Origin {
			return ordered[i].Origin < ordered[j].Origin
		}
		return ordered[i].Seq < ordered[j].Seq
	})
	lives := make([]*Life, len(ordered))
	for i, k := range ordered {
		lives[i] = Lifecycle(events, k)
	}
	return lives
}

// DropTable breaks down every loss-flavored event by kind and reason.
func DropTable(events []Event) *trace.Table {
	type dropKey struct {
		kind   Kind
		detail string
	}
	counts := make(map[dropKey]uint64)
	for _, ev := range events {
		switch ev.Kind {
		case PacketExpired:
			n := uint64(1)
			if ev.Value > 1 {
				n = uint64(ev.Value)
			}
			counts[dropKey{ev.Kind, ev.Detail}] += n
		case QueueDrop, FrameLost, LinkFailure, AttackDrop:
			// AttackDrop gets its own rows (keyed by attack kind via Detail)
			// so attacker-swallowed packets are never mistaken for radio loss.
			counts[dropKey{ev.Kind, ev.Detail}]++
		}
	}
	keys := make([]dropKey, 0, len(counts))
	var total uint64
	for k, n := range counts {
		keys = append(keys, k)
		total += n
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].detail < keys[j].detail
	})
	t := trace.NewTable("drop breakdown", "kind", "reason", "count", "share")
	for _, k := range keys {
		reason := k.detail
		if reason == "" {
			reason = "-"
		}
		t.AddRow(k.kind, reason, counts[k], trace.Ratio(counts[k], total))
	}
	if total == 0 {
		t.AddNote("no drops in trace")
	}
	return t
}

// SummaryTable renders stream-wide totals per event kind plus the trace's
// virtual-time span.
func SummaryTable(events []Event) *trace.Table {
	var counts [numKinds]uint64
	var first, last sim.Time
	for i, ev := range events {
		if ev.Kind < numKinds {
			counts[ev.Kind]++
		}
		if i == 0 || ev.At < first {
			first = ev.At
		}
		if ev.At > last {
			last = ev.At
		}
	}
	t := trace.NewTable("trace summary", "event", "count")
	for k := Kind(0); k < numKinds; k++ {
		if counts[k] > 0 {
			t.AddRow(k, counts[k])
		}
	}
	t.AddNote("%d events spanning %s .. %s", len(events), first, last)
	return t
}

// Reroutes returns the reroute, fault and death events of the stream in
// order — the anchors for recovery-window analysis.
func Reroutes(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		switch ev.Kind {
		case Reroute, FaultInjected, AttackInjected, GatewayDeath, NodeDeath, NodeRecover:
			out = append(out, ev)
		}
	}
	return out
}

// ReplaySeries folds a recorded stream into a fresh Series sink, exactly as
// a live run with the same bucket width would have.
func ReplaySeries(events []Event, bucket sim.Duration) *Series {
	s := NewSeries(bucket)
	for _, ev := range events {
		s.Observe(ev)
	}
	return s
}
