package experiments

import (
	"fmt"

	"wmsn/internal/attack"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// E9AttackMatrix runs the eight network-layer attacks of §2.3/§6 against
// plain MLR and against SecMLR on the same field and reports, per cell, the
// delivery ratio of legitimate traffic, duplicate deliveries (replay
// damage), accepted forged readings (Sybil damage), and the victim's
// rejection/failover counters. The paper's claim is qualitative ("SecMLR can
// resist most of attacks"); this table is its quantitative shape.
func E9AttackMatrix(o Opts) []*trace.Table {
	attacks := []string{"none", "replay", "spoofed-routing (sinkhole)", "selective-forwarding",
		"hello-flood", "sybil", "wormhole", "ack-spoofing"}
	protos := []scenario.Protocol{scenario.MLR, scenario.SecMLR}
	tbl := trace.NewTable("E9: attack resistance, MLR vs SecMLR",
		"attack", "protocol", "delivery", "duplicates", "forged accepted", "rejected", "failovers")
	// Each (attack, protocol) cell is an independent run; fan the whole
	// matrix out and render in matrix order.
	type cell struct {
		res    scenario.Result
		forged uint64
	}
	cells := forEach(o, len(attacks)*len(protos), func(i int) cell {
		res, forged := attackRun(o, attacks[i/len(protos)], protos[i%len(protos)])
		return cell{res, forged}
	})
	for i, c := range cells {
		m := c.res.Metrics
		tbl.AddRow(attacks[i/len(protos)], string(protos[i%len(protos)]), m.DeliveryRatio(),
			m.Duplicates, c.forged, m.RejectedMAC+m.RejectedReplay, m.Failovers)
	}
	tbl.AddNote("ack-spoofing degenerates to a blackhole under MLR (no ACKs exist to forge)")
	return []*trace.Table{tbl}
}

// sybilIdentityBase is the forged-identity range used by the Sybil cell.
const sybilIdentityBase = 7000

// attackRun executes one (attack, protocol) cell and returns the result plus
// the count of forged readings accepted at gateways.
func attackRun(o Opts, atk string, proto scenario.Protocol) (scenario.Result, uint64) {
	n := pick(o, 80, 40)
	side := pick(o, 180.0, 140.0)
	horizon := pick(o, 150*sim.Second, 80*sim.Second)
	cfg := scenario.Config{
		Seed: 900, Protocol: proto, NumSensors: n, Side: side,
		SensorRange: 40, NumGateways: 2,
		// Static two-gateway deployment: attack effects are cleaner without
		// rotation, and every attack below works against a static round.
		Places:         geom.PlaceGrid(2, geom.Square(side)),
		Schedule:       [][]int{{0, 1}},
		RoundLen:       horizon,
		ReportInterval: 10 * sim.Second,
		RunFor:         horizon,
		SensorBattery:  1e6,
	}
	switch atk {
	case "none":
	case "replay":
		cfg.Mutate = func(net *scenario.Net) {
			for i := 0; i < 3; i++ {
				id := packet.NodeID(6000 + i)
				pos := net.Region.RandomPoint(net.World.Kernel().Rand())
				net.World.AddSensor(id, pos, 40, 0, attack.NewReplayer(3*sim.Second))
			}
		}
	case "spoofed-routing (sinkhole)":
		cfg.Mutate = func(net *scenario.Net) {
			for i := 0; i < 3; i++ {
				id := packet.NodeID(6000 + i)
				pos := net.Region.RandomPoint(net.World.Kernel().Rand())
				net.World.AddSensor(id, pos, 40, 0,
					&attack.Sinkhole{FakeGateway: scenario.GatewayID(i % 2), Place: i % 2, TTL: 16})
			}
		}
	case "selective-forwarding":
		// Compromise every 8th legitimate sensor into a grayhole.
		cfg.StackWrapper = func(id packet.NodeID, st node.Stack) node.Stack {
			if id%8 == 0 {
				return &attack.SelectiveForwarder{Inner: st, DropProb: 1}
			}
			return st
		}
	case "hello-flood":
		cfg.Mutate = func(net *scenario.Net) {
			net.World.AddSensor(6000, net.Region.Center(), 40, 0,
				&attack.HelloFlood{Gateway: scenario.GatewayID(1), Place: 0, PrevPlace: 1,
					Range: side * 2, Interval: 5 * sim.Second, TTL: 16})
		}
	case "sybil":
		cfg.Mutate = func(net *scenario.Net) {
			ids := make([]packet.NodeID, 5)
			for i := range ids {
				ids[i] = packet.NodeID(sybilIdentityBase + i)
			}
			net.World.AddSensor(6000, net.Region.RandomPoint(net.World.Kernel().Rand()), 40, 0,
				&attack.Sybil{Identities: ids, Gateway: scenario.GatewayID(0), Place: 0,
					NextHop: packet.Broadcast, Interval: 5 * sim.Second, TTL: 16})
		}
	case "wormhole":
		cfg.Mutate = func(net *scenario.Net) {
			_, endA, endB := attack.NewWormhole()
			net.World.AddSensor(6000, geom.Point{X: side * 0.1, Y: side * 0.1}, 40, 0, endA)
			net.World.AddSensor(6001, geom.Point{X: side * 0.9, Y: side * 0.9}, 40, 0, endB)
		}
	case "ack-spoofing":
		cfg.StackWrapper = func(id packet.NodeID, st node.Stack) node.Stack {
			if id%8 == 0 {
				return &attack.AckSpoofer{Inner: st}
			}
			return st
		}
	default:
		panic(fmt.Sprintf("unknown attack %q", atk))
	}
	res := scenario.Run(cfg)
	var forged uint64
	for i := 0; i < 5; i++ {
		forged += res.Metrics.DeliveredFrom(packet.NodeID(sybilIdentityBase + i))
	}
	return res, forged
}

// E10SecurityOverhead quantifies what SecMLR's protection costs relative to
// plain MLR on an identical rotating-gateway workload: control traffic,
// bytes on the air, per-sensor energy and end-to-end latency. §6.2's claim
// is that the scheme works "in an energy-efficient way" by pushing the heavy
// work to gateways; the sensors' overhead is the MAC/counters bytes and the
// loss of the intermediate-answer shortcut.
func E10SecurityOverhead(o Opts) []*trace.Table {
	n := pick(o, 100, 50)
	side := pick(o, 200.0, 140.0)
	horizon := pick(o, 300*sim.Second, 120*sim.Second)
	seeds := o.seeds(3)
	tbl := trace.NewTable("E10: SecMLR overhead vs plain MLR (3 gateways over 6 places, rotating)",
		"protocol", "delivery", "control pkts", "data pkts", "bytes on air", "sensor energy mJ", "latency ms")
	protos := []scenario.Protocol{scenario.MLR, scenario.SecMLR}
	var cfgs []scenario.Config
	for _, proto := range protos {
		for s := 0; s < seeds; s++ {
			cfgs = append(cfgs, scenario.Config{
				Seed: int64(1000 + s), Protocol: proto, NumSensors: n, Side: side,
				SensorRange: 40, NumGateways: 3,
				RoundLen: horizon / 5, Rounds: 8,
				ReportInterval: 10 * sim.Second, RunFor: horizon,
				SensorBattery: 1e6,
			})
		}
	}
	results := runConfigs(o, cfgs)
	for pi, proto := range protos {
		var ratio, ctrl, data, bytes, eng, lat float64
		for s := 0; s < seeds; s++ {
			res := results[pi*seeds+s]
			ratio += res.Metrics.DeliveryRatio()
			ctrl += float64(res.Metrics.ControlPackets())
			data += float64(res.Metrics.DataSent)
			bytes += float64(res.Radio.BytesOnAir)
			eng += res.Energy.Mean * 1000
			lat += res.Metrics.MeanLatency().Millis()
		}
		f := float64(seeds)
		tbl.AddRow(string(proto), ratio/f, ctrl/f, data/f, bytes/f, eng/f, lat/f)
	}
	tbl.AddNote("%d sensors, %d seeds; SecMLR adds per-gateway MAC blocks, TESLA disclosures and end-to-end ACKs", n, seeds)
	return []*trace.Table{tbl}
}
