package baseline

import (
	"testing"

	"wmsn/internal/core"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// diffusionLine builds a line of diffusion sensors with the sink at the
// right end.
func diffusionLine(t testing.TB, n int) (*node.World, *core.Metrics, map[packet.NodeID]*Diffusion, *DiffusionSink) {
	t.Helper()
	w := node.NewWorld(node.Config{Seed: 6})
	m := core.NewMetrics()
	stacks := map[packet.NodeID]*Diffusion{}
	for i, pos := range line(n, 0, 10) {
		id := packet.NodeID(i + 1)
		st := NewDiffusion(m, 32)
		stacks[id] = st
		w.AddSensor(id, pos, 12, 0, st)
	}
	sink := NewDiffusionSink(m, 32)
	w.AddGateway(1000, geom.Point{X: float64(n) * 10}, 12, 100, sink)
	return w, m, stacks, sink
}

func TestDiffusionInterestPropagates(t *testing.T) {
	w, m, stacks, sink := diffusionLine(t, 6)
	sink.Subscribe(9)
	w.Run(5 * sim.Second)
	for id, st := range stacks {
		if !st.HasGradient(9) {
			t.Fatalf("node %v never got the interest", id)
		}
	}
	if m.RReqSent == 0 {
		t.Fatal("no interest flood traffic")
	}
}

func TestDiffusionExploreReinforceDeliver(t *testing.T) {
	w, m, stacks, sink := diffusionLine(t, 6)
	sink.Subscribe(9)
	w.Run(5 * sim.Second)

	// First (exploratory) reading travels the gradients and triggers
	// reinforcement.
	stacks[1].OriginateData([]byte("sighting"))
	w.Run(w.Kernel().Now() + 10*sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("exploratory delivery failed: %d", m.Delivered)
	}
	// After reinforcement, the path back to the source is reinforced.
	if !stacks[1].ReinforcedPath(9) {
		t.Fatal("source never learned the reinforced path")
	}
	explBefore := sumExploratory(stacks)
	// Subsequent readings unicast along the reinforced path only.
	stacks[1].OriginateData([]byte("sighting-2"))
	stacks[1].OriginateData([]byte("sighting-3"))
	w.Run(w.Kernel().Now() + 10*sim.Second)
	if m.Delivered != 3 {
		t.Fatalf("reinforced delivery failed: %d", m.Delivered)
	}
	if got := sumExploratory(stacks); got != explBefore {
		t.Fatalf("exploratory traffic continued after reinforcement: %d -> %d", explBefore, got)
	}
	if sumReinforced(stacks) == 0 {
		t.Fatal("no reinforced-path transmissions recorded")
	}
}

func sumExploratory(stacks map[packet.NodeID]*Diffusion) uint64 {
	var total uint64
	for _, st := range stacks {
		total += st.Exploratory
	}
	return total
}

func sumReinforced(stacks map[packet.NodeID]*Diffusion) uint64 {
	var total uint64
	for _, st := range stacks {
		total += st.Reinforced
	}
	return total
}

func TestDiffusionNoInterestNoDelivery(t *testing.T) {
	w, m, stacks, _ := diffusionLine(t, 4)
	// No Subscribe: sources have nowhere to send.
	stacks[1].OriginateData([]byte("x"))
	w.Run(5 * sim.Second)
	if m.Delivered != 0 {
		t.Fatal("delivered without an interest")
	}
	if m.DroppedNoRoute != 1 {
		t.Fatalf("DroppedNoRoute = %d, want 1", m.DroppedNoRoute)
	}
}

func TestDiffusionMultiPathExploreOnGrid(t *testing.T) {
	// A 4x4 grid gives multiple disjoint paths: exploratory data should
	// reach the sink exactly once per reading (duplicate suppression), and
	// the reinforced phase must cut per-reading transmissions.
	w := node.NewWorld(node.Config{Seed: 7})
	m := core.NewMetrics()
	stacks := map[packet.NodeID]*Diffusion{}
	id := packet.NodeID(1)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			st := NewDiffusion(m, 32)
			stacks[id] = st
			w.AddSensor(id, geom.Point{X: float64(x) * 10, Y: float64(y) * 10}, 12, 0, st)
			id++
		}
	}
	sink := NewDiffusionSink(m, 32)
	w.AddGateway(1000, geom.Point{X: 40, Y: 30}, 12, 100, sink)
	sink.Subscribe(1)
	w.Run(5 * sim.Second)

	// Source at the far corner.
	stacks[1].OriginateData([]byte("a"))
	w.Run(w.Kernel().Now() + 10*sim.Second)
	if m.Delivered != 1 || m.Duplicates != 0 {
		t.Fatalf("delivered=%d dup=%d (suppression must dedup at the metrics layer too)",
			m.Delivered, m.Duplicates)
	}
	exploCost := m.DataSent
	stacks[1].OriginateData([]byte("b"))
	w.Run(w.Kernel().Now() + 10*sim.Second)
	reinforcedCost := m.DataSent - exploCost
	if m.Delivered != 2 {
		t.Fatalf("delivered=%d", m.Delivered)
	}
	if reinforcedCost >= exploCost {
		t.Fatalf("reinforced phase (%d tx) not cheaper than exploratory (%d tx)",
			reinforcedCost, exploCost)
	}
}
