package core

import (
	"testing"
	"testing/quick"

	"wmsn/internal/packet"
)

func TestCompressPath(t *testing.T) {
	cases := []struct {
		in, want []packet.NodeID
	}{
		{nil, []packet.NodeID{}},
		{[]packet.NodeID{1}, []packet.NodeID{1}},
		{[]packet.NodeID{1, 2, 3}, []packet.NodeID{1, 2, 3}},
		// Simple loop: A B C B D -> A B D.
		{[]packet.NodeID{1, 2, 3, 2, 4}, []packet.NodeID{1, 2, 4}},
		// Loop back to the head: A B C A D -> A D.
		{[]packet.NodeID{1, 2, 3, 1, 4}, []packet.NodeID{1, 4}},
		// Node revisited twice: A B C B C D -> A B C D.
		{[]packet.NodeID{1, 2, 3, 2, 3, 4}, []packet.NodeID{1, 2, 3, 4}},
		// Immediate duplicate: A A B -> A B.
		{[]packet.NodeID{1, 1, 2}, []packet.NodeID{1, 2}},
	}
	for _, c := range cases {
		got := compressPath(c.in)
		if len(got) != len(c.want) {
			t.Errorf("compressPath(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("compressPath(%v) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

// Property: compressed paths have no duplicates, preserve the endpoints,
// and every consecutive pair in the output was consecutive somewhere in
// the input walk (so physical adjacency is preserved).
func TestQuickCompressPath(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		walk := make([]packet.NodeID, len(raw))
		for i, r := range raw {
			walk[i] = packet.NodeID(r % 16) // small alphabet forces loops
		}
		// Make it a valid walk for the adjacency check by definition: any
		// consecutive input pair is an "edge".
		edges := map[[2]packet.NodeID]bool{}
		for i := 0; i+1 < len(walk); i++ {
			edges[[2]packet.NodeID{walk[i], walk[i+1]}] = true
		}
		out := compressPath(walk)
		seen := map[packet.NodeID]bool{}
		for _, id := range out {
			if seen[id] {
				return false // duplicate survived
			}
			seen[id] = true
		}
		if out[0] != walk[0] || out[len(out)-1] != walk[len(walk)-1] {
			return false // endpoints changed
		}
		for i := 0; i+1 < len(out); i++ {
			if out[i] != out[i+1] && !edges[[2]packet.NodeID{out[i], out[i+1]}] {
				return false // invented edge
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsUndeliveredAndDeliveredFrom(t *testing.T) {
	m := NewMetrics()
	m.RecordGenerated(1, 1, 0)
	m.RecordGenerated(1, 2, 0)
	m.RecordGenerated(2, 1, 0)
	m.RecordDelivered(1, 1, 1000, 2, 100)
	und := m.Undelivered()
	if len(und) != 2 {
		t.Fatalf("Undelivered = %v, want 2 entries", und)
	}
	if m.DeliveredFrom(1) != 1 || m.DeliveredFrom(2) != 0 || m.DeliveredFrom(99) != 0 {
		t.Fatalf("DeliveredFrom: %d %d", m.DeliveredFrom(1), m.DeliveredFrom(2))
	}
	m.RReqSent, m.RResSent, m.NotifySent, m.AckSent = 1, 2, 3, 4
	if m.ControlPackets() != 10 {
		t.Fatalf("ControlPackets = %d", m.ControlPackets())
	}
}

func TestWireHelpers(t *testing.T) {
	b := EncodePlacePayload(7, []byte("xy"))
	place, rest, ok := DecodePlacePayload(b)
	if !ok || place != 7 || string(rest) != "xy" {
		t.Fatalf("place payload: %d %q %v", place, rest, ok)
	}
	nb := EncodeNotifyPayload(3, 1, 9)
	np, pp, r, ok := DecodeNotifyPayload(nb)
	if !ok || np != 3 || pp != 1 || r != 9 {
		t.Fatalf("notify payload: %d %d %d %v", np, pp, r, ok)
	}
	if _, _, _, ok := DecodeNotifyPayload(nil); ok {
		t.Fatal("decoded empty notify")
	}
	if _, _, _, ok := DecodeNotifyPayload(marshalOverloadNotify(1, 1)); ok {
		t.Fatal("decoded overload as move")
	}
}

func TestGatewayPlaceAccessors(t *testing.T) {
	m := NewMetrics()
	p := DefaultParams()
	g := NewMLRGateway(p, m)
	if g.Place() != -1 {
		t.Fatalf("fresh MLR gateway place = %d", g.Place())
	}
	sg := NewSecMLRGateway(p, m, &GatewayKeys{})
	if sg.Place() != -1 {
		t.Fatalf("fresh SecMLR gateway place = %d", sg.Place())
	}
}

func TestSecMLRSensorAccessors(t *testing.T) {
	sKeys, _ := ProvisionKeys([]byte("m"), []packet.NodeID{1}, []packet.NodeID{1000}, 4)
	s := NewSecMLRSensor(DefaultParams(), NewMetrics(), sKeys[1])
	if s.ForwardingTableSize() != 0 {
		t.Fatal("fresh sensor has forwarding entries")
	}
	if s.missingVerified() != 0 {
		t.Fatal("no active places yet")
	}
	if s.BestRoute() != nil {
		t.Fatal("fresh sensor has a best route")
	}
	if len(s.ActivePlaces()) != 0 {
		t.Fatal("fresh sensor has active places")
	}
}
