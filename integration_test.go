package wmsn_test

import (
	"testing"

	"wmsn"
)

// TestThreeLayerEndToEnd exercises the full Fig. 1 architecture in one
// test: sensor fields (802.15.4) -> WMG gateways -> mesh backbone (802.11)
// with a WMR relay -> base station, including mesh self-healing after the
// relay fails. It is the examples/building scenario in assertable form.
func TestThreeLayerEndToEnd(t *testing.T) {
	w := wmsn.NewWorld(99)
	metrics := wmsn.NewMetrics()
	params := wmsn.DefaultParams()

	// Two disjoint sensor clusters, one gateway each.
	type originator interface{ OriginateData([]byte) }
	var sensors []originator
	addCluster := func(base wmsn.NodeID, yOff float64) {
		for i := 0; i < 12; i++ {
			st := wmsn.NewSPRSensor(params, metrics)
			w.AddSensor(base+wmsn.NodeID(i),
				wmsn.Point{X: float64(i%4) * 20, Y: yOff + float64(i/4)*15}, 35, 0, st)
			sensors = append(sensors, st)
		}
	}
	addCluster(100, 0)
	addCluster(200, 200) // far outside sensor radio range of cluster 1

	gw1Stack := wmsn.NewSPRGateway(params, metrics)
	gw2Stack := wmsn.NewSPRGateway(params, metrics)
	gw1 := w.AddGateway(1001, wmsn.Point{X: 30, Y: 15}, 35, 130, gw1Stack)
	gw2 := w.AddGateway(1002, wmsn.Point{X: 30, Y: 215}, 35, 130, gw2Stack)
	relayA := w.AddMeshRouter(1500, wmsn.Point{X: 100, Y: 115}, 130)
	relayB := w.AddMeshRouter(1501, wmsn.Point{X: 105, Y: 110}, 130)
	bs := w.AddBaseStation(2000, wmsn.Point{X: 180, Y: 115}, 200)

	backbone := wmsn.NewMeshBackbone(wmsn.DefaultMeshConfig(), gw1, gw2, relayA, relayB, bs)
	atBMS := map[wmsn.NodeID]int{}
	backbone.Router(2000).OnDeliver = func(p *wmsn.Packet) { atBMS[p.Origin]++ }
	gw1Stack.Uplink = func(origin wmsn.NodeID, seq uint32, payload []byte) {
		backbone.Router(1001).SendTo(2000, origin, seq, payload)
	}
	gw2Stack.Uplink = func(origin wmsn.NodeID, seq uint32, payload []byte) {
		backbone.Router(1002).SendTo(2000, origin, seq, payload)
	}

	// Let the mesh converge, then report twice.
	w.Run(10 * wmsn.Second)
	for _, s := range sensors {
		s.OriginateData([]byte("r1"))
	}
	w.Run(20 * wmsn.Second)
	before := len(atBMS)
	if before != 24 {
		t.Fatalf("first wave reached BMS from %d sensors, want 24", before)
	}

	// Kill relay A; relay B must take over.
	relayA.Fail()
	w.Run(40 * wmsn.Second) // hello timeout + reconvergence
	for _, s := range sensors {
		s.OriginateData([]byte("r2"))
	}
	w.Run(60 * wmsn.Second)
	total := 0
	for _, c := range atBMS {
		total += c
	}
	if total < 48 {
		t.Fatalf("after self-healing, BMS got %d readings, want 48", total)
	}
	if metrics.DeliveryRatio() < 1 {
		t.Fatalf("sensor-layer delivery = %v", metrics.DeliveryRatio())
	}
}

// TestProtocolsUnderImperfectRadio runs every routing protocol over a lossy,
// collision-prone medium and checks graceful degradation rather than
// collapse: the retry/failover machinery must keep a usable fraction of the
// traffic flowing.
func TestProtocolsUnderImperfectRadio(t *testing.T) {
	for _, proto := range []wmsn.Protocol{wmsn.SPR, wmsn.MLR, wmsn.SecMLR} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			t.Parallel()
			params := wmsn.DefaultParams()
			params.FloodJitter = 20 * wmsn.Millisecond // de-synchronize broadcast storms
			res := wmsn.Run(wmsn.Config{
				Seed: 5, Protocol: proto,
				NumSensors: 60, Side: 150, SensorRange: 40, NumGateways: 2,
				RoundLen: 30 * wmsn.Second, ReportInterval: 10 * wmsn.Second,
				RunFor: 120 * wmsn.Second, SensorBattery: 1e6,
				LossRate: 0.05, Collisions: true,
				Params: &params,
			})
			if res.Metrics.Generated == 0 {
				t.Fatal("no traffic")
			}
			if r := res.Metrics.DeliveryRatio(); r < 0.5 {
				t.Fatalf("%s collapsed under 5%% loss + collisions: delivery %v", proto, r)
			}
			if res.Radio.Lost == 0 {
				t.Fatal("loss model never fired; test misconfigured")
			}
		})
	}
}

// TestDeterministicFullStack pins determinism across the entire stack: two
// identical SecMLR runs with rotation, attacks and failures produce
// bit-identical metrics.
func TestDeterministicFullStack(t *testing.T) {
	run := func() (uint64, uint64, uint64, uint64) {
		net := wmsn.Build(wmsn.Config{
			Seed: 31, Protocol: wmsn.SecMLR,
			NumSensors: 50, Side: 150, SensorRange: 40, NumGateways: 2,
			RoundLen: 20 * wmsn.Second, ReportInterval: 10 * wmsn.Second,
			RunFor: 90 * wmsn.Second, SensorBattery: 1e6,
			// The crash schedule lives on the fault plan; Mutate keeps
			// only what a plan cannot express (the replayer stack).
			Faults: wmsn.NewFaultPlan().CrashAt(45*wmsn.Second, 4),
			Mutate: func(n *wmsn.Net) {
				n.World.AddSensor(9000, wmsn.Point{X: 75, Y: 75}, 40, 0,
					wmsn.NewReplayer(2*wmsn.Second))
			},
		})
		res := net.RunTraffic()
		return res.Metrics.Generated, res.Metrics.Delivered,
			res.Metrics.RejectedReplay, res.Metrics.Failovers
	}
	g1, d1, r1, f1 := run()
	g2, d2, r2, f2 := run()
	if g1 != g2 || d1 != d2 || r1 != r2 || f1 != f2 {
		t.Fatalf("non-deterministic full stack: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			g1, d1, r1, f1, g2, d2, r2, f2)
	}
}

// TestLifetimeOrderingHolds pins the headline E4 result at reduced scale:
// multi-gateway SPR outlives single-sink SPR, and MLR outlives both.
func TestLifetimeOrderingHolds(t *testing.T) {
	lifetime := func(proto wmsn.Protocol, gws int) float64 {
		res := wmsn.Run(wmsn.Config{
			Seed: 3, Protocol: proto,
			NumSensors: 60, Side: 200, SensorRange: 45, NumGateways: gws,
			ReportInterval: 5 * wmsn.Second, RoundLen: 30 * wmsn.Second, Rounds: 64,
			EnergyModel: wmsn.DefaultFirstOrderEnergy, SensorBattery: 0.15,
			RunFor: wmsn.Hour, StopAtFirstDeath: true,
		})
		if res.FirstDeath >= 0 {
			return res.FirstDeath.Seconds()
		}
		return res.Elapsed.Seconds()
	}
	single := lifetime(wmsn.SPR, 1)
	multi := lifetime(wmsn.SPR, 3)
	mlr := lifetime(wmsn.MLR, 3)
	if !(single < multi) {
		t.Errorf("multi-gateway did not outlive single sink: %v vs %v", multi, single)
	}
	if !(multi < mlr) {
		t.Errorf("MLR rotation did not outlive static SPR: %v vs %v", mlr, multi)
	}
}
