package core

import (
	"encoding/binary"

	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
	"wmsn/internal/wsncrypto"
)

// SecMLR (§6.2) secures MLR's routing query, response, update and data
// forwarding phases:
//
//   - RREQ (§6.2.1): flooded with one authentication block per gateway
//     ({req}<Kij,C>, MAC(Kij, C|{req})), so each gateway can verify origin
//     authenticity and freshness. Intermediate sensors cannot answer on the
//     gateway's behalf — they hold no Kij — so every query reaches real
//     gateways.
//   - RRES (§6.2.2): the gateway collects alternative paths for a timeout,
//     answers with the shortest, encrypts the response body and MACs it.
//     Nodes forwarding the response record their path suffix, building the
//     per-place forwarding state.
//   - Routing update (§6.2.3): gateway movement NOTIFYs are authenticated
//     with µTESLA — MAC now, key disclosed later — so a forged "gateway
//     moved" broadcast is never applied.
//   - Data forwarding (§6.2.4): DATA carries {data}<Kij,C> and its MAC; the
//     IS/IR fields (packet From/To) are rewritten hop by hop from the
//     routing tables. The gateway MAC-checks, counter-checks and then ACKs;
//     a source missing its ACK fails over to another route (the paper's
//     multi-entry fault tolerance, §8).

const (
	notifyAnnounce byte = 0
	notifyDisclose byte = 1
	reqMarker      byte = 0x52 // 'R'; the encrypted req body
)

// rreqBlock is one per-gateway authentication block inside a SecMLR RREQ.
type rreqBlock struct {
	Gateway packet.NodeID
	Counter uint64
	Cipher  byte // {req}<Kij,C> — a single marker byte under CTR
	MAC     []byte
}

const rreqBlockSize = 4 + 8 + 1 + wsncrypto.MACSize

func marshalRReqBlocks(blocks []rreqBlock) []byte {
	buf := make([]byte, 1, 1+len(blocks)*rreqBlockSize)
	buf[0] = byte(len(blocks))
	for _, b := range blocks {
		buf = binary.BigEndian.AppendUint32(buf, uint32(b.Gateway))
		buf = binary.BigEndian.AppendUint64(buf, b.Counter)
		buf = append(buf, b.Cipher)
		buf = append(buf, b.MAC...)
	}
	return buf
}

func parseRReqBlocks(b []byte) ([]rreqBlock, bool) {
	if len(b) < 1 {
		return nil, false
	}
	n := int(b[0])
	if len(b) < 1+n*rreqBlockSize {
		return nil, false
	}
	blocks := make([]rreqBlock, n)
	off := 1
	for i := range blocks {
		blocks[i].Gateway = packet.NodeID(binary.BigEndian.Uint32(b[off:]))
		blocks[i].Counter = binary.BigEndian.Uint64(b[off+4:])
		blocks[i].Cipher = b[off+12]
		blocks[i].MAC = append([]byte(nil), b[off+13:off+13+wsncrypto.MACSize]...)
		off += rreqBlockSize
	}
	return blocks, true
}

// resBody is the encrypted RRES content: the place and round, bound to the
// clear-text place field so on-path tampering is detectable at the source.
func resBody(place, round int) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint16(buf, uint16(place))
	binary.BigEndian.PutUint16(buf[2:], uint16(round))
	return buf
}

func parseResBody(b []byte) (place, round int, ok bool) {
	if len(b) < 4 {
		return 0, 0, false
	}
	return int(binary.BigEndian.Uint16(b)), int(binary.BigEndian.Uint16(b[2:])), true
}

// SecMLRGateway is the gateway (WMG) side of SecMLR. Heavyweight work —
// MAC verification over all collected paths, path selection, response
// encryption — runs here, on the resource-rich node (§6.1 "heavyweight
// computations should be performed by gateways").
type SecMLRGateway struct {
	Params  Params
	Metrics metrics.Sink
	Keys    *GatewayKeys
	Uplink  func(origin packet.NodeID, seq uint32, payload []byte)

	dev   *node.Device
	seen  *packet.Dedupe
	place int
	round int
	seq   uint32

	guards map[packet.NodeID]*wsncrypto.ReplayGuard
	txCtr  map[packet.NodeID]uint64
	// collecting accumulates alternative RREQ paths per (origin, seq)
	// during the GatewayWait window.
	collecting map[packet.DedupeKey]*pathCollection
	// paths remembers the chosen path per sensor, reversed for ACKs.
	paths map[packet.NodeID][]packet.NodeID
}

type pathCollection struct {
	counter uint64
	paths   [][]packet.NodeID
}

// NewSecMLRGateway creates a SecMLR gateway stack with its keying material.
func NewSecMLRGateway(p Params, m metrics.Sink, keys *GatewayKeys) *SecMLRGateway {
	return &SecMLRGateway{
		Params: p, Metrics: m, Keys: keys,
		place:      -1,
		guards:     make(map[packet.NodeID]*wsncrypto.ReplayGuard),
		txCtr:      make(map[packet.NodeID]uint64),
		collecting: make(map[packet.DedupeKey]*pathCollection),
		paths:      make(map[packet.NodeID][]packet.NodeID),
	}
}

// Start implements node.Stack.
func (g *SecMLRGateway) Start(dev *node.Device) {
	g.dev = dev
	g.seen = packet.NewDedupe(1 << 14)
	enableARQ(dev, g.Params, g.Metrics)
}

// Place returns the current feasible-place index (-1 before deployment).
func (g *SecMLRGateway) Place() int { return g.place }

func (g *SecMLRGateway) guard(sensor packet.NodeID) *wsncrypto.ReplayGuard {
	gd, ok := g.guards[sensor]
	if !ok {
		gd = &wsncrypto.ReplayGuard{}
		g.guards[sensor] = gd
	}
	return gd
}

// SetPlace implements PlacedGateway: announce the move with a µTESLA-
// authenticated NOTIFY, disclosing the interval key after DiscloseDelay.
func (g *SecMLRGateway) SetPlace(place, round int, moved bool) {
	prev := g.place
	g.place = place
	g.round = round
	if !moved {
		return
	}
	interval := round + 1
	if interval > g.Keys.Tesla.Intervals() {
		interval = g.Keys.Tesla.Intervals() // chain exhausted; reuse last
	}
	prevField := uint16(NoPlace)
	if prev >= 0 {
		prevField = uint16(prev)
	}
	n := mlrNotify{NewPlace: uint16(place), PrevPlace: prevField, Round: uint16(round)}
	body := n.marshal()
	tag := g.Keys.Tesla.Authenticate(interval, body)

	payload := make([]byte, 0, 1+len(body)+2+len(tag))
	payload = append(payload, notifyAnnounce)
	payload = append(payload, body...)
	payload = binary.BigEndian.AppendUint16(payload, uint16(interval))
	payload = append(payload, tag...)
	g.floodNotify(payload)

	key := g.Keys.Tesla.KeyAt(interval)
	g.dev.After(g.Params.DiscloseDelay, func() {
		disc := make([]byte, 0, 1+2+len(key))
		disc = append(disc, notifyDisclose)
		disc = binary.BigEndian.AppendUint16(disc, uint16(interval))
		disc = append(disc, key...)
		g.floodNotify(disc)
	})
}

func (g *SecMLRGateway) floodNotify(payload []byte) {
	g.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindNotify,
		From:    g.dev.ID(),
		To:      packet.Broadcast,
		Origin:  g.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     g.seq,
		TTL:     g.Params.TTL,
		Payload: payload,
	}
	g.seen.Check(g.dev.ID(), g.seq)
	if g.dev.Send(pkt) {
		g.Metrics.Inc(metrics.NotifySent)
	}
}

// HandleMessage implements node.Stack.
func (g *SecMLRGateway) HandleMessage(pkt *packet.Packet) {
	if g.dev == nil {
		return // not attached to a device yet
	}
	switch pkt.Kind {
	case packet.KindRReq:
		g.handleRReq(pkt)
	case packet.KindData:
		g.handleData(pkt)
	}
}

func (g *SecMLRGateway) handleRReq(pkt *packet.Packet) {
	if g.place < 0 {
		return
	}
	blocks, ok := parseRReqBlocks(pkt.Payload)
	if !ok {
		return
	}
	var mine *rreqBlock
	for i := range blocks {
		if blocks[i].Gateway == g.dev.ID() {
			mine = &blocks[i]
			break
		}
	}
	if mine == nil {
		return
	}
	key, known := g.Keys.Lookup(pkt.Origin)
	if !known {
		g.Metrics.Inc(metrics.RejectedMAC) // unknown (e.g. Sybil) or revoked identity
		return
	}
	// Verify (1) origin authenticity via the MAC ...
	if !wsncrypto.Verify(key, mine.Counter, []byte{mine.Cipher}, mine.MAC) {
		g.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	path := pkt.AppendHop(g.dev.ID())
	k := packet.DedupeKey{Origin: pkt.Origin, Seq: pkt.Seq}
	if col, collecting := g.collecting[k]; collecting {
		// Another copy of an in-flight query: keep the alternative path.
		if col.counter == mine.Counter {
			col.paths = append(col.paths, path)
		}
		return
	}
	// ... and (2) freshness via the incremental counter (§6.2.2).
	if !g.guard(pkt.Origin).Accept(mine.Counter) {
		g.Metrics.Inc(metrics.RejectedReplay)
		return
	}
	col := &pathCollection{counter: mine.Counter, paths: [][]packet.NodeID{path}}
	g.collecting[k] = col
	origin := pkt.Origin
	seq := pkt.Seq
	g.dev.After(g.Params.GatewayWait, func() { g.answer(origin, seq) })
}

// answer closes the collection window and responds with the shortest path.
func (g *SecMLRGateway) answer(origin packet.NodeID, seq uint32) {
	k := packet.DedupeKey{Origin: origin, Seq: seq}
	col, ok := g.collecting[k]
	if !ok || g.place < 0 {
		return
	}
	delete(g.collecting, k)
	best := col.paths[0]
	for _, p := range col.paths[1:] {
		if len(p) < len(best) {
			best = p
		}
	}
	g.paths[origin] = best

	key := g.Keys.Sensor[origin]
	g.txCtr[origin]++
	ctr := g.txCtr[origin]
	cipher := wsncrypto.Encrypt(key, ctr, resBody(g.place, g.round))
	res := &packet.Packet{
		Kind:    packet.KindRRes,
		From:    g.dev.ID(),
		To:      best[len(best)-2],
		Origin:  g.dev.ID(),
		Target:  origin,
		Seq:     seq,
		TTL:     g.Params.TTL,
		Path:    best,
		Payload: placePayload(g.place, nil),
		Sec: &packet.SecEnvelope{
			Counter: ctr,
			Cipher:  cipher,
			MAC:     wsncrypto.Sum(key, ctr, cipher),
		},
	}
	if g.dev.Send(res) {
		g.Metrics.Inc(metrics.RResSent)
	}
}

func (g *SecMLRGateway) handleData(pkt *packet.Packet) {
	if pkt.Target != g.dev.ID() {
		return
	}
	if pkt.Sec == nil {
		g.Metrics.Inc(metrics.RejectedMAC) // unprotected data (e.g. Sybil injection)
		return
	}
	_, _, ok := parsePlacePayload(pkt.Payload)
	if !ok {
		return
	}
	key, known := g.Keys.Lookup(pkt.Origin)
	if !known {
		g.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	if !wsncrypto.Verify(key, pkt.Sec.Counter, pkt.Sec.Cipher, pkt.Sec.MAC) {
		g.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	if !g.guard(pkt.Origin).Accept(pkt.Sec.Counter) {
		g.Metrics.Inc(metrics.RejectedReplay)
		return
	}
	body := wsncrypto.Decrypt(key, pkt.Sec.Counter, pkt.Sec.Cipher)
	g.Metrics.RecordDelivered(pkt.Origin, pkt.Seq, g.dev.ID(), int(pkt.Hops)+1, g.dev.Now())
	if g.Uplink != nil {
		g.Uplink(pkt.Origin, pkt.Seq, body)
	}
	g.sendAck(pkt.Origin, pkt.Seq)
}

// SendToSensor source-routes an encrypted, authenticated downstream payload
// to a sensor the gateway holds a discovery path for (§6.2.4 downstream
// direction). The sensor verifies the MAC and counter before delivery.
func (g *SecMLRGateway) SendToSensor(sensor packet.NodeID, payload []byte) bool {
	fwd, ok := g.paths[sensor]
	if !ok || len(fwd) < 2 || g.dev == nil || !g.dev.Alive() {
		return false
	}
	key, known := g.Keys.Sensor[sensor]
	if !known {
		return false
	}
	rev := make([]packet.NodeID, len(fwd))
	for i, id := range fwd {
		rev[len(fwd)-1-i] = id
	}
	g.txCtr[sensor]++
	ctr := g.txCtr[sensor]
	cipher := wsncrypto.Encrypt(key, ctr, payload)
	g.seq++
	pkt := &packet.Packet{
		Kind:   packet.KindData,
		From:   g.dev.ID(),
		To:     rev[1],
		Origin: g.dev.ID(),
		Target: sensor,
		Seq:    g.seq,
		TTL:    g.Params.TTL,
		Path:   rev,
		Sec: &packet.SecEnvelope{
			Counter: ctr,
			Cipher:  cipher,
			MAC:     wsncrypto.Sum(key, ctr, cipher),
		},
	}
	if g.dev.Send(pkt) {
		g.Metrics.Inc(metrics.DataSent)
		return true
	}
	return false
}

func (g *SecMLRGateway) sendAck(origin packet.NodeID, seq uint32) {
	fwd, ok := g.paths[origin]
	if !ok || len(fwd) < 2 {
		return
	}
	// Reverse the stored Si..Gj path into Gj..Si.
	rev := make([]packet.NodeID, len(fwd))
	for i, id := range fwd {
		rev[len(fwd)-1-i] = id
	}
	key := g.Keys.Sensor[origin]
	g.txCtr[origin]++
	ctr := g.txCtr[origin]
	seqBuf := binary.BigEndian.AppendUint32(nil, seq)
	cipher := wsncrypto.Encrypt(key, ctr, seqBuf)
	ack := &packet.Packet{
		Kind:    packet.KindAck,
		From:    g.dev.ID(),
		To:      rev[1],
		Origin:  g.dev.ID(),
		Target:  origin,
		Seq:     seq,
		TTL:     g.Params.TTL,
		Path:    rev,
		Payload: seqBuf,
		Sec: &packet.SecEnvelope{
			Counter: ctr,
			Cipher:  cipher,
			MAC:     wsncrypto.Sum(key, ctr, cipher),
		},
	}
	if g.dev.Send(ack) {
		g.Metrics.Inc(metrics.AckSent)
	}
}

// teslaState is a sensor's broadcast-authentication state for one gateway.
type teslaState struct {
	verifier *wsncrypto.TeslaVerifier
	// buffered holds announcements awaiting key disclosure, per interval.
	buffered map[int][]bufferedNotify
}

type bufferedNotify struct {
	body []byte
	tag  []byte
}

// SecMLRSensor is the sensor side of SecMLR.
type SecMLRSensor struct {
	Params  Params
	Metrics metrics.Sink
	Keys    *SensorKeys

	dev  *node.Device
	seen *packet.Dedupe
	seq  uint32

	// table holds per-flow forwarding entries — the paper's 4-tuple
	// (source, destination, IS, IR) routing table of §6.2.4, keyed by
	// (origin, place). Entries are installed while forwarding an RRES
	// addressed to that origin and the freshest response wins, so a forged
	// early response cannot permanently poison the relay state (the
	// genuine, later gateway response overwrites it).
	table map[flowKey]Route
	// verified holds routes confirmed end-to-end by a gateway-MAC'd RRES;
	// only these carry this node's own data.
	verified map[int]Route
	active   map[int]packet.NodeID

	txCtr  map[packet.NodeID]uint64
	guards map[packet.NodeID]*wsncrypto.ReplayGuard
	tesla  map[packet.NodeID]*teslaState

	queue       [][]byte
	discovering bool
	retriesLeft int

	// pending tracks unacknowledged data for failover, keyed by data seq.
	pending map[uint32]*pendingTx

	// OnDownstream, when set, receives authenticated payloads a gateway
	// routed down to this sensor.
	OnDownstream func(gw packet.NodeID, payload []byte)
}

type pendingTx struct {
	seq     uint32
	payload []byte
	tried   map[int]bool // places already attempted
	timer   *sim.Timer
	sentAt  sim.Time // first transmission, for the failover-latency histogram
}

// flowKey identifies a forwarding entry: which origin's data, toward which
// feasible place.
type flowKey struct {
	origin packet.NodeID
	place  int
}

// NewSecMLRSensor creates a sensor stack with its pre-distributed keys.
func NewSecMLRSensor(p Params, m metrics.Sink, keys *SensorKeys) *SecMLRSensor {
	s := &SecMLRSensor{
		Params: p, Metrics: m, Keys: keys,
		table:    make(map[flowKey]Route),
		verified: make(map[int]Route),
		active:   make(map[int]packet.NodeID),
		txCtr:    make(map[packet.NodeID]uint64),
		guards:   make(map[packet.NodeID]*wsncrypto.ReplayGuard),
		tesla:    make(map[packet.NodeID]*teslaState),
		pending:  make(map[uint32]*pendingTx),
	}
	for gw, commit := range keys.TeslaCommit {
		s.tesla[gw] = &teslaState{
			verifier: wsncrypto.NewTeslaVerifier(commit),
			buffered: make(map[int][]bufferedNotify),
		}
	}
	return s
}

// Start implements node.Stack.
func (s *SecMLRSensor) Start(dev *node.Device) {
	s.dev = dev
	s.seen = packet.NewDedupe(1 << 14)
	enableARQ(dev, s.Params, s.Metrics)
}

// HandleLinkFailure implements node.LinkFailureHandler. SecMLR already has
// an end-to-end recovery path — the per-packet AckWait timer and
// multi-route failover (§6.2.3) — so the link layer only sharpens it:
// routes through the dead hop are forgotten, and for the sensor's own data
// the failover fires immediately instead of waiting out the full AckWait.
// Failed failovers stay accounted as Failovers/AbandonedData, never as
// Reroutes: the two counters keep their PR 3 meanings.
func (s *SecMLRSensor) HandleLinkFailure(pkt *packet.Packet) {
	if pkt.Kind != packet.KindData || s.dev == nil || !s.dev.Alive() {
		return
	}
	dead := pkt.To
	for place, r := range s.verified {
		if r.NextHop() == dead {
			delete(s.verified, place)
		}
	}
	for k, r := range s.table {
		if r.NextHop() == dead {
			delete(s.table, k)
		}
	}
	if pkt.Origin != s.dev.ID() {
		return // mid-path frame: the origin's AckWait failover recovers it
	}
	if tx, ok := s.pending[pkt.Seq]; ok {
		if tx.timer != nil {
			tx.timer.Stop()
			tx.timer = nil
		}
		s.failover(pkt.Seq)
	}
}

// ForwardingTableSize returns the number of per-flow forwarding entries.
func (s *SecMLRSensor) ForwardingTableSize() int { return len(s.table) }

// VerifiedRoutes returns a copy of the gateway-authenticated routes.
func (s *SecMLRSensor) VerifiedRoutes() map[int]Route {
	out := make(map[int]Route, len(s.verified))
	for k, v := range s.verified {
		out[k] = v
	}
	return out
}

// ActivePlaces returns the places believed to host a gateway, ascending.
func (s *SecMLRSensor) ActivePlaces() []int {
	out := make([]int, 0, len(s.active))
	for p := range s.active {
		out = append(out, p)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *SecMLRSensor) guard(gw packet.NodeID) *wsncrypto.ReplayGuard {
	gd, ok := s.guards[gw]
	if !ok {
		gd = &wsncrypto.ReplayGuard{}
		s.guards[gw] = gd
	}
	return gd
}

// bestVerified returns the least-hop verified route among active places,
// excluding places in skip.
func (s *SecMLRSensor) bestVerified(skip map[int]bool) *Route {
	var best *Route
	for p := range s.active {
		if skip != nil && skip[p] {
			continue
		}
		if r, ok := s.verified[p]; ok {
			if best == nil || r.Hops < best.Hops || (r.Hops == best.Hops && r.Place < best.Place) {
				rr := r
				best = &rr
			}
		}
	}
	return best
}

// BestRoute returns the route this node's own data currently takes.
func (s *SecMLRSensor) BestRoute() *Route { return s.bestVerified(nil) }

func (s *SecMLRSensor) missingVerified() int {
	missing := 0
	for p := range s.active {
		if _, ok := s.verified[p]; !ok {
			missing++
		}
	}
	return missing
}

// OriginateData queues one payload for authenticated delivery.
func (s *SecMLRSensor) OriginateData(payload []byte) {
	if s.dev == nil || !s.dev.Alive() {
		return
	}
	if len(s.active) > 0 && s.missingVerified() == 0 {
		if best := s.bestVerified(nil); best != nil {
			s.sendData(payload, best, nil)
			return
		}
	}
	if len(s.queue) >= s.Params.QueueLimit {
		s.Metrics.Inc(metrics.DroppedQueue)
		return
	}
	s.queue = append(s.queue, payload)
	if !s.discovering {
		s.retriesLeft = s.Params.Retries
		s.startDiscovery()
	}
}

func (s *SecMLRSensor) startDiscovery() {
	s.discovering = true
	s.seq++
	// One authentication block per provisioned gateway (§6.2.1: "flooding
	// a query packet with m destinations, i.e., all m gateways").
	blocks := make([]rreqBlock, 0, len(s.Keys.Gateway))
	for gw, key := range s.Keys.Gateway {
		s.txCtr[gw]++
		ctr := s.txCtr[gw]
		cipher := wsncrypto.Encrypt(key, ctr, []byte{reqMarker})
		blocks = append(blocks, rreqBlock{
			Gateway: gw,
			Counter: ctr,
			Cipher:  cipher[0],
			MAC:     wsncrypto.Sum(key, ctr, cipher),
		})
	}
	// Deterministic block order (map iteration is randomized).
	for i := 1; i < len(blocks); i++ {
		for j := i; j > 0 && blocks[j].Gateway < blocks[j-1].Gateway; j-- {
			blocks[j], blocks[j-1] = blocks[j-1], blocks[j]
		}
	}
	req := &packet.Packet{
		Kind:    packet.KindRReq,
		From:    s.dev.ID(),
		To:      packet.Broadcast,
		Origin:  s.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     s.seq,
		TTL:     s.Params.TTL,
		Path:    []packet.NodeID{s.dev.ID()},
		Payload: marshalRReqBlocks(blocks),
	}
	s.seen.Check(s.dev.ID(), s.seq)
	if s.dev.Send(req) {
		s.Metrics.Inc(metrics.RReqSent)
	}
	s.dev.After(s.Params.ResponseWait, s.decide)
}

func (s *SecMLRSensor) decide() {
	if !s.discovering || s.dev == nil || !s.dev.Alive() {
		return
	}
	s.discovering = false
	best := s.bestVerified(nil)
	if best == nil {
		if s.retriesLeft > 0 {
			s.retriesLeft--
			s.startDiscovery()
			return
		}
		s.Metrics.Add(metrics.DroppedNoRoute, uint64(len(s.queue)))
		traceExpiredBatch(s.dev, len(s.queue), "no_route")
		s.queue = nil
		return
	}
	for _, p := range s.queue {
		s.sendData(p, best, nil)
	}
	s.queue = nil
}

// sendData transmits payload over route r. prev carries failover state when
// this is a retransmission.
func (s *SecMLRSensor) sendData(payload []byte, r *Route, prev *pendingTx) {
	gw := r.Gateway
	key, ok := s.Keys.Gateway[gw]
	if !ok {
		return
	}
	s.txCtr[gw]++
	ctr := s.txCtr[gw]
	cipher := wsncrypto.Encrypt(key, ctr, payload)

	tx := prev
	if tx == nil {
		s.seq++
		tx = &pendingTx{seq: s.seq, payload: payload, tried: map[int]bool{}, sentAt: s.dev.Now()}
		s.pending[tx.seq] = tx
		s.Metrics.RecordGenerated(s.dev.ID(), tx.seq, s.dev.Now())
	}
	seq := tx.seq
	tx.tried[r.Place] = true

	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    s.dev.ID(),  // IS
		To:      r.NextHop(), // IR
		Origin:  s.dev.ID(),
		Target:  gw,
		Seq:     seq,
		TTL:     s.Params.TTL,
		Payload: placePayload(r.Place, nil),
		Sec: &packet.SecEnvelope{
			Counter: ctr,
			Cipher:  cipher,
			MAC:     wsncrypto.Sum(key, ctr, cipher),
		},
	}
	if s.dev.Send(pkt) {
		s.Metrics.Inc(metrics.DataSent)
	}
	if tx.timer != nil {
		tx.timer.Stop()
	}
	tx.timer = s.dev.After(s.Params.AckWait, func() { s.failover(seq) })
}

// failover reacts to a missing ACK: try the next-best verified route the
// packet has not used yet, or abandon.
func (s *SecMLRSensor) failover(seq uint32) {
	tx, ok := s.pending[seq]
	if !ok || s.dev == nil || !s.dev.Alive() {
		return
	}
	next := s.bestVerified(tx.tried)
	if next == nil {
		delete(s.pending, seq)
		s.Metrics.Inc(metrics.AbandonedData)
		traceExpiredBatch(s.dev, 1, "abandoned")
		return
	}
	s.Metrics.Inc(metrics.Failovers)
	// Histogram only: the FailoverLatencyUs counter is reserved for the
	// advert-liveness reroutes whose mean the text tables already report.
	s.Metrics.Observe(metrics.HistFailoverLatencyUs, uint64(s.dev.Now()-tx.sentAt))
	traceReroute(s.dev, next.Gateway, "ack_failover", 0)
	s.sendData(tx.payload, next, tx)
}

// HandleMessage implements node.Stack.
func (s *SecMLRSensor) HandleMessage(pkt *packet.Packet) {
	if s.dev == nil {
		return // not attached to a device yet
	}
	switch pkt.Kind {
	case packet.KindRReq:
		s.handleRReq(pkt)
	case packet.KindRRes:
		s.handleRRes(pkt)
	case packet.KindData:
		s.handleData(pkt)
	case packet.KindAck:
		s.handleAck(pkt)
	case packet.KindNotify:
		s.handleNotify(pkt)
	}
}

// handleRReq only re-floods: without Kij, a sensor cannot answer for a
// gateway, which is exactly what makes spoofed route responses impossible.
func (s *SecMLRSensor) handleRReq(pkt *packet.Packet) {
	if pkt.Origin == s.dev.ID() || s.seen.Check(pkt.Origin, pkt.Seq) {
		return
	}
	if pkt.TTL <= 1 {
		return
	}
	fwd := pkt.Clone()
	fwd.Path = pkt.AppendHop(s.dev.ID())
	fwd.From = s.dev.ID()
	fwd.TTL--
	fwd.Hops++
	s.sendFlood(fwd, metrics.RReqSent)
}

// sendFlood transmits a flood rebroadcast with optional de-synchronizing
// jitter (see Params.FloodJitter).
func (s *SecMLRSensor) sendFlood(fwd *packet.Packet, counter metrics.Counter) {
	if j := s.Params.FloodJitter; j > 0 {
		delay := sim.Duration(s.dev.World().Kernel().Rand().Int63n(int64(j)))
		s.dev.After(delay, func() {
			if s.dev.Alive() && s.dev.Send(fwd) {
				s.Metrics.Inc(counter)
			}
		})
		return
	}
	if s.dev.Send(fwd) {
		s.Metrics.Inc(counter)
	}
}

func (s *SecMLRSensor) handleRRes(pkt *packet.Packet) {
	place, _, ok := parsePlacePayload(pkt.Payload)
	if !ok || len(pkt.Path) < 2 {
		return
	}
	gw := pkt.Path[len(pkt.Path)-1]
	idx := indexOf(pkt.Path, s.dev.ID())
	if idx < 0 {
		return
	}
	if pkt.Target != s.dev.ID() {
		// Record the per-flow forwarding suffix (§6.2.2/§6.2.4); the
		// freshest response for this (origin, place) flow wins.
		suffix := append([]packet.NodeID(nil), pkt.Path[idx:]...)
		s.table[flowKey{pkt.Target, place}] = Route{
			Gateway: gw, Place: place, Hops: len(suffix) - 1, Path: suffix}
		if idx == 0 {
			return
		}
		fwd := pkt.Clone()
		fwd.From = s.dev.ID()
		fwd.To = pkt.Path[idx-1]
		fwd.Hops++
		if s.dev.Send(fwd) {
			s.Metrics.Inc(metrics.RResSent)
		}
		return
	}
	// Response addressed to us: authenticate before believing anything.
	key, known := s.Keys.Gateway[gw]
	if !known || pkt.Sec == nil {
		s.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	if !wsncrypto.Verify(key, pkt.Sec.Counter, pkt.Sec.Cipher, pkt.Sec.MAC) {
		s.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	if !s.guard(gw).Accept(pkt.Sec.Counter) {
		s.Metrics.Inc(metrics.RejectedReplay)
		return
	}
	body := wsncrypto.Decrypt(key, pkt.Sec.Counter, pkt.Sec.Cipher)
	secPlace, _, okBody := parseResBody(body)
	if !okBody || secPlace != place {
		// Clear-text place field was tampered with in flight.
		s.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	route := Route{Gateway: gw, Place: place, Hops: len(pkt.Path) - 1,
		Path: append([]packet.NodeID(nil), pkt.Path...)}
	if old, exists := s.verified[place]; !exists || route.Hops < old.Hops || old.Gateway != gw {
		s.verified[place] = route
	}
	s.active[place] = gw
}

func (s *SecMLRSensor) handleData(pkt *packet.Packet) {
	if pkt.Target == s.dev.ID() {
		s.deliverDownstream(pkt)
		return
	}
	if pkt.TTL <= 1 {
		return
	}
	if len(pkt.Path) > 0 {
		// Downstream packet in transit: follow the source route.
		idx := indexOf(pkt.Path, s.dev.ID())
		if idx < 0 || idx+1 >= len(pkt.Path) {
			return
		}
		fwd := pkt.Clone()
		fwd.From = s.dev.ID()
		fwd.To = pkt.Path[idx+1]
		fwd.TTL--
		fwd.Hops++
		if s.dev.Send(fwd) {
			s.Metrics.Inc(metrics.DataSent)
		}
		return
	}
	place, _, ok := parsePlacePayload(pkt.Payload)
	if !ok {
		return
	}
	r, entry := s.table[flowKey{pkt.Origin, place}]
	if !entry {
		return
	}
	// Rewrite IS/IR (§6.2.4) and forward.
	fwd := pkt.Clone()
	fwd.From = s.dev.ID()
	fwd.To = r.NextHop()
	fwd.TTL--
	fwd.Hops++
	if s.dev.Send(fwd) {
		s.Metrics.Inc(metrics.DataSent)
	}
}

// deliverDownstream authenticates and delivers a gateway-originated packet.
func (s *SecMLRSensor) deliverDownstream(pkt *packet.Packet) {
	gw := pkt.Origin
	key, known := s.Keys.Gateway[gw]
	if !known || pkt.Sec == nil {
		s.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	if !wsncrypto.Verify(key, pkt.Sec.Counter, pkt.Sec.Cipher, pkt.Sec.MAC) {
		s.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	if !s.guard(gw).Accept(pkt.Sec.Counter) {
		s.Metrics.Inc(metrics.RejectedReplay)
		return
	}
	if s.OnDownstream != nil {
		s.OnDownstream(gw, wsncrypto.Decrypt(key, pkt.Sec.Counter, pkt.Sec.Cipher))
	}
}

func (s *SecMLRSensor) handleAck(pkt *packet.Packet) {
	idx := indexOf(pkt.Path, s.dev.ID())
	if idx < 0 || pkt.Sec == nil {
		return
	}
	if pkt.Target != s.dev.ID() {
		if idx+1 >= len(pkt.Path) || pkt.TTL <= 1 {
			return
		}
		fwd := pkt.Clone()
		fwd.From = s.dev.ID()
		fwd.To = pkt.Path[idx+1]
		fwd.TTL--
		fwd.Hops++
		if s.dev.Send(fwd) {
			s.Metrics.Inc(metrics.AckSent)
		}
		return
	}
	gw := pkt.Origin
	key, known := s.Keys.Gateway[gw]
	if !known {
		s.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	if !wsncrypto.Verify(key, pkt.Sec.Counter, pkt.Sec.Cipher, pkt.Sec.MAC) {
		s.Metrics.Inc(metrics.RejectedMAC)
		return
	}
	if !s.guard(gw).Accept(pkt.Sec.Counter) {
		s.Metrics.Inc(metrics.RejectedReplay)
		return
	}
	body := wsncrypto.Decrypt(key, pkt.Sec.Counter, pkt.Sec.Cipher)
	if len(body) < 4 {
		return
	}
	seq := binary.BigEndian.Uint32(body)
	if tx, okTx := s.pending[seq]; okTx {
		if tx.timer != nil {
			tx.timer.Stop()
		}
		delete(s.pending, seq)
	}
}

func (s *SecMLRSensor) handleNotify(pkt *packet.Packet) {
	if s.seen.Check(pkt.Origin, pkt.Seq) {
		return
	}
	s.processNotify(pkt)
	if pkt.TTL > 1 {
		fwd := pkt.Clone()
		fwd.From = s.dev.ID()
		fwd.TTL--
		fwd.Hops++
		s.sendFlood(fwd, metrics.NotifySent)
	}
}

func (s *SecMLRSensor) processNotify(pkt *packet.Packet) {
	if len(pkt.Payload) < 1 {
		return
	}
	st, known := s.tesla[pkt.Origin]
	if !known {
		return // notifies from unknown gateways are meaningless
	}
	switch pkt.Payload[0] {
	case notifyAnnounce:
		rest := pkt.Payload[1:]
		if len(rest) < 6+2+wsncrypto.MACSize {
			return
		}
		body := rest[:6]
		interval := int(binary.BigEndian.Uint16(rest[6:]))
		tag := rest[8 : 8+wsncrypto.MACSize]
		if interval <= st.verifier.Interval() {
			// The key for this interval is already public; a MAC under it
			// proves nothing (could be forged after disclosure).
			s.Metrics.Inc(metrics.RejectedReplay)
			return
		}
		st.buffered[interval] = append(st.buffered[interval], bufferedNotify{
			body: append([]byte(nil), body...),
			tag:  append([]byte(nil), tag...),
		})
	case notifyDisclose:
		rest := pkt.Payload[1:]
		if len(rest) < 2+wsncrypto.KeySize {
			return
		}
		interval := int(binary.BigEndian.Uint16(rest))
		key := rest[2 : 2+wsncrypto.KeySize]
		if !st.verifier.AcceptKey(interval, key) {
			s.Metrics.Inc(metrics.RejectedMAC)
			return
		}
		for _, buf := range st.buffered[interval] {
			if !st.verifier.VerifyMessage(interval, buf.body, buf.tag) {
				s.Metrics.Inc(metrics.RejectedMAC)
				continue
			}
			if n, ok := parseMLRNotify(buf.body); ok {
				s.applyNotify(pkt.Origin, n)
			}
		}
		delete(st.buffered, interval)
	}
}

func (s *SecMLRSensor) applyNotify(gw packet.NodeID, n mlrNotify) {
	if n.PrevPlace != NoPlace {
		if cur, ok := s.active[int(n.PrevPlace)]; ok && cur == gw {
			delete(s.active, int(n.PrevPlace))
		}
	}
	place := int(n.NewPlace)
	s.active[place] = gw
	// A verified route to this place authenticated a *different* gateway;
	// it cannot protect data for the new tenant. Force re-verification.
	if r, ok := s.verified[place]; ok && r.Gateway != gw {
		delete(s.verified, place)
	}
}
