package chaos

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wmsn/internal/attack"
	"wmsn/internal/fault"
	"wmsn/internal/obs"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
)

var (
	soakTrials    = flag.Int("soak.trials", 6, "number of randomized soak trials")
	soakArtifacts = flag.String("soak.artifacts", "", "directory receiving flight-recorder dumps for failing trials")
)

// TestSoak is the chaos gate: seeded randomized fault plans on lossy media
// with link ARQ armed, every structural invariant checked after each trial.
// CI runs it under -race via `make soak`.
func TestSoak(t *testing.T) {
	trials, err := Soak(Options{Seed: 20260806, Trials: *soakTrials, Log: t.Logf,
		ArtifactDir: *soakArtifacts})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != *soakTrials {
		t.Fatalf("completed %d trials, want %d", len(trials), *soakTrials)
	}
	engaged := false
	for _, tr := range trials {
		if tr.Delivery < 0 || tr.Delivery > 1 {
			t.Fatalf("trial seed %d: impossible delivery ratio %v", tr.Seed, tr.Delivery)
		}
		if tr.Result.Metrics.LinkTxQueued > 0 {
			engaged = true
		}
	}
	if !engaged {
		t.Fatal("no trial ever engaged the link ARQ — the soak is not stressing the reliability stack")
	}
}

// TestSoakSharded runs the same randomized fault plans region-sharded
// (Config.Shards > 1): concurrent region workers, staged deaths, outbox
// adoption — under the full invariant battery, with link ARQ armed and
// deaths landing mid-window. Sharded trials must also be deterministic
// functions of their seed, or no violation they find is replayable.
func TestSoakSharded(t *testing.T) {
	opt := Options{Seed: 20260807, Trials: 4, RunFor: 40 * sim.Second, Shards: 3, Log: t.Logf}
	trials, err := Soak(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != opt.Trials {
		t.Fatalf("completed %d trials, want %d", len(trials), opt.Trials)
	}
	for _, tr := range trials {
		if tr.Delivery < 0 || tr.Delivery > 1 {
			t.Fatalf("trial seed %d: impossible delivery ratio %v", tr.Seed, tr.Delivery)
		}
	}
	replay, err := Soak(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trials {
		sa, sb := trials[i].Result.Metrics.Snapshot(), replay[i].Result.Metrics.Snapshot()
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("sharded trial %d diverged between identical soak runs:\n%+v\nvs\n%+v", i, sa, sb)
		}
	}
}

// TestSoakDeterministic replays one trial seed and demands identical
// metrics: a violation found by the soak must be reproducible from its
// seed alone.
func TestSoakDeterministic(t *testing.T) {
	opt := Options{Seed: 99, Trials: 2, RunFor: 30 * sim.Second}
	a, err := Soak(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		sa, sb := a[i].Result.Metrics.Snapshot(), b[i].Result.Metrics.Snapshot()
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("trial %d diverged between identical soak runs:\n%+v\nvs\n%+v", i, sa, sb)
		}
	}
}

// TestInvariantViolationIsCaught proves the checker bites: a run whose
// link ledger is tampered with — simulating a lost-update bug in the ARQ
// machine — must fail CheckInvariants, loudly.
func TestInvariantViolationIsCaught(t *testing.T) {
	opt := Options{Seed: 7, Trials: 1, RunFor: 20 * sim.Second}.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	cfg := compose(rng, opt)
	n, err := scenario.BuildE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.StartTraffic()
	n.World.Run(cfg.RunFor)
	n.StopTraffic()
	n.World.Run(cfg.RunFor + opt.Grace)
	if err := CheckInvariants(n); err != nil {
		t.Fatalf("healthy run violated invariants: %v", err)
	}
	// Simulate a frame admitted to a queue but never accounted as settled.
	n.Metrics.LinkTxQueued++
	err = CheckInvariants(n)
	if err == nil {
		t.Fatal("tampered conservation ledger passed CheckInvariants")
	}
	if !strings.Contains(err.Error(), "ledger") {
		t.Fatalf("violation error %q does not name the ledger", err)
	}
}

// TestDumpTailWritesRecorderEvents exercises the failure-artifact path: the
// dump file must land next to the seed name and replay as valid JSONL.
func TestDumpTailWritesRecorderEvents(t *testing.T) {
	rec := obs.NewRecorder(4)
	for i := 0; i < 9; i++ { // overflow the ring: only the last 4 survive
		rec.Observe(obs.Event{At: sim.Time(i) * sim.Second, Kind: obs.LinkTx, Node: 1, Seq: uint32(i)})
	}
	dir := t.TempDir()
	path, err := DumpTail(filepath.Join(dir, "nested"), 4242, rec)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "chaos-seed-4242.jsonl" {
		t.Fatalf("dump name = %q", filepath.Base(path))
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 || events[0].Seq != 5 || events[3].Seq != 8 {
		t.Fatalf("dump holds %d events (first %+v), want the newest 4", len(events), events[0])
	}
}

// TestSoakRecordedMatchesBare proves arming the flight recorder does not
// perturb a trial: same seeds, same metrics, recorder on or off.
func TestSoakRecordedMatchesBare(t *testing.T) {
	opt := Options{Seed: 99, Trials: 1, RunFor: 20 * sim.Second}
	bare, err := Soak(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.ArtifactDir = t.TempDir()
	recorded, err := Soak(opt)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := bare[0].Result.Metrics.Snapshot(), recorded[0].Result.Metrics.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("recorder changed trial outcome:\n%+v\nvs\n%+v", sa, sb)
	}
	// No invariant failed, so no artifact may be written.
	names, _ := os.ReadDir(opt.ArtifactDir)
	if len(names) != 0 {
		t.Fatalf("healthy soak left %d artifact(s)", len(names))
	}
}

// TestSoakAttacks runs the randomized trials with compromise campaigns
// armed: every structural invariant must keep holding when a fraction of
// the sensors turns hostile mid-run, and at least one trial must actually
// land a compromise (otherwise the option is dead weight).
func TestSoakAttacks(t *testing.T) {
	opt := Options{Seed: 20260808, Trials: *soakTrials, Attacks: true, Log: t.Logf,
		ArtifactDir: *soakArtifacts}
	trials, err := Soak(opt)
	if err != nil {
		t.Fatal(err)
	}
	var compromised uint64
	for _, tr := range trials {
		if tr.Delivery < 0 || tr.Delivery > 1 {
			t.Fatalf("trial seed %d: impossible delivery ratio %v", tr.Seed, tr.Delivery)
		}
		compromised += tr.Result.Metrics.CompromisedNodes
	}
	if compromised == 0 {
		t.Fatal("no trial compromised any node — the attack campaigns never engaged")
	}
}

// TestSoakAttacksSharded runs attack-randomized trials region-sharded and
// replays them: compromise campaigns must be deterministic functions of the
// trial seed at any shard count, or no violation they find is replayable.
func TestSoakAttacksSharded(t *testing.T) {
	opt := Options{Seed: 20260809, Trials: 4, RunFor: 40 * sim.Second, Shards: 3,
		Attacks: true, Log: t.Logf}
	trials, err := Soak(opt)
	if err != nil {
		t.Fatal(err)
	}
	var compromised uint64
	for _, tr := range trials {
		compromised += tr.Result.Metrics.CompromisedNodes
	}
	if compromised == 0 {
		t.Fatal("no sharded trial compromised any node")
	}
	replay, err := Soak(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trials {
		sa, sb := trials[i].Result.Metrics.Snapshot(), replay[i].Result.Metrics.Snapshot()
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("sharded attack trial %d diverged between identical soak runs:\n%+v\nvs\n%+v", i, sa, sb)
		}
	}
}

// TestSoakAttackLedgerBalances pins the accounting claim behind the attack
// soak: a blackhole insider swallows frames AFTER the link-layer ARQ has
// acknowledged them, so attacker drops are end-to-end losses, not ledger
// leaks — CheckLinkConservation must stay balanced while AttackerDropped
// counts real damage.
func TestSoakAttackLedgerBalances(t *testing.T) {
	opt := Options{Seed: 31, Trials: 1, RunFor: 40 * sim.Second}.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	cfg := compose(rng, opt)
	cfg.Protocol = scenario.SecMLR
	cfg.Faults = fault.NewPlan().CompromiseFractionAt(10*sim.Second, 0.25,
		attack.Spec{Kind: attack.KindBlackhole}, 7)
	n, err := scenario.BuildE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.StartTraffic()
	n.World.Run(cfg.RunFor)
	n.StopTraffic()
	n.World.Run(cfg.RunFor + opt.Grace)
	if n.Metrics.CompromisedNodes == 0 {
		t.Fatal("campaign compromised no nodes")
	}
	if n.Metrics.AttackerDropped == 0 {
		t.Fatal("blackhole insiders swallowed nothing — the attack never bit")
	}
	if err := CheckInvariants(n); err != nil {
		t.Fatalf("attacked run violated invariants: %v", err)
	}
}
