package node

import (
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/packet"
)

// TestKillRecoverRoundTrip pins the attachSnapshot contract: everything a
// kill tears down — station attachments, position, ranges, the sensor
// listening flag, the promiscuous bit — comes back exactly on Recover, and
// the revived device both receives and transmits again.
func TestKillRecoverRoundTrip(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	gwStack := &echoStack{}
	gw := w.AddGateway(100, geom.Point{X: 20}, 30, 150, gwStack)
	peer := &echoStack{}
	w.AddSensor(1, geom.Point{X: 10}, 30, 0, peer)
	bs := w.AddBaseStation(200, geom.Point{X: 60}, 150)
	meshGot := 0
	bs.SetMeshHandler(func(*packet.Packet) { meshGot++ })

	gw.SetPromiscuous(true)
	gw.SensorStation().SetListening(false) // a deliberately non-default flag
	wantPos := gw.Pos()
	wantSensorRange := gw.SensorStation().Range()
	wantMeshRange := gw.MeshStation().Range()

	gw.Fail()
	if gw.Alive() {
		t.Fatal("gateway alive after Fail")
	}
	if gw.SensorStation() != nil || gw.MeshStation() != nil {
		t.Fatal("stations not detached by kill")
	}
	if gw.SendMesh(bcast(100)) {
		t.Fatal("dead gateway transmitted on the mesh")
	}

	if !gw.Recover() {
		t.Fatal("Recover returned false for a dead device")
	}
	if gw.Recover() {
		t.Fatal("Recover on an alive device should be a no-op")
	}
	if !gw.Alive() {
		t.Fatal("gateway not alive after Recover")
	}
	if got := gw.Pos(); got != wantPos {
		t.Fatalf("position after recover = %v, want %v", got, wantPos)
	}
	st, ms := gw.SensorStation(), gw.MeshStation()
	if st == nil || ms == nil {
		t.Fatal("stations not re-attached by Recover")
	}
	if st.Range() != wantSensorRange || ms.Range() != wantMeshRange {
		t.Fatalf("ranges after recover = %g/%g, want %g/%g",
			st.Range(), ms.Range(), wantSensorRange, wantMeshRange)
	}
	if st.Listening() {
		t.Fatal("sensor listening flag not restored (was off at death)")
	}
	if !gw.Promiscuous() || !st.Promiscuous() {
		t.Fatal("promiscuous bit not restored onto the fresh station")
	}

	// The revived gateway transmits on the mesh again...
	if !gw.SendMesh(bcast(100)) {
		t.Fatal("recovered gateway could not transmit on the mesh")
	}
	w.RunUntilIdle()
	if meshGot != 1 {
		t.Fatalf("base station heard %d mesh packets from recovered gateway, want 1", meshGot)
	}
	// ...and hears the mesh again (its sensor ear was left off by design).
	before := len(gwStack.got)
	w.Device(1).Send(bcast(1))
	w.RunUntilIdle()
	if len(gwStack.got) != before {
		t.Fatal("non-listening recovered station still delivered a sensor frame")
	}
}

// TestKillRecoverSensorCounts checks the world-level bookkeeping around the
// snapshot round trip for battery-backed sensors.
func TestKillRecoverSensorCounts(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	s := w.AddSensor(1, geom.Point{}, 30, 0, &echoStack{})
	w.AddSensor(2, geom.Point{X: 5}, 30, 0, &echoStack{})
	if w.SensorsAlive() != 2 {
		t.Fatalf("SensorsAlive = %d, want 2", w.SensorsAlive())
	}
	s.Fail()
	if w.SensorsAlive() != 1 {
		t.Fatalf("SensorsAlive after kill = %d, want 1", w.SensorsAlive())
	}
	if !s.Recover() {
		t.Fatal("Recover failed")
	}
	if w.SensorsAlive() != 2 {
		t.Fatalf("SensorsAlive after recover = %d, want 2", w.SensorsAlive())
	}
	// The death record survives recovery (lifetime bookkeeping is history,
	// not state).
	if len(w.Deaths()) != 1 {
		t.Fatalf("deaths = %+v, want the one kill on record", w.Deaths())
	}
}
