// Package service is the simulation-as-a-service layer behind cmd/wmsnd: an
// HTTP/JSON daemon that accepts validated scenario configurations (single
// runs and sweeps), schedules them on a bounded job queue with per-job
// limits, sheds load with 429 + Retry-After when the queue is full, and
// streams per-run results, obs trace events and time-bucketed series live as
// JSON lines while jobs execute. Cancellation (client disconnect, DELETE,
// wall-clock deadline, daemon shutdown) flows through scenario.RunEach's
// context into the simulation kernel, so a canceled job stops within one
// event batch instead of burning CPU to its horizon.
package service

import (
	"errors"
	"fmt"
	"time"

	"wmsn/internal/core"
	"wmsn/internal/fault"
	"wmsn/internal/packet"
	"wmsn/internal/protocol"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
)

// RunSpec is the JSON wire form of one scenario: the subset of
// scenario.Config that serializes cleanly (no hooks, no function-valued
// fields). Durations travel as float64 virtual seconds. Zero fields take the
// library defaults (scenario.Defaults), so `{"protocol":"spr"}` is a
// complete, valid spec.
type RunSpec struct {
	Seed        int64   `json:"seed,omitempty"`
	Protocol    string  `json:"protocol,omitempty"`
	NumSensors  int     `json:"num_sensors,omitempty"`
	Side        float64 `json:"side,omitempty"`
	SensorRange float64 `json:"sensor_range,omitempty"`
	NumGateways int     `json:"num_gateways,omitempty"`
	Rounds      int     `json:"rounds,omitempty"`
	RoundLenS   float64 `json:"round_len_s,omitempty"`

	ReportIntervalS float64 `json:"report_interval_s,omitempty"`
	PayloadSize     int     `json:"payload_size,omitempty"`
	WarmupS         float64 `json:"warmup_s,omitempty"`
	RunForS         float64 `json:"run_for_s,omitempty"`

	StopAtFirstDeath bool `json:"stop_at_first_death,omitempty"`
	// Shards selects the region-sharded engine (scenario.Config.Shards);
	// incompatible with tracing.
	Shards int `json:"shards,omitempty"`

	LossRate   float64 `json:"loss_rate,omitempty"`
	Collisions bool    `json:"collisions,omitempty"`
	CSMA       bool    `json:"csma,omitempty"`

	LEACHProb         float64 `json:"leach_prob,omitempty"`
	NoShortcutAnswers bool    `json:"no_shortcut_answers,omitempty"`

	// LinkRetries arms the hop-by-hop link ARQ with the default timing
	// (core.DefaultParams), overriding only the retry budget.
	LinkRetries int `json:"link_retries,omitempty"`

	// Faults is a declarative fault schedule, the wire form of the E13-style
	// reliability scenarios.
	Faults []FaultSpec `json:"faults,omitempty"`
}

// FaultSpec is one scheduled fault event.
type FaultSpec struct {
	// Kind is one of "crash", "recover", "kill_gateway", "degrade_all".
	Kind string `json:"kind"`
	// AtS is the virtual time of the event in seconds.
	AtS float64 `json:"at_s"`
	// Node targets crash/recover (a sensor node ID).
	Node uint32 `json:"node,omitempty"`
	// Gateway targets kill_gateway (a gateway index, 0-based).
	Gateway int `json:"gateway,omitempty"`
	// Loss is the per-link loss rate for degrade_all.
	Loss float64 `json:"loss,omitempty"`
}

// RunRequest is the body of POST /v1/runs: either one spec replicated
// across consecutive seeds (a classic averaging sweep) or an explicit list
// of specs, plus delivery options.
type RunRequest struct {
	// Run, with Seeds, expands to Seeds copies of the spec at seeds
	// Seed, Seed+1, ... Seed+Seeds-1. Seeds 0 means 1.
	Run   *RunSpec `json:"run,omitempty"`
	Seeds int      `json:"seeds,omitempty"`
	// Runs is the explicit sweep form; exactly one of Run/Runs must be set.
	Runs []RunSpec `json:"runs,omitempty"`

	// Workers bounds this job's intra-sweep parallelism; 0 selects the
	// service default, and the service clamps it to its per-job limit.
	Workers int `json:"workers,omitempty"`

	// Trace streams every run's obs events as {"type":"trace"} lines.
	// Incompatible with sharded specs (the event bus is single-goroutine).
	Trace bool `json:"trace,omitempty"`
	// SampleS is the gauge-sampling interval in virtual seconds for traced
	// runs (obs.Bus.Sample); 0 disables gauge samples.
	SampleS float64 `json:"sample_s,omitempty"`
	// SeriesS, when positive, emits one {"type":"series"} line per run with
	// the trace stream folded into buckets of this many virtual seconds.
	// Implies event collection even when Trace is false.
	SeriesS float64 `json:"series_s,omitempty"`

	// DeadlineS is the job's wall-clock execution budget in seconds,
	// measured from the moment a scheduler picks the job up. 0 selects the
	// service default; the service clamps it to its per-job maximum.
	DeadlineS float64 `json:"deadline_s,omitempty"`

	// ProgressS, when positive, emits one {"type":"progress"} heartbeat line
	// on the job stream every ProgressS wall-clock seconds while the job
	// runs, carrying the aggregated live watermark (virtual time, events,
	// deliveries per run). Progress polling via GET /v1/jobs/{id}/progress is
	// always available regardless of this field; ProgressS only controls the
	// in-stream heartbeat. 0 keeps the stream strictly deterministic (no
	// wall-clock-dependent lines).
	ProgressS float64 `json:"progress_s,omitempty"`
}

// Limits bounds what one job may ask of the service. The zero value selects
// every default.
type Limits struct {
	// MaxNodes caps NumSensors + NumGateways per run (default 20000).
	MaxNodes int
	// MaxHorizon caps RunFor per run (default 1 virtual hour).
	MaxHorizon sim.Duration
	// MaxRunsPerJob caps the sweep size (default 256).
	MaxRunsPerJob int
	// MaxWorkersPerJob caps intra-job parallelism (default 4).
	MaxWorkersPerJob int
	// DefaultDeadline and MaxDeadline bound the wall-clock execution budget
	// (defaults 60 s and 300 s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxTraceLines caps the number of buffered trace lines per job; past
	// it the stream carries one truncation notice and further trace events
	// are dropped (results and series are never dropped). Default 100000.
	MaxTraceLines int
}

func (l Limits) withDefaults() Limits {
	if l.MaxNodes <= 0 {
		l.MaxNodes = 20000
	}
	if l.MaxHorizon <= 0 {
		l.MaxHorizon = sim.Hour
	}
	if l.MaxRunsPerJob <= 0 {
		l.MaxRunsPerJob = 256
	}
	if l.MaxWorkersPerJob <= 0 {
		l.MaxWorkersPerJob = 4
	}
	if l.DefaultDeadline <= 0 {
		l.DefaultDeadline = 60 * time.Second
	}
	if l.MaxDeadline <= 0 {
		l.MaxDeadline = 300 * time.Second
	}
	if l.MaxTraceLines <= 0 {
		l.MaxTraceLines = 100000
	}
	return l
}

func secs(s float64) sim.Duration { return sim.Duration(s * float64(sim.Second)) }

// config converts the wire spec into a scenario.Config.
func (s RunSpec) config() (scenario.Config, error) {
	cfg := scenario.Config{
		Seed:             s.Seed,
		Protocol:         protocol.ID(s.Protocol),
		NumSensors:       s.NumSensors,
		Side:             s.Side,
		SensorRange:      s.SensorRange,
		NumGateways:      s.NumGateways,
		Rounds:           s.Rounds,
		RoundLen:         secs(s.RoundLenS),
		ReportInterval:   secs(s.ReportIntervalS),
		PayloadSize:      s.PayloadSize,
		Warmup:           secs(s.WarmupS),
		RunFor:           secs(s.RunForS),
		StopAtFirstDeath: s.StopAtFirstDeath,
		Shards:           s.Shards,
		LossRate:         s.LossRate,
		Collisions:       s.Collisions,
		CSMA:             s.CSMA,
		LEACHProb:        s.LEACHProb,
		NoShortcutAnswers: s.NoShortcutAnswers,
	}
	if s.LinkRetries > 0 {
		p := core.DefaultParams()
		p.LinkRetries = s.LinkRetries
		cfg.Params = &p
	}
	if len(s.Faults) > 0 {
		plan := fault.NewPlan()
		for i, f := range s.Faults {
			at := secs(f.AtS)
			switch f.Kind {
			case "crash":
				plan.CrashAt(at, packet.NodeID(f.Node))
			case "recover":
				plan.RecoverAt(at, packet.NodeID(f.Node))
			case "kill_gateway":
				plan.KillGateway(at, f.Gateway)
			case "degrade_all":
				plan.DegradeAll(at, f.Loss)
			default:
				return cfg, fmt.Errorf("faults[%d]: unknown kind %q (want crash, recover, kill_gateway or degrade_all)", i, f.Kind)
			}
		}
		cfg.Faults = plan
	}
	return cfg, nil
}

// jobOptions is a validated, limit-clamped run request ready to execute.
type jobOptions struct {
	cfgs     []scenario.Config
	workers  int
	trace    bool
	sample   sim.Duration
	series   sim.Duration
	deadline time.Duration
	progress time.Duration // stream-heartbeat interval; 0 = no heartbeat lines
}

// expand validates the request against the limits and expands it into
// concrete scenario configs. All problems are joined into one error so a
// client sees every rejection reason at once.
func (r RunRequest) expand(l Limits) (jobOptions, error) {
	var errs []error
	var specs []RunSpec
	switch {
	case r.Run != nil && len(r.Runs) > 0:
		errs = append(errs, errors.New("set either run or runs, not both"))
	case r.Run != nil:
		seeds := r.Seeds
		if seeds <= 0 {
			seeds = 1
		}
		if seeds > l.MaxRunsPerJob {
			errs = append(errs, fmt.Errorf("seeds %d exceeds the per-job run limit %d", seeds, l.MaxRunsPerJob))
			seeds = 0
		}
		for i := 0; i < seeds; i++ {
			sp := *r.Run
			sp.Seed += int64(i)
			specs = append(specs, sp)
		}
	case len(r.Runs) > 0:
		if len(r.Runs) > l.MaxRunsPerJob {
			errs = append(errs, fmt.Errorf("%d runs exceeds the per-job run limit %d", len(r.Runs), l.MaxRunsPerJob))
		} else {
			specs = r.Runs
		}
	default:
		errs = append(errs, errors.New("empty request: set run (optionally with seeds) or runs"))
	}
	if r.Seeds > 0 && r.Run == nil {
		errs = append(errs, errors.New("seeds is only meaningful with run"))
	}

	o := jobOptions{
		trace:  r.Trace,
		sample: secs(r.SampleS),
		series: secs(r.SeriesS),
	}
	for i, sp := range specs {
		cfg, err := sp.config()
		if err == nil {
			err = cfg.Validate()
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("run %d: %w", i, err))
			continue
		}
		full := scenario.Defaults(cfg)
		if nodes := full.NumSensors + full.NumGateways; nodes > l.MaxNodes {
			errs = append(errs, fmt.Errorf("run %d: %d nodes exceeds the per-run limit %d", i, nodes, l.MaxNodes))
		}
		if full.RunFor > l.MaxHorizon {
			errs = append(errs, fmt.Errorf("run %d: horizon %v exceeds the per-run limit %v", i, full.RunFor, l.MaxHorizon))
		}
		if (o.trace || o.series > 0) && full.Shards > 1 {
			errs = append(errs, fmt.Errorf("run %d: tracing is incompatible with shards %d (the event bus is single-goroutine)", i, full.Shards))
		}
		o.cfgs = append(o.cfgs, cfg)
	}

	o.workers = r.Workers
	if o.workers < 0 {
		errs = append(errs, fmt.Errorf("workers %d is negative", o.workers))
	}
	if o.workers == 0 || o.workers > l.MaxWorkersPerJob {
		o.workers = l.MaxWorkersPerJob
	}
	if r.DeadlineS < 0 {
		errs = append(errs, fmt.Errorf("deadline_s %g is negative", r.DeadlineS))
	}
	o.deadline = time.Duration(r.DeadlineS * float64(time.Second))
	if o.deadline == 0 {
		o.deadline = l.DefaultDeadline
	}
	if o.deadline > l.MaxDeadline {
		errs = append(errs, fmt.Errorf("deadline_s %g exceeds the service maximum %gs", r.DeadlineS, l.MaxDeadline.Seconds()))
	}
	if r.SampleS < 0 || r.SeriesS < 0 {
		errs = append(errs, errors.New("sample_s and series_s must be non-negative"))
	}
	if r.ProgressS < 0 {
		errs = append(errs, fmt.Errorf("progress_s %g is negative", r.ProgressS))
	}
	o.progress = time.Duration(r.ProgressS * float64(time.Second))
	if err := errors.Join(errs...); err != nil {
		return jobOptions{}, err
	}
	return o, nil
}
