package wmsn_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"wmsn"
)

// ExampleRunContext shows the primary entry point: deploy, route, report,
// measure, with validation errors reported and context cancellation honored.
func ExampleRunContext() {
	res, err := wmsn.RunContext(context.Background(), wmsn.Config{
		Seed:        1,
		Protocol:    wmsn.SPR,
		NumSensors:  50,
		Side:        150,
		SensorRange: 35,
		NumGateways: 3,
		RunFor:      60 * wmsn.Second,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("delivery %.0f%%\n", 100*res.Metrics.DeliveryRatio())
	// Output: delivery 100%
}

// ExampleRunContext_deadline bounds a run's wall-clock budget: when the
// deadline fires, the kernel stops within one event batch and the error
// matches both ErrCanceled and the context's cause.
func ExampleRunContext_deadline() {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := wmsn.RunContext(ctx, wmsn.Config{
		Seed:        1,
		Protocol:    wmsn.SPR,
		NumSensors:  300,
		Side:        300,
		SensorRange: 40,
		NumGateways: 3,
		RunFor:      10 * wmsn.Hour, // far more virtual time than the budget allows
	})
	fmt.Println(errors.Is(err, wmsn.ErrCanceled), errors.Is(err, context.DeadlineExceeded))
	// Output: true true
}

// ExampleRunEach streams a sweep: results arrive in submission order as
// they complete, without waiting for the whole sweep.
func ExampleRunEach() {
	cfgs := make([]wmsn.Config, 3)
	for i := range cfgs {
		cfgs[i] = wmsn.Config{
			Seed: int64(i), Protocol: wmsn.SPR,
			NumSensors: 40, RunFor: 30 * wmsn.Second,
		}
	}
	err := wmsn.RunEach(context.Background(), 2, cfgs, func(i int, r wmsn.Result, err error) {
		fmt.Printf("run %d: delivery %.0f%%\n", i, 100*r.Metrics.DeliveryRatio())
	})
	if err != nil {
		fmt.Println(err)
	}
	// Output:
	// run 0: delivery 100%
	// run 1: delivery 100%
	// run 2: delivery 100%
}

// ExampleRun shows the legacy one-call entry point: like RunContext, but
// panicking on invalid configurations and without cancellation.
func ExampleRun() {
	res := wmsn.Run(wmsn.Config{
		Seed:        1,
		Protocol:    wmsn.SPR,
		NumSensors:  50,
		Side:        150,
		SensorRange: 35,
		NumGateways: 3,
		RunFor:      60 * wmsn.Second,
	})
	fmt.Printf("delivery %.0f%%\n", 100*res.Metrics.DeliveryRatio())
	// Output: delivery 100%
}

// ExampleRunE shows the error-returning entry point: an invalid
// configuration is reported instead of panicking.
func ExampleRunE() {
	_, err := wmsn.RunE(wmsn.Config{NumSensors: -5, LossRate: 1.0})
	fmt.Println(err)
	// Output:
	// scenario: invalid config: NumSensors -5 is negative — deploy at least one sensor
	// LossRate 1 outside [0,1) — 1 would lose every frame
}

// ExampleConfig_faults declares failures on a fault plan: a sensor crash
// with later recovery, and a gateway kill the protocol must route around.
// The Result carries a Reliability summary of the recovery.
func ExampleConfig_faults() {
	res := wmsn.Run(wmsn.Config{
		Seed:        1,
		Protocol:    wmsn.SPR,
		NumSensors:  50,
		Side:        150,
		SensorRange: 40,
		NumGateways: 3,
		RunFor:      120 * wmsn.Second,
		Faults: wmsn.NewFaultPlan().
			CrashAt(30*wmsn.Second, 1).
			RecoverAt(50*wmsn.Second, 1).
			KillGateway(60*wmsn.Second, 0),
	})
	rel := res.Reliability
	gwLoss := rel.Windows[1]
	fmt.Printf("faults %d, reroutes > 0: %v, delivery after %s recovered: %v\n",
		rel.FaultsInjected, rel.Reroutes > 0, gwLoss.Label, gwLoss.After >= gwLoss.Before-0.05)
	// Output: faults 2, reroutes > 0: true, delivery after kill-gw 0 recovered: true
}

// ExampleBuild shows the two-phase form with the imperative hooks that a
// declarative fault plan cannot express: Obs taps the event stream (here
// counting deliveries at one gateway), and StackWrapper compromises chosen
// stacks in place (here a grayhole insider dropping most forwarded data).
func ExampleBuild() {
	delivered := 0
	net := wmsn.Build(wmsn.Config{
		Seed:        1,
		Protocol:    wmsn.SPR,
		NumSensors:  50,
		Side:        150,
		SensorRange: 35,
		NumGateways: 3,
		RunFor:      60 * wmsn.Second,
		StackWrapper: func(id wmsn.NodeID, st wmsn.Stack) wmsn.Stack {
			if id == 7 {
				return &wmsn.SelectiveForwarder{Inner: st, DropProb: 0.9}
			}
			return st
		},
		Obs: wmsn.NewTraceBus(wmsn.TraceSinkFunc(func(ev wmsn.TraceEventRecord) {
			if ev.Kind == wmsn.TracePacketDelivered && ev.Node == wmsn.GatewayID(0) {
				delivered++
			}
		})),
	})
	res := net.RunTraffic()
	fmt.Println("run completed:", res.Elapsed > 0 && delivered >= 0)
	// Output: run completed: true
}

// ExampleNewWorld assembles a two-node network by hand: one sensor running
// SPR, one gateway, one reading delivered.
func ExampleNewWorld() {
	w := wmsn.NewWorld(7)
	m := wmsn.NewMetrics()
	p := wmsn.DefaultParams()

	sensor := wmsn.NewSPRSensor(p, m)
	w.AddSensor(1, wmsn.Point{X: 0}, 30, 0, sensor)
	w.AddGateway(1000, wmsn.Point{X: 20}, 30, 100, wmsn.NewSPRGateway(p, m))

	sensor.OriginateData([]byte("temp=20C"))
	w.Run(5 * wmsn.Second)
	fmt.Printf("delivered %d in %d hop(s)\n", m.Delivered, int(m.MeanHops()))
	// Output: delivered 1 in 1 hop(s)
}

// ExampleProvisionKeys shows SecMLR key pre-distribution: the sensor's and
// gateway's pairwise keys agree without the master secret ever being
// deployed.
func ExampleProvisionKeys() {
	sensorKeys, gatewayKeys := wmsn.ProvisionKeys(
		[]byte("deployment-master-secret"),
		[]wmsn.NodeID{1, 2, 3},    // sensors
		[]wmsn.NodeID{1000, 1001}, // gateways
		16,                        // µTESLA intervals (MLR rounds)
	)
	agree := sensorKeys[2].Gateway[1001] == gatewayKeys[1001].Sensor[2]
	fmt.Println("pairwise keys agree:", agree)
	// Output: pairwise keys agree: true
}
