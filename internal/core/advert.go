package core

import (
	"encoding/binary"

	"wmsn/internal/node"
	"wmsn/internal/sim"
)

// Gateway liveness advertisements back the fault-tolerance path that plain
// SPR/MLR otherwise lack: a crashed gateway silently blackholes every sensor
// whose cached best route points at it. With Params.AdvertInterval set,
// gateways flood a tiny NOTIFY-framed beacon every interval; sensors track
// when each gateway was last heard (adverts, movement notifications and
// fresh route answers all count) and run a periodic sweep that drops routes
// through gateways whose liveness deadline — AdvertDeadFactor intervals
// after the last proof of life — has passed, then fail over to the
// next-best live entry. The whole mechanism is inert at the default
// AdvertInterval of 0: no timers are armed, no randomness is drawn, and
// unfaulted runs stay byte-identical.

// notifyAdvert is the NOTIFY payload discriminator for liveness
// advertisements, shared by SPR and MLR (mlr.go defines 0 = move,
// 1 = overload).
const notifyAdvert byte = 2

// marshalAdvert encodes an advert: discriminator plus the gateway's current
// feasible place (NoPlace under plain SPR), letting MLR sensors refresh
// their active-place map from the beacon alone.
func marshalAdvert(place int) []byte {
	buf := make([]byte, 3)
	buf[0] = notifyAdvert
	p := uint16(NoPlace)
	if place >= 0 {
		p = uint16(place)
	}
	binary.BigEndian.PutUint16(buf[1:], p)
	return buf
}

// parseAdvert decodes an advert payload; place is -1 under plain SPR.
func parseAdvert(b []byte) (place int, ok bool) {
	if len(b) < 3 || b[0] != notifyAdvert {
		return -1, false
	}
	p := binary.BigEndian.Uint16(b[1:])
	if p == uint16(NoPlace) {
		return -1, true
	}
	return int(p), true
}

// advertTimeout returns the liveness deadline offset: AdvertDeadFactor
// (default 2) advert intervals.
func (p Params) advertTimeout() sim.Duration {
	f := p.AdvertDeadFactor
	if f <= 0 {
		f = 2
	}
	return sim.Duration(f) * p.AdvertInterval
}

// startAdverts arms the periodic liveness beacon on a gateway device. The
// first advert goes out at a random fraction of the interval so co-located
// gateways do not flood in lockstep; send itself guards device liveness, so
// a crashed gateway falls silent and a recovered one resumes automatically.
func startAdverts(dev *node.Device, interval sim.Duration, send func()) {
	k := dev.World().Kernel()
	phase := sim.Duration(k.Rand().Int63n(int64(interval)))
	k.After(phase, func() {
		send()
		k.Every(interval, send)
	})
}
