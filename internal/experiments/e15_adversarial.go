package experiments

import (
	"fmt"

	"wmsn/internal/attack"
	"wmsn/internal/fault"
	"wmsn/internal/geom"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

// E15Adversarial sweeps deterministic compromise campaigns — the fault
// injector swapping a fraction of legitimate sensors for adversary stacks at
// mid-run — across attack family × attacker fraction × protocol. Where E9
// plants dedicated attacker nodes at build time, E15 models the paper's §2.3
// threat directly: previously honest insiders turning hostile mid-run, with
// the routing layer forced to recover around them. The claim under test is
// the same as §6's — SecMLR's end-to-end ACK failover holds delivery at or
// above plain MLR/SPR at every nonzero attacker fraction, while flooding
// survives on redundancy and pays for it in radio cost.
func E15Adversarial(o Opts) []*trace.Table {
	n := pick(o, 80, 40)
	side := pick(o, 180.0, 140.0)
	horizon := pick(o, 150*sim.Second, 80*sim.Second)
	seeds := o.seeds(2)

	attacks := []attack.Spec{
		{Kind: attack.KindSelectiveForward, DropProb: 0.5},
		{Kind: attack.KindBlackhole},
		{Kind: attack.KindReplay, Delay: 2 * sim.Second},
		{Kind: attack.KindSinkhole, FakeGateway: scenario.GatewayID(0), Place: 0},
		{Kind: attack.KindSpoofedRouting, FakeGateway: scenario.GatewayID(1), Place: 0},
	}
	fracs := pick(o, []float64{0.05, 0.1, 0.2}, []float64{0.1})
	protos := []scenario.Protocol{scenario.SecMLR, scenario.MLR, scenario.SPR, scenario.Flooding}

	type cell struct {
		attack string
		frac   float64
		proto  scenario.Protocol
	}
	var cells []cell
	for _, p := range protos {
		cells = append(cells, cell{"none", 0, p})
	}
	for _, sp := range attacks {
		for _, frac := range fracs {
			for _, p := range protos {
				cells = append(cells, cell{sp.String(), frac, p})
			}
		}
	}
	base := func(seed int64, proto scenario.Protocol) scenario.Config {
		return scenario.Config{
			Seed: seed, Protocol: proto, NumSensors: n, Side: side,
			SensorRange: 40, NumGateways: 2,
			// Static two-gateway round, zero ambient loss: every delivery
			// deficit below the ~1.0 baseline is attacker damage, not noise.
			Places:         geom.PlaceGrid(2, geom.Square(side)),
			Schedule:       [][]int{{0, 1}},
			RoundLen:       horizon,
			ReportInterval: 10 * sim.Second,
			RunFor:         horizon,
			SensorBattery:  1e6,
		}
	}
	specFor := func(name string) attack.Spec {
		for _, sp := range attacks {
			if sp.String() == name {
				return sp
			}
		}
		panic(fmt.Sprintf("unknown attack %q", name))
	}
	var cfgs []scenario.Config
	for ci, c := range cells {
		for s := 0; s < seeds; s++ {
			cfg := base(int64(1500+s), c.proto)
			if c.frac > 0 {
				// The victim shuffle is seeded per (attack, fraction, seed)
				// cell — NOT per protocol — so every protocol defends the
				// exact same compromised node set.
				aseed := int64(151000 + (ci/len(protos))*100 + s)
				cfg.Faults = fault.NewPlan().
					CompromiseFractionAt(sim.Time(horizon/4), c.frac, specFor(c.attack), aseed).
					Settle(pick(o, 15*sim.Second, 10*sim.Second))
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results := runConfigs(o, cfgs)

	// Per-campaign distributional export: one labeled cell per (attack ×
	// fraction × protocol), merging the cell's seeds. The cell snapshots
	// carry the failover-latency histogram (p50/p95/p99 per campaign) that
	// the mean-only text table cannot show.
	for ci, c := range cells {
		o.Cells.add("E15", map[string]string{
			"attack":   c.attack,
			"fraction": fmt.Sprintf("%.2f", c.frac),
			"protocol": string(c.proto),
		}, results[ci*seeds:(ci+1)*seeds]...)
	}

	tbl := trace.NewTable("E15: adversarial campaigns — delivery under compromised insiders",
		"attack", "frac", "protocol", "delivery", "dups", "reroutes", "failover",
		"compromised", "atk dropped", "atk injected")
	for ci, c := range cells {
		var delivery, dups, reroutes float64
		var compromised, atkDrop, atkInj, failovers uint64
		for s := 0; s < seeds; s++ {
			res := results[ci*seeds+s]
			m := res.Metrics
			delivery += m.DeliveryRatio()
			dups += float64(m.Duplicates)
			failovers += m.Failovers
			if rel := res.Reliability; rel != nil {
				reroutes += float64(rel.Reroutes)
				compromised += rel.Compromised
				atkDrop += rel.AttackerDropped
				atkInj += rel.AttackerInjected
			}
		}
		f := float64(seeds)
		tbl.AddRow(c.attack, fmt.Sprintf("%.0f%%", c.frac*100), string(c.proto),
			delivery/f, dups/f, reroutes/f, float64(failovers)/f, compromised, atkDrop, atkInj)
	}
	tbl.AddNote("%d sensors, %d seeds; compromise hits at t=%.0fs; victims are identical across protocols per "+
		"(attack, frac) cell; failover counts SecMLR end-to-end ACK reroutes", n, seeds, sim.Time(horizon/4).Seconds())
	return []*trace.Table{tbl}
}
