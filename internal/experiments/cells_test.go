package experiments

import (
	"encoding/json"
	"testing"

	"wmsn/internal/metrics"
)

// TestE15CellsCarryFailoverPercentiles pins the distributional export the
// mean-only text table cannot show: one labeled cell per (attack × fraction
// × protocol) campaign, each snapshot carrying the failover-latency
// histogram with p50/p95/p99, and cells byte-identical across worker counts.
func TestE15CellsCarryFailoverPercentiles(t *testing.T) {
	run := func(workers int) *CellSink {
		sink := &CellSink{}
		E15Adversarial(Opts{Quick: true, Seeds: 1, Workers: workers, Cells: sink})
		return sink
	}
	sink := run(1)

	// Quick scale: 4 unattacked baselines + 5 attacks × 1 fraction × 4
	// protocols.
	if want := 4 + 5*1*4; len(sink.Cells) != want {
		t.Fatalf("E15 emitted %d cells, want %d", len(sink.Cells), want)
	}
	failoverCells := 0
	for _, c := range sink.Cells {
		if c.Experiment != "E15" || c.Runs != 1 {
			t.Fatalf("bad cell header: %+v", c)
		}
		for _, key := range []string{"attack", "fraction", "protocol"} {
			if _, ok := c.Labels[key]; !ok {
				t.Fatalf("cell missing label %q: %+v", key, c.Labels)
			}
		}
		h, ok := c.Metrics.Histograms[metrics.HistFailoverLatencyUs.Name()]
		if !ok {
			continue
		}
		failoverCells++
		if h.Count == 0 || h.P50 > h.P95 || h.P95 > h.P99 || h.P99 > h.Max {
			t.Errorf("cell %v: degenerate failover percentiles %+v", c.Labels, h)
		}
	}
	if failoverCells == 0 {
		t.Fatal("no E15 cell carries a failover-latency histogram")
	}

	// Worker count must be invisible: same cells, byte for byte.
	a, _ := json.Marshal(sink.Cells)
	b, _ := json.Marshal(run(8).Cells)
	if string(a) != string(b) {
		t.Fatal("E15 cells differ between workers=1 and workers=8")
	}
}

// TestE13E14CellsLabeled checks the other two swept experiments export their
// grids: E13's scenario×protocol cells and E14's variant×loss cells, the
// latter carrying link-retry and queue-depth histograms for ARQ variants.
func TestE13E14CellsLabeled(t *testing.T) {
	sink := &CellSink{}
	E13Reliability(Opts{Quick: true, Seeds: 1, Cells: sink})
	if want := 4 + 2; len(sink.Cells) != want { // gateway_kill variants + churn variants
		t.Fatalf("E13 emitted %d cells, want %d", len(sink.Cells), want)
	}
	scenarios := map[string]bool{}
	for _, c := range sink.Cells {
		scenarios[c.Labels["scenario"]] = true
	}
	if !scenarios["gateway_kill"] || !scenarios["churn"] {
		t.Fatalf("E13 cell scenarios = %v", scenarios)
	}

	sink = &CellSink{}
	E14LinkARQ(Opts{Quick: true, Seeds: 1, Cells: sink})
	if want := 4 * 2; len(sink.Cells) != want { // variants × quick losses
		t.Fatalf("E14 emitted %d cells, want %d", len(sink.Cells), want)
	}
	retryCells := 0
	for _, c := range sink.Cells {
		if _, ok := c.Labels["loss"]; !ok {
			t.Fatalf("E14 cell missing loss label: %+v", c.Labels)
		}
		if h, ok := c.Metrics.Histograms[metrics.HistLinkRetries.Name()]; ok && h.Count > 0 {
			retryCells++
		}
	}
	if retryCells == 0 {
		t.Fatal("no E14 cell carries a link-retry histogram (ARQ variants should)")
	}
}

// A nil sink must be inert — experiments call add unconditionally.
func TestNilCellSink(t *testing.T) {
	var sink *CellSink
	sink.add("EX", map[string]string{"k": "v"}) // must not panic
}
