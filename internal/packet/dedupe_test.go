package packet

import (
	"math/rand"
	"testing"
)

func TestDedupeCheck(t *testing.T) {
	d := NewDedupe(0)
	if d.Check(1, 1) {
		t.Fatal("first sighting reported as duplicate")
	}
	if !d.Check(1, 1) {
		t.Fatal("second sighting not reported as duplicate")
	}
	// Distinct origin or seq is a distinct key.
	if d.Check(2, 1) || d.Check(1, 2) {
		t.Fatal("distinct keys reported as duplicates")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestDedupeBoundedReset(t *testing.T) {
	d := NewDedupe(4)
	for seq := uint32(0); seq < 4; seq++ {
		d.Check(1, seq)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	// The 5th distinct key overflows the bound: the set resets and keeps
	// only the newcomer...
	if d.Check(1, 4) {
		t.Fatal("newcomer after reset reported as duplicate")
	}
	if d.Len() != 1 {
		t.Fatalf("Len after reset = %d, want 1", d.Len())
	}
	// ...so an old key is (by design) re-admitted once.
	if d.Check(1, 0) {
		t.Fatal("bounded reset should forget old keys")
	}
}

func TestDedupeUnbounded(t *testing.T) {
	d := NewDedupe(0)
	for seq := uint32(0); seq < 10000; seq++ {
		if d.Check(7, seq) {
			t.Fatalf("seq %d reported as duplicate", seq)
		}
	}
	if d.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000 (no reset when unbounded)", d.Len())
	}
}

// TestDedupeOverflowSeqs drives the sparse-sequence fallback path and the
// boundary between the dense bitset and the overflow map.
func TestDedupeOverflowSeqs(t *testing.T) {
	d := NewDedupe(0)
	for _, seq := range []uint32{dedupeMaxDenseSeq - 1, dedupeMaxDenseSeq, dedupeMaxDenseSeq + 1, 1<<32 - 1} {
		if d.Check(5, seq) {
			t.Fatalf("seq %d: first sighting reported as duplicate", seq)
		}
		if !d.Check(5, seq) {
			t.Fatalf("seq %d: second sighting not reported as duplicate", seq)
		}
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	// A bounded reset must clear overflow keys too.
	b := NewDedupe(2)
	b.Check(1, dedupeMaxDenseSeq)
	b.Check(1, dedupeMaxDenseSeq+1)
	if b.Check(1, dedupeMaxDenseSeq+2) {
		t.Fatal("newcomer after reset reported as duplicate")
	}
	if b.Len() != 1 {
		t.Fatalf("Len after reset = %d, want 1", b.Len())
	}
	if b.Check(1, dedupeMaxDenseSeq) {
		t.Fatal("bounded reset should forget overflow keys")
	}
}

// TestDedupeMatchesMap cross-checks the bitset implementation against the
// straightforward map semantics it replaced, over a randomized workload
// with duplicates, many origins, bounded resets, and sparse sequences.
func TestDedupeMatchesMap(t *testing.T) {
	for _, limit := range []int{0, 64} {
		rng := rand.New(rand.NewSource(int64(42 + limit)))
		d := NewDedupe(limit)
		m := newMapDedupe(limit)
		for i := 0; i < 20000; i++ {
			origin := NodeID(rng.Intn(30))
			seq := uint32(rng.Intn(200))
			if rng.Intn(50) == 0 {
				seq += dedupeMaxDenseSeq // exercise the overflow path
			}
			got, want := d.Check(origin, seq), m.Check(origin, seq)
			if got != want {
				t.Fatalf("limit=%d step %d: Check(%d,%d) = %v, map says %v", limit, i, origin, seq, got, want)
			}
			if d.Len() != m.Len() {
				t.Fatalf("limit=%d step %d: Len = %d, map says %d", limit, i, d.Len(), m.Len())
			}
		}
	}
}

// mapDedupe is the pre-optimization map-backed implementation, kept as the
// semantic reference and the benchmark baseline.
type mapDedupe struct {
	limit int
	seen  map[DedupeKey]struct{}
}

func newMapDedupe(limit int) *mapDedupe {
	return &mapDedupe{limit: limit, seen: make(map[DedupeKey]struct{})}
}

func (d *mapDedupe) Check(origin NodeID, seq uint32) bool {
	key := DedupeKey{Origin: origin, Seq: seq}
	if _, dup := d.seen[key]; dup {
		return true
	}
	if d.limit > 0 && len(d.seen) >= d.limit {
		d.seen = make(map[DedupeKey]struct{})
	}
	d.seen[key] = struct{}{}
	return false
}

func (d *mapDedupe) Len() int { return len(d.seen) }

// dedupeWorkload mimics flood forwarding: each of `nodes` origins floods
// sequence numbers in order and every packet is seen `dup` times (once per
// neighbor that relays it).
func dedupeWorkload(check func(NodeID, uint32) bool, nodes, seqs, dup int) int {
	dups := 0
	for seq := 0; seq < seqs; seq++ {
		for n := 0; n < nodes; n++ {
			for rep := 0; rep <= dup; rep++ {
				if check(NodeID(n), uint32(seq)) {
					dups++
				}
			}
		}
	}
	return dups
}

func BenchmarkDedupe(b *testing.B) {
	const nodes, seqs, dup = 30, 100, 5
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := NewDedupe(0)
			if got := dedupeWorkload(d.Check, nodes, seqs, dup); got != nodes*seqs*dup {
				b.Fatalf("dups = %d", got)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := newMapDedupe(0)
			if got := dedupeWorkload(d.Check, nodes, seqs, dup); got != nodes*seqs*dup {
				b.Fatalf("dups = %d", got)
			}
		}
	})
}
