// Forest fire: the §4.3 load-balance scenario. A sensor field monitors a
// forest; at mid-run a fire breaks out in the north-west corner and the
// sensors there start reporting ten times faster. Under static shortest-path
// routing the gateway nearest the fire absorbs almost everything; MLR's
// rotating gateways spread the same load across all three.
//
//	go run ./examples/forestfire
package main

import (
	"fmt"
	"os"
	"sort"

	"wmsn"
)

const (
	side    = 240.0
	sensors = 120
	horizon = 300 * wmsn.Second
)

func main() {
	fmt.Println("== forest-fire load scenario: static SPR vs rotating MLR ==")
	for _, proto := range []wmsn.Protocol{wmsn.SPR, wmsn.MLR} {
		run(proto)
	}
}

func run(proto wmsn.Protocol) {
	fireZone := wmsn.Rect{X0: 0, Y0: side * 0.75, X1: side / 4, Y1: side}
	net, err := wmsn.BuildE(wmsn.Config{
		Seed:        7,
		Protocol:    proto,
		NumSensors:  sensors,
		Side:        side,
		SensorRange: 40,
		NumGateways: 3,
		RoundLen:    40 * wmsn.Second, // MLR rotation period
		RunFor:      horizon,
		// Background monitoring traffic.
		ReportInterval: 20 * wmsn.Second,
		SensorBattery:  1e6,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "forestfire:", err)
		os.Exit(1)
	}

	// The fire: at T/2, sensors inside the zone begin reporting every 2 s.
	k := net.World.Kernel()
	k.After(horizon/2, func() {
		burning := 0
		for _, id := range net.SensorIDs {
			d := net.World.Device(id)
			if d == nil || !d.Alive() || !fireZone.Contains(d.Pos()) {
				continue
			}
			burning++
			id := id
			k.Every(2*wmsn.Second, func() {
				if o, ok := net.Originators[id]; ok {
					o.OriginateData([]byte("TEMP-CRITICAL"))
				}
			})
		}
		fmt.Printf("  [%s] fire ignited: %d sensors reporting at 0.5 Hz\n",
			net.Cfg.Protocol, burning)
	})

	res := net.RunTraffic()
	m := res.Metrics

	// Gateway load distribution.
	type load struct {
		gw    wmsn.NodeID
		count uint64
	}
	var loads []load
	var total uint64
	for gw, c := range m.PerGateway() {
		loads = append(loads, load{gw, c})
		total += c
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].count > loads[j].count })

	fmt.Printf("  [%s] delivery %.1f%%, %d readings total\n",
		proto, 100*m.DeliveryRatio(), m.Delivered)
	for _, l := range loads {
		fmt.Printf("      %v absorbed %5d (%.0f%%)\n", l.gw, l.count,
			100*float64(l.count)/float64(total))
	}
	fmt.Printf("      imbalance (busiest/mean): %.2f — 1.00 is perfectly even\n\n",
		m.GatewayLoadImbalance())
}
