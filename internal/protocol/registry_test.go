package protocol_test

import (
	"strings"
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/protocol"
	"wmsn/internal/runner"
	"wmsn/internal/scenario"
	"wmsn/internal/sim"
)

func TestBuiltinsRegistered(t *testing.T) {
	want := []protocol.ID{
		protocol.Direct, protocol.Flooding, protocol.Gossiping, protocol.LEACH,
		protocol.MCFA, protocol.MLR, protocol.PEGASIS, protocol.SecMLR,
		protocol.SPIN, protocol.SPR,
	}
	ids := protocol.IDs()
	have := map[protocol.ID]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("builtin %q not registered (have %v)", id, ids)
		}
	}
	// IDs is sorted.
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := protocol.Lookup("carrier-pigeon"); ok {
		t.Fatal("Lookup invented a protocol")
	}
}

func TestRegisterRejectsBadBuilders(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty ID", func() {
		protocol.Register(protocol.Builder{Build: func(*protocol.Env) (*protocol.Instance, error) { return nil, nil }})
	})
	mustPanic("nil Build", func() {
		protocol.Register(protocol.Builder{ID: "nil-build"})
	})
	mustPanic("duplicate", func() {
		protocol.Register(protocol.Builder{ID: protocol.SPR,
			Build: func(*protocol.Env) (*protocol.Instance, error) { return nil, nil }})
	})
}

// TestEveryRegisteredProtocolRuns is the registry's liveness gate: every
// protocol that registers a Builder — built-in or third-party — must come
// up in a small scenario and deliver data. A protocol can never be
// registered but un-runnable.
func TestEveryRegisteredProtocolRuns(t *testing.T) {
	ids := protocol.IDs()
	type verdict struct {
		id                   protocol.ID
		generated, delivered uint64
	}
	// Runs fan out on the parallel runner and fold back in submission
	// order, so the report below is deterministic.
	verdicts := runner.MapReduce(0, len(ids),
		func(i int) verdict {
			b, _ := protocol.Lookup(ids[i])
			gw := 1
			if b.Caps.MultiGateway {
				gw = 3
			}
			res := scenario.Run(scenario.Config{
				Seed: 7, Protocol: ids[i], NumSensors: 40, Side: 120,
				SensorRange: 35, NumGateways: gw, RunFor: 90 * sim.Second,
				RoundLen: 30 * sim.Second, ReportInterval: 15 * sim.Second,
			})
			return verdict{id: ids[i], generated: res.Metrics.Generated, delivered: res.Metrics.Delivered}
		},
		[]verdict(nil),
		func(acc []verdict, v verdict) []verdict { return append(acc, v) })
	for _, v := range verdicts {
		v := v
		t.Run(string(v.id), func(t *testing.T) {
			if v.generated == 0 {
				t.Fatalf("%s generated no traffic", v.id)
			}
			if v.delivered == 0 {
				t.Fatalf("%s delivered nothing (generated %d)", v.id, v.generated)
			}
		})
	}
}

// oneHop is the custom protocol of TestCustomProtocolViaRegistry: sensors
// unicast every reading straight to the first gateway.
type oneHopSensor struct {
	dev     *node.Device
	metrics interface {
		RecordGenerated(packet.NodeID, uint32, sim.Time)
	}
	sink packet.NodeID
	seq  uint32
}

func (s *oneHopSensor) Start(dev *node.Device)           { s.dev = dev }
func (s *oneHopSensor) HandleMessage(pkt *packet.Packet) {}

func (s *oneHopSensor) OriginateData(payload []byte) {
	if s.dev == nil || !s.dev.Alive() {
		return
	}
	s.seq++
	s.metrics.RecordGenerated(s.dev.ID(), s.seq, s.dev.Now())
	s.dev.Send(&packet.Packet{
		Kind: packet.KindData, From: s.dev.ID(), To: s.sink,
		Origin: s.dev.ID(), Target: s.sink, Seq: s.seq, TTL: 1,
		Payload: payload,
	})
}

type oneHopSink struct {
	dev     *node.Device
	metrics interface {
		RecordDelivered(packet.NodeID, uint32, packet.NodeID, int, sim.Time)
	}
}

func (g *oneHopSink) Start(dev *node.Device) { g.dev = dev }
func (g *oneHopSink) HandleMessage(pkt *packet.Packet) {
	if pkt.Kind == packet.KindData {
		g.metrics.RecordDelivered(pkt.Origin, pkt.Seq, g.dev.ID(), int(pkt.Hops)+1, g.dev.Now())
	}
}

// TestCustomProtocolViaRegistry pins the acceptance criterion of the
// registry refactor: a protocol defined and registered entirely in a test
// file runs through the unmodified scenario harness.
func TestCustomProtocolViaRegistry(t *testing.T) {
	const custom protocol.ID = "test-one-hop"
	protocol.Register(protocol.Builder{
		ID:   custom,
		Caps: protocol.Capabilities{},
		Build: func(env *protocol.Env) (*protocol.Instance, error) {
			inst := &protocol.Instance{Originators: map[packet.NodeID]protocol.Originator{}}
			sink := env.GatewayIDs[0]
			for i, pos := range env.SensorPos {
				id := env.SensorIDs[i]
				st := &oneHopSensor{metrics: env.Metrics, sink: sink}
				inst.Originators[id] = st
				env.World.AddSensor(id, pos, env.SensorRange, 0, env.Wrap(id, st))
			}
			env.World.AddGateway(sink, env.Places[0], env.SensorRange, 500, &oneHopSink{metrics: env.Metrics})
			return inst, nil
		},
	})
	res := scenario.Run(scenario.Config{
		Seed: 3, Protocol: custom, NumSensors: 25, Side: 60,
		SensorRange: 100, NumGateways: 1, RunFor: 60 * sim.Second,
		ReportInterval: 10 * sim.Second,
	})
	if res.Metrics.Generated == 0 || res.Metrics.Delivered == 0 {
		t.Fatalf("custom protocol did not run: generated=%d delivered=%d",
			res.Metrics.Generated, res.Metrics.Delivered)
	}
	if res.Metrics.DeliveryRatio() < 0.99 {
		t.Fatalf("one-hop delivery ratio %v with everyone in range", res.Metrics.DeliveryRatio())
	}
}

func TestBuilderErrorSurfacesAsScenarioPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic for impossible schedule")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "cannot build schedule") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	// 3 gateways over 2 places: no rotation schedule exists.
	scenario.Build(scenario.Config{Seed: 1, Protocol: protocol.MLR,
		NumSensors: 10, NumGateways: 3, Places: []geom.Point{{X: 1, Y: 1}, {X: 5, Y: 5}}})
}
