package runner

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersBySubmissionIndex(t *testing.T) {
	// Jobs finish in reverse order (early indices sleep longest); the
	// result must still come back in index order.
	n := 32
	out := Map(8, n, func(i int) int {
		time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
		return i * i
	})
	if len(out) != n {
		t.Fatalf("Map returned %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapMatchesSequential(t *testing.T) {
	job := func(i int) []int64 {
		// Per-job RNG seeded by index, as real experiment jobs do.
		rng := rand.New(rand.NewSource(int64(i)))
		vals := make([]int64, 16)
		for j := range vals {
			vals[j] = rng.Int63()
		}
		return vals
	}
	seq := Map(1, 20, job)
	par := Map(8, 20, job)
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("job %d diverges at value %d: %d vs %d", i, j, seq[i][j], par[i][j])
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	// Even on one CPU goroutines interleave at the sleep below, so the
	// bound stays observable on every machine.
	const workers = 3
	var cur, peak atomic.Int64
	Map(workers, 24, func(i int) int {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return i
	})
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", got, workers)
	}
}

func TestMapEveryJobRunsExactlyOnce(t *testing.T) {
	var counts [100]atomic.Int32
	Map(7, len(counts), func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times, want 1", i, got)
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("Map with n=0 returned %v, want nil", out)
	}
	if out := Map(0, 3, func(i int) int { return i }); len(out) != 3 {
		t.Fatalf("Map with workers=0 (default) returned %d results, want 3", len(out))
	}
	if out := Map(-1, 1, func(i int) int { return 7 }); out[0] != 7 {
		t.Fatalf("Map n=1 = %v", out)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != DefaultWorkers() {
		t.Fatalf("Resolve(0) = %d, want %d", got, DefaultWorkers())
	}
	if got := Resolve(-3); got != DefaultWorkers() {
		t.Fatalf("Resolve(-3) = %d, want %d", got, DefaultWorkers())
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d, want 5", got)
	}
}

func TestMapEachDeliversInOrderExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		n := 25
		var got []int
		var errs int
		MapEach(workers, n, func(i int) (int, error) {
			// Reverse-staggered finish order stresses the reorder buffer.
			time.Sleep(time.Duration(n-i) * time.Millisecond / 8)
			if i%7 == 3 {
				return 0, errTest
			}
			return i * 10, nil
		}, func(i int, v int, err error) {
			if err != nil {
				errs++
				if i%7 != 3 {
					t.Fatalf("workers=%d: unexpected error at index %d", workers, i)
				}
				return
			}
			if v != i*10 {
				t.Fatalf("workers=%d: index %d delivered %d, want %d", workers, i, v, i*10)
			}
			got = append(got, i)
		})
		want := 0
		for _, i := range got {
			for want%7 == 3 {
				want++
			}
			if i != want {
				t.Fatalf("workers=%d: delivery order %v breaks at %d", workers, got, i)
			}
			want++
		}
		if errs != 4 { // indices 3, 10, 17, 24
			t.Fatalf("workers=%d: delivered %d errors, want 4", workers, errs)
		}
	}
}

var errTest = fmt.Errorf("synthetic job failure")

func TestMapEachMatchesMap(t *testing.T) {
	job := func(i int) []int64 {
		rng := rand.New(rand.NewSource(int64(i)))
		vals := make([]int64, 8)
		for j := range vals {
			vals[j] = rng.Int63()
		}
		return vals
	}
	want := Map(1, 16, job)
	for _, workers := range []int{1, 8} {
		i := 0
		MapEach(workers, 16, func(j int) ([]int64, error) { return job(j), nil },
			func(j int, v []int64, err error) {
				if err != nil || j != i {
					t.Fatalf("workers=%d: delivery (%d, %v) out of order at %d", workers, j, err, i)
				}
				for x := range v {
					if v[x] != want[j][x] {
						t.Fatalf("workers=%d: job %d value %d diverges from Map", workers, j, x)
					}
				}
				i++
			})
		if i != 16 {
			t.Fatalf("workers=%d: %d deliveries, want 16", workers, i)
		}
	}
}

func TestMapEachEmptyIsNoop(t *testing.T) {
	MapEach(4, 0, func(i int) (int, error) { return i, nil },
		func(int, int, error) { t.Fatal("deliver called for n=0") })
}

func TestMapReduceFoldsInSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		got := MapReduce(workers, 20,
			func(i int) int { return i },
			[]int(nil),
			func(acc []int, v int) []int { return append(acc, v) })
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: fold order broken at %d: %v", workers, i, got)
			}
		}
		// A non-commutative fold gives the same answer at any width.
		s := MapReduce(workers, 10,
			func(i int) string { return string(rune('a' + i)) },
			"", func(acc, v string) string { return acc + v })
		if s != "abcdefghij" {
			t.Fatalf("workers=%d: fold = %q", workers, s)
		}
	}
}
