package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wmsn/internal/scenario"
	"wmsn/internal/sim"
)

// newTestServer starts a service behind httptest and tears both down.
func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// quickBody is a small three-seed sweep that finishes in well under a second.
const quickBody = `{"run":{"protocol":"spr","num_sensors":25,"run_for_s":10},"seeds":3}`

// longBody is a dense, chatty, hour-long run: many wall-clock seconds of
// work uncanceled, so cancellation paths have something to interrupt.
const longBody = `{"run":{"protocol":"spr","num_sensors":300,"side":300,"sensor_range":40,
	"report_interval_s":0.1,"run_for_s":3600}}`

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON[T any](t *testing.T, url string) (int, T) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, v
}

// submit posts a job and returns its accepted ID.
func submit(t *testing.T, base, body string) string {
	t.Helper()
	resp, b := postJSON(t, base+"/v1/runs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, b)
	}
	var acc submitAccepted
	if err := json.Unmarshal(b, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" {
		t.Fatalf("submit: empty job ID in %s", b)
	}
	return acc.ID
}

// waitState polls a job's status until it reaches any of the wanted states.
func waitState(t *testing.T, base, id string, want ...string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, st := getJSON[Status](t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q, want one of %v", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// readStreamLines consumes an entire JSONL stream body.
func readStreamLines(t *testing.T, r io.Reader) []StreamLine {
	t.Helper()
	var lines []StreamLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		var l StreamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestSubmitStatusAndStreamReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := submit(t, ts.URL, quickBody)
	st := waitState(t, ts.URL, id, StateDone)
	if st.Runs != 3 || st.Delivered != 3 || st.Errors != 0 {
		t.Fatalf("status = %+v, want 3/3 delivered with no errors", st)
	}

	// A finished job's stream replays in full from the buffer.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	lines := readStreamLines(t, resp.Body)
	resp.Body.Close()
	if lines[0].Type != "job" || lines[0].ID != id {
		t.Fatalf("first line = %+v, want the job header", lines[0])
	}
	last := lines[len(lines)-1]
	if last.Type != "done" || last.State != StateDone || last.Delivered != 3 {
		t.Fatalf("terminal line = %+v", last)
	}

	// Results arrive in ascending run order with the exact bytes a direct
	// library run produces.
	var results []StreamLine
	for _, l := range lines {
		if l.Type == "result" {
			results = append(results, l)
		}
	}
	if len(results) != 3 {
		t.Fatalf("got %d result lines, want 3", len(results))
	}
	for i, l := range results {
		if l.Run != i {
			t.Fatalf("result %d is for run %d; delivery must be in submission order", i, l.Run)
		}
		direct, err := scenario.RunE(scenario.Config{
			Seed: int64(i), Protocol: scenario.SPR, NumSensors: 25, RunFor: 10 * sim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(direct.Metrics.Snapshot())
		got, _ := json.Marshal(l.Metrics)
		if !bytes.Equal(got, want) {
			t.Fatalf("run %d metrics over HTTP diverge from a direct run:\n got %s\nwant %s", i, got, want)
		}
		if l.Seed != int64(i) {
			t.Fatalf("run %d reported seed %d", i, l.Seed)
		}
	}
}

func TestSubmitValidationRejects(t *testing.T) {
	svc, ts := newTestServer(t, Config{Limits: Limits{MaxNodes: 100, MaxRunsPerJob: 4}})
	cases := []struct {
		name, body, wantIn string
	}{
		{"unknown field", `{"run":{"protocol":"spr","bogus":1}}`, "bogus"},
		{"empty", `{}`, "empty request"},
		{"both forms", `{"run":{"protocol":"spr"},"runs":[{"protocol":"spr"}]}`, "not both"},
		{"too many seeds", `{"run":{"protocol":"spr","num_sensors":20,"run_for_s":1},"seeds":9}`, "run limit"},
		{"too many nodes", `{"run":{"protocol":"spr","num_sensors":500,"run_for_s":1}}`, "nodes exceeds"},
		{"horizon", `{"run":{"protocol":"spr","num_sensors":20,"run_for_s":90000}}`, "horizon"},
		{"trace with shards", `{"run":{"protocol":"spr","num_sensors":20,"run_for_s":1,"shards":2},"trace":true}`, "incompatible with shards"},
		{"bad fault kind", `{"run":{"protocol":"spr","num_sensors":20,"run_for_s":1,"faults":[{"kind":"meteor","at_s":1}]}}`, "unknown kind"},
		{"negative workers", `{"run":{"protocol":"spr","num_sensors":20,"run_for_s":1},"workers":-1}`, "negative"},
		{"deadline too long", `{"run":{"protocol":"spr","num_sensors":20,"run_for_s":1},"deadline_s":100000}`, "deadline_s"},
	}
	for _, tc := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/runs", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %s", tc.name, resp.StatusCode, b)
		}
		if !strings.Contains(string(b), tc.wantIn) {
			t.Fatalf("%s: body %s does not mention %q", tc.name, b, tc.wantIn)
		}
	}
	stats := svc.Stats()
	if stats.RejectedInvalid != uint64(len(cases)) {
		t.Fatalf("rejected_invalid = %d, want %d", stats.RejectedInvalid, len(cases))
	}
	if stats.Submitted != 0 {
		t.Fatalf("submitted = %d after rejections, want 0", stats.Submitted)
	}
}

func TestMultiErrorValidationListsEverything(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"run":{"protocol":"spr","num_sensors":20,"run_for_s":90000},"workers":-1,"deadline_s":-5}`
	resp, b := postJSON(t, ts.URL+"/v1/runs", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, frag := range []string{"horizon", "workers", "deadline_s"} {
		if !strings.Contains(string(b), frag) {
			t.Fatalf("joined error %s is missing the %q problem", b, frag)
		}
	}
}

func TestSubmitShedsWhenQueueFull(t *testing.T) {
	svc, ts := newTestServer(t, Config{QueueDepth: 1, Schedulers: 1})
	// One long job occupies the scheduler, the next fills the queue; within
	// three submissions at least one must shed with 429 + Retry-After.
	var accepted []string
	shed := 0
	for i := 0; i < 3; i++ {
		resp, b := postJSON(t, ts.URL+"/v1/runs", longBody)
		switch resp.StatusCode {
		case http.StatusAccepted:
			var acc submitAccepted
			if err := json.Unmarshal(b, &acc); err != nil {
				t.Fatal(err)
			}
			accepted = append(accepted, acc.ID)
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without a Retry-After header")
			}
		default:
			t.Fatalf("submission %d: status %d, body %s", i, resp.StatusCode, b)
		}
	}
	if shed == 0 {
		t.Fatal("queue depth 1 + busy scheduler accepted 3 long jobs without shedding")
	}
	// Shed jobs must not appear anywhere in the lifecycle counters.
	stats := svc.Stats()
	if stats.Shed != uint64(shed) || stats.Submitted != uint64(len(accepted)) {
		t.Fatalf("stats = %+v, want shed %d and submitted %d", stats, shed, len(accepted))
	}
	// Cancel the accepted jobs so cleanup is prompt, and verify DELETE works.
	for _, id := range accepted {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		waitState(t, ts.URL, id, StateCanceled)
	}
	if got := svc.Stats(); got.Canceled != uint64(len(accepted)) || got.Queued != 0 || got.Active != 0 {
		t.Fatalf("after cancel: stats = %+v", got)
	}
}

func TestInlineStreamCarriesTraceSeriesResult(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"run":{"protocol":"spr","num_sensors":25,"run_for_s":30},"trace":true,"series_s":10}`
	resp, err := http.Post(ts.URL+"/v1/runs?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	lines := readStreamLines(t, resp.Body)
	resp.Body.Close()
	counts := map[string]int{}
	for _, l := range lines {
		counts[l.Type]++
	}
	if counts["job"] != 1 || counts["done"] != 1 || counts["result"] != 1 {
		t.Fatalf("stream framing counts = %v", counts)
	}
	if counts["trace"] == 0 {
		t.Fatal("trace:true produced no trace lines")
	}
	if counts["series"] != 1 {
		t.Fatalf("series_s produced %d series lines, want 1", counts["series"])
	}
	for _, l := range lines {
		if l.Type == "trace" && l.Ev == nil {
			t.Fatal("trace line without an embedded event")
		}
		if l.Type == "series" && (l.Series == nil || len(l.Series.Rows) == 0) {
			t.Fatalf("series line is empty: %+v", l)
		}
	}
}

func TestTraceCapTruncatesWithNotice(t *testing.T) {
	_, ts := newTestServer(t, Config{Limits: Limits{MaxTraceLines: 10}})
	body := `{"run":{"protocol":"spr","num_sensors":25,"run_for_s":30},"trace":true}`
	resp, err := http.Post(ts.URL+"/v1/runs?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	lines := readStreamLines(t, resp.Body)
	resp.Body.Close()
	traces, notices := 0, 0
	for _, l := range lines {
		switch l.Type {
		case "trace":
			traces++
		case "notice":
			notices++
			if !strings.Contains(l.Error, "truncated") {
				t.Fatalf("notice = %+v", l)
			}
		}
	}
	if traces != 10 || notices != 1 {
		t.Fatalf("got %d trace lines and %d notices, want 10 and 1", traces, notices)
	}
}

func TestDeleteCancelsRunningJobPromptly(t *testing.T) {
	svc, ts := newTestServer(t, Config{QueueDepth: 4, Schedulers: 1})
	id := submit(t, ts.URL, longBody)
	waitState(t, ts.URL, id, StateRunning)
	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, id, StateCanceled)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancel took %v to reach the kernel", elapsed)
	}
	if stats := svc.Stats(); stats.Canceled != 1 || stats.Active != 0 {
		t.Fatalf("stats after cancel = %+v", stats)
	}
}

func TestStreamDisconnectCancelsOnlyItsJob(t *testing.T) {
	svc, ts := newTestServer(t, Config{QueueDepth: 4, Schedulers: 2})
	victim := submit(t, ts.URL, longBody)
	bystander := submit(t, ts.URL, longBody)
	waitState(t, ts.URL, victim, StateRunning)
	waitState(t, ts.URL, bystander, StateRunning)

	// Attach a stream to the victim, read its header, then vanish.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+victim+"/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("reading stream header: %v", err)
	}
	cancel()
	resp.Body.Close()

	st := waitState(t, ts.URL, victim, StateCanceled)
	if st.State != StateCanceled {
		t.Fatalf("victim state = %q", st.State)
	}
	// The bystander must be untouched by its neighbor's disconnect.
	if st := waitState(t, ts.URL, bystander, StateRunning); st.State != StateRunning {
		t.Fatalf("bystander state = %q after victim disconnect", st.State)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().ClientDisconnects != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("client_disconnects = %d, want 1", svc.Stats().ClientDisconnects)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Clean up the bystander.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+bystander, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitState(t, ts.URL, bystander, StateCanceled)
}

func TestDetachedStreamDisconnectKeepsJobRunning(t *testing.T) {
	svc, ts := newTestServer(t, Config{QueueDepth: 4, Schedulers: 1})
	id := submit(t, ts.URL, longBody)
	waitState(t, ts.URL, id, StateRunning)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/stream?detach=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()
	time.Sleep(200 * time.Millisecond) // give a wrongful cancel time to land
	if st := waitState(t, ts.URL, id, StateRunning); st.State != StateRunning {
		t.Fatalf("detached disconnect canceled the job (state %q)", st.State)
	}
	if svc.Stats().ClientDisconnects != 0 {
		t.Fatal("detached disconnect counted as a canceling disconnect")
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitState(t, ts.URL, id, StateCanceled)
}

func TestHealthzStatsAndProtocols(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, health := getJSON[map[string]any](t, ts.URL + "/healthz")
	if code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	code, stats := getJSON[Stats](t, ts.URL+"/stats")
	if code != http.StatusOK || stats.QueueDepth != 64 {
		t.Fatalf("stats: %d %+v", code, stats)
	}
	code, protos := getJSON[map[string][]string](t, ts.URL+"/v1/protocols")
	if code != http.StatusOK || len(protos["protocols"]) == 0 {
		t.Fatalf("protocols: %d %v", code, protos)
	}
	found := false
	for _, p := range protos["protocols"] {
		if p == "spr" {
			found = true
		}
	}
	if !found {
		t.Fatalf("protocol list %v is missing spr", protos["protocols"])
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestDeadlineCancelsJob(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	// A one-second wall-clock budget against an hour-long dense run.
	body := strings.TrimSuffix(strings.TrimSpace(longBody), "}") + `,"deadline_s":1}`
	id := submit(t, ts.URL, body)
	st := waitState(t, ts.URL, id, StateCanceled, StateFailed, StateDone)
	if st.State != StateCanceled {
		t.Fatalf("deadline-limited job ended %q, want canceled", st.State)
	}
	if svc.Stats().Canceled != 1 {
		t.Fatalf("stats = %+v", svc.Stats())
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	svc := New(Config{QueueDepth: 8, Schedulers: 1})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submit(t, ts.URL, longBody))
	}
	svc.Close()
	for _, id := range ids {
		j := svc.job(id)
		if j == nil {
			t.Fatalf("job %s vanished", id)
		}
		if st := j.status(); st.State != StateCanceled {
			t.Fatalf("job %s state after Close = %q, want canceled", id, st.State)
		}
	}
	stats := svc.Stats()
	if stats.Queued != 0 || stats.Active != 0 {
		t.Fatalf("gauges nonzero after Close: %+v", stats)
	}
	if stats.Canceled != 3 {
		t.Fatalf("canceled = %d, want 3", stats.Canceled)
	}
	// Submissions after Close are refused.
	resp, _ := postJSON(t, ts.URL+"/v1/runs", quickBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after Close = %d, want 503", resp.StatusCode)
	}
}

func TestFaultSpecRoundTrips(t *testing.T) {
	// A fault plan over HTTP must act on the simulation: killing the only
	// gateway early must crater delivery versus the same run without faults.
	_, ts := newTestServer(t, Config{})
	base := `{"run":{"protocol":"spr","num_sensors":40,"num_gateways":1,"run_for_s":60%s}}`
	healthyID := submit(t, ts.URL, fmt.Sprintf(base, ""))
	faultyID := submit(t, ts.URL, fmt.Sprintf(base, `,"faults":[{"kind":"kill_gateway","at_s":5,"gateway":0}]`))
	waitState(t, ts.URL, healthyID, StateDone)
	waitState(t, ts.URL, faultyID, StateDone)
	delivered := func(id string) float64 {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		for _, l := range readStreamLines(t, resp.Body) {
			if l.Type == "result" {
				return float64(l.Metrics.Delivered)
			}
		}
		t.Fatalf("job %s stream had no result line", id)
		return 0
	}
	h, f := delivered(healthyID), delivered(faultyID)
	if f >= h {
		t.Fatalf("kill_gateway fault did not reduce delivery: healthy %v, faulty %v", h, f)
	}
}
