package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLoad64ConcurrentSubmissions is the service's acceptance load test:
// 64 clients submit simultaneously against a deliberately tiny queue, retry
// on 429, and every accepted job must finish with its result delivered
// exactly once — zero lost, zero duplicated — while the queue bound actually
// sheds and every /stats counter reconciles at the end.
func TestLoad64ConcurrentSubmissions(t *testing.T) {
	const clients = 64
	svc := New(Config{QueueDepth: 2, Schedulers: 1})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer svc.Close()

	goroutinesBefore := runtime.NumGoroutine()

	// Phase 1 — prove the queue bound. With a depth-2 queue and one
	// scheduler, four back-to-back long submissions cannot all be absorbed:
	// at most one is running and two queued when the fourth arrives, so at
	// least one must shed — deterministically, whatever the scheduling.
	var preAccepted []string
	preShed := 0
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(longBody))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var acc submitAccepted
			if err := json.Unmarshal(b, &acc); err != nil {
				t.Fatal(err)
			}
			preAccepted = append(preAccepted, acc.ID)
		case http.StatusTooManyRequests:
			preShed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without a Retry-After header")
			}
		default:
			t.Fatalf("phase 1 submission %d: status %d, body %s", i, resp.StatusCode, b)
		}
	}
	if preShed == 0 {
		t.Fatal("no submission was shed; the queue bound is not being enforced")
	}
	// Clear the long jobs out of the way before the burst.
	for _, id := range preAccepted {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for _, id := range preAccepted {
		waitState(t, ts.URL, id, StateCanceled)
	}

	// Phase 2 — the burst. Each client's job is one distinctive seed, so
	// results are attributable.
	ids := make([]string, clients)
	var retries64 int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"run":{"protocol":"spr","seed":%d,"num_sensors":40,"run_for_s":30}}`, 1000+c)
			for attempt := 0; ; attempt++ {
				resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var acc submitAccepted
					if err := json.Unmarshal(b, &acc); err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					ids[c] = acc.ID
					return
				case http.StatusTooManyRequests:
					mu.Lock()
					retries64++
					mu.Unlock()
					if attempt > 2000 {
						t.Errorf("client %d: still shed after %d attempts", c, attempt)
						return
					}
					time.Sleep(5 * time.Millisecond)
				default:
					t.Errorf("client %d: status %d, body %s", c, resp.StatusCode, b)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every client got a distinct job ID.
	seen := make(map[string]bool, clients)
	for c, id := range ids {
		if id == "" {
			t.Fatalf("client %d never got a job ID", c)
		}
		if seen[id] {
			t.Fatalf("job ID %s issued twice", id)
		}
		seen[id] = true
	}

	// Wait for the fleet to drain; each job delivers its one run exactly once.
	for c, id := range ids {
		st := waitState(t, ts.URL, id, StateDone, StateFailed, StateCanceled)
		if st.State != StateDone {
			t.Fatalf("client %d job %s ended %q", c, id, st.State)
		}
		if st.Runs != 1 || st.Delivered != 1 || st.Errors != 0 {
			t.Fatalf("client %d job %s: %+v, want exactly one delivered result", c, id, st)
		}
	}

	// The seed in each job's result must be the seed that client submitted —
	// results were not crossed between jobs.
	for c, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
		if err != nil {
			t.Fatal(err)
		}
		results := 0
		for _, l := range readStreamLines(t, resp.Body) {
			if l.Type == "result" {
				results++
				if l.Seed != int64(1000+c) {
					t.Fatalf("client %d job %s got seed %d's result", c, id, l.Seed)
				}
			}
		}
		resp.Body.Close()
		if results != 1 {
			t.Fatalf("client %d job %s stream has %d result lines, want 1", c, id, results)
		}
	}

	// Every 429 any client saw is accounted as a shed, and nothing else is.
	stats := svc.Stats()
	if int64(stats.Shed) != int64(preShed)+retries64 {
		t.Fatalf("service counted %d sheds, clients saw %d 429s", stats.Shed, int64(preShed)+retries64)
	}

	// Lifecycle counters reconcile exactly:
	// submitted == completed + canceled + failed (+ queued + active == 0).
	wantSubmitted := uint64(clients + len(preAccepted))
	if stats.Submitted != wantSubmitted {
		t.Fatalf("submitted = %d, want %d", stats.Submitted, wantSubmitted)
	}
	if stats.Completed != clients || stats.Failed != 0 || stats.Canceled != uint64(len(preAccepted)) {
		t.Fatalf("lifecycle counters do not reconcile: %+v", stats)
	}
	if stats.Queued != 0 || stats.Active != 0 {
		t.Fatalf("gauges nonzero after drain: %+v", stats)
	}
	// Every burst run delivered exactly once; the only failed runs are the
	// phase-1 jobs canceled mid-run (one run each; a job canceled while
	// still queued runs nothing at all).
	if stats.RunsDelivered != clients {
		t.Fatalf("runs_delivered = %d, want %d", stats.RunsDelivered, clients)
	}
	if stats.RunsFailed > uint64(len(preAccepted)) {
		t.Fatalf("runs_failed = %d, want at most the %d canceled long jobs",
			stats.RunsFailed, len(preAccepted))
	}

	// The burst must not leak goroutines once it drains. Idle keep-alive
	// connections (client and server halves) are not leaks — drop them
	// before counting.
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before load, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
