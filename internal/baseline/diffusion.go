package baseline

import (
	"encoding/binary"

	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
)

// Directed Diffusion (§2.2.1 [22]) is the data-centric pull paradigm: the
// sink floods an *interest* naming the data it wants; nodes remember the
// neighbors the interest arrived from (gradients); sources send exploratory
// data down every gradient; the sink *reinforces* the neighbor that
// delivered first, and the reinforcement walks back along each node's
// first-delivery upstream, leaving one low-latency reinforced path that
// subsequent data unicasts along. In-network duplicate suppression plays
// the role of aggregation.
//
// Wire mapping (payload markers): INTEREST 'I' on RREQ, exploratory data
// 'X' and reinforced data 'D' on DATA, REINFORCE 'R' on ACK.

const (
	diffInterestMarker  byte = 'I'
	diffExploreMarker   byte = 'X'
	diffDataMarker      byte = 'D'
	diffReinforceMarker byte = 'R'
)

// InterestID names a data type being pulled ("four-legged animal in
// region X", reduced to an opaque identifier).
type InterestID uint32

type diffInterest struct {
	gradients  []packet.NodeID // neighbors the interest arrived from
	reinforced packet.NodeID   // downstream (sink-ward) reinforced neighbor
	upstream   packet.NodeID   // neighbor whose exploratory data arrived first
}

// Diffusion is the per-sensor stack.
type Diffusion struct {
	Metrics metrics.Sink
	TTL     uint8

	dev       *node.Device
	interests map[InterestID]*diffInterest
	seen      *packet.Dedupe // interest flood + exploratory dedup
	seq       uint32

	// Exploratory / Reinforced count this node's data transmissions in
	// each phase, for the convergence analysis.
	Exploratory, Reinforced uint64
}

// NewDiffusion creates a sensor stack.
func NewDiffusion(m metrics.Sink, ttl uint8) *Diffusion {
	return &Diffusion{Metrics: m, TTL: ttl,
		interests: make(map[InterestID]*diffInterest),
		seen:      packet.NewDedupe(0)}
}

// Start implements node.Stack.
func (d *Diffusion) Start(dev *node.Device) { d.dev = dev }

// HasGradient reports whether the node holds gradient state for interest.
func (d *Diffusion) HasGradient(in InterestID) bool {
	st, ok := d.interests[in]
	return ok && len(st.gradients) > 0
}

// ReinforcedPath reports whether a reinforced gradient exists.
func (d *Diffusion) ReinforcedPath(in InterestID) bool {
	st, ok := d.interests[in]
	return ok && st.reinforced != packet.None
}

func (d *Diffusion) state(in InterestID) *diffInterest {
	st, ok := d.interests[in]
	if !ok {
		st = &diffInterest{reinforced: packet.None, upstream: packet.None}
		d.interests[in] = st
	}
	return st
}

// OriginateData publishes one matching reading: down the reinforced path
// when one exists, exploratorily down every gradient otherwise. The
// interest the data matches is the first one known (sources in the
// experiments carry one interest).
func (d *Diffusion) OriginateData(payload []byte) {
	if d.dev == nil || !d.dev.Alive() {
		return
	}
	var in InterestID
	found := false
	for id, st := range d.interests {
		if len(st.gradients) > 0 {
			if !found || id < in {
				in = id
				found = true
			}
		}
	}
	d.seq++
	d.Metrics.RecordGenerated(d.dev.ID(), d.seq, d.dev.Now())
	if !found {
		d.Metrics.Inc(metrics.DroppedNoRoute) // no interest has reached us
		return
	}
	st := d.interests[in]
	if st.reinforced != packet.None {
		d.sendData(diffDataMarker, in, d.dev.ID(), d.seq, payload, st.reinforced)
		d.Reinforced++
		return
	}
	for _, g := range st.gradients {
		d.sendData(diffExploreMarker, in, d.dev.ID(), d.seq, payload, g)
		d.Exploratory++
	}
}

func (d *Diffusion) sendData(marker byte, in InterestID, origin packet.NodeID, seq uint32, payload []byte, to packet.NodeID) {
	body := make([]byte, 9+len(payload))
	body[0] = marker
	binary.BigEndian.PutUint32(body[1:], uint32(in))
	binary.BigEndian.PutUint32(body[5:], uint32(origin))
	copy(body[9:], payload)
	pkt := &packet.Packet{
		Kind:    packet.KindData,
		From:    d.dev.ID(),
		To:      to,
		Origin:  origin,
		Target:  to,
		Seq:     seq,
		TTL:     d.TTL,
		Payload: body,
	}
	if d.dev.Send(pkt) {
		d.Metrics.Inc(metrics.DataSent)
	}
}

// HandleMessage implements node.Stack.
func (d *Diffusion) HandleMessage(pkt *packet.Packet) {
	if d.dev == nil || len(pkt.Payload) < 5 {
		return
	}
	switch {
	case pkt.Kind == packet.KindRReq && pkt.Payload[0] == diffInterestMarker:
		d.handleInterest(pkt)
	case pkt.Kind == packet.KindData && pkt.Target == d.dev.ID():
		d.handleData(pkt)
	case pkt.Kind == packet.KindAck && pkt.Target == d.dev.ID() && pkt.Payload[0] == diffReinforceMarker:
		d.handleReinforce(pkt)
	}
}

func (d *Diffusion) handleInterest(pkt *packet.Packet) {
	in := InterestID(binary.BigEndian.Uint32(pkt.Payload[1:]))
	st := d.state(in)
	// Record the gradient toward the interest's sender.
	known := false
	for _, g := range st.gradients {
		if g == pkt.From {
			known = true
			break
		}
	}
	if !known {
		st.gradients = append(st.gradients, pkt.From)
	}
	// Re-flood once per (sink, seq).
	if pkt.TTL <= 1 || d.seen.Check(pkt.Origin, pkt.Seq) {
		return
	}
	fwd := pkt.Clone()
	fwd.From = d.dev.ID()
	fwd.TTL--
	fwd.Hops++
	if d.dev.Send(fwd) {
		d.Metrics.Inc(metrics.RReqSent)
	}
}

func (d *Diffusion) handleData(pkt *packet.Packet) {
	if len(pkt.Payload) < 9 {
		return
	}
	marker := pkt.Payload[0]
	in := InterestID(binary.BigEndian.Uint32(pkt.Payload[1:]))
	origin := packet.NodeID(binary.BigEndian.Uint32(pkt.Payload[5:]))
	st := d.state(in)
	switch marker {
	case diffExploreMarker:
		// Duplicate suppression is the in-network aggregation.
		if d.seen.Check(origin, pkt.Seq) {
			return
		}
		if st.upstream == packet.None {
			st.upstream = pkt.From // first-delivery upstream, for reinforcement
		}
		if pkt.TTL <= 1 {
			return
		}
		for _, g := range st.gradients {
			if g == pkt.From {
				continue
			}
			fwd := pkt.Clone()
			fwd.From = d.dev.ID()
			fwd.To = g
			fwd.Target = g
			fwd.TTL--
			fwd.Hops++
			if d.dev.Send(fwd) {
				d.Metrics.Inc(metrics.DataSent)
				d.Exploratory++
			}
		}
	case diffDataMarker:
		if st.reinforced == packet.None || pkt.TTL <= 1 {
			return
		}
		fwd := pkt.Clone()
		fwd.From = d.dev.ID()
		fwd.To = st.reinforced
		fwd.Target = st.reinforced
		fwd.TTL--
		fwd.Hops++
		if d.dev.Send(fwd) {
			d.Metrics.Inc(metrics.DataSent)
			d.Reinforced++
		}
	}
}

func (d *Diffusion) handleReinforce(pkt *packet.Packet) {
	if len(pkt.Payload) < 5 {
		return
	}
	in := InterestID(binary.BigEndian.Uint32(pkt.Payload[1:]))
	st := d.state(in)
	// The reinforcing neighbor is sink-ward.
	st.reinforced = pkt.From
	// Extend the reinforcement toward the source along our first-delivery
	// upstream, if any.
	if st.upstream == packet.None || st.upstream == pkt.From {
		return
	}
	fwd := pkt.Clone()
	fwd.From = d.dev.ID()
	fwd.To = st.upstream
	fwd.Target = st.upstream
	fwd.Hops++
	if d.dev.Send(fwd) {
		d.Metrics.Inc(metrics.AckSent)
	}
}

// DiffusionSink floods interests and absorbs matching data, reinforcing the
// first-delivering neighbor per interest.
type DiffusionSink struct {
	Metrics metrics.Sink
	TTL     uint8

	dev        *node.Device
	seq        uint32
	reinforced map[InterestID]bool
}

// NewDiffusionSink creates the sink stack.
func NewDiffusionSink(m metrics.Sink, ttl uint8) *DiffusionSink {
	return &DiffusionSink{Metrics: m, TTL: ttl, reinforced: make(map[InterestID]bool)}
}

// Start implements node.Stack.
func (s *DiffusionSink) Start(dev *node.Device) { s.dev = dev }

// Subscribe floods an interest.
func (s *DiffusionSink) Subscribe(in InterestID) {
	if s.dev == nil || !s.dev.Alive() {
		return
	}
	s.seq++
	body := make([]byte, 5)
	body[0] = diffInterestMarker
	binary.BigEndian.PutUint32(body[1:], uint32(in))
	pkt := &packet.Packet{
		Kind:    packet.KindRReq,
		From:    s.dev.ID(),
		To:      packet.Broadcast,
		Origin:  s.dev.ID(),
		Target:  packet.Broadcast,
		Seq:     s.seq,
		TTL:     s.TTL,
		Payload: body,
	}
	if s.dev.Send(pkt) {
		s.Metrics.Inc(metrics.RReqSent)
	}
}

// HandleMessage implements node.Stack.
func (s *DiffusionSink) HandleMessage(pkt *packet.Packet) {
	if s.dev == nil || pkt.Kind != packet.KindData || pkt.Target != s.dev.ID() || len(pkt.Payload) < 9 {
		return
	}
	marker := pkt.Payload[0]
	if marker != diffExploreMarker && marker != diffDataMarker {
		return
	}
	in := InterestID(binary.BigEndian.Uint32(pkt.Payload[1:]))
	origin := packet.NodeID(binary.BigEndian.Uint32(pkt.Payload[5:]))
	s.Metrics.RecordDelivered(origin, pkt.Seq, s.dev.ID(), int(pkt.Hops)+1, s.dev.Now())
	// Reinforce the first neighbor that delivers exploratory data.
	if marker == diffExploreMarker && !s.reinforced[in] {
		s.reinforced[in] = true
		body := make([]byte, 5)
		body[0] = diffReinforceMarker
		binary.BigEndian.PutUint32(body[1:], uint32(in))
		r := &packet.Packet{
			Kind:    packet.KindAck,
			From:    s.dev.ID(),
			To:      pkt.From,
			Origin:  s.dev.ID(),
			Target:  pkt.From,
			Seq:     pkt.Seq,
			TTL:     s.TTL,
			Payload: body,
		}
		if s.dev.Send(r) {
			s.Metrics.Inc(metrics.AckSent)
		}
	}
}
