package scenario

import (
	"reflect"
	"testing"

	"wmsn/internal/sim"
)

// Arena reuse must be invisible: a run drawing storage from a warmed pool
// produces bit-identical results to a fresh GC-managed world, because pools
// carry only empty capacity, never state. Lossy + collisions exercises the
// RNG-sensitive radio paths, faults-free keeps the run quick.
func TestArenaReuseIsInvisible(t *testing.T) {
	cfg := Config{Seed: 11, Protocol: SPR, NumSensors: 30, Side: 120,
		SensorRange: 35, NumGateways: 2, LossRate: 0.1, Collisions: true,
		RunFor: 30 * sim.Second}

	// Reference: no arena (public Build path keeps worlds un-pooled).
	fresh := Build(cfg).RunTraffic()

	// Several pooled runs in sequence so later ones adopt storage harvested
	// from earlier ones (sync.Pool is per-P; single goroutine makes reuse
	// all but certain, and even a pool miss just degenerates to the
	// reference behavior).
	for i := 0; i < 4; i++ {
		got, err := RunE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*got.Metrics, *fresh.Metrics) {
			t.Fatalf("run %d: metrics diverge with arena reuse:\npooled: %+v\nfresh:  %+v",
				i, *got.Metrics, *fresh.Metrics)
		}
		if got.Radio != fresh.Radio {
			t.Fatalf("run %d: radio stats diverge: %+v vs %+v", i, got.Radio, fresh.Radio)
		}
		if got.Energy != fresh.Energy || got.FirstDeath != fresh.FirstDeath ||
			got.SensorsAlive != fresh.SensorsAlive || got.Elapsed != fresh.Elapsed {
			t.Fatalf("run %d: summary diverges: %+v vs %+v", i, got, fresh)
		}
	}
}

// StopAtFirstDeath stops the kernel mid-delivery-batch; harvesting a
// stopped world (pending events still queued) must hand storage back
// without tripping the stale-handle protection on the next run.
func TestArenaHarvestOfStoppedWorld(t *testing.T) {
	cfg := Config{Seed: 3, Protocol: SPR, NumSensors: 20, Side: 100,
		SensorRange: 40, NumGateways: 1, SensorBattery: 0.02,
		StopAtFirstDeath: true, RunFor: 600 * sim.Second}
	fresh := Build(cfg).RunTraffic()
	if fresh.FirstDeath < 0 {
		t.Fatal("config never kills a sensor; test needs a mid-run stop")
	}
	for i := 0; i < 3; i++ {
		got, err := RunE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*got.Metrics, *fresh.Metrics) || got.FirstDeath != fresh.FirstDeath {
			t.Fatalf("run %d: stopped-world harvest changed results: death %v vs %v",
				i, got.FirstDeath, fresh.FirstDeath)
		}
	}
}
