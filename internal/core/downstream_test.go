package core

import (
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
	"wmsn/internal/wsncrypto"
)

// Downstream (§6.2.4 "from gateways to sensor nodes"): after a sensor has
// discovered a route, the gateway can source-route commands back to it.

func TestMLRDownstreamDelivery(t *testing.T) {
	sensors := line(6, 0, 10)
	places := []geom.Point{{X: 60}}
	w, m, stacks, _ := mlrWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	var got []string
	var fromGW packet.NodeID
	stacks[1].OnDownstream = func(gw packet.NodeID, payload []byte) {
		fromGW = gw
		got = append(got, string(payload))
	}
	// Upstream first: teaches the gateway the path to sensor 1.
	stacks[1].OriginateData([]byte("up"))
	w.Run(5 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("upstream failed: %d", m.Delivered)
	}
	gw := w.Device(1000).Stack().(*MLRGateway)
	if !gw.SendToSensor(1, []byte("set-rate=2s")) {
		t.Fatal("gateway has no path to sensor 1")
	}
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if len(got) != 1 || got[0] != "set-rate=2s" || fromGW != 1000 {
		t.Fatalf("downstream delivery: %v from %v", got, fromGW)
	}
	// Unknown sensor: no path.
	if gw.SendToSensor(77, []byte("x")) {
		t.Fatal("SendToSensor to unknown sensor succeeded")
	}
}

func TestMLRDownstreamMultiHopForwarding(t *testing.T) {
	sensors := line(6, 0, 10)
	places := []geom.Point{{X: 60}}
	w, _, stacks, _ := mlrWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	delivered := 0
	stacks[1].OnDownstream = func(packet.NodeID, []byte) { delivered++ }
	stacks[1].OriginateData([]byte("up"))
	w.Run(5 * sim.Second)
	gw := w.Device(1000).Stack().(*MLRGateway)
	gw.SendToSensor(1, []byte("cmd"))
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if delivered != 1 {
		t.Fatalf("multi-hop downstream delivered %d", delivered)
	}
	// Node 1 is 6 hops from the gateway; intermediates forwarded.
	if r, ok := stacks[1].Table()[0]; !ok || r.Hops != 6 {
		t.Fatalf("setup: route = %+v", stacks[1].Table())
	}
}

func TestSecMLRDownstreamAuthenticated(t *testing.T) {
	sensors := line(5, 0, 10)
	places := []geom.Point{{X: 50}}
	w, m, ss, gs, _ := secWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	var got []string
	ss[1].OnDownstream = func(gw packet.NodeID, payload []byte) {
		got = append(got, string(payload))
	}
	ss[1].OriginateData([]byte("up"))
	w.Run(5 * sim.Second)
	if m.Delivered != 1 {
		t.Fatalf("upstream failed: %d", m.Delivered)
	}
	if !gs[1000].SendToSensor(1, []byte("rekey")) {
		t.Fatal("gateway SendToSensor failed")
	}
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if len(got) != 1 || got[0] != "rekey" {
		t.Fatalf("downstream: %v", got)
	}
}

func TestSecMLRDownstreamForgeryRejected(t *testing.T) {
	sensors := line(5, 0, 10)
	places := []geom.Point{{X: 50}}
	w, m, ss, gs, _ := secWorld(t, 1, sensors, places, [][]int{{0}}, sim.Hour, 12)
	delivered := 0
	ss[1].OnDownstream = func(packet.NodeID, []byte) { delivered++ }
	ss[1].OriginateData([]byte("up"))
	w.Run(5 * sim.Second)

	// A nearby attacker forges a downstream command claiming gateway origin.
	atk := w.AddSensor(666, geom.Point{X: 5, Y: 5}, 12, 0, nil)
	forged := &packet.Packet{
		Kind: packet.KindData, From: 666, To: 1,
		Origin: 1000, Target: 1, Seq: 99, TTL: 8,
		Path: []packet.NodeID{1000, 666, 1},
		Sec: &packet.SecEnvelope{Counter: 50,
			Cipher: []byte("evil"), MAC: make([]byte, wsncrypto.MACSize)},
	}
	macBefore := m.RejectedMAC
	atk.Send(forged)
	w.Run(w.Kernel().Now() + 3*sim.Second)
	if delivered != 0 {
		t.Fatal("forged downstream command delivered")
	}
	if m.RejectedMAC <= macBefore {
		t.Fatal("forged downstream not MAC-rejected")
	}

	// A replayed genuine downstream is also rejected.
	var captured *packet.Packet
	cap := &captureStack{onData: func(p *packet.Packet) {
		if p.Kind == packet.KindData && p.Target == 1 && p.Sec != nil {
			captured = p.Clone()
		}
	}}
	atk2 := w.AddSensor(667, geom.Point{X: 8, Y: -5}, 12, 0, cap)
	atk2.SetPromiscuous(true)
	gs[1000].SendToSensor(1, []byte("genuine"))
	w.Run(w.Kernel().Now() + 3*sim.Second)
	if delivered != 1 || captured == nil {
		t.Fatalf("genuine downstream setup: delivered=%d captured=%v", delivered, captured != nil)
	}
	replays := m.RejectedReplay
	rep := captured.Clone()
	rep.From = 667
	atk2.Send(rep)
	w.Run(w.Kernel().Now() + 3*sim.Second)
	if delivered != 1 {
		t.Fatal("replayed downstream delivered twice")
	}
	if m.RejectedReplay <= replays {
		t.Fatal("replayed downstream not counter-rejected")
	}
}

func TestSPRDownstreamViaAnswerPathStillUpstreamOnly(t *testing.T) {
	// SPR has no downstream path memory by design; the gateway stack simply
	// lacks SendToSensor. This test pins the asymmetry so a future refactor
	// adds it deliberately rather than accidentally.
	var _ interface {
		SendToSensor(packet.NodeID, []byte) bool
	} = (*MLRGateway)(nil)
	var _ interface {
		SendToSensor(packet.NodeID, []byte) bool
	} = (*SecMLRGateway)(nil)
}
