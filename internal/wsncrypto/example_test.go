package wsncrypto_test

import (
	"fmt"

	"wmsn/internal/wsncrypto"
)

// ExampleTeslaChain walks the µTESLA broadcast-authentication flow: the
// broadcaster MACs a message under an undisclosed key, later discloses the
// key, and the verifier accepts only keys that hash-chain to the public
// commitment.
func ExampleTeslaChain() {
	chain := wsncrypto.NewTeslaChain([]byte("gateway-seed"), 10)
	verifier := wsncrypto.NewTeslaVerifier(chain.Commitment())

	msg := []byte("gateway moved to place D")
	tag := chain.Authenticate(1, msg) // interval 1

	fmt.Println("before disclosure:", verifier.VerifyMessage(1, msg, tag))
	verifier.AcceptKey(1, chain.KeyAt(1)) // key disclosed after the interval
	fmt.Println("after disclosure: ", verifier.VerifyMessage(1, msg, tag))
	fmt.Println("forgery:          ", verifier.VerifyMessage(1, []byte("x"), tag))
	// Output:
	// before disclosure: false
	// after disclosure:  true
	// forgery:           false
}

// ExampleReplayGuard shows strict counter freshness.
func ExampleReplayGuard() {
	var g wsncrypto.ReplayGuard
	fmt.Println(g.Accept(1), g.Accept(2), g.Accept(2), g.Accept(1))
	// Output: true true false false
}
