// Package scenario binds the simulator substrates into runnable
// experiments: it deploys a sensor field, installs a routing protocol
// (core SPR/MLR/SecMLR or a baseline), drives periodic traffic, optionally
// injects adversaries and failures, and collects the metrics every
// experiment in EXPERIMENTS.md reads.
package scenario

import (
	"fmt"

	"wmsn/internal/baseline"
	"wmsn/internal/core"
	"wmsn/internal/energy"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/placement"
	"wmsn/internal/radio"
	"wmsn/internal/runner"
	"wmsn/internal/sensing"
	"wmsn/internal/sim"
)

// Protocol selects the routing protocol under test.
type Protocol string

// Supported protocols.
const (
	SPR       Protocol = "spr"       // §5.2, multi-gateway shortest path
	MLR       Protocol = "mlr"       // §5.3, lifetime-maximizing rounds
	SecMLR    Protocol = "secmlr"    // §6.2, secured MLR
	Flooding  Protocol = "flooding"  // flat baseline
	Gossiping Protocol = "gossiping" // flat baseline
	Direct    Protocol = "direct"    // single-hop baseline
	MCFA      Protocol = "mcfa"      // cost-field baseline
	LEACH     Protocol = "leach"     // cluster baseline
	PEGASIS   Protocol = "pegasis"   // chain baseline
	SPIN      Protocol = "spin"      // negotiation baseline
)

// Originator is any sensor stack that can produce a reading.
type Originator interface {
	OriginateData(payload []byte)
}

// Config describes one experiment run. Zero fields take defaults from
// Defaults.
type Config struct {
	Seed int64
	// Protocol under test.
	Protocol Protocol
	// NumSensors nodes deployed by Deploy in a Side x Side region.
	NumSensors int
	Side       float64
	Deploy     geom.Deployer
	// SensorRange is the sensor-layer radio range.
	SensorRange float64
	// NumGateways (or the single sink for flat baselines).
	NumGateways int
	// Places are the MLR feasible places; empty derives a grid of
	// 2*NumGateways places. For SPR and baselines only the first
	// NumGateways places are used as static positions.
	Places []geom.Point
	// Schedule is the MLR round schedule; empty derives a rotation.
	Schedule [][]int
	RoundLen sim.Duration
	// Rounds bounds the derived rotation schedule length.
	Rounds int

	// Traffic: every sensor originates one PayloadSize-byte reading each
	// ReportInterval, starting after a warmup.
	ReportInterval sim.Duration
	PayloadSize    int
	Warmup         sim.Duration

	// RunFor is the simulated horizon.
	RunFor sim.Time
	// StopAtFirstDeath ends the run when the first sensor battery dies
	// (lifetime experiments).
	StopAtFirstDeath bool

	// Energy / battery.
	EnergyModel   energy.Model
	SensorBattery float64

	// Radio imperfections.
	LossRate   float64
	Collisions bool
	// CSMA enables carrier sensing with random backoff on the sensor
	// medium (pairs naturally with Collisions).
	CSMA bool

	// LEACH-specific.
	LEACHProb float64

	// TEEN, when non-nil, replaces unconditional periodic reporting with
	// threshold-sensitive reporting (§2.2.2 [18]): each ReportInterval the
	// sensor samples the field at its position and transmits only when the
	// TEEN filter fires. The sensed value rides in the payload.
	TEEN *TEENConfig

	// NoShortcutAnswers disables SPR/MLR's cached-route answering
	// (Property-1 shortcut) — the ablation of experiment E12.
	NoShortcutAnswers bool

	// Params, when non-nil, overrides the protocol parameters entirely
	// (timing windows, TTLs, retry budgets). NoShortcutAnswers still
	// applies on top.
	Params *core.Params

	// Hooks: Mutate runs after the network is built but before traffic
	// starts (install attackers, schedule failures, ...). StackWrapper,
	// when set, wraps every sensor stack at creation — the hook insider
	// attacks (selective forwarding, ACK spoofing) use to compromise a
	// subset of legitimate nodes while keeping them on routing paths.
	Mutate       func(n *Net)
	StackWrapper func(id packet.NodeID, st node.Stack) node.Stack
}

// TEENConfig configures threshold-sensitive reporting.
type TEENConfig struct {
	// Field is the sensed environment.
	Field sensing.Field
	// Hard and Soft are the TEEN thresholds.
	Hard, Soft float64
}

// Defaults fills unset fields.
func Defaults(cfg Config) Config {
	if cfg.Protocol == "" {
		cfg.Protocol = SPR
	}
	if cfg.NumSensors == 0 {
		cfg.NumSensors = 100
	}
	if cfg.Side == 0 {
		cfg.Side = 200
	}
	if cfg.Deploy == nil {
		cfg.Deploy = geom.Uniform{}
	}
	if cfg.SensorRange == 0 {
		cfg.SensorRange = 35
	}
	if cfg.NumGateways == 0 {
		cfg.NumGateways = 3
	}
	if cfg.RoundLen == 0 {
		cfg.RoundLen = 100 * sim.Second
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 8
	}
	if cfg.ReportInterval == 0 {
		cfg.ReportInterval = 10 * sim.Second
	}
	if cfg.PayloadSize == 0 {
		cfg.PayloadSize = 16
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = sim.Second
	}
	if cfg.RunFor == 0 {
		cfg.RunFor = 120 * sim.Second
	}
	if cfg.EnergyModel == nil {
		cfg.EnergyModel = energy.DefaultFixed
	}
	if cfg.SensorBattery == 0 {
		cfg.SensorBattery = 2.0
	}
	if cfg.LEACHProb == 0 {
		cfg.LEACHProb = 0.05
	}
	return cfg
}

// Net is a built, running experiment network.
type Net struct {
	Cfg           Config
	World         *node.World
	Metrics       *core.Metrics
	Region        geom.Rect
	SensorIDs     []packet.NodeID
	GatewayIDs    []packet.NodeID
	Places        []geom.Point
	Originators   map[packet.NodeID]Originator
	Rounds        *core.Rounds
	LEACHRounds   *baseline.LEACHRounds
	PegasisRounds *baseline.PegasisRounds

	trafficStop []*sim.Repeater
	teens       []*sensing.TEEN
}

// GatewayID of the i-th gateway. The base sits far above any realistic
// sensor count so scenario IDs never collide.
func GatewayID(i int) packet.NodeID { return packet.NodeID(1_000_000 + i) }

// Build constructs the network for cfg without starting traffic.
func Build(cfg Config) *Net {
	cfg = Defaults(cfg)
	region := geom.Square(cfg.Side)
	w := node.NewWorld(node.Config{
		Seed: cfg.Seed,
		SensorRadio: radio.Config{
			BitRate:    250_000,
			PropDelay:  50 * sim.Microsecond,
			LossRate:   cfg.LossRate,
			Collisions: cfg.Collisions,
			CSMA:       cfg.CSMA,
		},
		EnergyModel:   cfg.EnergyModel,
		SensorBattery: cfg.SensorBattery,
	})
	n := &Net{
		Cfg:         cfg,
		World:       w,
		Metrics:     core.NewMetrics(),
		Region:      region,
		Originators: make(map[packet.NodeID]Originator),
	}
	sensors := cfg.Deploy.Deploy(cfg.NumSensors, region, w.Kernel().Rand())

	// Feasible places / gateway positions.
	n.Places = cfg.Places
	if len(n.Places) == 0 {
		numPlaces := cfg.NumGateways
		if cfg.Protocol == MLR || cfg.Protocol == SecMLR {
			numPlaces = 2 * cfg.NumGateways
		}
		n.Places = geom.PlaceGrid(numPlaces, region)
	}
	for i := 0; i < cfg.NumGateways; i++ {
		n.GatewayIDs = append(n.GatewayIDs, GatewayID(i))
	}
	for i := range sensors {
		n.SensorIDs = append(n.SensorIDs, packet.NodeID(i+1))
	}

	params := core.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	params.NoShortcutAnswers = cfg.NoShortcutAnswers
	wrap := func(id packet.NodeID, st node.Stack) node.Stack {
		if cfg.StackWrapper != nil {
			return cfg.StackWrapper(id, st)
		}
		return st
	}
	switch cfg.Protocol {
	case SPR:
		for i, pos := range sensors {
			st := core.NewSPRSensor(params, n.Metrics)
			n.Originators[n.SensorIDs[i]] = st
			w.AddSensor(n.SensorIDs[i], pos, cfg.SensorRange, 0, wrap(n.SensorIDs[i], st))
		}
		for i, id := range n.GatewayIDs {
			w.AddGateway(id, n.Places[i%len(n.Places)], cfg.SensorRange, 500, core.NewSPRGateway(params, n.Metrics))
		}

	case MLR, SecMLR:
		schedule := cfg.Schedule
		if schedule == nil {
			schedule = placement.RotationSchedule(len(n.Places), cfg.NumGateways, cfg.Rounds)
		}
		if schedule == nil {
			panic(fmt.Sprintf("scenario: cannot build schedule for %d gateways over %d places",
				cfg.NumGateways, len(n.Places)))
		}
		var sKeys map[packet.NodeID]*core.SensorKeys
		var gKeys map[packet.NodeID]*core.GatewayKeys
		if cfg.Protocol == SecMLR {
			sKeys, gKeys = core.ProvisionKeys([]byte("scenario-master"), n.SensorIDs, n.GatewayIDs, cfg.Rounds+8)
		}
		for i, pos := range sensors {
			id := n.SensorIDs[i]
			var st node.Stack
			if cfg.Protocol == SecMLR {
				sec := core.NewSecMLRSensor(params, n.Metrics, sKeys[id])
				n.Originators[id] = sec
				st = sec
			} else {
				mlr := core.NewMLRSensor(params, n.Metrics)
				n.Originators[id] = mlr
				st = mlr
			}
			w.AddSensor(id, pos, cfg.SensorRange, 0, wrap(id, st))
		}
		for i, id := range n.GatewayIDs {
			var st node.Stack
			if cfg.Protocol == SecMLR {
				st = core.NewSecMLRGateway(params, n.Metrics, gKeys[id])
			} else {
				st = core.NewMLRGateway(params, n.Metrics)
			}
			w.AddGateway(id, n.Places[schedule[0][i]], cfg.SensorRange, 500, st)
		}
		n.Rounds = &core.Rounds{World: w, Places: n.Places, Gateways: n.GatewayIDs,
			RoundLen: cfg.RoundLen, Schedule: schedule}
		n.Rounds.Start()

	case Flooding:
		for i, pos := range sensors {
			st := baseline.NewFlooding(n.Metrics, params.TTL)
			n.Originators[n.SensorIDs[i]] = st
			w.AddSensor(n.SensorIDs[i], pos, cfg.SensorRange, 0, st)
		}
		n.addFlatSinks(cfg)

	case Gossiping:
		for i, pos := range sensors {
			st := baseline.NewGossiping(n.Metrics, 255)
			n.Originators[n.SensorIDs[i]] = st
			w.AddSensor(n.SensorIDs[i], pos, cfg.SensorRange, 0, st)
		}
		n.addFlatSinks(cfg)

	case Direct:
		sinkPos := n.Places[0]
		for i, pos := range sensors {
			st := baseline.NewDirect(n.Metrics, GatewayID(0), pos.Dist(sinkPos))
			n.Originators[n.SensorIDs[i]] = st
			w.AddSensor(n.SensorIDs[i], pos, cfg.SensorRange, 0, st)
		}
		n.addFlatSinks(cfg)

	case MCFA:
		for i, pos := range sensors {
			st := baseline.NewMCFA(n.Metrics, params.TTL)
			n.Originators[n.SensorIDs[i]] = st
			w.AddSensor(n.SensorIDs[i], pos, cfg.SensorRange, 0, st)
		}
		w.AddGateway(GatewayID(0), n.Places[0], cfg.SensorRange, 500,
			baseline.NewMCFASink(n.Metrics, params.TTL))

	case PEGASIS:
		sinkPos := geom.Point{X: cfg.Side / 2, Y: cfg.Side + 50} // off-field sink, as in the PEGASIS paper
		pos := make(map[packet.NodeID]geom.Point, len(sensors))
		for i, p := range sensors {
			pos[n.SensorIDs[i]] = p
		}
		chain := baseline.NewPegasisChain(GatewayID(0), sinkPos, pos)
		for i, p := range sensors {
			id := n.SensorIDs[i]
			st := baseline.NewPEGASIS(n.Metrics, chain)
			n.Originators[id] = st
			w.AddSensor(id, p, cfg.SensorRange, 0, wrap(id, st))
		}
		w.AddGateway(GatewayID(0), sinkPos, 10*cfg.Side, 500, baseline.NewLEACHSink(n.Metrics))
		// Sweep once per reporting cycle: each token carries one reading per
		// node, as in the original protocol (sweeping slower would balloon
		// the token and stretch a single sweep past the round).
		n.PegasisRounds = &baseline.PegasisRounds{World: w, Chain: chain, RoundLen: cfg.ReportInterval}
		n.PegasisRounds.Start()

	case SPIN:
		for i, p := range sensors {
			id := n.SensorIDs[i]
			st := baseline.NewSPIN(n.Metrics)
			n.Originators[id] = st
			w.AddSensor(id, p, cfg.SensorRange, 0, wrap(id, st))
		}
		w.AddGateway(GatewayID(0), n.Places[0], cfg.SensorRange, 500, baseline.NewSPINSink(n.Metrics))

	case LEACH:
		sinkPos := geom.Point{X: cfg.Side / 2, Y: cfg.Side + 50} // off-field sink, per LEACH evaluations
		var stacks []*baseline.LEACH
		for i, pos := range sensors {
			st := baseline.NewLEACH(n.Metrics, cfg.LEACHProb, GatewayID(0), sinkPos, cfg.SensorRange*2)
			n.Originators[n.SensorIDs[i]] = st
			stacks = append(stacks, st)
			w.AddSensor(n.SensorIDs[i], pos, cfg.SensorRange, 0, st)
		}
		w.AddGateway(GatewayID(0), sinkPos, 10*cfg.Side, 500, baseline.NewLEACHSink(n.Metrics))
		n.LEACHRounds = &baseline.LEACHRounds{World: w, Stacks: stacks, RoundLen: cfg.RoundLen}
		n.LEACHRounds.Start()

	default:
		panic(fmt.Sprintf("scenario: unknown protocol %q", cfg.Protocol))
	}

	if cfg.Mutate != nil {
		cfg.Mutate(n)
	}
	return n
}

// addFlatSinks installs plain sinks at the first NumGateways places
// (baselines normally run with NumGateways=1, the flat architecture).
func (n *Net) addFlatSinks(cfg Config) {
	for i, id := range n.GatewayIDs {
		n.World.AddGateway(id, n.Places[i%len(n.Places)], cfg.SensorRange, 500,
			baseline.NewSink(n.Metrics))
	}
}

// StartTraffic schedules the reporting workload: unconditional periodic
// reports by default, or TEEN threshold-sensitive reports when configured.
func (n *Net) StartTraffic() {
	cfg := n.Cfg
	payload := make([]byte, cfg.PayloadSize)
	k := n.World.Kernel()
	for _, id := range n.SensorIDs {
		id := id
		var filter *sensing.TEEN
		if cfg.TEEN != nil {
			filter = sensing.NewTEEN(cfg.TEEN.Hard, cfg.TEEN.Soft)
			n.teens = append(n.teens, filter)
		}
		report := func() {
			o, ok := n.Originators[id]
			if !ok {
				return
			}
			if filter == nil {
				o.OriginateData(payload)
				return
			}
			d := n.World.Device(id)
			if d == nil || !d.Alive() {
				return
			}
			v := cfg.TEEN.Field.ValueAt(d.Pos(), k.Now())
			if filter.Sample(v) {
				o.OriginateData(fmt.Appendf(nil, "v=%.2f", v))
			}
		}
		phase := cfg.Warmup + sim.Duration(k.Rand().Int63n(int64(cfg.ReportInterval)))
		k.After(phase, func() {
			report()
			rep := k.Every(cfg.ReportInterval, report)
			n.trafficStop = append(n.trafficStop, rep)
		})
	}
}

// TEENStats aggregates the threshold filters' activity (zero when TEEN
// reporting is not configured).
func (n *Net) TEENStats() (samples, reports uint64) {
	for _, f := range n.teens {
		samples += f.Samples
		reports += f.Reports
	}
	return samples, reports
}

// StopTraffic cancels the reporting workload.
func (n *Net) StopTraffic() {
	for _, r := range n.trafficStop {
		r.Stop()
	}
	n.trafficStop = nil
}

// Result summarizes a completed run.
type Result struct {
	Cfg          Config
	Metrics      *core.Metrics
	Energy       energy.Stats
	Radio        radio.Stats
	FirstDeath   sim.Time // -1 if no sensor died
	SensorsAlive int
	SensorsTotal int
	Elapsed      sim.Time
}

// Run builds the network, drives traffic for cfg.RunFor, and summarizes.
func Run(cfg Config) Result {
	n := Build(cfg)
	return n.RunTraffic()
}

// RunMany executes every config on a bounded worker pool and returns the
// results in cfgs order. Each run owns its kernel, RNG and world, and
// results are merged by submission index, so the output is bit-identical to
// calling Run in a loop regardless of workers (workers<=0 selects one per
// CPU, 1 forces sequential execution). Configs with Mutate/StackWrapper
// hooks are safe as long as the hooks touch only their own run's state.
func RunMany(workers int, cfgs []Config) []Result {
	return runner.Map(workers, len(cfgs), func(i int) Result { return Run(cfgs[i]) })
}

// RunTraffic starts traffic on an already-built network and runs to the
// horizon (or first sensor death when configured).
func (n *Net) RunTraffic() Result {
	cfg := n.Cfg
	if cfg.StopAtFirstDeath {
		n.World.OnDeath(func(r node.DeathRecord) {
			if n.World.FirstSensorDeath() >= 0 {
				n.World.Kernel().Stop()
			}
		})
	}
	n.StartTraffic()
	n.World.Run(cfg.RunFor)
	return n.Summarize()
}

// Summarize captures the current state as a Result.
func (n *Net) Summarize() Result {
	return Result{
		Cfg:          n.Cfg,
		Metrics:      n.Metrics,
		Energy:       n.World.SensorEnergyStats(),
		Radio:        n.World.SensorMedium().Stats(),
		FirstDeath:   n.World.FirstSensorDeath(),
		SensorsAlive: n.World.SensorsAlive(),
		SensorsTotal: n.World.SensorsTotal(),
		Elapsed:      n.World.Kernel().Now(),
	}
}
