// Package scenario binds the simulator substrates into runnable
// experiments: it deploys a sensor field, installs a routing protocol
// (core SPR/MLR/SecMLR or a baseline), drives periodic traffic, optionally
// injects adversaries and failures, and collects the metrics every
// experiment in EXPERIMENTS.md reads.
package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"wmsn/internal/baseline"
	"wmsn/internal/core"
	"wmsn/internal/energy"
	"wmsn/internal/fault"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/protocol"
	"wmsn/internal/radio"
	"wmsn/internal/sensing"
	"wmsn/internal/sim"
)

// Protocol selects the routing protocol under test. It aliases protocol.ID:
// any Builder registered with the protocol registry — including ones added
// by external packages or tests — can be named here.
type Protocol = protocol.ID

// The built-in protocols, re-exported for convenience.
const (
	SPR       = protocol.SPR       // §5.2, multi-gateway shortest path
	MLR       = protocol.MLR       // §5.3, lifetime-maximizing rounds
	SecMLR    = protocol.SecMLR    // §6.2, secured MLR
	Flooding  = protocol.Flooding  // flat baseline
	Gossiping = protocol.Gossiping // flat baseline
	Direct    = protocol.Direct    // single-hop baseline
	MCFA      = protocol.MCFA      // cost-field baseline
	LEACH     = protocol.LEACH     // cluster baseline
	PEGASIS   = protocol.PEGASIS   // chain baseline
	SPIN      = protocol.SPIN      // negotiation baseline
)

// Originator is any sensor stack that can produce a reading.
type Originator = protocol.Originator

// Config describes one experiment run. Zero fields take defaults from
// Defaults.
type Config struct {
	Seed int64
	// Protocol under test.
	Protocol Protocol
	// NumSensors nodes deployed by Deploy in a Side x Side region.
	NumSensors int
	Side       float64
	Deploy     geom.Deployer
	// SensorRange is the sensor-layer radio range.
	SensorRange float64
	// NumGateways (or the single sink for flat baselines).
	NumGateways int
	// Places are the MLR feasible places; empty derives a grid of
	// 2*NumGateways places. For SPR and baselines only the first
	// NumGateways places are used as static positions.
	Places []geom.Point
	// Schedule is the MLR round schedule; empty derives a rotation.
	Schedule [][]int
	RoundLen sim.Duration
	// Rounds bounds the derived rotation schedule length.
	Rounds int

	// Traffic: every sensor originates one PayloadSize-byte reading each
	// ReportInterval, starting after a warmup.
	ReportInterval sim.Duration
	PayloadSize    int
	Warmup         sim.Duration

	// RunFor is the simulated horizon.
	RunFor sim.Time
	// StopAtFirstDeath ends the run when the first sensor battery dies
	// (lifetime experiments).
	StopAtFirstDeath bool

	// Shards splits the field into that many vertical strips, each simulated
	// by its own worker under conservative time-window synchronization
	// (see internal/node EnableSharding). 0 or 1 selects the sequential
	// engine, whose results are byte-identical to previous releases. A
	// sharded run is deterministic for a fixed (Seed, Shards) pair and, for
	// the loss-free default SPR/MLR parameterizations, produces the same
	// aggregate delivery/latency/energy summary as the sequential engine.
	// Incompatible with CSMA, Collisions, Obs, positive FloodJitter, and
	// protocols whose handlers draw shared randomness (Validate enforces
	// this). With StopAtFirstDeath the run ends at the enclosing window
	// boundary rather than the exact death event.
	Shards int

	// Energy / battery.
	EnergyModel   energy.Model
	SensorBattery float64

	// Radio imperfections.
	LossRate   float64
	Collisions bool
	// CSMA enables carrier sensing with random backoff on the sensor
	// medium (pairs naturally with Collisions).
	CSMA bool

	// LEACH-specific.
	LEACHProb float64

	// TEEN, when non-nil, replaces unconditional periodic reporting with
	// threshold-sensitive reporting (§2.2.2 [18]): each ReportInterval the
	// sensor samples the field at its position and transmits only when the
	// TEEN filter fires. The sensed value rides in the payload.
	TEEN *TEENConfig

	// NoShortcutAnswers disables SPR/MLR's cached-route answering
	// (Property-1 shortcut) — the ablation of experiment E12.
	NoShortcutAnswers bool

	// Params, when non-nil, overrides the protocol parameters entirely
	// (timing windows, TTLs, retry budgets). NoShortcutAnswers still
	// applies on top.
	Params *core.Params

	// Faults, when non-nil, attaches a deterministic fault plan to the
	// run: scheduled crashes, recoveries, gateway kills, loss degradation
	// and background churn, executed on the run's own kernel (see
	// internal/fault). A fault plan auto-enables gateway liveness
	// advertisements (Params.AdvertInterval = 1s) unless Params is set
	// explicitly; the resulting Result carries a Reliability summary.
	Faults *fault.Plan

	// Obs, when non-nil, attaches the observability event bus to the run:
	// the kernel-adjacent layers (radio medium, link ARQ, routing stacks,
	// fault injector, node lifecycle, metrics) emit typed events into it,
	// and when Obs.Sample is set a kernel-scheduled sampler additionally
	// emits periodic gauge events (in-flight packets, ARQ queue depth,
	// sensors alive, mean energy). The sampler only reads state, so a
	// traced run's Result is identical to an untraced one. Each run must
	// own its bus — sharing one across RunMany configs would interleave
	// event streams nondeterministically.
	Obs *obs.Bus

	// Hooks: Mutate runs after the network is built but before traffic
	// starts (install attackers, schedule failures, ...). Prefer Faults
	// for crash/recovery/loss schedules — Mutate remains the escape hatch
	// for custom stacks, adversaries and trace taps. StackWrapper, when
	// set, wraps every sensor stack at creation — the hook insider
	// attacks (selective forwarding, ACK spoofing) use to compromise a
	// subset of legitimate nodes while keeping them on routing paths.
	Mutate       func(n *Net)
	StackWrapper func(id packet.NodeID, st node.Stack) node.Stack

	// Progress, when non-nil, receives a live watermark while the run
	// executes: sim-time and events fired published by the kernel every
	// event batch (the sharded window coordinator at each barrier), fresh
	// deliveries counted by the metrics sink, and Done flipped when
	// RunTraffic returns. Any goroutine may Progress.Snapshot() at any
	// time. Each run must own its probe — see ProgressBoard for multi-run
	// jobs. The probe only ever reads watermark state, so a watched run's
	// Result is identical to an unwatched one.
	Progress *sim.Progress
}

// TEENConfig configures threshold-sensitive reporting.
type TEENConfig struct {
	// Field is the sensed environment.
	Field sensing.Field
	// Hard and Soft are the TEEN thresholds.
	Hard, Soft float64
}

// Defaults fills unset fields.
func Defaults(cfg Config) Config {
	if cfg.Protocol == "" {
		cfg.Protocol = SPR
	}
	if cfg.NumSensors == 0 {
		cfg.NumSensors = 100
	}
	if cfg.Side == 0 {
		cfg.Side = 200
	}
	if cfg.Deploy == nil {
		cfg.Deploy = geom.Uniform{}
	}
	if cfg.SensorRange == 0 {
		cfg.SensorRange = 35
	}
	if cfg.NumGateways == 0 {
		cfg.NumGateways = 3
	}
	if cfg.RoundLen == 0 {
		cfg.RoundLen = 100 * sim.Second
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 8
	}
	if cfg.ReportInterval == 0 {
		cfg.ReportInterval = 10 * sim.Second
	}
	if cfg.PayloadSize == 0 {
		cfg.PayloadSize = 16
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = sim.Second
	}
	if cfg.RunFor == 0 {
		cfg.RunFor = 120 * sim.Second
	}
	if cfg.EnergyModel == nil {
		cfg.EnergyModel = energy.DefaultFixed
	}
	if cfg.SensorBattery == 0 {
		cfg.SensorBattery = 2.0
	}
	if cfg.LEACHProb == 0 {
		cfg.LEACHProb = 0.05
	}
	return cfg
}

// Validate checks the configuration for contradictions that Build would
// otherwise turn into a panic or a silently meaningless run. Defaults are
// applied first, so a zero field is never an error — only an explicitly
// wrong value is. All problems are reported at once via errors.Join, each
// with the offending value and the constraint it violates.
func (cfg Config) Validate() error {
	c := Defaults(cfg)
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	b, known := protocol.Lookup(c.Protocol)
	if !known {
		fail("unknown protocol %q — register a builder or use one of the built-ins", c.Protocol)
	}
	if c.NumSensors < 0 {
		fail("NumSensors %d is negative — deploy at least one sensor", c.NumSensors)
	}
	if c.NumGateways < 0 {
		fail("NumGateways %d is negative — need at least one gateway or sink", c.NumGateways)
	}
	if c.Side < 0 {
		fail("Side %g is negative — the region is a Side x Side square", c.Side)
	}
	if c.SensorRange < 0 {
		fail("SensorRange %g is negative — radio range must be positive metres", c.SensorRange)
	}
	if c.ReportInterval < 0 {
		fail("ReportInterval %v is negative", c.ReportInterval)
	}
	if c.Warmup < 0 {
		fail("Warmup %v is negative", c.Warmup)
	}
	if c.RunFor < 0 {
		fail("RunFor %v is negative", c.RunFor)
	}
	if c.RoundLen < 0 {
		fail("RoundLen %v is negative", c.RoundLen)
	}
	if c.PayloadSize < 0 {
		fail("PayloadSize %d is negative", c.PayloadSize)
	}
	if c.SensorBattery < 0 {
		fail("SensorBattery %g J is negative", c.SensorBattery)
	}
	if c.LossRate < 0 || c.LossRate >= 1 || math.IsNaN(c.LossRate) {
		fail("LossRate %v outside [0,1) — 1 would lose every frame", c.LossRate)
	}
	if c.LEACHProb <= 0 || c.LEACHProb > 1 {
		fail("LEACHProb %v outside (0,1] — it is a cluster-head election probability", c.LEACHProb)
	}
	numPlaces := len(c.Places)
	if numPlaces == 0 {
		numPlaces = c.NumGateways
		if known && b.Caps.MobilityRounds {
			numPlaces = 2 * c.NumGateways
		}
	}
	for r, row := range c.Schedule {
		if len(row) != c.NumGateways {
			fail("Schedule row %d has %d entries, want one place per gateway (%d)", r, len(row), c.NumGateways)
			continue
		}
		for g, p := range row {
			if p < 0 || p >= numPlaces {
				fail("Schedule row %d gateway %d: place %d out of range [0,%d)", r, g, p, numPlaces)
			}
		}
	}
	if c.TEEN != nil && c.TEEN.Field == nil {
		fail("TEEN reporting configured with a nil Field — nothing to sense")
	}
	if c.Shards < 0 {
		fail("Shards %d is negative — 0 or 1 selects the sequential engine", c.Shards)
	}
	if c.Shards > 1 {
		if c.CSMA {
			fail("Shards %d with CSMA — carrier sensing needs a global channel view", c.Shards)
		}
		if c.Collisions {
			fail("Shards %d with Collisions — the collision model needs a global channel view", c.Shards)
		}
		if c.Obs != nil {
			fail("Shards %d with Obs — the event bus is single-goroutine; trace sequential runs", c.Shards)
		}
		if known && b.Caps.HandlerRand {
			fail("Shards %d with protocol %q — its receive handlers draw shared randomness", c.Shards, c.Protocol)
		}
		if c.Params != nil && c.Params.FloodJitter > 0 {
			fail("Shards %d with FloodJitter %v — rebroadcast jitter draws shared randomness in handlers", c.Shards, c.Params.FloodJitter)
		}
	}
	if p := c.Params; p != nil {
		if p.LinkRetries < 0 {
			fail("Params.LinkRetries %d is negative — 0 disables link ARQ", p.LinkRetries)
		}
		if p.LinkRetries > 0 && p.LinkAckWait <= 0 {
			fail("Params.LinkAckWait %v with LinkRetries %d — retransmissions need a positive ACK timeout", p.LinkAckWait, p.LinkRetries)
		}
		if p.ForwardQueueLimit < 0 {
			fail("Params.ForwardQueueLimit %d is negative — 0 selects the default bound", p.ForwardQueueLimit)
		}
	}
	if err := c.Faults.Validate(c.RunFor); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Net is a built, running experiment network.
type Net struct {
	Cfg           Config
	World         *node.World
	Metrics       *core.Metrics
	Region        geom.Rect
	SensorIDs     []packet.NodeID
	GatewayIDs    []packet.NodeID
	Places        []geom.Point
	Originators   map[packet.NodeID]Originator
	Rounds        *core.Rounds
	LEACHRounds   *baseline.LEACHRounds
	PegasisRounds *baseline.PegasisRounds

	trafficMu   sync.Mutex // trafficStop appends happen on region workers
	trafficStop []*sim.Repeater
	teens       []*sensing.TEEN
	injector    *fault.Injector
}

// GatewayID of the i-th gateway. The base sits far above any realistic
// sensor count so scenario IDs never collide.
func GatewayID(i int) packet.NodeID { return packet.NodeID(1_000_000 + i) }

// Build constructs the network for cfg without starting traffic. It is the
// panicking wrapper over BuildE for call sites that treat a bad
// configuration as a programming error.
func Build(cfg Config) *Net {
	n, err := BuildE(cfg)
	if err != nil {
		panic(err.Error())
	}
	return n
}

// BuildE constructs the network for cfg without starting traffic. The
// configuration is validated first (see Config.Validate); the protocol is
// then resolved through the protocol registry, and any Builder rejection
// (e.g. no feasible round schedule exists) comes back as an error rather
// than a panic.
func BuildE(cfg Config) (*Net, error) {
	return buildE(cfg, nil)
}

// buildE is BuildE with an optional run arena: when ar is non-nil the world
// adopts its recycled kernel/radio storage, and the caller is responsible
// for harvesting it back (World.ReleasePools) once the run is over.
func buildE(cfg Config, ar *runArena) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: invalid config: %w", err)
	}
	cfg = Defaults(cfg)
	b, ok := protocol.Lookup(cfg.Protocol)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown protocol %q", cfg.Protocol)
	}
	region := geom.Square(cfg.Side)
	m := core.NewMetrics()
	m.SetObserver(cfg.Obs)
	wcfg := node.Config{
		Seed: cfg.Seed,
		SensorRadio: radio.Config{
			BitRate:    250_000,
			PropDelay:  50 * sim.Microsecond,
			LossRate:   cfg.LossRate,
			Collisions: cfg.Collisions,
			CSMA:       cfg.CSMA,
			Metrics:    m,
		},
		EnergyModel:   cfg.EnergyModel,
		SensorBattery: cfg.SensorBattery,
		Obs:           cfg.Obs,
	}
	if ar != nil {
		wcfg.EventPool = &ar.events
		wcfg.SensorPool = &ar.sensor
		wcfg.MeshPool = &ar.mesh
	}
	w := node.NewWorld(wcfg)
	if cfg.Shards > 1 {
		w.EnableSharding(cfg.Shards, region)
		m.EnableConcurrent()
	}
	if cfg.Progress != nil {
		w.SetProgress(cfg.Progress)
		m.SetProgress(cfg.Progress)
	}
	n := &Net{
		Cfg:     cfg,
		World:   w,
		Metrics: m,
		Region:  region,
	}
	sensors := cfg.Deploy.Deploy(cfg.NumSensors, region, w.Kernel().Rand())

	// Feasible places / gateway positions. Mobility protocols default to
	// twice as many feasible places as gateways so rotation has somewhere
	// to go (§5.3); everyone else gets one place per gateway.
	n.Places = cfg.Places
	if len(n.Places) == 0 {
		numPlaces := cfg.NumGateways
		if b.Caps.MobilityRounds {
			numPlaces = 2 * cfg.NumGateways
		}
		n.Places = geom.PlaceGrid(numPlaces, region)
	}
	for i := 0; i < cfg.NumGateways; i++ {
		n.GatewayIDs = append(n.GatewayIDs, GatewayID(i))
	}
	for i := range sensors {
		n.SensorIDs = append(n.SensorIDs, packet.NodeID(i+1))
	}

	params := core.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	} else if cfg.Faults != nil {
		// A fault plan without explicit params turns on gateway liveness
		// advertisements so SPR/MLR can detect dead gateways and fail over.
		params.AdvertInterval = sim.Second
	}
	params.NoShortcutAnswers = cfg.NoShortcutAnswers
	wrap := func(id packet.NodeID, st node.Stack) node.Stack {
		if cfg.StackWrapper != nil {
			return cfg.StackWrapper(id, st)
		}
		return st
	}
	inst, err := b.Build(&protocol.Env{
		World:          w,
		Metrics:        n.Metrics,
		Params:         params,
		SensorIDs:      n.SensorIDs,
		SensorPos:      sensors,
		GatewayIDs:     n.GatewayIDs,
		Places:         n.Places,
		Schedule:       cfg.Schedule,
		Rounds:         cfg.Rounds,
		RoundLen:       cfg.RoundLen,
		ReportInterval: cfg.ReportInterval,
		LEACHProb:      cfg.LEACHProb,
		SensorRange:    cfg.SensorRange,
		Side:           cfg.Side,
		Wrap:           wrap,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	n.Originators = inst.Originators
	n.Rounds = inst.Rounds
	n.LEACHRounds = inst.LEACHRounds
	n.PegasisRounds = inst.PegasisRounds

	if cfg.Faults != nil {
		n.injector = fault.Attach(cfg.Faults, fault.Env{
			World:    w,
			Metrics:  n.Metrics,
			Gateways: n.GatewayIDs,
			Sensors:  n.SensorIDs,
			Horizon:  cfg.RunFor,
			Seed:     cfg.Seed,
		})
	}

	if b := cfg.Obs; b != nil && b.Sample > 0 {
		b := b
		w.Kernel().Every(b.Sample, func() {
			if !b.Active() {
				return
			}
			now := w.Kernel().Now()
			b.Emit(obs.Event{At: now, Kind: obs.Sample, Detail: "in_flight", Value: int64(m.PendingCount())})
			b.Emit(obs.Event{At: now, Kind: obs.Sample, Detail: "queue_depth", Value: int64(w.LinkQueueDepth())})
			b.Emit(obs.Event{At: now, Kind: obs.Sample, Detail: "sensors_alive", Value: int64(w.SensorsAlive())})
			b.Emit(obs.Event{At: now, Kind: obs.Sample, Detail: "energy_uj", Value: int64(w.SensorEnergyStats().Mean * 1e6)})
		})
	}

	if cfg.Mutate != nil {
		cfg.Mutate(n)
	}
	return n, nil
}

// StartTraffic schedules the reporting workload: unconditional periodic
// reports by default, or TEEN threshold-sensitive reports when configured.
func (n *Net) StartTraffic() {
	cfg := n.Cfg
	payload := make([]byte, cfg.PayloadSize)
	k := n.World.Kernel()
	for _, id := range n.SensorIDs {
		id := id
		var filter *sensing.TEEN
		if cfg.TEEN != nil {
			filter = sensing.NewTEEN(cfg.TEEN.Hard, cfg.TEEN.Soft)
			n.teens = append(n.teens, filter)
		}
		report := func() {
			o, ok := n.Originators[id]
			if !ok {
				return
			}
			if filter == nil {
				o.OriginateData(payload)
				return
			}
			d := n.World.Device(id)
			if d == nil || !d.Alive() {
				return
			}
			v := cfg.TEEN.Field.ValueAt(d.Pos(), d.Now())
			if filter.Sample(v) {
				o.OriginateData(fmt.Appendf(nil, "v=%.2f", v))
			}
		}
		// The phase draw stays on the world kernel's RNG — StartTraffic runs
		// sequentially, so the stream is identical whatever Shards is. The
		// timers land on the device's own kernel (the world kernel when
		// sequential, its region lane when sharded), so each sensor's
		// reporting runs on the worker that owns it.
		phase := cfg.Warmup + sim.Duration(k.Rand().Int63n(int64(cfg.ReportInterval)))
		dev := n.World.Device(id)
		start := func() {
			report()
			var rep *sim.Repeater
			if dev != nil {
				rep = dev.Every(cfg.ReportInterval, report)
			} else {
				rep = k.Every(cfg.ReportInterval, report)
			}
			n.trafficMu.Lock()
			n.trafficStop = append(n.trafficStop, rep)
			n.trafficMu.Unlock()
		}
		if dev != nil {
			dev.After(phase, start)
		} else {
			k.After(phase, start)
		}
	}
}

// TEENStats aggregates the threshold filters' activity (zero when TEEN
// reporting is not configured).
func (n *Net) TEENStats() (samples, reports uint64) {
	for _, f := range n.teens {
		samples += f.Samples
		reports += f.Reports
	}
	return samples, reports
}

// StopTraffic cancels the reporting workload.
func (n *Net) StopTraffic() {
	n.trafficMu.Lock()
	defer n.trafficMu.Unlock()
	for _, r := range n.trafficStop {
		r.Stop()
	}
	n.trafficStop = nil
}

// Result summarizes a completed run.
type Result struct {
	Cfg          Config
	Metrics      *core.Metrics
	Energy       energy.Stats
	Radio        radio.Stats
	FirstDeath   sim.Time // -1 if no sensor died
	SensorsAlive int
	SensorsTotal int
	Elapsed      sim.Time
	// LinkInFlight is the number of frames still occupying link-ARQ
	// forwarding queues when the run ended (always 0 with ARQ disabled).
	// A horizon-bounded run can legitimately end mid-flight; this is the
	// in-flight term for metrics.CheckLinkConservation.
	LinkInFlight uint64
	// Reliability summarizes fault recovery; nil unless Config.Faults was
	// set.
	Reliability *fault.Reliability
}

// Run builds the network, drives traffic for cfg.RunFor, and summarizes.
// It is the legacy panicking wrapper over RunE, kept for existing callers
// and terse test code; new code should prefer RunE (validation errors) or
// RunContext (validation errors plus cancellation and deadlines).
func Run(cfg Config) Result {
	res, err := RunE(cfg)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// RunE builds the network, drives traffic for cfg.RunFor, and summarizes,
// returning an error instead of panicking on an invalid configuration. It is
// RunContext with a background context: no cancellation, identical code
// path, identical results.
//
// Runs launched here draw their kernel/radio storage from a shared arena
// pool: the world is private to this call and fully torn down before
// returning, so its event structs and delivery buffers are recycled into
// the next run instead of being garbage. Callers composing Build/BuildE +
// RunTraffic themselves keep plain GC-managed worlds.
func RunE(cfg Config) (Result, error) {
	return runContext(context.Background(), cfg)
}

// RunMany executes every config on a bounded worker pool and returns the
// results in cfgs order. Each run owns its kernel, RNG and world, and
// results are merged by submission index, so the output is bit-identical to
// calling Run in a loop regardless of workers (workers<=0 selects one per
// CPU, 1 forces sequential execution). Configs with Mutate/StackWrapper
// hooks are safe as long as the hooks touch only their own run's state.
//
// RunMany is the legacy buffering form: it panics on the first invalid
// config and holds every Result until the whole sweep finishes. Callers that
// need cancellation, per-run errors, or incremental delivery should use
// RunManyContext or RunEach, which RunMany wraps.
func RunMany(workers int, cfgs []Config) []Result {
	out, err := RunManyContext(context.Background(), workers, cfgs)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// RunTraffic starts traffic on an already-built network and runs to the
// horizon (or first sensor death when configured).
func (n *Net) RunTraffic() Result {
	cfg := n.Cfg
	if cfg.StopAtFirstDeath {
		n.World.OnDeath(func(r node.DeathRecord) {
			if n.World.FirstSensorDeath() >= 0 {
				n.World.Kernel().Stop()
			}
		})
	}
	n.StartTraffic()
	n.World.Run(cfg.RunFor)
	res := n.Summarize()
	cfg.Progress.MarkDone()
	return res
}

// Summarize captures the current state as a Result.
func (n *Net) Summarize() Result {
	n.Metrics.Settle() // resolve sharded delivery candidates before field reads
	var rel *fault.Reliability
	if n.injector != nil {
		rel = n.injector.Finish()
	}
	return Result{
		Reliability:  rel,
		Cfg:          n.Cfg,
		Metrics:      n.Metrics,
		Energy:       n.World.SensorEnergyStats(),
		Radio:        n.World.SensorMedium().Stats(),
		FirstDeath:   n.World.FirstSensorDeath(),
		SensorsAlive: n.World.SensorsAlive(),
		SensorsTotal: n.World.SensorsTotal(),
		Elapsed:      n.World.Kernel().Now(),
		LinkInFlight: n.World.LinkQueueDepth(),
	}
}
