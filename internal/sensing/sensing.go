// Package sensing provides the synthetic physical environment the sensors
// measure, and TEEN-style threshold-sensitive reporting (§2.2.2 [18]): a
// node transmits only when the sensed value crosses a hard threshold AND
// has moved by at least a soft threshold since its last report — trading
// data completeness for drastic traffic reduction in time-critical
// monitoring.
//
// The environment is a deterministic scalar field (ambient level plus
// Gaussian events that grow, plateau and decay), so experiments are
// reproducible without real traces — the substitution DESIGN.md records
// for the paper's unavailable deployment data.
package sensing

import (
	"math"

	"wmsn/internal/geom"
	"wmsn/internal/sim"
)

// Field is a scalar environment sampled by sensors.
type Field interface {
	// ValueAt returns the field value at position p and virtual time t.
	ValueAt(p geom.Point, t sim.Time) float64
}

// Ambient is a constant background field.
type Ambient float64

// ValueAt implements Field.
func (a Ambient) ValueAt(geom.Point, sim.Time) float64 { return float64(a) }

// Event is one localized disturbance: a spatial Gaussian whose intensity
// ramps up linearly over Ramp, holds for Hold, and decays linearly over
// Decay.
type Event struct {
	Center geom.Point
	Sigma  float64 // spatial spread, meters
	Peak   float64 // maximum added intensity at the center
	Start  sim.Time
	Ramp   sim.Duration
	Hold   sim.Duration
	Decay  sim.Duration
}

// intensity returns the event's time envelope in [0,1].
func (e Event) intensity(t sim.Time) float64 {
	dt := t - e.Start
	switch {
	case dt < 0:
		return 0
	case dt < e.Ramp:
		return float64(dt) / float64(e.Ramp)
	case dt < e.Ramp+e.Hold:
		return 1
	case dt < e.Ramp+e.Hold+e.Decay:
		return 1 - float64(dt-e.Ramp-e.Hold)/float64(e.Decay)
	default:
		return 0
	}
}

// EventField is an ambient level plus any number of events.
type EventField struct {
	Base   float64
	Events []Event
}

// ValueAt implements Field.
func (f *EventField) ValueAt(p geom.Point, t sim.Time) float64 {
	v := f.Base
	for _, e := range f.Events {
		w := e.intensity(t)
		if w == 0 {
			continue
		}
		d2 := p.Dist2(e.Center)
		v += e.Peak * w * math.Exp(-d2/(2*e.Sigma*e.Sigma))
	}
	return v
}

// TEEN is the per-node threshold filter. The zero value never reports; use
// NewTEEN.
type TEEN struct {
	// Hard is the absolute threshold a value must reach to be of interest.
	Hard float64
	// Soft is the minimum change from the last reported value that
	// justifies another transmission.
	Soft float64

	reported  bool
	lastValue float64

	// Samples and Reports count filter activity.
	Samples uint64
	Reports uint64
}

// NewTEEN creates a filter with the given thresholds.
func NewTEEN(hard, soft float64) *TEEN {
	return &TEEN{Hard: hard, Soft: soft}
}

// Sample feeds one sensed value and reports whether it should be
// transmitted: the first hard-threshold crossing always reports; afterwards
// a report requires the value to remain of interest and to have moved by at
// least Soft since the last report (§2.2.2: "as sensed data exceeds the
// hard threshold, the node ... send[s] the data").
func (t *TEEN) Sample(v float64) bool {
	t.Samples++
	if v < t.Hard {
		return false
	}
	if t.reported && math.Abs(v-t.lastValue) < t.Soft {
		return false
	}
	t.reported = true
	t.lastValue = v
	t.Reports++
	return true
}

// Reset clears the filter state (e.g. at a TEEN cluster-parameter change).
func (t *TEEN) Reset() {
	t.reported = false
	t.lastValue = 0
}

// SuppressionRatio returns the fraction of samples NOT transmitted.
func (t *TEEN) SuppressionRatio() float64 {
	if t.Samples == 0 {
		return 0
	}
	return 1 - float64(t.Reports)/float64(t.Samples)
}
