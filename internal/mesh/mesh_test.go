package mesh

import (
	"testing"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// meshWorld builds a backbone of mesh routers at the given positions with
// the given radio range. IDs are 100+i.
func meshWorld(t testing.TB, seed int64, positions []geom.Point, rangeM float64) (*node.World, *Backbone, []packet.NodeID) {
	t.Helper()
	w := node.NewWorld(node.Config{Seed: seed})
	var devs []*node.Device
	var ids []packet.NodeID
	for i, pos := range positions {
		id := packet.NodeID(100 + i)
		devs = append(devs, w.AddMeshRouter(id, pos, rangeM))
		ids = append(ids, id)
	}
	return w, NewBackbone(DefaultConfig(), devs...), ids
}

func chain(n int, spacing float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * spacing}
	}
	return pts
}

func TestMeshSelfOrganizes(t *testing.T) {
	w, b, ids := meshWorld(t, 1, chain(5, 100), 150)
	w.Run(20 * sim.Second)
	// Every router should know a route to every other.
	for _, src := range ids {
		r := b.Router(src)
		for _, dst := range ids {
			if dst == src {
				continue
			}
			if !r.Reachable(dst) {
				t.Fatalf("router %v has no route to %v (routes=%v)", src, dst, r.routes)
			}
		}
	}
	// Next hops follow the chain.
	if nh, _ := b.Router(ids[0]).NextHop(ids[4]); nh != ids[1] {
		t.Fatalf("NextHop(end) = %v, want %v", nh, ids[1])
	}
	if nh, _ := b.Router(ids[2]).NextHop(ids[0]); nh != ids[1] {
		t.Fatalf("NextHop(back) = %v, want %v", nh, ids[1])
	}
}

func TestMeshDeliversAcrossHops(t *testing.T) {
	w, b, ids := meshWorld(t, 1, chain(5, 100), 150)
	w.Run(20 * sim.Second)
	var got []*packet.Packet
	b.Router(ids[4]).OnDeliver = func(p *packet.Packet) { got = append(got, p.Clone()) }
	if !b.Router(ids[0]).SendTo(ids[4], 7, 42, []byte("sensor reading")) {
		t.Fatal("SendTo failed")
	}
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets", len(got))
	}
	p := got[0]
	if p.Origin != 7 || p.Seq != 42 || string(p.Payload) != "sensor reading" {
		t.Fatalf("delivered packet corrupted: %+v", p)
	}
	if p.Hops < 4 {
		t.Fatalf("hops = %d, want >= 4 across the chain", p.Hops)
	}
}

func TestMeshLocalDelivery(t *testing.T) {
	w, b, ids := meshWorld(t, 1, chain(2, 100), 150)
	w.Run(5 * sim.Second)
	got := 0
	b.Router(ids[0]).OnDeliver = func(*packet.Packet) { got++ }
	if !b.Router(ids[0]).SendTo(ids[0], 1, 1, []byte("loop")) {
		t.Fatal("local SendTo failed")
	}
	if got != 1 {
		t.Fatal("local delivery did not invoke OnDeliver synchronously")
	}
}

func TestMeshSelfHealsAroundFailedRouter(t *testing.T) {
	// Diamond: 100 -- {101 top, 102 bottom} -- 103.
	pts := []geom.Point{
		{X: 0, Y: 0},     // 100
		{X: 100, Y: 60},  // 101
		{X: 100, Y: -60}, // 102
		{X: 200, Y: 0},   // 103
	}
	w, b, ids := meshWorld(t, 2, pts, 150)
	w.Run(20 * sim.Second)
	if !b.Router(ids[0]).Reachable(ids[3]) {
		t.Fatal("no initial route across diamond")
	}
	// Kill whichever router node 100 currently routes through.
	nh, _ := b.Router(ids[0]).NextHop(ids[3])
	w.Device(nh).Fail()
	// Wait for hello timeout (3 intervals) plus convergence.
	w.Run(w.Kernel().Now() + 15*sim.Second)
	nh2, ok := b.Router(ids[0]).NextHop(ids[3])
	if !ok {
		t.Fatal("route not re-established after failure")
	}
	if nh2 == nh {
		t.Fatalf("route still points at dead router %v", nh)
	}
	delivered := 0
	b.Router(ids[3]).OnDeliver = func(*packet.Packet) { delivered++ }
	b.Router(ids[0]).SendTo(ids[3], 1, 1, []byte("after failover"))
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if delivered != 1 {
		t.Fatal("data not delivered over the healed backbone")
	}
}

func TestMeshPartitionDropsData(t *testing.T) {
	w, b, ids := meshWorld(t, 1, chain(3, 100), 150)
	w.Run(20 * sim.Second)
	// Kill the middle router: 0 and 2 are partitioned.
	w.Device(ids[1]).Fail()
	w.Run(w.Kernel().Now() + 15*sim.Second)
	if b.Router(ids[0]).Reachable(ids[2]) {
		t.Fatal("partitioned destination still in routing table")
	}
	if b.Router(ids[0]).SendTo(ids[2], 1, 1, []byte("x")) {
		t.Fatal("SendTo succeeded across a partition")
	}
	if b.Router(ids[0]).Stats().DataDropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestMeshJoiningRouterIntegrates(t *testing.T) {
	w, b, ids := meshWorld(t, 3, chain(2, 100), 150)
	w.Run(20 * sim.Second)
	// A third router appears beyond radio range of router 0.
	d := w.AddMeshRouter(200, geom.Point{X: 200}, 150)
	r := NewRouter(DefaultConfig())
	r.Attach(d)
	w.Run(w.Kernel().Now() + 20*sim.Second)
	if !b.Router(ids[0]).Reachable(200) {
		t.Fatal("existing router never learned the newcomer")
	}
	if !r.Reachable(ids[0]) {
		t.Fatal("newcomer never learned the existing mesh")
	}
	delivered := 0
	r.OnDeliver = func(*packet.Packet) { delivered++ }
	b.Router(ids[0]).SendTo(200, 5, 5, []byte("welcome"))
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if delivered != 1 {
		t.Fatal("data to newcomer lost")
	}
}

func TestMeshGatewayToBaseStation(t *testing.T) {
	// The real WMSN shape: gateways + WMRs + one base station.
	w := node.NewWorld(node.Config{Seed: 4})
	gw := w.AddGateway(1000, geom.Point{X: 0}, 30, 150, nil)
	wmr := w.AddMeshRouter(500, geom.Point{X: 120}, 150)
	bs := w.AddBaseStation(2000, geom.Point{X: 240}, 150)
	b := NewBackbone(DefaultConfig(), gw, wmr, bs)
	w.Run(20 * sim.Second)
	var got []*packet.Packet
	b.Router(2000).OnDeliver = func(p *packet.Packet) { got = append(got, p.Clone()) }
	if !b.Router(1000).SendTo(2000, 42, 1, []byte("temp=20")) {
		t.Fatal("gateway SendTo failed")
	}
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if len(got) != 1 || got[0].Origin != 42 {
		t.Fatalf("base station deliveries: %v", got)
	}
	st := b.TotalStats()
	if st.HellosSent == 0 || st.LSAsSent == 0 || st.DataForwarded == 0 {
		t.Fatalf("stats incomplete: %+v", st)
	}
}

func TestMeshLSARoundTrip(t *testing.T) {
	seq, nbrs, ok := parseLSA(marshalLSA(9, []packet.NodeID{1, 2, 3}))
	if !ok || seq != 9 || len(nbrs) != 3 || nbrs[2] != 3 {
		t.Fatalf("LSA round trip: %d %v %v", seq, nbrs, ok)
	}
	if _, _, ok := parseLSA([]byte{1, 2}); ok {
		t.Fatal("short LSA parsed")
	}
	if _, _, ok := parseLSA(marshalLSA(1, []packet.NodeID{1, 2})[:8]); ok {
		t.Fatal("truncated LSA parsed")
	}
}

func TestMeshStopHaltsControlPlane(t *testing.T) {
	w, b, ids := meshWorld(t, 5, chain(2, 100), 150)
	w.Run(10 * sim.Second)
	r := b.Router(ids[0])
	hellos := r.Stats().HellosSent
	r.Stop()
	w.Run(w.Kernel().Now() + 20*sim.Second)
	if r.Stats().HellosSent != hellos {
		t.Fatal("stopped router kept beaconing")
	}
}

func TestMeshDefaultConfigFallback(t *testing.T) {
	r := NewRouter(Config{})
	if r.Cfg.HelloInterval <= 0 || r.Cfg.TTL == 0 {
		t.Fatalf("zero config not defaulted: %+v", r.Cfg)
	}
}

// TestMeshRouterMobility moves a WMR mid-run: neighbors must time out its
// old links, learn the new ones from HELLOs, and re-route traffic through
// its new position (§3.2's "support the mobility of WMGs and WMRs").
func TestMeshRouterMobility(t *testing.T) {
	// 100 -- 101 -- 102, relay 101 then moves next to a different pair:
	// 100 -- ... -- 102 breaks, and 100 -- 101' -- 103 forms.
	pts := []geom.Point{
		{X: 0},           // 100
		{X: 120},         // 101 (mobile relay)
		{X: 240},         // 102
		{X: 120, Y: 300}, // 103 (reachable only after the move)
	}
	w, b, ids := meshWorld(t, 7, pts, 150)
	w.Run(20 * sim.Second)
	if !b.Router(ids[0]).Reachable(ids[2]) {
		t.Fatal("initial chain never formed")
	}
	if b.Router(ids[0]).Reachable(ids[3]) {
		t.Fatal("node 103 should start unreachable")
	}
	// Node 103 parks at (120,240) and the relay drives to (80,120):
	// distances become 100-relay 144 m and relay-103 126 m (both within the
	// 150 m mesh range) while relay-102 stretches to ~200 m (link lost).
	w.Device(ids[3]).Move(geom.Point{X: 120, Y: 240})
	w.Device(ids[1]).Move(geom.Point{X: 80, Y: 120})
	w.Run(w.Kernel().Now() + 30*sim.Second) // timeouts + re-advertisement
	r0 := b.Router(ids[0])
	if !r0.Reachable(ids[3]) {
		t.Fatalf("node 103 unreachable after relay moved (routes=%v)", r0.routes)
	}
	if r0.Reachable(ids[2]) {
		t.Fatal("stale route to 102 survived the move")
	}
	delivered := 0
	b.Router(ids[3]).OnDeliver = func(*packet.Packet) { delivered++ }
	r0.SendTo(ids[3], 1, 1, []byte("after move"))
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if delivered != 1 {
		t.Fatal("data not delivered through the moved relay")
	}
}

func TestMeshReHealsAfterRepeatedFailures(t *testing.T) {
	// Double diamond: two disjoint relay pairs between the endpoints, so
	// the mesh survives killing the active relay twice in a row.
	pts := []geom.Point{
		{X: 0, Y: 0},     // 100
		{X: 100, Y: 80},  // 101
		{X: 100, Y: -80}, // 102
		{X: 100, Y: 40},  // 103
		{X: 200, Y: 0},   // 104
	}
	w, b, ids := meshWorld(t, 11, pts, 160)
	w.Run(20 * sim.Second)
	dst := ids[4]
	if !b.Router(ids[0]).Reachable(dst) {
		t.Fatal("no initial route")
	}
	killed := map[packet.NodeID]bool{}
	for round := 1; round <= 2; round++ {
		nh, ok := b.Router(ids[0]).NextHop(dst)
		if !ok {
			t.Fatalf("round %d: no route before failure", round)
		}
		killed[nh] = true
		w.Device(nh).Fail()
		w.Run(w.Kernel().Now() + 20*sim.Second)
		nh2, ok := b.Router(ids[0]).NextHop(dst)
		if !ok {
			t.Fatalf("round %d: mesh did not re-heal after failure of %v", round, nh)
		}
		if killed[nh2] {
			t.Fatalf("round %d: route points at dead router %v", round, nh2)
		}
	}
	delivered := 0
	b.Router(dst).OnDeliver = func(*packet.Packet) { delivered++ }
	b.Router(ids[0]).SendTo(dst, 1, 1, []byte("still here"))
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if delivered != 1 {
		t.Fatal("data lost after two failovers")
	}
}

func TestMeshReHealsAfterRouterRecovery(t *testing.T) {
	// Chain 100 -- 101 -- 102: killing the middle router partitions the
	// ends; recovering it must re-join the mesh automatically and restore
	// end-to-end routing (§3's self-healing backbone).
	w, b, ids := meshWorld(t, 12, chain(3, 100), 150)
	w.Run(20 * sim.Second)
	w.Device(ids[1]).Fail()
	w.Run(w.Kernel().Now() + 15*sim.Second)
	if b.Router(ids[0]).Reachable(ids[2]) {
		t.Fatal("route survived the partition")
	}
	if !w.Device(ids[1]).Recover() {
		t.Fatal("Recover returned false for a dead router")
	}
	w.Run(w.Kernel().Now() + 20*sim.Second)
	if !b.Router(ids[0]).Reachable(ids[2]) {
		t.Fatal("recovered router did not re-join: ends still partitioned")
	}
	delivered := 0
	b.Router(ids[2]).OnDeliver = func(*packet.Packet) { delivered++ }
	b.Router(ids[0]).SendTo(ids[2], 1, 1, []byte("through the revenant"))
	w.Run(w.Kernel().Now() + 5*sim.Second)
	if delivered != 1 {
		t.Fatal("data not delivered through the recovered router")
	}
}

func TestMeshResumeAfterStop(t *testing.T) {
	// A politely stopped router (control-plane partition, device alive)
	// resumes beaconing and is relearned by its neighbors.
	w, b, ids := meshWorld(t, 13, chain(3, 100), 150)
	w.Run(20 * sim.Second)
	r := b.Router(ids[1])
	r.Stop()
	w.Run(w.Kernel().Now() + 15*sim.Second)
	if b.Router(ids[0]).Reachable(ids[2]) {
		t.Fatal("route survived the stopped relay")
	}
	hellos := r.Stats().HellosSent
	r.Resume()
	w.Run(w.Kernel().Now() + 20*sim.Second)
	if r.Stats().HellosSent == hellos {
		t.Fatal("resumed router never beaconed")
	}
	if !b.Router(ids[0]).Reachable(ids[2]) {
		t.Fatal("mesh did not re-converge after Resume")
	}
}
