// Battlefield: the §6 motivation for SecMLR. A sensor field tracks
// movement in contested terrain; gateways relocate every round to avoid
// targeting, and the adversary runs three simultaneous network-layer
// attacks — a sinkhole forging attractive routes, a replayer re-injecting
// captured packets, and a grayhole inside the network dropping the data it
// should forward. The same battle is fought twice: once with plain MLR,
// once with SecMLR.
//
//	go run ./examples/battlefield
package main

import (
	"fmt"
	"os"

	"wmsn"
)

const (
	side    = 200.0
	sensors = 90
	horizon = 240 * wmsn.Second
)

func main() {
	fmt.Println("== battlefield under attack: plain MLR vs SecMLR ==")
	for _, proto := range []wmsn.Protocol{wmsn.MLR, wmsn.SecMLR} {
		fight(proto)
	}
}

func fight(proto wmsn.Protocol) {
	var grayholes int
	net, err := wmsn.BuildE(wmsn.Config{
		Seed:           11,
		Protocol:       proto,
		NumSensors:     sensors,
		Side:           side,
		SensorRange:    40,
		NumGateways:    2,
		RoundLen:       40 * wmsn.Second, // gateways relocate to avoid targeting
		ReportInterval: 10 * wmsn.Second,
		RunFor:         horizon,
		SensorBattery:  1e6,

		// Insider compromise: every 10th sensor is captured and turned
		// into a grayhole that silently drops data it should forward.
		StackWrapper: func(id wmsn.NodeID, st wmsn.Stack) wmsn.Stack {
			if id%10 == 0 {
				grayholes++
				return &wmsn.SelectiveForwarder{Inner: st, DropProb: 1}
			}
			return st
		},

		// Outsider attackers appear once the field is deployed.
		Mutate: func(net *wmsn.Net) {
			// A sinkhole near the field center forges 1-hop routes.
			net.World.AddSensor(9001, wmsn.Point{X: side / 2, Y: side / 2}, 40, 0,
				&wmsn.Sinkhole{FakeGateway: wmsn.GatewayID(0), Place: 0, TTL: 16})
			// A replayer eavesdrops near a gateway place and re-injects.
			net.World.AddSensor(9002, wmsn.Point{X: side / 4, Y: side / 4}, 40, 0,
				wmsn.NewReplayer(3*wmsn.Second))
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "battlefield:", err)
		os.Exit(1)
	}

	res := net.RunTraffic()
	m := res.Metrics
	fmt.Printf("  [%s] %d grayholes inside, sinkhole + replayer outside\n", proto, grayholes)
	fmt.Printf("      delivery       : %.1f%% (%d of %d readings)\n",
		100*m.DeliveryRatio(), m.Delivered, m.Generated)
	fmt.Printf("      duplicates     : %d (accepted replays)\n", m.Duplicates)
	fmt.Printf("      rejected       : %d bad-MAC, %d replayed\n", m.RejectedMAC, m.RejectedReplay)
	fmt.Printf("      failovers      : %d (re-routes after missing ACKs)\n", m.Failovers)
	fmt.Printf("      abandoned data : %d\n\n", m.AbandonedData)
}
