# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short cover vet race bench bench-json bench-arq bench-hotpath bench-scale bench-guard scale-smoke scale-100k profile experiments experiments-quick faults soak fuzz examples service clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

vet:
	$(GO) vet ./...

# Full suite under the race detector; exercises the parallel experiment
# runner (TestParallelOutputByteIdentical and the runner package tests).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Snapshot the headline benchmarks (end-to-end throughput, kernel scheduling,
# parallel-runner speedup) as JSON into BENCH_baseline.json, diffed against
# the committed seed-revision snapshot (BENCH_seed.json).
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkEndToEndSPR$$|BenchmarkEndToEndSecMLR$$|BenchmarkExperimentParallel$$' -benchmem . > bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkKernelSchedule$$' -benchmem ./internal/sim/ >> bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkDedupe$$' -benchmem ./internal/packet/ >> bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkDelivery$$' -benchmem ./internal/radio/ >> bench_output.txt
	$(GO) run ./cmd/benchjson -prev BENCH_seed.json < bench_output.txt > BENCH_baseline.json
	rm -f bench_output.txt

# Link-ARQ hot-path A/B snapshot (BENCH_arq.json): the dormant-ARQ variant
# against the committed baseline (must be within noise), the armed variant
# quantifying ACK/queue overhead, and the lossy variant showing the payoff.
# The iteration count is pinned because each iteration runs seed i+1: a fixed
# count means a fixed seed set, making allocs/op exactly reproducible (the
# bench-guard contract).
bench-arq:
	$(GO) test -run='^$$' -bench='BenchmarkEndToEndSPR$$|BenchmarkEndToEndARQ' -benchmem -benchtime=8x . > bench_output.txt
	$(GO) run ./cmd/benchjson -prev BENCH_baseline.json < bench_output.txt > BENCH_arq.json
	rm -f bench_output.txt

# Hot-path A/B snapshot (BENCH_hotpath.json): batched radio delivery,
# spatial neighbor grid, bitset dedupe and the arena-backed run memory
# against the committed link-ARQ baseline (BENCH_arq.json). The end-to-end
# benchmarks keep the pinned iteration count so the vs_previous ratios are a
# clean same-machine A/B; the micro-benchmarks (dedupe, delivery, topology,
# grid query) record the new subsystems' costs for future diffs.
bench-hotpath:
	$(GO) test -run='^$$' -bench='BenchmarkEndToEndSPR$$|BenchmarkEndToEndARQ' -benchmem -benchtime=8x . > bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkDedupe$$' -benchmem -benchtime=8x ./internal/packet/ >> bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkDelivery$$' -benchmem -benchtime=8x ./internal/radio/ >> bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkPowerControlK$$|BenchmarkBuild$$' -benchmem ./internal/network/ >> bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkGridIndexQuery$$' -benchmem ./internal/geom/ >> bench_output.txt
	$(GO) run ./cmd/benchjson -prev BENCH_arq.json < bench_output.txt > BENCH_hotpath.json
	rm -f bench_output.txt

# Scale snapshot (BENCH_scale.json): the 10k and 100k E1-style sweeps and
# the sharded broadcast wave, one pinned iteration each so ns/op is the
# sweep's wall-clock and allocs/op is exactly reproducible. The end-to-end
# and dedupe guard rows ride along (same pinned counts as bench-hotpath) so
# bench-guard can diff against this snapshot going forward.
bench-scale:
	$(GO) test -run='^$$' -bench='BenchmarkEndToEndSPR$$|BenchmarkEndToEndARQ' -benchmem -benchtime=8x . > bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkDedupe$$' -benchmem -benchtime=8x ./internal/packet/ >> bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkScale' -benchmem -benchtime=1x ./internal/experiments/ >> bench_output.txt
	$(GO) run ./cmd/benchjson -prev BENCH_hotpath.json < bench_output.txt > BENCH_scale.json
	rm -f bench_output.txt

# Allocation guard: the end-to-end benchmarks (pinned seed set, so allocs/op
# are exactly reproducible) and the dedupe micro-benchmark may not allocate
# more per op than the committed BENCH_scale.json baseline. The zero-alloc
# test first pins that dormant telemetry (histograms, progress probes) costs
# nothing on the hot path — the histograms are inline arrays in Memory, so
# the end-to-end allocs/op rows must not move either.
bench-guard:
	$(GO) test -run='TestObserveZeroAlloc' -count=1 ./internal/metrics/
	$(GO) test -run='^$$' -bench='BenchmarkEndToEndSPR$$|BenchmarkEndToEndARQ' -benchmem -benchtime=8x . > bench_output.txt
	$(GO) test -run='^$$' -bench='BenchmarkDedupe$$' -benchmem -benchtime=8x ./internal/packet/ >> bench_output.txt
	$(GO) run ./cmd/benchjson -prev BENCH_scale.json -guard-allocs 1.0 < bench_output.txt > /dev/null
	rm -f bench_output.txt

# 10k-node scalability smoke: the E1-style placement sweep, connectivity
# analysis and radio broadcast wave under the race detector, then the
# wmsnbench one-off sweep (wall-clock printed per row).
scale-smoke:
	$(GO) test -race -v -run 'TestScale10k' ./internal/experiments/
	$(GO) run ./cmd/wmsnbench -scale -n 10000 -shards 4

# 100k-node sweep without the race detector (its shadow memory makes 100k
# fields pointlessly slow): the hop sweep plus the region-sharded broadcast
# wave, with a CPU profile for the CI artifact.
scale-100k:
	$(GO) run ./cmd/wmsnbench -scale -n 100000 -shards 4 -cpuprofile scale100k.prof

# CPU and heap profiles of the quick experiment suite (see DESIGN.md,
# "Profiling"); inspect with `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/wmsnbench -quick -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof and mem.prof; inspect with: go tool pprof cpu.prof"

# Regenerate every reproduced table/figure at full scale (~8 minutes).
experiments:
	$(GO) run ./cmd/wmsnbench

experiments-quick:
	$(GO) run ./cmd/wmsnbench -quick

# Fault-injection subsystem under the race detector: the fault package
# (including compromise campaigns), the adversary stacks, the
# scenario-level failover/determinism tests, and the mesh re-heal tests.
faults:
	$(GO) test -race ./internal/fault/
	$(GO) test -race ./internal/attack/
	$(GO) test -race -run 'Fault|Churn|FailsOver|Validate|RunE|Compromised' ./internal/scenario/
	$(GO) test -race -run 'ReHeals|Resume' ./internal/mesh/

# Seeded chaos/soak harness under the race detector: randomized fault
# plans on lossy media with link ARQ armed, plus attack-randomized
# compromise campaigns (TestSoakAttacks*), structural invariants
# (conservation ledger, queue drain, timer hygiene) checked per trial.
soak:
	$(GO) test -race -v -run 'Soak|InvariantViolation' ./internal/chaos/ -soak.trials=16

# Short fuzzing pass over every wire-format parser.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/packet/
	$(GO) test -fuzz=FuzzParseRReqBlocks -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzParseNotifyPayloads -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzSecMLRGatewayInput -fuzztime=30s ./internal/core/

# Simulation-as-a-service daemon: build the binary, then the endpoint,
# cancellation and 64-client load tests under the race detector.
service:
	$(GO) build ./cmd/wmsnd
	$(GO) test -race -v ./internal/service/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/forestfire
	$(GO) run ./examples/battlefield
	$(GO) run ./examples/building

clean:
	rm -f cover.out wmsnbench test_output.txt bench_output.txt cpu.prof mem.prof
