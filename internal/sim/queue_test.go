package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// --- Timer.Stop vs heap positions -------------------------------------------

// collectFires schedules one marker event per instant and returns the fire
// order observed by RunAll.
func collectFires(k *Kernel, ats []Time) (timers []*Timer, fired *[]Time) {
	out := &[]Time{}
	for _, at := range ats {
		at := at
		timers = append(timers, k.ScheduleAt(at, func() { *out = append(*out, at) }))
	}
	return timers, out
}

func TestTimerStopHead(t *testing.T) {
	k := NewKernel(1)
	timers, fired := collectFires(k, []Time{10, 20, 30, 40, 50})
	if !timers[0].Stop() {
		t.Fatal("stopping the head event returned false")
	}
	k.RunAll()
	want := []Time{20, 30, 40, 50}
	assertTimes(t, *fired, want)
}

func TestTimerStopMiddle(t *testing.T) {
	k := NewKernel(1)
	timers, fired := collectFires(k, []Time{10, 20, 30, 40, 50})
	if !timers[2].Stop() {
		t.Fatal("stopping a middle event returned false")
	}
	k.RunAll()
	assertTimes(t, *fired, []Time{10, 20, 40, 50})
}

func TestTimerStopLast(t *testing.T) {
	k := NewKernel(1)
	timers, fired := collectFires(k, []Time{10, 20, 30, 40, 50})
	if !timers[4].Stop() {
		t.Fatal("stopping the last event returned false")
	}
	k.RunAll()
	assertTimes(t, *fired, []Time{10, 20, 30, 40})
}

func TestTimerStopAlreadyFired(t *testing.T) {
	k := NewKernel(1)
	count := 0
	tm := k.After(10, func() { count++ })
	k.RunAll()
	if tm.Pending() {
		t.Fatal("timer pending after firing")
	}
	if tm.Stop() {
		t.Fatal("Stop on a fired timer returned true")
	}
	if count != 1 {
		t.Fatalf("event fired %d times, want 1", count)
	}
}

// A stale Timer whose event struct has been recycled for a new schedule must
// not cancel (or report pending for) the new incarnation — the generation
// counter guards exactly this.
func TestStaleTimerDoesNotCancelRecycledEvent(t *testing.T) {
	k := NewKernel(1)
	stale := k.After(5, func() {})
	k.RunAll() // fires; the event struct returns to the free list

	fired := false
	k.After(10, func() { fired = true }) // recycles the same struct
	if stale.Pending() {
		t.Fatal("stale timer reports pending after its event was recycled")
	}
	if stale.Stop() {
		t.Fatal("stale timer cancelled a recycled event")
	}
	k.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestStoppedTimerEventIsRecycledSafely(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(10, func() { t.Fatal("cancelled event fired") })
	if !tm.Stop() {
		t.Fatal("Stop returned false on a pending timer")
	}
	// The cancelled event's struct is now free; reuse it and make sure the
	// old handle stays dead.
	fired := false
	k.After(20, func() { fired = true })
	if tm.Stop() || tm.Pending() {
		t.Fatal("stopped timer came back to life after recycling")
	}
	k.RunAll()
	if !fired {
		t.Fatal("new event did not fire")
	}
}

// Property: cancelling an arbitrary subset of an arbitrary schedule fires
// exactly the survivors, in time order.
func TestQuickStopArbitrarySubset(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		k := NewKernel(3)
		var fired []Time
		var want []Time
		var timers []*Timer
		for _, r := range raw {
			at := Time(r)
			timers = append(timers, k.ScheduleAt(at, func() { fired = append(fired, at) }))
		}
		for i, tm := range timers {
			if i < len(mask) && mask[i] {
				if !tm.Stop() {
					return false
				}
			} else {
				want = append(want, Time(raw[i]))
			}
		}
		k.RunAll()
		if len(fired) != len(want) {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func assertTimes(t *testing.T, got, want []Time) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// --- allocation pinning ------------------------------------------------------

// The arg-carrying hot path must not allocate at steady state: the event
// struct comes from the free list, no Timer handle and no closure exist.
func TestScheduleArgAtZeroAllocs(t *testing.T) {
	k := NewKernel(1)
	fn := func(any) {}
	// Warm the pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		k.ScheduleArgAt(k.Now(), fn, nil)
	}
	k.RunAll()
	avg := testing.AllocsPerRun(200, func() {
		k.ScheduleArgAt(k.Now()+1, fn, nil)
		k.Step()
	})
	if avg != 0 {
		t.Fatalf("ScheduleArgAt+Step allocates %.2f per event, want 0", avg)
	}
}

// The Timer-returning path may allocate the handle but nothing else once the
// pool is warm.
func TestScheduleAtAllocsBounded(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		k.ScheduleArgAt(k.Now(), func(any) {}, nil)
	}
	k.RunAll()
	avg := testing.AllocsPerRun(200, func() {
		k.ScheduleAt(k.Now()+1, fn)
		k.Step()
	})
	if avg > 1 {
		t.Fatalf("ScheduleAt+Step allocates %.2f per event, want <=1 (the Timer handle)", avg)
	}
}

// --- benchmarks --------------------------------------------------------------

// BenchmarkKernelSchedule measures the schedule+fire cycle in isolation on a
// standing queue of 1024 events, for both the Timer path and the arg path.
func BenchmarkKernelSchedule(b *testing.B) {
	b.Run("arg", func(b *testing.B) {
		k := NewKernel(1)
		fn := func(any) {}
		for i := 0; i < 1024; i++ {
			k.ScheduleArgAt(Time(i), fn, nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.ScheduleArgAt(k.Now()+1024, fn, nil)
			k.Step()
		}
	})
	b.Run("timer", func(b *testing.B) {
		k := NewKernel(1)
		fn := func() {}
		for i := 0; i < 1024; i++ {
			k.ScheduleAt(Time(i), fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.ScheduleAt(k.Now()+1024, fn)
			k.Step()
		}
	})
}

// BenchmarkKernelChurn measures a randomized schedule/run mix closer to a
// real simulation's event pattern.
func BenchmarkKernelChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel(1)
		fn := func(any) {}
		for j := 0; j < 1000; j++ {
			k.ScheduleArgAt(Time(rng.Int63n(1_000_000)), fn, nil)
		}
		k.RunAll()
	}
}
