// Package attack implements the network-layer adversaries the paper lists
// (§2.3, citing Karlof & Wagner, and §6): spoofed/altered/replayed routing
// information, selective forwarding, sinkhole, Sybil, wormholes, HELLO
// floods and acknowledgment spoofing.
//
// Each attacker is a node.Stack (or a wrapper around a legitimate stack for
// insider attacks) so that the same adversary can be dropped into an MLR or
// a SecMLR network; experiment E9 runs the full matrix and reports which
// attacks each protocol survives.
package attack

import (
	"math/rand"

	"wmsn/internal/core"
	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Counters tracks what an attacker managed to do; the experiment harness
// reads these alongside the victim network's core.Metrics.
type Counters struct {
	Captured uint64 // packets observed
	Injected uint64 // packets put on the air by the attacker
	Dropped  uint64 // packets the attacker swallowed instead of forwarding
}

// NodeRand returns the deterministic private RNG for an attacker bound to
// the given node: a stream seeded from the scenario seed and the node ID
// only. Attackers must never draw from the world kernel's RNG — under
// Config.Shards that RNG is per-lane, so one attacker's draw would perturb
// every other consumer on its lane and the campaign would depend on the
// shard count.
func NodeRand(seed int64, id packet.NodeID) *rand.Rand {
	const mix = int64(-0x61C8864680B583EB) // golden-ratio multiplier, two's complement
	return rand.New(rand.NewSource(seed ^ int64(id)*mix))
}

// noteDrop counts one swallowed packet: the attacker's own Counters always
// move; when the attacker was installed by the fault injector, the run's
// metrics sink (AttackerDropped) and obs bus (AttackDrop) move with them.
func noteDrop(dev *node.Device, sink metrics.Sink, c *Counters, p *packet.Packet, kind string) {
	c.Dropped++
	if sink != nil {
		sink.Inc(metrics.AttackerDropped)
	}
	if dev == nil {
		return
	}
	if b := dev.World().Obs(); b.Active() {
		b.Emit(obs.Event{At: dev.Now(), Kind: obs.AttackDrop, Node: dev.ID(),
			Origin: p.Origin, Seq: p.Seq, Detail: kind})
	}
}

// noteInject counts one packet the attacker put on the air, mirroring into
// the metrics sink (AttackerInjected) and obs bus (AttackInject) when set.
func noteInject(dev *node.Device, sink metrics.Sink, c *Counters, p *packet.Packet, kind string) {
	c.Injected++
	if sink != nil {
		sink.Inc(metrics.AttackerInjected)
	}
	if dev == nil {
		return
	}
	if b := dev.World().Obs(); b.Active() {
		b.Emit(obs.Event{At: dev.Now(), Kind: obs.AttackInject, Node: dev.ID(),
			Origin: p.Origin, Seq: p.Seq, Detail: kind})
	}
}

// passInner hands p to the wrapped legitimate stack, filtering out frames
// the stack would never have seen without the attacker's promiscuous radio:
// a compromised insider keeps routing exactly as before, it just also
// eavesdrops.
func passInner(dev *node.Device, inner node.Stack, p *packet.Packet) {
	if inner == nil {
		return
	}
	if p.To != dev.ID() && p.To != packet.Broadcast {
		return // overheard promiscuously; not the inner stack's traffic
	}
	inner.HandleMessage(p)
}

// SelectiveForwarder is the insider grayhole: it participates in routing
// normally (via the wrapped legitimate stack) but silently drops a fraction
// of the DATA packets it should forward. DropProb 1.0 is the blackhole.
type SelectiveForwarder struct {
	Inner    node.Stack
	DropProb float64
	// Rng, when set, is the attacker's private drop-decision stream
	// (NodeRand). Nil falls back to the world kernel's RNG, which is only
	// safe in unsharded runs; the fault injector always sets it.
	Rng *rand.Rand
	// Metrics, when set, mirrors drops into the run sink (AttackerDropped).
	Metrics  metrics.Sink
	Counters Counters

	dev *node.Device
	// kindLabel overrides the "selective-forward" drop label so a blackhole
	// campaign (DropProb 1) reports under its own attack kind.
	kindLabel string
}

// Start implements node.Stack.
func (a *SelectiveForwarder) Start(dev *node.Device) {
	a.dev = dev
	a.Inner.Start(dev)
}

// HandleMessage implements node.Stack.
func (a *SelectiveForwarder) HandleMessage(p *packet.Packet) {
	if a.dev == nil {
		return // not attached to a device yet
	}
	if p.Kind == packet.KindData && p.Origin != a.dev.ID() {
		if a.DropProb >= 1 || a.rand().Float64() < a.DropProb {
			label := a.kindLabel
			if label == "" {
				label = "selective-forward"
			}
			noteDrop(a.dev, a.Metrics, &a.Counters, p, label)
			return
		}
	}
	a.Inner.HandleMessage(p)
}

func (a *SelectiveForwarder) rand() *rand.Rand {
	if a.Rng != nil {
		return a.Rng
	}
	return a.dev.World().Kernel().Rand()
}

// Replayer captures packets of the configured kinds promiscuously and
// re-injects each one verbatim after Delay. Against plain MLR the replayed
// data is re-delivered (and double-counted upstream); against SecMLR the
// gateway's counters reject it.
type Replayer struct {
	Kinds map[packet.Kind]bool
	Delay sim.Duration
	// Jitter spreads each replay by an extra uniform [0, Jitter) draw from
	// the attacker's private Rng, de-synchronizing fraction-wide campaigns;
	// 0 replays at exactly Delay and draws nothing.
	Jitter sim.Duration
	// MaxCopies caps total injections; <= 0 selects DefaultReplayMaxCopies.
	MaxCopies int
	// Inner, when set, keeps the victim's legitimate stack running under
	// the replayer (insider compromise); nil is the stand-alone
	// eavesdropper node of experiment E9.
	Inner node.Stack
	// Rng is the private jitter stream (NodeRand); nil falls back to the
	// world kernel's RNG, which is only safe in unsharded runs.
	Rng *rand.Rand
	// Metrics, when set, mirrors injections into the run sink.
	Metrics  metrics.Sink
	Counters Counters

	dev *node.Device
	// scheduled counts replays armed (not yet necessarily sent); the
	// MaxCopies cap gates on it so a burst of captures inside one Delay
	// window cannot overshoot the budget before the first send lands.
	scheduled int
}

// DefaultReplayMaxCopies is the injection cap a Replayer falls back to when
// MaxCopies is unset: large enough to be unbounded for any realistic run,
// small enough that a misconfigured campaign cannot overflow the Injected
// counter comparison.
const DefaultReplayMaxCopies = 1 << 20

// NewReplayer builds a replayer for the given kinds (default: DATA only).
func NewReplayer(delay sim.Duration, kinds ...packet.Kind) *Replayer {
	r := &Replayer{Kinds: make(map[packet.Kind]bool), Delay: delay, MaxCopies: DefaultReplayMaxCopies}
	if len(kinds) == 0 {
		kinds = []packet.Kind{packet.KindData}
	}
	for _, k := range kinds {
		r.Kinds[k] = true
	}
	return r
}

// Start implements node.Stack. The device should be marked Promiscuous by
// the scenario so unicast traffic is observable.
func (a *Replayer) Start(dev *node.Device) {
	a.dev = dev
	dev.SetPromiscuous(true)
}

// HandleMessage implements node.Stack.
func (a *Replayer) HandleMessage(p *packet.Packet) {
	if a.dev == nil {
		return // not attached to a device yet
	}
	if !a.Kinds[p.Kind] || p.From == a.dev.ID() {
		passInner(a.dev, a.Inner, p)
		return
	}
	a.Counters.Captured++
	if a.scheduled >= a.maxCopies() {
		passInner(a.dev, a.Inner, p)
		return
	}
	a.scheduled++
	cp := p.Clone()
	delay := a.Delay
	if a.Jitter > 0 {
		delay += sim.Duration(a.rand().Int63n(int64(a.Jitter)))
	}
	a.dev.After(delay, func() {
		if !a.dev.Alive() {
			return
		}
		rep := cp.Clone()
		rep.From = a.dev.ID() // link-layer sender is the attacker's radio
		if a.dev.Send(rep) {
			noteInject(a.dev, a.Metrics, &a.Counters, rep, "replay")
		}
	})
	passInner(a.dev, a.Inner, p)
}

func (a *Replayer) maxCopies() int {
	if a.MaxCopies > 0 {
		return a.MaxCopies
	}
	return DefaultReplayMaxCopies
}

func (a *Replayer) rand() *rand.Rand {
	if a.Rng != nil {
		return a.Rng
	}
	return a.dev.World().Kernel().Rand()
}

// Sinkhole advertises irresistibly short routes and swallows the attracted
// traffic: on overhearing an RREQ it immediately answers with a forged RRES
// claiming the queried gateway is one hop behind the attacker. Plain MLR
// sensors believe it (spoofed routing information); SecMLR sensors reject
// the response for lack of a valid gateway MAC.
type Sinkhole struct {
	// FakeGateway is the gateway identity whose proximity is claimed.
	FakeGateway packet.NodeID
	// Place is the feasible-place index advertised.
	Place int
	TTL   uint8
	// Inner, when set, keeps the victim's legitimate stack running for
	// non-DATA traffic (insider compromise); lured DATA never reaches it.
	Inner node.Stack
	// Metrics, when set, mirrors forged responses and swallowed packets
	// into the run sink.
	Metrics  metrics.Sink
	Counters Counters

	dev *node.Device
}

// Start implements node.Stack.
func (a *Sinkhole) Start(dev *node.Device) {
	a.dev = dev
	dev.SetPromiscuous(true)
}

// HandleMessage implements node.Stack.
func (a *Sinkhole) HandleMessage(p *packet.Packet) {
	if a.dev == nil {
		return // not attached to a device yet
	}
	switch p.Kind {
	case packet.KindRReq:
		a.Counters.Captured++
		// Forge: <origin-path..., me, gateway> — a 1-hop-behind-me claim.
		full := p.AppendHop(a.dev.ID())
		full = append(full, a.FakeGateway)
		res := &packet.Packet{
			Kind:    packet.KindRRes,
			From:    a.dev.ID(),
			To:      p.From,
			Origin:  a.FakeGateway,
			Target:  p.Origin,
			Seq:     p.Seq,
			TTL:     a.TTL,
			Path:    full,
			Payload: core.EncodePlacePayload(a.Place, nil),
		}
		if a.dev.Send(res) {
			noteInject(a.dev, a.Metrics, &a.Counters, res, "sinkhole")
		}
		passInner(a.dev, a.Inner, p)
	case packet.KindData:
		// Attracted traffic disappears. Only packets addressed to the
		// attacker count as swallowed — promiscuously overheard copies of
		// other links' frames were never the sinkhole's to lose.
		if p.To == a.dev.ID() {
			noteDrop(a.dev, a.Metrics, &a.Counters, p, "sinkhole")
		}
	default:
		passInner(a.dev, a.Inner, p)
	}
}

// HelloFlood models the long-range forged broadcast: a powerful transmitter
// periodically floods forged NOTIFYs claiming a gateway moved to the
// attacker's place, so distant plain-MLR sensors redirect data toward a
// position where nothing listens. SecMLR sensors discard it (no valid TESLA
// tag can be produced).
type HelloFlood struct {
	// Gateway is the impersonated gateway ID.
	Gateway packet.NodeID
	// Place is the place index falsely claimed.
	Place int
	// PrevPlace is the place falsely vacated (core.NoPlace for none).
	PrevPlace int
	// Range is the boosted transmission radius; <= 0 uses the node's own
	// radio range (the insider variant the fault injector installs).
	Range    float64
	Interval sim.Duration
	TTL      uint8
	// Inner, when set, keeps the victim's legitimate stack handling traffic
	// while the flood runs on top (insider compromise).
	Inner node.Stack
	// Metrics, when set, mirrors forged broadcasts into the run sink.
	Metrics  metrics.Sink
	Counters Counters

	dev *node.Device
	seq uint32
	rep *sim.Repeater
}

// Start implements node.Stack and begins flooding.
func (a *HelloFlood) Start(dev *node.Device) {
	a.dev = dev
	a.flood()
	a.rep = dev.Every(a.Interval, a.flood)
}

// Stop halts the flood.
func (a *HelloFlood) Stop() {
	if a.rep != nil {
		a.rep.Stop()
	}
}

func (a *HelloFlood) flood() {
	if !a.dev.Alive() {
		return
	}
	a.seq++
	pkt := &packet.Packet{
		Kind:    packet.KindNotify,
		From:    a.dev.ID(),
		To:      packet.Broadcast,
		Origin:  a.Gateway, // spoofed
		Target:  packet.Broadcast,
		Seq:     0xFFFF0000 + a.seq, // avoid colliding with genuine seqs
		TTL:     a.TTL,
		Payload: core.EncodeNotifyPayload(a.Place, a.PrevPlace, 9999),
	}
	sent := false
	if a.Range > 0 {
		sent = a.dev.SendRange(pkt, a.Range)
	} else {
		sent = a.dev.Send(pkt)
	}
	if sent {
		noteInject(a.dev, a.Metrics, &a.Counters, pkt, "spoofed-routing")
	}
}

// HandleMessage implements node.Stack.
func (a *HelloFlood) HandleMessage(p *packet.Packet) {
	passInner(a.dev, a.Inner, p)
}

// Sybil originates data under many forged identities. A plain-MLR gateway
// accepts the pollution as real sensor readings; a SecMLR gateway rejects
// every identity it holds no key for.
type Sybil struct {
	Identities []packet.NodeID
	// Gateway / Place address the forged data like a legitimate reading.
	Gateway  packet.NodeID
	Place    int
	NextHop  packet.NodeID // first hop toward the gateway (Broadcast works too)
	Interval sim.Duration
	TTL      uint8
	Counters Counters

	dev *node.Device
	seq uint32
	rep *sim.Repeater
}

// Start implements node.Stack and begins injecting.
func (a *Sybil) Start(dev *node.Device) {
	a.dev = dev
	a.rep = dev.Every(a.Interval, a.inject)
}

// Stop halts injection.
func (a *Sybil) Stop() {
	if a.rep != nil {
		a.rep.Stop()
	}
}

func (a *Sybil) inject() {
	if !a.dev.Alive() {
		return
	}
	for _, id := range a.Identities {
		a.seq++
		pkt := &packet.Packet{
			Kind:    packet.KindData,
			From:    a.dev.ID(),
			To:      a.NextHop,
			Origin:  id, // forged
			Target:  a.Gateway,
			Seq:     a.seq,
			TTL:     a.TTL,
			Payload: core.EncodePlacePayload(a.Place, []byte("forged")),
		}
		if a.dev.Send(pkt) {
			a.Counters.Injected++
		}
	}
}

// HandleMessage implements node.Stack.
func (a *Sybil) HandleMessage(*packet.Packet) {}

// Wormhole tunnels overheard control packets between two colluding radios
// through an out-of-band channel, making distant parts of the network look
// adjacent. Route discovery then prefers the wormhole's phantom shortcut;
// data sent into it is dropped.
type Wormhole struct {
	Counters Counters
	a, b     *wormholeEnd
}

type wormholeEnd struct {
	w    *Wormhole
	peer *wormholeEnd
	dev  *node.Device
}

// NewWormhole creates the two cooperating endpoint stacks.
func NewWormhole() (*Wormhole, node.Stack, node.Stack) {
	w := &Wormhole{}
	a := &wormholeEnd{w: w}
	b := &wormholeEnd{w: w}
	a.peer, b.peer = b, a
	w.a, w.b = a, b
	return w, a, b
}

// Start implements node.Stack.
func (e *wormholeEnd) Start(dev *node.Device) {
	e.dev = dev
	dev.SetPromiscuous(true)
}

// HandleMessage implements node.Stack.
func (e *wormholeEnd) HandleMessage(p *packet.Packet) {
	if e.dev == nil {
		return // not attached to a device yet
	}
	switch p.Kind {
	case packet.KindRReq, packet.KindRRes, packet.KindNotify:
		e.w.Counters.Captured++
		if e.peer.dev == nil || !e.peer.dev.Alive() {
			return
		}
		// Tunnel instantly (out-of-band link) and replay at the far end,
		// preserving the packet contents verbatim: the path now implies
		// that nodes around end A are one hop from nodes around end B.
		cp := p.Clone()
		cp.From = e.peer.dev.ID()
		if p.Kind == packet.KindRRes {
			// Deliver the tunneled response straight to its final target,
			// who is (by wormhole placement) near the far end.
			cp.To = p.Target
		}
		peer := e.peer
		e.dev.World().Kernel().After(sim.Microsecond, func() {
			if peer.dev != nil && peer.dev.Alive() && peer.dev.Send(cp) {
				e.w.Counters.Injected++
			}
		})
	case packet.KindData:
		// Data lured into the wormhole is swallowed.
		e.w.Counters.Dropped++
	}
}

// AckSpoofer forges gateway acknowledgments: an insider that participates
// in routing (via the wrapped legitimate stack) but, instead of forwarding
// DATA, drops it and immediately fakes the gateway's ACK so the source
// believes the delivery succeeded. Plain MLR has no ACKs (the attack
// degenerates to a blackhole); SecMLR rejects the forged ACK because it
// cannot carry a valid MAC, and the source fails over.
type AckSpoofer struct {
	// Inner is the legitimate stack the attacker runs to stay on paths.
	Inner    node.Stack
	Counters Counters

	dev *node.Device
}

// Start implements node.Stack.
func (a *AckSpoofer) Start(dev *node.Device) {
	a.dev = dev
	if a.Inner != nil {
		a.Inner.Start(dev)
	}
}

// HandleMessage implements node.Stack.
func (a *AckSpoofer) HandleMessage(p *packet.Packet) {
	if a.dev == nil {
		return // not attached to a device yet
	}
	if p.Kind != packet.KindData || p.To != a.dev.ID() || p.Origin == a.dev.ID() {
		if a.Inner != nil {
			a.Inner.HandleMessage(p)
		}
		return
	}
	a.Counters.Dropped++
	// Forge an ACK from the claimed gateway straight back to the origin.
	ack := &packet.Packet{
		Kind:    packet.KindAck,
		From:    a.dev.ID(),
		To:      p.From,
		Origin:  p.Target, // spoofed gateway identity
		Target:  p.Origin,
		Seq:     p.Seq,
		TTL:     8,
		Path:    []packet.NodeID{p.Target, a.dev.ID(), p.From, p.Origin},
		Payload: []byte{0, 0, 0, 0},
		Sec:     &packet.SecEnvelope{Counter: 1, Cipher: []byte{0, 0, 0, 0}, MAC: make([]byte, 32)},
	}
	if a.dev.Send(ack) {
		a.Counters.Injected++
	}
}
