package protocol

import (
	"fmt"

	"wmsn/internal/baseline"
	"wmsn/internal/core"
	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/placement"
)

// The built-in protocols. Registration order is irrelevant — IDs() sorts —
// but each Build preserves the exact stack-creation and event-scheduling
// order of the original scenario dispatch, so experiment output stays
// byte-identical.
func init() {
	Register(Builder{ID: SPR, Caps: Capabilities{MultiGateway: true, ShortcutAnswers: true}, Build: buildSPR})
	Register(Builder{ID: MLR, Caps: Capabilities{MultiGateway: true, MobilityRounds: true, ShortcutAnswers: true}, Build: buildMLR})
	Register(Builder{ID: SecMLR, Caps: Capabilities{MultiGateway: true, MobilityRounds: true, Security: true}, Build: buildSecMLR})
	Register(Builder{ID: Flooding, Caps: Capabilities{MultiGateway: true}, Build: buildFlooding})
	Register(Builder{ID: Gossiping, Caps: Capabilities{MultiGateway: true, HandlerRand: true}, Build: buildGossiping})
	Register(Builder{ID: Direct, Caps: Capabilities{MultiGateway: true}, Build: buildDirect})
	Register(Builder{ID: MCFA, Caps: Capabilities{}, Build: buildMCFA})
	Register(Builder{ID: LEACH, Caps: Capabilities{}, Build: buildLEACH})
	Register(Builder{ID: PEGASIS, Caps: Capabilities{}, Build: buildPEGASIS})
	Register(Builder{ID: SPIN, Caps: Capabilities{}, Build: buildSPIN})
}

func newInstance(n int) *Instance {
	return &Instance{Originators: make(map[packet.NodeID]Originator, n)}
}

// addFlatSinks installs plain absorbing sinks at the first len(GatewayIDs)
// places (flat baselines normally run with a single sink).
func addFlatSinks(env *Env) {
	for i, id := range env.GatewayIDs {
		env.World.AddGateway(id, env.Places[i%len(env.Places)], env.SensorRange, 500,
			baseline.NewSink(env.Metrics))
	}
}

func buildSPR(env *Env) (*Instance, error) {
	inst := newInstance(len(env.SensorIDs))
	for i, pos := range env.SensorPos {
		id := env.SensorIDs[i]
		st := core.NewSPRSensor(env.Params, env.Metrics)
		inst.Originators[id] = st
		env.World.AddSensor(id, pos, env.SensorRange, 0, env.Wrap(id, st))
	}
	for i, id := range env.GatewayIDs {
		env.World.AddGateway(id, env.Places[i%len(env.Places)], env.SensorRange, 500,
			core.NewSPRGateway(env.Params, env.Metrics))
	}
	return inst, nil
}

// buildRotating is the shared MLR/SecMLR shape: derive (or adopt) a round
// schedule, install sensors and gateways, start the mobility rounds.
func buildRotating(env *Env, secure bool) (*Instance, error) {
	schedule := env.Schedule
	if schedule == nil {
		schedule = placement.RotationSchedule(len(env.Places), len(env.GatewayIDs), env.Rounds)
	}
	if schedule == nil {
		return nil, fmt.Errorf("cannot build schedule for %d gateways over %d places",
			len(env.GatewayIDs), len(env.Places))
	}
	var sKeys map[packet.NodeID]*core.SensorKeys
	var gKeys map[packet.NodeID]*core.GatewayKeys
	if secure {
		sKeys, gKeys = core.ProvisionKeys([]byte("scenario-master"), env.SensorIDs, env.GatewayIDs, env.Rounds+8)
	}
	inst := newInstance(len(env.SensorIDs))
	for i, pos := range env.SensorPos {
		id := env.SensorIDs[i]
		var st node.Stack
		if secure {
			sec := core.NewSecMLRSensor(env.Params, env.Metrics, sKeys[id])
			inst.Originators[id] = sec
			st = sec
		} else {
			mlr := core.NewMLRSensor(env.Params, env.Metrics)
			inst.Originators[id] = mlr
			st = mlr
		}
		env.World.AddSensor(id, pos, env.SensorRange, 0, env.Wrap(id, st))
	}
	for i, id := range env.GatewayIDs {
		var st node.Stack
		if secure {
			st = core.NewSecMLRGateway(env.Params, env.Metrics, gKeys[id])
		} else {
			st = core.NewMLRGateway(env.Params, env.Metrics)
		}
		env.World.AddGateway(id, env.Places[schedule[0][i]], env.SensorRange, 500, st)
	}
	inst.Rounds = &core.Rounds{World: env.World, Places: env.Places, Gateways: env.GatewayIDs,
		RoundLen: env.RoundLen, Schedule: schedule}
	inst.Rounds.Start()
	return inst, nil
}

func buildMLR(env *Env) (*Instance, error)    { return buildRotating(env, false) }
func buildSecMLR(env *Env) (*Instance, error) { return buildRotating(env, true) }

func buildFlooding(env *Env) (*Instance, error) {
	inst := newInstance(len(env.SensorIDs))
	for i, pos := range env.SensorPos {
		id := env.SensorIDs[i]
		st := baseline.NewFlooding(env.Metrics, env.Params.TTL)
		inst.Originators[id] = st
		env.World.AddSensor(id, pos, env.SensorRange, 0, env.Wrap(id, st))
	}
	addFlatSinks(env)
	return inst, nil
}

func buildGossiping(env *Env) (*Instance, error) {
	inst := newInstance(len(env.SensorIDs))
	for i, pos := range env.SensorPos {
		id := env.SensorIDs[i]
		st := baseline.NewGossiping(env.Metrics, 255)
		inst.Originators[id] = st
		env.World.AddSensor(id, pos, env.SensorRange, 0, env.Wrap(id, st))
	}
	addFlatSinks(env)
	return inst, nil
}

func buildDirect(env *Env) (*Instance, error) {
	inst := newInstance(len(env.SensorIDs))
	sinkPos := env.Places[0]
	for i, pos := range env.SensorPos {
		id := env.SensorIDs[i]
		st := baseline.NewDirect(env.Metrics, env.GatewayIDs[0], pos.Dist(sinkPos))
		inst.Originators[id] = st
		env.World.AddSensor(id, pos, env.SensorRange, 0, env.Wrap(id, st))
	}
	addFlatSinks(env)
	return inst, nil
}

func buildMCFA(env *Env) (*Instance, error) {
	inst := newInstance(len(env.SensorIDs))
	for i, pos := range env.SensorPos {
		id := env.SensorIDs[i]
		st := baseline.NewMCFA(env.Metrics, env.Params.TTL)
		inst.Originators[id] = st
		env.World.AddSensor(id, pos, env.SensorRange, 0, env.Wrap(id, st))
	}
	env.World.AddGateway(env.GatewayIDs[0], env.Places[0], env.SensorRange, 500,
		baseline.NewMCFASink(env.Metrics, env.Params.TTL))
	return inst, nil
}

func buildPEGASIS(env *Env) (*Instance, error) {
	inst := newInstance(len(env.SensorIDs))
	sinkPos := geom.Point{X: env.Side / 2, Y: env.Side + 50} // off-field sink, as in the PEGASIS paper
	pos := make(map[packet.NodeID]geom.Point, len(env.SensorPos))
	for i, p := range env.SensorPos {
		pos[env.SensorIDs[i]] = p
	}
	chain := baseline.NewPegasisChain(env.GatewayIDs[0], sinkPos, pos)
	for i, p := range env.SensorPos {
		id := env.SensorIDs[i]
		st := baseline.NewPEGASIS(env.Metrics, chain)
		inst.Originators[id] = st
		env.World.AddSensor(id, p, env.SensorRange, 0, env.Wrap(id, st))
	}
	env.World.AddGateway(env.GatewayIDs[0], sinkPos, 10*env.Side, 500, baseline.NewLEACHSink(env.Metrics))
	// Sweep once per reporting cycle: each token carries one reading per
	// node, as in the original protocol (sweeping slower would balloon
	// the token and stretch a single sweep past the round).
	inst.PegasisRounds = &baseline.PegasisRounds{World: env.World, Chain: chain, RoundLen: env.ReportInterval}
	inst.PegasisRounds.Start()
	return inst, nil
}

func buildSPIN(env *Env) (*Instance, error) {
	inst := newInstance(len(env.SensorIDs))
	for i, p := range env.SensorPos {
		id := env.SensorIDs[i]
		st := baseline.NewSPIN(env.Metrics)
		inst.Originators[id] = st
		env.World.AddSensor(id, p, env.SensorRange, 0, env.Wrap(id, st))
	}
	env.World.AddGateway(env.GatewayIDs[0], env.Places[0], env.SensorRange, 500, baseline.NewSPINSink(env.Metrics))
	return inst, nil
}

func buildLEACH(env *Env) (*Instance, error) {
	inst := newInstance(len(env.SensorIDs))
	sinkPos := geom.Point{X: env.Side / 2, Y: env.Side + 50} // off-field sink, per LEACH evaluations
	var stacks []*baseline.LEACH
	for i, pos := range env.SensorPos {
		id := env.SensorIDs[i]
		st := baseline.NewLEACH(env.Metrics, env.LEACHProb, env.GatewayIDs[0], sinkPos, env.SensorRange*2)
		inst.Originators[id] = st
		stacks = append(stacks, st)
		env.World.AddSensor(id, pos, env.SensorRange, 0, env.Wrap(id, st))
	}
	env.World.AddGateway(env.GatewayIDs[0], sinkPos, 10*env.Side, 500, baseline.NewLEACHSink(env.Metrics))
	inst.LEACHRounds = &baseline.LEACHRounds{World: env.World, Stacks: stacks, RoundLen: env.RoundLen}
	inst.LEACHRounds.Start()
	return inst, nil
}
