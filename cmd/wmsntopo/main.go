// Command wmsntopo generates and inspects WMSN deployments without running
// traffic: connectivity, degree distribution, hop statistics to the nearest
// gateway, and a comparison of gateway placement strategies. It answers the
// two §4.1 deployment questions — how many gateways, and where — for a
// concrete field before any simulation is run.
//
// Examples:
//
//	wmsntopo -n 300 -side 300 -range 40 -gateways 3
//	wmsntopo -n 200 -deploy clusters -strategy kmeans -gateways 4
//	wmsntopo -n 300 -sweep 8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"wmsn/internal/analytic"
	"wmsn/internal/geom"
	"wmsn/internal/network"
	"wmsn/internal/packet"
	"wmsn/internal/placement"
	"wmsn/internal/trace"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "deployment seed")
		n        = flag.Int("n", 200, "number of sensors")
		side     = flag.Float64("side", 250, "field side, meters")
		rangeM   = flag.Float64("range", 40, "radio range, meters")
		gateways = flag.Int("gateways", 3, "gateways to place")
		deploy   = flag.String("deploy", "uniform", "uniform|grid|clusters|hotspot")
		strategy = flag.String("strategy", "grid", "placement: grid|random|kmeans|greedy")
		sweep    = flag.Int("sweep", 0, "if > 0, sweep gateway counts 1..sweep instead of one placement")
		model    = flag.Bool("model", false, "print the §7.2 analytical model's predictions next to measurements")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	region := geom.Square(*side)
	var deployer geom.Deployer
	switch *deploy {
	case "uniform":
		deployer = geom.Uniform{}
	case "grid":
		deployer = geom.Grid{Jitter: 0.3}
	case "clusters":
		deployer = geom.Clusters{K: 4}
	case "hotspot":
		deployer = geom.Hotspot{Spot: geom.Rect{X0: 0, Y0: 0, X1: *side / 4, Y1: *side / 4}, Fraction: 0.5}
	default:
		fmt.Fprintf(os.Stderr, "unknown deployment %q\n", *deploy)
		os.Exit(2)
	}
	sensors := deployer.Deploy(*n, region, rng)

	// Sensor-only connectivity.
	pos := make(map[packet.NodeID]geom.Point, len(sensors))
	ranges := make(map[packet.NodeID]float64, len(sensors))
	for i, p := range sensors {
		id := packet.NodeID(i + 1)
		pos[id], ranges[id] = p, *rangeM
	}
	g := network.Build(pos, ranges)
	comps := g.Components()
	largest := 0
	for _, c := range comps {
		if len(c) > largest {
			largest = len(c)
		}
	}
	degHist := map[int]int{}
	for _, id := range g.IDs() {
		degHist[g.Degree(id)]++
	}
	minDeg, maxDeg := 1<<30, 0
	for d := range degHist {
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}

	field := trace.NewTable(fmt.Sprintf("field: %d sensors (%s) on %.0fm, range %.0fm", *n, *deploy, *side, *rangeM),
		"metric", "value")
	field.AddRow("connected", g.Connected())
	field.AddRow("components", len(comps))
	field.AddRow("largest component", largest)
	field.AddRow("avg degree", g.AvgDegree())
	field.AddRow("degree min/max", fmt.Sprintf("%d / %d", minDeg, maxDeg))
	field.Render(os.Stdout)
	fmt.Println()

	if *model {
		am := analytic.Model{N: *n, Side: *side, Range: *rangeM, K: *gateways}
		gpos := geom.PlaceGrid(*gateways, region)
		ev := placement.Evaluate(sensors, gpos, *rangeM)
		tbl := trace.NewTable("analytical model (§7.2) vs this deployment",
			"quantity", "model", "measured")
		tbl.AddRow("avg degree", am.AvgDegree(), g.AvgDegree())
		tbl.AddRow("connected", am.Connected(), g.Connected())
		tbl.AddRow("avg hops to nearest gateway", am.AvgHops(), ev.AvgHops)
		tbl.AddRow("total forwarding load / interval", am.TotalForwardingLoad(), float64(ev.TotalHops))
		tbl.Render(os.Stdout)
		fmt.Println()
	}

	strategies := map[string]placement.Strategy{
		"grid":   placement.Grid{},
		"random": placement.Random{},
		"kmeans": placement.KMeans{},
		"greedy": placement.GreedyCoverage{CoverRadius: *rangeM * 2},
	}
	if *sweep > 0 {
		st, ok := strategies[*strategy]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
			os.Exit(2)
		}
		tbl := trace.NewTable(fmt.Sprintf("gateway-count sweep (%s placement)", *strategy),
			"k", "avg hops", "max hops", "unreachable")
		for k := 1; k <= *sweep; k++ {
			gpos := st.Place(sensors, k, region, rng)
			ev := placement.Evaluate(sensors, gpos, *rangeM)
			tbl.AddRow(k, ev.AvgHops, ev.MaxHops, ev.Unreachable)
		}
		tbl.Render(os.Stdout)
		return
	}

	tbl := trace.NewTable(fmt.Sprintf("placement comparison, %d gateway(s)", *gateways),
		"strategy", "avg hops", "max hops", "total hops", "unreachable")
	for _, name := range []string{"grid", "random", "kmeans", "greedy"} {
		gpos := strategies[name].Place(sensors, *gateways, region, rng)
		ev := placement.Evaluate(sensors, gpos, *rangeM)
		tbl.AddRow(name, ev.AvgHops, ev.MaxHops, ev.TotalHops, ev.Unreachable)
	}
	tbl.Render(os.Stdout)
}
