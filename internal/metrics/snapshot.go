package metrics

import (
	"fmt"

	"wmsn/internal/sim"
)

// Snapshot is the JSON-serializable summary of a Memory (or Aggregate):
// headline totals, derived statistics, every non-zero named counter and the
// per-gateway delivery split. Latencies are reported in milliseconds to
// match the text tables. Map keys are strings so encoding/json emits them
// sorted — snapshots of identical runs compare byte-identical.
type Snapshot struct {
	Runs                 int               `json:"runs,omitempty"`
	Generated            uint64            `json:"generated"`
	Delivered            uint64            `json:"delivered"`
	Duplicates           uint64            `json:"duplicates,omitempty"`
	DeliveryRatio        float64           `json:"delivery_ratio"`
	MeanHops             float64           `json:"mean_hops"`
	MeanLatencyMS        float64           `json:"mean_latency_ms"`
	LatencyP50MS         float64           `json:"latency_p50_ms"`
	LatencyP95MS         float64           `json:"latency_p95_ms"`
	LatencyP99MS         float64           `json:"latency_p99_ms"`
	ControlPackets       uint64            `json:"control_packets"`
	GatewayLoadImbalance float64           `json:"gateway_load_imbalance,omitempty"`
	Counters             map[string]uint64 `json:"counters,omitempty"`
	PerGateway           map[string]uint64 `json:"per_gateway,omitempty"`
	// Histograms holds every non-empty named distribution (delivery latency,
	// failover latency, link retries, queue depth) keyed by HistID.Name().
	// Bucket lists are exact state, so byte-equal JSON implies bit-equal
	// histograms — the property the shard/worker determinism tests pin.
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

func ms(d sim.Duration) float64 {
	return float64(d) / float64(sim.Millisecond)
}

// Snapshot derives the exportable summary of everything recorded so far.
func (m *Memory) Snapshot() Snapshot {
	s := Snapshot{
		Generated:            m.Generated,
		Delivered:            m.Delivered,
		Duplicates:           m.Duplicates,
		DeliveryRatio:        m.DeliveryRatio(),
		MeanHops:             m.MeanHops(),
		MeanLatencyMS:        ms(m.MeanLatency()),
		LatencyP50MS:         ms(m.LatencyPercentile(50)),
		LatencyP95MS:         ms(m.LatencyPercentile(95)),
		LatencyP99MS:         ms(m.LatencyPercentile(99)),
		ControlPackets:       m.ControlPackets(),
		GatewayLoadImbalance: m.GatewayLoadImbalance(),
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := *m.counterPtr(c); v != 0 {
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[c.String()] = v
		}
	}
	for gw, v := range m.perGateway {
		if s.PerGateway == nil {
			s.PerGateway = make(map[string]uint64, len(m.perGateway))
		}
		s.PerGateway[fmt.Sprintf("n%d", uint32(gw))] = v
	}
	for i := HistID(0); i < numHists; i++ {
		if m.hists[i].Count() == 0 {
			continue
		}
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistSnapshot, int(numHists))
		}
		s.Histograms[i.Name()] = m.hists[i].Snapshot()
	}
	return s
}

// CounterNames lists every defined counter name in declaration order —
// the schema of Snapshot.Counters.
func CounterNames() []string {
	out := make([]string, numCounters)
	copy(out, counterNames[:])
	return out
}

// Aggregate deterministically folds the Memory of many runs. Absorb order is
// the caller's contract: fold in submission order (not completion order) and
// the aggregate is identical regardless of worker count.
type Aggregate struct {
	runs int
	mem  Memory
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate { return &Aggregate{} }

// Absorb merges one run's totals into the aggregate.
func (a *Aggregate) Absorb(m *Memory) {
	if m == nil {
		return
	}
	a.runs++
	a.mem.Merge(m)
}

// Runs returns how many Memory values have been absorbed.
func (a *Aggregate) Runs() int { return a.runs }

// Snapshot summarizes the merged totals, stamped with the run count.
func (a *Aggregate) Snapshot() Snapshot {
	s := a.mem.Snapshot()
	s.Runs = a.runs
	return s
}
