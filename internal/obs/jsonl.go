package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL streams every observed event to a writer as one JSON object per
// line — the trace-file format cmd/wmsntrace consumes. Encoding uses a
// single reused encoder over a buffered writer, so steady-state observation
// does not allocate per event beyond encoding/json internals. The caller
// must Flush (or Close the underlying file after Flush) when the run ends.
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink streaming events to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Observe implements Sink. The first write error is latched and reported by
// Flush; later events are dropped so a dead disk cannot wedge a simulation.
func (j *JSONL) Observe(ev Event) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(ev)
}

// Flush drains the buffer and returns the first error seen, if any.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.bw.Flush()
}

// WriteJSONL serializes events to w in the trace-file format. This is the
// batch counterpart of the JSONL sink, used for recorder dumps and captured
// per-run traces.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace file previously written by the JSONL sink or
// WriteJSONL. Blank lines are skipped; a malformed line fails with its line
// number so truncated traces are diagnosable.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}
