// Package energy models sensor-node energy consumption and battery
// accounting.
//
// Two interchangeable radio energy models are provided:
//
//   - FixedPerBit: "let all sensor nodes transmit data in identical power so
//     that transmitting 1 bit data consumes the same energy to all of them"
//     (paper §5.2). Under this model, minimizing hops minimizes energy,
//     which is SPR's premise.
//
//   - FirstOrder: the Heinzelman first-order radio model used throughout the
//     WSN literature the paper builds on (LEACH, PEGASIS): transmitting k
//     bits over distance d costs E_elec·k + ε_amp·k·d², receiving costs
//     E_elec·k. This model makes long cluster-head hops expensive and is
//     needed for the LEACH baseline comparison.
//
// Energy is tracked in joules as float64. Batteries saturate at zero: a node
// whose battery reaches zero is dead and the network lifetime experiments
// (E4, E5) record the time of the first such death, matching the paper's
// lifetime definition ("the time when the first sensor node drains its
// energy", §5.3).
package energy

import (
	"fmt"
	"math"
)

// Model maps a radio operation to its energy cost in joules.
type Model interface {
	// TxCost is the energy to transmit bits bits over distance d meters.
	TxCost(bits int, d float64) float64
	// RxCost is the energy to receive bits bits.
	RxCost(bits int) float64
}

// FixedPerBit charges a constant energy per transmitted and received bit,
// independent of distance (the paper's identical-power assumption).
type FixedPerBit struct {
	TxPerBit float64 // joules per transmitted bit
	RxPerBit float64 // joules per received bit
}

// DefaultFixed matches the common 50 nJ/bit electronics figure.
var DefaultFixed = FixedPerBit{TxPerBit: 50e-9, RxPerBit: 50e-9}

// TxCost implements Model.
func (m FixedPerBit) TxCost(bits int, _ float64) float64 { return float64(bits) * m.TxPerBit }

// RxCost implements Model.
func (m FixedPerBit) RxCost(bits int) float64 { return float64(bits) * m.RxPerBit }

// FirstOrder is the Heinzelman first-order radio model.
type FirstOrder struct {
	Elec float64 // electronics energy, joules/bit (both Tx and Rx)
	Amp  float64 // amplifier energy, joules/bit/m²
}

// DefaultFirstOrder uses the canonical LEACH parameters:
// E_elec = 50 nJ/bit, ε_amp = 100 pJ/bit/m².
var DefaultFirstOrder = FirstOrder{Elec: 50e-9, Amp: 100e-12}

// TxCost implements Model.
func (m FirstOrder) TxCost(bits int, d float64) float64 {
	if d < 0 {
		d = 0
	}
	return float64(bits) * (m.Elec + m.Amp*d*d)
}

// RxCost implements Model.
func (m FirstOrder) RxCost(bits int) float64 { return float64(bits) * m.Elec }

// Battery is a finite (or infinite) energy reserve. The zero value is an
// empty battery; use NewBattery or Infinite.
type Battery struct {
	capacity float64 // initial charge, joules; +Inf for mains-powered nodes
	used     float64 // total joules drawn (capped at capacity)
	txUsed   float64 // portion of used spent transmitting
	rxUsed   float64 // portion of used spent receiving
}

// NewBattery returns a battery holding capacity joules. Negative capacities
// are treated as zero.
func NewBattery(capacity float64) *Battery {
	if capacity < 0 {
		capacity = 0
	}
	return &Battery{capacity: capacity}
}

// Infinite returns a battery that never depletes, used for mesh gateways and
// routers ("let gateways have unrestricted energy", §5.3).
func Infinite() *Battery {
	return &Battery{capacity: math.Inf(1)}
}

// Capacity returns the initial charge in joules.
func (b *Battery) Capacity() float64 { return b.capacity }

// Remaining returns the charge left in joules; never negative.
func (b *Battery) Remaining() float64 {
	if math.IsInf(b.capacity, 1) {
		return math.Inf(1)
	}
	return b.capacity - b.used
}

// Used returns the total energy drawn so far in joules.
func (b *Battery) Used() float64 { return b.used }

// TxUsed returns the energy spent on transmission.
func (b *Battery) TxUsed() float64 { return b.txUsed }

// RxUsed returns the energy spent on reception.
func (b *Battery) RxUsed() float64 { return b.rxUsed }

// Depleted reports whether the battery has no charge left.
func (b *Battery) Depleted() bool { return !math.IsInf(b.capacity, 1) && b.used >= b.capacity }

// DrawTx draws j joules for a transmission. It reports whether the battery
// held enough charge for the whole operation; when it does not, the battery
// is drained to zero and the operation is considered failed (the radio
// browns out mid-packet).
func (b *Battery) DrawTx(j float64) bool { return b.draw(j, &b.txUsed) }

// DrawRx draws j joules for a reception, with the same semantics as DrawTx.
func (b *Battery) DrawRx(j float64) bool { return b.draw(j, &b.rxUsed) }

func (b *Battery) draw(j float64, bucket *float64) bool {
	if j < 0 {
		panic(fmt.Sprintf("energy: negative draw %g", j))
	}
	if math.IsInf(b.capacity, 1) {
		b.used += j
		*bucket += j
		return true
	}
	if b.used+j > b.capacity {
		short := b.capacity - b.used
		b.used = b.capacity
		*bucket += short
		return false
	}
	b.used += j
	*bucket += j
	return true
}

// FractionRemaining returns Remaining/Capacity in [0,1]; 1 for infinite
// batteries, 0 for zero-capacity ones.
func (b *Battery) FractionRemaining() float64 {
	if math.IsInf(b.capacity, 1) {
		return 1
	}
	if b.capacity == 0 {
		return 0
	}
	return b.Remaining() / b.capacity
}

// Stats summarizes energy use across a set of batteries (sensor nodes).
// Infinite batteries (gateways) are excluded from every aggregate so that the
// statistics describe the constrained population the paper optimizes.
type Stats struct {
	N        int     // finite batteries counted
	Total    float64 // Σ used, joules
	TxTotal  float64 // Σ transmission energy
	RxTotal  float64 // Σ reception energy
	Mean     float64 // average used per node
	Variance float64 // population variance of per-node use — the D² of §5.3
	Min, Max float64 // extremes of per-node use
	Dead     int     // depleted batteries
}

// Summarize computes Stats over batteries, ignoring infinite ones.
func Summarize(batteries []*Battery) Stats {
	var s Stats
	first := true
	for _, b := range batteries {
		if math.IsInf(b.capacity, 1) {
			continue
		}
		u := b.used
		s.N++
		s.Total += u
		s.TxTotal += b.txUsed
		s.RxTotal += b.rxUsed
		if first {
			s.Min, s.Max = u, u
			first = false
		} else {
			s.Min = math.Min(s.Min, u)
			s.Max = math.Max(s.Max, u)
		}
		if b.Depleted() {
			s.Dead++
		}
	}
	if s.N == 0 {
		return s
	}
	s.Mean = s.Total / float64(s.N)
	for _, b := range batteries {
		if math.IsInf(b.capacity, 1) {
			continue
		}
		d := b.used - s.Mean
		s.Variance += d * d
	}
	s.Variance /= float64(s.N)
	return s
}

// StdDev returns the standard deviation of per-node energy use.
func (s Stats) StdDev() float64 { return math.Sqrt(s.Variance) }

// CoefficientOfVariation returns StdDev/Mean, a scale-free imbalance
// measure; 0 when Mean is 0.
func (s Stats) CoefficientOfVariation() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev() / s.Mean
}
