package network

import (
	"math"
	"sort"

	"wmsn/internal/geom"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// Topology control (§4.4): "Current topology control technologies fall into
// two categories: power control and sleep scheduling."

// PowerControlK computes, for each node, the minimal transmission range that
// keeps at least k neighbors reachable (or all other nodes when fewer than
// k exist), clamped to maxRange. This is the classic k-neighbor power
// control: shrinking ranges saves transmission energy and reduces contention
// while preserving local connectivity.
//
// Only neighbors within maxRange can lower a node's range below maxRange, so
// each node needs just the distances inside its maxRange disk — a grid query
// — and of those only the k-th smallest, a quickselect instead of a full
// sort. Near-uniform fields cost O(n·degree) rather than O(n² log n).
func PowerControlK(pos map[packet.NodeID]geom.Point, k int, maxRange float64) map[packet.NodeID]float64 {
	out := make(map[packet.NodeID]float64, len(pos))
	ids := make([]packet.NodeID, 0, len(pos))
	for id := range pos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) == 0 {
		return out
	}
	if len(ids) == 1 {
		out[ids[0]] = 0 // no other nodes: nothing to reach
		return out
	}
	need := k
	if n1 := len(ids) - 1; need > n1 {
		need = n1
	}
	if need <= 0 {
		for _, id := range ids {
			out[id] = maxRange
		}
		return out
	}
	pts := make([]geom.Point, len(ids))
	for i, id := range ids {
		pts[i] = pos[id]
	}
	cell := maxRange
	if !(cell > 0) { // non-positive or NaN: cell size is perf-only, pick any
		cell = 1
	}
	grid := geom.NewStaticGrid(pts, cell)
	// One scratch buffer reused across the per-node loop: capacity n-1 covers
	// the worst case (every other node within maxRange). The grid prefilter
	// compares squared distances, so the query radius is padded a hair to
	// guarantee a superset; the exact per-candidate Dist < maxRange test
	// below reproduces the original arithmetic bit-for-bit.
	scratch := make([]float64, 0, len(ids))
	mq := maxRange * (1 + 1e-12)
	for i, id := range ids {
		scratch = grid.AppendDist2Within(scratch[:0], pts[i], mq, int32(i))
		m := 0
		for _, v := range scratch {
			if d := math.Sqrt(v); d < maxRange {
				scratch[m] = d
				m++
			}
		}
		if m < need {
			// The k-th nearest neighbor lies at or beyond maxRange.
			out[id] = maxRange
			continue
		}
		out[id] = kthSmallest(scratch[:m], need)
	}
	return out
}

// kthSmallest returns the k-th smallest element (1-indexed) of a, partially
// reordering a in place. Hoare quickselect with a median-of-three pivot:
// expected O(len(a)), zero allocations, deterministic for a given input.
func kthSmallest(a []float64, k int) float64 {
	lo, hi, target := 0, len(a)-1, k-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case target <= j:
			hi = j
		case target >= i:
			lo = i
		default:
			return a[target] // between the partitions: equal to the pivot
		}
	}
	return a[target]
}

// ApplyRanges installs per-node ranges onto a world's sensor stations.
// Unknown IDs and dead devices are skipped.
func ApplyRanges(w *node.World, ranges map[packet.NodeID]float64) {
	for id, r := range ranges {
		d := w.Device(id)
		if d == nil || !d.Alive() || d.SensorStation() == nil {
			continue
		}
		d.SensorStation().SetRange(r)
	}
}

// SleepScheduler duty-cycles sensor radios: each node listens for
// OnFraction of every Period, with a per-node phase offset so the whole
// network is never deaf at once. Transmission is always allowed; only the
// receiver sleeps (matching low-power-listening practice).
type SleepScheduler struct {
	Period     sim.Duration
	OnFraction float64

	world   *node.World
	targets []packet.NodeID
	stopped bool
}

// NewSleepScheduler creates a scheduler over the given sensor IDs; empty ids
// selects every sensor in the world.
func NewSleepScheduler(w *node.World, period sim.Duration, onFraction float64, ids []packet.NodeID) *SleepScheduler {
	if onFraction < 0 {
		onFraction = 0
	}
	if onFraction > 1 {
		onFraction = 1
	}
	if len(ids) == 0 {
		for _, d := range w.DevicesOfKind(node.Sensor) {
			ids = append(ids, d.ID())
		}
	}
	return &SleepScheduler{Period: period, OnFraction: onFraction, world: w, targets: ids}
}

// Start begins duty cycling. Each node wakes at a random phase within the
// first period (deterministic under the world seed).
func (s *SleepScheduler) Start() {
	if s.OnFraction >= 1 {
		return // always on; nothing to schedule
	}
	k := s.world.Kernel()
	onSpan := sim.Duration(float64(s.Period) * s.OnFraction)
	for _, id := range s.targets {
		id := id
		phase := sim.Duration(k.Rand().Int63n(int64(s.Period)))
		var cycle func()
		cycle = func() {
			if s.stopped {
				return
			}
			d := s.world.Device(id)
			if d == nil || !d.Alive() || d.SensorStation() == nil {
				return
			}
			d.SensorStation().SetListening(true)
			k.After(onSpan, func() {
				if s.stopped {
					return
				}
				if d := s.world.Device(id); d != nil && d.Alive() && d.SensorStation() != nil {
					d.SensorStation().SetListening(false)
				}
				k.After(s.Period-onSpan, cycle)
			})
		}
		k.After(phase, cycle)
	}
}

// Stop halts future duty-cycle transitions and wakes every surviving target
// so the network is usable again.
func (s *SleepScheduler) Stop() {
	s.stopped = true
	for _, id := range s.targets {
		if d := s.world.Device(id); d != nil && d.Alive() && d.SensorStation() != nil {
			d.SensorStation().SetListening(true)
		}
	}
}

// GAFScheduler implements GAF (Geographic Adaptive Fidelity, §2.2.3 [26]):
// the field is divided into virtual grid cells of edge range/√5 — small
// enough that any node in a cell can talk to any node in each adjacent
// cell — making all nodes within a cell equivalent for routing. One leader
// per cell keeps its radio on; the others sleep, and leadership rotates
// every Term so the duty burden is shared.
type GAFScheduler struct {
	// CellEdge is the virtual grid edge; 0 derives range/√5 from the first
	// target's radio range.
	CellEdge float64
	// Term is the leadership rotation period.
	Term sim.Duration

	world   *node.World
	cells   map[[2]int][]packet.NodeID
	turn    int
	stopped bool
	rep     *sim.Repeater
}

// NewGAFScheduler builds the virtual grid over the given sensors (all
// sensors when ids is empty).
func NewGAFScheduler(w *node.World, cellEdge float64, term sim.Duration, ids []packet.NodeID) *GAFScheduler {
	if len(ids) == 0 {
		for _, d := range w.DevicesOfKind(node.Sensor) {
			ids = append(ids, d.ID())
		}
	}
	g := &GAFScheduler{CellEdge: cellEdge, Term: term, world: w,
		cells: make(map[[2]int][]packet.NodeID)}
	for _, id := range ids {
		d := w.Device(id)
		if d == nil || d.SensorStation() == nil {
			continue
		}
		if g.CellEdge <= 0 {
			g.CellEdge = d.SensorStation().Range() / math.Sqrt(5)
		}
		p := d.Pos()
		key := [2]int{int(math.Floor(p.X / g.CellEdge)), int(math.Floor(p.Y / g.CellEdge))}
		g.cells[key] = append(g.cells[key], id)
	}
	// Deterministic member order within each cell.
	for _, members := range g.cells {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	}
	return g
}

// Cells returns the number of occupied grid cells.
func (g *GAFScheduler) Cells() int { return len(g.cells) }

// Leader returns the current leader of the cell containing id, or
// packet.None when id is unknown.
func (g *GAFScheduler) Leader(id packet.NodeID) packet.NodeID {
	for _, members := range g.cells {
		for _, m := range members {
			if m == id {
				return g.leaderOf(members)
			}
		}
	}
	return packet.None
}

func (g *GAFScheduler) leaderOf(members []packet.NodeID) packet.NodeID {
	// Rotate through living members; the turn counter advances per term.
	for off := 0; off < len(members); off++ {
		id := members[(g.turn+off)%len(members)]
		if d := g.world.Device(id); d != nil && d.Alive() {
			return id
		}
	}
	return packet.None
}

// Start applies the first leadership assignment and begins rotating.
func (g *GAFScheduler) Start() {
	g.apply()
	g.rep = g.world.Kernel().Every(g.Term, func() {
		if g.stopped {
			return
		}
		g.turn++
		g.apply()
	})
}

func (g *GAFScheduler) apply() {
	for _, members := range g.cells {
		leader := g.leaderOf(members)
		for _, id := range members {
			d := g.world.Device(id)
			if d == nil || !d.Alive() || d.SensorStation() == nil {
				continue
			}
			d.SensorStation().SetListening(id == leader)
		}
	}
}

// Stop halts rotation and wakes every surviving node.
func (g *GAFScheduler) Stop() {
	g.stopped = true
	if g.rep != nil {
		g.rep.Stop()
	}
	for _, members := range g.cells {
		for _, id := range members {
			if d := g.world.Device(id); d != nil && d.Alive() && d.SensorStation() != nil {
				d.SensorStation().SetListening(true)
			}
		}
	}
}
