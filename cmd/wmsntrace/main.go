// Command wmsntrace replays a JSONL event trace produced by a traced run
// (wmsnsim -trace, wmsnbench -trace-dir, or any obs.JSONL sink) and answers
// the questions end-of-run aggregates cannot: which hops one packet took and
// how long each cost (-packet), what killed the packets that died (-drops),
// when routes failed over (-reroutes), and how delivery evolved over time
// (-series). With no query flag it prints the per-kind event summary.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"wmsn/internal/metrics"
	"wmsn/internal/obs"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
	"wmsn/internal/trace"
)

func main() {
	pkt := flag.String("packet", "", "lifecycle of one packet, by origin:seq (e.g. 7:3 or n7:3)")
	fromStream := flag.Bool("from-stream", false, "input is a wmsnd job stream (JSONL); extract the trace events")
	run := flag.Int("run", 0, "with -from-stream: which run of the job to replay")
	packets := flag.Bool("packets", false, "one-line lifecycle listing of every traced packet")
	drops := flag.Bool("drops", false, "drop-reason breakdown")
	reroutes := flag.Bool("reroutes", false, "reroute and fault timeline")
	series := flag.Float64("series", 0, "time-series table with this bucket width in seconds")
	summary := flag.Bool("summary", false, "per-kind event counts (the default query)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: wmsntrace [flags] trace.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var events []obs.Event
	if *fromStream {
		events, err = readStream(f, *run)
	} else {
		events, err = obs.ReadJSONL(f)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("%s: no events", flag.Arg(0)))
	}

	asked := false
	if *pkt != "" {
		asked = true
		key, err := parseKey(*pkt)
		if err != nil {
			fatal(err)
		}
		life := obs.Lifecycle(events, key)
		if len(life.Events) == 0 {
			fatal(fmt.Errorf("packet %s not in trace", key))
		}
		life.Table().Render(os.Stdout)
	}
	if *packets {
		asked = true
		packetsTable(events).Render(os.Stdout)
	}
	if *drops {
		asked = true
		obs.DropTable(events).Render(os.Stdout)
	}
	if *reroutes {
		asked = true
		reroutesTable(events).Render(os.Stdout)
	}
	if *series > 0 {
		asked = true
		bucket := sim.Duration(*series * float64(sim.Second))
		obs.ReplaySeries(events, bucket).Table("time series — " + flag.Arg(0)).Render(os.Stdout)
		latencyTable(events).Render(os.Stdout)
	}
	if *summary || !asked {
		obs.SummaryTable(events).Render(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wmsntrace: %v\n", err)
	os.Exit(1)
}

// readStream extracts one run's obs events from a saved wmsnd job stream
// (`curl .../stream > job.jsonl`). Stream lines wrap trace events in a typed
// envelope; everything that is not a trace line of the requested run —
// results, series, the terminal line — is skipped.
func readStream(r io.Reader, run int) ([]obs.Event, error) {
	type line struct {
		Type string     `json:"type"`
		Run  int        `json:"run"`
		Ev   *obs.Event `json:"ev"`
	}
	var events []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	ln := 0
	for sc.Scan() {
		ln++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(b, &l); err != nil {
			return nil, fmt.Errorf("stream line %d: %w", ln, err)
		}
		if l.Type == "trace" && l.Run == run && l.Ev != nil {
			events = append(events, *l.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// parseKey accepts "7:3" and "n7:3" (the form PacketKey.String prints).
func parseKey(s string) (obs.PacketKey, error) {
	origin, seq, ok := strings.Cut(s, ":")
	origin = strings.TrimPrefix(origin, "n")
	if !ok {
		return obs.PacketKey{}, fmt.Errorf("packet key %q: want origin:seq", s)
	}
	o, err1 := strconv.ParseUint(origin, 10, 32)
	q, err2 := strconv.ParseUint(seq, 10, 32)
	if err1 != nil || err2 != nil {
		return obs.PacketKey{}, fmt.Errorf("packet key %q: want origin:seq", s)
	}
	return obs.PacketKey{Origin: packet.NodeID(o), Seq: uint32(q)}, nil
}

// packetsTable lists every packet's reconstructed fate, one row each.
func packetsTable(events []obs.Event) *trace.Table {
	tbl := trace.NewTable("packets", "packet", "generated", "status", "hops", "retries", "path")
	lives := obs.Packets(events)
	for _, l := range lives {
		gen := "-"
		if l.HasGen {
			gen = l.Generated.String()
		}
		retries := 0
		for _, h := range l.Hops {
			retries += h.Retries
		}
		tbl.AddRow(l.Key.String(), gen, l.Status(),
			strconv.Itoa(len(l.Hops)), strconv.Itoa(retries), l.PathString())
	}
	tbl.AddNote("%d packet(s) traced", len(lives))
	return tbl
}

// latencyTable folds every generated→delivered pair in the trace into the
// log-bucketed histogram the live metrics path uses and prints the
// delivery-latency distribution the bucketed time series cannot show.
func latencyTable(events []obs.Event) *trace.Table {
	var h metrics.Hist
	for _, l := range obs.Packets(events) {
		if l.HasGen && l.Delivered {
			h.Observe(uint64(l.DeliveredAt - l.Generated))
		}
	}
	tbl := trace.NewTable("delivery latency distribution",
		"samples", "min", "p50", "p95", "p99", "max", "mean")
	if h.Count() == 0 {
		tbl.AddNote("no generated-to-delivered pairs in trace")
		return tbl
	}
	tbl.AddRow(strconv.FormatUint(h.Count(), 10),
		sim.Duration(h.Min()).String(),
		h.PercentileDuration(50).String(),
		h.PercentileDuration(95).String(),
		h.PercentileDuration(99).String(),
		sim.Duration(h.Max()).String(),
		sim.Duration(h.Sum()/h.Count()).String())
	tbl.AddNote("percentiles from the log-bucketed histogram (exact below 8 us, " +
		"otherwise within a 12.5%% bucket width)")
	return tbl
}

// reroutesTable renders the fault/reroute timeline: every route replacement
// with its trigger and failover latency, interleaved with the injected
// faults and death/recovery events that caused them.
func reroutesTable(events []obs.Event) *trace.Table {
	tbl := trace.NewTable("reroutes and faults", "t", "event", "node", "peer", "detail", "failover")
	n := 0
	for _, ev := range obs.Reroutes(events) {
		n++
		peer, failover := "-", "-"
		if ev.Peer != 0 {
			peer = ev.Peer.String()
		}
		if ev.Kind == obs.Reroute && ev.Value > 0 {
			failover = sim.Duration(ev.Value).String()
		}
		tbl.AddRow(ev.At.String(), ev.Kind.String(), ev.Node.String(), peer, ev.Detail, failover)
	}
	tbl.AddNote("%d event(s)", n)
	return tbl
}
