// Package protocol is the pluggable routing-protocol registry. Each
// protocol — the paper's SPR/MLR/SecMLR core and every flat baseline —
// registers a named Builder: a factory that instantiates its sensor and
// gateway node.Stack pairs into a prepared world, plus a capability set
// describing what the protocol supports (multiple gateways, round-based
// gateway mobility, security, cached-route shortcut answers).
//
// The scenario layer composes runs by registry lookup, so adding a protocol
// means registering a Builder — typically from an init function in its own
// package, or from a test — and never touching scenario or experiments
// code. The built-in protocols register themselves in builtin.go.
package protocol

import (
	"fmt"
	"sort"
	"sync"

	"wmsn/internal/baseline"
	"wmsn/internal/core"
	"wmsn/internal/geom"
	"wmsn/internal/metrics"
	"wmsn/internal/node"
	"wmsn/internal/packet"
	"wmsn/internal/sim"
)

// ID names a registered protocol.
type ID string

// Built-in protocols.
const (
	SPR       ID = "spr"       // §5.2, multi-gateway shortest path
	MLR       ID = "mlr"       // §5.3, lifetime-maximizing rounds
	SecMLR    ID = "secmlr"    // §6.2, secured MLR
	Flooding  ID = "flooding"  // flat baseline
	Gossiping ID = "gossiping" // flat baseline
	Direct    ID = "direct"    // single-hop baseline
	MCFA      ID = "mcfa"      // cost-field baseline
	LEACH     ID = "leach"     // cluster baseline
	PEGASIS   ID = "pegasis"   // chain baseline
	SPIN      ID = "spin"      // negotiation baseline
)

// Capabilities describes what a protocol supports; the scenario layer uses
// them to prepare the environment (e.g. mobility protocols get twice as
// many feasible places as gateways by default).
type Capabilities struct {
	// MultiGateway: the protocol uses every configured gateway; protocols
	// without it sink everything at the first gateway.
	MultiGateway bool
	// MobilityRounds: gateways migrate between feasible places on a round
	// schedule (MLR §5.3).
	MobilityRounds bool
	// Security: cryptographic protections (MACs, replay guards, µTESLA).
	Security bool
	// ShortcutAnswers: nodes with cached routes answer other nodes' RREQs
	// (SPR/MLR step 3.1, Property 1).
	ShortcutAnswers bool
	// HandlerRand: receive handlers draw from the world's shared RNG (e.g.
	// gossiping's random next-hop pick). Such protocols cannot run under
	// sharded execution, where handlers fire on concurrent region workers.
	HandlerRand bool
}

// Originator is any sensor stack that can produce a reading.
type Originator interface {
	OriginateData(payload []byte)
}

// Env is the prepared environment a Builder instantiates a protocol into:
// the world with its media, the shared metrics sink, deployed sensor
// positions and the gateway/place geometry. Builders add stacks to
// Env.World and report through Env.Metrics.
type Env struct {
	World   *node.World
	Metrics metrics.Sink
	// Params are the core protocol parameters (with the scenario's
	// NoShortcutAnswers ablation already applied).
	Params core.Params

	// SensorIDs and SensorPos are parallel: sensor i's ID and position.
	SensorIDs []packet.NodeID
	SensorPos []geom.Point
	// GatewayIDs lists the configured gateway IDs; protocols without the
	// MultiGateway capability typically install only GatewayIDs[0].
	GatewayIDs []packet.NodeID
	// Places are the feasible gateway places (static protocols use the
	// first len(GatewayIDs) as fixed positions).
	Places []geom.Point

	// Schedule is the caller-provided round schedule (nil derives one).
	Schedule [][]int
	// Rounds bounds a derived rotation schedule.
	Rounds   int
	RoundLen sim.Duration

	ReportInterval sim.Duration
	LEACHProb      float64

	SensorRange float64
	Side        float64

	// Wrap decorates a sensor stack at creation (insider-attack hook);
	// it is the identity when no wrapper is configured.
	Wrap func(id packet.NodeID, st node.Stack) node.Stack
}

// Instance is what a Builder hands back: the origination handles per sensor
// and whichever round drivers the protocol started.
type Instance struct {
	Originators   map[packet.NodeID]Originator
	Rounds        *core.Rounds
	LEACHRounds   *baseline.LEACHRounds
	PegasisRounds *baseline.PegasisRounds
}

// Builder creates one protocol's stacks into a prepared environment.
type Builder struct {
	ID   ID
	Caps Capabilities
	// Build instantiates the protocol. A non-nil error aborts the scenario
	// (e.g. no feasible round schedule exists for the configuration).
	Build func(env *Env) (*Instance, error)
}

var (
	mu       sync.RWMutex
	registry = map[ID]Builder{}
)

// Register adds a Builder to the registry. It panics on an empty ID, a nil
// Build function, or a duplicate registration — all programmer errors.
func Register(b Builder) {
	if b.ID == "" {
		panic("protocol: Register with empty ID")
	}
	if b.Build == nil {
		panic(fmt.Sprintf("protocol: Register(%q) with nil Build", b.ID))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[b.ID]; dup {
		panic(fmt.Sprintf("protocol: Register(%q) called twice", b.ID))
	}
	registry[b.ID] = b
}

// Lookup returns the Builder registered under id.
func Lookup(id ID) (Builder, bool) {
	mu.RLock()
	defer mu.RUnlock()
	b, ok := registry[id]
	return b, ok
}

// IDs lists every registered protocol in sorted order.
func IDs() []ID {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]ID, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
