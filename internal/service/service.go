package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wmsn/internal/metrics"
	"wmsn/internal/obs"
	"wmsn/internal/protocol"
	"wmsn/internal/scenario"
)

// Config tunes the service. The zero value selects every default.
type Config struct {
	// QueueDepth bounds how many accepted jobs may wait for a scheduler;
	// submissions past it are shed with 429 + Retry-After (default 64).
	QueueDepth int
	// Schedulers is how many jobs execute concurrently (default 2). Total
	// simulation parallelism is Schedulers × Limits.MaxWorkersPerJob.
	Schedulers int
	// Limits bounds what one job may ask for.
	Limits Limits
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// RetainJobs is how many finished jobs stay queryable before the oldest
	// are evicted (default 1024).
	RetainJobs int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Schedulers <= 0 {
		c.Schedulers = 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	c.Limits = c.Limits.withDefaults()
	return c
}

// Stats is the counter snapshot served by GET /stats. The lifecycle
// counters reconcile by construction:
//
//	submitted == queued + active + completed + canceled + failed
type Stats struct {
	Submitted         uint64 `json:"submitted"`
	RejectedInvalid   uint64 `json:"rejected_invalid"`
	Shed              uint64 `json:"shed"`
	Queued            int64  `json:"queued"`
	Active            int64  `json:"active"`
	Completed         uint64 `json:"completed"`
	Canceled          uint64 `json:"canceled"`
	Failed            uint64 `json:"failed"`
	RunsDelivered     uint64 `json:"runs_delivered"`
	RunsFailed        uint64 `json:"runs_failed"`
	StreamsServed     uint64 `json:"streams_served"`
	ClientDisconnects uint64 `json:"client_disconnects"`
	QueueDepth        int    `json:"queue_depth"`
}

type counters struct {
	submitted         atomic.Uint64
	rejectedInvalid   atomic.Uint64
	shed              atomic.Uint64
	queued            atomic.Int64
	active            atomic.Int64
	completed         atomic.Uint64
	canceled          atomic.Uint64
	failed            atomic.Uint64
	runsDelivered     atomic.Uint64
	runsFailed        atomic.Uint64
	streamsServed     atomic.Uint64
	clientDisconnects atomic.Uint64
}

var errClientDisconnect = errors.New("service: streaming client disconnected")

// Service is the embeddable simulation server: an http.Handler plus the
// scheduler pool behind it. Create with New, serve it from any http.Server,
// and Close it to cancel every job and join the schedulers.
type Service struct {
	cfg    Config
	mux    *http.ServeMux
	queue  chan *Job
	base   context.Context
	cancel context.CancelCauseFunc
	wg     sync.WaitGroup
	closed atomic.Bool
	stats  counters

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []*Job // insertion order, for retention eviction
	nextID uint64

	// promMu guards the per-protocol lifetime aggregates behind GET /metrics.
	// Every delivered run's Memory folds into its protocol's aggregate, so a
	// scrape sees daemon-lifetime counter totals and merged histograms.
	promMu    sync.Mutex
	promProto map[string]*metrics.Aggregate
}

// New starts a service: schedulers are running and the handler is ready.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancelCause(context.Background())
	s := &Service{
		cfg:    cfg,
		queue:  make(chan *Job, cfg.QueueDepth),
		base:   base,
		cancel: cancel,
		jobs:   make(map[string]*Job),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Schedulers; i++ {
		s.wg.Add(1)
		go s.scheduler()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every queued and running job, waits for the schedulers to
// drain, and marks the service unavailable (submissions return 503).
// Idempotent.
func (s *Service) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.cancel(errors.New("service shutting down"))
	s.wg.Wait()
	// Jobs enqueued by a submit racing Close are drained here.
	for {
		select {
		case j := <-s.queue:
			s.stats.queued.Add(-1)
			j.finish(StateCanceled)
			s.stats.canceled.Add(1)
		default:
			return
		}
	}
}

// Stats returns the current counter snapshot.
func (s *Service) Stats() Stats {
	return Stats{
		Submitted:         s.stats.submitted.Load(),
		RejectedInvalid:   s.stats.rejectedInvalid.Load(),
		Shed:              s.stats.shed.Load(),
		Queued:            s.stats.queued.Load(),
		Active:            s.stats.active.Load(),
		Completed:         s.stats.completed.Load(),
		Canceled:          s.stats.canceled.Load(),
		Failed:            s.stats.failed.Load(),
		RunsDelivered:     s.stats.runsDelivered.Load(),
		RunsFailed:        s.stats.runsFailed.Load(),
		StreamsServed:     s.stats.streamsServed.Load(),
		ClientDisconnects: s.stats.clientDisconnects.Load(),
		QueueDepth:        s.cfg.QueueDepth,
	}
}

// scheduler pulls jobs off the bounded queue and runs them to completion.
func (s *Service) scheduler() {
	defer s.wg.Done()
	for {
		select {
		case <-s.base.Done():
			// Shutdown: cancel whatever is still queued.
			for {
				select {
				case j := <-s.queue:
					s.stats.queued.Add(-1)
					j.finish(StateCanceled)
					s.stats.canceled.Add(1)
				default:
					return
				}
			}
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job: per-run obs plumbing, the context-aware sweep,
// and the lifecycle/stat transitions.
func (s *Service) runJob(j *Job) {
	s.stats.queued.Add(-1)
	if j.ctx.Err() != nil { // canceled while queued (DELETE or shutdown)
		j.finish(StateCanceled)
		s.stats.canceled.Add(1)
		return
	}
	s.stats.active.Add(1)
	j.setState(StateRunning)

	ctx := j.ctx
	if j.opts.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, j.opts.deadline,
			fmt.Errorf("job wall-clock deadline (%v) exceeded", j.opts.deadline))
		defer cancel()
	}

	cfgs := make([]scenario.Config, len(j.opts.cfgs))
	copy(cfgs, j.opts.cfgs)
	for i := range cfgs {
		cfgs[i].Progress = j.board.Run(i)
	}
	var series []*obs.Series
	if j.opts.trace || j.opts.series > 0 {
		series = make([]*obs.Series, len(cfgs))
		for i := range cfgs {
			bus := obs.NewBus()
			bus.Sample = j.opts.sample
			if j.opts.trace {
				run := i
				bus.Attach(obs.SinkFunc(func(ev obs.Event) {
					j.appendTrace(StreamLine{Type: "trace", Run: run, Ev: &ev}, s.cfg.Limits.MaxTraceLines)
				}))
			}
			if j.opts.series > 0 {
				series[i] = obs.NewSeries(j.opts.series)
				bus.Attach(series[i])
			}
			cfgs[i].Obs = bus
		}
	}

	// The in-stream heartbeat: wall-clock-paced progress lines, opt-in per
	// request so the default stream stays deterministic.
	var hbStop, hbDone chan struct{}
	if j.opts.progress > 0 {
		hbStop, hbDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(hbDone)
			t := time.NewTicker(j.opts.progress)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					p := j.board.Snapshot(false)
					j.append(StreamLine{Type: "progress", Progress: &p})
				}
			}
		}()
	}

	err := scenario.RunEach(ctx, j.opts.workers, cfgs, func(i int, r scenario.Result, err error) {
		if err != nil {
			j.board.MarkDone(i)
			j.mu.Lock()
			j.runErrors++
			j.mu.Unlock()
			s.stats.runsFailed.Add(1)
			j.append(StreamLine{Type: "error", Run: i, Seed: cfgs[i].Seed, Error: err.Error()})
			return
		}
		j.board.MarkDone(i)
		if series != nil && series[i] != nil {
			td := series[i].Table(fmt.Sprintf("%s run %d series", j.id, i)).Data()
			j.append(StreamLine{Type: "series", Run: i, Seed: r.Cfg.Seed, Series: &td})
		}
		snap := r.Metrics.Snapshot()
		line := StreamLine{
			Type: "result", Run: i, Seed: r.Cfg.Seed,
			Metrics:      &snap,
			ElapsedS:     seconds(r.Elapsed),
			SensorsAlive: r.SensorsAlive,
			SensorsTotal: r.SensorsTotal,
		}
		if r.FirstDeath >= 0 {
			line.FirstDeathS = seconds(r.FirstDeath)
		}
		j.mu.Lock()
		j.delivered++
		j.mu.Unlock()
		s.stats.runsDelivered.Add(1)
		s.absorbRunMetrics(string(r.Cfg.Protocol), r.Metrics)
		j.append(line)
	})

	if hbStop != nil {
		close(hbStop)
		<-hbDone
	}
	s.stats.active.Add(-1)
	switch {
	case err == nil:
		j.finish(StateDone)
		s.stats.completed.Add(1)
	case errors.Is(err, scenario.ErrCanceled):
		j.finish(StateCanceled)
		s.stats.canceled.Add(1)
	default:
		j.finish(StateFailed)
		s.stats.failed.Add(1)
	}
}

// newID mints the next job ID.
func (s *Service) newID() string {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	return fmt.Sprintf("job-%06d", id)
}

// register adds the job to the lookup table, evicting the oldest finished
// jobs past the retention bound.
func (s *Service) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	for len(s.order) > s.cfg.RetainJobs {
		evicted := false
		for i, old := range s.order {
			if old.finished.Load() {
				delete(s.jobs, old.id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; retention resumes once jobs finish
		}
	}
}

// job looks up a registered job.
func (s *Service) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// submitAccepted is the 202 body for an async submission.
type submitAccepted struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Runs      int    `json:"runs"`
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "service shutting down"})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		s.stats.rejectedInvalid.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	opts, err := req.expand(s.cfg.Limits)
	if err != nil {
		s.stats.rejectedInvalid.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	j := newJob(s.newID(), opts, s.base)
	select {
	case s.queue <- j:
	default:
		// Load shedding: the bounded queue is full. The job never existed
		// as far as the registry is concerned.
		j.cancel(errors.New("shed"))
		s.stats.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error: fmt.Sprintf("job queue full (%d deep); retry after %v", s.cfg.QueueDepth, s.cfg.RetryAfter)})
		return
	}
	s.stats.submitted.Add(1)
	s.stats.queued.Add(1)
	s.register(j)
	if r.URL.Query().Get("stream") == "1" {
		s.streamJob(w, r, j)
		return
	}
	writeJSON(w, http.StatusAccepted, submitAccepted{
		ID:        j.id,
		State:     StateQueued,
		Runs:      len(j.opts.cfgs),
		StatusURL: "/v1/jobs/" + j.id,
		StreamURL: "/v1/jobs/" + j.id + "/stream",
	})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	j.cancel(errors.New("canceled by DELETE"))
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	s.streamJob(w, r, j)
}

// streamJob writes the job's JSONL stream from the beginning, following the
// live tail until the job finishes. A client that disconnects mid-stream
// cancels the job — the stream is the job's liveness lease — unless it
// detached with ?detach=1 or the job already finished.
func (s *Service) streamJob(w http.ResponseWriter, r *http.Request, j *Job) {
	detach := r.URL.Query().Get("detach") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	s.stats.streamsServed.Add(1)

	hdr, _ := json.Marshal(StreamLine{Type: "job", ID: j.id, State: j.status().State, Runs: len(j.opts.cfgs)})
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		s.streamBroken(j, detach)
		return
	}
	if flusher != nil {
		flusher.Flush()
	}

	done := r.Context().Done()
	cursor := 0
	for {
		lines, closed, aborted := j.wait(cursor, done)
		if aborted {
			s.streamBroken(j, detach)
			return
		}
		for _, ln := range lines {
			if _, err := w.Write(append(ln, '\n')); err != nil {
				s.streamBroken(j, detach)
				return
			}
			cursor++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if closed {
			return // terminal line delivered
		}
	}
}

// streamBroken handles a client that went away mid-stream: unless it
// detached, the job it was watching is canceled.
func (s *Service) streamBroken(j *Job, detach bool) {
	if detach || j.finished.Load() {
		return
	}
	j.cancel(errClientDisconnect)
	s.stats.clientDisconnects.Add(1)
}

func (s *Service) handleProtocols(w http.ResponseWriter, r *http.Request) {
	ids := protocol.IDs()
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = string(id)
	}
	writeJSON(w, http.StatusOK, map[string][]string{"protocols": names})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"queued": s.stats.queued.Load(),
		"active": s.stats.active.Load(),
	})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// progressBody is the JSON body of GET /v1/jobs/{id}/progress.
type progressBody struct {
	ID       string            `json:"id"`
	State    string            `json:"state"`
	Progress scenario.Progress `json:"progress"`
}

// handleProgress serves a job's live watermark: per-run virtual time, event
// and delivery counts published lock-free by the running kernels. Polling it
// is always safe — it never perturbs the simulation or the stream.
func (s *Service) handleProgress(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, progressBody{
		ID:       j.id,
		State:    j.status().State,
		Progress: j.board.Snapshot(true),
	})
}

// absorbRunMetrics folds one delivered run's metrics into the per-protocol
// lifetime aggregates served by GET /metrics.
func (s *Service) absorbRunMetrics(proto string, m *metrics.Memory) {
	s.promMu.Lock()
	defer s.promMu.Unlock()
	if s.promProto == nil {
		s.promProto = make(map[string]*metrics.Aggregate)
	}
	agg := s.promProto[proto]
	if agg == nil {
		agg = metrics.NewAggregate()
		s.promProto[proto] = agg
	}
	agg.Absorb(m)
}
