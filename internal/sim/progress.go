package sim

import "sync/atomic"

// Progress is a lock-free watermark describing how far a running simulation
// has advanced. The kernel publishes sim-time and event counts from its run
// loops (piggybacking on the same every-interruptStride poll that serves
// cancellation, so an installed probe costs one predictable branch per event
// batch); the metrics layer bumps the delivery counter; any goroutine may
// Snapshot at any time. All methods are nil-receiver safe so recording sites
// can stay unconditional.
//
// One Progress describes one run. Multi-run jobs hold one per run (see
// scenario.ProgressBoard) and aggregate at read time.
type Progress struct {
	simTime    atomic.Int64
	events     atomic.Uint64
	deliveries atomic.Uint64
	done       atomic.Bool
}

// Publish records the current sim-time watermark and cumulative event count.
// Called by the kernel's run loops; external callers normally only read.
func (p *Progress) Publish(now Time, events uint64) {
	if p == nil {
		return
	}
	p.simTime.Store(int64(now))
	p.events.Store(events)
}

// AddDeliveries bumps the fresh-delivery counter.
func (p *Progress) AddDeliveries(n uint64) {
	if p == nil {
		return
	}
	p.deliveries.Add(n)
}

// MarkDone flags the run as finished. Idempotent.
func (p *Progress) MarkDone() {
	if p == nil {
		return
	}
	p.done.Store(true)
}

// ProgressSnapshot is one consistent-enough read of a watermark: fields are
// read individually (each atomically), which is exact once the run is done
// and at most one event batch stale while it is live.
type ProgressSnapshot struct {
	SimTime    Time
	Events     uint64
	Deliveries uint64
	Done       bool
}

// Snapshot reads the current watermark. Safe from any goroutine; returns the
// zero snapshot for a nil probe.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		SimTime:    Time(p.simTime.Load()),
		Events:     p.events.Load(),
		Deliveries: p.deliveries.Load(),
		Done:       p.done.Load(),
	}
}
